module dmamem

go 1.22
