package dmamem

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dmamem/internal/core"
	"dmamem/internal/energy"
)

// EnergyBreakdown partitions a run's energy (joules) into the paper's
// Figure 2(b)/Figure 6 categories.
type EnergyBreakdown struct {
	// ActiveServing: moving DMA data.
	ActiveServing float64
	// ActiveIdleDMA: active but idle between DMA-memory requests (the
	// bandwidth-mismatch waste the techniques attack).
	ActiveIdleDMA float64
	// ActiveIdleThreshold: active, waiting out the policy's idleness
	// threshold.
	ActiveIdleThreshold float64
	// Transition: moving between power modes.
	Transition float64
	// LowPower: resident in standby/nap/powerdown (including naps
	// between the bursts of rate-shared streams).
	LowPower float64
	// Migration: copying pages for the popularity-based layout.
	Migration float64
	// ProcessorServing: servicing processor cache-line accesses.
	ProcessorServing float64
}

// Total returns the sum over all categories.
func (b EnergyBreakdown) Total() float64 {
	return b.ActiveServing + b.ActiveIdleDMA + b.ActiveIdleThreshold +
		b.Transition + b.LowPower + b.Migration + b.ProcessorServing
}

// String renders the breakdown as percentages, largest first.
func (b EnergyBreakdown) String() string {
	total := b.Total()
	if total == 0 {
		return "no energy"
	}
	type entry struct {
		name string
		j    float64
	}
	entries := []entry{
		{"active-serving", b.ActiveServing},
		{"active-idle-dma", b.ActiveIdleDMA},
		{"active-idle-threshold", b.ActiveIdleThreshold},
		{"transition", b.Transition},
		{"low-power", b.LowPower},
		{"migration", b.Migration},
		{"proc-serving", b.ProcessorServing},
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].j > entries[j].j })
	parts := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.j == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.1f%%", e.name, 100*e.j/total))
	}
	return strings.Join(parts, ", ")
}

// Report is the outcome of one simulation run.
type Report struct {
	// Scheme that produced the numbers.
	Scheme string
	// Energy consumed, total and by category (joules).
	TotalEnergy float64
	Breakdown   EnergyBreakdown
	// MeanPower over the metering window, watts.
	MeanPower float64
	// UtilizationFactor is the paper's uf metric: the fraction of
	// transfer-active chip time actually spent serving DMA data
	// (1/3 for a lone PCI-X stream, 1.0 when fully aligned).
	UtilizationFactor float64
	// Transfers simulated and their residency statistics.
	Transfers       int64
	MeanServiceTime time.Duration
	P95ServiceTime  time.Duration
	// MeanGatherDelay is the average DMA-TA gating delay per transfer.
	MeanGatherDelay time.Duration
	// Wakes counts chip activations; MigratedPages counts PL moves.
	Wakes         int64
	MigratedPages int64
	// States is the per-state residency and resident-energy breakdown,
	// keyed by the technology model's state names in depth order
	// (for the RDRAM default: active, standby, nap, powerdown).
	// Transition time and energy are excluded — they are not
	// attributable to residence in one state — so summing the state
	// energies plus Breakdown.Transition and Breakdown.Migration
	// recovers TotalEnergy.
	States []StateBreakdown
	// Residency is the aggregate chip-time spent resident in each power
	// state (transition time excluded; burst-gap micro-naps count as
	// Nap).
	//
	// Deprecated: Residency names the fixed RDRAM states; technologies
	// with other state machines (see Techs) only fill the fields whose
	// names they share. Use States, which covers every technology.
	Residency StateResidency
	// Mu is the slack parameter DMA-TA derived from the CP-Limit.
	Mu float64
	// Events is the number of discrete-event steps the run dispatched,
	// for events/sec throughput measurements.
	Events uint64
}

// StateResidency is chip-time per power state, summed over chips.
type StateResidency struct {
	Active, Standby, Nap, Powerdown time.Duration
}

// StateBreakdown is one power state's share of a run: the chip-time
// spent resident in it and the resident energy that time cost.
type StateBreakdown struct {
	// Name of the state in the technology model ("active",
	// "precharge-powerdown", "self-refresh", ...).
	Name string
	// Residency is the aggregate chip-time resident in the state.
	Residency time.Duration
	// Energy resident in the state, joules.
	Energy float64
}

func newReport(res *core.Result) *Report {
	r := res.Report
	states := make([]StateBreakdown, len(r.StateNames))
	var legacy StateResidency
	for i, name := range r.StateNames {
		d := toStd(float64(r.Residency[i]))
		states[i] = StateBreakdown{Name: name, Residency: d, Energy: r.StateEnergy[i]}
		switch name {
		case "active":
			legacy.Active = d
		case "standby":
			legacy.Standby = d
		case "nap":
			legacy.Nap = d
		case "powerdown":
			legacy.Powerdown = d
		}
	}
	return &Report{
		Scheme:      r.Scheme,
		TotalEnergy: r.TotalEnergy(),
		Breakdown: EnergyBreakdown{
			ActiveServing:       r.Energy[energy.CatServing],
			ActiveIdleDMA:       r.Energy[energy.CatIdleDMA],
			ActiveIdleThreshold: r.Energy[energy.CatIdleThreshold],
			Transition:          r.Energy[energy.CatTransition],
			LowPower:            r.Energy[energy.CatLowPower],
			Migration:           r.Energy[energy.CatMigration],
			ProcessorServing:    r.Energy[energy.CatProcServing],
		},
		MeanPower:         r.MeanPower(),
		UtilizationFactor: r.UtilizationFactor,
		Transfers:         r.Transfers,
		MeanServiceTime:   toStd(float64(r.MeanServiceTime)),
		P95ServiceTime:    toStd(float64(r.P95ServiceTime)),
		MeanGatherDelay:   toStd(float64(r.MeanGatherDelay)),
		Wakes:             r.Wakes,
		MigratedPages:     res.MigratedPages,
		States:            states,
		Residency:         legacy,
		Mu:                res.Mu,
		Events:            r.Events,
	}
}

func toStd(ps float64) time.Duration { return time.Duration(ps / 1e3 * float64(time.Nanosecond)) }

func (r *Report) String() string {
	return fmt.Sprintf("%s: %.2f mJ (%.0f mW), uf=%.2f, mean transfer %v",
		r.Scheme, 1e3*r.TotalEnergy, 1e3*r.MeanPower, r.UtilizationFactor, r.MeanServiceTime)
}
