// Database server example: database bufferpools are touched by the
// CPU as well as by DMA engines. This example measures how processor
// traffic erodes the DMA-alignment savings (the paper's Figure 9
// effect) by sweeping the number of processor accesses per transfer.
package main

import (
	"fmt"
	"log"
	"time"

	"dmamem"
)

func main() {
	// First, the realistic OLTP-Db mix (~233 processor accesses per
	// transfer, as in the paper's DB2 trace).
	tr, err := dmamem.DatabaseServerTrace(dmamem.ServerOptions{
		Duration: 20 * time.Millisecond,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("OLTP database trace:", tr.Summary())

	cmp, err := dmamem.Compare(dmamem.Simulation{
		Technique: dmamem.TemporalAlignmentWithLayout, CPLimit: 0.10}, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DMA-TA-PL on OLTP-Db: %.1f%% savings (uf %.2f -> %.2f)\n\n",
		100*cmp.Savings, cmp.Baseline.UtilizationFactor, cmp.Technique.UtilizationFactor)

	// Then the controlled sweep: inject an exact number of processor
	// accesses per transfer into the synthetic database workload.
	fmt.Println("savings vs processor accesses per transfer (Figure 9):")
	fmt.Printf("%12s %12s\n", "proc/xfer", "DMA-TA-PL")
	for _, per := range []int{0, 50, 100, 233, 400} {
		opts := dmamem.SyntheticOptions{Duration: 15 * time.Millisecond, Seed: 2}
		if per > 0 {
			opts.ProcPerTransfer = per
		}
		str, err := dmamem.SyntheticDatabaseTrace(opts)
		if err != nil {
			log.Fatal(err)
		}
		c, err := dmamem.Compare(dmamem.Simulation{
			Technique: dmamem.TemporalAlignmentWithLayout, CPLimit: 0.10}, str)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d %11.1f%%\n", per, 100*c.Savings)
	}
	fmt.Println("\n(the CPU consumes the very idle cycles alignment reclaims,")
	fmt.Println(" so heavier processor traffic leaves less for DMA-TA to save)")
}
