// Storage server example: run the full storage-server workload model
// (Figure 1's request path over a buffer cache, disk array and SAN) to
// synthesize an OLTP-St style trace, then measure how much memory
// energy DMA-TA-PL saves at several client-perceived response-time
// budgets — the server operator's actual trade-off knob.
package main

import (
	"fmt"
	"log"
	"time"

	"dmamem"
)

func main() {
	tr, err := dmamem.StorageServerTrace(dmamem.ServerOptions{
		Duration: 60 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("OLTP storage trace:", tr.Summary())

	// The Figure 4 skew this trace carries.
	fmt.Println("\npage popularity (hottest X% of pages -> Y% of DMA accesses):")
	for _, p := range tr.PopularityCurve(5) {
		fmt.Printf("  %3.0f%% -> %5.1f%%\n", 100*p.PageFrac, 100*p.AccessFrac)
	}

	fmt.Println("\nenergy savings vs client-latency budget:")
	fmt.Printf("%10s %12s %12s %8s\n", "CP-Limit", "DMA-TA", "DMA-TA-PL", "uf(PL)")
	for _, cp := range []float64{0.05, 0.10, 0.20, 0.30} {
		ta, err := dmamem.Compare(dmamem.Simulation{
			Technique: dmamem.TemporalAlignment, CPLimit: cp}, tr)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := dmamem.Compare(dmamem.Simulation{
			Technique: dmamem.TemporalAlignmentWithLayout, CPLimit: cp}, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0f%% %11.1f%% %11.1f%% %8.2f\n",
			100*cp, 100*ta.Savings, 100*pl.Savings, pl.Technique.UtilizationFactor)
	}
	fmt.Println("\n(the paper's Figure 5 sweep; savings rise with the budget and")
	fmt.Println(" popularity-based layout multiplies what alignment alone achieves)")
}
