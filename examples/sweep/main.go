// Sweep example: explore how hardware provisioning changes what
// DMA-aware management is worth — the paper's Figure 10 question. The
// memory rate stays at 3.2 GB/s while the I/O bus generation varies
// from PCI-X up to a hypothetical bus as fast as the memory itself.
//
// The bus points are independent simulations, so they fan out across
// -parallel worker goroutines; each result lands in its own slot and
// the table prints in sweep order, so the output is identical at any
// parallelism.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"dmamem"
)

func main() {
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the sweep (1 = sequential)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tr, err := dmamem.SyntheticStorageTrace(dmamem.SyntheticOptions{
		Duration: 40 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", tr.Summary())
	fmt.Println("\nsavings vs memory:I/O bandwidth ratio (3 buses, 10% CP-Limit):")
	fmt.Printf("%14s %8s %12s %12s\n", "bus", "ratio", "DMA-TA", "DMA-TA-PL")

	buses := []struct {
		name string
		bw   float64
	}{
		{"0.5 GB/s", 0.5e9},
		{"PCI-X 1.06", 1.064e9},
		{"2 GB/s", 2e9},
		{"3 GB/s", 3e9},
	}

	// One job per (bus, technique); every job writes only its own
	// slot, so the fan-out is race-free and the printed table is
	// deterministic.
	type job struct {
		bus  int
		tech dmamem.Technique
		out  *float64
	}
	savings := make([][2]float64, len(buses))
	var jobs []job
	for i := range buses {
		jobs = append(jobs,
			job{i, dmamem.TemporalAlignment, &savings[i][0]},
			job{i, dmamem.TemporalAlignmentWithLayout, &savings[i][1]})
	}

	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		jobErr  error
		next    = make(chan job)
	)
	go func() {
		defer close(next)
		for _, j := range jobs {
			select {
			case next <- j:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				cmp, err := dmamem.CompareContext(ctx, dmamem.Simulation{
					Technique: j.tech, CPLimit: 0.10,
					BusBandwidth: buses[j.bus].bw}, tr, 1)
				if err != nil {
					errOnce.Do(func() { jobErr = err })
					return
				}
				*j.out = cmp.Savings
			}
		}()
	}
	wg.Wait()
	if jobErr != nil {
		log.Fatal(jobErr)
	}
	if err := ctx.Err(); err != nil {
		log.Fatal(err)
	}

	for i, b := range buses {
		fmt.Printf("%14s %8.1f %11.1f%% %11.1f%%\n",
			b.name, 3.2e9/b.bw, 100*savings[i][0], 100*savings[i][1])
	}
	fmt.Println("\n(a bus as fast as the memory leaves no mismatch to reclaim;")
	fmt.Println(" the slower the I/O bus, the more energy alignment recovers)")
}
