// Sweep example: explore how hardware provisioning changes what
// DMA-aware management is worth — the paper's Figure 10 question. The
// memory rate stays at 3.2 GB/s while the I/O bus generation varies
// from PCI-X up to a hypothetical bus as fast as the memory itself.
//
// The bus points form a Figure 10 grid (internal/experiments), so the
// same enumeration runs three ways with identical printed bytes:
// in-process across -parallel worker goroutines, sharded across
// -shards worker processes (re-executions of this binary), or against
// remote -shard-addrs TCP workers. Each point lands in its
// pre-assigned slot and the table prints in sweep order, which is
// what makes the output independent of how the work was spread out.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dmamem"
	"dmamem/internal/experiments"
	"dmamem/internal/sim"
)

func main() {
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the sweep (1 = sequential)")
	shards := flag.Int("shards", 0, "run the sweep across N worker processes (0 = in-process)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated TCP addresses of shard workers (default: spawn local subprocesses)")
	shardWorker := flag.Bool("shard-worker", false, "serve one sweep-shard session on stdin/stdout and exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *shardWorker {
		if err := experiments.ServeShard(ctx, os.Stdin, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Suite seed 0 makes the suite's Synthetic-St workload (generator
	// seed = suite seed + 1) the same trace the public API builds with
	// Seed 1 — the header summary below describes exactly what runs.
	spec := experiments.SuiteSpec{Duration: 40 * sim.Millisecond, Seed: 0}

	tr, err := dmamem.SyntheticStorageTrace(dmamem.SyntheticOptions{
		Duration: 40 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", tr.Summary())
	fmt.Println("\nsavings vs memory:I/O bandwidth ratio (3 buses, 10% CP-Limit):")
	fmt.Printf("%14s %8s %12s %12s\n", "bus", "ratio", "DMA-TA", "DMA-TA-PL")

	buses := []struct {
		name string
		bw   float64
	}{
		{"0.5 GB/s", 0.5e9},
		{"PCI-X 1.06", 1.064e9},
		{"2 GB/s", 2e9},
		{"3 GB/s", 3e9},
	}
	gs := experiments.GridSpec{
		Name:      experiments.GridFig10,
		Workloads: []string{"Synthetic-St"},
	}
	for _, b := range buses {
		gs.BusBW = append(gs.BusBW, b.bw)
	}

	var pts []experiments.SweepPoint
	if *shards > 0 || *shardAddrs != "" {
		coord := &experiments.Coordinator{Shards: *shards, Parallel: *parallel}
		if *shardAddrs != "" {
			coord.Addrs = strings.Split(*shardAddrs, ",")
			if coord.Shards == 0 {
				coord.Shards = len(coord.Addrs) // one slice per worker by default
			}
		} else {
			exe, err := os.Executable()
			if err != nil {
				log.Fatal(err)
			}
			coord.WorkerCommand = []string{exe, "-shard-worker"}
		}
		pts, err = experiments.ShardedGrid[experiments.SweepPoint](ctx, coord, spec, gs)
	} else {
		s := experiments.NewSuiteFromSpec(spec)
		s.Runner = experiments.NewRunner(*parallel)
		pts, err = experiments.GridRun[experiments.SweepPoint](ctx, s, gs)
	}
	if err != nil {
		log.Fatal(err)
	}

	// The grid enumerates (bus, scheme) pairs in sweep order: DMA-TA
	// then DMA-TA-PL for each bus.
	for i, b := range buses {
		fmt.Printf("%14s %8.1f %11.1f%% %11.1f%%\n",
			b.name, 3.2e9/b.bw, 100*pts[2*i].Savings, 100*pts[2*i+1].Savings)
	}
	fmt.Println("\n(a bus as fast as the memory leaves no mismatch to reclaim;")
	fmt.Println(" the slower the I/O bus, the more energy alignment recovers)")
}
