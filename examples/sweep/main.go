// Sweep example: explore how hardware provisioning changes what
// DMA-aware management is worth — the paper's Figure 10 question. The
// memory rate stays at 3.2 GB/s while the I/O bus generation varies
// from PCI-X up to a hypothetical bus as fast as the memory itself.
package main

import (
	"fmt"
	"log"
	"time"

	"dmamem"
)

func main() {
	tr, err := dmamem.SyntheticStorageTrace(dmamem.SyntheticOptions{
		Duration: 40 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", tr.Summary())
	fmt.Println("\nsavings vs memory:I/O bandwidth ratio (3 buses, 10% CP-Limit):")
	fmt.Printf("%14s %8s %12s %12s\n", "bus", "ratio", "DMA-TA", "DMA-TA-PL")

	buses := []struct {
		name string
		bw   float64
	}{
		{"0.5 GB/s", 0.5e9},
		{"PCI-X 1.06", 1.064e9},
		{"2 GB/s", 2e9},
		{"3 GB/s", 3e9},
	}
	for _, b := range buses {
		ta, err := dmamem.Compare(dmamem.Simulation{
			Technique: dmamem.TemporalAlignment, CPLimit: 0.10,
			BusBandwidth: b.bw}, tr)
		if err != nil {
			log.Fatal(err)
		}
		pl, err := dmamem.Compare(dmamem.Simulation{
			Technique: dmamem.TemporalAlignmentWithLayout, CPLimit: 0.10,
			BusBandwidth: b.bw}, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%14s %8.1f %11.1f%% %11.1f%%\n",
			b.name, 3.2e9/b.bw, 100*ta.Savings, 100*pl.Savings)
	}
	fmt.Println("\n(a bus as fast as the memory leaves no mismatch to reclaim;")
	fmt.Println(" the slower the I/O bus, the more energy alignment recovers)")
}
