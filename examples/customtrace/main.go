// Custom trace example: the library is not limited to the built-in
// workload models — any DMA access pattern can be described record by
// record. Here we model a video streaming server: a small set of hot
// titles streamed to many clients as periodic 64 KB network reads,
// plus a cold long tail, and ask how much memory energy DMA-aware
// management saves under a tight latency budget.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"dmamem"
)

func main() {
	chips, perChip, pageBytes := dmamem.MemoryGeometry()
	fmt.Printf("memory: %d chips x %d pages x %d B\n", chips, perChip, pageBytes)

	tr := dmamem.NewTrace("video-streaming")

	const (
		titlePages  = 8                    // 64 KB chunk per stream tick
		hotTitles   = 6                    // hot catalog held in memory
		coldTitles  = 400                  // long tail
		streams     = 24                   // concurrent viewers
		tick        = 2 * time.Millisecond // per-stream chunk period (~256 Mb/s each)
		duration    = 40 * time.Millisecond
		coldStartAt = hotTitles * titlePages * 16 // cold region after hot region
	)

	// Each stream plays one title: three of four viewers watch a hot
	// title (the catalog's head), the rest something from the tail.
	title := func(s int) (page int) {
		if s%4 != 3 {
			t := s % hotTitles
			return t * titlePages * 16
		}
		t := s % coldTitles
		return coldStartAt + t*titlePages*16
	}

	for now := time.Duration(0); now < duration; now += tick {
		for s := 0; s < streams; s++ {
			// Stagger the streams across the tick and the buses.
			at := now + time.Duration(s)*tick/streams
			chunk := int(now/tick) % 16
			page := title(s) + chunk*titlePages
			if err := tr.AppendDMA(at, dmamem.FromNetwork, s%3, page, titlePages, false); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Streaming SLAs are tight: declare the client-side budget the
	// CP-Limit calibrates against (a 4 ms jitter budget per chunk).
	tr.SetClientResponse(4*time.Millisecond, 1)

	fmt.Println("workload:", tr.Summary())
	fmt.Println("\npopularity (hot titles dominate):")
	for _, p := range tr.PopularityCurve(5) {
		fmt.Printf("  %3.0f%% of pages -> %5.1f%% of accesses\n", 100*p.PageFrac, 100*p.AccessFrac)
	}

	for _, cp := range []float64{0.02, 0.05} {
		cmp, err := dmamem.Compare(dmamem.Simulation{
			Technique: dmamem.TemporalAlignmentWithLayout,
			CPLimit:   cp,
		}, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCP-Limit %.0f%%: savings %.1f%%, wakes %d -> %d, chunk time %v -> %v\n",
			100*cp, 100*cmp.Savings,
			cmp.Baseline.Wakes, cmp.Technique.Wakes,
			cmp.Baseline.MeanServiceTime, cmp.Technique.MeanServiceTime)
	}
	fmt.Println("\n(streaming chunks are 8 contiguous pages: under the interleaved")
	fmt.Println(" baseline each chunk wakes 8 chips in sequence, while the layout")
	fmt.Println(" technique consolidates hot titles — fewer wakes, faster chunks,")
	fmt.Println(" and a modest energy win even in this alignment-poor workload)")

	// Record, then replay. The same workload can be recorded straight
	// to a .dmt container (docs/TRACE_FORMAT.md) and simulated from
	// the file — the report is bit-identical, and the replay holds at
	// most two chunks of records in memory, so the identical code
	// scales to hour-long recordings. For workloads too big to build
	// in memory at all, CreateTraceFile streams record by record.
	path := filepath.Join(os.TempDir(), "video-streaming.dmt")
	if err := tr.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	info, err := dmamem.StatTraceFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded %s: %d records, %d DMA transfers, %v\n",
		path, info.Records, info.DMATransfers, info.Duration)

	s := dmamem.Simulation{
		Technique: dmamem.TemporalAlignmentWithLayout,
		CPLimit:   0.05,
		TraceFile: path, // replay the file: pass a nil trace below
	}
	replayed, err := dmamem.Compare(s, nil)
	if err != nil {
		log.Fatal(err)
	}
	inMemory, err := dmamem.Compare(dmamem.Simulation{
		Technique: dmamem.TemporalAlignmentWithLayout, CPLimit: 0.05,
	}, tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed from file: savings %.1f%% (in-memory run: %.1f%% — identical: %v)\n",
		100*replayed.Savings, 100*inMemory.Savings,
		reflect.DeepEqual(replayed, inMemory))
}
