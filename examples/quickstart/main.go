// Quickstart: generate the paper's Synthetic-St workload, run the
// baseline and DMA-TA-PL at a 10% client-perceived response-time
// budget, and print the energy comparison.
package main

import (
	"fmt"
	"log"
	"time"

	"dmamem"
)

func main() {
	tr, err := dmamem.SyntheticStorageTrace(dmamem.SyntheticOptions{
		Duration: 50 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload:", tr.Summary())

	cmp, err := dmamem.Compare(dmamem.Simulation{
		Technique: dmamem.TemporalAlignmentWithLayout,
		CPLimit:   0.10,
	}, tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nbaseline: ", cmp.Baseline)
	fmt.Println("  ", cmp.Baseline.Breakdown)
	fmt.Println("dma-ta-pl:", cmp.Technique)
	fmt.Println("  ", cmp.Technique.Breakdown)
	fmt.Printf("\nenergy savings: %.1f%%\n", 100*cmp.Savings)
	fmt.Printf("utilization factor: %.2f -> %.2f\n",
		cmp.Baseline.UtilizationFactor, cmp.Technique.UtilizationFactor)
	fmt.Printf("mean transfer time: %v -> %v (gather delay %v)\n",
		cmp.Baseline.MeanServiceTime, cmp.Technique.MeanServiceTime,
		cmp.Technique.MeanGatherDelay)
}
