package dmamem

import (
	"math"
	"strings"
	"testing"
)

// TestTechs pins the public backend enumeration: sorted registry
// names, including the paper default and the DDR generations.
func TestTechs(t *testing.T) {
	techs := Techs()
	if len(techs) < 5 {
		t.Fatalf("only %d technologies registered: %v", len(techs), techs)
	}
	for _, want := range []string{"rdram", "ddr400", "ddr3-1600", "ddr4-2400", "lpddr4"} {
		found := false
		for _, got := range techs {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Techs() = %v is missing %q", techs, want)
		}
	}
	for i := 1; i < len(techs); i++ {
		if techs[i-1] >= techs[i] {
			t.Fatalf("Techs() not sorted: %v", techs)
		}
	}
}

// TestUnknownTechErrorEnumerates pins the unknown-technology error to
// name the bad value and list every registered backend, so a typo at
// the API boundary is self-correcting.
func TestUnknownTechErrorEnumerates(t *testing.T) {
	err := Simulation{MemoryTech: "sram"}.Validate()
	if err == nil {
		t.Fatal("unknown technology accepted")
	}
	if !strings.Contains(err.Error(), `"sram"`) {
		t.Errorf("error %q does not name the bad technology", err)
	}
	for _, name := range Techs() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered technology %q", err, name)
		}
	}
}

// TestRunNonDefaultTech runs the public API on backends with more and
// fewer states than RDRAM's four and holds each Report to the
// per-state contract: States carries the model's own names in depth
// order, and the state energies plus transition and migration recover
// TotalEnergy.
func TestRunNonDefaultTech(t *testing.T) {
	tr := shortSynthetic(t)
	cases := []struct {
		tech   string
		states int
		first  string
	}{
		{"ddr4-2400", 5, "active"},
		{"lpddr4", 3, "active"},
	}
	for _, tc := range cases {
		t.Run(tc.tech, func(t *testing.T) {
			rep, err := Run(Simulation{MemoryTech: tc.tech}, tr)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.States) != tc.states {
				t.Fatalf("got %d states, want %d: %+v", len(rep.States), tc.states, rep.States)
			}
			if rep.States[0].Name != tc.first {
				t.Errorf("first state %q, want %q", rep.States[0].Name, tc.first)
			}
			sum := rep.Breakdown.Transition + rep.Breakdown.Migration
			var resided int
			for _, st := range rep.States {
				sum += st.Energy
				if st.Residency > 0 {
					resided++
				}
			}
			if math.Abs(sum-rep.TotalEnergy) > 1e-9*math.Max(1, math.Abs(rep.TotalEnergy)) {
				t.Errorf("state energies sum to %.12g J, total %.12g J", sum, rep.TotalEnergy)
			}
			if resided < 2 {
				t.Errorf("only %d states saw residency; the policy never idled down", resided)
			}
		})
	}
}

// TestStaticModeUsesTechStates proves StaticMode resolves against the
// selected backend's own state names: DDR4's deep states are legal
// under ddr4-2400 but not under the RDRAM default, and the rejection
// enumerates the backend's low-power states.
func TestStaticModeUsesTechStates(t *testing.T) {
	tr := shortSynthetic(t)
	rep, err := Run(Simulation{MemoryTech: "ddr4-2400", StaticMode: "self-refresh"}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalEnergy <= 0 {
		t.Fatal("static self-refresh run produced no energy")
	}
	err = Simulation{StaticMode: "self-refresh"}.Validate()
	if err == nil {
		t.Fatal("RDRAM accepted a DDR-only state name")
	}
	if !strings.Contains(err.Error(), "powerdown") {
		t.Errorf("error %q does not enumerate the model's states", err)
	}
}
