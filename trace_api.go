package dmamem

import (
	"fmt"
	"io"
	"os"
	"time"

	"dmamem/internal/memsys"
	"dmamem/internal/server"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// Trace is a time-ordered memory-access trace: DMA transfers from
// network and disk plus processor cache-line accesses. Obtain one from
// the synthetic generators, the server workload models, ReadTrace, or
// build one record at a time with AppendDMA/AppendProcessorAccess.
type Trace struct {
	t *trace.Trace
}

// Name returns the trace's label.
func (tr *Trace) Name() string { return tr.t.Name }

// Len returns the number of records.
func (tr *Trace) Len() int { return len(tr.t.Records) }

// Duration returns the simulated span the trace covers.
func (tr *Trace) Duration() time.Duration {
	return time.Duration(tr.t.Duration().Seconds() * float64(time.Second))
}

// Summary returns a human-readable Table 2 style description.
func (tr *Trace) Summary() string { return trace.Analyze(tr.t).String() }

// Burstiness returns the coefficient of variation of DMA inter-arrival
// times: ~1 for Poisson arrivals, higher for bursty traffic.
func (tr *Trace) Burstiness() float64 {
	return trace.Analyze(tr.t).InterArrivalCV()
}

// ChipLoadSkew returns the coefficient of variation of per-chip DMA
// load under the baseline interleaved layout: 0 for perfectly even
// load, higher when some chips are naturally much hotter.
func (tr *Trace) ChipLoadSkew() float64 {
	chips, _, _ := MemoryGeometry()
	return trace.Analyze(tr.t).ChipLoadCV(chips)
}

// PopularityCurve returns the Figure 4 CDF: point i means the hottest
// PageFrac of pages receives AccessFrac of the DMA accesses.
func (tr *Trace) PopularityCurve(points int) []struct{ PageFrac, AccessFrac float64 } {
	pts := trace.Analyze(tr.t).PopularityCDF(points)
	out := make([]struct{ PageFrac, AccessFrac float64 }, len(pts))
	for i, p := range pts {
		out[i].PageFrac = p.PageFrac
		out[i].AccessFrac = p.AccessFrac
	}
	return out
}

// NewTrace returns an empty trace for manual construction.
func NewTrace(name string) *Trace {
	return &Trace{t: &trace.Trace{Name: name}}
}

// DMASource identifies which device class performs a transfer.
type DMASource int

const (
	// FromNetwork marks NIC-initiated transfers.
	FromNetwork DMASource = iota
	// FromDisk marks disk-initiated transfers.
	FromDisk
)

// makeDMARecord validates and builds one DMA record — the shared core
// of Trace.AppendDMA and TraceWriter.AppendDMA, so in-memory and
// file-streamed traces enforce identical field ranges.
func makeDMARecord(at time.Duration, src DMASource, bus int, page, pages int, toMemory bool) (trace.Record, error) {
	kind := trace.DMARead
	if toMemory {
		kind = trace.DMAWrite
	}
	s := trace.SrcNetwork
	if src == FromDisk {
		s = trace.SrcDisk
	}
	if pages <= 0 || pages > 1<<15 {
		return trace.Record{}, fmt.Errorf("dmamem: transfer of %d pages", pages)
	}
	if bus < 0 || bus > 255 {
		return trace.Record{}, fmt.Errorf("dmamem: bus %d", bus)
	}
	if page < 0 {
		return trace.Record{}, fmt.Errorf("dmamem: negative page %d", page)
	}
	return trace.Record{
		Time: fromStd(at), Kind: kind, Source: s,
		Bus: uint8(bus), Pages: uint16(pages), Page: memsys.PageID(page),
	}, nil
}

// makeProcRecord validates and builds one processor-access record.
func makeProcRecord(at time.Duration, page int, write bool) (trace.Record, error) {
	kind := trace.ProcRead
	if write {
		kind = trace.ProcWrite
	}
	if page < 0 {
		return trace.Record{}, fmt.Errorf("dmamem: negative page %d", page)
	}
	return trace.Record{
		Time: fromStd(at), Kind: kind, Source: trace.SrcProcessor,
		Page: memsys.PageID(page),
	}, nil
}

// AppendDMA appends a DMA transfer of pages consecutive pages starting
// at page, carried by I/O bus bus. Page size is the third value of
// MemoryGeometry (8 KB). Records must be appended in time order;
// toMemory selects the direction (true = device writes memory).
// Internally at is stored in integer picoseconds, the simulator's
// native resolution.
func (tr *Trace) AppendDMA(at time.Duration, src DMASource, bus int, page, pages int, toMemory bool) error {
	r, err := makeDMARecord(at, src, bus, page, pages, toMemory)
	if err != nil {
		return err
	}
	if err := tr.checkAppend(at, page); err != nil {
		return err
	}
	tr.t.Records = append(tr.t.Records, r)
	return nil
}

// checkAppend rejects a record before it enters the trace, so a failed
// append leaves the trace exactly as it was (and appends stay O(1):
// only the new record needs checking against the last one).
func (tr *Trace) checkAppend(at time.Duration, page int) error {
	if page < 0 {
		return fmt.Errorf("dmamem: negative page %d", page)
	}
	if n := len(tr.t.Records); n > 0 && fromStd(at) < tr.t.Records[n-1].Time {
		return fmt.Errorf("dmamem: record at %v before predecessor at %v; traces are appended in time order",
			at, time.Duration(tr.t.Records[n-1].Time/1000)*time.Nanosecond)
	}
	return nil
}

// AppendProcessorAccess appends one 64-byte processor access to page.
func (tr *Trace) AppendProcessorAccess(at time.Duration, page int, write bool) error {
	r, err := makeProcRecord(at, page, write)
	if err != nil {
		return err
	}
	if err := tr.checkAppend(at, page); err != nil {
		return err
	}
	tr.t.Records = append(tr.t.Records, r)
	return nil
}

// SetClientResponse declares the workload's mean client-perceived
// response time and the number of DMA transfers on a client request's
// critical path; the CP-Limit calibration uses both.
func (tr *Trace) SetClientResponse(mean time.Duration, transfersPerRequest float64) {
	tr.t.Meta.MeanClientResponse = fromStdDur(mean)
	tr.t.Meta.TransfersPerClientRequest = transfersPerRequest
}

// Save stores the trace in the legacy fixed-width binary format. New
// code should prefer SaveFile, which writes the columnar .dmt
// container the simulator can replay from disk in bounded memory.
func (tr *Trace) Save(w io.Writer) error { return tr.t.WriteBinary(w) }

// ReadTrace loads a trace written by Save.
func ReadTrace(r io.Reader) (*Trace, error) {
	t, err := trace.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return &Trace{t: t}, nil
}

// SaveFile stores the trace as a .dmt container at path. The file can
// be replayed without loading it into memory by setting
// Simulation.TraceFile, inspected with StatTraceFile, or loaded back
// with ReadTraceFile.
func (tr *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.t.WriteDMT(f, trace.WriterOptions{}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile loads a .dmt container fully into memory — the inverse
// of SaveFile, for traces small enough to hold. Long traces should be
// replayed in place via Simulation.TraceFile instead.
func ReadTraceFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := trace.DecodeDMT(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Trace{t: t}, nil
}

// TraceFileInfo describes a .dmt container without reading its
// records: everything comes from the header and footer, so statting an
// hour-scale trace is instant.
type TraceFileInfo struct {
	// Name is the trace's label.
	Name string
	// Records is the total record count.
	Records int64
	// DMATransfers is the number of DMA transfer records; DMAPages is
	// the total pages they move.
	DMATransfers int64
	DMAPages     int64
	// Duration is the simulated span the trace covers.
	Duration time.Duration
	// ChunkRecords is the container's chunk size (records per chunk);
	// Chunks is the number of chunks. Replaying the file keeps at most
	// one decoded chunk in memory.
	ChunkRecords int
	Chunks       int64
}

// StatTraceFile reads a .dmt container's self-description from its
// header and footer without scanning the records.
func StatTraceFile(path string) (TraceFileInfo, error) {
	fr, err := trace.OpenDMTFile(path)
	if err != nil {
		return TraceFileInfo{}, err
	}
	defer fr.Close()
	sum := fr.Summary()
	return TraceFileInfo{
		Name:         sum.Name,
		Records:      sum.Records,
		DMATransfers: sum.DMATransfers,
		DMAPages:     sum.DMAPages,
		Duration:     time.Duration(sum.Duration.Seconds() * float64(time.Second)),
		ChunkRecords: sum.ChunkRecords,
		Chunks:       sum.Chunks,
	}, nil
}

// TraceWriter streams a trace straight to a .dmt container on disk,
// one record at a time, holding at most one chunk in memory: the way
// to produce traces far larger than RAM. Records must be appended in
// time order, exactly as with Trace's append methods; Close finalizes
// the container (an unclosed file is truncated and will be rejected on
// replay).
type TraceWriter struct {
	f *os.File
	w *trace.Writer
}

// CreateTraceFile creates a .dmt container at path and returns a
// streaming writer for a trace called name. The caller must Close it.
func CreateTraceFile(path, name string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w, err := trace.NewWriter(f, name, trace.WriterOptions{})
	if err != nil {
		f.Close()
		return nil, err
	}
	return &TraceWriter{f: f, w: w}, nil
}

// AppendDMA streams one DMA transfer record; the arguments mean the
// same as Trace.AppendDMA's.
func (tw *TraceWriter) AppendDMA(at time.Duration, src DMASource, bus int, page, pages int, toMemory bool) error {
	r, err := makeDMARecord(at, src, bus, page, pages, toMemory)
	if err != nil {
		return err
	}
	return tw.w.Append(r)
}

// AppendProcessorAccess streams one 64-byte processor access record.
func (tw *TraceWriter) AppendProcessorAccess(at time.Duration, page int, write bool) error {
	r, err := makeProcRecord(at, page, write)
	if err != nil {
		return err
	}
	return tw.w.Append(r)
}

// SetClientResponse declares the workload's mean client-perceived
// response time and critical-path transfer count, stored in the
// container's footer for the CP-Limit calibration. It may be called at
// any time before Close.
func (tw *TraceWriter) SetClientResponse(mean time.Duration, transfersPerRequest float64) {
	tw.w.SetMeta(trace.Meta{
		MeanClientResponse:        fromStdDur(mean),
		TransfersPerClientRequest: transfersPerRequest,
	})
}

// Close finalizes the container (footer, checksum) and closes the
// file. A TraceWriter that is never closed leaves an unreadable file.
func (tw *TraceWriter) Close() error {
	if err := tw.w.Close(); err != nil {
		tw.f.Close()
		return err
	}
	return tw.f.Close()
}

func fromStd(d time.Duration) sim.Time        { return sim.Time(d.Nanoseconds()) * 1000 }
func fromStdDur(d time.Duration) sim.Duration { return sim.Duration(d.Nanoseconds()) * 1000 }

// applyGeneratorOptions is the one Duration/Seed/rate defaulting rule
// every trace-generator option struct shares: a zero option keeps the
// generator's default, a non-zero option overrides it. The pointers
// address the fields of the generator's native config struct.
func applyGeneratorOptions(dur *sim.Duration, seed *uint64, rate *float64, oDur time.Duration, oSeed uint64, oRate float64) {
	if oDur != 0 {
		*dur = fromStdDur(oDur)
	}
	if oSeed != 0 {
		*seed = oSeed
	}
	if oRate != 0 {
		*rate = oRate
	}
}

// SyntheticOptions parameterizes the paper's synthetic traces.
type SyntheticOptions struct {
	// Duration of the trace (default 100ms, as in the evaluation).
	Duration time.Duration
	// Seed for the deterministic generator.
	Seed uint64
	// RatePerMs is the Poisson DMA transfer arrival rate (default 100).
	RatePerMs float64
	// Alpha is the Zipf page-popularity skew (default 1.0).
	Alpha float64
	// ProcPerTransfer injects exactly this many processor accesses per
	// transfer (database traces; the Figure 9 sweep).
	ProcPerTransfer int
	// MixedSizes switches from uniform 8 KB transfers to the
	// multi-block mixture for the size-sensitivity study.
	MixedSizes bool
}

func (o SyntheticOptions) st() synth.StConfig {
	cfg := synth.DefaultSt()
	applyGeneratorOptions(&cfg.Duration, &cfg.Seed, &cfg.RatePerMs, o.Duration, o.Seed, o.RatePerMs)
	if o.Alpha != 0 {
		cfg.Alpha = o.Alpha
	}
	if o.MixedSizes {
		cfg.Sizes = synth.MixedSizes()
	}
	return cfg
}

// SyntheticStorageTrace builds the paper's Synthetic-St workload:
// Poisson network and disk DMA transfers with Zipf page popularity.
func SyntheticStorageTrace(o SyntheticOptions) (*Trace, error) {
	t, err := synth.GenerateSt(o.st())
	if err != nil {
		return nil, err
	}
	return &Trace{t: t}, nil
}

// SyntheticDatabaseTrace builds the paper's Synthetic-Db workload:
// network DMAs plus Poisson processor accesses (10000/ms by default).
func SyntheticDatabaseTrace(o SyntheticOptions) (*Trace, error) {
	cfg := synth.DefaultDb()
	cfg.St = o.st()
	cfg.St.DiskFraction = 0
	if cfg.St.Seed == 1 {
		cfg.St.Seed = 2
	}
	if o.ProcPerTransfer > 0 {
		cfg.ProcPerTransfer = o.ProcPerTransfer
		cfg.ProcRatePerMs = 0
	}
	t, err := synth.GenerateDb(cfg)
	if err != nil {
		return nil, err
	}
	return &Trace{t: t}, nil
}

// ServerOptions parameterizes the full data-server workload models
// that synthesize the OLTP-St / OLTP-Db style traces of Table 2.
type ServerOptions struct {
	// Duration of the trace (default 100ms).
	Duration time.Duration
	// Seed for the deterministic generator.
	Seed uint64
	// RequestRatePerMs is the client request rate (default 45 for the
	// storage server, 100 for the database server).
	RequestRatePerMs float64
}

// apply overrides the generator config's duration, seed and rate
// fields with the options' non-zero values; every server constructor
// is a thin wrapper around its model's default config plus this.
func (o ServerOptions) apply(dur *sim.Duration, seed *uint64, rate *float64) {
	applyGeneratorOptions(dur, seed, rate, o.Duration, o.Seed, o.RequestRatePerMs)
}

// StorageServerTrace runs the storage-server model — client requests
// through a buffer cache, a disk array and a SAN — and returns the
// memory trace it induces along with its summary.
func StorageServerTrace(o ServerOptions) (*Trace, error) {
	cfg := server.DefaultStorage()
	o.apply(&cfg.Duration, &cfg.Seed, &cfg.RequestRatePerMs)
	res, err := server.GenerateStorage(cfg)
	if err != nil {
		return nil, err
	}
	return &Trace{t: res.Trace}, nil
}

// DecisionSupportTrace runs the TPC-H style decision-support model the
// paper lists as future work: rare, enormous analytical scans streamed
// from the disk array in large read-ahead units, with small aggregated
// results leaving over the network.
func DecisionSupportTrace(o ServerOptions) (*Trace, error) {
	cfg := server.DefaultDSS()
	o.apply(&cfg.Duration, &cfg.Seed, &cfg.QueryRatePerMs)
	res, err := server.GenerateDSS(cfg)
	if err != nil {
		return nil, err
	}
	return &Trace{t: res.Trace}, nil
}

// DatabaseServerTrace runs the database-server model — queries over a
// memory-resident bufferpool with processor accesses and result DMAs.
func DatabaseServerTrace(o ServerOptions) (*Trace, error) {
	cfg := server.DefaultDatabase()
	o.apply(&cfg.Duration, &cfg.Seed, &cfg.QueryRatePerMs)
	res, err := server.GenerateDatabase(cfg)
	if err != nil {
		return nil, err
	}
	return &Trace{t: res.Trace}, nil
}
