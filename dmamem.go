// Package dmamem is a trace-driven simulator for DMA-aware memory
// energy management in data servers, reproducing the system of
//
//	Pandey, Jiang, Zhou, Bianchini.
//	"DMA-Aware Memory Energy Management." HPCA 2006.
//
// Data servers move almost all of their memory traffic with network
// and disk DMA transfers. Because an I/O bus is about three times
// slower than an RDRAM chip, a chip serving one DMA stream is idle —
// at full power — two thirds of the time. This package implements the
// paper's two remedies on top of a multi-power-state memory model:
//
//   - Temporal alignment (DMA-TA): the memory controller delays DMA
//     requests aimed at sleeping chips and gathers transfers from
//     different I/O buses so their request streams interleave in
//     lockstep, bounded by a slack-based performance guarantee derived
//     from a client-perceived response-time limit (CP-Limit).
//   - Popularity-based layout (PL): pages are migrated so that the
//     hottest pages share a few chips, multiplying the alignment
//     opportunities and letting cold chips sleep.
//
// Quick start:
//
//	tr, _ := dmamem.SyntheticStorageTrace(dmamem.SyntheticOptions{
//		Duration: 100 * time.Millisecond,
//	})
//	cmp, _ := dmamem.Compare(dmamem.Simulation{
//		Technique: dmamem.TemporalAlignmentWithLayout,
//		CPLimit:   0.10,
//	}, tr)
//	fmt.Printf("energy savings: %.1f%%\n", 100*cmp.Savings)
package dmamem

import (
	"context"
	"fmt"
	"strings"
	"time"

	"dmamem/internal/bus"
	"dmamem/internal/controller"
	"dmamem/internal/core"
	"dmamem/internal/energy"
	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// Technique selects the energy-management scheme.
type Technique int

const (
	// Baseline is the dynamic threshold policy alone (Lebeck et al.),
	// the paper's point of comparison.
	Baseline Technique = iota
	// TemporalAlignment adds DMA-TA gathering on top of the baseline.
	TemporalAlignment
	// TemporalAlignmentWithLayout adds both DMA-TA and the
	// popularity-based layout (the paper's DMA-TA-PL).
	TemporalAlignmentWithLayout
	// NoPowerManagement keeps every chip active; the performance
	// reference the CP-Limit guarantee is defined against.
	NoPowerManagement
)

func (t Technique) String() string {
	switch t {
	case Baseline:
		return "baseline"
	case TemporalAlignment:
		return "dma-ta"
	case TemporalAlignmentWithLayout:
		return "dma-ta-pl"
	case NoPowerManagement:
		return "no-pm"
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// Simulation configures one run. The zero value is the paper's
// baseline system: 32 x 32 MB RDRAM chips at 3.2 GB/s, three PCI-X
// buses, dynamic threshold power management, interleaved page layout.
//
// On every field the zero value selects the documented default; any
// other out-of-range value is a loud error from Validate (which Run
// and Compare call first), never a silent fallback.
type Simulation struct {
	// Technique to apply. The zero value is Baseline.
	Technique Technique
	// CPLimit is the permitted client-perceived mean response-time
	// degradation (e.g. 0.10); it parameterizes DMA-TA's slack.
	// Required positive for TemporalAlignment and
	// TemporalAlignmentWithLayout; ignored by Baseline and
	// NoPowerManagement. Negative values are rejected.
	CPLimit float64
	// PLGroups is the number of popularity groups including the cold
	// group. Zero selects the paper's best setting, 2; set values must
	// be at least 2 (a hot and a cold group).
	PLGroups int
	// PLHotShare is the fraction of DMA requests the hot chips are
	// sized to absorb. Zero selects the default 0.6; set values must
	// lie strictly inside (0, 1) — at 1 every chip is hot and the
	// layout degenerates to the interleaved baseline.
	PLHotShare float64
	// PLInterval is the layout rebalance period. Zero selects the
	// default 20ms; negative values are rejected.
	PLInterval time.Duration
	// Buses is the number of I/O buses. Zero selects the default 3;
	// negative values are rejected.
	Buses int
	// BusBandwidth in bytes/s. Zero selects the PCI-X default,
	// 1.064 GB/s; negative values are rejected.
	BusBandwidth float64
	// StaticMode, when non-empty, replaces the dynamic threshold
	// policy with a static one that parks idle chips in the named
	// low-power state of the selected technology ("standby", "nap" or
	// "powerdown" for the RDRAM default; "self-refresh" and friends
	// for the DDR3/DDR4/LPDDR4 backends). Empty keeps the dynamic
	// threshold policy; a name the technology's state machine does not
	// have is rejected, listing the valid ones.
	StaticMode string
	// MemoryTech selects the memory technology by registry name:
	// "" or "rdram" for the paper's 3.2 GB/s RDRAM part, "ddr400" (or
	// its historical alias "ddr") for a 2.1 GB/s DDR400-class part
	// (Section 5.4's "other memory technologies"), "ddr3-1600",
	// "ddr4-2400" and "lpddr4" for calibrated modern state machines
	// with their own power-down and self-refresh chains. Names are
	// trimmed and case-insensitive; Techs enumerates them. Any other
	// string is rejected, listing the registered technologies.
	MemoryTech string
	// Channels groups the 32 chips into that many independently
	// clocked memory channels with channel-interleaved page mapping
	// (DDR-style topology). Zero keeps the legacy single-channel
	// behavior; set values must divide the chip count. A 1-channel
	// topology is bit-identical to the legacy path.
	Channels int
	// ChannelStripePages is the number of consecutive pages placed on
	// one channel before the mapping advances to the next (only
	// meaningful with Channels set). Zero selects page-granular
	// striping (1); negative values are rejected.
	ChannelStripePages int
	// ChannelBandwidth caps the aggregate delivery rate into one
	// channel, bytes/s (only meaningful with Channels set). Zero means
	// no per-channel cap; negative values are rejected.
	ChannelBandwidth float64
	// TraceFile streams the trace from a .dmt container on disk (see
	// CreateTraceFile and Trace.SaveFile) instead of an in-memory
	// Trace: pass a nil trace to Run/Compare and set this path. The
	// records are decoded chunk by chunk, so memory stays flat no
	// matter how long the trace is, and the report is bit-identical to
	// running the same records from memory. Setting both a trace and
	// TraceFile is an error.
	TraceFile string
	// Workers selects the parallel barrier engine: zero keeps the
	// legacy serial event loop; any positive value runs one event loop
	// per channel under deterministic epoch barriers, executed by at
	// most Workers goroutines. Reports are independent of the worker
	// count; on a single channel they are additionally bit-identical to
	// the serial engine. Every technique runs on multi-channel parallel
	// topologies, including TemporalAlignmentWithLayout — the layout's
	// global state is observed and rebalanced at epoch barriers.
	// Negative values are rejected.
	Workers int
	// BarrierEpoch is the parallel engine's barrier period in
	// simulated time (only meaningful with Workers set). Zero selects
	// the default 50 us. Reports do not depend on it — the adaptive
	// barrier elides provably idle boundaries, so a longer epoch only
	// changes wall-clock speed. Exposed as -epoch on dmamem-sim and
	// dmamem-bench. Negative values are rejected.
	BarrierEpoch time.Duration
}

// Validate checks every field against its legal range and returns a
// descriptive error for the first violation. The zero value of each
// field (meaning "use the default") is always valid; Run and Compare
// validate implicitly, so calling Validate first is only needed to
// fail fast before building traces.
func (s Simulation) Validate() error {
	if s.Technique < Baseline || s.Technique > NoPowerManagement {
		return fmt.Errorf("dmamem: unknown technique %d", int(s.Technique))
	}
	if s.CPLimit < 0 {
		return fmt.Errorf("dmamem: negative CPLimit %v", s.CPLimit)
	}
	if (s.Technique == TemporalAlignment || s.Technique == TemporalAlignmentWithLayout) && s.CPLimit == 0 {
		return fmt.Errorf("dmamem: %v needs a positive CPLimit", s.Technique)
	}
	if s.PLGroups != 0 && s.PLGroups < 2 {
		return fmt.Errorf("dmamem: PLGroups %d out of range: a layout needs a hot and a cold group (>= 2); 0 selects the default 2", s.PLGroups)
	}
	if s.PLHotShare != 0 && (s.PLHotShare < 0 || s.PLHotShare >= 1) {
		return fmt.Errorf("dmamem: PLHotShare %v outside (0,1); 0 selects the default 0.6", s.PLHotShare)
	}
	if s.PLInterval < 0 {
		return fmt.Errorf("dmamem: negative PLInterval %v; 0 selects the default 20ms", s.PLInterval)
	}
	if s.Buses < 0 {
		return fmt.Errorf("dmamem: negative bus count %d; 0 selects the default 3", s.Buses)
	}
	if s.BusBandwidth < 0 {
		return fmt.Errorf("dmamem: negative BusBandwidth %v; 0 selects the PCI-X default", s.BusBandwidth)
	}
	model, err := s.memModel()
	if err != nil {
		return err
	}
	if _, err := staticPolicy(model, s.StaticMode); err != nil {
		return err
	}
	if s.Channels < 0 {
		return fmt.Errorf("dmamem: negative Channels %d; 0 selects the single-channel default", s.Channels)
	}
	if s.ChannelStripePages < 0 {
		return fmt.Errorf("dmamem: negative ChannelStripePages %d; 0 selects page-granular striping", s.ChannelStripePages)
	}
	if s.ChannelBandwidth < 0 {
		return fmt.Errorf("dmamem: negative ChannelBandwidth %v; 0 means no per-channel cap", s.ChannelBandwidth)
	}
	if (s.ChannelStripePages != 0 || s.ChannelBandwidth != 0) && s.Channels == 0 {
		return fmt.Errorf("dmamem: ChannelStripePages/ChannelBandwidth need Channels set")
	}
	if s.Workers < 0 {
		return fmt.Errorf("dmamem: negative Workers %d; 0 selects the serial engine", s.Workers)
	}
	if s.BarrierEpoch < 0 {
		return fmt.Errorf("dmamem: negative BarrierEpoch %v; 0 selects the default 50us", s.BarrierEpoch)
	}
	if s.Channels != 0 {
		topo := memsys.Topology{
			Channels:         s.Channels,
			StripePages:      s.ChannelStripePages,
			ChannelBandwidth: s.ChannelBandwidth,
		}
		if err := topo.Validate(memsys.Default()); err != nil {
			return fmt.Errorf("dmamem: %w", err)
		}
	}
	return nil
}

func (s Simulation) coreConfig() (core.Config, error) {
	cfg := core.Config{}
	if err := s.Validate(); err != nil {
		return cfg, err
	}
	cfg.TraceFile = s.TraceFile
	cfg.Workers = s.Workers
	cfg.BarrierEpoch = sim.Duration(s.BarrierEpoch.Nanoseconds()) * sim.Nanosecond
	if s.Buses != 0 || s.BusBandwidth != 0 {
		bc := bus.DefaultConfig()
		if s.Buses != 0 {
			bc.Count = s.Buses
		}
		if s.BusBandwidth != 0 {
			bc.Bandwidth = s.BusBandwidth
		}
		cfg.Buses = bc
	}
	cfg.Tech = s.MemoryTech
	if s.Channels != 0 {
		cfg.Topology = memsys.Topology{
			Channels:         s.Channels,
			StripePages:      s.ChannelStripePages,
			ChannelBandwidth: s.ChannelBandwidth,
		}
	}
	if s.StaticMode != "" {
		// Validate (above) already resolved both; errors are impossible
		// here and would be a registry/model inconsistency.
		model, err := s.memModel()
		if err != nil {
			return cfg, err
		}
		static, err := staticPolicy(model, s.StaticMode)
		if err != nil {
			return cfg, err
		}
		cfg.Policy = static
	}
	switch s.Technique {
	case NoPowerManagement:
		cfg.Policy = policy.AlwaysActive{}
		cfg.Scheme = "no-pm"
	case TemporalAlignment, TemporalAlignmentWithLayout:
		cfg.TA = controller.DefaultTA(0)
		cfg.CPLimit = s.CPLimit
		if s.Technique == TemporalAlignmentWithLayout {
			pl := layout.DefaultConfig()
			if s.PLGroups != 0 {
				pl.Groups = s.PLGroups
			}
			if s.PLHotShare != 0 {
				pl.HotShare = s.PLHotShare
			}
			if s.PLInterval != 0 {
				pl.Interval = sim.Duration(s.PLInterval.Nanoseconds()) * sim.Nanosecond
			}
			cfg.PL = &pl
		}
	}
	return cfg, nil
}

// memModel resolves MemoryTech through the technology registry — the
// single lookup behind Validate and coreConfig (there is deliberately
// no second string switch to fall out of sync). Unknown names error
// loudly, listing every registered technology.
func (s Simulation) memModel() (*energy.Model, error) {
	m, err := energy.Lookup(s.MemoryTech)
	if err != nil {
		return nil, fmt.Errorf("dmamem: %w", err)
	}
	return m, nil
}

// staticPolicy resolves StaticMode against the technology model's
// state names. Empty means no static policy; the operating state and
// unknown names are rejected with the model's low-power states listed.
func staticPolicy(m *energy.Model, mode string) (*policy.Static, error) {
	if mode == "" {
		return nil, nil
	}
	st, err := m.StateIndex(mode)
	if err != nil || st == energy.Active {
		return nil, fmt.Errorf("dmamem: unknown static mode %q for %s (want one of %s)",
			mode, m.Name, strings.Join(m.StateNames()[1:], ", "))
	}
	return &policy.Static{Mode: st}, nil
}

// Techs returns the registered memory technologies MemoryTech accepts,
// sorted by canonical name (the empty string additionally selects the
// paper's RDRAM default). New backends registered through
// internal/energy's registry appear here automatically.
func Techs() []string { return energy.Techs() }

// internalTrace unwraps a possibly-nil public trace for the core
// layer, which accepts nil when a Simulation.TraceFile streams the
// records from disk instead.
func internalTrace(tr *Trace) *trace.Trace {
	if tr == nil {
		return nil
	}
	return tr.t
}

// Run simulates one configuration over a trace and reports the energy
// and performance outcome. The trace may be nil when s.TraceFile names
// a .dmt container to stream from.
func Run(s Simulation, tr *Trace) (*Report, error) {
	cfg, err := s.coreConfig()
	if err != nil {
		return nil, err
	}
	res, err := core.Run(cfg, internalTrace(tr))
	if err != nil {
		return nil, err
	}
	return newReport(res), nil
}

// Comparison is the outcome of running a technique against the
// baseline over the same trace and metering window.
type Comparison struct {
	Baseline  *Report
	Technique *Report
	// Savings is the fractional energy reduction relative to the
	// baseline (the paper's headline metric).
	Savings float64
}

// Compare runs the baseline and the given technique over the trace
// with a shared metering window. The baseline inherits the same
// hardware configuration (buses, static policy) so the comparison
// isolates the technique. The trace may be nil when s.TraceFile names
// a .dmt container: both runs then replay it from disk in bounded
// memory.
func Compare(s Simulation, tr *Trace) (*Comparison, error) {
	return CompareContext(context.Background(), s, tr, 1)
}

// CompareContext is Compare with cancellation and optional
// concurrency: when parallel > 1 the baseline and technique
// simulations run on two goroutines (each simulation is confined to a
// single goroutine — see the internal/sim ownership contract), and the
// resulting reports are bit-identical to Compare's. Cancellation is
// observed mid-run: the engines poll ctx every few thousand
// dispatches, so even a simulation in flight aborts within
// microseconds of wall time with ctx.Err().
func CompareContext(ctx context.Context, s Simulation, tr *Trace, parallel int) (*Comparison, error) {
	tech, err := s.coreConfig()
	if err != nil {
		return nil, err
	}
	baseSim := s
	baseSim.Technique = Baseline
	baseCfg, err := baseSim.coreConfig()
	if err != nil {
		return nil, err
	}
	base, techRes, savings, err := core.RunBaselinePairParallel(ctx, baseCfg, tech, internalTrace(tr), parallel)
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Baseline:  newReport(base),
		Technique: newReport(techRes),
		Savings:   savings,
	}, nil
}

// MemoryGeometry returns the simulated memory system's shape, for
// callers constructing their own traces: chips, pages per chip, page
// size in bytes.
func MemoryGeometry() (chips, pagesPerChip, pageBytes int) {
	g := memsys.Default()
	return g.NumChips, g.PagesPerChip(), g.PageBytes
}
