package dmamem

// Ablation benchmarks for the design choices DESIGN.md calls out, each
// comparing DMA-TA-PL variants on the same trace (go test
// -bench=Ablation). Metrics are energy savings over the shared
// baseline, so each bench reads as a mini study:
//
//   - epoch-length sensitivity (the paper claims insensitivity)
//   - gather target k (release at 2 vs 3 distinct buses)
//   - PL hot share p
//   - PL migration interval
//   - migration hysteresis (our optional addition; the paper has none)
//   - gating cost-benefit check (on by default; the paper gates always)
//   - static vs dynamic low-level policy beneath DMA-TA (Section 2.2)
//   - self-tuning thresholds (the paper reports "results were similar")
//   - transfer-size variance (unequal sizes break lockstep)
//   - memory technology (RDRAM vs DDR400; Section 5.4)

import (
	"testing"
	"time"

	"dmamem/internal/controller"
	"dmamem/internal/core"
	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

func ablationTrace(b *testing.B) *trace.Trace {
	b.Helper()
	w, err := core.SyntheticStWorkload(25*sim.Millisecond, 1)
	if err != nil {
		b.Fatal(err)
	}
	return w.Trace
}

func savingsOf(b *testing.B, cfg core.Config, tr *trace.Trace) float64 {
	b.Helper()
	_, _, s, err := core.RunBaselinePair(core.Config{}, cfg, tr)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func taplConfig() core.Config {
	pl := layout.DefaultConfig()
	return core.Config{TA: controller.DefaultTA(0), CPLimit: 0.10, PL: &pl}
}

// BenchmarkAblationEpochLength verifies the paper's claim that results
// are insensitive to the epoch setting used for slack accounting.
func BenchmarkAblationEpochLength(b *testing.B) {
	tr := ablationTrace(b)
	var s2, s10, s50 float64
	for i := 0; i < b.N; i++ {
		for _, e := range []struct {
			len  sim.Duration
			dest *float64
		}{
			{2 * sim.Microsecond, &s2},
			{10 * sim.Microsecond, &s10},
			{50 * sim.Microsecond, &s50},
		} {
			cfg := taplConfig()
			ta := *cfg.TA
			ta.EpochLength = e.len
			cfg.TA = &ta
			*e.dest = savingsOf(b, cfg, tr)
		}
	}
	b.ReportMetric(100*s2, "epoch2us%")
	b.ReportMetric(100*s10, "epoch10us%")
	b.ReportMetric(100*s50, "epoch50us%")
}

// BenchmarkAblationGatherTarget compares releasing at 2 vs 3 distinct
// buses: partial alignment (uf 2/3) sooner versus full alignment
// later.
func BenchmarkAblationGatherTarget(b *testing.B) {
	tr := ablationTrace(b)
	var k2, k3 float64
	for i := 0; i < b.N; i++ {
		for _, k := range []struct {
			k    int
			dest *float64
		}{{2, &k2}, {3, &k3}} {
			cfg := taplConfig()
			ta := *cfg.TA
			ta.GatherTarget = k.k
			cfg.TA = &ta
			*k.dest = savingsOf(b, cfg, tr)
		}
	}
	b.ReportMetric(100*k2, "k2%")
	b.ReportMetric(100*k3, "k3%")
}

// BenchmarkAblationHotShare sweeps PL's p parameter (fraction of DMA
// requests the hot chips absorb).
func BenchmarkAblationHotShare(b *testing.B) {
	tr := ablationTrace(b)
	var s40, s60, s80 float64
	for i := 0; i < b.N; i++ {
		for _, h := range []struct {
			p    float64
			dest *float64
		}{{0.4, &s40}, {0.6, &s60}, {0.8, &s80}} {
			cfg := taplConfig()
			pl := *cfg.PL
			pl.HotShare = h.p
			cfg.PL = &pl
			*h.dest = savingsOf(b, cfg, tr)
		}
	}
	b.ReportMetric(100*s40, "p40%")
	b.ReportMetric(100*s60, "p60%")
	b.ReportMetric(100*s80, "p80%")
}

// BenchmarkAblationMigrationInterval sweeps PL's rebalance period.
func BenchmarkAblationMigrationInterval(b *testing.B) {
	tr := ablationTrace(b)
	var s5, s20 float64
	for i := 0; i < b.N; i++ {
		for _, m := range []struct {
			iv   sim.Duration
			dest *float64
		}{{5 * sim.Millisecond, &s5}, {20 * sim.Millisecond, &s20}} {
			cfg := taplConfig()
			pl := *cfg.PL
			pl.Interval = m.iv
			cfg.PL = &pl
			*m.dest = savingsOf(b, cfg, tr)
		}
	}
	b.ReportMetric(100*s5, "5ms%")
	b.ReportMetric(100*s20, "20ms%")
}

// BenchmarkAblationHysteresis compares PL with and without the
// migration hysteresis we add on top of the paper.
func BenchmarkAblationHysteresis(b *testing.B) {
	tr := ablationTrace(b)
	var off, on float64
	for i := 0; i < b.N; i++ {
		cfg := taplConfig()
		off = savingsOf(b, cfg, tr)
		pl := *cfg.PL
		pl.MigrateRatio = 2
		cfg.PL = &pl
		on = savingsOf(b, cfg, tr)
	}
	b.ReportMetric(100*off, "off%")
	b.ReportMetric(100*on, "on%")
}

// BenchmarkAblationCostBenefit compares the default gating cost-benefit
// check against the paper's unconditional gating.
func BenchmarkAblationCostBenefit(b *testing.B) {
	tr := ablationTrace(b)
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfg := taplConfig()
		with = savingsOf(b, cfg, tr)
		ta := *cfg.TA
		ta.NoCostBenefit = true
		cfg.TA = &ta
		without = savingsOf(b, cfg, tr)
	}
	b.ReportMetric(100*with, "with%")
	b.ReportMetric(100*without, "without%")
}

// BenchmarkAblationStaticPolicy runs DMA-TA-PL on top of static
// low-level policies (the paper notes the techniques apply to both).
func BenchmarkAblationStaticPolicy(b *testing.B) {
	tr := ablationTrace(b)
	// Each variant is compared against a baseline running the SAME
	// low-level policy, so the metric isolates what DMA-TA-PL adds.
	vs := func(pol policy.Policy) float64 {
		base := core.Config{Policy: pol}
		cfg := taplConfig()
		cfg.Policy = pol
		_, _, s, err := core.RunBaselinePair(base, cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	var dynamic, nap, powerdown float64
	for i := 0; i < b.N; i++ {
		dynamic = vs(policy.NewDynamic())
		nap = vs(&policy.Static{Mode: 2})
		powerdown = vs(&policy.Static{Mode: 3})
	}
	b.ReportMetric(100*dynamic, "dynamic%")
	b.ReportMetric(100*nap, "static-nap%")
	b.ReportMetric(100*powerdown, "static-pd%")
}

// BenchmarkAblationSelfTuning reproduces the paper's aside that
// self-tuning threshold schemes behave like the fixed dynamic chain for
// DMA-dominated workloads.
func BenchmarkAblationSelfTuning(b *testing.B) {
	tr := ablationTrace(b)
	var fixed, tuned float64
	for i := 0; i < b.N; i++ {
		window := tr.Duration() + 2*sim.Millisecond
		fixedRes, err := core.Run(core.Config{MeterWindow: window}, tr)
		if err != nil {
			b.Fatal(err)
		}
		tunedRes, err := core.Run(core.Config{Policy: policy.NewSelfTuning(), MeterWindow: window}, tr)
		if err != nil {
			b.Fatal(err)
		}
		fixed = fixedRes.Report.TotalEnergy()
		tuned = tunedRes.Report.TotalEnergy()
	}
	b.ReportMetric(1e3*fixed, "fixed-mJ")
	b.ReportMetric(1e3*tuned, "selftuned-mJ")
}

// BenchmarkAblationTransferSizes compares uniform 8 KB transfers with
// the mixed-size distribution: unequal gathered members fall out of
// lockstep when the short ones finish.
func BenchmarkAblationTransferSizes(b *testing.B) {
	var uniform, mixed float64
	for i := 0; i < b.N; i++ {
		trU, err := SyntheticStorageTrace(SyntheticOptions{Duration: 25 * time.Millisecond, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		trM, err := SyntheticStorageTrace(SyntheticOptions{Duration: 25 * time.Millisecond, Seed: 1, MixedSizes: true})
		if err != nil {
			b.Fatal(err)
		}
		cu, err := Compare(Simulation{Technique: TemporalAlignmentWithLayout, CPLimit: 0.10}, trU)
		if err != nil {
			b.Fatal(err)
		}
		cm, err := Compare(Simulation{Technique: TemporalAlignmentWithLayout, CPLimit: 0.10}, trM)
		if err != nil {
			b.Fatal(err)
		}
		uniform, mixed = cu.Savings, cm.Savings
	}
	b.ReportMetric(100*uniform, "uniform%")
	b.ReportMetric(100*mixed, "mixed%")
}

// BenchmarkAblationMemoryTech compares RDRAM (ratio ~3) with DDR400
// (ratio ~2): Section 5.4's "similar analysis, different absolute
// numbers".
func BenchmarkAblationMemoryTech(b *testing.B) {
	var rdram, ddr float64
	for i := 0; i < b.N; i++ {
		tr, err := SyntheticStorageTrace(SyntheticOptions{Duration: 25 * time.Millisecond, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cr, err := Compare(Simulation{Technique: TemporalAlignmentWithLayout, CPLimit: 0.10}, tr)
		if err != nil {
			b.Fatal(err)
		}
		cd, err := Compare(Simulation{Technique: TemporalAlignmentWithLayout, CPLimit: 0.10, MemoryTech: "ddr"}, tr)
		if err != nil {
			b.Fatal(err)
		}
		rdram, ddr = cr.Savings, cd.Savings
	}
	b.ReportMetric(100*rdram, "rdram%")
	b.ReportMetric(100*ddr, "ddr%")
}

// BenchmarkAblationBaselineLayout compares interleaved and sequential
// baseline page layouts beneath the techniques.
func BenchmarkAblationBaselineLayout(b *testing.B) {
	tr := ablationTrace(b)
	var interleaved, sequential float64
	for i := 0; i < b.N; i++ {
		interleaved = savingsOf(b, taplConfig(), tr)
		seqBase := core.Config{Mapper: seqMapper()}
		cfg := taplConfig()
		window := tr.Duration() + 2*sim.Millisecond
		seqBase.MeterWindow = window
		cfg.MeterWindow = window
		baseRes, err := core.Run(seqBase, tr)
		if err != nil {
			b.Fatal(err)
		}
		techRes, err := core.Run(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		sequential = techRes.Report.Savings(baseRes.Report)
	}
	b.ReportMetric(100*interleaved, "vs-interleaved%")
	b.ReportMetric(100*sequential, "vs-sequential%")
}

func seqMapper() memsys.Mapper {
	g := memsys.Default()
	return memsys.SequentialMapper{PagesPerChip: g.PagesPerChip()}
}
