package dmamem

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestAppendDMAErrors covers every AppendDMA rejection: bad page
// counts, bad bus numbers, negative pages, and out-of-order times. A
// rejected append must leave the trace untouched and usable.
func TestAppendDMAErrors(t *testing.T) {
	tr := NewTrace("manual")
	ok := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	bad := func(err error, want string) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("error = %v, want mention of %q", err, want)
		}
	}
	ok(tr.AppendDMA(10*time.Microsecond, FromNetwork, 0, 0, 1, true))

	bad(tr.AppendDMA(20*time.Microsecond, FromNetwork, 0, 0, 0, true), "pages")
	bad(tr.AppendDMA(20*time.Microsecond, FromNetwork, 0, 0, -3, true), "pages")
	bad(tr.AppendDMA(20*time.Microsecond, FromNetwork, 0, 0, 1<<15+1, true), "pages")
	bad(tr.AppendDMA(20*time.Microsecond, FromNetwork, -1, 0, 1, true), "bus")
	bad(tr.AppendDMA(20*time.Microsecond, FromDisk, 256, 0, 1, true), "bus")
	bad(tr.AppendDMA(20*time.Microsecond, FromDisk, 0, -1, 1, true), "page")
	bad(tr.AppendDMA(5*time.Microsecond, FromDisk, 0, 0, 1, true), "order")

	if tr.Len() != 1 {
		t.Fatalf("rejected appends grew the trace to %d records", tr.Len())
	}
	// The trace must still accept in-order records after rejections.
	ok(tr.AppendDMA(30*time.Microsecond, FromDisk, 1, 4, 2, false))
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

// TestAppendProcessorAccessErrors covers the processor-access
// rejections: negative page and out-of-order time.
func TestAppendProcessorAccessErrors(t *testing.T) {
	tr := NewTrace("manual")
	if err := tr.AppendProcessorAccess(10*time.Microsecond, 3, false); err != nil {
		t.Fatal(err)
	}
	if err := tr.AppendProcessorAccess(20*time.Microsecond, -1, true); err == nil {
		t.Fatal("negative page accepted")
	}
	if err := tr.AppendProcessorAccess(5*time.Microsecond, 3, true); err == nil {
		t.Fatal("out-of-order access accepted")
	}
	if tr.Len() != 1 {
		t.Fatalf("rejected appends grew the trace to %d records", tr.Len())
	}
	// Equal timestamps are in order (many records share an instant).
	if err := tr.AppendProcessorAccess(10*time.Microsecond, 4, true); err != nil {
		t.Fatalf("same-instant append rejected: %v", err)
	}
}

// TestManualTraceRuns proves a manually built trace drives a full
// simulation (the error paths above aren't blocking the happy path).
func TestManualTraceRuns(t *testing.T) {
	tr := NewTrace("manual")
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 50 * time.Microsecond
		if err := tr.AppendDMA(at, FromNetwork, i%3, (i*7)%512, 1, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Run(Simulation{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalEnergy <= 0 {
		t.Fatalf("TotalEnergy = %v", rep.TotalEnergy)
	}
}

// TestSimulationValidate walks every field's rejection range and
// confirms the zero value and defaults pass.
func TestSimulationValidate(t *testing.T) {
	valid := []Simulation{
		{},
		{Technique: TemporalAlignment, CPLimit: 0.10},
		{Technique: TemporalAlignmentWithLayout, CPLimit: 0.30,
			PLGroups: 3, PLHotShare: 0.8, PLInterval: 10 * time.Millisecond},
		{Buses: 5, BusBandwidth: 2e9, StaticMode: "nap", MemoryTech: "ddr"},
		{Technique: NoPowerManagement, StaticMode: "powerdown", MemoryTech: "rdram"},
	}
	for i, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("valid[%d]: %v", i, err)
		}
	}
	invalid := []struct {
		s    Simulation
		want string
	}{
		{Simulation{Technique: Technique(99)}, "technique"},
		{Simulation{Technique: Technique(-1)}, "technique"},
		{Simulation{CPLimit: -0.1}, "CPLimit"},
		{Simulation{Technique: TemporalAlignment}, "CPLimit"},
		{Simulation{Technique: TemporalAlignmentWithLayout}, "CPLimit"},
		{Simulation{PLGroups: -1}, "PLGroups"},
		{Simulation{PLGroups: 1}, "PLGroups"},
		{Simulation{PLHotShare: -0.5}, "PLHotShare"},
		{Simulation{PLHotShare: 1.0}, "PLHotShare"},
		{Simulation{PLHotShare: 1.5}, "PLHotShare"},
		{Simulation{PLInterval: -time.Millisecond}, "PLInterval"},
		{Simulation{Buses: -2}, "bus count"},
		{Simulation{BusBandwidth: -1}, "BusBandwidth"},
		{Simulation{StaticMode: "doze"}, "static mode"},
		{Simulation{MemoryTech: "sram"}, "memory technology"},
	}
	for i, c := range invalid {
		err := c.s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("invalid[%d]: error = %v, want mention of %q", i, err, c.want)
		}
	}
}

// TestRunAndCompareValidateLoudly proves the entry points surface
// Validate errors instead of silently falling back to defaults.
func TestRunAndCompareValidateLoudly(t *testing.T) {
	tr, err := SyntheticStorageTrace(SyntheticOptions{Duration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	badSims := []Simulation{
		{PLHotShare: 2},
		{StaticMode: "hibernate"},
		{Technique: TemporalAlignment, CPLimit: -0.10},
	}
	for i, s := range badSims {
		if _, err := Run(s, tr); err == nil {
			t.Errorf("Run accepted invalid simulation %d", i)
		}
		if _, err := Compare(s, tr); err == nil {
			t.Errorf("Compare accepted invalid simulation %d", i)
		}
	}
}

// TestCompareContextCancel: a cancelled context aborts the comparison
// mid-run with the context's error.
func TestCompareContextCancel(t *testing.T) {
	tr, err := SyntheticStorageTrace(SyntheticOptions{Duration: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []int{1, 2} {
		_, err = CompareContext(ctx, Simulation{Technique: TemporalAlignment, CPLimit: 0.10}, tr, parallel)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("parallel=%d: err = %v, want context.Canceled", parallel, err)
		}
	}
}

// TestServerOptionOverrides pins the shared option-defaulting helper:
// zero keeps the model default, non-zero overrides, for all four
// generator entry points.
func TestServerOptionOverrides(t *testing.T) {
	short, err := StorageServerTrace(ServerOptions{Duration: 2 * time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d := short.Duration(); d > 3*time.Millisecond {
		t.Errorf("duration override ignored: %v", d)
	}
	dflt, err := StorageServerTrace(ServerOptions{Duration: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reseeded, err := StorageServerTrace(ServerOptions{Duration: 2 * time.Millisecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if dflt.Len() == 0 || short.Len() != reseeded.Len() {
		t.Errorf("seed determinism: %d vs %d records", short.Len(), reseeded.Len())
	}
	slow, err := SyntheticDatabaseTrace(SyntheticOptions{Duration: 2 * time.Millisecond, RatePerMs: 10})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SyntheticDatabaseTrace(SyntheticOptions{Duration: 2 * time.Millisecond, RatePerMs: 300})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Len() >= fast.Len() {
		t.Errorf("rate override ignored: %d records at 10/ms vs %d at 300/ms", slow.Len(), fast.Len())
	}
}
