package dmamem

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestTraceFileRoundTrip pins the public record-then-replay path: a
// trace streamed through CreateTraceFile must stat, load and simulate
// identically to the same trace built in memory and SaveFile'd.
func TestTraceFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	streamed := filepath.Join(dir, "streamed.dmt")
	saved := filepath.Join(dir, "saved.dmt")

	mem := NewTrace("roundtrip")
	tw, err := CreateTraceFile(streamed, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	_, _, pageBytes := MemoryGeometry()
	if pageBytes <= 0 {
		t.Fatal("bad geometry")
	}
	for i := 0; i < 2000; i++ {
		at := time.Duration(i) * 40 * time.Microsecond
		page := (i * 13) % 1000
		if i%5 == 4 {
			if err := mem.AppendProcessorAccess(at, page, i%2 == 0); err != nil {
				t.Fatal(err)
			}
			if err := tw.AppendProcessorAccess(at, page, i%2 == 0); err != nil {
				t.Fatal(err)
			}
			continue
		}
		src := FromNetwork
		if i%3 == 0 {
			src = FromDisk
		}
		if err := mem.AppendDMA(at, src, i%3, page, 1+i%2, i%2 == 0); err != nil {
			t.Fatal(err)
		}
		if err := tw.AppendDMA(at, src, i%3, page, 1+i%2, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	mem.SetClientResponse(time.Millisecond, 2)
	tw.SetClientResponse(time.Millisecond, 2)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mem.SaveFile(saved); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{streamed, saved} {
		info, err := StatTraceFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if info.Name != "roundtrip" || info.Records != 2000 {
			t.Fatalf("%s: info %+v", path, info)
		}
		if info.Duration != mem.Duration() {
			t.Fatalf("%s: duration %v, want %v", path, info.Duration, mem.Duration())
		}
		loaded, err := ReadTraceFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if loaded.Len() != mem.Len() || loaded.Name() != mem.Name() {
			t.Fatalf("%s: loaded %d records as %q", path, loaded.Len(), loaded.Name())
		}
	}

	// The headline gate at the public level: replaying the file must
	// report identically to simulating the in-memory trace.
	s := Simulation{Technique: TemporalAlignment, CPLimit: 0.10}
	memRep, err := Run(s, mem)
	if err != nil {
		t.Fatal(err)
	}
	s.TraceFile = streamed
	fileRep, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(memRep, fileRep) {
		t.Fatalf("file-backed report differs:\nmem:  %+v\nfile: %+v", memRep, fileRep)
	}

	cmp, err := Compare(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	memCmp, err := Compare(Simulation{Technique: TemporalAlignment, CPLimit: 0.10}, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(memCmp, cmp) {
		t.Fatal("file-backed comparison differs from in-memory")
	}
}

// TestTraceFileErrors pins the public failure modes.
func TestTraceFileErrors(t *testing.T) {
	if _, err := Run(Simulation{}, nil); err == nil || !strings.Contains(err.Error(), "TraceFile") {
		t.Fatalf("nil trace without TraceFile: %v", err)
	}
	tr := NewTrace("x")
	if err := tr.AppendDMA(0, FromNetwork, 0, 0, 1, true); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.dmt")
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Simulation{TraceFile: path}, tr); err == nil {
		t.Fatal("both trace and TraceFile accepted")
	}
	if _, err := StatTraceFile(filepath.Join(t.TempDir(), "missing.dmt")); err == nil {
		t.Fatal("missing file statted")
	}
	if _, err := ReadTraceFile(path); err != nil {
		t.Fatalf("ReadTraceFile: %v", err)
	}

	// TraceWriter enforces the same field validation as Trace.
	tw, err := CreateTraceFile(filepath.Join(t.TempDir(), "w.dmt"), "w")
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()
	if err := tw.AppendDMA(0, FromNetwork, -1, 0, 1, true); err == nil {
		t.Fatal("negative bus accepted")
	}
	if err := tw.AppendDMA(0, FromNetwork, 0, -1, 1, true); err == nil {
		t.Fatal("negative page accepted")
	}
	if err := tw.AppendDMA(0, FromNetwork, 0, 0, 0, true); err == nil {
		t.Fatal("zero-page transfer accepted")
	}
	if err := tw.AppendDMA(time.Millisecond, FromNetwork, 0, 0, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := tw.AppendDMA(time.Microsecond, FromNetwork, 0, 0, 1, true); err == nil {
		t.Fatal("out-of-order append accepted")
	}
}
