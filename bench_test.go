package dmamem

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (go test -bench=. -benchmem). Each benchmark runs
// the corresponding experiment end to end — trace generation included —
// and attaches the headline quantity of the figure as a custom metric,
// so the harness output doubles as a results table:
//
//	savings%     energy saved over the baseline
//	uf           utilization factor
//	idle%        active-idle-DMA share of total energy
//
// The traces are shorter than the CLI defaults to keep -bench runs in
// seconds per figure; EXPERIMENTS.md records a full-length run.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"dmamem/internal/core"
	"dmamem/internal/experiments"
	"dmamem/internal/sim"
)

const (
	benchDuration   = 25 * sim.Millisecond
	benchDbDuration = 8 * sim.Millisecond
)

// ctx bounds the benchmark experiments; benchmarks are never canceled.
var ctx = context.Background()

// TestMain lets this test binary double as a sweep-shard worker:
// BenchmarkShardedSweep re-execs it with the variable set, so the
// benchmark exercises the production subprocess transport.
func TestMain(m *testing.M) {
	if os.Getenv("DMAMEM_SHARD_WORKER") == "1" {
		if err := experiments.ServeShard(context.Background(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func benchSuite() *experiments.Suite {
	s := experiments.NewSuite(benchDuration, 1)
	s.DbDuration = benchDbDuration
	return s
}

// BenchmarkTable2TraceGeneration regenerates the four workload traces
// of Table 2.
func BenchmarkTable2TraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.Table2(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].NetPerMs, "OLTP-St-net/ms")
			b.ReportMetric(rows[2].ProcPerTransfer, "OLTP-Db-proc/xfer")
		}
	}
}

// BenchmarkFig2aTimeline regenerates the single-stream timeline.
func BenchmarkFig2aTimeline(b *testing.B) {
	var uf float64
	for i := 0; i < b.N; i++ {
		uf = experiments.NewTimeline(1, 64).UF
	}
	b.ReportMetric(uf, "uf")
}

// BenchmarkFig3Lockstep regenerates the aligned-stream timeline.
func BenchmarkFig3Lockstep(b *testing.B) {
	var uf float64
	for i := 0; i < b.N; i++ {
		uf = experiments.NewTimeline(3, 64).UF
	}
	b.ReportMetric(uf, "uf")
}

// BenchmarkFig2bBreakdown measures the baseline energy breakdown
// (paper: 48-51% active-idle-DMA, 26-27% serving).
func BenchmarkFig2bBreakdown(b *testing.B) {
	var idle, serving float64
	for i := 0; i < b.N; i++ {
		rows, err := benchSuite().Fig2b(ctx)
		if err != nil {
			b.Fatal(err)
		}
		idle = rows[0].Fraction["active-idle-dma"]
		serving = rows[0].Fraction["active-serving"]
	}
	b.ReportMetric(100*idle, "idle%")
	b.ReportMetric(100*serving, "serving%")
}

// BenchmarkFig4PopularityCDF measures the OLTP-St popularity skew
// (paper: ~20% of pages receive ~60% of DMA accesses).
func BenchmarkFig4PopularityCDF(b *testing.B) {
	var at20 float64
	for i := 0; i < b.N; i++ {
		pts, err := benchSuite().Fig4(ctx, 10)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.PageFrac >= 0.2 {
				at20 = p.AccessFrac
				break
			}
		}
	}
	b.ReportMetric(100*at20, "top20share%")
}

// BenchmarkFig5Savings sweeps CP-Limit for DMA-TA and DMA-TA-PL(2)
// over the storage workloads (paper: up to 38.6% at 10% CP-Limit).
func BenchmarkFig5Savings(b *testing.B) {
	var pl10 float64
	for i := 0; i < b.N; i++ {
		pts, err := benchSuite().Fig5(ctx, []float64{0.10, 0.30}, []int{2})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Workload == "Synthetic-St" && p.Scheme == "dma-ta-pl-2" && p.CPLimit == 0.10 {
				pl10 = p.Savings
			}
		}
	}
	b.ReportMetric(100*pl10, "savings%")
}

// BenchmarkFig5GroupCount compares 2, 3 and 6 popularity groups on
// OLTP-St (paper: 2 groups best; 6 groups can lose).
func BenchmarkFig5GroupCount(b *testing.B) {
	var g2, g6 float64
	for i := 0; i < b.N; i++ {
		pts, err := benchSuite().Fig5(ctx, []float64{0.10}, []int{2, 3, 6})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Workload == "OLTP-St" && p.CPLimit == 0.10 {
				switch p.Scheme {
				case "dma-ta-pl-2":
					g2 = p.Savings
				case "dma-ta-pl-6":
					g6 = p.Savings
				}
			}
		}
	}
	b.ReportMetric(100*g2, "2groups%")
	b.ReportMetric(100*g6, "6groups%")
}

// BenchmarkFig6Breakdown compares the scheme breakdowns on OLTP-St at
// 10% CP-Limit.
func BenchmarkFig6Breakdown(b *testing.B) {
	var baseIdle, plIdle float64
	for i := 0; i < b.N; i++ {
		rows, err := benchSuite().Fig6(ctx)
		if err != nil {
			b.Fatal(err)
		}
		baseIdle = rows[0].Fraction["active-idle-dma"] * rows[0].TotalJ
		plIdle = rows[2].Fraction["active-idle-dma"] * rows[2].TotalJ
	}
	b.ReportMetric(1e3*baseIdle, "base-idle-mJ")
	b.ReportMetric(1e3*plIdle, "pl-idle-mJ")
}

// BenchmarkFig7Utilization sweeps the utilization factor (paper:
// baseline ~0.33, DMA-TA-PL ~0.63 at 10% and ~0.75 at 30%).
func BenchmarkFig7Utilization(b *testing.B) {
	var base, pl30 float64
	for i := 0; i < b.N; i++ {
		pts, err := benchSuite().Fig7(ctx, []float64{0.10, 0.30})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Scheme == "baseline" {
				base = p.UF
			}
			if p.Scheme == "dma-ta-pl" && p.CPLimit == 0.30 {
				pl30 = p.UF
			}
		}
	}
	b.ReportMetric(base, "uf-base")
	b.ReportMetric(pl30, "uf-pl30")
}

// BenchmarkFig8Intensity sweeps the workload intensity (paper: more
// intensive workloads save more).
func BenchmarkFig8Intensity(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		pts, err := benchSuite().Fig8(ctx, []float64{50, 200})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Scheme != "dma-ta-pl" {
				continue
			}
			if p.X == 50 {
				lo = p.Savings
			} else {
				hi = p.Savings
			}
		}
	}
	b.ReportMetric(100*lo, "at50%")
	b.ReportMetric(100*hi, "at200%")
}

// BenchmarkFig9ProcAccesses sweeps processor accesses per transfer
// (paper: savings fall as the CPU consumes the idle cycles).
func BenchmarkFig9ProcAccesses(b *testing.B) {
	var light, heavy float64
	for i := 0; i < b.N; i++ {
		pts, err := benchSuite().Fig9(ctx, []int{0, 233})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Scheme != "dma-ta-pl" {
				continue
			}
			if p.X == 0 {
				light = p.Savings
			} else {
				heavy = p.Savings
			}
		}
	}
	b.ReportMetric(100*light, "at0%")
	b.ReportMetric(100*heavy, "at233%")
}

// BenchmarkFig10BandwidthRatio sweeps the memory:I/O bandwidth ratio
// (paper: ~5% savings near ratio 1, growing with the ratio).
func BenchmarkFig10BandwidthRatio(b *testing.B) {
	var near1, at3 float64
	for i := 0; i < b.N; i++ {
		pts, err := benchSuite().Fig10(ctx, []float64{3.0e9, 1.064e9})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if p.Workload != "Synthetic-St" || p.Scheme != "dma-ta-pl" {
				continue
			}
			if p.X < 1.5 {
				near1 = p.Savings
			} else {
				at3 = p.Savings
			}
		}
	}
	b.ReportMetric(100*near1, "ratio1%")
	b.ReportMetric(100*at3, "ratio3%")
}

// BenchmarkShardedSweep measures the sharded executor's own overhead:
// a no-op grid makes every per-point cost — process spawn, request
// framing, JSON round-trip, reassembly — protocol cost, so ns/point
// tracks regressions in the shard path without simulation noise.
func BenchmarkShardedSweep(b *testing.B) {
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	const points = 256
	spec := experiments.SuiteSpec{Duration: benchDuration, Seed: 1}
	gs := experiments.GridSpec{Name: experiments.GridNoop, Points: points}
	c := &experiments.Coordinator{
		Shards:        4,
		WorkerCommand: []string{exe},
		WorkerEnv:     []string{"DMAMEM_SHARD_WORKER=1"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.ShardedGrid[experiments.SweepPoint](ctx, c, spec, gs)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != points {
			b.Fatalf("%d points, want %d", len(pts), points)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*points), "ns/point")
}

// BenchmarkSimulatorThroughput measures raw simulation speed: events
// and transfers per second of wall time over the baseline Synthetic-St
// run. -benchmem (or the ReportAllocs below) shows the hot-path
// allocation behavior; events/sec is attached as a custom metric.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := SyntheticStorageTrace(SyntheticOptions{Duration: 25_000_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		r, err := Run(Simulation{}, tr)
		if err != nil {
			b.Fatal(err)
		}
		events += r.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkSimulatorThroughputHeap is the same baseline Synthetic-St
// run on the reference engine — binary-heap scheduler plus per-event
// trace feeder — that the simulator shipped with before the timer
// wheel. The delta against BenchmarkSimulatorThroughput is the wheel +
// batched-feeder speedup; CI's bench smoke step gates on the ratio.
func BenchmarkSimulatorThroughputHeap(b *testing.B) {
	w, err := core.SyntheticStWorkload(25*sim.Millisecond, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		r, err := core.Run(core.Config{HeapScheduler: true, PerEventFeeder: true}, w.Trace)
		if err != nil {
			b.Fatal(err)
		}
		events += r.Report.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}
