package dmamem

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func shortSynthetic(t *testing.T) *Trace {
	t.Helper()
	tr, err := SyntheticStorageTrace(SyntheticOptions{Duration: 10 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMemoryGeometry(t *testing.T) {
	chips, per, page := MemoryGeometry()
	if chips != 32 || per != 4096 || page != 8192 {
		t.Fatalf("geometry = %d chips x %d pages x %d B", chips, per, page)
	}
}

func TestTechniqueString(t *testing.T) {
	if Baseline.String() != "baseline" || TemporalAlignmentWithLayout.String() != "dma-ta-pl" {
		t.Fatal("technique names wrong")
	}
	if Technique(42).String() == "" {
		t.Fatal("unknown technique renders empty")
	}
}

func TestRunBaseline(t *testing.T) {
	tr := shortSynthetic(t)
	rep, err := Run(Simulation{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheme != "baseline" {
		t.Fatalf("scheme = %q", rep.Scheme)
	}
	if rep.TotalEnergy <= 0 || rep.Transfers == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if got := rep.Breakdown.Total(); got <= 0 || got > rep.TotalEnergy*1.0001 || got < rep.TotalEnergy*0.9999 {
		t.Fatalf("breakdown total %g vs report total %g", got, rep.TotalEnergy)
	}
	// Figure 2(b): active-idle-DMA dominates serving in the baseline.
	if rep.Breakdown.ActiveIdleDMA <= rep.Breakdown.ActiveServing {
		t.Fatalf("idle %g <= serving %g", rep.Breakdown.ActiveIdleDMA, rep.Breakdown.ActiveServing)
	}
	if rep.String() == "" || rep.Breakdown.String() == "" {
		t.Fatal("string renderings empty")
	}
}

func TestCompareTechniques(t *testing.T) {
	tr, err := SyntheticStorageTrace(SyntheticOptions{Duration: 20 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(Simulation{Technique: TemporalAlignmentWithLayout, CPLimit: 0.10}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Savings <= 0 {
		t.Fatalf("DMA-TA-PL saved %.2f%%", 100*cmp.Savings)
	}
	if cmp.Technique.UtilizationFactor <= cmp.Baseline.UtilizationFactor {
		t.Fatal("uf did not improve")
	}
	if cmp.Technique.Mu <= 0 {
		t.Fatal("mu not derived from CP-Limit")
	}
}

func TestTANeedsCPLimit(t *testing.T) {
	tr := shortSynthetic(t)
	if _, err := Run(Simulation{Technique: TemporalAlignment}, tr); err == nil {
		t.Fatal("TA without CPLimit accepted")
	}
}

func TestNoPowerManagement(t *testing.T) {
	tr := shortSynthetic(t)
	rep, err := Run(Simulation{Technique: NoPowerManagement}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scheme != "no-pm" {
		t.Fatalf("scheme = %q", rep.Scheme)
	}
	// Everything-active burns far more than the baseline.
	base, err := Run(Simulation{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalEnergy <= base.TotalEnergy {
		t.Fatal("no-pm should cost more than baseline")
	}
	if rep.Wakes != 0 {
		t.Fatalf("no-pm woke chips %d times", rep.Wakes)
	}
}

func TestStaticPolicy(t *testing.T) {
	tr := shortSynthetic(t)
	rep, err := Run(Simulation{StaticMode: "nap"}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalEnergy <= 0 {
		t.Fatal("static run produced no energy")
	}
	if _, err := Run(Simulation{StaticMode: "hibernate"}, tr); err == nil {
		t.Fatal("bogus static mode accepted")
	}
}

func TestSyntheticDatabaseTrace(t *testing.T) {
	tr, err := SyntheticDatabaseTrace(SyntheticOptions{Duration: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Summary(), "proc") {
		t.Fatalf("summary: %s", tr.Summary())
	}
	if tr.Len() == 0 || tr.Duration() <= 0 {
		t.Fatal("empty database trace")
	}
}

func TestServerTraces(t *testing.T) {
	st, err := StorageServerTrace(ServerOptions{Duration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 {
		t.Fatal("empty storage trace")
	}
	db, err := DatabaseServerTrace(ServerOptions{Duration: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("empty database trace")
	}
}

func TestPopularityCurve(t *testing.T) {
	tr := shortSynthetic(t)
	pts := tr.PopularityCurve(10)
	if len(pts) == 0 {
		t.Fatal("no curve")
	}
	last := pts[len(pts)-1]
	if last.PageFrac != 1 || last.AccessFrac != 1 {
		t.Fatalf("curve does not end at (1,1): %+v", last)
	}
}

func TestManualTraceConstruction(t *testing.T) {
	tr := NewTrace("manual")
	if err := tr.AppendDMA(0, FromNetwork, 0, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := tr.AppendDMA(10*time.Microsecond, FromDisk, 1, 32, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.AppendProcessorAccess(20*time.Microsecond, 5, true); err != nil {
		t.Fatal(err)
	}
	tr.SetClientResponse(time.Millisecond, 1)
	rep, err := Run(Simulation{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transfers != 2 {
		t.Fatalf("transfers = %d", rep.Transfers)
	}
	// Out-of-order append rejected.
	if err := tr.AppendDMA(time.Microsecond, FromNetwork, 0, 0, 1, false); err == nil {
		t.Fatal("out-of-order record accepted")
	}
	if err := NewTrace("x").AppendDMA(0, FromNetwork, 0, 0, 0, false); err == nil {
		t.Fatal("zero-page DMA accepted")
	}
	if err := NewTrace("x").AppendDMA(0, FromNetwork, 999, 0, 1, false); err == nil {
		t.Fatal("bad bus accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := shortSynthetic(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip lost records: %d vs %d", got.Len(), tr.Len())
	}
}

func TestCPLimitGuaranteeEndToEnd(t *testing.T) {
	// The public API's headline guarantee: DMA-TA-PL at CP-Limit 10%
	// must not degrade client-perceived response time by more than 10%
	// relative to no power management.
	tr, err := SyntheticStorageTrace(SyntheticOptions{Duration: 20 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Run(Simulation{Technique: NoPowerManagement}, tr)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := Run(Simulation{Technique: TemporalAlignmentWithLayout, CPLimit: 0.10}, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Client-level budget: 10% of the declared 1 ms response per
	// critical-path transfer.
	added := ta.MeanServiceTime - ref.MeanServiceTime
	budget := time.Duration(0.10 * float64(time.Millisecond))
	if added > budget {
		t.Fatalf("added %v exceeds client budget %v", added, budget)
	}
}

func TestResidencyReported(t *testing.T) {
	tr := shortSynthetic(t)
	rep, err := Run(Simulation{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Residency
	total := res.Active + res.Standby + res.Nap + res.Powerdown
	if total <= 0 {
		t.Fatal("no residency recorded")
	}
	// 32 chips over the metering window: residency should cover most
	// chip-time (transitions excluded).
	window := 32 * (tr.Duration() + 2*time.Millisecond)
	if total < window*9/10 || total > window {
		t.Fatalf("residency %v vs window %v", total, window)
	}
	// A lightly loaded baseline parks chips in powerdown most of the
	// time.
	if res.Powerdown < total/2 {
		t.Fatalf("powerdown residency %v of %v", res.Powerdown, total)
	}
}
