// Command dmamem-timeline draws the request-level timelines of the
// paper's Figure 2(a) (one stream wasting two thirds of the chip's
// active cycles) and Figure 3 (three gathered streams in lockstep).
//
// Usage:
//
//	dmamem-timeline [-streams 1] [-reqs 4]
package main

import (
	"flag"
	"fmt"

	"dmamem/internal/experiments"
)

func main() {
	streams := flag.Int("streams", 0, "number of interleaved streams (0 = show both figures)")
	reqs := flag.Int("reqs", 4, "DMA-memory requests per stream")
	flag.Parse()

	if *streams > 0 {
		fmt.Print(experiments.NewTimeline(*streams, *reqs).String())
		return
	}
	fmt.Print(experiments.NewTimeline(1, *reqs).String())
	fmt.Println()
	fmt.Print(experiments.NewTimeline(3, *reqs).String())
}
