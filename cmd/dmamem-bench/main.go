// Command dmamem-bench regenerates the tables and figures of the
// paper's evaluation.
//
// Usage:
//
//	dmamem-bench [-duration 100ms] [-seed 1] [-parallel N] [-timing]
//	             [-scheduler wheel|heap] [-feeder batched|per-event]
//	             [-workers N] [-epoch 50us] [-fixed-epoch]
//	             [-parallel-bench BENCH_parallel.json]
//	             [-shards N] [-shard-addrs host:port,...]
//	             [-shard-worker] [-shard-listen addr]
//	             [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	             [-channels 1,2,4]
//	             [-tech ddr4-2400,lpddr4]
//	             [-replay trace.dmt] [-replay-cp-limit 0.10] [-replay-groups 2]
//	             [-fig all|2a|2b|3|4|5|6|7|8|9|10|table1|table2|dss|tech|seeds]
//
// -replay file.dmt skips the figures and instead streams a recorded
// .dmt trace (see `dmamem-trace record` and docs/TRACE_FORMAT.md)
// through the file-backed feeder, baseline vs technique, in flat
// memory regardless of trace length.
//
// Each figure prints the same series the paper plots; EXPERIMENTS.md
// records the paper-vs-measured comparison. Independent simulation
// runs are fanned across -parallel worker goroutines (default
// GOMAXPROCS); the printed output is byte-identical at any
// parallelism. -timing prints a per-run wall-clock summary to stderr,
// including events/sec and allocations per event when available.
// -scheduler and -feeder select the engine's pending-event store
// (hierarchical timer wheel vs reference binary heap) and trace
// delivery path (batched cursor feeder vs one event per record
// timestamp); every combination prints byte-identical results, only
// the wall-clock changes, which makes the flags a self-service
// cross-check and a profiling aid. -cpuprofile and -memprofile write
// pprof profiles of the whole run for `go tool pprof`.
//
// -workers N parallelises WITHIN each simulation: every run uses the
// epoch-barrier parallel engine with N event-loop goroutines (one per
// memory channel, capped at the channel count) instead of the serial
// reference engine. Results stay byte-identical at any worker count.
// This is orthogonal to -parallel, which fans out independent runs.
// Both flags must be at least 1; -workers 1 keeps the serial engine.
// -epoch sets the parallel engine's barrier period and -fixed-epoch
// disables adaptive barrier elision (the bit-identical cross-check
// mode); neither changes any printed result.
//
// -parallel-bench file.json skips the figures and instead measures the
// parallel engine's scaling across channels x workers, adaptive vs
// fixed barriers, on a dense and a sparse workload, writing the grid
// to the named JSON file (the committed BENCH_parallel.json) and
// printing it as a table.
//
// -shards N runs the sweep figures (5, 8, 9, 10) through the
// process-sharded executor: the grid is partitioned by sweep point
// across N worker processes (re-executions of this binary with
// -shard-worker, or the TCP workers named by -shard-addrs) and the
// results are reassembled in grid order, so the printed output is
// byte-identical to the in-process run at any shard count.
// -shard-worker serves one shard session on stdin/stdout and exits;
// -shard-listen serves shard sessions over TCP until interrupted.
//
// -channels 1,2,4 adds a memory-channel dimension to the figure 10
// sweep: each (workload, bus bandwidth) pair is re-simulated under a
// channel-interleaved topology at every listed channel count, with the
// per-channel bandwidth pinned to one chip's 3.2 GB/s rate.
//
// -tech names the memory power-model backends (registry names, see
// dmamem.Techs) the tech extension compares and the figure 10 sweep
// runs under; each backend's own memory rate sets the bandwidth ratio
// on the x axis. Empty sweeps every registered backend in the tech
// extension and keeps figure 10 on the legacy RDRAM default.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"dmamem/internal/experiments"
	"dmamem/internal/metrics"
	"dmamem/internal/sim"
)

func main() { os.Exit(realMain()) }

// realMain carries the exit code back to main so deferred cleanup —
// profile writers in particular — runs on the error paths too.
func realMain() int {
	duration := flag.Duration("duration", 100*time.Millisecond, "trace duration")
	dbDuration := flag.Duration("db-duration", 25*time.Millisecond, "database trace duration (denser traces)")
	seed := flag.Uint64("seed", 1, "generator seed")
	fig := flag.String("fig", "all", "which figure/table to regenerate")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for independent simulation runs (1 = sequential)")
	workers := flag.Int("workers", 1, "event-loop goroutines inside each simulation (1 = serial reference engine)")
	epoch := flag.Duration("epoch", 0, "barrier period of the parallel engine (0 = default 50us; needs -workers > 1)")
	fixedEpoch := flag.Bool("fixed-epoch", false, "disable adaptive barrier elision (bit-identical cross-check mode; needs -workers > 1)")
	parallelBench := flag.String("parallel-bench", "", "measure parallel engine scaling (channels x workers, adaptive vs fixed) and write the JSON grid to this file instead of running figures")
	timing := flag.Bool("timing", false, "print a per-run wall-clock timing summary to stderr")
	scheduler := flag.String("scheduler", "wheel", "engine event store: wheel (timer wheel) or heap (reference binary heap)")
	feeder := flag.String("feeder", "batched", "trace delivery: batched (cursor feeder) or per-event")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	shards := flag.Int("shards", 0, "run sweep figures across N worker processes (0 = in-process)")
	shardAddrs := flag.String("shard-addrs", "", "comma-separated TCP addresses of -shard-listen workers (default: spawn local subprocesses)")
	shardWorker := flag.Bool("shard-worker", false, "serve one sweep-shard session on stdin/stdout and exit")
	shardListen := flag.String("shard-listen", "", "serve sweep-shard sessions on this TCP address until interrupted")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-slice deadline before the coordinator retries on a fresh worker (0 = none)")
	channelsFlag := flag.String("channels", "", "comma-separated channel counts added to the figure 10 sweep (e.g. 1,2,4; empty = legacy single-channel)")
	techFlag := flag.String("tech", "", "comma-separated memory technologies for the tech extension and the figure 10 sweep (e.g. ddr4-2400,lpddr4; empty = every backend for tech, RDRAM-only for figure 10)")
	replayFile := flag.String("replay", "", "replay a recorded .dmt trace through the file-backed feeder instead of running figures")
	replayCP := flag.Float64("replay-cp-limit", 0.10, "CP-Limit for the -replay technique run")
	replayGroups := flag.Int("replay-groups", 2, "PL popularity groups for -replay (0 = DMA-TA only)")
	flag.Parse()

	if err := validateConcurrency(*parallel, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
		return 2
	}
	if err := validateEpoch(*epoch, *fixedEpoch, *workers, *parallelBench != ""); err != nil {
		fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *parallelBench != "" {
		res, err := experiments.ParallelBench(ctx, experiments.ParallelBenchSpec{
			Seed: *seed, Epoch: fromStd(*epoch),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
			return 1
		}
		doc, err := res.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*parallelBench, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
			return 1
		}
		fmt.Print(experiments.FormatParallelBench(res))
		return 0
	}

	if *replayFile != "" {
		out, err := experiments.ReplayFile(ctx, *replayFile, *replayCP, *replayGroups)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
			return 1
		}
		fmt.Print(out)
		return 0
	}

	if *shardWorker {
		if err := experiments.ServeShard(ctx, os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
			return 1
		}
		return 0
	}
	if *shardListen != "" {
		err := experiments.ListenAndServeShards(ctx, *shardListen, os.Stderr)
		if err != nil && ctx.Err() == nil {
			fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recent allocations into the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
			}
		}()
	}

	runner := experiments.NewRunner(*parallel)
	var memBefore runtime.MemStats
	if *timing {
		runner.Timings = &metrics.Timings{}
		runtime.ReadMemStats(&memBefore)
	}
	s := experiments.NewSuite(fromStd(*duration), *seed)
	s.DbDuration = fromStd(*dbDuration)
	s.Runner = runner
	s.Workers = engineWorkers(*workers)
	s.BarrierEpoch = fromStd(*epoch)
	s.FixedEpoch = *fixedEpoch
	switch *scheduler {
	case "wheel":
	case "heap":
		s.HeapScheduler = true
	default:
		fmt.Fprintf(os.Stderr, "dmamem-bench: unknown -scheduler %q (want wheel or heap)\n", *scheduler)
		return 2
	}
	switch *feeder {
	case "batched":
	case "per-event":
		s.PerEventFeeder = true
	default:
		fmt.Fprintf(os.Stderr, "dmamem-bench: unknown -feeder %q (want batched or per-event)\n", *feeder)
		return 2
	}
	channels, err := parseChannels(*channelsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
		return 2
	}
	techs, err := experiments.ParseTechList(*techFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmamem-bench: bad -tech: %v\n", err)
		return 2
	}
	var coord *experiments.Coordinator
	if *shards > 0 || *shardAddrs != "" {
		coord = &experiments.Coordinator{Shards: *shards, Parallel: *parallel, Timeout: *shardTimeout, Timings: runner.Timings}
		if *shardAddrs != "" {
			coord.Addrs = strings.Split(*shardAddrs, ",")
			if coord.Shards == 0 {
				coord.Shards = len(coord.Addrs) // one slice per worker by default
			}
		} else {
			exe, err := os.Executable()
			if err != nil {
				fmt.Fprintf(os.Stderr, "dmamem-bench: %v\n", err)
				return 1
			}
			coord.WorkerCommand = []string{exe, "-shard-worker"}
		}
	}
	start := time.Now()

	failed := false
	run := func(name string, f func() error) {
		if failed || (*fig != "all" && *fig != name) {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "dmamem-bench: %s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Print(experiments.Table1())
		return nil
	})
	run("table2", func() error {
		rows, err := s.Table2(ctx)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable2(rows))
		return nil
	})
	run("2a", func() error {
		fmt.Print(experiments.NewTimeline(1, 4).String())
		return nil
	})
	run("3", func() error {
		fmt.Print(experiments.NewTimeline(3, 4).String())
		return nil
	})
	run("2b", func() error {
		rows, err := s.Fig2b(ctx)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatBreakdowns(
			"Figure 2(b): baseline energy breakdown", rows))
		return nil
	})
	run("4", func() error {
		pts, err := s.Fig4(ctx, 10)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig4(pts))
		return nil
	})
	run("5", func() error {
		pts, err := gridPoints[experiments.Fig5Point](ctx, s, coord, experiments.GridSpec{
			Name:     experiments.GridFig5,
			CPLimits: []float64{0.01, 0.05, 0.10, 0.20, 0.30},
			Groups:   []int{2, 3, 6},
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig5(pts))
		return nil
	})
	run("6", func() error {
		rows, err := s.Fig6(ctx)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatBreakdowns(
			"Figure 6: OLTP-St breakdowns at 10% CP-Limit", rows))
		return nil
	})
	run("7", func() error {
		pts, err := s.Fig7(ctx, []float64{0.01, 0.05, 0.10, 0.20, 0.30})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFig7(pts))
		return nil
	})
	run("8", func() error {
		pts, err := gridPoints[experiments.SweepPoint](ctx, s, coord, experiments.GridSpec{
			Name:       experiments.GridFig8,
			RatesPerMs: []float64{25, 50, 100, 200, 400},
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSweep(
			"Figure 8: savings vs workload intensity (Synthetic-St, 10% CP-Limit)",
			"xfers/ms", pts))
		return nil
	})
	run("9", func() error {
		pts, err := gridPoints[experiments.SweepPoint](ctx, s, coord, experiments.GridSpec{
			Name:        experiments.GridFig9,
			PerTransfer: []int{0, 50, 100, 233, 400},
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSweep(
			"Figure 9: savings vs processor accesses per transfer (Synthetic-Db, 10% CP-Limit)",
			"proc/xfer", pts))
		return nil
	})
	run("10", func() error {
		pts, err := gridPoints[experiments.SweepPoint](ctx, s, coord, experiments.GridSpec{
			Name:     experiments.GridFig10,
			BusBW:    []float64{0.5e9, 1.064e9, 2e9, 3e9},
			Channels: channels,
			Techs:    techs,
		})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSweep(
			"Figure 10: savings vs memory/I-O bandwidth ratio (10% CP-Limit)",
			"ratio", pts))
		return nil
	})
	run("dss", func() error {
		rows, err := experiments.DSSExtension(ctx, runner, fromStd(*duration), *seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatDSS(rows))
		return nil
	})
	run("tech", func() error {
		rows, err := experiments.TechExtension(ctx, runner, fromStd(*duration), *seed, techs)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTech(rows))
		return nil
	})
	run("seeds", func() error {
		// Dispersion behind the headline Figure 5 point.
		pl := experiments.Fig5PLConfig()
		st, err := experiments.MultiSeedSavings(ctx, runner, fromStd(*duration), 5, pl)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSeedStats(st))
		return nil
	})

	if *timing {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		if coord == nil {
			// Sharded sweeps allocate in the workers; this process's
			// count would misattribute coordinator overhead.
			runner.Timings.SetAllocs(memAfter.Mallocs - memBefore.Mallocs)
		}
		fmt.Fprint(os.Stderr, runner.Timings.Summary(time.Since(start)))
	}
	if failed {
		return 1
	}
	return 0
}

func fromStd(d time.Duration) sim.Duration {
	return sim.Duration(d.Nanoseconds()) * sim.Nanosecond
}

// validateConcurrency rejects non-positive -parallel/-workers values
// up front: both are goroutine counts, and 0 or a negative count would
// otherwise surface as a hang (a runner with no workers) or as a
// confusing core error deep inside the first figure.
func validateConcurrency(parallel, workers int) error {
	if parallel <= 0 {
		return fmt.Errorf("-parallel %d must be at least 1 (goroutines fanning out independent runs)", parallel)
	}
	if workers <= 0 {
		return fmt.Errorf("-workers %d must be at least 1 (1 selects the serial reference engine)", workers)
	}
	return nil
}

// validateEpoch rejects a negative -epoch and barrier flags without
// the parallel engine: the barrier period and elision mode only exist
// when -workers selects it, so silently ignoring them would misreport
// what ran. -parallel-bench sweeps its own worker grid and takes
// -epoch directly, so it lifts the -workers pairing.
func validateEpoch(epoch time.Duration, fixed bool, workers int, bench bool) error {
	if epoch < 0 {
		return fmt.Errorf("-epoch %v must be nonnegative (0 selects the default 50us)", epoch)
	}
	if bench {
		return nil
	}
	if epoch > 0 && workers <= 1 {
		return fmt.Errorf("-epoch %v needs the parallel engine (-workers > 1); the serial engine has no barrier period", epoch)
	}
	if fixed && workers <= 1 {
		return fmt.Errorf("-fixed-epoch needs the parallel engine (-workers > 1)")
	}
	return nil
}

// engineWorkers maps the -workers flag onto core.Config.Workers: 1
// keeps the default serial reference engine, higher counts select the
// epoch-barrier parallel engine with that many event-loop goroutines.
func engineWorkers(workers int) int {
	if workers <= 1 {
		return 0
	}
	return workers
}

// parseChannels turns the -channels flag into the GridSpec.Channels
// slice: "" means nil (legacy points), otherwise positive
// comma-separated channel counts.
func parseChannels(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -channels entry %q (want positive integers, e.g. 1,2,4)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// gridPoints runs a sweep grid in-process, or through the shard
// coordinator when -shards selected one. Both paths enumerate and
// reassemble points in grid order, so the caller prints identical
// bytes either way.
func gridPoints[T any](ctx context.Context, s *experiments.Suite, coord *experiments.Coordinator, gs experiments.GridSpec) ([]T, error) {
	if coord != nil {
		return experiments.ShardedGrid[T](ctx, coord, s.Spec(), gs)
	}
	return experiments.GridRun[T](ctx, s, gs)
}
