package main

import (
	"strings"
	"testing"
	"time"

	"dmamem/internal/experiments"
)

// TestValidateConcurrency pins the rejection of non-positive
// -parallel/-workers values and the wording the user sees: the flag
// name, the bad value, and what the minimum means.
func TestValidateConcurrency(t *testing.T) {
	cases := []struct {
		parallel, workers int
		wantErr           string
	}{
		{1, 1, ""},
		{8, 4, ""},
		{0, 1, "-parallel 0 must be at least 1"},
		{-3, 1, "-parallel -3 must be at least 1"},
		{1, 0, "-workers 0 must be at least 1"},
		{1, -2, "-workers -2 must be at least 1"},
		// -parallel is checked first when both are bad.
		{0, 0, "-parallel 0 must be at least 1"},
	}
	for _, tc := range cases {
		err := validateConcurrency(tc.parallel, tc.workers)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("validateConcurrency(%d, %d) = %v, want nil", tc.parallel, tc.workers, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("validateConcurrency(%d, %d) = %v, want error containing %q",
				tc.parallel, tc.workers, err, tc.wantErr)
		}
	}
}

// TestValidateEpoch pins the barrier flags' guard rails: negative
// -epoch is always rejected; -epoch/-fixed-epoch without the parallel
// engine are rejected instead of silently ignored, except under
// -parallel-bench, which sweeps its own worker grid.
func TestValidateEpoch(t *testing.T) {
	cases := []struct {
		epoch   time.Duration
		fixed   bool
		workers int
		bench   bool
		wantErr string
	}{
		{0, false, 1, false, ""},
		{50 * time.Microsecond, false, 2, false, ""},
		{time.Millisecond, true, 8, false, ""},
		{50 * time.Microsecond, false, 1, true, ""}, // -parallel-bench takes -epoch alone
		{-time.Microsecond, false, 4, false, "must be nonnegative"},
		{-time.Microsecond, false, 1, true, "must be nonnegative"},
		{50 * time.Microsecond, false, 1, false, "needs the parallel engine"},
		{0, true, 1, false, "-fixed-epoch needs the parallel engine"},
	}
	for _, tc := range cases {
		err := validateEpoch(tc.epoch, tc.fixed, tc.workers, tc.bench)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("validateEpoch(%v, %v, %d, %v) = %v, want nil",
					tc.epoch, tc.fixed, tc.workers, tc.bench, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("validateEpoch(%v, %v, %d, %v) = %v, want error containing %q",
				tc.epoch, tc.fixed, tc.workers, tc.bench, err, tc.wantErr)
		}
	}
}

// TestTechFlagParsing pins the -tech flag path: the comma list routes
// through the shared experiments.ParseTechList helper, so entries are
// trimmed and case-folded, unknown names fail with the registry's
// enumeration, and duplicates (aliases included) are rejected.
func TestTechFlagParsing(t *testing.T) {
	got, err := experiments.ParseTechList(" DDR4-2400, lpddr4 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "ddr4-2400" || got[1] != "lpddr4" {
		t.Fatalf("got %v", got)
	}
	if got, err := experiments.ParseTechList(""); err != nil || got != nil {
		t.Fatalf("empty flag: %v, %v", got, err)
	}
	if _, err := experiments.ParseTechList("sram"); err == nil ||
		!strings.Contains(err.Error(), "unknown memory technology") {
		t.Fatalf("unknown tech error: %v", err)
	}
	if _, err := experiments.ParseTechList("rdram,rdram-1600"); err == nil ||
		!strings.Contains(err.Error(), "duplicates") {
		t.Fatalf("alias duplicate error: %v", err)
	}
}

// TestEngineWorkers pins the flag→config mapping: -workers 1 is the
// serial reference engine (core Workers 0, the default), higher counts
// pass through to the parallel engine.
func TestEngineWorkers(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 0}, {2, 2}, {4, 4}} {
		if got := engineWorkers(tc.in); got != tc.want {
			t.Errorf("engineWorkers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
