// Command dmamem-trace generates, converts and inspects memory-access
// traces.
//
// Usage:
//
//	dmamem-trace record -workload synthetic-st -duration 1s -o trace.dmt
//	dmamem-trace replay -scheme dma-ta-pl trace.dmt
//	dmamem-trace info trace.dmt
//	dmamem-trace cdf  trace.dmt          # Figure 4 style popularity CDF
//	dmamem-trace gen  -workload synthetic-st -duration 100ms -o trace.bin
//
// record streams a workload straight to the columnar on-disk .dmt
// container (docs/TRACE_FORMAT.md): the synthetic generators emit
// record by record into the chunked writer, so an hour-scale trace
// records in flat memory. replay simulates such a file through the
// file-backed feeder — again in flat memory — and prints the same
// report dmamem-sim would for the equivalent in-memory trace, bit for
// bit. info auto-detects the container: on a .dmt it prints the
// footer summary without materializing a single record; on a legacy
// gen/Save file it loads the trace and prints the full summary. gen
// is the legacy in-memory generator kept for the old all-at-once
// format.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmamem"
	"dmamem/internal/server"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "info":
		info(os.Args[2:], false)
	case "cdf":
		info(os.Args[2:], true)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dmamem-trace record|replay|info|cdf|gen ...")
	os.Exit(2)
}

func fromStd(d time.Duration) sim.Duration {
	return sim.Duration(d.Nanoseconds()) * sim.Nanosecond
}

// record streams a workload to a .dmt container. The synthetic
// workloads never hold more than the writer's current chunk in
// memory, whatever the duration; the server models build their trace
// in memory first (they need the full event history) and then stream
// it out.
func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "synthetic-st", "synthetic-st | synthetic-db | oltp-st | oltp-db")
	duration := fs.Duration("duration", 100*time.Millisecond, "trace duration")
	seed := fs.Uint64("seed", 1, "generator seed")
	chunk := fs.Int("chunk", 0, "records per chunk (0 = default)")
	out := fs.String("o", "trace.dmt", "output .dmt file")
	_ = fs.Parse(args)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	opt := trace.WriterOptions{ChunkRecords: *chunk}

	switch *workload {
	case "synthetic-st":
		cfg := synth.DefaultSt()
		cfg.Duration, cfg.Seed = fromStd(*duration), *seed
		err = stream(f, "Synthetic-St", opt, func(emit func(trace.Record) error) error {
			return synth.GenerateStTo(cfg, emit)
		})
	case "synthetic-db":
		// Mirror dmamem.SyntheticDatabaseTrace: network DMAs only, and
		// the default seed moves off the St default so the two
		// synthetic workloads draw distinct streams.
		cfg := synth.DefaultDb()
		cfg.St.Duration, cfg.St.Seed = fromStd(*duration), *seed
		if cfg.St.Seed == 1 {
			cfg.St.Seed = 2
		}
		err = stream(f, "Synthetic-Db", opt, func(emit func(trace.Record) error) error {
			return synth.GenerateDbTo(cfg, emit)
		})
	case "oltp-st":
		cfg := server.DefaultStorage()
		cfg.Duration, cfg.Seed = fromStd(*duration), *seed
		res, gerr := server.GenerateStorage(cfg)
		if gerr != nil {
			err = gerr
			break
		}
		err = res.Trace.WriteDMT(f, opt)
	case "oltp-db":
		cfg := server.DefaultDatabase()
		cfg.Duration, cfg.Seed = fromStd(*duration), *seed
		res, gerr := server.GenerateDatabase(cfg)
		if gerr != nil {
			err = gerr
			break
		}
		err = res.Trace.WriteDMT(f, opt)
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st, err := dmamem.StatTraceFile(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *out, describe(st))
}

// stream runs one generator callback into a fresh .dmt writer.
func stream(f *os.File, name string, opt trace.WriterOptions, gen func(emit func(trace.Record) error) error) error {
	w, err := trace.NewWriter(f, name, opt)
	if err != nil {
		return err
	}
	w.SetMeta(synth.SyntheticMeta())
	if err := gen(w.Append); err != nil {
		return err
	}
	return w.Close()
}

// replay simulates a recorded .dmt file through the file-backed
// feeder, never materializing the trace.
func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	scheme := fs.String("scheme", "dma-ta-pl", "baseline | dma-ta | dma-ta-pl | no-pm")
	cpLimit := fs.Float64("cp-limit", 0.10, "CP-Limit for DMA-TA")
	groups := fs.Int("groups", 2, "PL popularity groups")
	compare := fs.Bool("compare", true, "also run the baseline and report savings")
	_ = fs.Parse(args)
	if fs.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: dmamem-trace replay [flags] trace.dmt")
		os.Exit(2)
	}
	path := fs.Arg(0)
	st, err := dmamem.StatTraceFile(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying %s: %s\n", path, describe(st))

	s := dmamem.Simulation{TraceFile: path, CPLimit: *cpLimit, PLGroups: *groups}
	switch *scheme {
	case "baseline":
		s.Technique = dmamem.Baseline
	case "dma-ta":
		s.Technique = dmamem.TemporalAlignment
	case "dma-ta-pl":
		s.Technique = dmamem.TemporalAlignmentWithLayout
	case "no-pm":
		s.Technique = dmamem.NoPowerManagement
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}
	if *compare && s.Technique != dmamem.Baseline {
		cmp, err := dmamem.Compare(s, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("baseline: ", cmp.Baseline)
		fmt.Println("technique:", cmp.Technique)
		fmt.Printf("energy savings: %.1f%%\n", 100*cmp.Savings)
		return
	}
	rep, err := dmamem.Run(s, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	fmt.Println(rep.Breakdown)
}

func describe(st dmamem.TraceFileInfo) string {
	return fmt.Sprintf("%q, %d records (%d DMA transfers, %d pages) in %d chunks of %d, duration %v",
		st.Name, st.Records, st.DMATransfers, st.DMAPages, st.Chunks, st.ChunkRecords, st.Duration)
}

// isDMT reports whether path starts with the .dmt container magic.
func isDMT(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [4]byte
	if _, err := f.Read(magic[:]); err != nil {
		return false
	}
	return trace.IsDMT(magic[:])
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "synthetic-st", "synthetic-st | synthetic-db | oltp-st | oltp-db")
	duration := fs.Duration("duration", 100*time.Millisecond, "trace duration")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("o", "trace.bin", "output file")
	_ = fs.Parse(args)

	var tr *dmamem.Trace
	var err error
	switch *workload {
	case "synthetic-st":
		tr, err = dmamem.SyntheticStorageTrace(dmamem.SyntheticOptions{Duration: *duration, Seed: *seed})
	case "synthetic-db":
		tr, err = dmamem.SyntheticDatabaseTrace(dmamem.SyntheticOptions{Duration: *duration, Seed: *seed})
	case "oltp-st":
		tr, err = dmamem.StorageServerTrace(dmamem.ServerOptions{Duration: *duration, Seed: *seed})
	case "oltp-db":
		tr, err = dmamem.DatabaseServerTrace(dmamem.ServerOptions{Duration: *duration, Seed: *seed})
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *out, tr.Summary())
}

func info(args []string, cdf bool) {
	if len(args) < 1 {
		usage()
	}
	path := args[0]
	if isDMT(path) && !cdf {
		// Footer-only summary: no record is ever decoded.
		st, err := dmamem.StatTraceFile(path)
		if err != nil {
			fatal(err)
		}
		fmt.Println(describe(st))
		return
	}
	var tr *dmamem.Trace
	var err error
	if isDMT(path) {
		tr, err = dmamem.ReadTraceFile(path)
	} else {
		var f *os.File
		if f, err = os.Open(path); err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err = dmamem.ReadTrace(f)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(tr.Summary())
	fmt.Printf("burstiness (inter-arrival CV): %.2f; chip-load skew (CV): %.2f\n",
		tr.Burstiness(), tr.ChipLoadSkew())
	if cdf {
		fmt.Printf("%10s %10s\n", "pages%", "accesses%")
		for _, p := range tr.PopularityCurve(10) {
			fmt.Printf("%9.0f%% %9.1f%%\n", 100*p.PageFrac, 100*p.AccessFrac)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmamem-trace:", err)
	os.Exit(1)
}
