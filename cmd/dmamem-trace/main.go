// Command dmamem-trace generates, converts and inspects memory-access
// traces.
//
// Usage:
//
//	dmamem-trace gen  -workload synthetic-st -duration 100ms -o trace.bin
//	dmamem-trace info trace.bin
//	dmamem-trace cdf  trace.bin          # Figure 4 style popularity CDF
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmamem"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:], false)
	case "cdf":
		info(os.Args[2:], true)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dmamem-trace gen|info|cdf ...")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "synthetic-st", "synthetic-st | synthetic-db | oltp-st | oltp-db")
	duration := fs.Duration("duration", 100*time.Millisecond, "trace duration")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("o", "trace.bin", "output file")
	_ = fs.Parse(args)

	var tr *dmamem.Trace
	var err error
	switch *workload {
	case "synthetic-st":
		tr, err = dmamem.SyntheticStorageTrace(dmamem.SyntheticOptions{Duration: *duration, Seed: *seed})
	case "synthetic-db":
		tr, err = dmamem.SyntheticDatabaseTrace(dmamem.SyntheticOptions{Duration: *duration, Seed: *seed})
	case "oltp-st":
		tr, err = dmamem.StorageServerTrace(dmamem.ServerOptions{Duration: *duration, Seed: *seed})
	case "oltp-db":
		tr, err = dmamem.DatabaseServerTrace(dmamem.ServerOptions{Duration: *duration, Seed: *seed})
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tr.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *out, tr.Summary())
}

func info(args []string, cdf bool) {
	if len(args) < 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := dmamem.ReadTrace(f)
	if err != nil {
		fatal(err)
	}
	fmt.Println(tr.Summary())
	fmt.Printf("burstiness (inter-arrival CV): %.2f; chip-load skew (CV): %.2f\n",
		tr.Burstiness(), tr.ChipLoadSkew())
	if cdf {
		fmt.Printf("%10s %10s\n", "pages%", "accesses%")
		for _, p := range tr.PopularityCurve(10) {
			fmt.Printf("%9.0f%% %9.1f%%\n", 100*p.PageFrac, 100*p.AccessFrac)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmamem-trace:", err)
	os.Exit(1)
}
