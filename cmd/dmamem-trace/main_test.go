package main

import (
	"path/filepath"
	"testing"
)

// The subcommands exit the process on error (fatal), so reaching the
// end of each call is the success assertion; the golden and
// feeder-equivalence suites under internal/experiments pin the
// numbers these commands print.

func TestRecordInfoReplay(t *testing.T) {
	dir := t.TempDir()
	dmt := filepath.Join(dir, "st.dmt")
	record([]string{"-workload", "synthetic-st", "-duration", "2ms", "-chunk", "128", "-o", dmt})
	if !isDMT(dmt) {
		t.Fatalf("record produced %s without the .dmt magic", dmt)
	}

	info([]string{dmt}, false) // footer-only summary
	info([]string{dmt}, true)  // popularity CDF: decodes the records

	replay([]string{"-scheme", "dma-ta-pl", "-cp-limit", "0.1", "-groups", "2", dmt})
	replay([]string{"-scheme", "baseline", "-compare=false", dmt})
}

func TestRecordAllWorkloads(t *testing.T) {
	dir := t.TempDir()
	for _, w := range []string{"synthetic-db", "oltp-st", "oltp-db"} {
		p := filepath.Join(dir, w+".dmt")
		record([]string{"-workload", w, "-duration", "2ms", "-o", p})
		if !isDMT(p) {
			t.Errorf("workload %s: %s missing the .dmt magic", w, p)
		}
	}
}

func TestGenLegacyFormat(t *testing.T) {
	dir := t.TempDir()
	legacy := filepath.Join(dir, "st.bin")
	gen([]string{"-workload", "synthetic-st", "-duration", "2ms", "-o", legacy})
	if isDMT(legacy) {
		t.Fatalf("gen produced %s with the .dmt magic; want the legacy format", legacy)
	}
	info([]string{legacy}, false) // legacy path: loads the whole trace
}
