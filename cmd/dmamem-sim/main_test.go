package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateConcurrency pins the rejection of non-positive
// -parallel/-workers values and the wording the user sees: the flag
// name, the bad value, and what the minimum means.
func TestValidateConcurrency(t *testing.T) {
	cases := []struct {
		parallel, workers int
		wantErr           string
	}{
		{1, 1, ""},
		{8, 4, ""},
		{0, 1, "-parallel 0 must be at least 1"},
		{-1, 1, "-parallel -1 must be at least 1"},
		{1, 0, "-workers 0 must be at least 1"},
		{1, -4, "-workers -4 must be at least 1"},
		{-1, -1, "-parallel -1 must be at least 1"},
	}
	for _, tc := range cases {
		err := validateConcurrency(tc.parallel, tc.workers)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("validateConcurrency(%d, %d) = %v, want nil", tc.parallel, tc.workers, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("validateConcurrency(%d, %d) = %v, want error containing %q",
				tc.parallel, tc.workers, err, tc.wantErr)
		}
	}
}

// TestValidateEpoch pins the -epoch flag's guard rails: negative
// periods are rejected outright, and a positive period without the
// parallel engine is rejected instead of silently ignored.
func TestValidateEpoch(t *testing.T) {
	cases := []struct {
		epoch   time.Duration
		workers int
		wantErr string
	}{
		{0, 1, ""},
		{0, 4, ""},
		{50 * time.Microsecond, 2, ""},
		{time.Millisecond, 8, ""},
		{-time.Microsecond, 4, "must be nonnegative"},
		{50 * time.Microsecond, 1, "needs the parallel engine"},
	}
	for _, tc := range cases {
		err := validateEpoch(tc.epoch, tc.workers)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("validateEpoch(%v, %d) = %v, want nil", tc.epoch, tc.workers, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("validateEpoch(%v, %d) = %v, want error containing %q",
				tc.epoch, tc.workers, err, tc.wantErr)
		}
	}
}

// TestParseTech pins the -tech flag handling: values route through
// the shared tech-list parser (trimming, case folding, registry
// validation), the empty flag means the default technology, and lists
// are rejected with a pointer at dmamem-bench.
func TestParseTech(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr string
	}{
		{"", "", ""},
		{"  ", "", ""},
		{"rdram", "rdram", ""},
		{" DDR4-2400 ", "ddr4-2400", ""},
		{"sram", "", "unknown memory technology"},
		{"ddr4-2400,lpddr4", "", "dmamem-sim runs one"},
	}
	for _, tc := range cases {
		got, err := parseTech(tc.in)
		if tc.wantErr == "" {
			if err != nil || got != tc.want {
				t.Errorf("parseTech(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("parseTech(%q) = %v, want error containing %q", tc.in, err, tc.wantErr)
		}
	}
}

// TestEngineWorkers pins the flag→config mapping: -workers 1 keeps
// Simulation.Workers at 0 (the serial reference engine), higher counts
// pass through to the parallel engine.
func TestEngineWorkers(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 0}, {2, 2}, {8, 8}} {
		if got := engineWorkers(tc.in); got != tc.want {
			t.Errorf("engineWorkers(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
