// Command dmamem-sim runs one simulation over a trace and prints the
// energy report.
//
// Usage:
//
//	dmamem-sim [flags]
//	  -trace file        binary trace (default: generate Synthetic-St);
//	                     a .dmt container streams through the
//	                     file-backed feeder in flat memory
//	  -workload name     synthetic-st | synthetic-db | oltp-st | oltp-db
//	  -duration 100ms    duration of the generated trace
//	  -scheme name       baseline | dma-ta | dma-ta-pl | no-pm
//	  -tech name         memory power-model backend (registry name,
//	                     see dmamem.Techs; empty = the RDRAM default)
//	  -cp-limit 0.10     client-perceived degradation bound for DMA-TA
//	  -groups 2          popularity groups for PL
//	  -compare           also run the baseline and report savings
//	  -parallel N        run the baseline and technique concurrently
//	  -workers N         event-loop goroutines inside each simulation
//	                     (1 = serial reference engine; byte-identical
//	                     reports at any count)
//	  -epoch 50us        barrier period of the parallel engine (with
//	                     -workers > 1); reports do not depend on it
//	  -channels N        memory channels (0 = legacy single-channel)
//	  -stripe-pages N    pages per channel stripe (with -channels)
//	  -channel-bw B      per-channel bandwidth cap, bytes/s (with -channels)
//
// With -shard-worker the command instead serves one sweep-shard
// session on stdin/stdout (see the shard protocol in
// internal/experiments); with -shard-listen addr it serves shard
// sessions over TCP until interrupted. Both make any machine with the
// binary usable as a worker for a sharded dmamem-bench sweep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dmamem"
	"dmamem/internal/experiments"
	"dmamem/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "binary trace file (overrides -workload)")
	workload := flag.String("workload", "synthetic-st", "workload to generate")
	duration := flag.Duration("duration", 100*time.Millisecond, "generated trace duration")
	scheme := flag.String("scheme", "dma-ta-pl", "energy management scheme")
	techFlag := flag.String("tech", "", "memory technology backend (registry name, e.g. ddr4-2400; empty = rdram)")
	cpLimit := flag.Float64("cp-limit", 0.10, "CP-Limit for DMA-TA")
	groups := flag.Int("groups", 2, "PL popularity groups")
	seed := flag.Uint64("seed", 1, "generator seed")
	channels := flag.Int("channels", 0, "memory channels (0 = legacy single-channel)")
	stripePages := flag.Int("stripe-pages", 0, "pages per channel stripe (0 = 1; needs -channels)")
	channelBW := flag.Float64("channel-bw", 0, "per-channel bandwidth cap, bytes/s (0 = uncapped; needs -channels)")
	compare := flag.Bool("compare", true, "also run the baseline and report savings")
	jsonOut := flag.Bool("json", false, "emit the report(s) as JSON")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the -compare pair (1 = sequential)")
	workers := flag.Int("workers", 1, "event-loop goroutines inside each simulation (1 = serial reference engine)")
	epoch := flag.Duration("epoch", 0, "barrier period of the parallel engine (0 = default 50us; needs -workers > 1)")
	shardWorker := flag.Bool("shard-worker", false, "serve one sweep-shard session on stdin/stdout and exit")
	shardListen := flag.String("shard-listen", "", "serve sweep-shard sessions on this TCP address until interrupted")
	flag.Parse()

	if err := validateConcurrency(*parallel, *workers); err != nil {
		fatal(err)
	}
	if err := validateEpoch(*epoch, *workers); err != nil {
		fatal(err)
	}
	tech, err := parseTech(*techFlag)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *shardWorker {
		if err := experiments.ServeShard(ctx, os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *shardListen != "" {
		err := experiments.ListenAndServeShards(ctx, *shardListen, os.Stderr)
		if err != nil && ctx.Err() == nil {
			fatal(err)
		}
		return
	}

	s := dmamem.Simulation{
		CPLimit: *cpLimit, PLGroups: *groups, MemoryTech: tech,
		Channels: *channels, ChannelStripePages: *stripePages, ChannelBandwidth: *channelBW,
		Workers: engineWorkers(*workers), BarrierEpoch: *epoch,
	}
	var tr *dmamem.Trace
	if *traceFile != "" && isDMT(*traceFile) {
		// Stream the container through the file-backed feeder: the
		// report is bit-identical to loading it, in flat memory.
		s.TraceFile = *traceFile
		st, err := dmamem.StatTraceFile(*traceFile)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace %s: %d records over %v (streaming from %s)\n",
			st.Name, st.Records, st.Duration, *traceFile)
	} else {
		var err error
		tr, err = loadTrace(*traceFile, *workload, *duration, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace %s: %s\n", tr.Name(), tr.Summary())
	}
	switch *scheme {
	case "baseline":
		s.Technique = dmamem.Baseline
	case "dma-ta":
		s.Technique = dmamem.TemporalAlignment
	case "dma-ta-pl":
		s.Technique = dmamem.TemporalAlignmentWithLayout
	case "no-pm":
		s.Technique = dmamem.NoPowerManagement
	default:
		fatal(fmt.Errorf("unknown scheme %q", *scheme))
	}

	if *compare && s.Technique != dmamem.Baseline {
		cmp, err := dmamem.CompareContext(ctx, s, tr, *parallel)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(cmp)
			return
		}
		fmt.Println("baseline: ", cmp.Baseline)
		fmt.Println("          ", cmp.Baseline.Breakdown)
		fmt.Println("technique:", cmp.Technique)
		fmt.Println("          ", cmp.Technique.Breakdown)
		fmt.Printf("energy savings: %.1f%%\n", 100*cmp.Savings)
		if cmp.Technique.Mu > 0 {
			fmt.Printf("derived mu: %.2f (gather delay %v/transfer)\n",
				cmp.Technique.Mu, cmp.Technique.MeanGatherDelay)
		}
		return
	}
	rep, err := dmamem.Run(s, tr)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		emitJSON(rep)
		return
	}
	fmt.Println(rep)
	fmt.Println(rep.Breakdown)
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

// isDMT reports whether path starts with the .dmt container magic.
func isDMT(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [4]byte
	if _, err := f.Read(magic[:]); err != nil {
		return false
	}
	return trace.IsDMT(magic[:])
}

func loadTrace(file, workload string, d time.Duration, seed uint64) (*dmamem.Trace, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dmamem.ReadTrace(f)
	}
	switch workload {
	case "synthetic-st":
		return dmamem.SyntheticStorageTrace(dmamem.SyntheticOptions{Duration: d, Seed: seed})
	case "synthetic-db":
		return dmamem.SyntheticDatabaseTrace(dmamem.SyntheticOptions{Duration: d, Seed: seed})
	case "oltp-st":
		return dmamem.StorageServerTrace(dmamem.ServerOptions{Duration: d, Seed: seed})
	case "oltp-db":
		return dmamem.DatabaseServerTrace(dmamem.ServerOptions{Duration: d, Seed: seed})
	}
	return nil, fmt.Errorf("unknown workload %q", workload)
}

// validateConcurrency rejects non-positive -parallel/-workers values
// up front: both are goroutine counts, and 0 or a negative count would
// otherwise hang the -compare pair or surface as a confusing core
// error mid-run.
func validateConcurrency(parallel, workers int) error {
	if parallel <= 0 {
		return fmt.Errorf("-parallel %d must be at least 1 (goroutines for the -compare pair)", parallel)
	}
	if workers <= 0 {
		return fmt.Errorf("-workers %d must be at least 1 (1 selects the serial reference engine)", workers)
	}
	return nil
}

// validateEpoch rejects a negative -epoch and an -epoch without the
// parallel engine: the barrier period only exists when -workers
// selects it, so silently ignoring the flag would misreport what ran.
func validateEpoch(epoch time.Duration, workers int) error {
	if epoch < 0 {
		return fmt.Errorf("-epoch %v must be nonnegative (0 selects the default 50us)", epoch)
	}
	if epoch > 0 && workers <= 1 {
		return fmt.Errorf("-epoch %v needs the parallel engine (-workers > 1); the serial engine has no barrier period", epoch)
	}
	return nil
}

// parseTech resolves the single -tech value through the shared
// experiments.ParseTechList helper (trimmed, lower-cased, validated
// against the registry). dmamem-sim runs one simulation, so lists are
// rejected here with a pointer at dmamem-bench.
func parseTech(s string) (string, error) {
	techs, err := experiments.ParseTechList(s)
	if err != nil {
		return "", err
	}
	switch len(techs) {
	case 0:
		return "", nil
	case 1:
		return techs[0], nil
	}
	return "", fmt.Errorf("-tech %q names %d technologies; dmamem-sim runs one (dmamem-bench -tech sweeps lists)", s, len(techs))
}

// engineWorkers maps the -workers flag onto Simulation.Workers: 1
// keeps the default serial reference engine, higher counts select the
// epoch-barrier parallel engine with that many event-loop goroutines.
func engineWorkers(workers int) int {
	if workers <= 1 {
		return 0
	}
	return workers
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmamem-sim:", err)
	os.Exit(1)
}
