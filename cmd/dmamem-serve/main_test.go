package main

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseWeights(t *testing.T) {
	got, err := parseWeights("acme=2,batch=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if want := map[string]float64{"acme": 2, "batch": 0.5}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseWeights = %v, want %v", got, want)
	}
	if got, err := parseWeights(""); err != nil || got != nil {
		t.Errorf("empty weights: %v, %v", got, err)
	}
	for _, bad := range []string{"acme", "acme=", "acme=zero", "acme=-1", "acme=0", "=2"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-weights", "acme=nope"}, nil); err == nil {
		t.Error("run accepted a malformed -weights value")
	}
	if err := run([]string{"-no-such-flag"}, nil); err == nil {
		t.Error("run accepted an unknown flag")
	}
	if err := run([]string{"-listen", "127.0.0.1:notaport"}, nil); err == nil {
		t.Error("run accepted an unresolvable listen address")
	}
}

// TestRunEndToEnd drives the real daemon entrypoint: run() on an
// ephemeral port, a grid job over loopback HTTP, a metrics read, then
// SIGINT and a clean exit — the same lifecycle the CI smoke step
// exercises against the built binary.
func TestRunEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-workers", "1", "-quota", "4", "-weights", "acme=2"}, func(addr string) {
			ready <- addr
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	body := `{"Tenant":"acme","Grid":{"Name":"noop","Points":3}}`
	resp, err = http.Post(base+"/v1/jobs?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	result, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grid job = %d (%s), want 200", resp.StatusCode, result)
	}
	var points []map[string]any
	if err := json.Unmarshal(result, &points); err != nil {
		t.Fatalf("grid result is not a JSON array: %v\n%s", err, result)
	}
	if len(points) != 3 {
		t.Fatalf("grid result has %d points, want 3", len(points))
	}

	resp, err = http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "dmamem_jobs_completed 1") {
		t.Errorf("metrics missing completed-job count:\n%s", metrics)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGINT, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after SIGINT")
	}
}