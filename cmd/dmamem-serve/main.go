// Command dmamem-serve runs the simulation-as-a-service daemon: an
// HTTP/JSON server that accepts simulation job submissions from
// tenants, schedules them on a bounded worker fleet with per-tenant
// weighted fair queueing and admission control, caches completed
// results by canonical config hash, and streams per-job progress.
//
// Usage:
//
//	dmamem-serve [-listen :8080] [-workers 2] [-quota 16]
//	             [-weights tenant=2,other=1] [-cache 256]
//	             [-point-parallel 1] [-max-grid-points 4096]
//	             [-shard-addrs host:port,...] [-shards N]
//	             [-shard-timeout 0] [-shard-retries 0]
//
// The job schema and a worked curl session are documented in
// docs/SERVICE.md. A report job's response body is byte-identical to
// the committed golden corpus (internal/experiments/testdata/golden/)
// for the default suite, which makes the daemon scriptable with cmp:
//
//	curl -s -d '{"Workload":"OLTP-St"}' 'localhost:8080/v1/jobs?wait=1' \
//	  | cmp - internal/experiments/testdata/golden/oltp-st_baseline.json
//
// -shard-addrs fans every grid job's sweep points out to the named
// TCP shard workers (`dmamem-bench -shard-listen addr`) through the
// retrying coordinator; without it grids run in-process.
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: it stops
// accepting, cancels queued and running jobs, and drains the fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dmamem/internal/server/service"
)

func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(pair, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -weights entry %q, want tenant=weight", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad -weights value %q for tenant %q, want a positive number", val, name)
		}
		out[name] = w
	}
	return out, nil
}

// run parses args, starts the daemon, and blocks until a fatal server
// error or SIGINT/SIGTERM. ready, when non-nil, is called with the
// bound listen address once the server is accepting — the seam the
// end-to-end test uses to talk to a daemon on an ephemeral port.
func run(args []string, ready func(addr string)) error {
	fs := flag.NewFlagSet("dmamem-serve", flag.ContinueOnError)
	listen := fs.String("listen", ":8080", "HTTP listen address")
	workers := fs.Int("workers", 2, "job-execution worker fleet size")
	quota := fs.Int("quota", 16, "per-tenant admission quota (queued+running jobs; negative = unlimited)")
	weights := fs.String("weights", "", "per-tenant fair-queueing weights, tenant=weight[,...]")
	cache := fs.Int("cache", 256, "result cache entries (negative disables)")
	pointParallel := fs.Int("point-parallel", 1, "goroutines per in-process grid job")
	maxGridPoints := fs.Int("max-grid-points", 4096, "reject grid jobs over this many points (negative = unlimited)")
	shardAddrs := fs.String("shard-addrs", "", "comma-separated TCP shard worker addresses for grid jobs")
	shards := fs.Int("shards", 0, "shard slices for grid jobs (0 = one per address)")
	shardTimeout := fs.Duration("shard-timeout", 0, "per-slice shard attempt timeout (0 = none)")
	shardRetries := fs.Int("shard-retries", 0, "shard retry budget (0 = default, negative disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tw, err := parseWeights(*weights)
	if err != nil {
		return err
	}
	var addrs []string
	if *shardAddrs != "" {
		addrs = strings.Split(*shardAddrs, ",")
	}

	d := service.New(service.Config{
		Workers:       *workers,
		TenantQuota:   *quota,
		TenantWeights: tw,
		CacheEntries:  *cache,
		PointParallel: *pointParallel,
		MaxGridPoints: *maxGridPoints,
		ShardAddrs:    addrs,
		Shards:        *shards,
		ShardTimeout:  *shardTimeout,
		ShardRetries:  *shardRetries,
		Log:           os.Stderr,
	})
	defer d.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	srv := &http.Server{Handler: d.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dmamem-serve: listening on %s (%d workers, quota %d)\n", ln.Addr(), *workers, *quota)
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "dmamem-serve: %v, shutting down\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "dmamem-serve:", err)
		os.Exit(1)
	}
}
