package sim

import "container/heap"

// heapScheduler is the reference pending-event store: a binary heap
// ordered by (at, prio, seq) with O(log n) schedule, cancel and fire.
// The timer wheel (wheel.go) replaces it on the hot path; the heap is
// kept behind NewWithHeap as the obviously correct implementation the
// wheel is cross-checked against.
type heapScheduler struct{ q eventQueue }

func (h *heapScheduler) schedule(ev *event) { heap.Push(&h.q, ev) }
func (h *heapScheduler) unlink(ev *event)   { heap.Remove(&h.q, ev.index) }
func (h *heapScheduler) fire(ev *event)     { heap.Remove(&h.q, ev.index) }
func (h *heapScheduler) len() int           { return len(h.q) }

func (h *heapScheduler) peekMin() *event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

// eventQueue implements heap.Interface over pending events.
type eventQueue []*event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].less(q[j]) }
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
