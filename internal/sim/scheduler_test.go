package sim

import (
	"context"
	"math/rand"
	"testing"
)

// engines runs a subtest against both scheduler backends; behavioral
// tests must pass identically on the wheel and the reference heap.
func engines(t *testing.T, f func(t *testing.T, newEngine func() *Engine)) {
	t.Run("wheel", func(t *testing.T) { f(t, New) })
	t.Run("heap", func(t *testing.T) { f(t, NewWithHeap) })
}

// TestSchedulerEquivalence is the kernel-level cross-check: a random
// mix of schedules (spread across every wheel level), same-instant
// priority ties, cancellations and handler-driven reschedules must
// dispatch in exactly the same order on the wheel as on the reference
// heap.
func TestSchedulerEquivalence(t *testing.T) {
	// Deltas straddle bucket spans from level 0 (sub-64 ps) to level 6+
	// (seconds), plus zero-delta same-instant collisions.
	deltas := []Duration{0, 1, 3, 63, 64, 65, 1000, 4095, 4096, 9999,
		262144, 1000000, 10 * Microsecond, 3 * Millisecond, Second}
	run := func(newEngine func() *Engine, seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		e := newEngine()
		var order []int
		var ids []EventID
		label := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			n := 5 + rng.Intn(20)
			for i := 0; i < n; i++ {
				l := label
				label++
				at := e.Now().Add(deltas[rng.Intn(len(deltas))])
				prio := int8(rng.Intn(3))
				id := e.SchedulePrio(at, prio, func(e *Engine) {
					order = append(order, l)
					if depth < 3 && rng.Intn(4) == 0 {
						schedule(depth + 1)
					}
				})
				ids = append(ids, id)
				if len(ids) > 3 && rng.Intn(5) == 0 {
					e.Cancel(ids[rng.Intn(len(ids))])
				}
			}
		}
		schedule(0)
		e.Run()
		return order
	}
	for seed := int64(1); seed <= 40; seed++ {
		// Identical seeds drive identical rng decisions on both engines,
		// so the label sequences must match element for element.
		wheel := run(New, seed)
		heap := run(NewWithHeap, seed)
		if len(wheel) != len(heap) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(wheel), len(heap))
		}
		for i := range wheel {
			if wheel[i] != heap[i] {
				t.Fatalf("seed %d: dispatch order diverges at %d: wheel %v heap %v",
					seed, i, wheel[i], heap[i])
			}
		}
	}
}

// TestWheelFarHorizon exercises high wheel levels: timers at second
// scale coexisting with picosecond-scale churn, including cascades
// when the cursor crosses large digit boundaries.
func TestWheelFarHorizon(t *testing.T) {
	e := New()
	var fired []Time
	at := func(ts ...Time) {
		for _, x := range ts {
			x := x
			e.Schedule(x, func(e *Engine) {
				if e.Now() != x {
					t.Errorf("event for %v fired at %v", x, e.Now())
				}
				fired = append(fired, x)
			})
		}
	}
	at(Time(2*Second), Time(Second), 1, 2, Time(Millisecond),
		Time(Second)+1, Time(Second)+64, Time(2*Second)-1)
	e.Run()
	want := []Time{1, 2, Time(Millisecond), Time(Second), Time(Second) + 1,
		Time(Second) + 64, Time(2*Second) - 1, Time(2*Second) - 1 + 1}
	want[len(want)-1] = Time(2 * Second)
	if len(fired) != len(want) {
		t.Fatalf("fired %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.Now() != Time(2*Second) {
		t.Fatalf("clock %v", e.Now())
	}
}

// TestWheelCancelAcrossLevels cancels events parked at high levels and
// verifies the survivors still fire in order after cascading.
func TestWheelCancelAcrossLevels(t *testing.T) {
	e := New()
	var fired []Time
	times := []Time{5, 100, 70000, Time(Microsecond), Time(Millisecond),
		Time(20 * Millisecond), Time(Second)}
	ids := make([]EventID, len(times))
	for i, x := range times {
		x := x
		ids[i] = e.Schedule(x, func(*Engine) { fired = append(fired, x) })
	}
	for i := 0; i < len(ids); i += 2 {
		if !e.Cancel(ids[i]) {
			t.Fatalf("cancel %d failed", i)
		}
	}
	e.Run()
	want := []Time{100, Time(Microsecond), Time(20 * Millisecond)}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// sliceFeeder is a minimal Feeder over (at, label) records for tests.
type sliceFeeder struct {
	at    []Time
	label []int
	prio  int8
	idx   int
	got   *[]int
}

func (f *sliceFeeder) Peek() (Time, int8, bool) {
	if f.idx >= len(f.at) {
		return 0, 0, false
	}
	return f.at[f.idx], f.prio, true
}

func (f *sliceFeeder) Fire(e *Engine) {
	now := e.Now()
	for f.idx < len(f.at) && f.at[f.idx] == now {
		*f.got = append(*f.got, f.label[f.idx])
		f.idx++
	}
}

// TestFeederMerge checks the run-loop merge: feeder batches interleave
// with queued events in (at, prio) order, same-instant records drain
// in one batch, and the engine counts one step per batch.
func TestFeederMerge(t *testing.T) {
	engines(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []int
		f := &sliceFeeder{
			at:    []Time{10, 20, 20, 20, 30},
			label: []int{100, 200, 201, 202, 300},
			prio:  1,
			got:   &got,
		}
		e.SetFeeder(f)
		// Queue events around and at the feeder instants: prio 0 beats
		// the feeder at the same instant, prio 2 loses to it.
		e.SchedulePrio(20, 0, func(*Engine) { got = append(got, 1) })
		e.SchedulePrio(20, 2, func(*Engine) { got = append(got, 2) })
		e.Schedule(25, func(*Engine) { got = append(got, 3) })
		e.Schedule(35, func(*Engine) { got = append(got, 4) })
		e.Run()
		want := []int{100, 1, 200, 201, 202, 2, 3, 300, 4}
		if len(got) != len(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
		if e.Steps() != 7 { // 4 queue events + 3 feeder batches
			t.Fatalf("Steps = %d, want 7", e.Steps())
		}
		if e.Now() != 35 {
			t.Fatalf("clock %v, want 35", e.Now())
		}
	})
}

// TestFeederSchedulesDuringFire: records delivered by a feeder batch
// schedule follow-up events in the past of the wheel's peeked horizon —
// the regression the wheel's fire-time-only cursor advance exists for.
func TestFeederSchedulesDuringFire(t *testing.T) {
	engines(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []Time
		fired := func(e *Engine) { got = append(got, e.Now()) }
		var f *sliceFeeder
		var dummy []int
		f = &sliceFeeder{at: []Time{5}, label: []int{0}, prio: 1, got: &dummy}
		e.SetFeeder(f)
		// A queued event far in the future forces the run loop to peek
		// deep into the wheel before the feeder fires at 5.
		e.Schedule(Time(Millisecond), fired)
		e.Schedule(4, func(e *Engine) {})
		realFire := f.Fire
		_ = realFire
		// Wrap: on Fire, schedule a follow-up only 2 ps out.
		e.SetFeeder(feederFunc{
			peek: f.Peek,
			fire: func(e *Engine) {
				f.Fire(e)
				e.After(2, fired)
			},
		})
		e.Run()
		if len(got) != 2 || got[0] != 7 || got[1] != Time(Millisecond) {
			t.Fatalf("got %v, want [7 %d]", got, Time(Millisecond))
		}
	})
}

type feederFunc struct {
	peek func() (Time, int8, bool)
	fire func(e *Engine)
}

func (f feederFunc) Peek() (Time, int8, bool) { return f.peek() }
func (f feederFunc) Fire(e *Engine)           { f.fire(e) }

// TestFeederRunUntil: the limit applies to feeder batches exactly as to
// queued events, and the clock semantics (advance to limit when work
// remains, stay on drain) are preserved.
func TestFeederRunUntil(t *testing.T) {
	engines(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []int
		f := &sliceFeeder{at: []Time{10, 40}, label: []int{1, 2}, prio: 1, got: &got}
		e.SetFeeder(f)
		e.RunUntil(25)
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("got %v, want [1]", got)
		}
		if e.Now() != 25 {
			t.Fatalf("clock %v, want 25 (feeder work remains)", e.Now())
		}
		e.RunUntil(100)
		if len(got) != 2 {
			t.Fatalf("got %v after second run", got)
		}
		if e.Now() != 40 {
			t.Fatalf("clock %v, want 40 (drained naturally)", e.Now())
		}
	})
}

// TestRunContextCancel: a cancelled context stops the run within the
// poll interval, and an uncancelled context is invisible.
func TestRunContextCancel(t *testing.T) {
	engines(t, func(t *testing.T, newEngine func() *Engine) {
		// Uncancelled: identical outcome to Run.
		e := newEngine()
		n := 0
		var tick Handler
		tick = func(e *Engine) {
			n++
			if n < 100 {
				e.After(10, tick)
			}
		}
		e.Schedule(0, tick)
		if err := e.RunContext(context.Background()); err != nil {
			t.Fatalf("RunContext: %v", err)
		}
		if n != 100 {
			t.Fatalf("dispatched %d, want 100", n)
		}

		// Cancelled mid-run: the loop must exit with the ctx error well
		// before the self-rescheduling cascade would end on its own.
		e = newEngine()
		ctx, cancel := context.WithCancel(context.Background())
		n = 0
		var forever Handler
		forever = func(e *Engine) {
			n++
			if n == 3*ctxPollInterval {
				cancel()
			}
			if n < 100*ctxPollInterval {
				e.After(1000, forever)
			}
		}
		e.Schedule(0, forever)
		if err := e.RunContext(ctx); err != context.Canceled {
			t.Fatalf("RunContext error = %v, want context.Canceled", err)
		}
		if n >= 5*ctxPollInterval {
			t.Fatalf("ran %d dispatches after cancellation", n)
		}
	})
}

// TestHeapZeroAllocSteadyState mirrors the wheel's zero-alloc guard on
// the reference heap engine.
func TestHeapZeroAllocSteadyState(t *testing.T) {
	e := NewWithHeap()
	noop := Handler(func(*Engine) {})
	for i := 0; i < 64; i++ {
		e.After(Duration(i+1), noop)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		id := e.After(5, noop)
		e.Cancel(id)
		e.After(10, noop)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("heap steady-state dispatch allocated %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkScheduleRunWheel and ...Heap compare the kernel-only cost of
// a self-rescheduling timer cascade on both backends.
func BenchmarkScheduleRunWheel(b *testing.B) { benchScheduleRun(b, New) }
func BenchmarkScheduleRunHeap(b *testing.B)  { benchScheduleRun(b, NewWithHeap) }

func benchScheduleRun(b *testing.B, newEngine func() *Engine) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := newEngine()
		var tick Handler
		n := 0
		tick = func(e *Engine) {
			n++
			if n < 1000 {
				e.After(10, tick)
			}
		}
		e.Schedule(0, tick)
		e.Run()
	}
}
