package sim

import "math/bits"

// Hierarchical timer wheel: the default pending-event store.
//
// Absolute picosecond times are split into 6-bit digit groups; level L
// of the wheel has 64 buckets indexed by digit L, so a bucket at level
// L spans 64^L picoseconds. Eleven levels cover the full non-negative
// Time range (66 bits), which comfortably brackets every timer horizon
// the simulator produces — nanosecond policy thresholds (level 2-3),
// microsecond epochs and transfer completions (level 3-5), millisecond
// layout rebalances (level 5-6) — without an overflow structure.
//
// An event is filed at the highest digit where its time differs from
// the wheel cursor `cur` (the instant of the last fired event): digits
// above that level match cur, so the event's bucket index at its level
// is strictly greater than cur's, and bucket indexes never wrap. Two
// invariants follow:
//
//   - The earliest pending event lives in the lowest non-empty level,
//     in that level's lowest occupied bucket. (An event at level L
//     matches cur on all digits above L and exceeds it at digit L, so
//     it sorts below anything filed at a higher level.)
//   - Advancing cur to a fired event's time can only lower the level
//     at which a pending event would file, never raise it — and only
//     the fired event's own bucket-mates (which share its digit) can
//     actually change level. fire re-files exactly those.
//
// Each event therefore moves strictly down the levels over its
// lifetime, at most once per level: schedule, cancel and fire are all
// amortized O(1), with no allocation (buckets are intrusive
// doubly-linked chains through the pooled event objects).
//
// Same-instant ordering: a level-0 bucket spans a single picosecond,
// so all events in it share their time, and the (prio, seq) tie-break
// is resolved by scanning the (short) chain for the minimum — the same
// total (at, prio, seq) order the reference heap dispatches in.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 11
)

type wheel struct {
	cur      Time // instant of the last fired event; filing reference
	count    int
	occupied [wheelLevels]uint64             // per-level bucket bitmaps
	bucket   [wheelLevels][wheelSlots]*event // chain heads
}

func newWheel() *wheel { return &wheel{} }

func (w *wheel) len() int { return w.count }

// place returns the level and bucket for an instant: the highest 6-bit
// digit group where t differs from the cursor (level 0, digit 0 when
// they are equal).
func (w *wheel) place(t Time) (level, slot int) {
	diff := uint64(t) ^ uint64(w.cur)
	if diff == 0 {
		return 0, int(uint64(t) & wheelMask)
	}
	level = (bits.Len64(diff) - 1) / wheelBits
	slot = int((uint64(t) >> uint(level*wheelBits)) & wheelMask)
	return level, slot
}

// link files an event into its bucket chain (head insertion; order
// within a chain is irrelevant, the tie-break scan handles it).
func (w *wheel) link(ev *event) {
	lvl, slot := w.place(ev.at)
	ev.level, ev.slot = int8(lvl), int8(slot)
	head := w.bucket[lvl][slot]
	ev.prev = nil
	ev.next = head
	if head != nil {
		head.prev = ev
	}
	w.bucket[lvl][slot] = ev
	w.occupied[lvl] |= 1 << uint(slot)
}

func (w *wheel) schedule(ev *event) {
	w.link(ev)
	ev.index = 0 // pending marker for EventID.Valid
	w.count++
}

// unlink removes a pending event from its bucket chain (the cancel
// path; fire also goes through here).
func (w *wheel) unlink(ev *event) {
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		w.bucket[ev.level][ev.slot] = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	}
	if w.bucket[ev.level][ev.slot] == nil {
		w.occupied[ev.level] &^= 1 << uint(ev.slot)
	}
	ev.next, ev.prev = nil, nil
	ev.index = -1
	w.count--
}

// peekMin returns the earliest pending event by (at, prio, seq), or
// nil. It does not mutate the wheel.
func (w *wheel) peekMin() *event {
	for lvl := 0; lvl < wheelLevels; lvl++ {
		bm := w.occupied[lvl]
		if bm == 0 {
			continue
		}
		best := w.bucket[lvl][bits.TrailingZeros64(bm)]
		for ev := best.next; ev != nil; ev = ev.next {
			if ev.less(best) {
				best = ev
			}
		}
		return best
	}
	return nil
}

// fire removes the event peekMin just returned and advances the cursor
// to its instant. The fired event's bucket-mates share its digit with
// the new cursor, so each re-files at a strictly lower level; no other
// pending event's filing is affected (see the package invariants).
func (w *wheel) fire(ev *event) {
	w.cur = ev.at
	lvl, slot := ev.level, ev.slot
	w.unlink(ev)
	if lvl == 0 {
		return
	}
	head := w.bucket[lvl][slot]
	if head == nil {
		return
	}
	w.bucket[lvl][slot] = nil
	w.occupied[lvl] &^= 1 << uint(slot)
	for head != nil {
		next := head.next
		w.link(head)
		head = next
	}
}
