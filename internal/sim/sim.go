// Package sim provides a small deterministic discrete-event simulation
// kernel used by every timing model in this repository.
//
// Time is kept as an integer number of picoseconds so that the memory
// cycle of a 1600 MHz RDRAM part (625 ps), the 8-byte service time of a
// DMA-memory request (4 cycles = 2500 ps) and the PCI-X inter-arrival
// gap (12 cycles = 7500 ps) are all exact.
//
// Events scheduled for the same instant fire in the order of a
// secondary priority and, within equal priority, in scheduling order,
// which makes simulations bit-reproducible across runs.
//
// # Schedulers
//
// The pending-event store behind an Engine is pluggable. New returns an
// engine backed by a hierarchical timer wheel (see wheel.go) whose
// schedule, cancel and fire operations are amortized O(1); NewWithHeap
// returns the reference binary-heap engine with O(log n) operations.
// Both dispatch in exactly the same (time, priority, scheduling-order)
// sequence, so a simulation produces bit-identical results on either —
// the cross-check test in internal/experiments holds them to that.
//
// # Feeders
//
// Trace-driven models deliver millions of externally ordered arrivals.
// Scheduling each one as an engine event pays a schedule/fire round
// trip per arrival; a Feeder instead exposes the arrival cursor to the
// run loop, which merges it with the event queue and dispatches
// whichever comes first. Arrivals never enter the scheduler at all.
// See SetFeeder.
//
// # Ownership contract
//
// An Engine and every model scheduled on it belong to a single
// goroutine. The kernel takes no locks: Schedule, Cancel, Run and Step
// mutate the event store directly, and handlers run synchronously
// inside Run on the calling goroutine. Sharing one Engine between
// goroutines is a data race by construction.
//
// Distinct engines share no state at all, so parallel experiments run
// one independent Engine per goroutine — one simulation per job —
// which keeps every run bit-reproducible regardless of how many run
// concurrently (see internal/experiments.Runner).
package sim

import (
	"context"
	"fmt"
)

// Time is an absolute simulation instant in picoseconds.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common time units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span between two instants.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts a duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

// Nanoseconds converts a duration to floating-point nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / 1e3 }

// Microseconds converts a duration to floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e6 }

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * 1e12) }

// FromNanoseconds converts floating-point nanoseconds to a Duration.
func FromNanoseconds(ns float64) Duration { return Duration(ns * 1e3) }

func (t Time) String() string     { return fmt.Sprintf("%.3fus", float64(t)/1e6) }
func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e6) }

// Handler is the callback run when an event fires. It receives the
// engine so it can schedule follow-up events.
type Handler func(e *Engine)

// event is a pending callback in the engine's event store. Event
// objects are pooled per engine: firing or cancelling returns the
// object to a free list, and the next Schedule reuses it, so the
// steady-state dispatch loop performs no heap allocation.
type event struct {
	at    Time
	prio  int8   // ties broken by priority, then by seq
	seq   uint64 // strictly increasing scheduling order
	index int    // heap index (>= 0 while pending); -1 once removed.
	gen   uint64 // bumped on every recycle; stale EventIDs miscompare
	fn    Handler

	// Timer-wheel bucket membership (intrusive doubly-linked chain);
	// unused by the heap scheduler.
	next, prev  *event
	level, slot int8
}

// less orders events by (time, priority, scheduling order) — the total
// dispatch order both schedulers implement.
func (ev *event) less(o *event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	if ev.prio != o.prio {
		return ev.prio < o.prio
	}
	return ev.seq < o.seq
}

// EventID identifies a scheduled event so it can be cancelled. The ID
// carries the generation of the event object it was issued for, so an
// ID kept across the event's firing (after which the object may be
// recycled for an unrelated event) safely reports invalid instead of
// cancelling the object's new occupant.
type EventID struct {
	ev  *event
	gen uint64
}

// Valid reports whether the event is still pending.
func (id EventID) Valid() bool {
	return id.ev != nil && id.ev.gen == id.gen && id.ev.index >= 0
}

// scheduler is the pending-event store behind an Engine. Both
// implementations maintain the same total order: peekMin returns the
// minimum by (at, prio, seq), fire removes the event peekMin just
// returned (and may advance internal cursors), unlink removes an
// arbitrary pending event (the cancel path).
type scheduler interface {
	schedule(ev *event)
	unlink(ev *event)
	peekMin() *event
	fire(ev *event)
	len() int
}

// Feeder is a pull-based source of externally ordered events — a trace
// cursor, typically — that the run loop merges with the event store.
// Peek returns the instant and same-instant priority of the source's
// next batch (ok=false once exhausted); Fire delivers every record due
// at exactly Now and advances the cursor. The run loop dispatches the
// feeder when its (instant, priority) sorts strictly before the
// earliest queued event, so a feeder must use a priority no queued
// event shares at the same instant for the merge order to be fully
// determined (ties go to the queue). Peek must be nondecreasing and
// never return an instant before the engine clock.
type Feeder interface {
	Peek() (at Time, prio int8, ok bool)
	Fire(e *Engine)
}

// Engine is a single-threaded discrete-event simulation loop.
// The zero value is not usable; call New or NewWithHeap.
//
// An Engine is owned by exactly one goroutine: none of its methods are
// safe for concurrent use. Run simulations in parallel by giving each
// goroutine its own Engine — engines share no state, so concurrent
// runs are fully isolated and each remains deterministic.
type Engine struct {
	now     Time
	sched   scheduler
	feeder  Feeder
	free    []*event // recycled event objects, see event
	seq     uint64
	stopped bool
	steps   uint64
}

// New returns an engine with the clock at zero, backed by the
// hierarchical timer wheel (amortized O(1) schedule/cancel/fire).
func New() *Engine { return &Engine{sched: newWheel()} }

// NewWithHeap returns an engine backed by the reference binary-heap
// scheduler. It dispatches in exactly the same order as New's wheel;
// it is retained for cross-checking (core.Config.HeapScheduler) and
// as the simplest-possible reference implementation.
func NewWithHeap() *Engine { return &Engine{sched: &heapScheduler{}} }

// Now returns the current simulation instant.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many dispatches have run: fired events plus feeder
// batches (one batch per distinct instant).
func (e *Engine) Steps() uint64 { return e.steps }

// SetFeeder attaches a pull-based event source to the run loop. Pass
// nil to detach. At most one feeder can be attached.
func (e *Engine) SetFeeder(f Feeder) { e.feeder = f }

// Schedule arranges for fn to run at instant at. Scheduling in the past
// panics: it is always a model bug.
func (e *Engine) Schedule(at Time, fn Handler) EventID {
	return e.SchedulePrio(at, 0, fn)
}

// After schedules fn to run d after the current instant.
func (e *Engine) After(d Duration, fn Handler) EventID {
	return e.Schedule(e.now.Add(d), fn)
}

// SchedulePrio schedules with an explicit same-instant priority; lower
// priorities fire first. Model layers use this to guarantee, e.g., that
// request arrivals are observed before policy timers at the same tick.
func (e *Engine) SchedulePrio(at Time, prio int8, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil handler")
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.prio, ev.seq, ev.fn = at, prio, e.seq, fn
	e.sched.schedule(ev)
	return EventID{ev, ev.gen}
}

// recycle returns a no-longer-pending event object to the free list.
// Bumping the generation invalidates every EventID issued for the
// object's previous occupancy.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	if !id.Valid() {
		return false
	}
	e.sched.unlink(id.ev)
	e.recycle(id.ev)
	return true
}

// Pending reports the number of queued events (feeder records are not
// queued and do not count).
func (e *Engine) Pending() int { return e.sched.len() }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until the queue and feeder drain or Stop is
// called.
func (e *Engine) Run() {
	e.RunUntil(Time(1<<62 - 1))
}

// RunContext dispatches like Run but polls ctx every few thousand
// dispatches and returns its error once cancelled. Polling does not
// perturb the simulation: a run that is never cancelled is
// bit-identical to Run.
func (e *Engine) RunContext(ctx context.Context) error {
	return e.runUntil(ctx, Time(1<<62-1))
}

// RunUntil dispatches events with instants <= limit. The clock is left
// at the last dispatched event (or limit if nothing fired after it).
func (e *Engine) RunUntil(limit Time) {
	e.runUntil(nil, limit)
}

// RunUntilContext is RunUntil with cancellation: ctx is polled every
// few thousand dispatches exactly as in RunContext. The barrier engine
// drives its shards through this in epoch-sized chunks; a run that is
// never cancelled is bit-identical to RunUntil.
func (e *Engine) RunUntilContext(ctx context.Context, limit Time) error {
	return e.runUntil(ctx, limit)
}

// NextAt returns the instant of the earliest pending dispatch — the
// scheduler's minimum event or the feeder's next batch, whichever is
// first — and ok=false when both are drained. It does not advance the
// clock; the barrier engine uses it to pick the next non-empty epoch.
func (e *Engine) NextAt() (Time, bool) {
	ev := e.sched.peekMin()
	if e.feeder != nil {
		if fat, _, ok := e.feeder.Peek(); ok {
			if ev == nil || fat < ev.at {
				return fat, true
			}
		}
	}
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// next selects the earliest pending dispatch: the scheduler's minimum
// event, or the feeder's batch when its (instant, priority) sorts
// strictly first. useFeeder=true means the feeder fires next.
func (e *Engine) next() (ev *event, useFeeder bool) {
	ev = e.sched.peekMin()
	if e.feeder != nil {
		if fat, fprio, ok := e.feeder.Peek(); ok {
			if ev == nil || fat < ev.at || (fat == ev.at && fprio < ev.prio) {
				return nil, true
			}
		}
	}
	return ev, false
}

// ctxPollInterval is how many dispatches pass between ctx.Err() checks
// in RunContext: rare enough to stay off the profile, frequent enough
// that cancellation lands within microseconds of wall time.
const ctxPollInterval = 8192

func (e *Engine) runUntil(ctx context.Context, limit Time) error {
	e.stopped = false
	var sincePoll uint
	for !e.stopped {
		ev, useFeeder := e.next()
		if useFeeder {
			fat, _, _ := e.feeder.Peek()
			if fat > limit {
				break
			}
			e.now = fat
			e.steps++
			e.feeder.Fire(e)
		} else {
			if ev == nil || ev.at > limit {
				break
			}
			e.sched.fire(ev)
			e.now = ev.at
			e.steps++
			fn := ev.fn
			e.recycle(ev)
			fn(e)
		}
		if ctx != nil {
			if sincePoll++; sincePoll >= ctxPollInterval {
				sincePoll = 0
				if err := ctx.Err(); err != nil {
					return err
				}
			}
		}
	}
	if e.now < limit && e.sched.len() == 0 && !e.feederPending() {
		// Queue drained naturally: clock stays at last event.
		return nil
	}
	if !e.stopped && e.now < limit {
		e.now = limit
	}
	return nil
}

// feederPending reports whether an attached feeder still has records.
func (e *Engine) feederPending() bool {
	if e.feeder == nil {
		return false
	}
	_, _, ok := e.feeder.Peek()
	return ok
}

// Step dispatches exactly one event (or feeder batch) and reports
// whether one fired.
func (e *Engine) Step() bool {
	ev, useFeeder := e.next()
	if useFeeder {
		fat, _, _ := e.feeder.Peek()
		e.now = fat
		e.steps++
		e.feeder.Fire(e)
		return true
	}
	if ev == nil {
		return false
	}
	e.sched.fire(ev)
	e.now = ev.at
	e.steps++
	fn := ev.fn
	e.recycle(ev)
	fn(e)
	return true
}
