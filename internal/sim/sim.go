// Package sim provides a small deterministic discrete-event simulation
// kernel used by every timing model in this repository.
//
// Time is kept as an integer number of picoseconds so that the memory
// cycle of a 1600 MHz RDRAM part (625 ps), the 8-byte service time of a
// DMA-memory request (4 cycles = 2500 ps) and the PCI-X inter-arrival
// gap (12 cycles = 7500 ps) are all exact.
//
// Events scheduled for the same instant fire in the order of a
// secondary priority and, within equal priority, in scheduling order,
// which makes simulations bit-reproducible across runs.
//
// # Ownership contract
//
// An Engine and every model scheduled on it belong to a single
// goroutine. The kernel takes no locks: Schedule, Cancel, Run and Step
// mutate the event heap directly, and handlers run synchronously
// inside Run on the calling goroutine. Sharing one Engine between
// goroutines is a data race by construction.
//
// Distinct engines share no state at all, so parallel experiments run
// one independent Engine per goroutine — one simulation per job —
// which keeps every run bit-reproducible regardless of how many run
// concurrently (see internal/experiments.Runner).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is an absolute simulation instant in picoseconds.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common time units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span between two instants.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts a duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

// Nanoseconds converts a duration to floating-point nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / 1e3 }

// Microseconds converts a duration to floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e6 }

// FromSeconds converts floating-point seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * 1e12) }

// FromNanoseconds converts floating-point nanoseconds to a Duration.
func FromNanoseconds(ns float64) Duration { return Duration(ns * 1e3) }

func (t Time) String() string     { return fmt.Sprintf("%.3fus", float64(t)/1e6) }
func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e6) }

// Handler is the callback run when an event fires. It receives the
// engine so it can schedule follow-up events.
type Handler func(e *Engine)

// event is a pending callback in the engine's priority queue. Event
// objects are pooled per engine: firing or cancelling returns the
// object to a free list, and the next Schedule reuses it, so the
// steady-state dispatch loop performs no heap allocation.
type event struct {
	at    Time
	prio  int8   // ties broken by priority, then by seq
	seq   uint64 // strictly increasing scheduling order
	index int    // heap index; -1 once removed
	gen   uint64 // bumped on every recycle; stale EventIDs miscompare
	fn    Handler
}

// EventID identifies a scheduled event so it can be cancelled. The ID
// carries the generation of the event object it was issued for, so an
// ID kept across the event's firing (after which the object may be
// recycled for an unrelated event) safely reports invalid instead of
// cancelling the object's new occupant.
type EventID struct {
	ev  *event
	gen uint64
}

// Valid reports whether the event is still pending.
func (id EventID) Valid() bool {
	return id.ev != nil && id.ev.gen == id.gen && id.ev.index >= 0
}

// eventQueue implements heap.Interface over pending events.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation loop.
// The zero value is not usable; call New.
//
// An Engine is owned by exactly one goroutine: none of its methods are
// safe for concurrent use. Run simulations in parallel by giving each
// goroutine its own Engine — engines share no state, so concurrent
// runs are fully isolated and each remains deterministic.
type Engine struct {
	now     Time
	queue   eventQueue
	free    []*event // recycled event objects, see event
	seq     uint64
	stopped bool
	steps   uint64
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulation instant.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been dispatched.
func (e *Engine) Steps() uint64 { return e.steps }

// Schedule arranges for fn to run at instant at. Scheduling in the past
// panics: it is always a model bug.
func (e *Engine) Schedule(at Time, fn Handler) EventID {
	return e.SchedulePrio(at, 0, fn)
}

// After schedules fn to run d after the current instant.
func (e *Engine) After(d Duration, fn Handler) EventID {
	return e.Schedule(e.now.Add(d), fn)
}

// SchedulePrio schedules with an explicit same-instant priority; lower
// priorities fire first. Model layers use this to guarantee, e.g., that
// request arrivals are observed before policy timers at the same tick.
func (e *Engine) SchedulePrio(at Time, prio int8, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil handler")
	}
	e.seq++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.prio, ev.seq, ev.fn = at, prio, e.seq, fn
	heap.Push(&e.queue, ev)
	return EventID{ev, ev.gen}
}

// recycle returns a no-longer-pending event object to the free list.
// Bumping the generation invalidates every EventID issued for the
// object's previous occupancy.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	if !id.Valid() {
		return false
	}
	heap.Remove(&e.queue, id.ev.index)
	e.recycle(id.ev)
	return true
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(Time(1<<62 - 1))
}

// RunUntil dispatches events with instants <= limit. The clock is left
// at the last dispatched event (or limit if nothing fired after it).
func (e *Engine) RunUntil(limit Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > limit {
			break
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		e.steps++
		fn := ev.fn
		e.recycle(ev)
		fn(e)
	}
	if e.now < limit && len(e.queue) == 0 {
		// Queue drained naturally: clock stays at last event.
		return
	}
	if !e.stopped && e.now < limit {
		e.now = limit
	}
}

// Step dispatches exactly one event and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.steps++
	fn := ev.fn
	e.recycle(ev)
	fn(e)
	return true
}
