// Conservative parallel discrete-event execution. A BarrierEngine owns
// several independent Engines — one per memory channel in this
// repository — and drives them through bulk-synchronous epochs: within
// an epoch every shard dispatches its own events on its own goroutine
// with no shared state, and cross-shard interaction happens only in
// the caller's barrier hook, which runs single-threaded between
// epochs. Because the epoch grid is a pure function of simulated time
// and the shards never observe each other mid-epoch, the dispatch
// sequence of every shard is identical at any worker count — the
// parallelism is conservative in the PDES sense, and determinism holds
// by construction rather than by luck of scheduling.
package sim

import (
	"context"
	"fmt"
	"sync"
)

// maxTime is the open-ended run limit shared with Engine.Run.
const maxTime = Time(1<<62 - 1)

// BarrierHooks are the caller's epoch-boundary callbacks. All fields
// are optional.
type BarrierHooks struct {
	// NextInput reports the instant of the earliest external input not
	// yet delivered to any shard (a trace cursor's head, typically), so
	// the epoch loop does not skip past epochs whose only activity is
	// new input. ok=false once the source is exhausted.
	NextInput func() (Time, bool)
	// Prepare runs single-threaded before the shards execute the epoch
	// ending at end (inclusive). Use it to stage external inputs due
	// within the epoch into per-shard structures.
	Prepare func(end Time) error
	// Barrier runs single-threaded after every shard has reached end.
	// This is the only place cross-shard state may be exchanged:
	// bandwidth re-allocation, slack settlement, anything that reads or
	// writes more than one shard.
	Barrier func(end Time) error
}

// BarrierEngine drives a set of shard Engines in deterministic
// epoch-barrier lockstep. Construct with NewBarrierEngine.
type BarrierEngine struct {
	shards  []*Engine
	epoch   Duration
	workers int
}

// NewBarrierEngine builds a barrier engine over the given shards.
// epoch is the barrier period in simulated time; workers is the number
// of goroutines that execute shards within an epoch (clamped to the
// shard count; 1 means the shards run inline on the caller's
// goroutine). Results are independent of workers by construction.
func NewBarrierEngine(shards []*Engine, epoch Duration, workers int) (*BarrierEngine, error) {
	switch {
	case len(shards) == 0:
		return nil, fmt.Errorf("sim: barrier engine needs at least one shard")
	case epoch <= 0:
		return nil, fmt.Errorf("sim: barrier epoch %v must be positive", epoch)
	case workers < 1:
		return nil, fmt.Errorf("sim: barrier workers %d must be at least 1", workers)
	}
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("sim: barrier shard %d is nil", i)
		}
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	return &BarrierEngine{shards: shards, epoch: epoch, workers: workers}, nil
}

// Workers returns the effective worker count after clamping.
func (b *BarrierEngine) Workers() int { return b.workers }

// nextAt returns the earliest pending instant across every shard and
// the external input source.
func (b *BarrierEngine) nextAt(hooks BarrierHooks) (Time, bool) {
	var at Time
	ok := false
	for _, s := range b.shards {
		if t, o := s.NextAt(); o && (!ok || t < at) {
			at, ok = t, true
		}
	}
	if hooks.NextInput != nil {
		if t, o := hooks.NextInput(); o && (!ok || t < at) {
			at, ok = t, true
		}
	}
	return at, ok
}

// epochEnd maps an instant to the inclusive end of the epoch holding
// it: epoch k covers [k*E, (k+1)*E), and integer picoseconds make the
// exclusive upper bound exactly representable as (k+1)*E - 1. Empty
// epochs are skipped for free because the grid is derived from the
// next pending instant, not walked one period at a time.
func (b *BarrierEngine) epochEnd(at Time) Time {
	if at < 0 {
		at = 0
	}
	k := at / Time(b.epoch)
	end := (k+1)*Time(b.epoch) - 1
	if end < at || end > maxTime {
		return maxTime // epoch grid overflow: one final open-ended chunk
	}
	return end
}

// shardJob is one epoch slice of work for the worker pool.
type shardJob struct {
	eng *Engine
	end Time
}

// Run executes epochs until every shard and the input source drain, or
// ctx is cancelled. Each epoch: Prepare, then every shard runs to the
// epoch end (in parallel across min(workers, shards) goroutines; a
// shard itself is never shared between goroutines), then Barrier.
// Handlers and hooks may schedule freely into their own shard; Barrier
// may schedule into any shard at instants >= that shard's clock.
func (b *BarrierEngine) Run(ctx context.Context, hooks BarrierHooks) error {
	var (
		jobs      chan shardJob
		epochWG   sync.WaitGroup
		workerWG  sync.WaitGroup
		errMu     sync.Mutex
		workerErr error
	)
	if b.workers > 1 {
		jobs = make(chan shardJob)
		for w := 0; w < b.workers; w++ {
			workerWG.Add(1)
			go func() {
				defer workerWG.Done()
				for j := range jobs {
					// RunUntilContext only errors on ctx cancellation,
					// so recording the first error cannot perturb the
					// simulation state a successful run would produce.
					if err := j.eng.RunUntilContext(ctx, j.end); err != nil {
						errMu.Lock()
						if workerErr == nil {
							workerErr = err
						}
						errMu.Unlock()
					}
					epochWG.Done()
				}
			}()
		}
		defer func() {
			close(jobs)
			workerWG.Wait()
		}()
	}
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		at, ok := b.nextAt(hooks)
		if !ok {
			return nil
		}
		end := b.epochEnd(at)
		if hooks.Prepare != nil {
			if err := hooks.Prepare(end); err != nil {
				return err
			}
		}
		if jobs != nil {
			epochWG.Add(len(b.shards))
			for _, s := range b.shards {
				jobs <- shardJob{eng: s, end: end}
			}
			// The Wait is the epoch barrier proper: it orders every
			// shard's writes before the hook below reads them, and the
			// next epoch's sends order the hook's writes before the
			// shards resume.
			epochWG.Wait()
			errMu.Lock()
			err := workerErr
			errMu.Unlock()
			if err != nil {
				return err
			}
		} else {
			for _, s := range b.shards {
				if err := s.RunUntilContext(ctx, end); err != nil {
					return err
				}
			}
		}
		if hooks.Barrier != nil {
			if err := hooks.Barrier(end); err != nil {
				return err
			}
		}
	}
}
