// Conservative parallel discrete-event execution. A BarrierEngine owns
// several independent Engines — one per memory channel in this
// repository — and drives them through bulk-synchronous epochs: within
// an epoch every shard dispatches its own events on its own goroutine
// with no shared state, and cross-shard interaction happens only in
// the caller's barrier hooks, which run single-threaded between
// epochs. Because the epoch grid is a pure function of simulated time
// and the shards never observe each other mid-epoch, the dispatch
// sequence of every shard is identical at any worker count — the
// parallelism is conservative in the PDES sense, and determinism holds
// by construction rather than by luck of scheduling.
//
// # Barrier elision
//
// A rendezvous is only useful when the barrier hooks could do
// something: exchange state that actually changed. When the caller can
// prove, from the global state visible at a rendezvous, a lower bound
// on the next instant at which any cross-shard-visible state may
// change (the CrossAt hook), every epoch boundary strictly before that
// bound is a provable no-op and the shards can run straight through it
// in one chunk. The epoch grid itself never moves: an elided span
// always ends on the same [k*E, (k+1)*E) grid a fixed-epoch run uses
// (or earlier, at a CapEnd observation instant), so the set of
// boundaries where state is actually exchanged — and therefore every
// shard's dispatch sequence — is identical whether or not any no-op
// boundary was skipped, at any span cap, at any worker count. Elision
// changes wall-clock time only; see docs/ARCHITECTURE.md for the full
// determinism argument.
package sim

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// MaxTime is the open-ended run limit shared with Engine.Run: the
// largest instant the engines schedule or run to.
const MaxTime = Time(1<<62 - 1)

// maxTime is retained for the kernel internals.
const maxTime = MaxTime

// BarrierHooks are the caller's epoch-boundary callbacks. All fields
// are optional; the zero value runs the classic fixed-epoch protocol.
type BarrierHooks struct {
	// NextInput reports the instant of the earliest external input not
	// yet delivered to any shard (a trace cursor's head, typically), so
	// the epoch loop does not skip past epochs whose only activity is
	// new input. ok=false once the source is exhausted.
	NextInput func() (Time, bool)
	// Prepare runs single-threaded before the shards execute the span
	// ending at end (inclusive). Use it to stage external inputs due
	// within the span into per-shard structures.
	Prepare func(end Time) error
	// CrossAt reports a conservative lower bound on the next instant at
	// which any cross-shard-visible state may change: a completion that
	// alters bus demand, an arrival that creates a flow, a timer that
	// can release gated work. Epoch boundaries strictly before the
	// bound are provable no-ops and are elided: the shards run through
	// them without a rendezvous, directly to the inclusive end of the
	// epoch containing the bound. ok=false means no bound is available
	// for this span (the run falls back to one epoch per rendezvous).
	// The hook runs single-threaded at a rendezvous, so it may read any
	// shard's state. Nil disables elision entirely.
	CrossAt func() (Time, bool)
	// SpanCap bounds how many consecutive epochs one elided span may
	// cover, so staging buffers stay bounded; stall is the fraction of
	// recent wall time the coordinator spent blocked waiting for shards
	// (a dynamic-sizing input; 0 on the inline path). Returning a value
	// <= 1 disables elision for the span. Nil leaves spans unbounded.
	SpanCap func(stall float64) int
	// CapEnd clamps a proposed span end to the next global observation
	// instant (a layout-rebalance boundary, say). The returned value
	// must not exceed end; values below the shards' clocks are allowed
	// and produce an empty span that still rendezvouses at the instant.
	CapEnd func(end Time) Time
	// Observe runs single-threaded after every shard has reached end,
	// before Barrier: the epoch-synchronized global observation stage.
	// Use it to fold per-shard observations (idle-gap samples, layout
	// residency) into a coherent global view.
	Observe func(end Time) error
	// Barrier runs single-threaded after Observe. This is the place
	// cross-shard state may be exchanged: bandwidth re-allocation,
	// slack settlement, anything that reads or writes more than one
	// shard.
	Barrier func(end Time) error
}

// BarrierStats counts the synchronization work a run performed; the
// adaptive-epoch benchmarks read it to verify elision actually
// happened. Wall-clock dependent inputs (the stall fraction) influence
// only which provable no-op boundaries are skipped, so the stats may
// vary run to run while the simulation results cannot.
type BarrierStats struct {
	// Rendezvous is the number of spans executed: every one ends with
	// all shards synchronized at the same instant.
	Rendezvous int64
	// ElidedEpochs is the number of epoch boundaries skipped inside
	// elided spans.
	ElidedEpochs int64
}

// BarrierEngine drives a set of shard Engines in deterministic
// epoch-barrier lockstep. Construct with NewBarrierEngine.
type BarrierEngine struct {
	shards  []*Engine
	epoch   Duration
	workers int

	stats BarrierStats

	// Stall measurement for the SpanCap hook: wall time spent blocked
	// in the rendezvous Wait since the last SpanCap query.
	lastQuery time.Time
	waitAcc   time.Duration
}

// NewBarrierEngine builds a barrier engine over the given shards.
// epoch is the barrier period in simulated time; workers is the number
// of goroutines that execute shards within an epoch (clamped to the
// shard count; 1 means the shards run inline on the caller's
// goroutine). Results are independent of workers by construction.
func NewBarrierEngine(shards []*Engine, epoch Duration, workers int) (*BarrierEngine, error) {
	switch {
	case len(shards) == 0:
		return nil, fmt.Errorf("sim: barrier engine needs at least one shard")
	case epoch <= 0:
		return nil, fmt.Errorf("sim: barrier epoch %v must be positive", epoch)
	case workers < 1:
		return nil, fmt.Errorf("sim: barrier workers %d must be at least 1", workers)
	}
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("sim: barrier shard %d is nil", i)
		}
	}
	if workers > len(shards) {
		workers = len(shards)
	}
	return &BarrierEngine{shards: shards, epoch: epoch, workers: workers}, nil
}

// Workers returns the effective worker count after clamping.
func (b *BarrierEngine) Workers() int { return b.workers }

// Stats returns the synchronization counters accumulated so far. Call
// after Run returns (the counters are owned by Run's goroutine).
func (b *BarrierEngine) Stats() BarrierStats { return b.stats }

// nextAt returns the earliest pending instant across every shard and
// the external input source.
func (b *BarrierEngine) nextAt(hooks BarrierHooks) (Time, bool) {
	var at Time
	ok := false
	for _, s := range b.shards {
		if t, o := s.NextAt(); o && (!ok || t < at) {
			at, ok = t, true
		}
	}
	if hooks.NextInput != nil {
		if t, o := hooks.NextInput(); o && (!ok || t < at) {
			at, ok = t, true
		}
	}
	return at, ok
}

// epochEnd maps an instant to the inclusive end of the epoch holding
// it: epoch k covers [k*E, (k+1)*E), and integer picoseconds make the
// exclusive upper bound exactly representable as (k+1)*E - 1. Empty
// epochs are skipped for free because the grid is derived from the
// next pending instant, not walked one period at a time.
func (b *BarrierEngine) epochEnd(at Time) Time {
	if at < 0 {
		at = 0
	}
	k := at / Time(b.epoch)
	end := (k+1)*Time(b.epoch) - 1
	if end < at || end > maxTime {
		return maxTime // epoch grid overflow: one final open-ended chunk
	}
	return end
}

// spanLimit is the farthest inclusive end a span starting in at's
// epoch may reach under a cap of that many epochs.
func (b *BarrierEngine) spanLimit(at Time, cap int) Time {
	if at < 0 {
		at = 0
	}
	k := at / Time(b.epoch)
	limit := (k+Time(cap))*Time(b.epoch) - 1
	if limit < at || limit > maxTime {
		return maxTime
	}
	return limit
}

// spanEnd extends the fixed-grid end of the epoch holding at through
// every provably idle epoch boundary, per the CrossAt contract.
func (b *BarrierEngine) spanEnd(at Time, hooks BarrierHooks) Time {
	end := b.epochEnd(at)
	if hooks.CrossAt == nil || end == maxTime {
		return end
	}
	cross, ok := hooks.CrossAt()
	if !ok || cross <= end {
		return end
	}
	span := b.epochEnd(cross)
	if hooks.SpanCap != nil {
		cap := hooks.SpanCap(b.stallFraction())
		if cap <= 1 {
			return end
		}
		if limit := b.spanLimit(at, cap); span > limit {
			span = limit
		}
	}
	if span > end {
		if span < maxTime {
			b.stats.ElidedEpochs += int64((span - end) / Time(b.epoch))
		}
		end = span
	}
	return end
}

// stallFraction reports the share of wall time since the previous call
// that the coordinating goroutine spent blocked at the rendezvous
// Wait. Purely an efficiency signal: it feeds SpanCap, whose output
// only selects among provable no-op boundaries to skip, so wall-clock
// jitter cannot reach simulation results.
func (b *BarrierEngine) stallFraction() float64 {
	now := time.Now()
	if b.lastQuery.IsZero() {
		b.lastQuery = now
		b.waitAcc = 0
		return 0
	}
	total := now.Sub(b.lastQuery)
	wait := b.waitAcc
	b.lastQuery = now
	b.waitAcc = 0
	if total <= 0 || wait <= 0 {
		return 0
	}
	f := float64(wait) / float64(total)
	if f > 1 {
		f = 1
	}
	return f
}

// shardJob is one span slice of work for the worker pool.
type shardJob struct {
	eng *Engine
	end Time
}

// Run executes epoch spans until every shard and the input source
// drain, or ctx is cancelled. Each span: pick the next pending
// instant, extend its epoch end through provably idle boundaries
// (CrossAt/SpanCap), clamp to the next observation instant (CapEnd),
// Prepare, then every shard runs to the span end (in parallel across
// min(workers, shards) goroutines; a shard itself is never shared
// between goroutines), then Observe, then Barrier. Handlers and hooks
// may schedule freely into their own shard; Observe and Barrier may
// schedule into any shard at instants >= that shard's clock.
func (b *BarrierEngine) Run(ctx context.Context, hooks BarrierHooks) error {
	var (
		jobs      chan shardJob
		epochWG   sync.WaitGroup
		workerWG  sync.WaitGroup
		errMu     sync.Mutex
		workerErr error
	)
	if b.workers > 1 {
		jobs = make(chan shardJob)
		for w := 0; w < b.workers; w++ {
			workerWG.Add(1)
			go func() {
				defer workerWG.Done()
				for j := range jobs {
					// RunUntilContext only errors on ctx cancellation,
					// so recording the first error cannot perturb the
					// simulation state a successful run would produce.
					if err := j.eng.RunUntilContext(ctx, j.end); err != nil {
						errMu.Lock()
						if workerErr == nil {
							workerErr = err
						}
						errMu.Unlock()
					}
					epochWG.Done()
				}
			}()
		}
		defer func() {
			close(jobs)
			workerWG.Wait()
		}()
	}
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		at, ok := b.nextAt(hooks)
		if !ok {
			return nil
		}
		end := b.spanEnd(at, hooks)
		if hooks.CapEnd != nil {
			if c := hooks.CapEnd(end); c < end {
				end = c
			}
		}
		if hooks.Prepare != nil {
			if err := hooks.Prepare(end); err != nil {
				return err
			}
		}
		if jobs != nil {
			epochWG.Add(len(b.shards))
			for _, s := range b.shards {
				jobs <- shardJob{eng: s, end: end}
			}
			// The Wait is the epoch barrier proper: it orders every
			// shard's writes before the hooks below read them, and the
			// next span's sends order the hooks' writes before the
			// shards resume.
			waitStart := time.Now()
			epochWG.Wait()
			b.waitAcc += time.Since(waitStart)
			errMu.Lock()
			err := workerErr
			errMu.Unlock()
			if err != nil {
				return err
			}
		} else {
			for _, s := range b.shards {
				if err := s.RunUntilContext(ctx, end); err != nil {
					return err
				}
			}
		}
		b.stats.Rendezvous++
		if hooks.Observe != nil {
			if err := hooks.Observe(end); err != nil {
				return err
			}
		}
		if hooks.Barrier != nil {
			if err := hooks.Barrier(end); err != nil {
				return err
			}
		}
	}
}
