package sim

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestUnits(t *testing.T) {
	if Nanosecond != 1000 {
		t.Fatalf("Nanosecond = %d, want 1000", Nanosecond)
	}
	if Second != 1e12 {
		t.Fatalf("Second = %d, want 1e12", Second)
	}
	if got := FromNanoseconds(7.5); got != 7500 {
		t.Fatalf("FromNanoseconds(7.5) = %d, want 7500", got)
	}
	if got := FromSeconds(1e-6); got != Microsecond {
		t.Fatalf("FromSeconds(1e-6) = %d, want %d", got, Microsecond)
	}
	if got := Duration(2_500_000).Microseconds(); got != 2.5 {
		t.Fatalf("Microseconds = %g, want 2.5", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: got %d", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %d", d)
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(30, func(*Engine) { order = append(order, 3) })
	e.Schedule(10, func(*Engine) { order = append(order, 1) })
	e.Schedule(20, func(*Engine) { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(42, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-instant events fired out of scheduling order: %v", order)
	}
}

func TestPriorityBeatsSeq(t *testing.T) {
	e := New()
	var order []string
	e.SchedulePrio(5, 1, func(*Engine) { order = append(order, "timer") })
	e.SchedulePrio(5, 0, func(*Engine) { order = append(order, "arrival") })
	e.Run()
	if len(order) != 2 || order[0] != "arrival" || order[1] != "timer" {
		t.Fatalf("priority ordering broken: %v", order)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(100, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, func(*Engine) {})
}

func TestScheduleNilPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	id := e.Schedule(10, func(*Engine) { fired = true })
	if !id.Valid() {
		t.Fatal("id should be valid before firing")
	}
	if !e.Cancel(id) {
		t.Fatal("first cancel should succeed")
	}
	if e.Cancel(id) {
		t.Fatal("second cancel should fail")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := New()
	id := e.Schedule(10, func(*Engine) {})
	e.Run()
	if id.Valid() {
		t.Fatal("id still valid after firing")
	}
	if e.Cancel(id) {
		t.Fatal("cancel after fire should be a no-op")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := New()
	var got []int
	var ids []EventID
	for i := 0; i < 20; i++ {
		i := i
		ids = append(ids, e.Schedule(Time(i*10), func(*Engine) { got = append(got, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		e.Cancel(ids[i])
	}
	e.Run()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("remaining events out of order: %v", got)
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at Time
	e.Schedule(100, func(e *Engine) {
		e.After(25, func(e *Engine) { at = e.Now() })
	})
	e.Run()
	if at != 125 {
		t.Fatalf("After fired at %v, want 125", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func(*Engine) { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v after second run", fired)
	}
}

func TestStop(t *testing.T) {
	e := New()
	n := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func(e *Engine) {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("dispatched %d events, want 3", n)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestStep(t *testing.T) {
	e := New()
	n := 0
	e.Schedule(1, func(*Engine) { n++ })
	e.Schedule(2, func(*Engine) { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestSteps(t *testing.T) {
	e := New()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func(*Engine) {})
	}
	e.Run()
	if e.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", e.Steps())
	}
}

func TestSelfRescheduling(t *testing.T) {
	e := New()
	count := 0
	var tick Handler
	tick = func(e *Engine) {
		count++
		if count < 100 {
			e.After(10, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 990 {
		t.Fatalf("clock = %v, want 990", e.Now())
	}
}

// Property: events fire in nondecreasing time order regardless of the
// order in which they were scheduled.
func TestQuickOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		e := New()
		var fired []Time
		for _, raw := range times {
			at := Time(raw)
			e.Schedule(at, func(e *Engine) { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the complement to
// fire, still in order.
func TestQuickCancelSubset(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		fired := map[int]bool{}
		ids := make([]EventID, n)
		for i := 0; i < int(n); i++ {
			i := i
			ids[i] = e.Schedule(Time(rng.Intn(1000)), func(*Engine) { fired[i] = true })
		}
		cancelled := map[int]bool{}
		for i := 0; i < int(n); i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(ids[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < int(n); i++ {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		var tick Handler
		n := 0
		tick = func(e *Engine) {
			n++
			if n < 1000 {
				e.After(10, tick)
			}
		}
		e.Schedule(0, tick)
		e.Run()
	}
}

// TestCancelThenFireSameInstant cancels one of two events scheduled at
// the same instant from inside the first: the cancelled event must not
// fire even though it was already due.
func TestCancelThenFireSameInstant(t *testing.T) {
	e := New()
	fired := false
	var victim EventID
	e.SchedulePrio(10, 0, func(e *Engine) {
		if !e.Cancel(victim) {
			t.Error("cancel of same-instant pending event failed")
		}
	})
	victim = e.SchedulePrio(10, 1, func(*Engine) { fired = true })
	e.Run()
	if fired {
		t.Fatal("event cancelled at its own instant still fired")
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

// TestStaleIDAfterRecycle checks the generation guard on pooled event
// objects: after an event fires, its object is recycled for the next
// Schedule, and the stale ID must read invalid — and Cancel through it
// must be a no-op that leaves the recycled object's new event intact.
func TestStaleIDAfterRecycle(t *testing.T) {
	e := New()
	stale := e.Schedule(1, func(*Engine) {})
	e.Run()
	if stale.Valid() {
		t.Fatal("id valid after its event fired")
	}

	// The next schedule reuses the pooled object.
	fired := false
	fresh := e.Schedule(2, func(*Engine) { fired = true })
	if fresh.ev != stale.ev {
		t.Fatalf("expected pooled reuse: fresh.ev=%p stale.ev=%p", fresh.ev, stale.ev)
	}
	if stale.Valid() {
		t.Fatal("stale id became valid again when its object was reused")
	}
	if e.Cancel(stale) {
		t.Fatal("cancel through a stale id succeeded")
	}
	if !fresh.Valid() {
		t.Fatal("stale cancel corrupted the recycled object's new event")
	}
	e.Run()
	if !fired {
		t.Fatal("recycled object's new event did not fire")
	}
}

// TestRunUntilClockAfterStop: when Stop fires mid-run, the clock must
// stay at the stopping event's instant (not jump to the limit), and a
// later RunUntil must resume from there.
func TestRunUntilClockAfterStop(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		e.Schedule(at, func(e *Engine) {
			fired = append(fired, at)
			if at == 20 {
				e.Stop()
			}
		})
	}
	e.RunUntil(100)
	if e.Now() != 20 {
		t.Fatalf("clock after Stop = %v, want 20", e.Now())
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20", fired)
	}
	e.RunUntil(100)
	// Queue drained naturally, so the clock stays at the last event.
	if len(fired) != 3 || e.Now() != 30 {
		t.Fatalf("resume: fired %v, clock %v; want 3 events and clock 30", fired, e.Now())
	}
}

// TestZeroAllocSteadyState is the allocation guard for the pooled hot
// path: once the free list and heap slice are warm, a steady-state
// schedule/cancel/fire cycle must not allocate at all.
func TestZeroAllocSteadyState(t *testing.T) {
	e := New()
	// Handlers are created once; creating a closure inside the measured
	// loop would itself allocate.
	noop := Handler(func(*Engine) {})
	var tick Handler
	tick = func(e *Engine) {
		if e.Pending() == 0 {
			e.After(10, tick)
			e.After(10, noop)
		}
	}
	// Warm the pool and the heap backing array.
	for i := 0; i < 64; i++ {
		e.After(Duration(i+1), noop)
	}
	victim := e.After(1000, noop)
	e.Cancel(victim)
	e.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		id := e.After(5, noop)
		e.Cancel(id)
		e.After(10, tick)
		e.After(10, noop)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state dispatch allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestEngineGoroutineIsolation exercises the package's ownership
// contract: one Engine per goroutine, engines sharing no state. Many
// goroutines each run an identical event cascade on a private engine;
// under -race this proves isolation, and the identical outcomes prove
// that concurrency does not perturb determinism.
func TestEngineGoroutineIsolation(t *testing.T) {
	type outcome struct {
		steps uint64
		now   Time
		order string
	}
	run := func() outcome {
		e := New()
		var order []byte
		// A cascade with same-instant priorities, cancellation and
		// follow-up scheduling — every kernel feature in one script.
		e.SchedulePrio(10, 1, func(e *Engine) { order = append(order, 'b') })
		e.SchedulePrio(10, 0, func(e *Engine) {
			order = append(order, 'a')
			e.After(5, func(e *Engine) { order = append(order, 'd') })
		})
		victim := e.Schedule(12, func(e *Engine) { order = append(order, 'x') })
		e.Schedule(11, func(e *Engine) {
			order = append(order, 'c')
			e.Cancel(victim)
		})
		e.Run()
		return outcome{steps: e.Steps(), now: e.Now(), order: string(order)}
	}

	want := run()
	if want.order != "abcd" {
		t.Fatalf("reference order = %q, want abcd", want.order)
	}
	const goroutines = 16
	got := make([]outcome, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = run()
		}(i)
	}
	wg.Wait()
	for i, o := range got {
		if o != want {
			t.Errorf("goroutine %d: outcome %+v != reference %+v", i, o, want)
		}
	}
}
