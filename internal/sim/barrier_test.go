package sim

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// buildBarrierKernel schedules one shard's random workload: the same
// mix TestSchedulerEquivalence uses (deltas across every wheel level,
// same-instant priority ties, cancels, handler-driven reschedules),
// confined to one shard so the kernel is legal under the barrier
// engine's no-cross-shard-mid-epoch rule.
func buildBarrierKernel(e *Engine, rng *rand.Rand, order *[]int, labelBase int) {
	deltas := []Duration{0, 1, 3, 63, 64, 65, 1000, 4095, 4096, 9999,
		262144, 1000000, 10 * Microsecond, 3 * Millisecond}
	var ids []EventID
	label := labelBase
	var schedule func(depth int)
	schedule = func(depth int) {
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			l := label
			label++
			at := e.Now().Add(deltas[rng.Intn(len(deltas))])
			prio := int8(rng.Intn(3))
			id := e.SchedulePrio(at, prio, func(e *Engine) {
				*order = append(*order, l)
				if depth < 3 && rng.Intn(4) == 0 {
					schedule(depth + 1)
				}
			})
			ids = append(ids, id)
			if len(ids) > 3 && rng.Intn(5) == 0 {
				e.Cancel(ids[rng.Intn(len(ids))])
			}
		}
	}
	schedule(0)
}

// TestBarrierSingleShardMatchesSerial: driving one shard through the
// barrier engine in epoch chunks dispatches the identical sequence —
// same order, same step count, same final clock — as the shard's own
// Run. This is the bit-identicality claim the parallel core path
// relies on for single-channel configurations.
func TestBarrierSingleShardMatchesSerial(t *testing.T) {
	epochs := []Duration{64, 1000, 4096, 50 * Microsecond, 10 * Millisecond}
	for seed := int64(1); seed <= 10; seed++ {
		var refOrder []int
		ref := New()
		buildBarrierKernel(ref, rand.New(rand.NewSource(seed)), &refOrder, 0)
		ref.Run()
		for _, epoch := range epochs {
			var order []int
			e := New()
			buildBarrierKernel(e, rand.New(rand.NewSource(seed)), &order, 0)
			be, err := NewBarrierEngine([]*Engine{e}, epoch, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := be.Run(context.Background(), BarrierHooks{}); err != nil {
				t.Fatalf("seed %d epoch %v: %v", seed, epoch, err)
			}
			if len(order) != len(refOrder) {
				t.Fatalf("seed %d epoch %v: %d dispatches, serial %d",
					seed, epoch, len(order), len(refOrder))
			}
			for i := range order {
				if order[i] != refOrder[i] {
					t.Fatalf("seed %d epoch %v: order diverges at %d: %d vs %d",
						seed, epoch, i, order[i], refOrder[i])
				}
			}
			if e.Steps() != ref.Steps() {
				t.Fatalf("seed %d epoch %v: steps %d, serial %d", seed, epoch, e.Steps(), ref.Steps())
			}
			if e.Now() != ref.Now() {
				t.Fatalf("seed %d epoch %v: clock %v, serial %v", seed, epoch, e.Now(), ref.Now())
			}
		}
	}
}

// barrierRun executes one seeded multi-shard scenario: every shard
// carries its own random kernel, and the barrier hook injects
// cross-shard events — schedules into other shards at offsets that
// straddle epoch boundaries, plus cancels and reschedules of earlier
// cross-shard events — from a hook-local rng. The hook runs
// single-threaded between epochs, so the whole scenario is a pure
// function of the seed; the returned per-shard dispatch logs must be
// identical at any worker count.
func barrierRun(t *testing.T, seed int64, shards, workers int, epoch Duration) ([][]int, []uint64) {
	t.Helper()
	engs := make([]*Engine, shards)
	logs := make([][]int, shards)
	for i := range engs {
		engs[i] = New()
		order := &logs[i]
		buildBarrierKernel(engs[i], rand.New(rand.NewSource(seed*100+int64(i))), order, i*1_000_000)
	}
	be, err := NewBarrierEngine(engs, epoch, workers)
	if err != nil {
		t.Fatal(err)
	}
	hookRng := rand.New(rand.NewSource(seed * 977))
	crossLabel := 500_000_000
	type crossEvt struct {
		shard int
		id    EventID
	}
	var pending []crossEvt
	barriers := 0
	hooks := BarrierHooks{
		Barrier: func(end Time) error {
			barriers++
			if barriers > 200 {
				return nil // bound the cross-traffic so the run terminates
			}
			// Offsets on both sides of the next epoch boundary, so
			// cross-shard events land mid-epoch, on the first instant of
			// the next epoch, and several epochs out.
			offsets := []Duration{1, 3, Duration(epoch) / 2, Duration(epoch),
				Duration(epoch) + 1, 3*Duration(epoch) + 7}
			n := hookRng.Intn(4)
			for i := 0; i < n; i++ {
				s := hookRng.Intn(shards)
				at := end.Add(offsets[hookRng.Intn(len(offsets))])
				l := crossLabel
				crossLabel++
				order := &logs[s]
				id := engs[s].SchedulePrio(at, int8(hookRng.Intn(3)), func(e *Engine) {
					*order = append(*order, l)
				})
				pending = append(pending, crossEvt{shard: s, id: id})
			}
			// Cross-shard cancel: stale IDs (already fired) are safe
			// no-ops, and whether an ID is stale is itself deterministic.
			if len(pending) > 2 && hookRng.Intn(3) == 0 {
				c := pending[hookRng.Intn(len(pending))]
				engs[c.shard].Cancel(c.id)
			}
			return nil
		},
	}
	if err := be.Run(context.Background(), hooks); err != nil {
		t.Fatalf("seed %d workers %d: %v", seed, workers, err)
	}
	steps := make([]uint64, shards)
	for i, e := range engs {
		steps[i] = e.Steps()
	}
	return logs, steps
}

// TestBarrierEquivalenceAcrossWorkers is the parallel extension of the
// scheduler-equivalence fuzz kernel: random per-shard workloads with
// cross-shard barrier traffic straddling epoch boundaries must produce
// bit-identical per-shard dispatch sequences at 1, 2 and 4 workers.
// Run under -race in CI, it is also the data-race gate for the worker
// pool's barrier memory ordering.
func TestBarrierEquivalenceAcrossWorkers(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		for _, epoch := range []Duration{1000, 50 * Microsecond, Millisecond} {
			refLogs, refSteps := barrierRun(t, seed, 4, 1, epoch)
			for _, workers := range []int{2, 4} {
				logs, steps := barrierRun(t, seed, 4, workers, epoch)
				for s := range logs {
					if len(logs[s]) != len(refLogs[s]) {
						t.Fatalf("seed %d epoch %v workers %d shard %d: %d dispatches, ref %d",
							seed, epoch, workers, s, len(logs[s]), len(refLogs[s]))
					}
					for i := range logs[s] {
						if logs[s][i] != refLogs[s][i] {
							t.Fatalf("seed %d epoch %v workers %d shard %d: order diverges at %d",
								seed, epoch, workers, s, i)
						}
					}
					if steps[s] != refSteps[s] {
						t.Fatalf("seed %d epoch %v workers %d shard %d: steps %d, ref %d",
							seed, epoch, workers, s, steps[s], refSteps[s])
					}
				}
			}
		}
	}
}

// TestBarrierPrepareAndNextInput: external inputs surfaced through
// NextInput keep the epoch loop alive across otherwise-empty stretches,
// and Prepare stages them into the right shard before the epoch runs.
func TestBarrierPrepareAndNextInput(t *testing.T) {
	type input struct {
		at    Time
		shard int
		label int
	}
	// Long silent gaps between inputs force the skip-ahead path.
	inputs := []input{
		{at: 10, shard: 0, label: 1},
		{at: 10, shard: 1, label: 2},
		{at: Time(3 * Millisecond), shard: 1, label: 3},
		{at: Time(90 * Millisecond), shard: 0, label: 4},
	}
	run := func(workers int) [][]int {
		engs := []*Engine{New(), New()}
		logs := make([][]int, 2)
		idx := 0
		hooks := BarrierHooks{
			NextInput: func() (Time, bool) {
				if idx >= len(inputs) {
					return 0, false
				}
				return inputs[idx].at, true
			},
			Prepare: func(end Time) error {
				for idx < len(inputs) && inputs[idx].at <= end {
					in := inputs[idx]
					idx++
					order := &logs[in.shard]
					engs[in.shard].SchedulePrio(in.at, 1, func(e *Engine) {
						*order = append(*order, in.label)
						if in.label == 2 {
							// Follow-up work several epochs out, so shard 1
							// stays non-empty across a silent input gap.
							e.After(2*Millisecond, func(e *Engine) {
								*order = append(*order, -2)
							})
						}
					})
				}
				return nil
			},
		}
		be, err := NewBarrierEngine(engs, 50*Microsecond, workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := be.Run(context.Background(), hooks); err != nil {
			t.Fatal(err)
		}
		if idx != len(inputs) {
			t.Fatalf("workers %d: only %d of %d inputs delivered", workers, idx, len(inputs))
		}
		return logs
	}
	want := [][]int{{1, 4}, {2, -2, 3}}
	for _, workers := range []int{1, 2} {
		logs := run(workers)
		for s := range want {
			if len(logs[s]) != len(want[s]) {
				t.Fatalf("workers %d shard %d: got %v, want %v", workers, s, logs[s], want[s])
			}
			for i := range want[s] {
				if logs[s][i] != want[s][i] {
					t.Fatalf("workers %d shard %d: got %v, want %v", workers, s, logs[s], want[s])
				}
			}
		}
	}
}

// elisionRun executes a fixed scenario under either the classic
// fixed-epoch protocol or the adaptive (CrossAt) one: three shards
// tick local work every 7 us for 10 ms, and the barrier hook injects a
// cross-shard event whenever a scripted cross instant falls inside the
// span that just ended. The injection schedule is a pure function of
// simulated time (the first rendezvous end at or past each scripted
// instant is that instant's epoch end in both modes), so logs must be
// bit-identical with and without elision.
func elisionRun(t *testing.T, workers int, adaptive bool) ([][]int, []Time, BarrierStats, []Time) {
	t.Helper()
	const shards = 3
	epoch := 50 * Microsecond
	crosses := []Time{Time(Millisecond) + 13, Time(4*Millisecond) + 1, Time(9 * Millisecond)}
	engs := make([]*Engine, shards)
	logs := make([][]int, shards)
	for i := range engs {
		engs[i] = New()
		order := &logs[i]
		label := i * 1000
		var tick Handler
		tick = func(e *Engine) {
			*order = append(*order, label)
			label++
			if e.Now() < Time(10*Millisecond) {
				e.After(7*Microsecond, tick)
			}
		}
		engs[i].Schedule(Time(i), tick)
	}
	be, err := NewBarrierEngine(engs, epoch, workers)
	if err != nil {
		t.Fatal(err)
	}
	nextCross := 0
	crossLabel := 500_000
	var ends []Time
	hooks := BarrierHooks{
		Barrier: func(end Time) error {
			ends = append(ends, end)
			for nextCross < len(crosses) && crosses[nextCross] <= end {
				nextCross++
				s := nextCross % shards
				order := &logs[s]
				l := crossLabel
				crossLabel++
				engs[s].SchedulePrio(end.Add(3), 0, func(e *Engine) {
					*order = append(*order, l)
				})
			}
			return nil
		},
	}
	if adaptive {
		hooks.CrossAt = func() (Time, bool) {
			if nextCross < len(crosses) {
				return crosses[nextCross], true
			}
			return MaxTime, true
		}
	}
	if err := be.Run(context.Background(), hooks); err != nil {
		t.Fatal(err)
	}
	clocks := make([]Time, shards)
	for i, e := range engs {
		clocks[i] = e.Now()
	}
	return logs, clocks, be.Stats(), ends
}

// TestBarrierElisionMatchesFixed is the sim-level elision gate: with a
// sound CrossAt bound the adaptive engine must skip most rendezvous of
// a sparse scenario while reproducing the fixed-epoch dispatch
// sequence exactly, at 1 and 2 workers.
func TestBarrierElisionMatchesFixed(t *testing.T) {
	refLogs, refClocks, refStats, _ := elisionRun(t, 1, false)
	if refStats.ElidedEpochs != 0 {
		t.Fatalf("fixed run elided %d epochs", refStats.ElidedEpochs)
	}
	for _, workers := range []int{1, 2} {
		logs, clocks, stats, _ := elisionRun(t, workers, true)
		for s := range logs {
			if len(logs[s]) != len(refLogs[s]) {
				t.Fatalf("workers %d shard %d: %d dispatches, fixed %d",
					workers, s, len(logs[s]), len(refLogs[s]))
			}
			for i := range logs[s] {
				if logs[s][i] != refLogs[s][i] {
					t.Fatalf("workers %d shard %d: order diverges at %d", workers, s, i)
				}
			}
			if clocks[s] != refClocks[s] {
				t.Fatalf("workers %d shard %d: clock %v, fixed %v", workers, s, clocks[s], refClocks[s])
			}
		}
		if stats.Rendezvous*4 > refStats.Rendezvous {
			t.Errorf("workers %d: elision barely helped: %d rendezvous, fixed %d",
				workers, stats.Rendezvous, refStats.Rendezvous)
		}
		if stats.ElidedEpochs == 0 {
			t.Errorf("workers %d: no epochs elided", workers)
		}
	}
}

// TestBarrierSpanCap: the SpanCap hook bounds every elided span, so
// consecutive rendezvous can never be farther apart than cap epochs —
// the guarantee the core relies on to keep staging buffers bounded.
func TestBarrierSpanCap(t *testing.T) {
	epoch := 10 * Microsecond
	eng := New()
	n := 0
	var tick Handler
	tick = func(e *Engine) {
		if n++; e.Now() < Time(Millisecond) {
			e.After(epoch/2, tick)
		}
	}
	eng.Schedule(0, tick)
	be, err := NewBarrierEngine([]*Engine{eng}, epoch, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ends []Time
	capCalls := 0
	err = be.Run(context.Background(), BarrierHooks{
		CrossAt: func() (Time, bool) { return MaxTime, true },
		SpanCap: func(stall float64) int {
			capCalls++
			if stall < 0 || stall > 1 {
				t.Fatalf("stall fraction %g outside [0,1]", stall)
			}
			return 4
		},
		Barrier: func(end Time) error {
			ends = append(ends, end)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if capCalls == 0 {
		t.Fatal("SpanCap never consulted")
	}
	if len(ends) < 2 {
		t.Fatalf("only %d rendezvous", len(ends))
	}
	for i := 1; i < len(ends); i++ {
		if d := ends[i] - ends[i-1]; d > Time(4*epoch) {
			t.Fatalf("span %d covers %v, cap allows %v", i, d, 4*epoch)
		}
	}
}

// TestBarrierCapEndAndObserve: CapEnd turns arbitrary instants into
// forced rendezvous (mid-epoch, and even instants at or before the
// shards' clocks, which produce an empty span), and Observe runs at
// every rendezvous before Barrier with the same end.
func TestBarrierCapEndAndObserve(t *testing.T) {
	epoch := 50 * Microsecond
	obsAt := []Time{Time(120 * Microsecond), Time(121 * Microsecond), Time(300 * Microsecond)}
	eng := New()
	var fired []Time
	var tick Handler
	tick = func(e *Engine) {
		fired = append(fired, e.Now())
		if e.Now() < Time(500*Microsecond) {
			e.After(90*Microsecond, tick)
		}
	}
	eng.Schedule(0, tick)
	be, err := NewBarrierEngine([]*Engine{eng}, epoch, 1)
	if err != nil {
		t.Fatal(err)
	}
	nextObs := 0
	var observed, barriered []Time
	err = be.Run(context.Background(), BarrierHooks{
		CrossAt: func() (Time, bool) { return MaxTime, true },
		CapEnd: func(end Time) Time {
			if nextObs < len(obsAt) && obsAt[nextObs] < end {
				return obsAt[nextObs]
			}
			return end
		},
		Observe: func(end Time) error {
			observed = append(observed, end)
			for nextObs < len(obsAt) && obsAt[nextObs] <= end {
				nextObs++
			}
			return nil
		},
		Barrier: func(end Time) error {
			barriered = append(barriered, end)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nextObs != len(obsAt) {
		t.Fatalf("only %d of %d observation instants reached", nextObs, len(obsAt))
	}
	if len(observed) != len(barriered) {
		t.Fatalf("%d observes, %d barriers", len(observed), len(barriered))
	}
	for i := range observed {
		if observed[i] != barriered[i] {
			t.Fatalf("rendezvous %d: Observe(%v) but Barrier(%v)", i, observed[i], barriered[i])
		}
	}
	for _, at := range obsAt {
		found := false
		for _, end := range observed {
			if end == at {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no rendezvous at forced observation instant %v (got %v)", at, observed)
		}
	}
}

// TestBarrierHookErrors: a hook returning an error mid-run must tear
// down the epoch loop (workers drain via the deferred close) and
// surface exactly that error, on both the inline and pooled paths.
func TestBarrierHookErrors(t *testing.T) {
	build := func() []*Engine {
		engs := []*Engine{New(), New()}
		for _, e := range engs {
			var tick Handler
			tick = func(e *Engine) {
				if e.Now() < Time(2*Millisecond) {
					e.After(10*Microsecond, tick)
				}
			}
			e.Schedule(0, tick)
		}
		return engs
	}
	sentinel := fmt.Errorf("hook exploded")
	cases := []struct {
		name string
		hook func(calls *int) BarrierHooks
	}{
		{"prepare", func(calls *int) BarrierHooks {
			return BarrierHooks{Prepare: func(end Time) error {
				if *calls++; *calls == 3 {
					return sentinel
				}
				return nil
			}}
		}},
		{"observe", func(calls *int) BarrierHooks {
			return BarrierHooks{Observe: func(end Time) error {
				if *calls++; *calls == 3 {
					return sentinel
				}
				return nil
			}}
		}},
		{"barrier", func(calls *int) BarrierHooks {
			return BarrierHooks{Barrier: func(end Time) error {
				if *calls++; *calls == 3 {
					return sentinel
				}
				return nil
			}}
		}},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2} {
			engs := build()
			be, err := NewBarrierEngine(engs, 50*Microsecond, workers)
			if err != nil {
				t.Fatal(err)
			}
			calls := 0
			if err := be.Run(context.Background(), tc.hook(&calls)); err != sentinel {
				t.Errorf("%s workers %d: err = %v, want the hook's error", tc.name, workers, err)
			}
			if calls != 3 {
				t.Errorf("%s workers %d: loop continued past the failing hook (%d calls)", tc.name, workers, calls)
			}
		}
	}
}

// TestBarrierEngineValidation pins the constructor's loud errors and
// the worker clamp.
func TestBarrierEngineValidation(t *testing.T) {
	if _, err := NewBarrierEngine(nil, Microsecond, 1); err == nil {
		t.Error("no shards accepted")
	}
	if _, err := NewBarrierEngine([]*Engine{New()}, 0, 1); err == nil {
		t.Error("zero epoch accepted")
	}
	if _, err := NewBarrierEngine([]*Engine{New()}, -Microsecond, 1); err == nil {
		t.Error("negative epoch accepted")
	}
	if _, err := NewBarrierEngine([]*Engine{New()}, Microsecond, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewBarrierEngine([]*Engine{New(), nil}, Microsecond, 1); err == nil {
		t.Error("nil shard accepted")
	}
	be, err := NewBarrierEngine([]*Engine{New(), New()}, Microsecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	if be.Workers() != 2 {
		t.Fatalf("workers not clamped to shard count: %d", be.Workers())
	}
}

// TestBarrierRunCancelled: a cancelled context aborts the epoch loop
// with the context's error on both the inline and pooled paths.
func TestBarrierRunCancelled(t *testing.T) {
	for _, workers := range []int{1, 2} {
		engs := []*Engine{New(), New()}
		for _, e := range engs {
			n := 0
			var tick Handler
			tick = func(e *Engine) {
				if n++; n < 1000 {
					e.After(10, tick)
				}
			}
			e.Schedule(0, tick)
		}
		be, err := NewBarrierEngine(engs, Microsecond, workers)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := be.Run(ctx, BarrierHooks{}); err != context.Canceled {
			t.Fatalf("workers %d: err = %v, want context.Canceled", workers, err)
		}
	}
}
