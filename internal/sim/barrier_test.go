package sim

import (
	"context"
	"math/rand"
	"testing"
)

// buildBarrierKernel schedules one shard's random workload: the same
// mix TestSchedulerEquivalence uses (deltas across every wheel level,
// same-instant priority ties, cancels, handler-driven reschedules),
// confined to one shard so the kernel is legal under the barrier
// engine's no-cross-shard-mid-epoch rule.
func buildBarrierKernel(e *Engine, rng *rand.Rand, order *[]int, labelBase int) {
	deltas := []Duration{0, 1, 3, 63, 64, 65, 1000, 4095, 4096, 9999,
		262144, 1000000, 10 * Microsecond, 3 * Millisecond}
	var ids []EventID
	label := labelBase
	var schedule func(depth int)
	schedule = func(depth int) {
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			l := label
			label++
			at := e.Now().Add(deltas[rng.Intn(len(deltas))])
			prio := int8(rng.Intn(3))
			id := e.SchedulePrio(at, prio, func(e *Engine) {
				*order = append(*order, l)
				if depth < 3 && rng.Intn(4) == 0 {
					schedule(depth + 1)
				}
			})
			ids = append(ids, id)
			if len(ids) > 3 && rng.Intn(5) == 0 {
				e.Cancel(ids[rng.Intn(len(ids))])
			}
		}
	}
	schedule(0)
}

// TestBarrierSingleShardMatchesSerial: driving one shard through the
// barrier engine in epoch chunks dispatches the identical sequence —
// same order, same step count, same final clock — as the shard's own
// Run. This is the bit-identicality claim the parallel core path
// relies on for single-channel configurations.
func TestBarrierSingleShardMatchesSerial(t *testing.T) {
	epochs := []Duration{64, 1000, 4096, 50 * Microsecond, 10 * Millisecond}
	for seed := int64(1); seed <= 10; seed++ {
		var refOrder []int
		ref := New()
		buildBarrierKernel(ref, rand.New(rand.NewSource(seed)), &refOrder, 0)
		ref.Run()
		for _, epoch := range epochs {
			var order []int
			e := New()
			buildBarrierKernel(e, rand.New(rand.NewSource(seed)), &order, 0)
			be, err := NewBarrierEngine([]*Engine{e}, epoch, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := be.Run(context.Background(), BarrierHooks{}); err != nil {
				t.Fatalf("seed %d epoch %v: %v", seed, epoch, err)
			}
			if len(order) != len(refOrder) {
				t.Fatalf("seed %d epoch %v: %d dispatches, serial %d",
					seed, epoch, len(order), len(refOrder))
			}
			for i := range order {
				if order[i] != refOrder[i] {
					t.Fatalf("seed %d epoch %v: order diverges at %d: %d vs %d",
						seed, epoch, i, order[i], refOrder[i])
				}
			}
			if e.Steps() != ref.Steps() {
				t.Fatalf("seed %d epoch %v: steps %d, serial %d", seed, epoch, e.Steps(), ref.Steps())
			}
			if e.Now() != ref.Now() {
				t.Fatalf("seed %d epoch %v: clock %v, serial %v", seed, epoch, e.Now(), ref.Now())
			}
		}
	}
}

// barrierRun executes one seeded multi-shard scenario: every shard
// carries its own random kernel, and the barrier hook injects
// cross-shard events — schedules into other shards at offsets that
// straddle epoch boundaries, plus cancels and reschedules of earlier
// cross-shard events — from a hook-local rng. The hook runs
// single-threaded between epochs, so the whole scenario is a pure
// function of the seed; the returned per-shard dispatch logs must be
// identical at any worker count.
func barrierRun(t *testing.T, seed int64, shards, workers int, epoch Duration) ([][]int, []uint64) {
	t.Helper()
	engs := make([]*Engine, shards)
	logs := make([][]int, shards)
	for i := range engs {
		engs[i] = New()
		order := &logs[i]
		buildBarrierKernel(engs[i], rand.New(rand.NewSource(seed*100+int64(i))), order, i*1_000_000)
	}
	be, err := NewBarrierEngine(engs, epoch, workers)
	if err != nil {
		t.Fatal(err)
	}
	hookRng := rand.New(rand.NewSource(seed * 977))
	crossLabel := 500_000_000
	type crossEvt struct {
		shard int
		id    EventID
	}
	var pending []crossEvt
	barriers := 0
	hooks := BarrierHooks{
		Barrier: func(end Time) error {
			barriers++
			if barriers > 200 {
				return nil // bound the cross-traffic so the run terminates
			}
			// Offsets on both sides of the next epoch boundary, so
			// cross-shard events land mid-epoch, on the first instant of
			// the next epoch, and several epochs out.
			offsets := []Duration{1, 3, Duration(epoch) / 2, Duration(epoch),
				Duration(epoch) + 1, 3*Duration(epoch) + 7}
			n := hookRng.Intn(4)
			for i := 0; i < n; i++ {
				s := hookRng.Intn(shards)
				at := end.Add(offsets[hookRng.Intn(len(offsets))])
				l := crossLabel
				crossLabel++
				order := &logs[s]
				id := engs[s].SchedulePrio(at, int8(hookRng.Intn(3)), func(e *Engine) {
					*order = append(*order, l)
				})
				pending = append(pending, crossEvt{shard: s, id: id})
			}
			// Cross-shard cancel: stale IDs (already fired) are safe
			// no-ops, and whether an ID is stale is itself deterministic.
			if len(pending) > 2 && hookRng.Intn(3) == 0 {
				c := pending[hookRng.Intn(len(pending))]
				engs[c.shard].Cancel(c.id)
			}
			return nil
		},
	}
	if err := be.Run(context.Background(), hooks); err != nil {
		t.Fatalf("seed %d workers %d: %v", seed, workers, err)
	}
	steps := make([]uint64, shards)
	for i, e := range engs {
		steps[i] = e.Steps()
	}
	return logs, steps
}

// TestBarrierEquivalenceAcrossWorkers is the parallel extension of the
// scheduler-equivalence fuzz kernel: random per-shard workloads with
// cross-shard barrier traffic straddling epoch boundaries must produce
// bit-identical per-shard dispatch sequences at 1, 2 and 4 workers.
// Run under -race in CI, it is also the data-race gate for the worker
// pool's barrier memory ordering.
func TestBarrierEquivalenceAcrossWorkers(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		for _, epoch := range []Duration{1000, 50 * Microsecond, Millisecond} {
			refLogs, refSteps := barrierRun(t, seed, 4, 1, epoch)
			for _, workers := range []int{2, 4} {
				logs, steps := barrierRun(t, seed, 4, workers, epoch)
				for s := range logs {
					if len(logs[s]) != len(refLogs[s]) {
						t.Fatalf("seed %d epoch %v workers %d shard %d: %d dispatches, ref %d",
							seed, epoch, workers, s, len(logs[s]), len(refLogs[s]))
					}
					for i := range logs[s] {
						if logs[s][i] != refLogs[s][i] {
							t.Fatalf("seed %d epoch %v workers %d shard %d: order diverges at %d",
								seed, epoch, workers, s, i)
						}
					}
					if steps[s] != refSteps[s] {
						t.Fatalf("seed %d epoch %v workers %d shard %d: steps %d, ref %d",
							seed, epoch, workers, s, steps[s], refSteps[s])
					}
				}
			}
		}
	}
}

// TestBarrierPrepareAndNextInput: external inputs surfaced through
// NextInput keep the epoch loop alive across otherwise-empty stretches,
// and Prepare stages them into the right shard before the epoch runs.
func TestBarrierPrepareAndNextInput(t *testing.T) {
	type input struct {
		at    Time
		shard int
		label int
	}
	// Long silent gaps between inputs force the skip-ahead path.
	inputs := []input{
		{at: 10, shard: 0, label: 1},
		{at: 10, shard: 1, label: 2},
		{at: Time(3 * Millisecond), shard: 1, label: 3},
		{at: Time(90 * Millisecond), shard: 0, label: 4},
	}
	run := func(workers int) [][]int {
		engs := []*Engine{New(), New()}
		logs := make([][]int, 2)
		idx := 0
		hooks := BarrierHooks{
			NextInput: func() (Time, bool) {
				if idx >= len(inputs) {
					return 0, false
				}
				return inputs[idx].at, true
			},
			Prepare: func(end Time) error {
				for idx < len(inputs) && inputs[idx].at <= end {
					in := inputs[idx]
					idx++
					order := &logs[in.shard]
					engs[in.shard].SchedulePrio(in.at, 1, func(e *Engine) {
						*order = append(*order, in.label)
						if in.label == 2 {
							// Follow-up work several epochs out, so shard 1
							// stays non-empty across a silent input gap.
							e.After(2*Millisecond, func(e *Engine) {
								*order = append(*order, -2)
							})
						}
					})
				}
				return nil
			},
		}
		be, err := NewBarrierEngine(engs, 50*Microsecond, workers)
		if err != nil {
			t.Fatal(err)
		}
		if err := be.Run(context.Background(), hooks); err != nil {
			t.Fatal(err)
		}
		if idx != len(inputs) {
			t.Fatalf("workers %d: only %d of %d inputs delivered", workers, idx, len(inputs))
		}
		return logs
	}
	want := [][]int{{1, 4}, {2, -2, 3}}
	for _, workers := range []int{1, 2} {
		logs := run(workers)
		for s := range want {
			if len(logs[s]) != len(want[s]) {
				t.Fatalf("workers %d shard %d: got %v, want %v", workers, s, logs[s], want[s])
			}
			for i := range want[s] {
				if logs[s][i] != want[s][i] {
					t.Fatalf("workers %d shard %d: got %v, want %v", workers, s, logs[s], want[s])
				}
			}
		}
	}
}

// TestBarrierEngineValidation pins the constructor's loud errors and
// the worker clamp.
func TestBarrierEngineValidation(t *testing.T) {
	if _, err := NewBarrierEngine(nil, Microsecond, 1); err == nil {
		t.Error("no shards accepted")
	}
	if _, err := NewBarrierEngine([]*Engine{New()}, 0, 1); err == nil {
		t.Error("zero epoch accepted")
	}
	if _, err := NewBarrierEngine([]*Engine{New()}, -Microsecond, 1); err == nil {
		t.Error("negative epoch accepted")
	}
	if _, err := NewBarrierEngine([]*Engine{New()}, Microsecond, 0); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := NewBarrierEngine([]*Engine{New(), nil}, Microsecond, 1); err == nil {
		t.Error("nil shard accepted")
	}
	be, err := NewBarrierEngine([]*Engine{New(), New()}, Microsecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	if be.Workers() != 2 {
		t.Fatalf("workers not clamped to shard count: %d", be.Workers())
	}
}

// TestBarrierRunCancelled: a cancelled context aborts the epoch loop
// with the context's error on both the inline and pooled paths.
func TestBarrierRunCancelled(t *testing.T) {
	for _, workers := range []int{1, 2} {
		engs := []*Engine{New(), New()}
		for _, e := range engs {
			n := 0
			var tick Handler
			tick = func(e *Engine) {
				if n++; n < 1000 {
					e.After(10, tick)
				}
			}
			e.Schedule(0, tick)
		}
		be, err := NewBarrierEngine(engs, Microsecond, workers)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := be.Run(ctx, BarrierHooks{}); err != context.Canceled {
			t.Fatalf("workers %d: err = %v, want context.Canceled", workers, err)
		}
	}
}
