package dma

import (
	"math"
	"testing"
	"testing/quick"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

func TestFromRecord(t *testing.T) {
	r := trace.Record{Time: 100, Kind: trace.DMAWrite, Source: trace.SrcDisk,
		Bus: 2, Pages: 4, Page: 77}
	x := FromRecord(9, r)
	if x.ID != 9 || x.Arrival != 100 || x.Bus != 2 || x.Pages != 4 || x.Page != 77 {
		t.Fatalf("FromRecord: %+v", x)
	}
	if x.Bytes(8192) != 4*8192 {
		t.Fatalf("Bytes = %d", x.Bytes(8192))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-DMA record accepted")
		}
	}()
	FromRecord(1, trace.Record{Kind: trace.ProcRead})
}

func TestSegmentsInterleaved(t *testing.T) {
	// Interleaved mapping puts consecutive pages on different chips:
	// every page is its own segment.
	tr := Transfer{ID: 1, Page: 10, Pages: 4}
	segs := tr.Segments(memsys.InterleavedMapper{Chips: 32})
	if len(segs) != 4 {
		t.Fatalf("got %d segments", len(segs))
	}
	for i, s := range segs {
		if s.Pages != 1 || s.Page != memsys.PageID(10+i) || s.Chip != (10+i)%32 {
			t.Fatalf("segment %d: %+v", i, s)
		}
	}
}

func TestSegmentsSequential(t *testing.T) {
	// Sequential mapping keeps a within-chip run together.
	tr := Transfer{ID: 1, Page: 0, Pages: 6}
	segs := tr.Segments(memsys.SequentialMapper{PagesPerChip: 4})
	if len(segs) != 2 {
		t.Fatalf("got %d segments: %+v", len(segs), segs)
	}
	if segs[0] != (Segment{Chip: 0, Page: 0, Pages: 4}) {
		t.Fatalf("first segment: %+v", segs[0])
	}
	if segs[1] != (Segment{Chip: 1, Page: 4, Pages: 2}) {
		t.Fatalf("second segment: %+v", segs[1])
	}
}

func TestSegmentsSingle(t *testing.T) {
	tr := Transfer{ID: 1, Page: 3, Pages: 1}
	segs := tr.Segments(memsys.InterleavedMapper{Chips: 8})
	if len(segs) != 1 || segs[0].Chip != 3 {
		t.Fatalf("%+v", segs)
	}
}

// Property: segments partition the transfer exactly and each segment is
// chip-homogeneous.
func TestQuickSegmentsPartition(t *testing.T) {
	f := func(page16 uint16, pages8, chips8 uint8) bool {
		chips := 1 + int(chips8)%32
		tr := Transfer{Page: memsys.PageID(page16), Pages: 1 + int(pages8)%20}
		m := memsys.InterleavedMapper{Chips: chips}
		segs := tr.Segments(m)
		next := tr.Page
		total := 0
		for _, s := range segs {
			if s.Page != next || s.Pages <= 0 {
				return false
			}
			for i := 0; i < s.Pages; i++ {
				if m.ChipOf(s.Page+memsys.PageID(i)) != s.Chip {
					return false
				}
			}
			next += memsys.PageID(s.Pages)
			total += s.Pages
		}
		return total == tr.Pages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

const (
	beat  = 7500 * sim.Picosecond // PCI-X beat (12 memory cycles)
	serve = 2500 * sim.Picosecond // request service (4 memory cycles)
)

func TestExactScheduleFig2a(t *testing.T) {
	// One stream: the chip is busy 4 of every 12 cycles -> uf = 1/3
	// (Figure 2a: "two-thirds of the active memory energy are wasted").
	sched := ExactSchedule(0, 1, 64, beat, serve)
	uf := UtilizationOf(sched)
	// The last request has no trailing idle gap, so uf is slightly
	// above 1/3 for finite streams.
	want := float64(64*serve) / float64(63*beat+serve)
	if math.Abs(uf-want) > 1e-9 {
		t.Fatalf("uf = %g, want %g", uf, want)
	}
	if uf < 0.33 || uf > 0.35 {
		t.Fatalf("uf = %g, want ~1/3", uf)
	}
	// Gaps between consecutive requests are exactly 8 cycles idle.
	first := sched[0][0]
	second := sched[0][1]
	if second.Arrive.Sub(first.Done) != beat-serve {
		t.Fatalf("idle gap = %v, want %v", second.Arrive.Sub(first.Done), beat-serve)
	}
}

func TestExactScheduleFig3Lockstep(t *testing.T) {
	// Three streams from three buses exactly saturate the chip: no
	// idle cycles, uf = 1.
	sched := ExactSchedule(0, 3, 64, beat, serve)
	if uf := UtilizationOf(sched); math.Abs(uf-1.0) > 1e-9 {
		t.Fatalf("uf = %g, want 1.0", uf)
	}
	// Lockstep: within each beat the three requests serve back to back.
	for r := 0; r < 64; r++ {
		for s := 0; s < 3; s++ {
			ev := sched[s][r]
			wantStart := sim.Time(sim.Duration(r)*beat + sim.Duration(s)*serve)
			if ev.Start != wantStart {
				t.Fatalf("stream %d req %d starts at %v, want %v", s, r, ev.Start, wantStart)
			}
		}
	}
}

func TestExactScheduleTwoStreams(t *testing.T) {
	// Two streams fill 8 of 12 cycles: uf -> 2/3.
	sched := ExactSchedule(0, 2, 128, beat, serve)
	uf := UtilizationOf(sched)
	if uf < 0.66 || uf > 0.68 {
		t.Fatalf("uf = %g, want ~2/3", uf)
	}
}

func TestExactScheduleOverload(t *testing.T) {
	// Five streams exceed chip rate: requests queue, chip 100% busy,
	// and completions slip past their beats.
	sched := ExactSchedule(0, 5, 16, beat, serve)
	if uf := UtilizationOf(sched); math.Abs(uf-1.0) > 1e-9 {
		t.Fatalf("uf = %g, want 1.0", uf)
	}
	last := sched[4][15]
	if last.Start == last.Arrive {
		t.Fatal("overloaded chip should delay requests")
	}
}

func TestExactSchedulePanics(t *testing.T) {
	for _, f := range []func(){
		func() { ExactSchedule(0, 0, 1, beat, serve) },
		func() { ExactSchedule(0, 1, 0, beat, serve) },
		func() { ExactSchedule(0, 1, 1, 0, serve) },
		func() { ExactSchedule(0, 1, 1, beat, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestUtilizationOfEmpty(t *testing.T) {
	if UtilizationOf(nil) != 0 {
		t.Fatal("empty schedule should have uf 0")
	}
}

// Property: k streams (k <= 3) produce uf ~= k/3 for long streams — the
// fluid model's utilization formula matches the exact schedule.
func TestQuickFluidAgreement(t *testing.T) {
	f := func(k8 uint8) bool {
		k := 1 + int(k8)%3
		sched := ExactSchedule(0, k, 512, beat, serve)
		uf := UtilizationOf(sched)
		fluid := float64(k) * float64(serve) / float64(beat)
		return math.Abs(uf-fluid) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
