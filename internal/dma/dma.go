// Package dma models DMA transfers and their decomposition into
// DMA-memory requests.
//
// A transfer moves whole pages between a device (disk or NIC) and main
// memory over one I/O bus. The bus emits one 8-byte DMA-memory request
// per beat; the chip serves each request in pageBytes/chipRate time and
// then idles until the next beat — the bandwidth-mismatch waste of
// Figure 2(a). The simulator core treats flowing transfers as fluid
// streams; this package supplies the transfer/segment bookkeeping and
// an exact request-level schedule used by the timeline tool and by
// cross-validation tests of the fluid model.
package dma

import (
	"fmt"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// Transfer is one DMA operation from a trace record.
type Transfer struct {
	ID      int64
	Arrival sim.Time
	Kind    trace.Kind
	Source  trace.Source
	Bus     int
	Page    memsys.PageID
	Pages   int
}

// FromRecord builds a Transfer from a DMA trace record.
func FromRecord(id int64, r trace.Record) Transfer {
	if !r.Kind.IsDMA() {
		panic(fmt.Sprintf("dma: record %v is not a DMA", r.Kind))
	}
	return Transfer{
		ID:      id,
		Arrival: r.Time,
		Kind:    r.Kind,
		Source:  r.Source,
		Bus:     int(r.Bus),
		Page:    r.Page,
		Pages:   int(r.Pages),
	}
}

// Bytes returns the payload size.
func (t Transfer) Bytes(pageBytes int) int64 {
	return int64(t.Pages) * int64(pageBytes)
}

// Segment is a maximal run of consecutive pages of one transfer that
// live on the same chip under the current layout. A transfer crosses
// its segments in order; each segment is the unit the memory
// controller gates and serves.
type Segment struct {
	Chip  int
	Page  memsys.PageID // first page of the run
	Pages int
}

// Segments splits a transfer by chip under the given mapper.
func (t Transfer) Segments(m memsys.Mapper) []Segment {
	if t.Pages <= 0 {
		panic(fmt.Sprintf("dma: transfer %d has %d pages", t.ID, t.Pages))
	}
	segs := make([]Segment, 0, t.Pages)
	cur := Segment{Chip: m.ChipOf(t.Page), Page: t.Page, Pages: 1}
	for i := 1; i < t.Pages; i++ {
		p := t.Page + memsys.PageID(i)
		c := m.ChipOf(p)
		if c == cur.Chip {
			cur.Pages++
			continue
		}
		segs = append(segs, cur)
		cur = Segment{Chip: c, Page: p, Pages: 1}
	}
	return append(segs, cur)
}

// RequestEvent is one DMA-memory request of the exact schedule: the
// beat at which it reaches the chip and the span during which the chip
// serves it.
type RequestEvent struct {
	Arrive sim.Time
	Start  sim.Time // == Arrive once the chip is caught up
	Done   sim.Time
}

// ExactSchedule computes the request-level timeline of n interleaved
// streams that all start at time start and target one chip, each
// delivering one reqBytes request per beatGap. The chip serves each
// request in serve time, FIFO across streams. It returns one slice of
// events per stream and is used to validate the fluid model and to
// draw Figures 2(a) and 3.
func ExactSchedule(start sim.Time, streams int, reqsPerStream int,
	beatGap, serve sim.Duration) [][]RequestEvent {
	if streams <= 0 || reqsPerStream <= 0 {
		panic(fmt.Sprintf("dma: ExactSchedule(%d streams, %d reqs)", streams, reqsPerStream))
	}
	if beatGap <= 0 || serve <= 0 {
		panic(fmt.Sprintf("dma: ExactSchedule gap %v serve %v", beatGap, serve))
	}
	out := make([][]RequestEvent, streams)
	for s := range out {
		out[s] = make([]RequestEvent, reqsPerStream)
	}
	chipFree := start
	// Requests arrive in beat order; streams are offset by their index
	// within a beat (bus arbitration order), which produces exactly the
	// lockstep interleaving of Figure 3.
	for r := 0; r < reqsPerStream; r++ {
		beat := start.Add(sim.Duration(r) * beatGap)
		for s := 0; s < streams; s++ {
			arrive := beat
			st := arrive
			if chipFree > st {
				st = chipFree
			}
			done := st.Add(serve)
			out[s][r] = RequestEvent{Arrive: arrive, Start: st, Done: done}
			chipFree = done
		}
	}
	return out
}

// UtilizationOf computes the utilization factor of an exact schedule:
// the fraction of the busy envelope (first arrival to last completion)
// during which the chip is serving.
func UtilizationOf(sched [][]RequestEvent) float64 {
	var first, last sim.Time
	var busy sim.Duration
	set := false
	for _, stream := range sched {
		for _, ev := range stream {
			if !set || ev.Arrive < first {
				first = ev.Arrive
				set = true
			}
			if ev.Done > last {
				last = ev.Done
			}
			busy += ev.Done.Sub(ev.Start)
		}
	}
	if !set || last == first {
		return 0
	}
	return float64(busy) / float64(last.Sub(first))
}
