package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimingsConcurrentAdd(t *testing.T) {
	var tm Timings // zero value ready to use
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tm.Add("job", time.Millisecond)
		}()
	}
	wg.Wait()
	if tm.Count() != n {
		t.Fatalf("Count = %d, want %d", tm.Count(), n)
	}
	if tm.TotalWork() != n*time.Millisecond {
		t.Fatalf("TotalWork = %v", tm.TotalWork())
	}
}

func TestTimingsJobsSorted(t *testing.T) {
	var tm Timings
	tm.Add("c", 3*time.Millisecond)
	tm.Add("a", time.Millisecond)
	tm.Add("b", 2*time.Millisecond)
	jobs := tm.Jobs()
	if len(jobs) != 3 || jobs[0].Label != "a" || jobs[1].Label != "b" || jobs[2].Label != "c" {
		t.Fatalf("jobs not sorted by label: %+v", jobs)
	}
	// Jobs returns a copy: mutating it must not affect the accumulator.
	jobs[0].Wall = time.Hour
	if tm.TotalWork() != 6*time.Millisecond {
		t.Fatal("Jobs did not copy")
	}
}

func TestTimingsMerge(t *testing.T) {
	// Two worker processes report overlapping job sets: the shared
	// baseline must appear once (larger wall kept), disjoint jobs must
	// all survive, and the merged state must not depend on which
	// worker reported first.
	worker1 := []JobTiming{
		{Label: "baseline/OLTP-St", Wall: 5 * time.Millisecond, Events: 100},
		{Label: "fig5/a", Wall: time.Millisecond, Events: 10},
	}
	worker2 := []JobTiming{
		{Label: "baseline/OLTP-St", Wall: 7 * time.Millisecond, Events: 100},
		{Label: "fig5/b", Wall: 2 * time.Millisecond, Events: 20},
	}
	for name, order := range map[string][][]JobTiming{
		"1then2": {worker1, worker2},
		"2then1": {worker2, worker1},
	} {
		var tm Timings
		for _, jobs := range order {
			tm.Merge(jobs)
		}
		jobs := tm.Jobs()
		if len(jobs) != 3 {
			t.Fatalf("%s: %d jobs after merge, want 3: %+v", name, len(jobs), jobs)
		}
		if jobs[0].Label != "baseline/OLTP-St" || jobs[0].Wall != 7*time.Millisecond {
			t.Errorf("%s: baseline entry = %+v, want max wall 7ms", name, jobs[0])
		}
		if jobs[1].Label != "fig5/a" || jobs[2].Label != "fig5/b" {
			t.Errorf("%s: disjoint jobs lost: %+v", name, jobs)
		}
		if ev := tm.TotalEvents(); ev != 130 {
			t.Errorf("%s: TotalEvents = %d, want 130 (baseline counted once)", name, ev)
		}
	}
}

func TestTimingsMergeIntoExisting(t *testing.T) {
	// Merging into an accumulator that already has local entries
	// dedupes against those too.
	var tm Timings
	tm.AddSim("baseline/OLTP-St", 3*time.Millisecond, 100)
	tm.Add("local", time.Millisecond)
	tm.Merge([]JobTiming{
		{Label: "baseline/OLTP-St", Wall: 2 * time.Millisecond, Events: 100},
		{Label: "remote", Wall: 4 * time.Millisecond},
	})
	jobs := tm.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("%d jobs, want 3: %+v", len(jobs), jobs)
	}
	if jobs[0].Wall != 3*time.Millisecond {
		t.Errorf("baseline = %+v, want local 3ms kept (incoming smaller)", jobs[0])
	}
}

func TestTimingsSpeedup(t *testing.T) {
	var tm Timings
	tm.Add("a", 4*time.Second)
	tm.Add("b", 4*time.Second)
	if got := tm.Speedup(2 * time.Second); got != 4.0 {
		t.Fatalf("Speedup = %g, want 4", got)
	}
	if got := tm.Speedup(0); got != 0 {
		t.Fatalf("Speedup(0) = %g, want 0", got)
	}
}

func TestTimingsSummary(t *testing.T) {
	var tm Timings
	tm.Add("fig5/OLTP-St/dma-ta/cp=0.10", 10*time.Millisecond)
	tm.Add("fast", time.Millisecond)
	out := tm.Summary(11 * time.Millisecond)
	if !strings.Contains(out, "2 jobs") {
		t.Errorf("summary lacks job count:\n%s", out)
	}
	if !strings.Contains(out, "fig5/OLTP-St/dma-ta/cp=0.10") {
		t.Errorf("summary lacks slowest job:\n%s", out)
	}
}
