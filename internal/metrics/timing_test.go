package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimingsConcurrentAdd(t *testing.T) {
	var tm Timings // zero value ready to use
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tm.Add("job", time.Millisecond)
		}()
	}
	wg.Wait()
	if tm.Count() != n {
		t.Fatalf("Count = %d, want %d", tm.Count(), n)
	}
	if tm.TotalWork() != n*time.Millisecond {
		t.Fatalf("TotalWork = %v", tm.TotalWork())
	}
}

func TestTimingsJobsSorted(t *testing.T) {
	var tm Timings
	tm.Add("c", 3*time.Millisecond)
	tm.Add("a", time.Millisecond)
	tm.Add("b", 2*time.Millisecond)
	jobs := tm.Jobs()
	if len(jobs) != 3 || jobs[0].Label != "a" || jobs[1].Label != "b" || jobs[2].Label != "c" {
		t.Fatalf("jobs not sorted by label: %+v", jobs)
	}
	// Jobs returns a copy: mutating it must not affect the accumulator.
	jobs[0].Wall = time.Hour
	if tm.TotalWork() != 6*time.Millisecond {
		t.Fatal("Jobs did not copy")
	}
}

func TestTimingsSpeedup(t *testing.T) {
	var tm Timings
	tm.Add("a", 4*time.Second)
	tm.Add("b", 4*time.Second)
	if got := tm.Speedup(2 * time.Second); got != 4.0 {
		t.Fatalf("Speedup = %g, want 4", got)
	}
	if got := tm.Speedup(0); got != 0 {
		t.Fatalf("Speedup(0) = %g, want 0", got)
	}
}

func TestTimingsSummary(t *testing.T) {
	var tm Timings
	tm.Add("fig5/OLTP-St/dma-ta/cp=0.10", 10*time.Millisecond)
	tm.Add("fast", time.Millisecond)
	out := tm.Summary(11 * time.Millisecond)
	if !strings.Contains(out, "2 jobs") {
		t.Errorf("summary lacks job count:\n%s", out)
	}
	if !strings.Contains(out, "fig5/OLTP-St/dma-ta/cp=0.10") {
		t.Errorf("summary lacks slowest job:\n%s", out)
	}
}
