package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a named set of monotonic event counters — the service
// daemon's observability vocabulary (jobs submitted, cache hits,
// simulations run, ...). The zero value is ready to use and all
// methods are safe for concurrent use. Counters are observability
// only: nothing in the simulator reads them back.
type Counters struct {
	mu sync.Mutex
	m  map[string]uint64
}

// Add increments the named counter by n.
func (c *Counters) Add(name string, n uint64) {
	c.mu.Lock()
	if c.m == nil {
		c.m = map[string]uint64{}
	}
	c.m[name] += n
	c.mu.Unlock()
}

// Get returns the named counter's current value (0 if never added).
func (c *Counters) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of every counter.
func (c *Counters) Snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Render writes the counters in the Prometheus text exposition style,
// one "prefix_name value" line per counter in sorted name order, so
// the output is stable and diffable.
func (c *Counters) Render(prefix string) string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%s%s %d\n", prefix, k, snap[k])
	}
	return b.String()
}
