package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// JobTiming is the measured wall-clock execution of one simulation
// job. Wall is host time (time.Duration, nanoseconds), not simulated
// time: it measures how long the job occupied a worker, so parallel
// speedup is observable.
type JobTiming struct {
	// Label identifies the job ("fig5/OLTP-St/dma-ta/cp=0.10").
	Label string
	// Wall is the job's wall-clock execution time.
	Wall time.Duration
	// Events is the number of simulation events the job dispatched
	// (zero when the job did not report one).
	Events uint64
}

// Timings accumulates per-job wall-clock measurements from
// concurrently executing workers. The zero value is ready to use; Add
// is safe to call from multiple goroutines. Timings are observability
// only — they never feed back into simulation results, which stay
// bit-identical at any parallelism.
type Timings struct {
	mu     sync.Mutex
	jobs   []JobTiming
	allocs uint64 // process-wide allocation count over the run, see SetAllocs
}

// Add records one finished job. It is safe for concurrent use.
func (t *Timings) Add(label string, wall time.Duration) {
	t.AddSim(label, wall, 0)
}

// AddSim records one finished job together with the number of
// simulation events it dispatched. It is safe for concurrent use.
func (t *Timings) AddSim(label string, wall time.Duration, events uint64) {
	t.mu.Lock()
	t.jobs = append(t.jobs, JobTiming{Label: label, Wall: wall, Events: events})
	t.mu.Unlock()
}

// SetAllocs records the process-wide heap allocation count observed
// over the run (a runtime.MemStats.Mallocs delta). Zero (the initial
// state) means "not measured" and suppresses allocs/event reporting.
func (t *Timings) SetAllocs(n uint64) {
	t.mu.Lock()
	t.allocs = n
	t.mu.Unlock()
}

// TotalEvents returns the sum of events over all recorded jobs.
func (t *Timings) TotalEvents() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum uint64
	for _, j := range t.jobs {
		sum += j.Events
	}
	return sum
}

// AllocsPerEvent returns the recorded allocation count divided by the
// total event count, or 0 when either was not measured.
func (t *Timings) AllocsPerEvent() float64 {
	ev := t.TotalEvents()
	t.mu.Lock()
	allocs := t.allocs
	t.mu.Unlock()
	if ev == 0 || allocs == 0 {
		return 0
	}
	return float64(allocs) / float64(ev)
}

// Merge folds job timings recorded by another process into t,
// deduplicating by label: a label already present keeps the larger
// wall time instead of gaining a second entry. Shard workers each
// record process-local jobs (including per-workload baselines that
// several shards may compute independently), so a coordinator merging
// worker reports would otherwise double-count those shared jobs.
// Keeping max(wall) is commutative and associative, so the merged
// state is independent of worker completion order.
func (t *Timings) Merge(jobs []JobTiming) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := make(map[string]int, len(t.jobs))
	for i, j := range t.jobs {
		idx[j.Label] = i
	}
	for _, j := range jobs {
		if i, ok := idx[j.Label]; ok {
			if j.Wall > t.jobs[i].Wall {
				t.jobs[i] = j
			}
			continue
		}
		idx[j.Label] = len(t.jobs)
		t.jobs = append(t.jobs, j)
	}
}

// Count returns the number of recorded jobs.
func (t *Timings) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}

// Jobs returns a copy of the recorded jobs sorted by label (workers
// finish in nondeterministic order; sorting makes renderings stable).
func (t *Timings) Jobs() []JobTiming {
	t.mu.Lock()
	out := append([]JobTiming(nil), t.jobs...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Wall < out[j].Wall
	})
	return out
}

// TotalWork returns the sum of all job wall times: the time the same
// jobs would occupy a single worker back to back.
func (t *Timings) TotalWork() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum time.Duration
	for _, j := range t.jobs {
		sum += j.Wall
	}
	return sum
}

// Speedup returns TotalWork divided by the observed elapsed wall time:
// ~1 on one worker, approaching the worker count when independent jobs
// fill the pool. Zero elapsed returns 0. When workers outnumber CPU
// cores, timesharing inflates each job's wall time (preempted time
// still counts), so Speedup overstates the real gain — compare elapsed
// time against a -parallel 1 run for the honest number.
func (t *Timings) Speedup(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(t.TotalWork()) / float64(elapsed)
}

// Summary renders a one-paragraph timing report for the given elapsed
// wall time: job count, total work, elapsed, speedup, simulation
// throughput (events/sec, when jobs reported event counts; allocs per
// event when SetAllocs was called), and the slowest jobs.
func (t *Timings) Summary(elapsed time.Duration) string {
	jobs := t.Jobs()
	var b strings.Builder
	fmt.Fprintf(&b, "timing: %d jobs, %v total work in %v wall (speedup %.2fx)\n",
		len(jobs), t.TotalWork().Round(time.Millisecond),
		elapsed.Round(time.Millisecond), t.Speedup(elapsed))
	if ev := t.TotalEvents(); ev > 0 {
		fmt.Fprintf(&b, "  %d events", ev)
		if work := t.TotalWork(); work > 0 {
			fmt.Fprintf(&b, ", %.0f events/sec per worker", float64(ev)/work.Seconds())
		}
		if ape := t.AllocsPerEvent(); ape > 0 {
			fmt.Fprintf(&b, ", %.2f allocs/event", ape)
		}
		b.WriteString("\n")
	}
	slowest := append([]JobTiming(nil), jobs...)
	sort.Slice(slowest, func(i, j int) bool { return slowest[i].Wall > slowest[j].Wall })
	if len(slowest) > 5 {
		slowest = slowest[:5]
	}
	for _, j := range slowest {
		fmt.Fprintf(&b, "  %-40s %v\n", j.Label, j.Wall.Round(time.Millisecond))
	}
	return b.String()
}
