package metrics

import (
	"sync"
	"testing"
)

func TestCountersRenderStable(t *testing.T) {
	var c Counters
	c.Add("runs", 2)
	c.Add("cache_hits", 1)
	c.Add("runs", 1)
	if got := c.Get("runs"); got != 3 {
		t.Errorf("Get(runs) = %d, want 3", got)
	}
	if got := c.Get("never"); got != 0 {
		t.Errorf("Get(never) = %d, want 0", got)
	}
	want := "dmamem_cache_hits 1\ndmamem_runs 3\n"
	if got := c.Render("dmamem_"); got != want {
		t.Errorf("Render = %q, want %q (sorted, stable)", got, want)
	}
	snap := c.Snapshot()
	snap["runs"] = 99
	if c.Get("runs") != 3 {
		t.Error("Snapshot aliases the live map")
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
}
