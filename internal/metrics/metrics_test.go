package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

func TestReportTotalsAndSavings(t *testing.T) {
	base := &Report{Scheme: "baseline", SimulatedTime: sim.Second}
	base.Energy[energy.CatServing] = 0.2
	base.Energy[energy.CatIdleDMA] = 0.6
	base.Energy[energy.CatLowPower] = 0.2

	ta := &Report{Scheme: "dma-ta", SimulatedTime: sim.Second}
	ta.Energy[energy.CatServing] = 0.2
	ta.Energy[energy.CatIdleDMA] = 0.2
	ta.Energy[energy.CatLowPower] = 0.2

	if got := base.TotalEnergy(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("total = %g", got)
	}
	if got := ta.Savings(base); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("savings = %g, want 0.4", got)
	}
	if got := base.MeanPower(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("mean power = %g", got)
	}
	if base.String() == "" {
		t.Fatal("empty string")
	}
	empty := &Report{}
	if empty.Savings(empty) != 0 || empty.MeanPower() != 0 {
		t.Fatal("zero-energy edge cases")
	}
}

func TestDegradation(t *testing.T) {
	ref := &Report{MeanServiceTime: 100}
	r := &Report{MeanServiceTime: 110}
	if got := r.Degradation(ref); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("degradation = %g", got)
	}
	if (&Report{}).Degradation(&Report{}) != 0 {
		t.Fatal("zero reference should give 0")
	}
}

func TestClientDegradation(t *testing.T) {
	cal := Calibration{
		MeanClientResponse:  sim.Duration(1 * sim.Millisecond),
		TransfersPerRequest: 2,
	}
	ref := &Report{MeanServiceTime: sim.Duration(10 * sim.Microsecond)}
	r := &Report{MeanServiceTime: sim.Duration(60 * sim.Microsecond)}
	// Added 50 us per transfer, 2 transfers per request, over 1 ms
	// response: 10%.
	if got := r.ClientDegradation(ref, cal); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("client degradation = %g", got)
	}
	// Faster than reference clamps to zero.
	if got := ref.ClientDegradation(r, cal); got != 0 {
		t.Fatalf("negative degradation not clamped: %g", got)
	}
}

func validCal() Calibration {
	return Calibration{
		MeanClientResponse:      sim.Duration(1 * sim.Millisecond),
		TransfersPerRequest:     1.5,
		MeanRequestsPerTransfer: 2867,
		T:                       7500 * sim.Picosecond,
	}
}

func TestMuTransform(t *testing.T) {
	cal := validCal()
	mu, err := cal.Mu(0.10)
	if err != nil {
		t.Fatal(err)
	}
	// budget = 0.1*1ms/1.5 = 66.7us; per request = 23.3ns; mu = 3.1.
	want := (0.1 * 1e-3 / 1.5) / 2867 / 7.5e-9
	if math.Abs(mu-want)/want > 1e-9 {
		t.Fatalf("mu = %g, want %g", mu, want)
	}
	if mu < 1 || mu > 10 {
		t.Fatalf("mu = %g outside plausible range for data-server traces", mu)
	}
	// Zero CP-Limit means zero slack.
	if mu0, _ := cal.Mu(0); mu0 != 0 {
		t.Fatalf("mu(0) = %g", mu0)
	}
	if _, err := cal.Mu(-0.1); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestCalibrationValidate(t *testing.T) {
	bad := validCal()
	bad.MeanClientResponse = 0
	if bad.Validate() == nil {
		t.Error("zero response accepted")
	}
	bad = validCal()
	bad.TransfersPerRequest = 0
	if bad.Validate() == nil {
		t.Error("zero transfers accepted")
	}
	bad = validCal()
	bad.MeanRequestsPerTransfer = -1
	if bad.Validate() == nil {
		t.Error("negative requests accepted")
	}
	bad = validCal()
	bad.T = 0
	if bad.Validate() == nil {
		t.Error("zero T accepted")
	}
}

// Property: mu is linear in the CP-Limit.
func TestQuickMuLinear(t *testing.T) {
	cal := validCal()
	f := func(limit8 uint8) bool {
		l := float64(limit8) / 255.0
		m1, err1 := cal.Mu(l)
		m2, err2 := cal.Mu(2 * l)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(m2-2*m1) < 1e-9*(1+m2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationStats(t *testing.T) {
	var s DurationStats
	if s.Mean() != 0 || s.Max() != 0 || s.Count() != 0 || s.Percentile(0.5) != 0 {
		t.Fatal("empty stats not zero")
	}
	for _, v := range []sim.Duration{50, 10, 40, 20, 30} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 30 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 50 {
		t.Fatalf("max = %v", s.Max())
	}
	if got := s.Percentile(0.5); got != 30 {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(1.0); got != 50 {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(0.2); got != 10 {
		t.Fatalf("p20 = %v", got)
	}
}

func TestDurationStatsPanics(t *testing.T) {
	var s DurationStats
	s.Add(1)
	for _, f := range []func(){
		func() { s.Add(-1) },
		func() { s.Percentile(0) },
		func() { s.Percentile(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: mean lies between min and max; percentiles are monotone.
func TestQuickDurationStats(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s DurationStats
		min := sim.Duration(math.MaxInt64)
		for _, v := range raw {
			d := sim.Duration(v)
			s.Add(d)
			if d < min {
				min = d
			}
		}
		m := s.Mean()
		if m < min || m > s.Max() {
			return false
		}
		return s.Percentile(0.25) <= s.Percentile(0.5) &&
			s.Percentile(0.5) <= s.Percentile(0.95) &&
			s.Percentile(0.95) <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
