// Package metrics defines the measurement vocabulary of the
// evaluation: energy breakdowns and savings, the utilization factor of
// Section 5.3, response-time statistics, and the off-line CP-Limit ->
// mu transform of Section 5.1.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

// Report is the outcome of one simulation run.
type Report struct {
	// Scheme that produced the numbers ("baseline", "dma-ta",
	// "dma-ta-pl", ...).
	Scheme string

	// Energy is the system-wide breakdown in joules.
	Energy energy.Breakdown

	// Channels is the number of memory channels the run modeled (1 for
	// the legacy single-channel RDRAM configuration).
	Channels int
	// ChannelEnergy is the per-channel slice of Energy: entry c sums
	// the chip meters of channel c's chips. System-level costs that are
	// not attributable to one channel (PL migration energy) appear only
	// in Energy, so summing ChannelEnergy recovers Energy minus
	// Energy[CatMigration]'s layout contribution.
	ChannelEnergy []energy.Breakdown

	// UtilizationFactor is uf = T_useful / T_tot over all chips:
	// T_tot is active time with >=1 DMA transfer in progress, T_useful
	// the portion actually serving DMA data.
	UtilizationFactor float64

	// Transfer-level performance. All durations are simulated time in
	// integer picoseconds (sim.Duration).
	Transfers       int64        // DMA transfers completed
	MeanServiceTime sim.Duration // mean transfer residency (arrival -> completion)
	P95ServiceTime  sim.Duration // 95th-percentile transfer residency
	MaxServiceTime  sim.Duration // worst-case transfer residency
	MeanGatherDelay sim.Duration // mean DMA-TA gating delay per transfer

	// Power-management activity.
	Wakes      int64 // chip transitions out of a low-power state
	Migrations int64 // PL page migrations performed
	// StateNames are the power states of the technology model the run
	// used, in depth order (for the RDRAM default: active, standby,
	// nap, powerdown). They key Residency and StateEnergy.
	StateNames []string
	// Residency is the chip-time spent resident in each power state,
	// indexed like StateNames, summed over chips.
	Residency []sim.Duration
	// StateEnergy is the resident energy per power state in joules,
	// indexed like StateNames. Transition and migration energy is not
	// attributable to residence in one state, so
	// sum(StateEnergy) + Energy[transition] + Energy[migration]
	// equals TotalEnergy (up to float summation order).
	StateEnergy []float64

	// SimulatedTime covered by the run.
	SimulatedTime sim.Duration

	// Events dispatched by the simulation engine during the run, for
	// events/sec throughput reporting.
	Events uint64

	// ClampedProcSpans counts accounting spans whose pending processor
	// work exceeded the span and spilled into the next one. A handful
	// per run is normal bursty-arrival behavior; a large count means
	// processor accesses arrive faster than the chip can serve them
	// and service-time numbers should be read with care.
	ClampedProcSpans int64
}

// TotalEnergy returns total joules.
func (r *Report) TotalEnergy() float64 { return r.Energy.Total() }

// MeanPower returns average system power in watts.
func (r *Report) MeanPower() float64 {
	if r.SimulatedTime <= 0 {
		return 0
	}
	return r.TotalEnergy() / r.SimulatedTime.Seconds()
}

// Savings returns the fractional energy saving of r relative to a
// baseline run: (base - r) / base. Positive means r consumes less.
func (r *Report) Savings(base *Report) float64 {
	b := base.TotalEnergy()
	if b == 0 {
		return 0
	}
	return (b - r.TotalEnergy()) / b
}

// Degradation returns the fractional increase of mean transfer service
// time relative to a reference run.
func (r *Report) Degradation(ref *Report) float64 {
	if ref.MeanServiceTime <= 0 {
		return 0
	}
	return float64(r.MeanServiceTime-ref.MeanServiceTime) / float64(ref.MeanServiceTime)
}

// ClientDegradation translates a transfer-level slowdown into the
// client-perceived response-time degradation CP-Limit bounds: the
// added transfer time, times the number of transfers on a client
// request's critical path, as a fraction of the client response time.
func (r *Report) ClientDegradation(ref *Report, cal Calibration) float64 {
	if cal.MeanClientResponse <= 0 {
		return 0
	}
	added := float64(r.MeanServiceTime - ref.MeanServiceTime)
	if added < 0 {
		added = 0
	}
	return added * cal.TransfersPerRequest / float64(cal.MeanClientResponse)
}

func (r *Report) String() string {
	return fmt.Sprintf("%s: %.4f J (%.1f mW), uf=%.3f, mean xfer=%v, wakes=%d",
		r.Scheme, r.TotalEnergy(), 1e3*r.MeanPower(), r.UtilizationFactor,
		r.MeanServiceTime, r.Wakes)
}

// Calibration carries the workload-level quantities of the off-line
// CP-Limit -> mu transform: how a bound on client-perceived response
// time degradation becomes the per-DMA-memory-request slack parameter
// mu that DMA-TA actually takes.
type Calibration struct {
	// MeanClientResponse of the workload (from the server model or an
	// estimate for synthetic traces).
	MeanClientResponse sim.Duration
	// TransfersPerRequest on a client request's critical path.
	TransfersPerRequest float64
	// MeanRequestsPerTransfer: DMA-memory requests per transfer
	// (transfer bytes / 8).
	MeanRequestsPerTransfer float64
	// T is the baseline service time of one DMA-memory request without
	// alignment or power management: one bus beat.
	T sim.Duration
	// SafetyFactor derates the analytic slack budget to cover delay
	// amplification that request-level accounting cannot see (bus
	// queueing behind released bursts, serialization behind wakes).
	// The paper derives mu by off-line measurement against the
	// client-perceived response time, which captures the same effects
	// empirically. Zero means 1 (no derating).
	SafetyFactor float64
}

// Validate reports a descriptive error for unusable calibrations.
func (c Calibration) Validate() error {
	switch {
	case c.MeanClientResponse <= 0:
		return fmt.Errorf("metrics: MeanClientResponse %v", c.MeanClientResponse)
	case c.TransfersPerRequest <= 0:
		return fmt.Errorf("metrics: TransfersPerRequest %g", c.TransfersPerRequest)
	case c.MeanRequestsPerTransfer <= 0:
		return fmt.Errorf("metrics: MeanRequestsPerTransfer %g", c.MeanRequestsPerTransfer)
	case c.T <= 0:
		return fmt.Errorf("metrics: T %v", c.T)
	}
	return nil
}

// Mu computes the per-request slack parameter for a client-perceived
// degradation limit: the total client budget cpLimit*R, spread over
// the transfers on the critical path and then over each transfer's
// DMA-memory requests, expressed as a multiple of T.
func (c Calibration) Mu(cpLimit float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if cpLimit < 0 {
		return 0, fmt.Errorf("metrics: negative CP-Limit %g", cpLimit)
	}
	sf := c.SafetyFactor
	if sf == 0 {
		sf = 1
	}
	if sf < 0 || sf > 1 {
		return 0, fmt.Errorf("metrics: SafetyFactor %g outside (0,1]", sf)
	}
	budget := sf * cpLimit * float64(c.MeanClientResponse) / c.TransfersPerRequest
	perReq := budget / c.MeanRequestsPerTransfer
	return perReq / float64(c.T), nil
}

// DurationStats summarizes a set of durations.
type DurationStats struct {
	n    int
	sum  sim.Duration
	vals []sim.Duration
}

// Add records one observation.
func (s *DurationStats) Add(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative duration %v", d))
	}
	s.n++
	s.sum += d
	s.vals = append(s.vals, d)
}

// Merge appends every observation of o, preserving o's insertion
// order. Merging partition-local stats in a fixed partition order
// yields deterministic aggregates: Mean and Sum are exact integer
// arithmetic, and Percentile/Max sort internally.
func (s *DurationStats) Merge(o *DurationStats) {
	s.n += o.n
	s.sum += o.sum
	s.vals = append(s.vals, o.vals...)
}

// Count returns the number of observations.
func (s *DurationStats) Count() int { return s.n }

// Mean returns the average, or 0 with no observations.
func (s *DurationStats) Mean() sim.Duration {
	if s.n == 0 {
		return 0
	}
	return sim.Duration(int64(s.sum) / int64(s.n))
}

// Percentile returns the p-quantile (0 < p <= 1) by nearest-rank.
func (s *DurationStats) Percentile(p float64) sim.Duration {
	if s.n == 0 {
		return 0
	}
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("metrics: percentile %g", p))
	}
	sorted := append([]sim.Duration(nil), s.vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p*float64(s.n))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Max returns the maximum observation.
func (s *DurationStats) Max() sim.Duration {
	var m sim.Duration
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	return m
}
