package disk

import (
	"testing"
	"testing/quick"

	"dmamem/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.RPM = 0
	if bad.Validate() == nil {
		t.Error("zero RPM accepted")
	}
	bad = DefaultConfig()
	bad.Cylinders = -1
	if bad.Validate() == nil {
		t.Error("negative cylinders accepted")
	}
	bad = DefaultConfig()
	bad.SeekBase = -1
	if bad.Validate() == nil {
		t.Error("negative seek accepted")
	}
}

func TestRotationPeriod(t *testing.T) {
	c := DefaultConfig()
	// 15000 RPM = 4 ms per revolution.
	if got := c.RotationPeriod(); got != 4*sim.Millisecond {
		t.Fatalf("rotation period = %v, want 4ms", got)
	}
}

func TestSeekCurve(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.SeekTimeFor(0) != 0 {
		t.Error("zero-distance seek should be free")
	}
	s1, s100, s10000 := d.SeekTimeFor(1), d.SeekTimeFor(100), d.SeekTimeFor(10000)
	if !(s1 < s100 && s100 < s10000) {
		t.Fatalf("seek times not increasing: %v %v %v", s1, s100, s10000)
	}
	if d.SeekTimeFor(-100) != s100 {
		t.Error("seek time should be symmetric in direction")
	}
	// Short seeks dominated by base + sqrt: a 1-cyl seek is still
	// hundreds of microseconds.
	if s1 < 400*sim.Microsecond {
		t.Fatalf("1-cyl seek = %v, below base", s1)
	}
}

func TestAccessTiming(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := d.Access(0, 0, 8192)
	if done <= 0 {
		t.Fatal("zero latency access")
	}
	// Latency must be at least the media transfer time and at most
	// seek max + full rotation + transfer.
	minXfer := sim.FromSeconds(8192.0 / 75e6)
	if sim.Duration(done) < minXfer {
		t.Fatalf("latency %v below transfer time %v", done, minXfer)
	}
	max := d.SeekTimeFor(65535) + 4*sim.Millisecond + minXfer
	if sim.Duration(done) > max {
		t.Fatalf("latency %v above worst case %v", done, max)
	}
	if d.Requests != 1 {
		t.Fatalf("requests = %d", d.Requests)
	}
}

func TestFIFOQueueing(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := d.Access(0, 0, 8192)
	// Second request issued at t=0 must wait for the first.
	second := d.Access(0, 1<<20, 8192)
	if second <= first {
		t.Fatalf("FIFO violated: first done %v, second done %v", first, second)
	}
	if d.QueueTime == 0 {
		t.Fatal("queueing time not recorded")
	}
	if d.FreeAt() != second {
		t.Fatalf("FreeAt = %v, want %v", d.FreeAt(), second)
	}
}

func TestSequentialFasterThanRandom(t *testing.T) {
	// Mean service time of sequential accesses should beat scattered
	// ones (no seeks, short rotation gaps).
	cfg := DefaultConfig()
	seq, _ := New(cfg)
	now := sim.Time(0)
	for i := 0; i < 64; i++ {
		now = seq.Access(now, int64(i)*8192, 8192)
	}
	rnd, _ := New(cfg)
	now = 0
	for i := 0; i < 64; i++ {
		offset := int64(i*7919%5000) * int64(cfg.SectorBytes) * int64(cfg.SectorsPerTrk) * 97
		now = rnd.Access(now, offset, 8192)
	}
	if seq.MeanServiceTime() >= rnd.MeanServiceTime() {
		t.Fatalf("sequential %v not faster than random %v",
			seq.MeanServiceTime(), rnd.MeanServiceTime())
	}
	if rnd.SeekTime == 0 {
		t.Fatal("random workload recorded no seek time")
	}
}

func TestAccessPanics(t *testing.T) {
	d, _ := New(DefaultConfig())
	for _, f := range []func(){
		func() { d.Access(0, -1, 10) },
		func() { d.Access(0, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestArrayStriping(t *testing.T) {
	a, err := NewArray(4, DefaultConfig(), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Disks()) != 4 {
		t.Fatalf("disks = %d", len(a.Disks()))
	}
	// A 256 KB request spans all four stripe units -> all four disks.
	a.Access(0, 0, 256<<10)
	busy := 0
	for _, d := range a.Disks() {
		if d.Requests > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("striped request touched %d disks, want 4", busy)
	}
}

func TestArraySmallRequestOneDisk(t *testing.T) {
	a, _ := NewArray(4, DefaultConfig(), 64<<10)
	a.Access(0, 0, 8192)
	busy := 0
	for _, d := range a.Disks() {
		busy += int(d.Requests)
	}
	if busy != 1 {
		t.Fatalf("8 KB request touched %d disks, want 1", busy)
	}
}

func TestArrayParallelismHelps(t *testing.T) {
	// Two simultaneous page reads on different stripes should overlap
	// on an array but serialize on one disk.
	single, _ := NewArray(1, DefaultConfig(), 64<<10)
	t1 := single.Access(0, 0, 8192)
	t1 = single.Access(0, 64<<10, 8192)

	par, _ := NewArray(2, DefaultConfig(), 64<<10)
	p1 := par.Access(0, 0, 8192)
	p2 := par.Access(0, 64<<10, 8192)
	last := p1
	if p2 > last {
		last = p2
	}
	if last >= t1 {
		t.Fatalf("array (%v) not faster than single disk (%v)", last, t1)
	}
}

func TestArrayErrors(t *testing.T) {
	if _, err := NewArray(0, DefaultConfig(), 1); err == nil {
		t.Error("zero disks accepted")
	}
	if _, err := NewArray(1, DefaultConfig(), 0); err == nil {
		t.Error("zero stripe accepted")
	}
	bad := DefaultConfig()
	bad.RPM = 0
	if _, err := NewArray(1, bad, 64<<10); err == nil {
		t.Error("bad config accepted")
	}
}

// Property: completion times are nondecreasing when requests are issued
// in time order to one disk (FIFO), and every access takes positive
// time.
func TestQuickFIFOMonotone(t *testing.T) {
	f := func(offsets []uint32) bool {
		d, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		now := sim.Time(0)
		var prevDone sim.Time
		for _, o := range offsets {
			done := d.Access(now, int64(o), 4096)
			if done <= now || done < prevDone {
				return false
			}
			prevDone = done
			now = now.Add(100 * sim.Microsecond)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: busy-time accounting decomposes exactly.
func TestQuickBusyDecomposition(t *testing.T) {
	f := func(offsets []uint32) bool {
		d, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		now := sim.Time(0)
		for _, o := range offsets {
			now = d.Access(now, int64(o), 4096)
		}
		return d.BusyTime == d.SeekTime+d.RotTime+d.XferTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
