// Package disk is a simplified disk-array timing model standing in for
// the DiskSim simulator the paper drives its storage-server trace
// collection with. It models per-disk seek time (affine + square-root
// curve), rotational latency derived from the platter position at
// request time, media transfer time, FIFO queueing, and striping across
// an array.
//
// Only timing matters here: the storage-server workload model uses the
// completion times to place disk-DMA records in the generated traces.
// Absolute disk latencies shift when miss-path transfers happen, which
// preserves the DMA arrival statistics that the memory energy results
// depend on.
package disk

import (
	"fmt"
	"math"

	"dmamem/internal/sim"
)

// Config describes one disk. The defaults resemble a 15k RPM SCSI
// server disk of the paper's era (Seagate Cheetah class).
type Config struct {
	Cylinders     int
	RPM           float64
	SeekBase      sim.Duration // single-track seek overhead
	SeekPerCyl    sim.Duration // linear seek coefficient
	SeekSqrt      sim.Duration // sqrt seek coefficient
	TransferRate  float64      // media rate, bytes/s
	SectorBytes   int
	SectorsPerTrk int
}

// DefaultConfig returns a 15k RPM, 73 GB-class disk.
func DefaultConfig() Config {
	return Config{
		Cylinders:     65535,
		RPM:           15000,
		SeekBase:      400 * sim.Microsecond,
		SeekPerCyl:    8 * sim.Nanosecond,
		SeekSqrt:      60 * sim.Microsecond,
		TransferRate:  75e6,
		SectorBytes:   512,
		SectorsPerTrk: 600,
	}
}

// Validate reports a descriptive error for nonsensical configs.
func (c Config) Validate() error {
	switch {
	case c.Cylinders <= 0:
		return fmt.Errorf("disk: Cylinders = %d", c.Cylinders)
	case c.RPM <= 0:
		return fmt.Errorf("disk: RPM = %g", c.RPM)
	case c.TransferRate <= 0:
		return fmt.Errorf("disk: TransferRate = %g", c.TransferRate)
	case c.SectorBytes <= 0:
		return fmt.Errorf("disk: SectorBytes = %d", c.SectorBytes)
	case c.SectorsPerTrk <= 0:
		return fmt.Errorf("disk: SectorsPerTrk = %d", c.SectorsPerTrk)
	case c.SeekBase < 0 || c.SeekPerCyl < 0 || c.SeekSqrt < 0:
		return fmt.Errorf("disk: negative seek coefficient")
	}
	return nil
}

// RotationPeriod returns one full revolution.
func (c Config) RotationPeriod() sim.Duration {
	return sim.FromSeconds(60.0 / c.RPM)
}

// Disk models one spindle with a FIFO queue.
type Disk struct {
	cfg     Config
	headCyl int
	freeAt  sim.Time

	// Statistics.
	Requests  int64
	BusyTime  sim.Duration
	SeekTime  sim.Duration
	RotTime   sim.Duration
	XferTime  sim.Duration
	QueueTime sim.Duration
}

// New returns a disk with the head parked at cylinder 0.
func New(cfg Config) (*Disk, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Disk{cfg: cfg}, nil
}

// SeekTimeFor returns the time to move the head across dist cylinders.
func (d *Disk) SeekTimeFor(dist int) sim.Duration {
	if dist == 0 {
		return 0
	}
	if dist < 0 {
		dist = -dist
	}
	return d.cfg.SeekBase +
		sim.Duration(float64(d.cfg.SeekPerCyl)*float64(dist)) +
		sim.Duration(float64(d.cfg.SeekSqrt)*math.Sqrt(float64(dist)))
}

// cylinderOf maps a byte offset to a cylinder (sectors fill tracks,
// tracks fill cylinders round-robin through the address space).
func (d *Disk) cylinderOf(offset int64) int {
	sector := offset / int64(d.cfg.SectorBytes)
	track := sector / int64(d.cfg.SectorsPerTrk)
	return int(track % int64(d.cfg.Cylinders))
}

// angleOf maps a byte offset to the rotational angle (fraction of a
// revolution) at which its first sector passes under the head.
func (d *Disk) angleOf(offset int64) float64 {
	sector := offset / int64(d.cfg.SectorBytes)
	return float64(sector%int64(d.cfg.SectorsPerTrk)) / float64(d.cfg.SectorsPerTrk)
}

// Access issues a request for n bytes at the given byte offset at time
// now and returns the completion time. Requests queue FIFO: service
// starts at max(now, previous completion).
func (d *Disk) Access(now sim.Time, offset, n int64) sim.Time {
	if offset < 0 || n <= 0 {
		panic(fmt.Sprintf("disk: Access(offset=%d, n=%d)", offset, n))
	}
	start := now
	if d.freeAt > start {
		d.QueueTime += d.freeAt.Sub(start)
		start = d.freeAt
	}
	cyl := d.cylinderOf(offset)
	seek := d.SeekTimeFor(cyl - d.headCyl)
	d.headCyl = cyl

	// Rotational latency: where is the platter when the seek ends?
	period := d.cfg.RotationPeriod()
	atHead := float64(int64(start.Add(seek))%int64(period)) / float64(period)
	target := d.angleOf(offset)
	frac := target - atHead
	if frac < 0 {
		frac++
	}
	rot := sim.Duration(float64(period) * frac)

	xfer := sim.FromSeconds(float64(n) / d.cfg.TransferRate)
	done := start.Add(seek + rot + xfer)

	d.Requests++
	d.SeekTime += seek
	d.RotTime += rot
	d.XferTime += xfer
	d.BusyTime += seek + rot + xfer
	d.freeAt = done
	return done
}

// FreeAt returns when the disk finishes its queued work.
func (d *Disk) FreeAt() sim.Time { return d.freeAt }

// MeanServiceTime returns the average seek+rotation+transfer time.
func (d *Disk) MeanServiceTime() sim.Duration {
	if d.Requests == 0 {
		return 0
	}
	return sim.Duration(int64(d.BusyTime) / d.Requests)
}

// Array stripes data over several identical disks (RAID-0 style) with
// a fixed stripe unit.
type Array struct {
	disks       []*Disk
	stripeBytes int64
}

// NewArray builds an array of n disks with the given config and stripe
// unit in bytes.
func NewArray(n int, cfg Config, stripeBytes int64) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("disk: array of %d disks", n)
	}
	if stripeBytes <= 0 {
		return nil, fmt.Errorf("disk: stripe unit %d", stripeBytes)
	}
	a := &Array{stripeBytes: stripeBytes}
	for i := 0; i < n; i++ {
		d, err := New(cfg)
		if err != nil {
			return nil, err
		}
		a.disks = append(a.disks, d)
	}
	return a, nil
}

// Disks returns the member disks (for statistics).
func (a *Array) Disks() []*Disk { return a.disks }

// Access reads or writes n bytes at a logical byte offset, splitting
// the request across stripe units; it completes when the slowest
// member completes.
func (a *Array) Access(now sim.Time, offset, n int64) sim.Time {
	if offset < 0 || n <= 0 {
		panic(fmt.Sprintf("disk: array Access(offset=%d, n=%d)", offset, n))
	}
	var done sim.Time
	for n > 0 {
		stripe := offset / a.stripeBytes
		diskIdx := int(stripe % int64(len(a.disks)))
		within := offset % a.stripeBytes
		chunk := a.stripeBytes - within
		if chunk > n {
			chunk = n
		}
		// The member disk sees the offset within its own address space.
		memberOffset := (stripe/int64(len(a.disks)))*a.stripeBytes + within
		if t := a.disks[diskIdx].Access(now, memberOffset, chunk); t > done {
			done = t
		}
		offset += chunk
		n -= chunk
	}
	return done
}
