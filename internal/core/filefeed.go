// File-backed simulation: the same run assembly as RunContext, with
// the trace streamed from a .dmt container instead of a slice. The
// container is traversed at most three times — a validation-plus-
// warm-up pass, then the simulated pass, each through a bounded-memory
// cursor — and the CP-Limit calibration comes from the container's
// footer aggregates, so a trace 100x longer than memory runs in the
// same flat footprint as a short one. Reports are bit-identical to the
// in-memory path on the same records: validation rules, warm-up
// arithmetic, calibration floats and feeder batching all match.
package core

import (
	"context"
	"fmt"

	"dmamem/internal/controller"
	"dmamem/internal/dma"
	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// runFileContext is RunContext for Config.TraceFile.
func runFileContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg, model, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.PerEventFeeder {
		return nil, fmt.Errorf("core: PerEventFeeder needs an in-memory trace; TraceFile streams through the batched feeder")
	}
	if err := validateWarmupFraction(cfg.WarmupFraction); err != nil {
		return nil, err
	}
	fr, err := trace.OpenDMTFile(cfg.TraceFile)
	if err != nil {
		return nil, err
	}
	defer fr.Close()
	sum := fr.Summary()
	if sum.Records == 0 {
		return nil, fmt.Errorf("core: empty trace %q", sum.Name)
	}

	res := &Result{}
	ccfg := controller.Config{
		Geometry:           cfg.Geometry,
		Topology:           cfg.Topology,
		Buses:              cfg.Buses,
		Policy:             cfg.Policy,
		TA:                 cfg.TA,
		Mapper:             cfg.Mapper,
		Model:              model,
		InitialState:       0, // Active; the policy idles chips down immediately
		FullScanAccounting: cfg.FullScanAccounting,
	}

	if cfg.TA != nil && cfg.TA.Mu == 0 && cfg.CPLimit > 0 {
		// The footer carries the trace's DMA totals, so the calibration
		// needs no scan and its floats match Calibrate's exactly.
		cal := calibrate(sum.Meta, sum.MeanTransferPages(), cfg.Geometry, cfg.Buses)
		mu, err := cal.Mu(cfg.CPLimit)
		if err != nil {
			return nil, err
		}
		ta := *cfg.TA // do not mutate the caller's config
		ta.Mu = mu
		ccfg.TA = &ta
		res.Calibration = cal
		res.Mu = mu
	} else if cfg.TA != nil {
		res.Mu = cfg.TA.Mu
	}

	var lm *layout.Manager
	if cfg.PL != nil {
		lm, err = layout.New(cfg.Geometry, *cfg.PL)
		if err != nil {
			return nil, err
		}
		ccfg.Layout = lm
	}
	// One streaming pass validates every record (the semantic checks
	// the codec leaves to the simulator, matching the in-memory path's
	// Validate plus page-range scan) and feeds the warm-up prefix to
	// the layout manager.
	if err := validateAndWarmFile(fr, sum, cfg, lm); err != nil {
		return nil, err
	}

	if cfg.Workers > 0 {
		return finishParallelFile(ctx, cfg, fr, sum, ccfg, lm, res)
	}

	eng := sim.New()
	if cfg.HeapScheduler {
		eng = sim.NewWithHeap()
	}
	ctl, err := controller.New(eng, ccfg)
	if err != nil {
		return nil, err
	}

	feeder := &fileFeeder{ctl: ctl, cur: fr.Cursor()}
	eng.SetFeeder(feeder)
	traceEnd := sim.Time(sum.Duration)
	if lm != nil {
		scheduleRebalances(eng, ctl, lm, traceEnd)
	}
	if err := eng.RunContext(ctx); err != nil {
		return nil, err
	}
	if err := feeder.cur.Err(); err != nil {
		return nil, fmt.Errorf("core: streaming %s: %w", cfg.TraceFile, err)
	}

	window := cfg.MeterWindow
	if window == 0 {
		window = sum.Duration + 2*sim.Millisecond
	}
	end := ctl.Finish(sim.Time(window))
	res.Report = ctl.Report(cfg.Scheme, end)
	if lm != nil {
		res.MigratedPages = lm.MigratedPages
		res.MigrationEnergyJ = lm.MigrationEnergyJ
		res.Rebalances = lm.Rebalances
	}
	return res, nil
}

// validateAndWarmFile streams the container once, applying the same
// semantic checks — with the same error wording AND the same
// precedence — the in-memory path applies before a run, and feeding
// the first WarmupFraction of the records' DMA references to the
// layout manager exactly as warmup does.
//
// Precedence matters for error-string parity: the in-memory path runs
// all of trace.Validate (zero-page DMAs, negative pages, on every
// record) before its page-range scan, so a malformed record anywhere
// in the trace wins over a range violation earlier in it. The single
// streaming pass reproduces that by returning trace-level errors
// immediately and holding the first range error until the scan ends.
// The codec already enforces time order and kind validity.
func validateAndWarmFile(fr *trace.FileReader, sum trace.FileSummary, cfg Config, lm *layout.Manager) error {
	maxPage := memsys.PageID(cfg.Geometry.TotalPages())
	warm := int64(0)
	if lm != nil {
		warm = warmupCount(cfg.WarmupFraction, sum.Records)
	}
	var rangeErr error
	cur := fr.Cursor()
	for i := int64(0); ; i++ {
		r, ok := cur.Next()
		if !ok {
			break
		}
		end := r.Page
		if r.Kind.IsDMA() {
			if r.Pages == 0 {
				return fmt.Errorf("trace %q: record %d is a zero-page DMA", sum.Name, i)
			}
			end += memsys.PageID(r.Pages)
		} else {
			end++
		}
		if r.Page < 0 {
			return fmt.Errorf("trace %q: record %d has negative page", sum.Name, i)
		}
		if rangeErr == nil && end > maxPage {
			rangeErr = fmt.Errorf("core: record %d touches pages [%d,%d) outside memory of %d pages",
				i, r.Page, end, maxPage)
		}
		if i < warm && r.Kind.IsDMA() {
			for p := 0; p < int(r.Pages); p++ {
				lm.Observe(r.Page + memsys.PageID(p))
			}
		}
	}
	if err := cur.Err(); err != nil {
		return err
	}
	if rangeErr != nil {
		return rangeErr
	}
	if lm != nil {
		lm.Rebalance(nil)
		lm.ResetCosts()
	}
	return nil
}

// fileFeeder is traceFeeder over a .dmt cursor: the engine's run loop
// pulls arrival batches straight from the file's chunk stream, so
// arrivals bypass the scheduler and at most one decoded chunk is
// resident. Dispatch order and same-instant priority match the
// in-memory feeder exactly, so the simulation is bit-identical.
//
// A corrupted container surfaces as an exhausted cursor mid-run; the
// caller checks cur.Err after the engine stops (a feeder has no error
// channel of its own).
type fileFeeder struct {
	ctl    *controller.Controller
	cur    *trace.Cursor
	nextID int64
}

func (f *fileFeeder) Peek() (sim.Time, int8, bool) {
	r, ok := f.cur.Peek()
	if !ok {
		return 0, 0, false
	}
	return r.Time, feederPrio, true
}

func (f *fileFeeder) Fire(e *sim.Engine) {
	now := e.Now()
	for {
		r, ok := f.cur.Peek()
		if !ok || r.Time != now {
			return
		}
		f.cur.Advance()
		if r.Kind.IsDMA() {
			f.ctl.StartTransfer(dma.FromRecord(f.nextID, r))
			f.nextID++
		} else {
			f.ctl.ProcAccess(r.Page)
		}
	}
}
