package core

import (
	"reflect"
	"strings"
	"testing"

	"dmamem/internal/controller"
	"dmamem/internal/memsys"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// dbTrace returns a short Synthetic-Db trace shared by tests.
func dbTrace(t *testing.T, d sim.Duration) *trace.Trace {
	t.Helper()
	w, err := SyntheticDbWorkload(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	return w.Trace
}

// parallelSchemes are the corpus schemes the parallel engine must
// reproduce.
func parallelSchemes() map[string]Config {
	return map[string]Config{
		"baseline":  {},
		"dma-ta":    {TA: controller.DefaultTA(0), CPLimit: 0.10},
		"dma-ta-pl": {TA: controller.DefaultTA(0), CPLimit: 0.10, PL: plCfg(2)},
	}
}

// TestParallelSingleChannelBitIdentical is the core-level acceptance
// gate: on a single channel the barrier engine must reproduce the
// serial engine's Result exactly — every scheme, 1/2/4 workers
// (clamped to the one shard), several epoch lengths, in-memory and
// file-backed.
func TestParallelSingleChannelBitIdentical(t *testing.T) {
	tr := stTrace(t, 5*sim.Millisecond)
	path := saveDMT(t, tr, 512)
	for name, cfg := range parallelSchemes() {
		serial, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		fcfg := cfg
		fcfg.TraceFile = path
		serialFile, err := Run(fcfg, nil)
		if err != nil {
			t.Fatalf("%s serial file: %v", name, err)
		}
		for _, workers := range []int{1, 2, 4} {
			pcfg := cfg
			pcfg.Workers = workers
			got, err := Run(pcfg, tr)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(serial, got) {
				t.Errorf("%s workers=%d: parallel result differs from serial\nserial:   %+v\nparallel: %+v",
					name, workers, serial, got)
			}
			pf := fcfg
			pf.Workers = workers
			gotFile, err := Run(pf, nil)
			if err != nil {
				t.Fatalf("%s file workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(serialFile, gotFile) {
				t.Errorf("%s file workers=%d: parallel file result differs from serial file", name, workers)
			}
		}
		for _, epoch := range []sim.Duration{10 * sim.Microsecond, 200 * sim.Microsecond} {
			pcfg := cfg
			pcfg.Workers = 1
			pcfg.BarrierEpoch = epoch
			got, err := Run(pcfg, tr)
			if err != nil {
				t.Fatalf("%s epoch=%v: %v", name, epoch, err)
			}
			if !reflect.DeepEqual(serial, got) {
				t.Errorf("%s epoch=%v: result depends on the barrier epoch", name, epoch)
			}
		}
	}
}

// TestParallelMultiChannelWorkerInvariance: on a multi-channel
// topology the worker count must not influence the result (the
// conservative-PDES determinism claim), and the file-backed path —
// which stages records through the Prepare hook instead of per-shard
// feeders — must agree with the in-memory path exactly.
func TestParallelMultiChannelWorkerInvariance(t *testing.T) {
	topo := memsys.Topology{Channels: 4, ChannelBandwidth: 3.2e9}
	tr := stTrace(t, 5*sim.Millisecond)
	path := saveDMT(t, tr, 512)
	for name, cfg := range parallelSchemes() {
		cfg.Topology = topo
		cfg.Workers = 1
		ref, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s workers=1: %v", name, err)
		}
		if ref.Report.Channels != 4 {
			t.Fatalf("%s: report has %d channels", name, ref.Report.Channels)
		}
		for _, workers := range []int{2, 4} {
			pcfg := cfg
			pcfg.Workers = workers
			got, err := Run(pcfg, tr)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s: workers=%d result differs from workers=1", name, workers)
			}
		}
		for _, workers := range []int{1, 2, 4} {
			fcfg := cfg
			fcfg.TraceFile = path
			fcfg.Workers = workers
			got, err := Run(fcfg, nil)
			if err != nil {
				t.Fatalf("%s file workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s: file-backed workers=%d result differs from in-memory workers=1", name, workers)
			}
		}
	}
}

// TestParallelRejections pins the loud errors of the parallel path.
func TestParallelRejections(t *testing.T) {
	tr := stTrace(t, sim.Millisecond)
	topo := memsys.Topology{Channels: 4, ChannelBandwidth: 3.2e9}
	if _, err := Run(Config{Workers: 2, PerEventFeeder: true}, tr); err == nil ||
		!strings.Contains(err.Error(), "PerEventFeeder") {
		t.Errorf("PerEventFeeder with Workers: %v", err)
	}
	// A gap-observing policy that cannot replicate itself still gets a
	// loud rejection on multi-channel topologies.
	if _, err := Run(Config{Workers: 2, Topology: topo, Policy: &gapOnlyPolicy{}}, tr); err == nil ||
		!strings.Contains(err.Error(), "Replicable") {
		t.Errorf("non-replicable gap observer on multi-channel parallel: %v", err)
	}
	if _, err := Run(Config{Workers: 2, BarrierEpoch: -sim.Microsecond}, tr); err == nil ||
		!strings.Contains(err.Error(), "BarrierEpoch") {
		t.Errorf("negative BarrierEpoch: %v", err)
	}
	if _, err := Run(Config{Workers: 2, MaxEpochSpan: -1}, tr); err == nil ||
		!strings.Contains(err.Error(), "MaxEpochSpan") {
		t.Errorf("negative MaxEpochSpan: %v", err)
	}
	// PL and SelfTuning are legal on any channel count since the
	// epoch-synchronized observation stage: single-channel is the
	// serial semantics, multi-channel runs rebalances and gap merges at
	// barriers.
	for _, cfg := range []Config{
		{Workers: 2, PL: plCfg(2), TA: controller.DefaultTA(0), CPLimit: 0.10},
		{Workers: 2, Policy: policy.NewSelfTuning()},
		{Workers: 2, Topology: topo, PL: plCfg(2), TA: controller.DefaultTA(0), CPLimit: 0.10},
		{Workers: 2, Topology: topo, Policy: policy.NewSelfTuning()},
	} {
		if _, err := Run(cfg, tr); err != nil {
			t.Errorf("legal parallel config rejected: %+v: %v", cfg, err)
		}
	}
}

// gapOnlyPolicy observes gaps but cannot replicate — multi-channel
// parallel runs must reject it loudly.
type gapOnlyPolicy struct{ policy.AlwaysActive }

func (*gapOnlyPolicy) ObserveGap(sim.Duration) {}

// TestParallelSingleChannelWorkersAccepted pins the documented
// Config.Workers behavior on a single-channel topology: accepted (not
// an error), bit-identical to serial, and equally so with the adaptive
// barrier (default) and the fixed-epoch reference — the adaptive
// engine collapses the run into one span, so the configuration is
// near-free rather than silently wasteful.
func TestParallelSingleChannelWorkersAccepted(t *testing.T) {
	tr := stTrace(t, 2*sim.Millisecond)
	serial, err := Run(Config{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, fixed := range []bool{false, true} {
		got, err := Run(Config{Workers: 4, FixedEpoch: fixed}, tr)
		if err != nil {
			t.Fatalf("fixed=%v: %v", fixed, err)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("fixed=%v: single-channel parallel differs from serial", fixed)
		}
	}
}

// TestParallelAdaptiveFixedBitIdentical is the core-level elision
// acceptance gate: the adaptive barrier may only skip rendezvous it
// can prove are no-ops, so the fixed-epoch reference must reproduce
// its results exactly — all schemes, multi-channel, in-memory and
// file-backed, several span ceilings.
func TestParallelAdaptiveFixedBitIdentical(t *testing.T) {
	topo := memsys.Topology{Channels: 4, ChannelBandwidth: 3.2e9}
	tr := stTrace(t, 5*sim.Millisecond)
	path := saveDMT(t, tr, 512)
	for name, cfg := range parallelSchemes() {
		cfg.Topology = topo
		cfg.Workers = 2
		fixed := cfg
		fixed.FixedEpoch = true
		want, err := Run(fixed, tr)
		if err != nil {
			t.Fatalf("%s fixed: %v", name, err)
		}
		for _, span := range []int{0, 2, 64} {
			acfg := cfg
			acfg.MaxEpochSpan = span
			got, err := Run(acfg, tr)
			if err != nil {
				t.Fatalf("%s span=%d: %v", name, span, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s span=%d: adaptive result differs from fixed-epoch", name, span)
			}
		}
		ffix := fixed
		ffix.TraceFile = path
		wantFile, err := Run(ffix, nil)
		if err != nil {
			t.Fatalf("%s fixed file: %v", name, err)
		}
		if !reflect.DeepEqual(want, wantFile) {
			t.Errorf("%s: fixed file result differs from fixed in-memory", name)
		}
		fadp := cfg
		fadp.TraceFile = path
		gotFile, err := Run(fadp, nil)
		if err != nil {
			t.Fatalf("%s adaptive file: %v", name, err)
		}
		if !reflect.DeepEqual(want, gotFile) {
			t.Errorf("%s: adaptive file result differs from fixed-epoch", name)
		}
	}
}

// TestFileErrorWordingMatchesMemory is the satellite-1 regression: the
// two trace paths must return character-identical errors on the same
// malformed records, including when a trace-level violation (checked
// first in-memory, across the whole trace) coexists with an earlier
// page-range violation.
func TestFileErrorWordingMatchesMemory(t *testing.T) {
	maxPage := memsys.PageID(memsys.Default().TotalPages())
	cases := []struct {
		name string
		tr   *trace.Trace
	}{
		{"zero-page after range violation", &trace.Trace{Name: "mixed", Records: []trace.Record{
			{Time: 0, Kind: trace.DMARead, Pages: 4, Page: maxPage - 1},
			{Time: 1, Kind: trace.DMARead, Pages: 0, Page: 0},
		}}},
		{"range violation only", &trace.Trace{Name: "oob", Records: []trace.Record{
			{Time: 0, Kind: trace.DMARead, Pages: 2, Page: 5},
			{Time: 3, Kind: trace.DMAWrite, Pages: 8, Page: maxPage - 2},
		}}},
		{"zero-page only", &trace.Trace{Name: "zdma", Records: []trace.Record{
			{Time: 0, Kind: trace.DMARead, Pages: 2, Page: 0},
			{Time: 2, Kind: trace.DMAWrite, Pages: 0, Page: 9},
		}}},
	}
	for _, tc := range cases {
		_, memErr := Run(Config{}, tc.tr)
		if memErr == nil {
			t.Fatalf("%s: in-memory run accepted malformed trace", tc.name)
		}
		_, fileErr := Run(Config{TraceFile: saveDMT(t, tc.tr, 64)}, nil)
		if fileErr == nil {
			t.Fatalf("%s: file-backed run accepted malformed trace", tc.name)
		}
		if memErr.Error() != fileErr.Error() {
			t.Errorf("%s: error wording diverges\nmem:  %s\nfile: %s", tc.name, memErr, fileErr)
		}
	}
}

// TestWarmupFractionCrossPath is the satellite-2 regression: warm-up
// counts must truncate identically on both paths at fractional values,
// keeping reports bit-identical; out-of-range fractions fail loudly
// with the same wording instead of panicking (in-memory) or silently
// warming everything (file).
func TestWarmupFractionCrossPath(t *testing.T) {
	traces := map[string]*trace.Trace{
		"Synthetic-St": stTrace(t, 5*sim.Millisecond),
		"Synthetic-Db": dbTrace(t, 5*sim.Millisecond),
	}
	for wname, tr := range traces {
		path := saveDMT(t, tr, 512)
		for _, frac := range []float64{0.1, 0.33, 0.5} {
			cfg := Config{
				TA: controller.DefaultTA(0), CPLimit: 0.10, PL: plCfg(2),
				WarmupFraction: frac,
			}
			mem, err := Run(cfg, tr)
			if err != nil {
				t.Fatalf("%s frac=%g in-memory: %v", wname, frac, err)
			}
			fcfg := cfg
			fcfg.TraceFile = path
			file, err := Run(fcfg, nil)
			if err != nil {
				t.Fatalf("%s frac=%g file: %v", wname, frac, err)
			}
			if !reflect.DeepEqual(mem, file) {
				t.Errorf("%s frac=%g: file-backed result differs from in-memory", wname, frac)
			}
		}
		for _, frac := range []float64{-0.5, 1.5} {
			cfg := Config{PL: plCfg(2), WarmupFraction: frac}
			_, memErr := Run(cfg, tr)
			fcfg := cfg
			fcfg.TraceFile = path
			_, fileErr := Run(fcfg, nil)
			if memErr == nil || fileErr == nil {
				t.Fatalf("%s frac=%g accepted (mem=%v file=%v)", wname, frac, memErr, fileErr)
			}
			if memErr.Error() != fileErr.Error() {
				t.Errorf("%s frac=%g: rejection wording diverges\nmem:  %s\nfile: %s", wname, frac, memErr, fileErr)
			}
			if !strings.Contains(memErr.Error(), "WarmupFraction") {
				t.Errorf("%s frac=%g: unclear rejection %q", wname, frac, memErr)
			}
		}
	}
}
