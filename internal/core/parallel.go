// Parallel run assembly: one event loop per topology channel, driven
// in deterministic epoch-barrier lockstep by internal/sim's
// BarrierEngine (Config.Workers > 0).
//
// Each channel gets its own sim.Engine and its own channel-partitioned
// controller; within an epoch a shard touches only its own chips,
// flows, timers and slack pool, so shards share no state and the
// worker count cannot affect results. Cross-channel state is exchanged
// single-threaded between epochs: the shared I/O-bus bandwidth is
// re-split with a demand-weighted max-min share (bus.EpochShares +
// Controller.Resync) in the Barrier stage, while the Observe stage
// folds per-partition observations into a coherent global view at the
// same instant — idle-gap samples are replayed to the master adaptive
// policy in global time order, and the shared page layout rebalances
// over the union of every partition's busy set. That observation stage
// is what lets PL and gap-observing policies run on multi-channel
// parallel topologies.
//
// Barriers are adaptive by default: at each rendezvous the core
// computes a conservative lower bound on the next instant any
// partition's bus demand can change (controller lookahead + the trace
// cursors' next relevant arrival) and lets the shards run through
// every provably idle epoch boundary in one span, capped by a
// controller that widens while re-split churn is low or barrier stall
// is high and narrows when shares are actually moving. Only provably
// no-op boundaries are ever skipped, so results are bit-identical to
// the fixed-epoch reference (Config.FixedEpoch) at any span cap and
// any worker count; see docs/ARCHITECTURE.md for the argument.
//
// With a single channel the barrier engine degenerates to the serial
// engine — executed as one open-ended span under the adaptive barrier,
// or in epoch-sized chunks under FixedEpoch — and reports are
// bit-identical to the serial reference (the golden corpus cross-check
// in internal/experiments holds both paths to it). With multiple
// channels the epoch-barrier bus coupling IS the semantics: the serial
// engine reallocates globally at event granularity, which no
// conservative parallel schedule can reproduce, so multi-channel
// parallel runs are their own scheme — deterministic,
// worker-count-invariant, and cross-checked 2-and-4-workers-vs-1
// instead. Channel-spanning DMA records are split into
// channel-homogeneous sub-transfers that proceed concurrently (the
// serial engine walks them sequentially); Transfers and service-time
// stats count the sub-transfers. Gap-observing policies see their
// observations merged at barrier granularity and serve thresholds from
// per-partition replicas that may lag the master by one span — also
// part of the multi-channel scheme, and also worker-count invariant.
package core

import (
	"context"
	"fmt"

	"dmamem/internal/bus"
	"dmamem/internal/controller"
	"dmamem/internal/dma"
	"dmamem/internal/energy"
	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// defaultBarrierEpoch balances synchronization overhead against how
// stale a partition's bus share may grow: 50 us is a few dozen
// transfer service times at PCI-X rates.
const defaultBarrierEpoch = 50 * sim.Microsecond

// defaultMaxEpochSpan is the adaptive barrier's span ceiling (see
// Config.MaxEpochSpan): at the default epoch it lets shards run up to
// 12.8 ms between rendezvous, while bounding how many trace records
// the staging buffers may hold.
const defaultMaxEpochSpan = 256

// spanController adapts the elision span cap between 1 epoch and the
// ceiling from two signals: the re-split churn (how often the
// demand-weighted bus shares actually changed at recent rendezvous)
// and the barrier-stall fraction the engine measures around its
// rendezvous wait. High churn means shares are moving and spans should
// hug the epoch grid; low churn or high stall means barriers are pure
// overhead and spans should widen. The cap only selects among epoch
// boundaries already proven no-ops by the cross lookahead, so any cap
// sequence — including one driven by wall-clock noise — yields
// bit-identical results; the controller tunes wall-clock time only.
type spanController struct {
	cap     int
	ceiling int
	churn   float64 // EWMA of "shares changed at this rendezvous"
}

func newSpanController(ceiling int) *spanController {
	start := 8
	if start > ceiling {
		start = ceiling
	}
	return &spanController{cap: start, ceiling: ceiling}
}

// noteResplit feeds one rendezvous outcome into the churn estimate.
// Churn is a per-simulated-epoch rate, not a per-rendezvous rate:
// rendezvous only happen where something was pending, so sampling them
// alone would overcount — a workload with one genuine re-split every
// 40 quiet epochs would look like 100% churn and wrongly pin the span
// cap at 1. The epochs covered since the previous rendezvous therefore
// enter the EWMA as unchanged samples ahead of this rendezvous's
// outcome (they rendezvoused nothing, so no shares moved there).
func (s *spanController) noteResplit(changed bool, epochs int64) {
	for ; epochs > 1; epochs-- {
		s.churn *= 0.9
		if s.churn < 1e-6 {
			s.churn = 0
			break
		}
	}
	v := 0.0
	if changed {
		v = 1
	}
	s.churn = 0.9*s.churn + 0.1*v
}

// spanCap implements sim.BarrierHooks.SpanCap.
func (s *spanController) spanCap(stall float64) int {
	switch {
	case s.churn > 0.5 && s.cap > 1:
		s.cap /= 2
	case s.cap < s.ceiling && (s.churn < 0.1 || stall > 0.25):
		s.cap *= 2
		if s.cap > s.ceiling {
			s.cap = s.ceiling
		}
	}
	return s.cap
}

// timedGap is one buffered idle-gap observation.
type timedGap struct {
	at  sim.Time
	gap sim.Duration
}

// gapRecorder is the per-partition stand-in for a gap-observing
// policy: threshold queries are served by the partition's replica
// (policy.Replicable) while completed idle gaps are buffered with
// their instants. The barrier's Observe stage replays all partitions'
// buffers to the master policy in global time order and re-syncs every
// replica — the epoch-synchronized global observation that lets
// adaptive policies run on multi-channel parallel topologies.
type gapRecorder struct {
	policy.Policy // the replica: serves NextStep/Name
	buf           []timedGap
	pos           int
}

// ObserveGapAt implements policy.TimedGapObserver; the controller
// prefers it over plain ObserveGap.
func (g *gapRecorder) ObserveGapAt(at sim.Time, gap sim.Duration) {
	g.buf = append(g.buf, timedGap{at: at, gap: gap})
}

// ValidateForModel forwards the model check to the replica, so
// wrapping does not hide policy.ModelValidator from controller.New.
func (g *gapRecorder) ValidateForModel(m *energy.Model) error {
	if v, ok := g.Policy.(policy.ModelValidator); ok {
		return v.ValidateForModel(m)
	}
	return nil
}

// parallelRun is the assembled shard set plus the barrier-side bus
// bookkeeping and the adaptive-barrier state.
type parallelRun struct {
	cfg      Config
	channels int
	engs     []*sim.Engine
	ctls     []*controller.Controller

	// Bus-share state (channels > 1): fullCaps is every bus at full
	// bandwidth; shares holds each partition's current allocation,
	// counts and next are barrier scratch.
	fullCaps []float64
	shares   [][]float64
	counts   [][]int
	next     [][]float64

	// span adapts the elision cap (channels > 1, adaptive mode);
	// epochLen and lastEnd turn rendezvous spacing into the elapsed
	// simulated epochs the churn rate is normalized by.
	span     *spanController
	epochLen sim.Duration
	lastEnd  sim.Time

	// Gap-observing policy replication (channels > 1 only).
	gapObserving bool
	gapMaster    policy.GapObserver
	gapRepl      policy.Replicable
	gapRecs      []*gapRecorder

	// Shared-layout (PL) rebalance state (channels > 1 only): the
	// serial engine runs rebalances as priority-5 ticks; here they are
	// forced rendezvous instants executed in the Observe stage.
	lm          *layout.Manager
	rebInterval sim.Duration
	nextReb     sim.Time
	rebEnd      sim.Time
	busyScratch []map[memsys.PageID]bool

	// nextArrival probes the earliest undelivered trace arrival — DMA
	// records only when dmaOnly, every kind otherwise. Installed per
	// trace path (pre-split feeders, staging buffers, file cursor); it
	// bounds the cross lookahead so no span outruns an arrival that
	// could change bus demand.
	nextArrival func(dmaOnly bool) (sim.Time, bool)
}

// channelOfPage resolves the channel serving a page under the
// controller's resolved mapping. The returned closure reads the
// mapping at call time, so under PL it tracks migrations: stage-time
// routing is correct because spans never cross a rebalance instant
// (the CapEnd hook forces a rendezvous there).
func channelOfPage(cfg Config, mapper memsys.Mapper) func(memsys.PageID) int {
	geo := cfg.Geometry
	topo := cfg.Topology
	return func(p memsys.PageID) int {
		return topo.ChannelOfChip(geo, mapper.ChipOf(p))
	}
}

// newParallelRun builds the per-channel engines and partitioned
// controllers from the serial controller config template.
func newParallelRun(cfg Config, ccfg controller.Config) (*parallelRun, error) {
	if cfg.PerEventFeeder {
		return nil, fmt.Errorf("core: Workers and PerEventFeeder are mutually exclusive; the parallel engine feeds every shard through the batched feeder")
	}
	if cfg.BarrierEpoch < 0 {
		return nil, fmt.Errorf("core: BarrierEpoch %v is negative", cfg.BarrierEpoch)
	}
	if cfg.MaxEpochSpan < 0 {
		return nil, fmt.Errorf("core: MaxEpochSpan %d is negative", cfg.MaxEpochSpan)
	}
	channels := cfg.Topology.NumChannels()
	p := &parallelRun{cfg: cfg, channels: channels}
	ceiling := cfg.MaxEpochSpan
	if ceiling == 0 {
		ceiling = defaultMaxEpochSpan
	}
	p.span = newSpanController(ceiling)
	p.epochLen = cfg.BarrierEpoch
	if p.epochLen == 0 {
		p.epochLen = defaultBarrierEpoch
	}
	if channels > 1 {
		if obs, isGap := ccfg.Policy.(policy.GapObserver); isGap {
			repl, isRepl := ccfg.Policy.(policy.Replicable)
			if !isRepl {
				return nil, fmt.Errorf("core: policy %T observes idle gaps globally but is not policy.Replicable; multi-channel parallel runs serve thresholds from per-channel replicas and merge gap observations at epoch barriers", ccfg.Policy)
			}
			p.gapObserving = true
			p.gapMaster = obs
			p.gapRepl = repl
			p.gapRecs = make([]*gapRecorder, channels)
		}
		p.fullCaps = make([]float64, cfg.Buses.Count)
		for i := range p.fullCaps {
			p.fullCaps[i] = cfg.Buses.Bandwidth
		}
		p.shares = make([][]float64, channels)
		p.counts = make([][]int, channels)
		p.next = make([][]float64, channels)
		for ch := range p.shares {
			p.shares[ch] = make([]float64, cfg.Buses.Count)
			p.counts[ch] = make([]int, cfg.Buses.Count)
			p.next[ch] = make([]float64, cfg.Buses.Count)
		}
		// The opening allocation is the zero-demand split: every
		// partition idle, each holding an even reserve share.
		bus.EpochShares(p.fullCaps, p.counts, p.shares)
	}
	for ch := 0; ch < channels; ch++ {
		eng := sim.New()
		if cfg.HeapScheduler {
			eng = sim.NewWithHeap()
		}
		pcfg := ccfg
		if channels > 1 {
			caps := make([]float64, cfg.Buses.Count)
			copy(caps, p.shares[ch])
			pcfg.Partition = &controller.Partition{Channel: ch, BusCaps: caps}
			if p.gapObserving {
				rec := &gapRecorder{Policy: p.gapRepl.Replicate()}
				pcfg.Policy = rec
				p.gapRecs[ch] = rec
			}
		}
		ctl, err := controller.New(eng, pcfg)
		if err != nil {
			return nil, err
		}
		p.engs = append(p.engs, eng)
		p.ctls = append(p.ctls, ctl)
	}
	return p, nil
}

// barrier re-splits the shared buses by the demand each partition
// reported for the span that just ended. Runs single-threaded between
// epochs; Resync is skipped while a partition's shares are unchanged,
// so an all-idle simulation inserts no accounting boundaries at all.
// The changed-or-not outcome also feeds the span controller's churn
// estimate.
func (p *parallelRun) barrier(end sim.Time) error {
	for ch, ctl := range p.ctls {
		ctl.BusFlowCounts(p.counts[ch])
	}
	bus.EpochShares(p.fullCaps, p.counts, p.next)
	anyChanged := false
	for ch, ctl := range p.ctls {
		changed := false
		for b, s := range p.next[ch] {
			if s != p.shares[ch][b] {
				changed = true
				break
			}
		}
		if changed {
			anyChanged = true
			copy(p.shares[ch], p.next[ch])
			ctl.Resync(p.shares[ch])
		}
	}
	epochs := int64(1)
	if p.lastEnd > 0 && end > p.lastEnd {
		if n := int64(end.Sub(p.lastEnd) / p.epochLen); n > 1 {
			epochs = n
		}
	}
	p.lastEnd = end
	p.span.noteResplit(anyChanged, epochs)
	return nil
}

// crossAt implements sim.BarrierHooks.CrossAt: the earliest instant
// any partition's bus demand can change, from controller-internal
// causes (completions, TA epoch timers, in-flight wakes) and from
// trace arrivals. Gap-observing runs disable elision entirely — their
// replica merges must stay on the fixed rendezvous schedule for the
// adaptive and fixed modes to remain bit-identical.
func (p *parallelRun) crossAt() (sim.Time, bool) {
	if p.gapObserving {
		return 0, false
	}
	at := sim.MaxTime
	arrival := false
	for _, ctl := range p.ctls {
		t, a, ok := ctl.CrossLookahead()
		if !ok {
			return 0, false
		}
		if t < at {
			at = t
		}
		arrival = arrival || a
	}
	if p.nextArrival != nil {
		// With no partition gated, only DMA arrivals can create flows;
		// with any transfer gated, a processor access can wake a chip
		// and drain its gated transfers, so every arrival counts.
		if t, ok := p.nextArrival(!arrival); ok && t < at {
			at = t
		}
	}
	return at, true
}

// capEnd implements sim.BarrierHooks.CapEnd: spans must not cross a
// layout-rebalance instant, where the page→channel mapping may change.
func (p *parallelRun) capEnd(end sim.Time) sim.Time {
	if p.nextReb <= p.rebEnd && p.nextReb < end {
		return p.nextReb
	}
	return end
}

// observe implements sim.BarrierHooks.Observe: the epoch-synchronized
// global observation stage. It merges the partitions' buffered idle
// gaps into the master policy in global time order (ties broken by
// channel index) and re-syncs the replicas, then runs any layout
// rebalance due at this rendezvous over the union of every partition's
// busy pages — the parallel equivalent of the serial engine's
// priority-5 rebalance tick, which likewise runs after all same-
// instant events.
func (p *parallelRun) observe(end sim.Time) error {
	if p.gapObserving {
		p.mergeGaps()
	}
	if p.lm != nil {
		for p.nextReb <= p.rebEnd && p.nextReb <= end {
			p.runRebalance()
			p.nextReb = p.nextReb.Add(p.rebInterval)
		}
	}
	return nil
}

// mergeGaps replays all partitions' buffered gap observations to the
// master policy ordered by (instant, channel), then copies the
// master's adapted state back into every replica.
func (p *parallelRun) mergeGaps() {
	for {
		best := -1
		for ch, g := range p.gapRecs {
			if g.pos >= len(g.buf) {
				continue
			}
			if best < 0 || g.buf[g.pos].at < p.gapRecs[best].buf[p.gapRecs[best].pos].at {
				best = ch
			}
		}
		if best < 0 {
			break
		}
		g := p.gapRecs[best]
		p.gapMaster.ObserveGap(g.buf[g.pos].gap)
		g.pos++
	}
	for _, g := range p.gapRecs {
		g.buf = g.buf[:0]
		g.pos = 0
		p.gapRepl.SyncReplica(g.Policy)
	}
}

// armRebalances switches the PL interval timer to barrier-driven
// execution: rebalance instants become forced rendezvous (capEnd) run
// in the Observe stage, mirroring scheduleRebalances' schedule — first
// at one interval, last at or before the trace end.
func (p *parallelRun) armRebalances(lm *layout.Manager, traceEnd sim.Time) {
	p.lm = lm
	p.rebInterval = lm.Interval()
	p.nextReb = sim.Time(p.rebInterval)
	p.rebEnd = traceEnd
}

// runRebalance executes one layout rebalance with the global busy set:
// a page in flight on any partition must not migrate.
func (p *parallelRun) runRebalance() {
	busy := p.busyScratch[:0]
	for _, ctl := range p.ctls {
		busy = append(busy, ctl.ActivePages())
	}
	p.busyScratch = busy
	p.lm.Rebalance(func(pg memsys.PageID) bool {
		for _, b := range busy {
			if b[pg] {
				return true
			}
		}
		return false
	})
}

// execute drives the shards until every event loop and input source
// drains (or ctx cancels).
func (p *parallelRun) execute(ctx context.Context, hooks sim.BarrierHooks) error {
	epoch := p.cfg.BarrierEpoch
	if epoch == 0 {
		epoch = defaultBarrierEpoch
	}
	be, err := sim.NewBarrierEngine(p.engs, epoch, p.cfg.Workers)
	if err != nil {
		return err
	}
	if p.channels > 1 {
		hooks.Barrier = p.barrier
		if p.gapObserving || p.lm != nil {
			hooks.Observe = p.observe
		}
		if p.lm != nil {
			hooks.CapEnd = p.capEnd
			// Pending rebalances count as input: the run must not end
			// while interval ticks the serial engine would still fire
			// remain (they migrate pages and charge energy even after
			// the trace drains).
			inner := hooks.NextInput
			hooks.NextInput = func() (sim.Time, bool) {
				var at sim.Time
				ok := false
				if inner != nil {
					at, ok = inner()
				}
				if p.nextReb <= p.rebEnd && (!ok || p.nextReb < at) {
					return p.nextReb, true
				}
				return at, ok
			}
		}
	}
	if !p.cfg.FixedEpoch {
		if p.channels == 1 {
			// A lone shard has no cross-shard state at all: every epoch
			// boundary is a no-op, so the whole run is one span. This is
			// what makes Workers on a single-channel topology near-free
			// (see Config.Workers).
			hooks.CrossAt = func() (sim.Time, bool) { return sim.MaxTime, true }
		} else {
			hooks.CrossAt = p.crossAt
			hooks.SpanCap = p.span.spanCap
		}
	}
	return be.Run(ctx, hooks)
}

// finish closes every partition's accounting over the shared metering
// window and merges the partition reports (ctls are in channel order,
// so the merge accumulates in global chip order).
func (p *parallelRun) finish(window sim.Duration, res *Result) *Result {
	var end sim.Time
	for _, ctl := range p.ctls {
		if e := ctl.Finish(sim.Time(window)); e > end {
			end = e
		}
	}
	res.Report = controller.MergeReports(p.cfg.Scheme, end, p.ctls...)
	return res
}

// appendSplit splits one record into channel-homogeneous sub-records
// appended to the per-channel slices: a processor access goes to its
// page's channel whole; a DMA record is cut at every channel change
// along its page run. Sub-records inherit the time and bus, so each
// partition's arrival order matches the global trace order restricted
// to it.
func appendSplit(out [][]trace.Record, r trace.Record, chanOf func(memsys.PageID) int) {
	if !r.Kind.IsDMA() {
		ch := chanOf(r.Page)
		out[ch] = append(out[ch], r)
		return
	}
	start := 0
	ch := chanOf(r.Page)
	for i := 1; i < int(r.Pages); i++ {
		if c := chanOf(r.Page + memsys.PageID(i)); c != ch {
			sub := r
			sub.Page = r.Page + memsys.PageID(start)
			sub.Pages = uint16(i - start)
			out[ch] = append(out[ch], sub)
			start, ch = i, c
		}
	}
	sub := r
	sub.Page = r.Page + memsys.PageID(start)
	sub.Pages = uint16(int(r.Pages) - start)
	out[ch] = append(out[ch], sub)
}

// finishParallel completes RunContext's in-memory path on the barrier
// engine. The trace is already validated and the controller config
// template (ccfg) carries the resolved TA.
func finishParallel(ctx context.Context, cfg Config, tr *trace.Trace, ccfg controller.Config, lm *layout.Manager, res *Result) (*Result, error) {
	p, err := newParallelRun(cfg, ccfg)
	if err != nil {
		return nil, err
	}
	hooks := sim.BarrierHooks{}
	switch {
	case p.channels == 1:
		p.engs[0].SetFeeder(&traceFeeder{ctl: p.ctls[0], records: tr.Records})
	case lm == nil:
		// Static mapping: split the whole trace up front into
		// per-channel feeders.
		split := make([][]trace.Record, p.channels)
		chanOf := channelOfPage(cfg, p.ctls[0].Mapper())
		for _, r := range tr.Records {
			appendSplit(split, r, chanOf)
		}
		feeders := make([]*traceFeeder, p.channels)
		for ch, eng := range p.engs {
			feeders[ch] = &traceFeeder{ctl: p.ctls[ch], records: split[ch]}
			eng.SetFeeder(feeders[ch])
		}
		p.nextArrival = func(dmaOnly bool) (sim.Time, bool) {
			best, any := sim.MaxTime, false
			for _, f := range feeders {
				if t, ok := f.nextRelevant(dmaOnly); ok {
					any = true
					if t < best {
						best = t
					}
				}
			}
			return best, any
		}
	default:
		// PL on multiple channels: the page→channel mapping changes at
		// rebalance rendezvous, so records cannot be split up front.
		// The Prepare hook stages each span's records into per-channel
		// buffers with the mapping current at stage time, which equals
		// the mapping at fire time because no span crosses a rebalance
		// instant (capEnd).
		feeders := make([]*bufFeeder, p.channels)
		for ch := range feeders {
			feeders[ch] = &bufFeeder{ctl: p.ctls[ch]}
			p.engs[ch].SetFeeder(feeders[ch])
		}
		chanOf := channelOfPage(cfg, p.ctls[0].Mapper())
		split := make([][]trace.Record, p.channels)
		idx := 0
		dmaIdx := 0
		hooks.NextInput = func() (sim.Time, bool) {
			if idx >= len(tr.Records) {
				return 0, false
			}
			return tr.Records[idx].Time, true
		}
		hooks.Prepare = func(end sim.Time) error {
			for idx < len(tr.Records) && tr.Records[idx].Time <= end {
				for ch := range split {
					split[ch] = split[ch][:0]
				}
				appendSplit(split, tr.Records[idx], chanOf)
				for ch, subs := range split {
					feeders[ch].buf = append(feeders[ch].buf, subs...)
				}
				idx++
			}
			return nil
		}
		p.nextArrival = func(dmaOnly bool) (sim.Time, bool) {
			best, any := sim.MaxTime, false
			for _, f := range feeders {
				if t, ok := f.nextRelevant(dmaOnly); ok {
					any = true
					if t < best {
						best = t
					}
				}
			}
			// Unstaged records: a monotone DMA-scan cursor over the
			// global slice from the staging position.
			if dmaIdx < idx {
				dmaIdx = idx
			}
			if !dmaOnly {
				if idx < len(tr.Records) {
					any = true
					if t := tr.Records[idx].Time; t < best {
						best = t
					}
				}
			} else {
				for dmaIdx < len(tr.Records) && !tr.Records[dmaIdx].Kind.IsDMA() {
					dmaIdx++
				}
				if dmaIdx < len(tr.Records) {
					any = true
					if t := tr.Records[dmaIdx].Time; t < best {
						best = t
					}
				}
			}
			return best, any
		}
	}
	traceEnd := sim.Time(tr.Duration())
	if lm != nil {
		if p.channels == 1 {
			// A sole shard runs the rebalance ticks exactly as the
			// serial engine does.
			scheduleRebalances(p.engs[0], p.ctls[0], lm, traceEnd)
		} else {
			p.armRebalances(lm, traceEnd)
		}
	}
	if err := p.execute(ctx, hooks); err != nil {
		return nil, err
	}
	window := cfg.MeterWindow
	if window == 0 {
		window = tr.Duration() + 2*sim.Millisecond
	}
	p.finish(window, res)
	if lm != nil {
		res.MigratedPages = lm.MigratedPages
		res.MigrationEnergyJ = lm.MigrationEnergyJ
		res.Rebalances = lm.Rebalances
	}
	return res, nil
}

// bufFeeder is traceFeeder over a buffer the barrier's Prepare hook
// refills: the coordinator stages each span's records into the owning
// shard before the shards run, so mid-span the shard pulls arrivals
// from local memory only. The buffer is compacted whenever it drains,
// keeping it at one span's worth of records.
type bufFeeder struct {
	ctl    *controller.Controller
	buf    []trace.Record
	pos    int
	dmaPos int
	nextID int64
}

func (f *bufFeeder) Peek() (sim.Time, int8, bool) {
	if f.pos >= len(f.buf) {
		return 0, 0, false
	}
	return f.buf[f.pos].Time, feederPrio, true
}

func (f *bufFeeder) Fire(e *sim.Engine) {
	now := e.Now()
	for f.pos < len(f.buf) && f.buf[f.pos].Time == now {
		r := f.buf[f.pos]
		f.pos++
		if r.Kind.IsDMA() {
			f.ctl.StartTransfer(dma.FromRecord(f.nextID, r))
			f.nextID++
		} else {
			f.ctl.ProcAccess(r.Page)
		}
	}
	if f.pos == len(f.buf) {
		f.buf = f.buf[:0]
		f.pos = 0
		f.dmaPos = 0
	}
}

// nextRelevant reports the earliest staged-but-undelivered record —
// every kind, or DMA records only — for the adaptive barrier's cross
// lookahead. The DMA scan cursor is monotone between compactions, so
// repeated probes cost amortized O(1).
func (f *bufFeeder) nextRelevant(dmaOnly bool) (sim.Time, bool) {
	if f.pos >= len(f.buf) {
		return 0, false
	}
	if !dmaOnly {
		return f.buf[f.pos].Time, true
	}
	if f.dmaPos < f.pos {
		f.dmaPos = f.pos
	}
	for f.dmaPos < len(f.buf) && !f.buf[f.dmaPos].Kind.IsDMA() {
		f.dmaPos++
	}
	if f.dmaPos >= len(f.buf) {
		return 0, false
	}
	return f.buf[f.dmaPos].Time, true
}

// finishParallelFile completes runFileContext on the barrier engine.
// The container is already validated and warmed. A single channel
// streams through the ordinary cursor feeder (bit-identical to the
// serial file path); multiple channels pull the cursor from the
// barrier loop's Prepare hook, which stages each span's records into
// per-shard buffers — the cursor stays single-threaded throughout.
func finishParallelFile(ctx context.Context, cfg Config, fr *trace.FileReader, sum trace.FileSummary, ccfg controller.Config, lm *layout.Manager, res *Result) (*Result, error) {
	p, err := newParallelRun(cfg, ccfg)
	if err != nil {
		return nil, err
	}
	hooks := sim.BarrierHooks{}
	cur := fr.Cursor()
	if p.channels == 1 {
		feeder := &fileFeeder{ctl: p.ctls[0], cur: cur}
		p.engs[0].SetFeeder(feeder)
	} else {
		feeders := make([]*bufFeeder, p.channels)
		for ch := range feeders {
			feeders[ch] = &bufFeeder{ctl: p.ctls[ch]}
			p.engs[ch].SetFeeder(feeders[ch])
		}
		chanOf := channelOfPage(cfg, p.ctls[0].Mapper())
		split := make([][]trace.Record, p.channels)
		hooks.NextInput = func() (sim.Time, bool) {
			r, ok := cur.Peek()
			if !ok {
				return 0, false
			}
			return r.Time, true
		}
		hooks.Prepare = func(end sim.Time) error {
			for {
				r, ok := cur.Peek()
				if !ok || r.Time > end {
					return nil
				}
				cur.Advance()
				for ch := range split {
					split[ch] = split[ch][:0]
				}
				appendSplit(split, r, chanOf)
				for ch, subs := range split {
					feeders[ch].buf = append(feeders[ch].buf, subs...)
				}
			}
		}
		p.nextArrival = func(dmaOnly bool) (sim.Time, bool) {
			best, any := sim.MaxTime, false
			for _, f := range feeders {
				if t, ok := f.nextRelevant(dmaOnly); ok {
					any = true
					if t < best {
						best = t
					}
				}
			}
			// The cursor's head bounds every unstaged record. It is
			// kind-blind (peeking ahead would force decoding), so it is
			// simply conservative for the dmaOnly case.
			if r, ok := cur.Peek(); ok {
				any = true
				if r.Time < best {
					best = r.Time
				}
			}
			return best, any
		}
	}
	traceEnd := sim.Time(sum.Duration)
	if lm != nil {
		if p.channels == 1 {
			scheduleRebalances(p.engs[0], p.ctls[0], lm, traceEnd)
		} else {
			p.armRebalances(lm, traceEnd)
		}
	}
	if err := p.execute(ctx, hooks); err != nil {
		return nil, err
	}
	if err := cur.Err(); err != nil {
		return nil, fmt.Errorf("core: streaming %s: %w", cfg.TraceFile, err)
	}
	window := cfg.MeterWindow
	if window == 0 {
		window = sum.Duration + 2*sim.Millisecond
	}
	p.finish(window, res)
	if lm != nil {
		res.MigratedPages = lm.MigratedPages
		res.MigrationEnergyJ = lm.MigrationEnergyJ
		res.Rebalances = lm.Rebalances
	}
	return res, nil
}
