// Parallel run assembly: one event loop per topology channel, driven
// in deterministic epoch-barrier lockstep by internal/sim's
// BarrierEngine (Config.Workers > 0).
//
// Each channel gets its own sim.Engine and its own channel-partitioned
// controller; within an epoch a shard touches only its own chips,
// flows, timers and slack pool, so shards share no state and the
// worker count cannot affect results. The one genuinely shared
// resource — I/O-bus bandwidth — is split across partitions at every
// epoch barrier with a demand-weighted max-min share (bus.EpochShares
// + Controller.Resync), single-threaded.
//
// With a single channel the barrier engine degenerates to the serial
// engine executed in epoch-sized chunks, and reports are bit-identical
// to the serial reference (the golden corpus cross-check in
// internal/experiments holds both paths to it). With multiple channels
// the epoch-barrier bus coupling IS the semantics: the serial engine
// reallocates globally at event granularity, which no conservative
// parallel schedule can reproduce, so multi-channel parallel runs are
// their own scheme — deterministic, worker-count-invariant, and
// cross-checked 2-and-4-workers-vs-1 instead. Channel-spanning DMA
// records are split into channel-homogeneous sub-transfers that
// proceed concurrently (the serial engine walks them sequentially);
// Transfers and service-time stats count the sub-transfers.
package core

import (
	"context"
	"fmt"

	"dmamem/internal/bus"
	"dmamem/internal/controller"
	"dmamem/internal/dma"
	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// defaultBarrierEpoch balances synchronization overhead against how
// stale a partition's bus share may grow: 50 us is a few dozen
// transfer service times at PCI-X rates.
const defaultBarrierEpoch = 50 * sim.Microsecond

// parallelRun is the assembled shard set plus the barrier-side bus
// bookkeeping.
type parallelRun struct {
	cfg      Config
	channels int
	engs     []*sim.Engine
	ctls     []*controller.Controller

	// Bus-share state (channels > 1): fullCaps is every bus at full
	// bandwidth; shares holds each partition's current allocation,
	// counts and next are barrier scratch.
	fullCaps []float64
	shares   [][]float64
	counts   [][]int
	next     [][]float64
}

// channelOfPage resolves the channel serving a page under the static
// mapping. Only used when channels > 1, where PL is rejected, so the
// mapping cannot change mid-run and records can be split up front.
func channelOfPage(cfg Config, mapper memsys.Mapper) func(memsys.PageID) int {
	geo := cfg.Geometry
	topo := cfg.Topology
	return func(p memsys.PageID) int {
		return topo.ChannelOfChip(geo, mapper.ChipOf(p))
	}
}

// newParallelRun builds the per-channel engines and partitioned
// controllers from the serial controller config template.
func newParallelRun(cfg Config, ccfg controller.Config) (*parallelRun, error) {
	if cfg.PerEventFeeder {
		return nil, fmt.Errorf("core: Workers and PerEventFeeder are mutually exclusive; the parallel engine feeds every shard through the batched feeder")
	}
	if cfg.BarrierEpoch < 0 {
		return nil, fmt.Errorf("core: BarrierEpoch %v is negative", cfg.BarrierEpoch)
	}
	channels := cfg.Topology.NumChannels()
	if channels > 1 {
		if cfg.PL != nil {
			return nil, fmt.Errorf("core: PL needs the serial engine on a %d-channel topology; its layout state is global, not per-channel", channels)
		}
		if _, ok := cfg.Policy.(policy.GapObserver); ok {
			return nil, fmt.Errorf("core: policy %T observes idle gaps globally; multi-channel parallel runs need a channel-pure policy", cfg.Policy)
		}
	}
	p := &parallelRun{cfg: cfg, channels: channels}
	if channels > 1 {
		p.fullCaps = make([]float64, cfg.Buses.Count)
		for i := range p.fullCaps {
			p.fullCaps[i] = cfg.Buses.Bandwidth
		}
		p.shares = make([][]float64, channels)
		p.counts = make([][]int, channels)
		p.next = make([][]float64, channels)
		for ch := range p.shares {
			p.shares[ch] = make([]float64, cfg.Buses.Count)
			p.counts[ch] = make([]int, cfg.Buses.Count)
			p.next[ch] = make([]float64, cfg.Buses.Count)
		}
		// The opening allocation is the zero-demand split: every
		// partition idle, each holding an even reserve share.
		bus.EpochShares(p.fullCaps, p.counts, p.shares)
	}
	for ch := 0; ch < channels; ch++ {
		eng := sim.New()
		if cfg.HeapScheduler {
			eng = sim.NewWithHeap()
		}
		pcfg := ccfg
		if channels > 1 {
			caps := make([]float64, cfg.Buses.Count)
			copy(caps, p.shares[ch])
			pcfg.Partition = &controller.Partition{Channel: ch, BusCaps: caps}
		}
		ctl, err := controller.New(eng, pcfg)
		if err != nil {
			return nil, err
		}
		p.engs = append(p.engs, eng)
		p.ctls = append(p.ctls, ctl)
	}
	return p, nil
}

// barrier re-splits the shared buses by the demand each partition
// reported for the epoch that just ended. Runs single-threaded between
// epochs; Resync is skipped while a partition's shares are unchanged,
// so an all-idle simulation inserts no accounting boundaries at all.
func (p *parallelRun) barrier(sim.Time) error {
	for ch, ctl := range p.ctls {
		ctl.BusFlowCounts(p.counts[ch])
	}
	bus.EpochShares(p.fullCaps, p.counts, p.next)
	for ch, ctl := range p.ctls {
		changed := false
		for b, s := range p.next[ch] {
			if s != p.shares[ch][b] {
				changed = true
				break
			}
		}
		if changed {
			copy(p.shares[ch], p.next[ch])
			ctl.Resync(p.shares[ch])
		}
	}
	return nil
}

// execute drives the shards until every event loop and input source
// drains (or ctx cancels).
func (p *parallelRun) execute(ctx context.Context, hooks sim.BarrierHooks) error {
	epoch := p.cfg.BarrierEpoch
	if epoch == 0 {
		epoch = defaultBarrierEpoch
	}
	be, err := sim.NewBarrierEngine(p.engs, epoch, p.cfg.Workers)
	if err != nil {
		return err
	}
	if p.channels > 1 {
		hooks.Barrier = p.barrier
	}
	return be.Run(ctx, hooks)
}

// finish closes every partition's accounting over the shared metering
// window and merges the partition reports (ctls are in channel order,
// so the merge accumulates in global chip order).
func (p *parallelRun) finish(window sim.Duration, res *Result) *Result {
	var end sim.Time
	for _, ctl := range p.ctls {
		if e := ctl.Finish(sim.Time(window)); e > end {
			end = e
		}
	}
	res.Report = controller.MergeReports(p.cfg.Scheme, end, p.ctls...)
	return res
}

// appendSplit splits one record into channel-homogeneous sub-records
// appended to the per-channel slices: a processor access goes to its
// page's channel whole; a DMA record is cut at every channel change
// along its page run. Sub-records inherit the time and bus, so each
// partition's arrival order matches the global trace order restricted
// to it.
func appendSplit(out [][]trace.Record, r trace.Record, chanOf func(memsys.PageID) int) {
	if !r.Kind.IsDMA() {
		ch := chanOf(r.Page)
		out[ch] = append(out[ch], r)
		return
	}
	start := 0
	ch := chanOf(r.Page)
	for i := 1; i < int(r.Pages); i++ {
		if c := chanOf(r.Page + memsys.PageID(i)); c != ch {
			sub := r
			sub.Page = r.Page + memsys.PageID(start)
			sub.Pages = uint16(i - start)
			out[ch] = append(out[ch], sub)
			start, ch = i, c
		}
	}
	sub := r
	sub.Page = r.Page + memsys.PageID(start)
	sub.Pages = uint16(int(r.Pages) - start)
	out[ch] = append(out[ch], sub)
}

// finishParallel completes RunContext's in-memory path on the barrier
// engine. The trace is already validated and the controller config
// template (ccfg) carries the resolved TA.
func finishParallel(ctx context.Context, cfg Config, tr *trace.Trace, ccfg controller.Config, lm *layout.Manager, res *Result) (*Result, error) {
	p, err := newParallelRun(cfg, ccfg)
	if err != nil {
		return nil, err
	}
	if p.channels == 1 {
		p.engs[0].SetFeeder(&traceFeeder{ctl: p.ctls[0], records: tr.Records})
	} else {
		split := make([][]trace.Record, p.channels)
		chanOf := channelOfPage(cfg, p.ctls[0].Mapper())
		for _, r := range tr.Records {
			appendSplit(split, r, chanOf)
		}
		for ch, eng := range p.engs {
			eng.SetFeeder(&traceFeeder{ctl: p.ctls[ch], records: split[ch]})
		}
	}
	if lm != nil {
		// PL implies a single channel (newParallelRun rejected the rest);
		// the rebalance ticks live on the sole shard exactly as on the
		// serial engine.
		scheduleRebalances(p.engs[0], p.ctls[0], lm, sim.Time(tr.Duration()))
	}
	if err := p.execute(ctx, sim.BarrierHooks{}); err != nil {
		return nil, err
	}
	window := cfg.MeterWindow
	if window == 0 {
		window = tr.Duration() + 2*sim.Millisecond
	}
	p.finish(window, res)
	if lm != nil {
		res.MigratedPages = lm.MigratedPages
		res.MigrationEnergyJ = lm.MigrationEnergyJ
		res.Rebalances = lm.Rebalances
	}
	return res, nil
}

// bufFeeder is traceFeeder over a buffer the barrier's Prepare hook
// refills: the coordinator stages each epoch's records into the owning
// shard before the shards run, so mid-epoch the shard pulls arrivals
// from local memory only. The buffer is compacted whenever it drains,
// keeping it at one epoch's worth of records.
type bufFeeder struct {
	ctl    *controller.Controller
	buf    []trace.Record
	pos    int
	nextID int64
}

func (f *bufFeeder) Peek() (sim.Time, int8, bool) {
	if f.pos >= len(f.buf) {
		return 0, 0, false
	}
	return f.buf[f.pos].Time, feederPrio, true
}

func (f *bufFeeder) Fire(e *sim.Engine) {
	now := e.Now()
	for f.pos < len(f.buf) && f.buf[f.pos].Time == now {
		r := f.buf[f.pos]
		f.pos++
		if r.Kind.IsDMA() {
			f.ctl.StartTransfer(dma.FromRecord(f.nextID, r))
			f.nextID++
		} else {
			f.ctl.ProcAccess(r.Page)
		}
	}
	if f.pos == len(f.buf) {
		f.buf = f.buf[:0]
		f.pos = 0
	}
}

// finishParallelFile completes runFileContext on the barrier engine.
// The container is already validated and warmed. A single channel
// streams through the ordinary cursor feeder (bit-identical to the
// serial file path); multiple channels pull the cursor from the
// barrier loop's Prepare hook, which stages each epoch's records into
// per-shard buffers — the cursor stays single-threaded throughout.
func finishParallelFile(ctx context.Context, cfg Config, fr *trace.FileReader, sum trace.FileSummary, ccfg controller.Config, lm *layout.Manager, res *Result) (*Result, error) {
	p, err := newParallelRun(cfg, ccfg)
	if err != nil {
		return nil, err
	}
	hooks := sim.BarrierHooks{}
	cur := fr.Cursor()
	if p.channels == 1 {
		feeder := &fileFeeder{ctl: p.ctls[0], cur: cur}
		p.engs[0].SetFeeder(feeder)
	} else {
		feeders := make([]*bufFeeder, p.channels)
		for ch := range feeders {
			feeders[ch] = &bufFeeder{ctl: p.ctls[ch]}
			p.engs[ch].SetFeeder(feeders[ch])
		}
		chanOf := channelOfPage(cfg, p.ctls[0].Mapper())
		split := make([][]trace.Record, p.channels)
		hooks.NextInput = func() (sim.Time, bool) {
			r, ok := cur.Peek()
			if !ok {
				return 0, false
			}
			return r.Time, true
		}
		hooks.Prepare = func(end sim.Time) error {
			for {
				r, ok := cur.Peek()
				if !ok || r.Time > end {
					return nil
				}
				cur.Advance()
				for ch := range split {
					split[ch] = split[ch][:0]
				}
				appendSplit(split, r, chanOf)
				for ch, subs := range split {
					feeders[ch].buf = append(feeders[ch].buf, subs...)
				}
			}
		}
	}
	if lm != nil {
		scheduleRebalances(p.engs[0], p.ctls[0], lm, sim.Time(sum.Duration))
	}
	if err := p.execute(ctx, hooks); err != nil {
		return nil, err
	}
	if err := cur.Err(); err != nil {
		return nil, fmt.Errorf("core: streaming %s: %w", cfg.TraceFile, err)
	}
	window := cfg.MeterWindow
	if window == 0 {
		window = sum.Duration + 2*sim.Millisecond
	}
	p.finish(window, res)
	if lm != nil {
		res.MigratedPages = lm.MigratedPages
		res.MigrationEnergyJ = lm.MigrationEnergyJ
		res.Rebalances = lm.Rebalances
	}
	return res, nil
}
