package core

import (
	"math"
	"testing"

	"dmamem/internal/bus"
	"dmamem/internal/controller"
	"dmamem/internal/energy"
	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// stTrace returns a short Synthetic-St trace shared by tests.
func stTrace(t *testing.T, d sim.Duration) *trace.Trace {
	t.Helper()
	w, err := SyntheticStWorkload(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	return w.Trace
}

func TestRunBaseline(t *testing.T) {
	tr := stTrace(t, 10*sim.Millisecond)
	res, err := Run(Config{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Scheme != "baseline" {
		t.Fatalf("scheme = %q", r.Scheme)
	}
	if r.Transfers == 0 {
		t.Fatal("no transfers simulated")
	}
	if r.TotalEnergy() <= 0 {
		t.Fatal("no energy")
	}
	// A lone-stream-dominated baseline sits near uf = 1/3 (some
	// arrivals overlap naturally, so a bit above).
	if r.UtilizationFactor < 0.30 || r.UtilizationFactor > 0.55 {
		t.Fatalf("baseline uf = %g, want ~1/3", r.UtilizationFactor)
	}
	// Figure 2(b) shape: active-idle-DMA exceeds serving energy.
	if r.Energy[energy.CatIdleDMA] <= r.Energy[energy.CatServing] {
		t.Fatalf("idle (%g) should exceed serving (%g)",
			r.Energy[energy.CatIdleDMA], r.Energy[energy.CatServing])
	}
}

func TestRunRejectsBadTraces(t *testing.T) {
	if _, err := Run(Config{}, &trace.Trace{Name: "empty"}); err == nil {
		t.Error("empty trace accepted")
	}
	bad := &trace.Trace{Records: []trace.Record{
		{Time: 0, Kind: trace.DMARead, Pages: 4, Page: memsys.PageID(memsys.Default().TotalPages() - 1)},
	}}
	if _, err := Run(Config{}, bad); err == nil {
		t.Error("out-of-range page accepted")
	}
	unordered := &trace.Trace{Records: []trace.Record{
		{Time: 10, Kind: trace.DMARead, Pages: 1},
		{Time: 5, Kind: trace.DMARead, Pages: 1},
	}}
	if _, err := Run(Config{}, unordered); err == nil {
		t.Error("unordered trace accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	tr := stTrace(t, 5*sim.Millisecond)
	cfg := Config{TA: controller.DefaultTA(0), CPLimit: 0.1}
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.TotalEnergy() != b.Report.TotalEnergy() {
		t.Fatal("nondeterministic energy")
	}
	if a.Mu != b.Mu {
		t.Fatal("nondeterministic mu")
	}
}

func TestCPLimitDerivesMu(t *testing.T) {
	tr := stTrace(t, 5*sim.Millisecond)
	cfg := Config{TA: controller.DefaultTA(0), CPLimit: 0.10}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mu <= 0 {
		t.Fatalf("mu = %g, want positive", res.Mu)
	}
	// Doubling the limit doubles mu.
	cfg.CPLimit = 0.20
	res2, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Mu-2*res.Mu) > 1e-9*res2.Mu {
		t.Fatalf("mu not linear in CP-Limit: %g vs %g", res.Mu, res2.Mu)
	}
}

func TestExplicitMuNotOverridden(t *testing.T) {
	tr := stTrace(t, 2*sim.Millisecond)
	cfg := Config{TA: controller.DefaultTA(7), CPLimit: 0.10}
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mu != 7 {
		t.Fatalf("explicit mu overridden: %g", res.Mu)
	}
}

func TestTASavesEnergyOnSyntheticSt(t *testing.T) {
	tr := stTrace(t, 20*sim.Millisecond)
	base, ta, savings, err := RunBaselinePair(
		Config{},
		Config{TA: controller.DefaultTA(0), CPLimit: 0.10},
		tr)
	if err != nil {
		t.Fatal(err)
	}
	if savings <= 0 {
		t.Fatalf("DMA-TA saved %.2f%% (base %v, ta %v)",
			100*savings, base.Report.TotalEnergy(), ta.Report.TotalEnergy())
	}
	if ta.Report.UtilizationFactor <= base.Report.UtilizationFactor {
		t.Fatalf("uf did not improve: %g vs %g",
			ta.Report.UtilizationFactor, base.Report.UtilizationFactor)
	}
}

func TestTAPLSavesMoreThanTA(t *testing.T) {
	tr := stTrace(t, 20*sim.Millisecond)
	pl := layout.DefaultConfig()
	pl.Interval = 5 * sim.Millisecond // several rebalances within the short test trace
	_, ta, sTA, err := RunBaselinePair(
		Config{},
		Config{TA: controller.DefaultTA(0), CPLimit: 0.10},
		tr)
	if err != nil {
		t.Fatal(err)
	}
	_, tapl, sTAPL, err := RunBaselinePair(
		Config{},
		Config{TA: controller.DefaultTA(0), CPLimit: 0.10, PL: &pl},
		tr)
	if err != nil {
		t.Fatal(err)
	}
	if sTAPL <= sTA {
		t.Fatalf("DMA-TA-PL (%.2f%%) did not beat DMA-TA (%.2f%%)", 100*sTAPL, 100*sTA)
	}
	if tapl.Report.UtilizationFactor <= ta.Report.UtilizationFactor {
		t.Fatalf("PL did not raise uf: %g vs %g",
			tapl.Report.UtilizationFactor, ta.Report.UtilizationFactor)
	}
	if tapl.Rebalances == 0 {
		t.Fatal("PL never rebalanced")
	}
}

func TestCPLimitRespected(t *testing.T) {
	// The client-perceived degradation of DMA-TA must stay within the
	// requested CP-Limit, measured against the no-power-management
	// reference.
	tr := stTrace(t, 20*sim.Millisecond)
	window := tr.Duration() + 2*sim.Millisecond
	ref, err := Run(Config{Policy: policy.AlwaysActive{}, Scheme: "no-pm", MeterWindow: window}, tr)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 0.10
	res, err := Run(Config{TA: controller.DefaultTA(0), CPLimit: limit, MeterWindow: window}, tr)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Report.ClientDegradation(ref.Report, res.Calibration)
	if got > limit {
		t.Fatalf("client degradation %.3f exceeds CP-Limit %.2f", got, limit)
	}
}

func TestSchemeLabels(t *testing.T) {
	pl := layout.DefaultConfig()
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "baseline"},
		{Config{TA: controller.DefaultTA(1)}, "dma-ta"},
		{Config{TA: controller.DefaultTA(1), PL: &pl}, "dma-ta-pl"},
		{Config{Scheme: "custom"}, "custom"},
	}
	tr := stTrace(t, 1*sim.Millisecond)
	for _, c := range cases {
		res, err := Run(c.cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Scheme != c.want {
			t.Fatalf("scheme = %q, want %q", res.Report.Scheme, c.want)
		}
	}
}

func TestDbWorkloadRuns(t *testing.T) {
	w, err := SyntheticDbWorkload(3*sim.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{}, w.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Energy[energy.CatProcServing] <= 0 {
		t.Fatal("processor serving energy missing")
	}
}

func TestProcAccessesReduceSavings(t *testing.T) {
	// Figure 9's effect: more processor accesses per transfer ->
	// smaller TA savings, because the CPU consumes the idle cycles TA
	// would reclaim.
	gen := func(perXfer int) *trace.Trace {
		cfg := synth.DefaultDb()
		cfg.St.Duration = 15 * sim.Millisecond
		cfg.ProcPerTransfer = perXfer
		cfg.ProcRatePerMs = 0
		tr, err := synth.GenerateDb(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	pl := layout.DefaultConfig()
	savingsFor := func(tr *trace.Trace) float64 {
		_, _, s, err := RunBaselinePair(Config{},
			Config{TA: controller.DefaultTA(0), CPLimit: 0.10, PL: &pl}, tr)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	low := savingsFor(gen(1))
	high := savingsFor(gen(400))
	if high >= low {
		t.Fatalf("savings with heavy proc traffic (%.2f%%) not below light (%.2f%%)",
			100*high, 100*low)
	}
}

func TestCalibrateFallbacks(t *testing.T) {
	bare := &trace.Trace{Records: []trace.Record{{Time: 0, Kind: trace.DMARead, Pages: 1}}}
	cal := Calibrate(bare, memsys.Default(), bus.DefaultConfig())
	if err := cal.Validate(); err != nil {
		t.Fatal(err)
	}
	if cal.MeanClientResponse != 500*sim.Microsecond {
		t.Fatalf("fallback response = %v", cal.MeanClientResponse)
	}
	if cal.TransfersPerRequest != 1 {
		t.Fatalf("fallback transfers = %g", cal.TransfersPerRequest)
	}
}
