package core

// System-level invariant tests: random but valid traces pushed through
// every scheme must satisfy conservation and ordering properties
// regardless of the workload's shape.

import (
	"math"
	"testing"
	"testing/quick"

	"dmamem/internal/controller"
	"dmamem/internal/energy"
	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// randomTrace builds a structurally valid trace from a seed: Poisson
// DMA arrivals with random sizes/buses plus optional processor
// accesses.
func randomTrace(seed uint64, withProc bool) *trace.Trace {
	rng := synth.NewRNG(seed)
	tr := &trace.Trace{Name: "fuzz"}
	maxPage := memsys.Default().TotalPages()
	now := sim.Time(0)
	n := 50 + rng.Intn(300)
	for i := 0; i < n; i++ {
		now = now.Add(sim.Duration(rng.Exp(10e-6) * 1e12))
		if withProc && rng.Float64() < 0.5 {
			tr.Records = append(tr.Records, trace.Record{
				Time: now, Kind: trace.ProcRead, Source: trace.SrcProcessor,
				Page: memsys.PageID(rng.Intn(maxPage)),
			})
			continue
		}
		pages := 1 + rng.Intn(8)
		page := rng.Intn(maxPage - pages)
		kind := trace.DMARead
		if rng.Float64() < 0.3 {
			kind = trace.DMAWrite
		}
		tr.Records = append(tr.Records, trace.Record{
			Time: now, Kind: kind, Source: trace.SrcNetwork,
			Bus: uint8(rng.Intn(3)), Pages: uint16(pages), Page: memsys.PageID(page),
		})
	}
	tr.Meta.MeanClientResponse = sim.Millisecond
	tr.Meta.TransfersPerClientRequest = 1
	return tr
}

// TestQuickSchemesNeverPanic pushes random traces through baseline,
// DMA-TA and DMA-TA-PL and checks structural invariants of the
// reports.
func TestQuickSchemesNeverPanic(t *testing.T) {
	pl := layout.DefaultConfig()
	pl.Interval = 500 * sim.Microsecond
	schemes := []Config{
		{},
		{TA: controller.DefaultTA(0), CPLimit: 0.10},
		{TA: controller.DefaultTA(0), CPLimit: 0.10, PL: &pl},
	}
	f := func(seed uint64, withProc bool) bool {
		tr := randomTrace(seed, withProc)
		if len(tr.Records) == 0 {
			return true
		}
		st := trace.Analyze(tr)
		for _, cfg := range schemes {
			if cfg.TA != nil && st.DMATransfers == 0 {
				continue // nothing to calibrate against
			}
			res, err := Run(cfg, tr)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			r := res.Report
			// Energy within the physical envelope.
			window := r.SimulatedTime.Seconds()
			floor := 32 * energy.PowerdownPower * window
			ceiling := 32 * 0.35 * window // active + micro-nap overhead headroom
			total := r.TotalEnergy()
			if total < floor*0.99 || total > ceiling || math.IsNaN(total) {
				t.Logf("seed %d: energy %g outside [%g, %g]", seed, total, floor, ceiling)
				return false
			}
			// Serving energy matches the bytes moved (sub-byte flow
			// completion residues allow a tiny relative slack).
			wantServing := float64(st.DMAPages) * 8192 / 3.2e9 * energy.ActivePower
			if math.Abs(r.Energy[energy.CatServing]-wantServing)/wantServing > 1e-4 {
				t.Logf("seed %d: serving %g want %g", seed, r.Energy[energy.CatServing], wantServing)
				return false
			}
			// Every transfer completed.
			if r.Transfers != st.DMATransfers {
				t.Logf("seed %d: %d of %d transfers", seed, r.Transfers, st.DMATransfers)
				return false
			}
			// uf in (0, 1].
			if st.DMATransfers > 0 && (r.UtilizationFactor <= 0 || r.UtilizationFactor > 1.000001) {
				t.Logf("seed %d: uf %g", seed, r.UtilizationFactor)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickProcEnergyConserved checks that processor service energy
// equals exactly accesses x 20 ns x active power under every scheme.
func TestQuickProcEnergyConserved(t *testing.T) {
	pl := layout.DefaultConfig()
	pl.Interval = 500 * sim.Microsecond
	f := func(seed uint64) bool {
		tr := randomTrace(seed, true)
		st := trace.Analyze(tr)
		if st.ProcAccesses == 0 || st.DMATransfers == 0 {
			return true
		}
		want := float64(st.ProcAccesses) * 20e-9 * energy.ActivePower
		for _, cfg := range []Config{{}, {TA: controller.DefaultTA(0), CPLimit: 0.10, PL: &pl}} {
			res, err := Run(cfg, tr)
			if err != nil {
				return false
			}
			got := res.Report.Energy[energy.CatProcServing]
			if math.Abs(got-want)/want > 1e-6 {
				t.Logf("seed %d: proc %g want %g", seed, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSchemeOrderingAcrossSeeds verifies the paper's headline ordering
// (baseline >= DMA-TA >= DMA-TA-PL in energy) holds across seeds on
// the synthetic storage workload, not just the default one.
func TestSchemeOrderingAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := synth.DefaultSt()
		cfg.Duration = 15 * sim.Millisecond
		cfg.Seed = seed
		tr, err := synth.GenerateSt(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pl := layout.DefaultConfig()
		_, _, sTA, err := RunBaselinePair(Config{},
			Config{TA: controller.DefaultTA(0), CPLimit: 0.10}, tr)
		if err != nil {
			t.Fatal(err)
		}
		_, _, sPL, err := RunBaselinePair(Config{},
			Config{TA: controller.DefaultTA(0), CPLimit: 0.10, PL: &pl}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if sPL <= 0 {
			t.Errorf("seed %d: DMA-TA-PL saved %.2f%%", seed, 100*sPL)
		}
		if sPL < sTA-0.01 {
			t.Errorf("seed %d: PL (%.2f%%) below TA (%.2f%%)", seed, 100*sPL, 100*sTA)
		}
	}
}
