package core

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dmamem/internal/controller"
	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// plCfg returns the paper's PL defaults with the given group count.
func plCfg(groups int) *layout.Config {
	cfg := layout.DefaultConfig()
	cfg.Groups = groups
	return &cfg
}

// saveDMT writes a trace to a temp .dmt file and returns its path.
func saveDMT(t *testing.T, tr *trace.Trace, chunk int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.dmt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteDMT(f, trace.WriterOptions{ChunkRecords: chunk}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunFileMatchesRunMemory pins the tentpole's gate at the core
// level: a file-backed run must produce a report (and calibration, and
// layout statistics) deeply equal to the in-memory run of the same
// records, for every scheme and for chunk sizes that exercise many
// chunk boundaries as well as a single chunk.
func TestRunFileMatchesRunMemory(t *testing.T) {
	tr := stTrace(t, 10*sim.Millisecond)
	schemes := map[string]Config{
		"baseline":  {},
		"dma-ta":    {TA: controller.DefaultTA(0), CPLimit: 0.10},
		"dma-ta-pl": {TA: controller.DefaultTA(0), CPLimit: 0.10, PL: plCfg(2)},
	}
	for _, chunk := range []int{7, 4096} {
		path := saveDMT(t, tr, chunk)
		for name, cfg := range schemes {
			mem, err := Run(cfg, tr)
			if err != nil {
				t.Fatalf("%s in-memory: %v", name, err)
			}
			fcfg := cfg
			fcfg.TraceFile = path
			file, err := Run(fcfg, nil)
			if err != nil {
				t.Fatalf("%s file-backed (chunk %d): %v", name, chunk, err)
			}
			if !reflect.DeepEqual(mem, file) {
				t.Errorf("%s (chunk %d): file-backed result differs from in-memory\nmem:  %+v\nfile: %+v",
					name, chunk, mem, file)
			}
		}
	}
}

// TestRunFileHeapSchedulerMatches covers the scheduler cross-check
// knob on the file path too.
func TestRunFileHeapSchedulerMatches(t *testing.T) {
	tr := stTrace(t, 5*sim.Millisecond)
	path := saveDMT(t, tr, 64)
	cfg := Config{TA: controller.DefaultTA(0), CPLimit: 0.10, TraceFile: path, HeapScheduler: true}
	file, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := Config{TA: controller.DefaultTA(0), CPLimit: 0.10, HeapScheduler: true}
	mem, err := Run(mcfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mem, file) {
		t.Fatal("heap-scheduler file-backed result differs from in-memory")
	}
}

// TestRunBaselinePairFileBacked checks both pair runners accept a nil
// trace with TraceFile configs and agree with the in-memory pair.
func TestRunBaselinePairFileBacked(t *testing.T) {
	tr := stTrace(t, 5*sim.Millisecond)
	path := saveDMT(t, tr, 512)
	base := Config{TraceFile: path}
	tech := Config{TraceFile: path, TA: controller.DefaultTA(0), CPLimit: 0.10}
	fb, ft, fs, err := RunBaselinePair(base, tech, nil)
	if err != nil {
		t.Fatal(err)
	}
	mb, mt, ms, err := RunBaselinePair(Config{}, Config{TA: controller.DefaultTA(0), CPLimit: 0.10}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mb, fb) || !reflect.DeepEqual(mt, ft) || ms != fs {
		t.Fatal("file-backed pair differs from in-memory pair")
	}
	pb, pt, ps, err := RunBaselinePairParallel(nil, base, tech, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pb, fb) || !reflect.DeepEqual(pt, ft) || ps != fs {
		t.Fatal("parallel file-backed pair differs from sequential")
	}
}

// TestRunFileErrors pins the loud failure modes of the file path.
func TestRunFileErrors(t *testing.T) {
	if _, err := Run(Config{}, nil); err == nil || !strings.Contains(err.Error(), "TraceFile") {
		t.Fatalf("nil trace without TraceFile: %v", err)
	}
	tr := stTrace(t, sim.Millisecond)
	path := saveDMT(t, tr, 64)
	if _, err := Run(Config{TraceFile: path}, tr); err == nil {
		t.Fatal("both trace and TraceFile accepted")
	}
	if _, err := Run(Config{TraceFile: path, PerEventFeeder: true}, nil); err == nil {
		t.Fatal("PerEventFeeder with TraceFile accepted")
	}
	if _, err := Run(Config{TraceFile: filepath.Join(t.TempDir(), "missing.dmt")}, nil); err == nil {
		t.Fatal("missing file accepted")
	}

	// Empty container.
	empty := saveDMT(t, &trace.Trace{Name: "empty"}, 64)
	if _, err := Run(Config{TraceFile: empty}, nil); err == nil || !strings.Contains(err.Error(), "empty trace") {
		t.Fatalf("empty container: %v", err)
	}

	// Semantic violations the codec representation allows must fail
	// with the in-memory path's wording.
	zero := &trace.Trace{Name: "zdma", Records: []trace.Record{{Time: 0, Kind: trace.DMARead, Pages: 0}}}
	if _, err := Run(Config{TraceFile: saveDMT(t, zero, 64)}, nil); err == nil || !strings.Contains(err.Error(), "zero-page DMA") {
		t.Fatalf("zero-page DMA: %v", err)
	}
	oob := &trace.Trace{Name: "oob", Records: []trace.Record{
		{Time: 0, Kind: trace.DMARead, Pages: 4, Page: memsys.PageID(memsys.Default().TotalPages() - 1)},
	}}
	if _, err := Run(Config{TraceFile: saveDMT(t, oob, 64)}, nil); err == nil || !strings.Contains(err.Error(), "outside memory") {
		t.Fatalf("out-of-range page: %v", err)
	}

	// A truncated container must fail loudly, not simulate a prefix.
	full := saveDMT(t, stTrace(t, sim.Millisecond), 8)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.dmt")
	if err := os.WriteFile(cut, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{TraceFile: cut}, nil); err == nil {
		t.Fatal("truncated container accepted")
	}
}
