// Package core assembles the full simulator: it feeds a memory-access
// trace through the controller, schedules popularity-based layout
// rebalances, derives the DMA-TA slack parameter mu from a CP-Limit,
// and produces the evaluation's reports.
package core

import (
	"context"
	"fmt"

	"dmamem/internal/bus"
	"dmamem/internal/controller"
	"dmamem/internal/dma"
	"dmamem/internal/energy"
	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/metrics"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// Config selects what to simulate. The zero value plus a trace gives
// the paper's baseline: 32-chip RDRAM, three PCI-X buses, the dynamic
// threshold policy, interleaved layout, no DMA-aware techniques.
type Config struct {
	// Geometry of the memory system; zero means memsys.Default().
	Geometry memsys.Geometry
	// Topology optionally groups the chips into independently clocked
	// DDR-style channels with channel-interleaved page mapping. The
	// zero value is the legacy single-channel behavior, bit-identical
	// to builds that predate the field.
	Topology memsys.Topology
	// Buses of the I/O subsystem; zero means bus.DefaultConfig().
	Buses bus.Config
	// Policy is the low-level power manager; nil means the dynamic
	// threshold policy (the paper's baseline).
	Policy policy.Policy
	// TA enables temporal alignment. If TA.Mu is zero and CPLimit is
	// set, Mu is derived from the trace calibration.
	TA *controller.TAConfig
	// CPLimit is the client-perceived response-time degradation bound
	// used to derive Mu (e.g. 0.10 for the paper's 10%).
	CPLimit float64
	// PL enables popularity-based layout.
	PL *layout.Config
	// Mapper overrides the static baseline layout (nil = interleaved).
	// Ignored when PL is set.
	Mapper memsys.Mapper
	// Tech selects the memory technology by registry name ("rdram",
	// "ddr400", "ddr3-1600", "ddr4-2400", "lpddr4", or an alias).
	// Empty means MemSpec if set, else the registry default (the
	// paper's RDRAM part). Unknown names error loudly, listing the
	// registered technologies. When the geometry is defaulted, the
	// chip bandwidth follows the resolved model.
	Tech string
	// MemSpec selects the memory technology by explicit legacy 4-state
	// spec; it is converted to its energy.Model form and produces
	// bit-identical reports to registering the same numbers. Mutually
	// exclusive with Tech.
	MemSpec *energy.Spec
	// MeterWindow fixes the energy metering window; zero means the
	// trace duration plus 2 ms of drain. Comparisons between schemes
	// must use equal windows.
	MeterWindow sim.Duration
	// WarmupFraction of the trace feeds the layout manager's counters
	// before the metered run, modelling a server whose layout reached
	// popularity steady state long before the measured window (a trace
	// covers milliseconds of a server that has been running for days,
	// so the counters have seen the popularity distribution many times
	// over). The warm-up rebalance is uncharged; in-run rebalances and
	// their migrations are charged in full. Default 1.0 (two-pass).
	WarmupFraction float64
	// Scheme labels the report; empty derives "baseline"/"dma-ta"/
	// "dma-ta-pl" from TA and PL.
	Scheme string
	// FullScanAccounting makes the controller charge every active chip
	// on every event instead of using its dirty-set accounting.
	// Results are bit-identical either way; the knob exists for the
	// cross-check test and debugging.
	FullScanAccounting bool
	// HeapScheduler backs the engine with the reference binary-heap
	// event store (O(log n) operations) instead of the default
	// hierarchical timer wheel (amortized O(1)). Results are
	// bit-identical either way; the knob exists for the cross-check
	// test and debugging, mirroring FullScanAccounting.
	HeapScheduler bool
	// PerEventFeeder delivers trace records through a self-advancing
	// engine event per distinct record timestamp instead of the
	// default batched cursor feeder that bypasses the scheduler.
	// Results are bit-identical either way (one engine step per
	// distinct timestamp in both modes); the knob exists for the
	// cross-check test and debugging.
	PerEventFeeder bool
	// TraceFile streams the trace from a .dmt container on disk instead
	// of an in-memory trace: pass a nil trace to Run/RunContext and set
	// this path. Records are decoded chunk by chunk (bounded memory
	// regardless of trace length) and the report is bit-identical to
	// running the same records from memory. Mutually exclusive with a
	// non-nil trace and with PerEventFeeder.
	TraceFile string
	// Workers selects the parallel barrier engine: zero (the default)
	// runs the legacy serial event loop; any positive value runs one
	// event loop per topology channel, executed by at most Workers
	// goroutines in deterministic epoch-barrier lockstep (see
	// internal/sim's BarrierEngine and docs/ARCHITECTURE.md). Reports
	// are independent of the worker count by construction; with a
	// single channel they are additionally bit-identical to the serial
	// engine's. Multi-channel runs support every scheme, including PL
	// and gap-observing adaptive policies (the policy must be
	// policy.Replicable): layout rebalances and gap merges execute in
	// the barrier's epoch-synchronized observation stage, and each
	// channel-homogeneous piece of a channel-spanning DMA record counts
	// as its own transfer. Setting Workers with a single-channel
	// topology is accepted, not an error: there is only one shard, so
	// extra workers stay idle, and the adaptive barrier collapses the
	// whole run into one span, making the barrier overhead negligible
	// (a test pins the accepted-and-bit-identical behavior; FixedEpoch
	// restores per-epoch chunking if you want to measure it).
	// Incompatible with PerEventFeeder.
	Workers int
	// BarrierEpoch is the parallel engine's barrier period in simulated
	// time; zero means 50 us. Smaller epochs exchange bus shares more
	// often (closer to the serial allocator's event-granular coupling);
	// larger epochs synchronize less and run faster. Exposed as -epoch
	// on dmamem-bench and dmamem-sim.
	BarrierEpoch sim.Duration
	// FixedEpoch disables the adaptive barrier: every epoch boundary is
	// a full rendezvous, exactly the pre-adaptive engine. Kept as the
	// bit-identical cross-check reference for barrier elision and
	// dynamic span sizing — the adaptive engine only skips boundaries
	// it can prove are no-ops, so reports match this mode exactly.
	FixedEpoch bool
	// MaxEpochSpan caps how many consecutive epochs the adaptive
	// barrier may cover in one elided span (it bounds the per-span
	// trace-staging buffers). Zero means 256; 1 behaves like
	// FixedEpoch; negative errors. The effective span width adapts
	// between 1 and this ceiling with re-split churn and measured
	// barrier stall.
	MaxEpochSpan int
}

// resolveModel turns the Tech / MemSpec selection into the technology
// model the run will use. Exactly one may be set; neither means the
// registry default (the paper's RDRAM part, bit-identical to the
// legacy Spec arithmetic).
func (c Config) resolveModel() (*energy.Model, error) {
	if c.Tech != "" && c.MemSpec != nil {
		return nil, fmt.Errorf("core: both Tech %q and MemSpec %q set; pass one", c.Tech, c.MemSpec.Name)
	}
	if c.MemSpec != nil {
		m := c.MemSpec.Model()
		if err := m.Validate(); err != nil {
			return nil, err
		}
		return m, nil
	}
	return energy.Lookup(c.Tech)
}

// withDefaults resolves the technology model and returns a fully
// populated copy.
func (c Config) withDefaults() (Config, *energy.Model, error) {
	model, err := c.resolveModel()
	if err != nil {
		return c, nil, err
	}
	if c.Geometry == (memsys.Geometry{}) {
		c.Geometry = memsys.Default()
		c.Geometry.ChipBandwidth = model.Bandwidth
	}
	if c.Buses == (bus.Config{}) {
		c.Buses = bus.DefaultConfig()
	}
	if c.Policy == nil {
		// The technology's calibrated demotion chain; for the RDRAM
		// default its waits equal the classic NewDynamic thresholds.
		c.Policy = policy.ChainFor(model)
	}
	if c.WarmupFraction == 0 {
		c.WarmupFraction = 1.0
	}
	if c.Scheme == "" {
		switch {
		case c.TA != nil && c.PL != nil:
			c.Scheme = "dma-ta-pl"
		case c.TA != nil:
			c.Scheme = "dma-ta"
		default:
			c.Scheme = "baseline"
		}
	}
	return c, model, nil
}

// Result is the outcome of a run.
type Result struct {
	Report *metrics.Report
	// Calibration used for the CP-Limit transform (zero-valued when
	// no TA or no CP-Limit was requested).
	Calibration metrics.Calibration
	// Mu actually used by DMA-TA.
	Mu float64
	// LayoutStats when PL ran.
	MigratedPages    int64
	MigrationEnergyJ float64
	Rebalances       int64
}

// SimEvents returns the number of simulation events the run
// dispatched; the experiment runner uses it for events/sec throughput
// reporting.
func (r *Result) SimEvents() uint64 {
	if r == nil || r.Report == nil {
		return 0
	}
	return r.Report.Events
}

// Calibrate derives the CP-Limit -> mu calibration from a trace: the
// client response time and critical-path transfer count from the
// trace's metadata (with documented fallbacks for bare traces) and the
// mean DMA-memory requests per transfer from the trace itself.
func Calibrate(tr *trace.Trace, geo memsys.Geometry, buses bus.Config) metrics.Calibration {
	return calibrate(tr.Meta, trace.Analyze(tr).MeanTransferPages(), geo, buses)
}

// calibrate is the shared CP-Limit calibration core. Both trace
// sources go through it with identical inputs — the in-memory path
// via trace.Analyze, the file-backed path via the .dmt footer's
// aggregate DMA totals — so the derived mu is bit-identical.
func calibrate(meta trace.Meta, meanTransferPages float64, geo memsys.Geometry, buses bus.Config) metrics.Calibration {
	cal := metrics.Calibration{
		MeanClientResponse:      meta.MeanClientResponse,
		TransfersPerRequest:     meta.TransfersPerClientRequest,
		MeanRequestsPerTransfer: meanTransferPages * float64(geo.PageBytes) / memsys.RequestBytes,
		T:                       buses.BeatGap(),
		// Off-line measured transform factor (Section 5.1): half the
		// analytic budget absorbs the queueing and wake amplification
		// between request-level slack and client-perceived time.
		SafetyFactor: 0.5,
	}
	if cal.MeanClientResponse <= 0 {
		// Bare trace: assume a typical data-server client response of
		// 500 us (SAN round trip plus service).
		cal.MeanClientResponse = 500 * sim.Microsecond
	}
	if cal.TransfersPerRequest <= 0 {
		cal.TransfersPerRequest = 1
	}
	if cal.MeanRequestsPerTransfer <= 0 {
		cal.MeanRequestsPerTransfer = float64(geo.PageBytes) / memsys.RequestBytes
	}
	return cal
}

// Run simulates one configuration over a trace.
func Run(cfg Config, tr *trace.Trace) (*Result, error) {
	return RunContext(context.Background(), cfg, tr)
}

// RunContext is Run with cancellation: the engine polls ctx every few
// thousand dispatches, so a cancelled context aborts a simulation
// mid-run within microseconds of wall time. A run that is never
// cancelled is bit-identical to Run.
//
// The trace may be nil when cfg.TraceFile names a .dmt container: the
// records then stream from disk in bounded memory (see runFileContext)
// with a bit-identical report.
func RunContext(ctx context.Context, cfg Config, tr *trace.Trace) (*Result, error) {
	if tr == nil {
		if cfg.TraceFile == "" {
			return nil, fmt.Errorf("core: nil trace and no Config.TraceFile to stream from")
		}
		return runFileContext(ctx, cfg)
	}
	if cfg.TraceFile != "" {
		return nil, fmt.Errorf("core: both an in-memory trace %q and Config.TraceFile %q given; pass one",
			tr.Name, cfg.TraceFile)
	}
	cfg, model, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := validateWarmupFraction(cfg.WarmupFraction); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if len(tr.Records) == 0 {
		return nil, fmt.Errorf("core: empty trace %q", tr.Name)
	}
	maxPage := memsys.PageID(cfg.Geometry.TotalPages())
	for i, r := range tr.Records {
		end := r.Page
		if r.Kind.IsDMA() {
			end += memsys.PageID(r.Pages)
		} else {
			end++
		}
		if r.Page < 0 || end > maxPage {
			return nil, fmt.Errorf("core: record %d touches pages [%d,%d) outside memory of %d pages",
				i, r.Page, end, maxPage)
		}
	}

	res := &Result{}
	ccfg := controller.Config{
		Geometry:           cfg.Geometry,
		Topology:           cfg.Topology,
		Buses:              cfg.Buses,
		Policy:             cfg.Policy,
		TA:                 cfg.TA,
		Mapper:             cfg.Mapper,
		Model:              model,
		InitialState:       0, // Active; the policy idles chips down immediately
		FullScanAccounting: cfg.FullScanAccounting,
	}

	if cfg.TA != nil && cfg.TA.Mu == 0 && cfg.CPLimit > 0 {
		cal := Calibrate(tr, cfg.Geometry, cfg.Buses)
		mu, err := cal.Mu(cfg.CPLimit)
		if err != nil {
			return nil, err
		}
		ta := *cfg.TA // do not mutate the caller's config
		ta.Mu = mu
		ccfg.TA = &ta
		res.Calibration = cal
		res.Mu = mu
	} else if cfg.TA != nil {
		res.Mu = cfg.TA.Mu
	}

	var lm *layout.Manager
	if cfg.PL != nil {
		var err error
		lm, err = layout.New(cfg.Geometry, *cfg.PL)
		if err != nil {
			return nil, err
		}
		warmup(lm, tr, cfg.WarmupFraction)
		ccfg.Layout = lm
	}

	if cfg.Workers > 0 {
		return finishParallel(ctx, cfg, tr, ccfg, lm, res)
	}

	eng := sim.New()
	if cfg.HeapScheduler {
		eng = sim.NewWithHeap()
	}
	ctl, err := controller.New(eng, ccfg)
	if err != nil {
		return nil, err
	}

	if cfg.PerEventFeeder {
		feed(eng, ctl, tr)
	} else {
		eng.SetFeeder(&traceFeeder{ctl: ctl, records: tr.Records})
	}
	traceEnd := sim.Time(tr.Duration())
	if lm != nil {
		scheduleRebalances(eng, ctl, lm, traceEnd)
	}
	if err := eng.RunContext(ctx); err != nil {
		return nil, err
	}

	window := cfg.MeterWindow
	if window == 0 {
		window = tr.Duration() + 2*sim.Millisecond
	}
	end := ctl.Finish(sim.Time(window))
	res.Report = ctl.Report(cfg.Scheme, end)
	if lm != nil {
		res.MigratedPages = lm.MigratedPages
		res.MigrationEnergyJ = lm.MigrationEnergyJ
		res.Rebalances = lm.Rebalances
	}
	return res, nil
}

// validateWarmupFraction rejects fractions outside (0, 1] loudly.
// Both trace paths apply it after defaulting (zero has already become
// 1.0), so an out-of-range fraction can no longer panic the in-memory
// warm-up slice or silently warm the whole file-backed trace.
func validateWarmupFraction(fraction float64) error {
	if !(fraction > 0 && fraction <= 1) {
		return fmt.Errorf("core: WarmupFraction %g outside (0, 1]", fraction)
	}
	return nil
}

// warmupCount is the single truncation both trace paths use to turn
// the warm-up fraction into a record count, so the in-memory and
// file-backed layouts warm over exactly the same prefix.
func warmupCount(fraction float64, records int64) int64 {
	n := int64(fraction * float64(records))
	if n < 0 {
		n = 0
	}
	if n > records {
		n = records
	}
	return n
}

// warmup feeds the first fraction of the trace's DMA references into
// the layout manager and installs the resulting layout without
// charging its cost: the measured window starts from popularity steady
// state.
func warmup(lm *layout.Manager, tr *trace.Trace, fraction float64) {
	n := warmupCount(fraction, int64(len(tr.Records)))
	for _, r := range tr.Records[:n] {
		if !r.Kind.IsDMA() {
			continue
		}
		for p := 0; p < int(r.Pages); p++ {
			lm.Observe(r.Page + memsys.PageID(p))
		}
	}
	lm.Rebalance(nil)
	lm.ResetCosts()
}

// traceFeeder is the default arrival source: a cursor over the trace
// records that the engine's run loop pulls batches from directly (see
// sim.Feeder), so arrivals never pass through the scheduler at all.
// It reports feederPrio as its same-instant priority, which is
// reserved for trace arrivals across the whole simulator — transfer
// completions (priority 0) at the same instant are observed first,
// policy and epoch timers (priorities 2+) after, exactly as with the
// per-event feeder.
type traceFeeder struct {
	ctl     *controller.Controller
	records []trace.Record
	idx     int
	dmaIdx  int
	nextID  int64
}

// feederPrio is the same-instant dispatch priority of trace arrivals,
// for both feeder implementations. No other event source uses it.
const feederPrio = 1

func (f *traceFeeder) Peek() (sim.Time, int8, bool) {
	if f.idx >= len(f.records) {
		return 0, 0, false
	}
	return f.records[f.idx].Time, feederPrio, true
}

func (f *traceFeeder) Fire(e *sim.Engine) {
	now := e.Now()
	for f.idx < len(f.records) && f.records[f.idx].Time == now {
		r := f.records[f.idx]
		f.idx++
		if r.Kind.IsDMA() {
			f.ctl.StartTransfer(dma.FromRecord(f.nextID, r))
			f.nextID++
		} else {
			f.ctl.ProcAccess(r.Page)
		}
	}
}

// nextRelevant reports the earliest undelivered record — every kind,
// or DMA records only — for the adaptive barrier's cross lookahead.
// The DMA scan cursor is monotone, so repeated probes cost amortized
// O(1) over the run.
func (f *traceFeeder) nextRelevant(dmaOnly bool) (sim.Time, bool) {
	if f.idx >= len(f.records) {
		return 0, false
	}
	if !dmaOnly {
		return f.records[f.idx].Time, true
	}
	if f.dmaIdx < f.idx {
		f.dmaIdx = f.idx
	}
	for f.dmaIdx < len(f.records) && !f.records[f.dmaIdx].Kind.IsDMA() {
		f.dmaIdx++
	}
	if f.dmaIdx >= len(f.records) {
		return 0, false
	}
	return f.records[f.dmaIdx].Time, true
}

// feed is the reference arrival path (Config.PerEventFeeder): trace
// records enter through a self-advancing engine event per distinct
// record timestamp. The batched traceFeeder replaces it on the hot
// path; it is kept as the cross-check implementation.
func feed(eng *sim.Engine, ctl *controller.Controller, tr *trace.Trace) {
	var idx int
	var nextID int64
	var step func(e *sim.Engine)
	step = func(e *sim.Engine) {
		for idx < len(tr.Records) && tr.Records[idx].Time == e.Now() {
			r := tr.Records[idx]
			idx++
			if r.Kind.IsDMA() {
				ctl.StartTransfer(dma.FromRecord(nextID, r))
				nextID++
			} else {
				ctl.ProcAccess(r.Page)
			}
		}
		if idx < len(tr.Records) {
			eng.SchedulePrio(tr.Records[idx].Time, feederPrio, step)
		}
	}
	eng.SchedulePrio(tr.Records[0].Time, feederPrio, step)
}

// scheduleRebalances arms the PL interval timer up to the end of the
// trace.
func scheduleRebalances(eng *sim.Engine, ctl *controller.Controller, lm *layout.Manager, end sim.Time) {
	interval := lm.Interval()
	var tick func(e *sim.Engine)
	tick = func(e *sim.Engine) {
		busy := ctl.ActivePages()
		lm.Rebalance(func(p memsys.PageID) bool { return busy[p] })
		next := e.Now().Add(interval)
		if next <= end {
			eng.SchedulePrio(next, 5, tick)
		}
	}
	first := sim.Time(interval)
	if first <= end {
		eng.SchedulePrio(first, 5, tick)
	}
}

// pairWindow derives the shared metering window for a baseline/
// technique pair: the trace duration plus 2 ms of drain, read from the
// in-memory trace or — when tr is nil and the configs stream from disk
// — from the .dmt footer of the baseline config's TraceFile (the pair
// must replay the same container, so either footer serves).
func pairWindow(base Config, tr *trace.Trace) (sim.Duration, error) {
	if tr != nil {
		return tr.Duration() + 2*sim.Millisecond, nil
	}
	if base.TraceFile == "" {
		return 0, fmt.Errorf("core: nil trace and no Config.TraceFile to stream from")
	}
	fr, err := trace.OpenDMTFile(base.TraceFile)
	if err != nil {
		return 0, err
	}
	defer fr.Close()
	return fr.Summary().Duration + 2*sim.Millisecond, nil
}

// RunBaselinePair runs the same trace under a baseline config and a
// technique config with a shared metering window, returning both
// results plus the fractional savings. The trace may be nil when both
// configs name the same .dmt container in TraceFile.
func RunBaselinePair(base, tech Config, tr *trace.Trace) (b, t *Result, savings float64, err error) {
	window, err := pairWindow(base, tr)
	if err != nil {
		return nil, nil, 0, err
	}
	base.MeterWindow = window
	tech.MeterWindow = window
	if b, err = Run(base, tr); err != nil {
		return nil, nil, 0, err
	}
	if t, err = Run(tech, tr); err != nil {
		return nil, nil, 0, err
	}
	return b, t, t.Report.Savings(b.Report), nil
}

// RunBaselinePairParallel is RunBaselinePair with cancellation and,
// when parallel > 1, the two runs on separate goroutines (each
// simulation owns its own single-goroutine engine; see internal/sim).
// Results are bit-identical to RunBaselinePair's. Cancellation is
// observed mid-run: the engines poll ctx every few thousand
// dispatches, so a cancelled sweep aborts within microseconds of wall
// time instead of finishing the simulation in flight.
func RunBaselinePairParallel(ctx context.Context, base, tech Config, tr *trace.Trace, parallel int) (b, t *Result, savings float64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err = ctx.Err(); err != nil {
		return nil, nil, 0, err
	}
	window, err := pairWindow(base, tr)
	if err != nil {
		return nil, nil, 0, err
	}
	base.MeterWindow = window
	tech.MeterWindow = window
	if parallel <= 1 {
		if b, err = RunContext(ctx, base, tr); err != nil {
			return nil, nil, 0, err
		}
		if t, err = RunContext(ctx, tech, tr); err != nil {
			return nil, nil, 0, err
		}
		return b, t, t.Report.Savings(b.Report), nil
	}
	var baseErr, techErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		t, techErr = RunContext(ctx, tech, tr)
	}()
	b, baseErr = RunContext(ctx, base, tr)
	<-done
	if baseErr != nil {
		return nil, nil, 0, baseErr
	}
	if techErr != nil {
		return nil, nil, 0, techErr
	}
	return b, t, t.Report.Savings(b.Report), nil
}

// Workload is a named trace bundle used by the experiments.
type Workload struct {
	Name  string
	Trace *trace.Trace
}

// SyntheticStWorkload builds the Synthetic-St trace with the paper's
// defaults over the given duration.
func SyntheticStWorkload(d sim.Duration, seed uint64) (*Workload, error) {
	cfg := synth.DefaultSt()
	cfg.Duration = d
	cfg.Seed = seed
	tr, err := synth.GenerateSt(cfg)
	if err != nil {
		return nil, err
	}
	return &Workload{Name: "Synthetic-St", Trace: tr}, nil
}

// SyntheticDbWorkload builds the Synthetic-Db trace with the paper's
// defaults over the given duration.
func SyntheticDbWorkload(d sim.Duration, seed uint64) (*Workload, error) {
	cfg := synth.DefaultDb()
	cfg.St.Duration = d
	cfg.St.Seed = seed
	tr, err := synth.GenerateDb(cfg)
	if err != nil {
		return nil, err
	}
	return &Workload{Name: "Synthetic-Db", Trace: tr}, nil
}
