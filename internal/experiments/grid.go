package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dmamem/internal/bus"
	"dmamem/internal/core"
	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
)

// SuiteSpec is the serializable shape of a Suite: everything a worker
// process needs to reconstruct the exact experiment configuration.
// Every field round-trips through JSON without loss, so a Suite built
// from a spec produces bit-identical simulations in any process.
type SuiteSpec struct {
	// Duration of generated traces (sim.Duration, picoseconds).
	Duration sim.Duration
	// DbDuration for the denser database traces; zero means Duration.
	DbDuration sim.Duration
	// Seed for all generators.
	Seed uint64
	// HeapScheduler and PerEventFeeder mirror the Suite fields of the
	// same names (engine knobs; results are bit-identical regardless).
	HeapScheduler  bool
	PerEventFeeder bool
}

// Spec returns the serializable configuration of the suite.
func (s *Suite) Spec() SuiteSpec {
	return SuiteSpec{
		Duration:       s.Duration,
		DbDuration:     s.DbDuration,
		Seed:           s.Seed,
		HeapScheduler:  s.HeapScheduler,
		PerEventFeeder: s.PerEventFeeder,
	}
}

// NewSuiteFromSpec builds a suite from a serialized spec. Workloads
// and baselines are generated lazily and cached per process.
func NewSuiteFromSpec(sp SuiteSpec) *Suite {
	s := NewSuite(sp.Duration, sp.Seed)
	s.DbDuration = sp.DbDuration
	s.HeapScheduler = sp.HeapScheduler
	s.PerEventFeeder = sp.PerEventFeeder
	return s
}

// Grid names understood by GridSpec. Each identifies one family of
// independent sweep points; the parameters of the spec select the
// points.
const (
	// GridFig5 sweeps CP-Limit for every Table 2 workload and scheme
	// (CPLimits x {dma-ta, dma-ta-pl-G for G in Groups}).
	GridFig5 = "fig5"
	// GridFig8 sweeps Synthetic-St arrival rate (RatesPerMs).
	GridFig8 = "fig8"
	// GridFig9 sweeps processor accesses per transfer (PerTransfer).
	GridFig9 = "fig9"
	// GridFig10 sweeps I/O bus bandwidth (BusBW) over Workloads.
	GridFig10 = "fig10"
	// GridNoop yields Points trivial results without running any
	// simulation. It exists to measure the shard protocol itself:
	// BenchmarkShardedSweep uses it to expose coordinator overhead per
	// sweep point.
	GridNoop = "noop"
)

// GridSpec names a grid of independent sweep points and its
// parameters. A spec is pure data: the same spec resolved against
// suites built from the same SuiteSpec enumerates the same points in
// the same order in every process, which is what lets a coordinator
// partition work by point index and reassemble results
// deterministically.
type GridSpec struct {
	// Name selects the grid (GridFig5, GridFig8, ...).
	Name string
	// CPLimits are the CP-Limit sweep values (GridFig5).
	CPLimits []float64 `json:",omitempty"`
	// Groups are the DMA-TA-PL group counts swept next to plain DMA-TA
	// (GridFig5).
	Groups []int `json:",omitempty"`
	// RatesPerMs are the arrival-rate sweep values (GridFig8).
	RatesPerMs []float64 `json:",omitempty"`
	// PerTransfer are the processor-accesses-per-transfer sweep values
	// (GridFig9).
	PerTransfer []int `json:",omitempty"`
	// BusBW are the I/O bus bandwidths in bytes/s (GridFig10).
	BusBW []float64 `json:",omitempty"`
	// Workloads restricts GridFig10 to the named Table 2 workloads;
	// empty means the paper's pair {OLTP-St, Synthetic-St}.
	Workloads []string `json:",omitempty"`
	// Channels adds a memory-channel dimension to GridFig10: every
	// (workload, bus bandwidth) pair is additionally swept over these
	// channel counts, each simulated under a memsys.Topology with that
	// many independently clocked channels (channel bandwidth pinned to
	// one chip's rate, DDR style). Empty means the legacy
	// single-channel RDRAM points, byte-identical to specs that predate
	// the field.
	Channels []int `json:",omitempty"`
	// Techs adds a memory-technology dimension to GridFig10: every
	// point is additionally swept over these power-model backends
	// (registry names, see energy.Techs), with the bandwidth ratio on
	// the x axis derived from each backend's own memory rate. Empty
	// means the legacy RDRAM points, byte-identical to specs that
	// predate the field.
	Techs []string `json:",omitempty"`
	// Points is the number of trivial points of GridNoop.
	Points int `json:",omitempty"`
}

// resolvedGrid is the runnable form of a GridSpec: a point count,
// stable per-point labels, and a runner. run returns the point value
// (a JSON-serializable struct), the number of simulation events the
// point dispatched (observability only), and an error.
type resolvedGrid struct {
	n     int
	label func(i int) string
	run   func(ctx context.Context, i int) (any, uint64, error)
}

// resolveGrid turns a spec into its runnable form. Resolution is
// cheap and deterministic — no traces are generated until a point
// runs — so coordinators resolve grids locally just to size and label
// the partition.
func (s *Suite) resolveGrid(gs GridSpec) (*resolvedGrid, error) {
	switch gs.Name {
	case GridFig5:
		return s.fig5Grid(gs), nil
	case GridFig8:
		return s.fig8Grid(gs), nil
	case GridFig9:
		return s.fig9Grid(gs), nil
	case GridFig10:
		// Resolve technologies eagerly so a typo fails the whole grid
		// loudly instead of erroring one point at a time mid-sweep.
		for _, tech := range gs.Techs {
			if _, err := energy.Lookup(tech); err != nil {
				return nil, err
			}
		}
		return s.fig10Grid(gs), nil
	case GridNoop:
		return &resolvedGrid{
			n:     gs.Points,
			label: func(i int) string { return fmt.Sprintf("noop/%d", i) },
			run: func(ctx context.Context, i int) (any, uint64, error) {
				return SweepPoint{Workload: "noop", Scheme: "noop", X: float64(i)}, 0, nil
			},
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown grid %q", gs.Name)
}

// GridRun resolves and executes a grid in-process on the suite's
// Runner and returns the points in grid order. The output is
// byte-identical to a sharded run of the same spec at any shard count
// (see Coordinator): both enumerate the same points and reassemble
// them by index.
func GridRun[T any](ctx context.Context, s *Suite, gs GridSpec) ([]T, error) {
	g, err := s.resolveGrid(gs)
	if err != nil {
		return nil, err
	}
	vals, err := runGrid(ctx, s.Runner, g)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(vals))
	for i, v := range vals {
		p, ok := v.(T)
		if !ok {
			return nil, fmt.Errorf("experiments: grid %s point %d is %T, want %T", gs.Name, i, v, out[i])
		}
		out[i] = p
	}
	return out, nil
}

// runGrid fans the grid's points across the runner, each writing its
// own slot, and returns the values in point order.
func runGrid(ctx context.Context, r *Runner, g *resolvedGrid) ([]any, error) {
	out := make([]any, g.n)
	jobs := make([]Job, g.n)
	for i := 0; i < g.n; i++ {
		i := i
		job := &jobs[i]
		*job = Job{Label: g.label(i), Run: func(ctx context.Context) error {
			v, events, err := g.run(ctx, i)
			if err != nil {
				return err
			}
			job.Events = events
			out[i] = v
			return nil
		}}
	}
	if err := r.Do(ctx, jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// baseEntry is the single-flight slot for one workload's baseline
// run, mirroring the workload cache: sweeps over the same workload
// share one baseline simulation per process, and because the baseline
// is a pure function of (config, trace) every process computes the
// same report bit for bit.
type baseEntry struct {
	once sync.Once
	res  *core.Result
	err  error
}

// baseline returns the cached baseline result for a workload,
// simulating it on first use with the suite's standard metering
// window.
func (s *Suite) baseline(ctx context.Context, name string) (*core.Result, error) {
	s.mu.Lock()
	if s.baselines == nil {
		s.baselines = map[string]*baseEntry{}
	}
	e, ok := s.baselines[name]
	if !ok {
		e = &baseEntry{}
		s.baselines[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		tr, err := s.workload(name)
		if err != nil {
			e.err = err
			return
		}
		start := time.Now()
		e.res, e.err = s.run(ctx, core.Config{MeterWindow: tr.Duration() + 2*sim.Millisecond}, tr)
		if e.err == nil && s.Runner != nil && s.Runner.Timings != nil {
			s.Runner.Timings.AddSim("baseline/"+name, time.Since(start), e.res.SimEvents())
		}
	})
	return e.res, e.err
}

// fig5Grid enumerates the Figure 5 points: for every Table 2 workload
// and CP-Limit, plain DMA-TA followed by DMA-TA-PL at each group
// count. Each point runs the technique against the workload's cached
// baseline.
func (s *Suite) fig5Grid(gs GridSpec) *resolvedGrid {
	type spec struct {
		wi      int
		scheme  string
		cpLimit float64
		groups  int // 0 = plain DMA-TA
	}
	var specs []spec
	for wi := range workloadNames {
		for _, cp := range gs.CPLimits {
			specs = append(specs, spec{wi, "dma-ta", cp, 0})
			for _, g := range gs.Groups {
				specs = append(specs, spec{wi, fmt.Sprintf("dma-ta-pl-%d", g), cp, g})
			}
		}
	}
	return &resolvedGrid{
		n: len(specs),
		label: func(i int) string {
			sp := specs[i]
			return fmt.Sprintf("fig5/%s/%s/cp=%.2f", workloadNames[sp.wi], sp.scheme, sp.cpLimit)
		},
		run: func(ctx context.Context, i int) (any, uint64, error) {
			sp := specs[i]
			tr, err := s.workload(workloadNames[sp.wi])
			if err != nil {
				return nil, 0, err
			}
			base, err := s.baseline(ctx, workloadNames[sp.wi])
			if err != nil {
				return nil, 0, err
			}
			cfg := taConfig(sp.cpLimit, nil)
			if sp.groups > 0 {
				cfg = taConfig(sp.cpLimit, plConfig(sp.groups))
			}
			cfg.MeterWindow = tr.Duration() + 2*sim.Millisecond
			res, err := s.run(ctx, cfg, tr)
			if err != nil {
				return nil, 0, err
			}
			return Fig5Point{
				Workload: tr.Name, Scheme: sp.scheme, CPLimit: sp.cpLimit,
				Savings: res.Report.Savings(base.Report),
				UF:      res.Report.UtilizationFactor,
			}, res.SimEvents(), nil
		},
	}
}

// fig8Grid enumerates the workload-intensity sweep: one point per
// (arrival rate, scheme), each regenerating its own trace (the
// deterministic generator makes duplicate generation bit-identical)
// and running a baseline/technique pair.
func (s *Suite) fig8Grid(gs GridSpec) *resolvedGrid {
	type spec struct {
		rate   float64
		scheme int
	}
	var specs []spec
	for _, rate := range gs.RatesPerMs {
		for si := range sweepSchemes {
			specs = append(specs, spec{rate, si})
		}
	}
	return &resolvedGrid{
		n: len(specs),
		label: func(i int) string {
			return fmt.Sprintf("fig8/%s/rate=%g", sweepSchemes[specs[i].scheme], specs[i].rate)
		},
		run: func(ctx context.Context, i int) (any, uint64, error) {
			sp := specs[i]
			cfg := synth.DefaultSt()
			cfg.Duration = s.Duration
			cfg.Seed = s.Seed + 1
			cfg.RatePerMs = sp.rate
			tr, err := synth.GenerateSt(cfg)
			if err != nil {
				return nil, 0, err
			}
			savings, events, err := s.runPair(ctx, core.Config{}, sweepSchemeConfig(sweepSchemes[sp.scheme]), tr)
			if err != nil {
				return nil, 0, err
			}
			return SweepPoint{Workload: "Synthetic-St", Scheme: sweepSchemes[sp.scheme],
				X: sp.rate, Savings: savings}, events, nil
		},
	}
}

// fig9Grid enumerates the processor-interference sweep: one point per
// (accesses-per-transfer, scheme) on Synthetic-Db.
func (s *Suite) fig9Grid(gs GridSpec) *resolvedGrid {
	type spec struct {
		per    int
		scheme int
	}
	var specs []spec
	for _, per := range gs.PerTransfer {
		for si := range sweepSchemes {
			specs = append(specs, spec{per, si})
		}
	}
	return &resolvedGrid{
		n: len(specs),
		label: func(i int) string {
			return fmt.Sprintf("fig9/%s/per=%d", sweepSchemes[specs[i].scheme], specs[i].per)
		},
		run: func(ctx context.Context, i int) (any, uint64, error) {
			sp := specs[i]
			cfg := synth.DefaultDb()
			cfg.St.Duration = s.dbDuration()
			cfg.St.Seed = s.Seed + 2
			cfg.ProcRatePerMs = 0
			cfg.ProcPerTransfer = sp.per
			tr, err := synth.GenerateDb(cfg)
			if err != nil {
				return nil, 0, err
			}
			savings, events, err := s.runPair(ctx, core.Config{}, sweepSchemeConfig(sweepSchemes[sp.scheme]), tr)
			if err != nil {
				return nil, 0, err
			}
			return SweepPoint{Workload: "Synthetic-Db", Scheme: sweepSchemes[sp.scheme],
				X: float64(sp.per), Savings: savings}, events, nil
		},
	}
}

// fig10Grid enumerates the bandwidth-ratio sweep: one point per
// (workload, bus bandwidth, channel count, technology, scheme), the
// memory rate taken from the technology backend (3.2 GB/s for the
// legacy RDRAM default). Without Channels and Techs it degenerates to
// the classic (workload, bus bandwidth, scheme) enumeration, byte for
// byte.
func (s *Suite) fig10Grid(gs GridSpec) *resolvedGrid {
	workloads := gs.Workloads
	if len(workloads) == 0 {
		workloads = []string{"OLTP-St", "Synthetic-St"}
	}
	chans := gs.Channels
	if len(chans) == 0 {
		chans = []int{0} // legacy single-channel RDRAM point
	}
	techs := gs.Techs
	if len(techs) == 0 {
		techs = []string{""} // legacy RDRAM point, no name suffix
	}
	type spec struct {
		workload string
		bw       float64
		channels int    // 0 = topology disabled
		tech     string // "" = legacy RDRAM default
		scheme   int
	}
	var specs []spec
	for _, name := range workloads {
		for _, bw := range gs.BusBW {
			for _, ch := range chans {
				for _, tech := range techs {
					for si := range sweepSchemes {
						specs = append(specs, spec{name, bw, ch, tech, si})
					}
				}
			}
		}
	}
	schemeName := func(sp spec) string {
		name := sweepSchemes[sp.scheme]
		if sp.channels > 0 {
			name = fmt.Sprintf("%s-%dch", name, sp.channels)
		}
		if sp.tech != "" {
			name = name + "@" + sp.tech
		}
		return name
	}
	return &resolvedGrid{
		n: len(specs),
		label: func(i int) string {
			sp := specs[i]
			return fmt.Sprintf("fig10/%s/%s/bw=%g", sp.workload, schemeName(sp), sp.bw)
		},
		run: func(ctx context.Context, i int) (any, uint64, error) {
			sp := specs[i]
			tr, err := s.workload(sp.workload)
			if err != nil {
				return nil, 0, err
			}
			memBW := 3.2e9 // the legacy RDRAM chip rate
			if sp.tech != "" {
				m, err := energy.Lookup(sp.tech)
				if err != nil {
					return nil, 0, err
				}
				memBW = m.Bandwidth
			}
			bc := bus.Config{Count: 3, Bandwidth: sp.bw}
			base := core.Config{Buses: bc, Tech: sp.tech}
			tech := sweepSchemeConfig(sweepSchemes[sp.scheme])
			tech.Buses = bc
			tech.Tech = sp.tech
			if sp.channels > 0 {
				topo := memsys.Topology{Channels: sp.channels, ChannelBandwidth: memBW}
				base.Topology = topo
				tech.Topology = topo
			}
			savings, events, err := s.runPair(ctx, base, tech, tr)
			if err != nil {
				return nil, 0, err
			}
			return SweepPoint{Workload: sp.workload, Scheme: schemeName(sp),
				X: memBW / sp.bw, Savings: savings}, events, nil
		},
	}
}
