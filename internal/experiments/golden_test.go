package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dmamem/internal/core"
	"dmamem/internal/energy"
	"dmamem/internal/metrics"
	"dmamem/internal/sim"
)

// -update regenerates the golden corpus under testdata/golden/ from
// the current simulator:
//
//	go test -run TestGolden -update ./internal/experiments/
//
// Goldens pin every float of every metrics.Report bit for bit, so any
// intentional change to simulation arithmetic must regenerate them and
// the diff reviews as part of the change. Floats are written in Go's
// shortest round-trip form and are architecture-pinned (CI is amd64;
// FMA contraction on other architectures could legally differ).
var updateGolden = flag.Bool("update", false, "rewrite the golden report corpus from the current simulator")

// goldenSuite mirrors the cross-check suites: 4 ms traces (2 ms for
// the denser database workloads), seed 1.
func goldenSuite() *Suite {
	s := NewSuite(4*sim.Millisecond, 1)
	s.DbDuration = 2 * sim.Millisecond
	return s
}

// goldenSchemes are the Table 2 schemes the corpus pins per workload.
func goldenSchemes() []struct {
	label string
	cfg   core.Config
} {
	return []struct {
		label string
		cfg   core.Config
	}{
		{"baseline", core.Config{}},
		{"dma-ta", taConfig(0.10, nil)},
		{"dma-ta-pl", taConfig(0.10, plConfig(2))},
	}
}

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", "golden", name)
}

// writeOrCompareGolden marshals v and either rewrites the golden file
// (-update) or byte-compares against it, with a field-by-field report
// on mismatch when both sides unmarshal into the same type.
func writeOrCompareGolden[T any](t *testing.T, path string, v T) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal %s: %v", path, err)
	}
	got = append(got, '\n')
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to generate): %v", path, err)
	}
	if bytes.Equal(got, want) {
		return
	}
	var wantV T
	if err := json.Unmarshal(want, &wantV); err != nil {
		t.Fatalf("%s drifted and the committed golden no longer parses: %v", path, err)
	}
	t.Errorf("%s drifted from the golden corpus:\n%s\n(run with -update after reviewing the change)",
		path, diffFields("", reflect.ValueOf(v), reflect.ValueOf(wantV)))
}

// diffFields renders the differing leaves of two values of the same
// type, one "path: got != want" line each, so a golden failure names
// the drifted fields instead of dumping two full reports.
func diffFields(path string, got, want reflect.Value) string {
	if got.Type() != want.Type() {
		return fmt.Sprintf("%s: type %v != %v\n", path, got.Type(), want.Type())
	}
	switch got.Kind() {
	case reflect.Pointer, reflect.Interface:
		if got.IsNil() != want.IsNil() {
			return fmt.Sprintf("%s: nilness %v != %v\n", path, got.IsNil(), want.IsNil())
		}
		if got.IsNil() {
			return ""
		}
		return diffFields(path, got.Elem(), want.Elem())
	case reflect.Struct:
		var b strings.Builder
		for i := 0; i < got.NumField(); i++ {
			name := got.Type().Field(i).Name
			b.WriteString(diffFields(path+"."+name, got.Field(i), want.Field(i)))
		}
		return b.String()
	case reflect.Slice, reflect.Array:
		if got.Len() != want.Len() {
			return fmt.Sprintf("%s: length %d != %d\n", path, got.Len(), want.Len())
		}
		var b strings.Builder
		for i := 0; i < got.Len(); i++ {
			b.WriteString(diffFields(fmt.Sprintf("%s[%d]", path, i), got.Index(i), want.Index(i)))
		}
		return b.String()
	default:
		if !reflect.DeepEqual(got.Interface(), want.Interface()) {
			return fmt.Sprintf("%s: %v != %v\n", path, got.Interface(), want.Interface())
		}
		return ""
	}
}

// TestGoldenReports diffs the canonical report of every Table 2
// workload x scheme against the committed corpus, field by field. The
// corpus is the regression net for hot-path rewrites: any change that
// moves a single float or event count anywhere in the simulator fails
// here with the exact drifted fields named.
func TestGoldenReports(t *testing.T) {
	s := goldenSuite()
	for _, name := range workloadNames {
		tr, err := s.workload(name)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		window := tr.Duration() + 2*sim.Millisecond
		for _, sc := range goldenSchemes() {
			sc := sc
			t.Run(name+"/"+sc.label, func(t *testing.T) {
				cfg := sc.cfg
				cfg.MeterWindow = window
				res, err := core.Run(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				file := fmt.Sprintf("%s_%s.json", strings.ToLower(name), sc.label)
				writeOrCompareGolden(t, goldenPath(t, file), res.Report)
			})
		}
	}
}

// goldenTechs are the non-default power-model backends the corpus
// pins: a 5-state DDR4 part and a 3-state LPDDR4 part, so the corpus
// covers state machines both deeper and shallower than RDRAM's four.
var goldenTechs = []string{"ddr4-2400", "lpddr4"}

// TestGoldenTechReports diffs Synthetic-St under every Table 2 scheme
// and non-default technology backend against the committed corpus, and
// holds every report to the per-state energy identity: resident state
// energies plus transition and migration energy recover the system
// total (up to float summation order).
func TestGoldenTechReports(t *testing.T) {
	s := goldenSuite()
	tr, err := s.workload("Synthetic-St")
	if err != nil {
		t.Fatal(err)
	}
	window := tr.Duration() + 2*sim.Millisecond
	for _, tech := range goldenTechs {
		for _, sc := range goldenSchemes() {
			tech, sc := tech, sc
			t.Run(tech+"/"+sc.label, func(t *testing.T) {
				cfg := sc.cfg
				cfg.Tech = tech
				cfg.MeterWindow = window
				res, err := core.Run(cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				r := res.Report
				sum := r.Energy[energy.CatTransition] + r.Energy[energy.CatMigration]
				for _, j := range r.StateEnergy {
					sum += j
				}
				if total := r.TotalEnergy(); math.Abs(sum-total) > 1e-9*math.Max(1, math.Abs(total)) {
					t.Errorf("state energies sum to %.12g J, total %.12g J", sum, total)
				}
				file := fmt.Sprintf("synthetic-st_%s_%s.json", sc.label, tech)
				writeOrCompareGolden(t, goldenPath(t, file), r)
			})
		}
	}
}

// fig10ChannelsSpec is the multi-channel sweep slice the sharded
// golden pins: one workload and bus bandwidth, swept over 1/2/4
// channels.
func fig10ChannelsSpec() GridSpec {
	return GridSpec{
		Name:      GridFig10,
		Workloads: []string{"Synthetic-St"},
		BusBW:     []float64{1.064e9},
		Channels:  []int{1, 2, 4},
	}
}

// TestGoldenMultiChannelSweep pins the multi-channel figure 10 points
// against the corpus and proves the sharded executor reproduces them
// byte-identically at 1, 2 and 4 shards — topology serialized through
// the shard protocol included. Running under -race in CI makes this
// the "golden corpus passes under -race at shards 1/2/4" gate.
func TestGoldenMultiChannelSweep(t *testing.T) {
	s := goldenSuite()
	spec := fig10ChannelsSpec()
	want, err := GridRun[SweepPoint](ctx, s, spec)
	if err != nil {
		t.Fatal(err)
	}
	writeOrCompareGolden(t, goldenPath(t, "fig10_channels.json"), want)
	for _, shards := range []int{1, 2, 4} {
		c := &Coordinator{Shards: shards, Timings: &metrics.Timings{}, dial: pipeDial(t)}
		got, err := ShardedGrid[SweepPoint](ctx, c, s.Spec(), spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: sharded multi-channel points differ\ngot  %+v\nwant %+v", shards, got, want)
		}
	}
}
