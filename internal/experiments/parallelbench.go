package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"dmamem/internal/core"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// SparseTrace builds the sparse-cross-channel workload the adaptive
// barrier is designed for: dense shard-local activity with only rare
// cross-channel bus interaction. Every `period` of simulated time, one
// DMA burst issues `channels` transfers whose pages land on distinct
// channels (page-granular interleaving maps page p to channel p mod
// channels); between bursts a steady processor-access stream (one
// access every period/100, rotating over the channels) keeps every
// epoch busy on some shard. Processor accesses never touch the shared
// I/O buses, so a fixed-epoch run pays a rendezvous at essentially
// every BarrierEpoch for nothing, while the adaptive engine proves the
// boundaries idle (the cross bound is the next DMA arrival) and elides
// them, rendezvousing a few times per burst.
func SparseTrace(duration, period sim.Duration, channels int) *trace.Trace {
	if channels < 1 {
		channels = 1
	}
	tr := &trace.Trace{Name: fmt.Sprintf("Sparse-%dch", channels)}
	procEvery := period / 100
	if procEvery <= 0 {
		procEvery = sim.Microsecond
	}
	burst := 0
	for at := sim.Time(period); at < sim.Time(duration); at = at.Add(period) {
		for c := 0; c < channels; c++ {
			kind := trace.DMARead
			src := trace.SrcNetwork
			if (burst+c)%2 == 1 {
				kind = trace.DMAWrite
				src = trace.SrcDisk
			}
			// page ≡ c (mod channels) pins the transfer to channel c;
			// the burst-dependent term spreads bursts over distinct
			// pages within that channel.
			page := memsys.PageID(c + channels*(burst%512))
			tr.Records = append(tr.Records, trace.Record{
				Time:   at.Add(sim.Duration(c) * sim.Microsecond),
				Kind:   kind,
				Source: src,
				Bus:    uint8((burst + c) % 3),
				Pages:  16,
				Page:   page,
			})
		}
		burst++
	}
	i := 0
	for at := sim.Time(procEvery); at < sim.Time(duration); at = at.Add(procEvery) {
		kind := trace.ProcRead
		if i%4 == 3 {
			kind = trace.ProcWrite
		}
		// A distinct page region (high offset) keeps the proc stream
		// off the DMA pages while still rotating across channels.
		page := memsys.PageID(i%channels + channels*(1024+i%256))
		tr.Records = append(tr.Records, trace.Record{
			Time:   at,
			Kind:   kind,
			Source: trace.SrcProcessor,
			Page:   page,
		})
		i++
	}
	sort.SliceStable(tr.Records, func(a, b int) bool {
		return tr.Records[a].Time < tr.Records[b].Time
	})
	return tr
}

// ParallelBenchSpec parameterizes one ParallelBench sweep. Zero-valued
// fields take the defaults used by the committed BENCH_parallel.json.
type ParallelBenchSpec struct {
	// Duration of the dense generated workload (default 25 ms).
	Duration sim.Duration
	// SparseDuration and SparsePeriod shape the sparse workload
	// (defaults 2 s and 2 ms).
	SparseDuration sim.Duration
	SparsePeriod   sim.Duration
	// Seed for the dense generator (default 1).
	Seed uint64
	// Channels and Workers grids (defaults {1, 2, 4} and {0, 1, 2, 4};
	// workers 0 is the serial reference engine).
	Channels []int
	Workers  []int
	// Epoch is the barrier period (default: the engine's 50 us).
	Epoch sim.Duration
	// Repeat runs each cell this many times and keeps the fastest wall
	// clock (default 3).
	Repeat int
}

// ParallelBenchPoint is one cell of the scaling grid.
type ParallelBenchPoint struct {
	Workload     string  `json:"workload"`
	Channels     int     `json:"channels"`
	Workers      int     `json:"workers"` // 0 = serial reference engine
	Fixed        bool    `json:"fixed_epoch"`
	Events       uint64  `json:"events"`
	Seconds      float64 `json:"seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is events/sec over the same workload x channels serial
	// reference cell (1.0 for the reference itself).
	Speedup float64 `json:"speedup_vs_serial"`
}

// ParallelBenchResult is the document BENCH_parallel.json records.
type ParallelBenchResult struct {
	CPUs    int                  `json:"cpus"`
	EpochUs float64              `json:"epoch_us"`
	Points  []ParallelBenchPoint `json:"points"`
}

// ParallelBench measures the epoch-barrier parallel engine's scaling
// across channels x workers, adaptive and fixed, on a dense workload
// (Synthetic-St: barrier cost amortized over heavy event traffic) and
// a sparse one (SparseTrace: barrier cost dominant, the elision
// showcase). Each cell runs the baseline scheme Repeat times and keeps
// the fastest run. Serial cells (workers 0) anchor the per-workload,
// per-channels speedup column.
func ParallelBench(ctx context.Context, spec ParallelBenchSpec) (*ParallelBenchResult, error) {
	if spec.Duration == 0 {
		spec.Duration = 25 * sim.Millisecond
	}
	if spec.SparseDuration == 0 {
		spec.SparseDuration = 2 * sim.Second
	}
	if spec.SparsePeriod == 0 {
		spec.SparsePeriod = 2 * sim.Millisecond
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if len(spec.Channels) == 0 {
		spec.Channels = []int{1, 2, 4}
	}
	if len(spec.Workers) == 0 {
		spec.Workers = []int{0, 1, 2, 4}
	}
	if spec.Repeat <= 0 {
		spec.Repeat = 3
	}
	s := NewSuite(spec.Duration, spec.Seed)
	dense, err := s.workload("Synthetic-St")
	if err != nil {
		return nil, err
	}
	maxCh := 1
	for _, c := range spec.Channels {
		if c > maxCh {
			maxCh = c
		}
	}
	sparse := SparseTrace(spec.SparseDuration, spec.SparsePeriod, maxCh)
	epoch := spec.Epoch
	if epoch == 0 {
		epoch = 50 * sim.Microsecond
	}
	res := &ParallelBenchResult{CPUs: runtime.NumCPU(), EpochUs: epoch.Seconds() * 1e6}

	cell := func(tr *trace.Trace, channels, workers int, fixed bool) (ParallelBenchPoint, error) {
		cfg := core.Config{
			Workers:      workers,
			BarrierEpoch: epoch,
			FixedEpoch:   fixed,
		}
		if channels > 1 {
			cfg.Topology = memsys.Topology{Channels: channels, ChannelBandwidth: 3.2e9}
		}
		p := ParallelBenchPoint{Workload: tr.Name, Channels: channels, Workers: workers, Fixed: fixed}
		for i := 0; i < spec.Repeat; i++ {
			start := time.Now()
			r, err := core.RunContext(ctx, cfg, tr)
			elapsed := time.Since(start).Seconds()
			if err != nil {
				return p, err
			}
			if i == 0 || elapsed < p.Seconds {
				p.Seconds = elapsed
				p.Events = r.Report.Events
			}
		}
		if p.Seconds > 0 {
			p.EventsPerSec = float64(p.Events) / p.Seconds
		}
		return p, nil
	}

	for _, tr := range []*trace.Trace{dense, sparse} {
		for _, channels := range spec.Channels {
			serialRate := 0.0
			for _, workers := range spec.Workers {
				modes := []bool{false}
				if workers > 0 {
					modes = []bool{false, true} // adaptive, then fixed
				}
				for _, fixed := range modes {
					p, err := cell(tr, channels, workers, fixed)
					if err != nil {
						return nil, fmt.Errorf("parallel bench %s ch=%d workers=%d fixed=%v: %w",
							tr.Name, channels, workers, fixed, err)
					}
					if workers == 0 {
						serialRate = p.EventsPerSec
					}
					if serialRate > 0 {
						p.Speedup = p.EventsPerSec / serialRate
					}
					res.Points = append(res.Points, p)
				}
			}
		}
	}
	return res, nil
}

// JSON renders the result as the indented document BENCH_parallel.json
// stores.
func (r *ParallelBenchResult) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FormatParallelBench renders the scaling grid as a text table for the
// CLI and EXPERIMENTS.md.
func FormatParallelBench(r *ParallelBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel engine scaling (%d CPUs, epoch %.0f us)\n", r.CPUs, r.EpochUs)
	fmt.Fprintf(&b, "%-14s %8s %8s %9s %12s %9s\n",
		"workload", "channels", "workers", "barrier", "events/sec", "speedup")
	for _, p := range r.Points {
		mode := "serial"
		if p.Workers > 0 {
			if p.Fixed {
				mode = "fixed"
			} else {
				mode = "adaptive"
			}
		}
		fmt.Fprintf(&b, "%-14s %8d %8d %9s %12.0f %8.2fx\n",
			p.Workload, p.Channels, p.Workers, mode, p.EventsPerSec, p.Speedup)
	}
	return b.String()
}
