package experiments

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"dmamem/internal/core"
	"dmamem/internal/sim"
)

// TestSchedulerFeederBitIdentical is the acceptance cross-check for
// the timer-wheel scheduler and the batched trace feeder: on every
// Table 2 workload and every scheme, all four engine combinations —
// {wheel, heap} x {batched feeder, per-event feeder} — must produce
// reports bit-identical to the reference heap + per-event engine,
// including the dispatch count (Report.Events) and every energy
// breakdown float. The comparison is reflect.DeepEqual over the whole
// metrics.Report, so a single-ulp drift or one extra engine step
// fails.
func TestSchedulerFeederBitIdentical(t *testing.T) {
	s := NewSuite(4*sim.Millisecond, 1)
	s.DbDuration = 2 * sim.Millisecond
	schemes := []struct {
		label string
		cfg   core.Config
	}{
		{"baseline", core.Config{}},
		{"dma-ta", taConfig(0.10, nil)},
		{"dma-ta-pl", taConfig(0.10, plConfig(2))},
	}
	type combo struct {
		label          string
		heap, perEvent bool
	}
	combos := []combo{
		{"wheel+batched", false, false},
		{"wheel+per-event", false, true},
		{"heap+batched", true, false},
		{"heap+per-event", true, true}, // the reference
	}
	for _, name := range workloadNames {
		tr, err := s.workload(name)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		window := tr.Duration() + 2*sim.Millisecond
		for _, sc := range schemes {
			results := make([]*core.Result, len(combos))
			for ci, cb := range combos {
				cfg := sc.cfg
				cfg.MeterWindow = window
				cfg.HeapScheduler = cb.heap
				cfg.PerEventFeeder = cb.perEvent
				if results[ci], err = core.Run(cfg, tr); err != nil {
					t.Fatalf("%s/%s/%s: %v", name, sc.label, cb.label, err)
				}
			}
			ref := results[len(combos)-1]
			if ref.Report.Events == 0 {
				t.Fatalf("%s/%s: reference run dispatched no events", name, sc.label)
			}
			for ci, cb := range combos[:len(combos)-1] {
				if got := results[ci]; !reflect.DeepEqual(got.Report, ref.Report) {
					t.Errorf("%s/%s: %s report differs from heap+per-event\ngot: %+v\nref: %+v",
						name, sc.label, cb.label, got.Report, ref.Report)
				}
			}
		}
	}
}

// TestWheelThroughputSmoke is the CI bench smoke gate: it compares
// wheel vs heap events/sec on the SimulatorThroughput configuration
// (Synthetic-St through a full baseline run) and fails if the wheel
// regresses throughput by more than 10%. Benchmarking inside the
// normal test run would be noise-prone, so the check only arms when
// CI sets DMAMEM_BENCH_SMOKE=1.
func TestWheelThroughputSmoke(t *testing.T) {
	if os.Getenv("DMAMEM_BENCH_SMOKE") == "" {
		t.Skip("set DMAMEM_BENCH_SMOKE=1 to run the scheduler throughput gate")
	}
	s := NewSuite(25*sim.Millisecond, 1)
	tr, err := s.workload("Synthetic-St")
	if err != nil {
		t.Fatal(err)
	}
	eventsPerSec := func(heap bool) float64 {
		var events uint64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{HeapScheduler: heap}, tr)
				if err != nil {
					b.Fatal(err)
				}
				events = res.Report.Events
			}
		})
		return float64(events) * float64(r.N) / r.T.Seconds()
	}
	wheel := eventsPerSec(false)
	heap := eventsPerSec(true)
	ratio := wheel / heap
	t.Logf("wheel %.0f events/sec, heap %.0f events/sec, ratio %.3f", wheel, heap, ratio)
	fmt.Printf("bench-smoke: wheel=%.0f heap=%.0f events/sec (ratio %.3f)\n", wheel, heap, ratio)
	if ratio < 0.90 {
		t.Fatalf("wheel scheduler regresses SimulatorThroughput: %.0f vs %.0f events/sec (ratio %.3f < 0.90)",
			wheel, heap, ratio)
	}
}
