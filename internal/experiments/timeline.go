package experiments

import (
	"fmt"
	"strings"

	"dmamem/internal/dma"
	"dmamem/internal/sim"
)

// Timeline renders the request-level schedules of Figures 2(a) and 3
// as ASCII charts: one row per stream, one column per memory cycle,
// '#' while the chip serves the stream's request and '.' while the
// request stream leaves the chip idle.
type Timeline struct {
	Streams int
	Reqs    int
	UF      float64
	chart   []string
}

const memCycle = 625 * sim.Picosecond

// NewTimeline computes the schedule of n interleaved streams on one
// chip, each delivering one 8-byte request per PCI-X beat.
func NewTimeline(streams, reqs int) *Timeline {
	beat := 12 * memCycle
	serve := 4 * memCycle
	sched := dma.ExactSchedule(0, streams, reqs, beat, serve)
	t := &Timeline{Streams: streams, Reqs: reqs, UF: dma.UtilizationOf(sched)}

	var last sim.Time
	for _, stream := range sched {
		for _, ev := range stream {
			if ev.Done > last {
				last = ev.Done
			}
		}
	}
	cycles := int(int64(last) / int64(memCycle))
	for si, stream := range sched {
		row := make([]byte, cycles)
		for i := range row {
			row[i] = '.'
		}
		for _, ev := range stream {
			from := int(int64(ev.Start) / int64(memCycle))
			to := int(int64(ev.Done) / int64(memCycle))
			for c := from; c < to && c < cycles; c++ {
				row[c] = '#'
			}
		}
		t.chart = append(t.chart, fmt.Sprintf("bus %d |%s|", si, row))
	}
	return t
}

// String renders the chart.
func (t *Timeline) String() string {
	var b strings.Builder
	switch t.Streams {
	case 1:
		fmt.Fprintf(&b, "Figure 2(a): one DMA stream, chip busy 4 of every 12 cycles (uf=%.2f)\n", t.UF)
	case 3:
		fmt.Fprintf(&b, "Figure 3: three aligned streams in lockstep, no idle cycles (uf=%.2f)\n", t.UF)
	default:
		fmt.Fprintf(&b, "%d interleaved streams (uf=%.2f)\n", t.Streams, t.UF)
	}
	for _, row := range t.chart {
		b.WriteString(row)
		b.WriteByte('\n')
	}
	b.WriteString("(one column per 1600 MHz memory cycle; '#' = serving, '.' = idle-active)\n")
	return b.String()
}
