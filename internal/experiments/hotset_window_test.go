package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// recordStWindow streams a Synthetic-St trace of the given duration
// straight to a .dmt container — the trace never exists in memory,
// which is what lets the 10 s window below cost the same peak heap as
// the 100 ms one.
func recordStWindow(t *testing.T, dir string, d sim.Duration) string {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("%dms.dmt", int64(d/sim.Millisecond)))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, "Synthetic-St", trace.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.SetMeta(synth.SyntheticMeta())
	cfg := synth.DefaultSt()
	cfg.Duration = d
	if err := synth.GenerateStTo(cfg, w.Append); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// hotSetCoverage replays a .dmt file through a cursor, trains a
// layout.Manager on the DMA page references of the first half of the
// records (the PL warm-up protocol), rebalances once, and measures
// what fraction of the second half's DMA page references land on
// chips the manager classified hot. That fraction is the "hot-set
// coverage" the rebalance was sized to deliver: the manager claims
// the smallest page prefix absorbing HotShare of the observed
// references, so with a perfect popularity estimate coverage would
// equal HotShare exactly.
func hotSetCoverage(t *testing.T, path string) (cov float64, hotChips, distinct int) {
	t.Helper()
	fr, err := trace.OpenDMTFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	half := fr.Summary().Records / 2

	geo := memsys.Default()
	cfg := layout.DefaultConfig()
	lm, err := layout.New(geo, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cur := fr.Cursor()
	seen := make(map[memsys.PageID]bool)
	var n, hot, total int64
	for {
		r, ok := cur.Next()
		if !ok {
			break
		}
		if n == half {
			lm.Rebalance(nil)
			for c := 0; c < geo.NumChips; c++ {
				if lm.GroupOfChip(c) < cfg.Groups-1 {
					hotChips++
				}
			}
		}
		n++
		if !r.Kind.IsDMA() {
			continue
		}
		for p := r.Page; p < r.Page+memsys.PageID(r.Pages); p++ {
			seen[p] = true
			if n <= half {
				lm.Observe(p)
			} else {
				if lm.GroupOfChip(lm.ChipOf(p)) < cfg.Groups-1 {
					hot++
				}
				total++
			}
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no DMA references after the training half")
	}
	return float64(hot) / float64(total), hotChips, len(seen)
}

// TestHotSetCoverageWindow records Synthetic-St traces 100x apart in
// length through the streaming writer and measures PL hot-set
// coverage on each: train on the first half, rebalance, count the
// fraction of later DMA references hitting hot-group chips. Coverage
// must improve monotonically with the window and converge on the
// configured HotShare design point — the quantitative form of
// EXPERIMENTS.md's "hot-set learnability" difference, and the payoff
// the on-disk trace engine exists to enable (the 10 s window replays
// in the same bounded memory as the 100 ms one).
func TestHotSetCoverageWindow(t *testing.T) {
	dir := t.TempDir()
	windows := []sim.Duration{
		100 * sim.Millisecond,
		1000 * sim.Millisecond,
		10000 * sim.Millisecond,
	}
	covs := make([]float64, len(windows))
	for i, w := range windows {
		path := recordStWindow(t, dir, w)
		cov, hotChips, distinct := hotSetCoverage(t, path)
		covs[i] = cov
		t.Logf("window %6d ms: distinct pages %6d, hot chips %d/%d, coverage %.1f%%",
			int64(w/sim.Millisecond), distinct, hotChips, memsys.Default().NumChips, 100*cov)
		if max := memsys.Default().NumChips / 4; hotChips > max {
			t.Errorf("window %v: hot set spread over %d chips, want <= %d (no consolidation)",
				w, hotChips, max)
		}
	}
	for i := 1; i < len(covs); i++ {
		if covs[i] <= covs[i-1] {
			t.Errorf("coverage did not improve with window: %.3f (window %v) <= %.3f (window %v)",
				covs[i], windows[i], covs[i-1], windows[i-1])
		}
	}
	share := layout.DefaultConfig().HotShare
	if last := covs[len(covs)-1]; last < share-0.02 {
		t.Errorf("longest window coverage %.3f did not converge on HotShare %.2f", last, share)
	}
}
