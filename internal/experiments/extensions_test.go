package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

func TestMultiSeedSavings(t *testing.T) {
	st, err := MultiSeedSavings(ctx, NewRunner(4), 15*sim.Millisecond, 3, taConfig(0.10, plConfig(2)))
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 3 {
		t.Fatalf("N = %d", st.N)
	}
	if st.Mean <= 0 {
		t.Fatalf("mean savings %.2f%%", 100*st.Mean)
	}
	if st.Min > st.Mean || st.Max < st.Mean {
		t.Fatalf("ordering broken: min %g mean %g max %g", st.Min, st.Mean, st.Max)
	}
	if st.StdDev < 0 {
		t.Fatal("negative stddev")
	}
	// Savings should be reasonably stable across seeds.
	if st.StdDev > 0.15 {
		t.Fatalf("stddev %.1f%% implausibly large", 100*st.StdDev)
	}
	if FormatSeedStats(st) == "" {
		t.Fatal("empty rendering")
	}
	if _, err := MultiSeedSavings(ctx, nil, sim.Millisecond, 0, taConfig(0.1, nil)); err == nil {
		t.Fatal("zero seeds accepted")
	}
}

func TestDSSExtension(t *testing.T) {
	rows, err := DSSExtension(ctx, NewRunner(2), 40*sim.Millisecond, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The honest negative: neither technique should find much to
		// save in scan traffic — nor should it cost much.
		if r.Savings < -0.05 || r.Savings > 0.15 {
			t.Errorf("%s: DSS savings %.1f%% outside the expected near-zero band",
				r.Scheme, 100*r.Savings)
		}
		// Scans overlap naturally, so the baseline uf is already above
		// the lone-stream 1/3.
		if r.BaselineUF < 0.33 {
			t.Errorf("%s: baseline uf %.2f below lone-stream level", r.Scheme, r.BaselineUF)
		}
	}
	if !strings.Contains(FormatDSS(rows), "decision support") {
		t.Fatal("format broken")
	}
}

func TestTechExtension(t *testing.T) {
	rows, err := TechExtension(ctx, nil, 20*sim.Millisecond, 1, []string{"rdram", "ddr400"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	rdram, ddr := rows[0], rows[1]
	if rdram.Tech != "rdram" || rdram.Part != "rdram-1600" ||
		ddr.Tech != "ddr400" || ddr.Part != "ddr-400" {
		t.Fatalf("rows: %+v", rows)
	}
	// DDR's lower memory:bus ratio means a higher baseline utilization
	// and smaller savings — Section 5.4's point.
	if ddr.BaselineUF <= rdram.BaselineUF {
		t.Errorf("DDR baseline uf %.2f not above RDRAM %.2f", ddr.BaselineUF, rdram.BaselineUF)
	}
	if ddr.Savings >= rdram.Savings {
		t.Errorf("DDR savings %.1f%% not below RDRAM %.1f%%", 100*ddr.Savings, 100*rdram.Savings)
	}
	if rdram.Savings <= 0 {
		t.Errorf("RDRAM savings %.1f%%", 100*rdram.Savings)
	}
	// Per-state resident energies plus transition and migration recover
	// the system total for every backend.
	for _, r := range rows {
		sum := r.TransitionJ + r.MigrationJ
		for _, st := range r.States {
			sum += st.Joules
		}
		if math.Abs(sum-r.TotalJ) > 1e-9*math.Max(1, math.Abs(r.TotalJ)) {
			t.Errorf("%s: state energies sum to %.12g J, total %.12g J", r.Tech, sum, r.TotalJ)
		}
	}
	if !strings.Contains(FormatTech(rows), "rdram-1600") {
		t.Fatal("format broken")
	}
}

func TestTechExtensionDefaultSweepsRegistry(t *testing.T) {
	rows, err := TechExtension(ctx, NewRunner(4), 5*sim.Millisecond, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(energy.Techs()) {
		t.Fatalf("got %d rows for %d registered technologies", len(rows), len(energy.Techs()))
	}
	for i, name := range energy.Techs() {
		if rows[i].Tech != name {
			t.Errorf("row %d is %q, want %q", i, rows[i].Tech, name)
		}
		if len(rows[i].States) < 2 {
			t.Errorf("%s: only %d states reported", name, len(rows[i].States))
		}
	}
	if _, err := TechExtension(ctx, nil, sim.Millisecond, 1, []string{"sram"}); err == nil {
		t.Fatal("unknown technology accepted")
	}
}

func TestParseTechList(t *testing.T) {
	got, err := ParseTechList(" DDR4-2400, lpddr4 ,rdram")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"ddr4-2400", "lpddr4", "rdram"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got, err := ParseTechList("  "); err != nil || got != nil {
		t.Fatalf("blank list: %v, %v", got, err)
	}
	for _, bad := range []string{"ddr4-2400,,lpddr4", "sram", "rdram,rdram", "rdram,rdram-1600"} {
		if _, err := ParseTechList(bad); err == nil {
			t.Errorf("ParseTechList(%q) accepted", bad)
		}
	}
	// The duplicate error names both entries and the backend they share.
	_, err = ParseTechList("rdram,rdram-1600")
	if err == nil || !strings.Contains(err.Error(), "duplicates") {
		t.Fatalf("alias-duplicate error: %v", err)
	}
}
