package experiments

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// FuzzShardFrame feeds arbitrary bytes to the shard frame decoder. The
// decoder sits on the coordinator's network-facing path, so whatever a
// worker (or something pretending to be one) sends, it must fail with
// an error — io error or errMalformed — never panic, never allocate
// beyond maxFrame, and any payload it does return must be exactly the
// bytes after the prefix. Payloads that happen to be valid JSON are
// additionally pushed through the ShardResponse/ShardRequest decoders,
// which must also never panic.
func FuzzShardFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		return append(hdr[:], payload...)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 5, 'h', 'i'}) // truncated payload
	f.Add(frame([]byte(`{"Index":3,"Point":{"X":1}}`)))
	f.Add(frame([]byte(`{"Done":true}`)))
	f.Add(frame([]byte(`{"Err":"boom"}`)))
	f.Add(frame([]byte(`{"Version":1,"Grid":{"Name":"fig10","Channels":[1,2,4]}}`)))
	f.Add(frame([]byte(`not json`)))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrameBytes(bytes.NewReader(data))
		if err != nil {
			if payload != nil {
				t.Fatalf("decoder returned both payload and error %v", err)
			}
			okErr := errors.Is(err, errMalformed) ||
				errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
			if !okErr {
				t.Fatalf("unexpected error class from frame decoder: %v", err)
			}
			return
		}
		if len(payload) == 0 || len(payload) > maxFrame {
			t.Fatalf("decoder returned %d bytes outside (0, maxFrame]", len(payload))
		}
		if !bytes.Equal(payload, data[4:4+len(payload)]) {
			t.Fatal("payload does not match the framed bytes")
		}
		var resp ShardResponse
		if json.Unmarshal(payload, &resp) == nil && resp.Err == "" && !resp.Done && resp.Index < 0 {
			// Negative indices are representable on the wire; the
			// coordinator rejects them as malformed (covered by the
			// malformed-frame tests), the decoder just passes them up.
			t.Logf("negative index %d decoded (coordinator's problem)", resp.Index)
		}
		var req ShardRequest
		_ = json.Unmarshal(payload, &req)
	})
}

// FuzzShardFrameRoundTrip pins the codec identity: any JSON-encodable
// response written by writeFrame must read back byte-identically.
func FuzzShardFrameRoundTrip(f *testing.F) {
	f.Add(3, []byte(`{"X":1.5}`), "", false)
	f.Add(0, []byte(`null`), "worker exploded", true)
	f.Add(-7, []byte(`{}`), "", false)
	f.Fuzz(func(t *testing.T, index int, point []byte, errStr string, done bool) {
		if !json.Valid(point) {
			return // RawMessage must carry valid JSON to marshal
		}
		resp := ShardResponse{Index: index, Point: point, Err: errStr, Done: done}
		var buf bytes.Buffer
		if err := writeFrame(&buf, resp); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		payload, err := readFrameBytes(&buf)
		if err != nil {
			t.Fatalf("readFrameBytes after writeFrame: %v", err)
		}
		var got ShardResponse
		if err := json.Unmarshal(payload, &got); err != nil {
			t.Fatalf("unmarshal round-tripped frame: %v", err)
		}
		if got.Index != resp.Index || got.Err != resp.Err || got.Done != resp.Done {
			t.Fatalf("round trip changed the frame: %+v -> %+v", resp, got)
		}
	})
}
