package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"dmamem/internal/metrics"
)

func TestRunnerNilSequentialOrder(t *testing.T) {
	var r *Runner
	var order []int
	jobs := make([]Job, 5)
	for i := range jobs {
		i := i
		jobs[i] = Job{Label: "seq", Run: func(context.Context) error {
			order = append(order, i)
			return nil
		}}
	}
	// A nil Runner runs on the calling goroutine — appending to a
	// shared slice without locks is safe and must preserve job order.
	if err := r.Do(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestRunnerFirstErrorInJobOrder(t *testing.T) {
	sentinel := errors.New("boom")
	const failAt = 13
	var ran int32
	jobs := make([]Job, 20)
	for i := range jobs {
		i := i
		jobs[i] = Job{Label: "job-13", Run: func(context.Context) error {
			atomic.AddInt32(&ran, 1)
			if i == failAt {
				return sentinel
			}
			return nil
		}}
	}
	err := NewRunner(8).Do(ctx, jobs)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "job-13") {
		t.Fatalf("error %q not labeled", err)
	}
}

func TestRunnerCancelSkipsSiblings(t *testing.T) {
	sentinel := errors.New("boom")
	var started int32
	jobs := make([]Job, 64)
	for i := range jobs {
		i := i
		jobs[i] = Job{Label: "j", Run: func(ctx context.Context) error {
			atomic.AddInt32(&started, 1)
			if i == 0 {
				return sentinel
			}
			// Siblings park until the failure cancels them.
			<-ctx.Done()
			return nil
		}}
	}
	if err := NewRunner(4).Do(ctx, jobs); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	// The failure must abort the feed: far fewer than 64 jobs start.
	if n := atomic.LoadInt32(&started); n >= 64 {
		t.Fatalf("all %d jobs started despite early failure", n)
	}
}

func TestRunnerParentCancellation(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job{{Label: "never", Run: func(context.Context) error {
		t.Error("job ran under canceled context")
		return nil
	}}}
	if err := NewRunner(1).Do(canceled, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential: err = %v", err)
	}
	if err := NewRunner(4).Do(canceled, append(jobs, jobs[0], jobs[0])); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel: err = %v", err)
	}
}

func TestMapJobsIndexStable(t *testing.T) {
	out, err := mapJobs(ctx, NewRunner(8), 32,
		func(i int) string { return "sq" },
		func(_ context.Context, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d: results not reassembled by index", i, v)
		}
	}
}

func TestRunnerRecordsTimings(t *testing.T) {
	r := NewRunner(2)
	r.Timings = &metrics.Timings{}
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{Label: "timed", Run: func(context.Context) error { return nil }}
	}
	if err := r.Do(ctx, jobs); err != nil {
		t.Fatal(err)
	}
	if got := r.Timings.Count(); got != len(jobs) {
		t.Fatalf("recorded %d timings, want %d", got, len(jobs))
	}
}
