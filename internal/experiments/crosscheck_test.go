package experiments

import (
	"reflect"
	"testing"

	"dmamem/internal/core"
	"dmamem/internal/sim"
)

// TestDirtyAccountingBitIdentical is the cross-check for the
// controller's dirty-set accounting: on every Table 2 workload and
// every scheme, a run with the dirty set must produce a report
// bit-identical — energy breakdown floats included — to a run with
// the reference full scan (Config.FullScanAccounting). The comparison
// uses reflect.DeepEqual over the whole metrics.Report, so any float
// that drifts by one ulp fails the test.
func TestDirtyAccountingBitIdentical(t *testing.T) {
	s := NewSuite(4*sim.Millisecond, 1)
	s.DbDuration = 2 * sim.Millisecond
	schemes := []struct {
		label string
		cfg   core.Config
	}{
		{"baseline", core.Config{}},
		{"dma-ta", taConfig(0.10, nil)},
		{"dma-ta-pl", taConfig(0.10, plConfig(2))},
	}
	for _, name := range workloadNames {
		tr, err := s.workload(name)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		window := tr.Duration() + 2*sim.Millisecond
		var baseDirty, baseFull *core.Result
		for _, sc := range schemes {
			dirtyCfg := sc.cfg
			dirtyCfg.MeterWindow = window
			fullCfg := dirtyCfg
			fullCfg.FullScanAccounting = true

			dirty, err := core.Run(dirtyCfg, tr)
			if err != nil {
				t.Fatalf("%s/%s dirty run: %v", name, sc.label, err)
			}
			full, err := core.Run(fullCfg, tr)
			if err != nil {
				t.Fatalf("%s/%s full-scan run: %v", name, sc.label, err)
			}
			if !reflect.DeepEqual(dirty.Report, full.Report) {
				t.Errorf("%s/%s: dirty report differs from full scan\ndirty: %+v\nfull:  %+v",
					name, sc.label, dirty.Report, full.Report)
			}
			if d, f := dirty.Report.UtilizationFactor, full.Report.UtilizationFactor; d != f {
				t.Errorf("%s/%s: uf %v != %v", name, sc.label, d, f)
			}
			if sc.label == "baseline" {
				baseDirty, baseFull = dirty, full
				continue
			}
			// Savings is the headline derived metric; compare it
			// explicitly even though DeepEqual already covers the inputs.
			if d, f := dirty.Report.Savings(baseDirty.Report), full.Report.Savings(baseFull.Report); d != f {
				t.Errorf("%s/%s: savings %v != %v", name, sc.label, d, f)
			}
		}
	}
}
