package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dmamem/internal/metrics"
)

// Job is one independent unit of experiment work — typically a single
// simulation run (one scheme over one workload at one sweep point).
// Jobs handed to the same Runner.Do call must not share mutable state:
// each runs its own sim.Engine, which is owned by exactly one
// goroutine (see the internal/sim package documentation).
type Job struct {
	// Label identifies the job in errors and timing reports.
	Label string
	// Run does the work. It must confine all mutable state to the
	// calling goroutine; ctx is canceled when a sibling job fails or
	// the caller gives up.
	Run func(ctx context.Context) error
	// Events may be set by Run to the number of simulation events the
	// job dispatched; the runner folds it into the timing report for
	// events/sec throughput.
	Events uint64
}

// simEventser is implemented by job results that know how many
// simulation events they dispatched (e.g. *core.Result); mapJobs uses
// it to fill Job.Events without the result types importing this
// package.
type simEventser interface{ SimEvents() uint64 }

// Runner fans independent simulation jobs across a pool of worker
// goroutines. Results stay deterministic because parallelism only
// reorders *execution*: every job writes to its own pre-assigned slot,
// every simulation runs on its own single-goroutine engine, and
// callers reassemble outputs in job order. A nil *Runner is valid and
// runs jobs sequentially on the calling goroutine; the output is
// byte-identical either way.
type Runner struct {
	// Parallel is the number of worker goroutines; <= 0 means
	// runtime.GOMAXPROCS(0).
	Parallel int
	// Timings, when non-nil, records per-job wall-clock time so
	// speedup is observable. Timing is observability only and never
	// influences results.
	Timings *metrics.Timings
}

// NewRunner returns a Runner with the given worker count (<= 0 means
// GOMAXPROCS).
func NewRunner(parallel int) *Runner { return &Runner{Parallel: parallel} }

// workers resolves the effective pool size. A nil Runner is
// sequential.
func (r *Runner) workers() int {
	if r == nil {
		return 1
	}
	if r.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Parallel
}

// runOne executes one job, recording its wall-clock time and wrapping
// any error with the job label.
func (r *Runner) runOne(ctx context.Context, j *Job) error {
	start := time.Now()
	err := j.Run(ctx)
	if r != nil && r.Timings != nil {
		r.Timings.AddSim(j.Label, time.Since(start), j.Events)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", j.Label, err)
	}
	return nil
}

// Do executes the jobs across the worker pool and returns the first
// error in job order (not completion order), so error reporting is as
// deterministic as the results. When a job fails, the context passed
// to the remaining jobs is canceled and unstarted jobs are skipped.
// A canceled parent context is returned as-is when no job failed.
func (r *Runner) Do(ctx context.Context, jobs []Job) error {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := r.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := r.runOne(ctx, &jobs[i]); err != nil {
				return err
			}
		}
		return nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, len(jobs))
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					return
				}
				if err := r.runOne(ctx, &jobs[i]); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return parent.Err()
}

// mapJobs runs fn for every index in [0,n) on r's pool and returns the
// results indexed like the inputs — the reassembly step that keeps
// parallel output identical to sequential output regardless of
// completion order.
func mapJobs[R any](ctx context.Context, r *Runner, n int, label func(i int) string, fn func(ctx context.Context, i int) (R, error)) ([]R, error) {
	out := make([]R, n)
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		job := &jobs[i]
		*job = Job{Label: label(i), Run: func(ctx context.Context) error {
			v, err := fn(ctx, i)
			if err != nil {
				return err
			}
			if se, ok := any(v).(simEventser); ok {
				job.Events = se.SimEvents()
			}
			out[i] = v
			return nil
		}}
	}
	if err := r.Do(ctx, jobs); err != nil {
		return nil, err
	}
	return out, nil
}
