package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmamem/internal/metrics"
	"dmamem/internal/sim"
)

// TestMain lets the test binary double as a shard worker process:
// the real-process tests (and the sharded benchmark in the root
// package) re-exec the binary with this variable set, turning it into
// a ServeShard loop on stdin/stdout.
func TestMain(m *testing.M) {
	if os.Getenv("DMAMEM_SHARD_WORKER") == "1" {
		if err := ServeShard(context.Background(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// pipeTransport runs ServeShard in-process over a net.Pipe — the
// whole protocol without subprocess cost.
type pipeTransport struct {
	net.Conn
}

func (pipeTransport) Name() string { return "pipe worker" }

func pipeDial(t *testing.T) func(ctx context.Context, shard, attempt int) (shardTransport, error) {
	return func(ctx context.Context, shard, attempt int) (shardTransport, error) {
		client, server := net.Pipe()
		go func() {
			defer server.Close()
			if err := ServeShard(ctx, server, server); err != nil && ctx.Err() == nil {
				t.Logf("pipe worker: %v", err)
			}
		}()
		return pipeTransport{client}, nil
	}
}

func shardSpec() SuiteSpec {
	return SuiteSpec{Duration: 10 * sim.Millisecond, Seed: 1}
}

func fig8Spec() GridSpec {
	return GridSpec{Name: GridFig8, RatesPerMs: []float64{25, 100}}
}

// TestShardedGridDeterminism is the package-level form of the PR's
// headline contract: the sharded executor's decoded points — and
// therefore any rendering of them — equal the in-process runner's at
// shard counts 1, 2, and 4.
func TestShardedGridDeterminism(t *testing.T) {
	want, err := GridRun[SweepPoint](ctx, NewSuiteFromSpec(shardSpec()), fig8Spec())
	if err != nil {
		t.Fatal(err)
	}
	wantText := FormatSweep("t", "x", want)
	for _, shards := range []int{1, 2, 4} {
		c := &Coordinator{Shards: shards, Timings: &metrics.Timings{}, dial: pipeDial(t)}
		got, err := ShardedGrid[SweepPoint](ctx, c, shardSpec(), fig8Spec())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: points differ\ngot  %+v\nwant %+v", shards, got, want)
		}
		if gotText := FormatSweep("t", "x", got); gotText != wantText {
			t.Errorf("shards=%d: rendered output differs\ngot:\n%s\nwant:\n%s", shards, gotText, wantText)
		}
		if c.Timings.Count() == 0 {
			t.Errorf("shards=%d: no worker timings merged", shards)
		}
	}
}

// TestShardCrashMidSliceRetried kills the first worker of shard 0
// after it has delivered one point; the retried slice must leave the
// reassembled results byte-identical to the in-process run.
func TestShardCrashMidSliceRetried(t *testing.T) {
	want, err := GridRun[SweepPoint](ctx, NewSuiteFromSpec(shardSpec()), fig8Spec())
	if err != nil {
		t.Fatal(err)
	}
	var crashes atomic.Int32
	normal := pipeDial(t)
	dial := func(ctx context.Context, shard, attempt int) (shardTransport, error) {
		if shard != 0 || attempt != 0 {
			return normal(ctx, shard, attempt)
		}
		crashes.Add(1)
		client, server := net.Pipe()
		go func() {
			// A worker that dies mid-slice: request in, one real point
			// out, then the process is gone — no Done frame.
			defer server.Close()
			payload, err := readFrameBytes(server)
			if err != nil {
				return
			}
			var req ShardRequest
			if err := json.Unmarshal(payload, &req); err != nil {
				return
			}
			s := NewSuiteFromSpec(req.Suite)
			g, err := s.resolveGrid(req.Grid)
			if err != nil {
				return
			}
			v, _, err := g.run(ctx, req.Points[0])
			if err != nil {
				return
			}
			b, _ := json.Marshal(v)
			writeFrame(server, ShardResponse{Index: req.Points[0], Point: b})
		}()
		return pipeTransport{client}, nil
	}
	c := &Coordinator{Shards: 2, dial: dial}
	got, err := ShardedGrid[SweepPoint](ctx, c, shardSpec(), fig8Spec())
	if err != nil {
		t.Fatal(err)
	}
	if crashes.Load() != 1 {
		t.Fatalf("crash transport used %d times, want 1", crashes.Load())
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("points after crash+retry differ\ngot  %+v\nwant %+v", got, want)
	}
}

// TestShardCancellation cancels the sweep while every worker is
// wedged; Run must tear the transports down and return promptly.
func TestShardCancellation(t *testing.T) {
	var closed atomic.Int32
	dial := func(ctx context.Context, shard, attempt int) (shardTransport, error) {
		return &hungTransport{closedCount: &closed, done: make(chan struct{})}, nil
	}
	cctx, cancel := context.WithCancel(ctx)
	c := &Coordinator{Shards: 2, dial: dial}
	errc := make(chan error, 1)
	go func() {
		_, err := c.Run(cctx, shardSpec(), fig8Spec())
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if closed.Load() == 0 {
		t.Error("no transport was closed on cancellation")
	}
}

// hungTransport swallows the request and never responds — a wedged
// worker. Close unblocks pending reads.
type hungTransport struct {
	closedCount *atomic.Int32
	done        chan struct{}
	once        sync.Once
}

func (h *hungTransport) Read(b []byte) (int, error)  { <-h.done; return 0, io.EOF }
func (h *hungTransport) Write(b []byte) (int, error) { return len(b), nil }
func (h *hungTransport) Name() string                { return "hung worker" }
func (h *hungTransport) Close() error {
	h.once.Do(func() {
		if h.closedCount != nil {
			h.closedCount.Add(1)
		}
		close(h.done)
	})
	return nil
}

// cannedTransport replays fixed response bytes, then EOF.
type cannedTransport struct{ r *bytes.Reader }

func (c *cannedTransport) Read(b []byte) (int, error)  { return c.r.Read(b) }
func (c *cannedTransport) Write(b []byte) (int, error) { return len(b), nil }
func (c *cannedTransport) Close() error                { return nil }
func (c *cannedTransport) Name() string                { return "canned worker" }

func canned(t *testing.T, frames ...any) *cannedTransport {
	var buf bytes.Buffer
	for _, f := range frames {
		if raw, ok := f.([]byte); ok {
			buf.Write(raw)
			continue
		}
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	return &cannedTransport{r: bytes.NewReader(buf.Bytes())}
}

// TestShardMalformedResponse feeds the coordinator protocol garbage;
// each case must fail hard (no retry) with an error naming the shard.
func TestShardMalformedResponse(t *testing.T) {
	garbageFrame := []byte{0, 0, 0, 2, '{', 'x'} // framed, but not JSON
	hugeFrame := []byte{0xff, 0xff, 0xff, 0xff}  // 4 GiB length prefix
	pt, _ := json.Marshal(SweepPoint{})
	cases := []struct {
		name   string
		frames []any
		want   string
	}{
		{"not json", []any{garbageFrame}, "malformed"},
		{"huge frame", []any{hugeFrame}, "malformed"},
		{"point outside slice", []any{ShardResponse{Index: 999, Point: pt}}, "outside slice"},
		{"duplicate point", []any{ShardResponse{Index: 0, Point: pt}, ShardResponse{Index: 0, Point: pt}}, "duplicate point"},
		{"empty point", []any{ShardResponse{Index: 0}}, "no payload"},
		{"done too early", []any{ShardResponse{Done: true}}, "Done after 0 of"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var attempts atomic.Int32
			dial := func(ctx context.Context, shard, attempt int) (shardTransport, error) {
				attempts.Add(1)
				return canned(t, tc.frames...), nil
			}
			c := &Coordinator{Shards: 1, dial: dial}
			_, err := c.Run(ctx, shardSpec(), fig8Spec())
			if err == nil {
				t.Fatal("Run succeeded on malformed response")
			}
			if want := "shard 0/1"; !contains(err.Error(), want) {
				t.Errorf("error %q does not name the shard (%q)", err, want)
			}
			if !contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
			if attempts.Load() != 1 {
				t.Errorf("%d attempts, want 1 (malformed responses must not be retried)", attempts.Load())
			}
		})
	}
}

// TestShardWorkerErrorNotRetried: an error the worker itself reports
// is a result, not a transport failure — retrying cannot change it.
func TestShardWorkerErrorNotRetried(t *testing.T) {
	var attempts atomic.Int32
	dial := func(ctx context.Context, shard, attempt int) (shardTransport, error) {
		attempts.Add(1)
		return canned(t, ShardResponse{Err: "boom"}), nil
	}
	c := &Coordinator{Shards: 1, dial: dial}
	_, err := c.Run(ctx, shardSpec(), fig8Spec())
	if err == nil || !contains(err.Error(), "worker error: boom") {
		t.Fatalf("err = %v, want worker error: boom", err)
	}
	if attempts.Load() != 1 {
		t.Errorf("%d attempts, want 1", attempts.Load())
	}
}

// TestShardTimeoutRetried: a worker that never answers trips the
// per-attempt timeout, and the slice succeeds on a fresh worker.
func TestShardTimeoutRetried(t *testing.T) {
	var attempts atomic.Int32
	normal := pipeDial(t)
	dial := func(ctx context.Context, shard, attempt int) (shardTransport, error) {
		if attempts.Add(1) == 1 {
			return &hungTransport{done: make(chan struct{})}, nil
		}
		return normal(ctx, shard, attempt)
	}
	c := &Coordinator{Shards: 1, Timeout: 100 * time.Millisecond, dial: dial}
	got, err := ShardedGrid[SweepPoint](ctx, c, shardSpec(), GridSpec{Name: GridNoop, Points: 3})
	if err != nil {
		t.Fatal(err)
	}
	if attempts.Load() != 2 {
		t.Errorf("%d attempts, want 2 (timeout then success)", attempts.Load())
	}
	if len(got) != 3 || got[2].X != 2 {
		t.Errorf("points = %+v", got)
	}
}

// TestShardRetryBudgetExhausted: a slice that keeps dying transports
// eventually fails with the shard named in the error.
func TestShardRetryBudgetExhausted(t *testing.T) {
	var attempts atomic.Int32
	dial := func(ctx context.Context, shard, attempt int) (shardTransport, error) {
		attempts.Add(1)
		return canned(t), nil // immediate EOF: worker died on arrival
	}
	c := &Coordinator{Shards: 1, Retries: 1, dial: dial}
	_, err := c.Run(ctx, shardSpec(), GridSpec{Name: GridNoop, Points: 2})
	if err == nil {
		t.Fatal("Run succeeded with workers that always die")
	}
	if !contains(err.Error(), "shard 0/1") {
		t.Errorf("error %q does not name the shard", err)
	}
	if attempts.Load() != 2 {
		t.Errorf("%d attempts, want 2 (initial + 1 retry)", attempts.Load())
	}
}

// TestShardProtocolVersion: a worker rejects requests from a
// different protocol generation instead of guessing.
func TestShardProtocolVersion(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	go func() {
		defer server.Close()
		ServeShard(ctx, server, server)
	}()
	if err := writeFrame(client, ShardRequest{Version: 99}); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrameBytes(client)
	if err != nil {
		t.Fatal(err)
	}
	var resp ShardResponse
	if err := json.Unmarshal(payload, &resp); err != nil {
		t.Fatal(err)
	}
	if !contains(resp.Err, "protocol version 99") {
		t.Errorf("worker response = %+v, want protocol version error", resp)
	}
}

// TestShardTCPTransport runs a sharded sweep against a live TCP
// worker pool (ServeShards on a loopback listener).
func TestShardTCPTransport(t *testing.T) {
	want, err := GridRun[SweepPoint](ctx, NewSuiteFromSpec(shardSpec()), fig8Spec())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		ServeShards(sctx, ln, nil)
	}()
	c := &Coordinator{Shards: 2, Addrs: []string{ln.Addr().String()}}
	got, err := ShardedGrid[SweepPoint](ctx, c, shardSpec(), fig8Spec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TCP-sharded points differ\ngot  %+v\nwant %+v", got, want)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeShards did not stop on cancellation")
	}
}

// TestShardRealProcesses re-execs the test binary as worker
// subprocesses (see TestMain) — the full production transport,
// process spawn and teardown included.
func TestShardRealProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	want, err := GridRun[SweepPoint](ctx, NewSuiteFromSpec(shardSpec()), fig8Spec())
	if err != nil {
		t.Fatal(err)
	}
	c := &Coordinator{
		Shards:        2,
		WorkerCommand: []string{exe},
		WorkerEnv:     []string{"DMAMEM_SHARD_WORKER=1"},
		Timings:       &metrics.Timings{},
	}
	got, err := ShardedGrid[SweepPoint](ctx, c, shardSpec(), fig8Spec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("process-sharded points differ\ngot  %+v\nwant %+v", got, want)
	}
	if c.Timings.Count() == 0 {
		t.Error("no worker timings merged from subprocesses")
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
