// Shard worker protocol: the wire format and worker loop of the
// process-sharded sweep executor.
//
// A worker session is one request/response exchange over a byte
// stream (a subprocess's stdin/stdout pipes, or one TCP connection):
//
//	coordinator -> worker   ShardRequest   (one frame)
//	worker -> coordinator   ShardResponse  (one frame per finished
//	                        point, in completion order, then a final
//	                        Done frame carrying the worker's timings)
//
// Every frame is a 4-byte big-endian length prefix followed by that
// many bytes of JSON. Results are keyed by global grid point index,
// so the coordinator reassembles them in deterministic sweep order no
// matter how execution interleaved across workers; a worker that dies
// mid-slice simply never sends Done, and the coordinator retries the
// whole slice on a fresh worker (simulations are deterministic, so a
// retried slice reproduces the lost points bit for bit).
package experiments

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"dmamem/internal/metrics"
)

// shardProtoVersion guards against mixed-version fleets: a worker
// rejects requests whose version it does not speak instead of
// producing silently different results.
const shardProtoVersion = 1

// maxFrame bounds one frame's payload; larger prefixes are treated as
// stream corruption rather than honored with a giant allocation.
const maxFrame = 64 << 20

// errMalformed tags protocol-level corruption (bad length prefix,
// unparseable JSON, out-of-slice point index). The coordinator treats
// it as a hard error — a worker that cannot speak the protocol will
// not be fixed by a retry — and wraps it with the shard identity.
var errMalformed = errors.New("malformed shard response")

// ShardRequest is the coordinator's single frame to a worker: the
// full experiment configuration plus the slice of grid point indices
// this worker owns.
type ShardRequest struct {
	// Version of the protocol (shardProtoVersion).
	Version int
	// Suite reconstructs the experiment configuration.
	Suite SuiteSpec
	// Grid names the sweep and its parameters.
	Grid GridSpec
	// Points are the global grid indices of this worker's slice.
	Points []int
	// Parallel is the worker-local goroutine count for its slice
	// (<= 0 means 1).
	Parallel int
}

// ShardResponse is one worker frame: either a finished point
// (Index + Point), a fatal worker error (Err), or the final Done
// frame with the worker's per-job timings.
type ShardResponse struct {
	// Index is the global grid index of the finished point.
	Index int
	// Point is the JSON encoding of the point value.
	Point json.RawMessage `json:",omitempty"`
	// Err, when non-empty, reports a fatal worker-side error; no
	// further frames follow.
	Err string `json:",omitempty"`
	// Done marks the final frame of a successful slice.
	Done bool `json:",omitempty"`
	// Timings are the worker's per-job wall-clock records (Done frame
	// only); the coordinator folds them into its Timings via Merge.
	Timings []metrics.JobTiming `json:",omitempty"`
}

// writeFrame marshals v and writes it as one length-prefixed frame.
func writeFrame(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readFrameBytes reads one length-prefixed frame payload. IO errors
// (including a stream that ends mid-frame) pass through for the
// caller to classify; an absurd length prefix is errMalformed.
func readFrameBytes(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("%w: frame length %d", errMalformed, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ServeShard runs one worker session: read a ShardRequest from r,
// execute its slice of the grid on a local worker pool, and stream
// one response frame per finished point to w, ending with a Done
// frame. Both dmamem-bench and dmamem-sim expose it behind
// -shard-worker (stdin/stdout) and -shard-listen (TCP).
func ServeShard(ctx context.Context, r io.Reader, w io.Writer) error {
	payload, err := readFrameBytes(r)
	if err != nil {
		return fmt.Errorf("experiments: shard worker: read request: %w", err)
	}
	var req ShardRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return failShard(w, fmt.Errorf("experiments: shard worker: decode request: %w", err))
	}
	if req.Version != shardProtoVersion {
		return failShard(w, fmt.Errorf("experiments: shard worker: protocol version %d, want %d", req.Version, shardProtoVersion))
	}
	s := NewSuiteFromSpec(req.Suite)
	g, err := s.resolveGrid(req.Grid)
	if err != nil {
		return failShard(w, err)
	}
	for _, idx := range req.Points {
		if idx < 0 || idx >= g.n {
			return failShard(w, fmt.Errorf("experiments: shard worker: point %d outside grid %s (%d points)", idx, req.Grid.Name, g.n))
		}
	}
	par := req.Parallel
	if par < 1 {
		par = 1
	}
	tim := &metrics.Timings{}
	s.Runner = &Runner{Parallel: par, Timings: tim}

	// Every job streams its result as soon as it finishes; the write
	// mutex keeps frames whole. A failed write (coordinator gone,
	// pipe closed) cancels the remaining jobs through the runner.
	var (
		wmu  sync.Mutex
		werr error
	)
	jobs := make([]Job, len(req.Points))
	for k, idx := range req.Points {
		idx := idx
		job := &jobs[k]
		*job = Job{Label: g.label(idx), Run: func(ctx context.Context) error {
			v, events, err := g.run(ctx, idx)
			if err != nil {
				return err
			}
			job.Events = events
			b, err := json.Marshal(v)
			if err != nil {
				return err
			}
			wmu.Lock()
			defer wmu.Unlock()
			if werr != nil {
				return werr
			}
			if err := writeFrame(w, ShardResponse{Index: idx, Point: b}); err != nil {
				werr = err
				return err
			}
			return nil
		}}
	}
	if err := s.Runner.Do(ctx, jobs); err != nil {
		wmu.Lock()
		broken := werr != nil
		wmu.Unlock()
		if broken {
			return err // the stream is gone; no point reporting on it
		}
		return failShard(w, err)
	}
	return writeFrame(w, ShardResponse{Done: true, Timings: tim.Jobs()})
}

// failShard reports a fatal worker error on the stream (best effort)
// and returns it.
func failShard(w io.Writer, err error) error {
	_ = writeFrame(w, ShardResponse{Err: err.Error()})
	return err
}

// ServeShards accepts worker sessions on ln until ctx is canceled,
// serving each connection as one ServeShard session. Session errors
// are logged to logw (when non-nil) and do not stop the listener: a
// coordinator that lost a slice retries it on a fresh connection.
func ServeShards(ctx context.Context, ln net.Listener, logw io.Writer) error {
	defer context.AfterFunc(ctx, func() { ln.Close() })()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			defer context.AfterFunc(ctx, func() { conn.Close() })()
			if err := ServeShard(ctx, conn, conn); err != nil && logw != nil {
				fmt.Fprintf(logw, "shard session %s: %v\n", conn.RemoteAddr(), err)
			}
		}()
	}
}

// ListenAndServeShards listens on the TCP address and serves shard
// sessions until ctx is canceled — the worker side of a multi-machine
// sweep (`dmamem-bench -shard-listen :9000` on each box, the
// coordinator pointing at them with -shard-addrs).
func ListenAndServeShards(ctx context.Context, addr string, logw io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if logw != nil {
		fmt.Fprintf(logw, "serving shard sessions on %s\n", ln.Addr())
	}
	return ServeShards(ctx, ln, logw)
}
