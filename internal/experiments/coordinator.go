// Shard coordinator: the driving side of the process-sharded sweep
// executor. The coordinator partitions a grid's points into
// contiguous slices, runs every slice through a worker session
// (subprocess pipes or TCP), retries slices lost to transport
// failures on fresh workers, and reassembles the streamed results by
// global point index — so the output is byte-identical to the
// in-process runner at any shard count.
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"dmamem/internal/metrics"
)

// Coordinator shards a sweep grid across worker processes. The zero
// value is not runnable: set Shards and exactly one transport source
// (WorkerCommand for subprocess workers, Addrs for TCP workers).
type Coordinator struct {
	// Shards is the number of slices the grid is cut into (and the
	// number of concurrently running workers); <= 1 means one.
	Shards int
	// Parallel is the total worker-goroutine budget, divided evenly
	// across shards (each worker gets ceil(Parallel/Shards), min 1).
	Parallel int
	// WorkerCommand is the argv of a worker subprocess speaking the
	// shard protocol on stdin/stdout (e.g. {"dmamem-bench",
	// "-shard-worker"}). Used when Addrs is empty.
	WorkerCommand []string
	// WorkerEnv is appended to the coordinator's environment when
	// spawning WorkerCommand.
	WorkerEnv []string
	// Addrs are TCP addresses of ListenAndServeShards workers. When
	// non-empty they take precedence over WorkerCommand; slices are
	// assigned round-robin, and retries move to the next address.
	Addrs []string
	// Retries is the number of times a slice lost to a transport
	// failure (worker crash, broken pipe, timeout) is rerun on a fresh
	// worker before the sweep fails; < 0 disables retries. Worker-
	// reported errors and protocol violations are never retried.
	Retries int
	// Timeout bounds one slice attempt; 0 means no limit.
	Timeout time.Duration
	// Timings, when set, accumulates worker-reported per-job wall
	// times (merged with Timings.Merge, so baselines computed by
	// several shards appear once).
	Timings *metrics.Timings

	// dial overrides transport creation in tests; attempt counts from
	// 0 within one slice.
	dial func(ctx context.Context, shard, attempt int) (shardTransport, error)
}

// DefaultShardRetries is the retry budget used when Retries is 0.
const DefaultShardRetries = 2

// shardTransport is one worker session's byte stream plus an identity
// for error messages. Closing it must unblock concurrent reads.
type shardTransport interface {
	io.ReadWriter
	Close() error
	Name() string
}

// hardShardError marks failures a retry cannot fix: worker-reported
// errors, protocol violations, and coordinator-side bugs.
type hardShardError struct{ err error }

func (e *hardShardError) Error() string { return e.err.Error() }
func (e *hardShardError) Unwrap() error { return e.err }

func hard(err error) error { return &hardShardError{err} }

// Run executes the grid across the coordinator's shards and returns
// the raw JSON of every point in grid order. Each point's bytes are
// exactly what the worker's json.Marshal produced, and Go's float64
// encoding round-trips exactly, so decoding them (see ShardedGrid)
// yields the same values bit for bit as an in-process run.
func (c *Coordinator) Run(ctx context.Context, sp SuiteSpec, gs GridSpec) ([]json.RawMessage, error) {
	// Resolve locally only to size and label the partition; no
	// simulation state is built here.
	g, err := NewSuiteFromSpec(sp).resolveGrid(gs)
	if err != nil {
		return nil, err
	}
	shards := c.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > g.n {
		shards = g.n
	}
	if g.n == 0 {
		return nil, nil
	}
	perWorker := 1
	if c.Parallel > shards {
		perWorker = (c.Parallel + shards - 1) / shards
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]json.RawMessage, g.n)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		lo, hi := k*g.n/shards, (k+1)*g.n/shards
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			if err := c.runSlice(ctx, sp, gs, k, shards, lo, hi, perWorker, out); err != nil {
				errs[k] = err
				cancel() // a dead slice dooms the sweep; stop the rest
			}
		}(k, lo, hi)
	}
	wg.Wait()
	// First failed shard in slice order keeps the reported error
	// deterministic when several fail together.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runSlice runs points [lo,hi) through worker sessions, retrying
// transport failures on fresh workers up to the retry budget.
func (c *Coordinator) runSlice(ctx context.Context, sp SuiteSpec, gs GridSpec, shard, shards, lo, hi, perWorker int, out []json.RawMessage) error {
	retries := c.Retries
	if retries == 0 {
		retries = DefaultShardRetries
	} else if retries < 0 {
		retries = 0
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.trySlice(ctx, sp, gs, shard, attempt, lo, hi, perWorker, out)
		if err == nil || ctx.Err() != nil {
			break
		}
		var h *hardShardError
		if errors.As(err, &h) || attempt >= retries {
			break
		}
		// Crash-loop damping; the failure was process- or
		// network-level, not a function of the workload.
		select {
		case <-ctx.Done():
		case <-time.After(time.Duration(50<<attempt) * time.Millisecond):
		}
	}
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	if err != nil {
		return fmt.Errorf("experiments: shard %d/%d (points %d..%d): %w", shard, shards, lo, hi-1, err)
	}
	return nil
}

// trySlice runs one worker session for points [lo,hi): open a
// transport, send the request, and stream responses into out until
// the Done frame accounts for every point.
func (c *Coordinator) trySlice(ctx context.Context, sp SuiteSpec, gs GridSpec, shard, attempt, lo, hi, perWorker int, out []json.RawMessage) error {
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	tr, err := c.transport(ctx, shard, attempt)
	if err != nil {
		return err
	}
	defer tr.Close()
	// Closing the transport is what unblocks a Read stuck on a hung
	// or canceled worker.
	defer context.AfterFunc(ctx, func() { tr.Close() })()

	points := make([]int, hi-lo)
	for i := range points {
		points[i] = lo + i
	}
	req := ShardRequest{Version: shardProtoVersion, Suite: sp, Grid: gs, Points: points, Parallel: perWorker}
	if err := writeFrame(tr, req); err != nil {
		return fmt.Errorf("%s: send request: %w", tr.Name(), err)
	}
	got := 0
	seen := make([]bool, hi-lo)
	for {
		payload, err := readFrameBytes(tr)
		if err != nil {
			if errors.Is(err, errMalformed) {
				return hard(fmt.Errorf("%s: %w", tr.Name(), err))
			}
			return fmt.Errorf("%s: read response: %w", tr.Name(), err)
		}
		var resp ShardResponse
		if err := json.Unmarshal(payload, &resp); err != nil {
			return hard(fmt.Errorf("%s: %w: %v", tr.Name(), errMalformed, err))
		}
		switch {
		case resp.Err != "":
			return hard(fmt.Errorf("%s: worker error: %s", tr.Name(), resp.Err))
		case resp.Done:
			if got != hi-lo {
				return hard(fmt.Errorf("%s: %w: Done after %d of %d points", tr.Name(), errMalformed, got, hi-lo))
			}
			if c.Timings != nil {
				c.Timings.Merge(resp.Timings)
			}
			return nil
		default:
			if resp.Index < lo || resp.Index >= hi {
				return hard(fmt.Errorf("%s: %w: point %d outside slice %d..%d", tr.Name(), errMalformed, resp.Index, lo, hi-1))
			}
			if seen[resp.Index-lo] {
				return hard(fmt.Errorf("%s: %w: duplicate point %d", tr.Name(), errMalformed, resp.Index))
			}
			if len(resp.Point) == 0 {
				return hard(fmt.Errorf("%s: %w: point %d has no payload", tr.Name(), errMalformed, resp.Index))
			}
			seen[resp.Index-lo] = true
			got++
			out[resp.Index] = resp.Point
		}
	}
}

// transport opens the worker session for one slice attempt.
func (c *Coordinator) transport(ctx context.Context, shard, attempt int) (shardTransport, error) {
	switch {
	case c.dial != nil:
		return c.dial(ctx, shard, attempt)
	case len(c.Addrs) > 0:
		// Round-robin over addresses; a retry moves to the next one so
		// a single dead machine doesn't pin its slice.
		addr := c.Addrs[(shard+attempt)%len(c.Addrs)]
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("dial worker %s: %w", addr, err)
		}
		return &tcpTransport{Conn: conn, addr: addr}, nil
	case len(c.WorkerCommand) > 0:
		return startProcWorker(c.WorkerCommand, c.WorkerEnv)
	}
	return nil, hard(errors.New("no worker transport configured (set WorkerCommand or Addrs)"))
}

// tcpTransport is a worker session over one TCP connection.
type tcpTransport struct {
	net.Conn
	addr string
}

func (t *tcpTransport) Name() string { return "worker " + t.addr }

// procTransport is a worker session over a subprocess's stdin/stdout.
type procTransport struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   io.ReadCloser
	once  sync.Once
}

func startProcWorker(argv, env []string) (*procTransport, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawn worker %s: %w", argv[0], err)
	}
	return &procTransport{cmd: cmd, stdin: stdin, out: out}, nil
}

func (p *procTransport) Read(b []byte) (int, error)  { return p.out.Read(b) }
func (p *procTransport) Write(b []byte) (int, error) { return p.stdin.Write(b) }

func (p *procTransport) Name() string {
	return fmt.Sprintf("worker proc %s (pid %d)", strings.Join(p.cmd.Args, " "), p.cmd.Process.Pid)
}

// Close tears the worker down: kill covers hung or canceled workers,
// and Wait reaps the process and closes both pipes.
func (p *procTransport) Close() error {
	var err error
	p.once.Do(func() {
		p.stdin.Close()
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
		}
		err = p.cmd.Wait()
	})
	return err
}

// ShardedGrid executes the grid through the coordinator and decodes
// the reassembled points. It is the sharded counterpart of GridRun:
// the same (suite spec, grid spec) pair yields the same []T values —
// and therefore byte-identical rendered output — at any shard count.
func ShardedGrid[T any](ctx context.Context, c *Coordinator, sp SuiteSpec, gs GridSpec) ([]T, error) {
	raw, err := c.Run(ctx, sp, gs)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(raw))
	for i, b := range raw {
		if err := json.Unmarshal(b, &out[i]); err != nil {
			return nil, fmt.Errorf("experiments: grid %s point %d: decode result: %w", gs.Name, i, err)
		}
	}
	return out, nil
}
