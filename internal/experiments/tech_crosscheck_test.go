package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

// TestRegistryRDRAMBitIdentical proves the registry "rdram" backend is
// bit-identical to the legacy energy.Spec path over the full golden
// corpus — every Table 2 workload and scheme — on both the serial
// reference engine and the 4-worker epoch-barrier engine. Three
// configurations per point must produce reflect.DeepEqual reports:
// the explicit legacy spec (core.Config.MemSpec), the registry name
// (core.Config.Tech = "rdram"), and the zero value (paper defaults).
func TestRegistryRDRAMBitIdentical(t *testing.T) {
	for _, workers := range []int{0, 4} {
		s := goldenSuite()
		s.Workers = workers
		for _, name := range workloadNames {
			tr, err := s.workload(name)
			if err != nil {
				t.Fatalf("workload %s: %v", name, err)
			}
			window := tr.Duration() + 2*sim.Millisecond
			for _, sc := range goldenSchemes() {
				sc := sc
				t.Run(fmt.Sprintf("workers=%d/%s/%s", workers, name, sc.label), func(t *testing.T) {
					legacy := sc.cfg
					legacy.MemSpec = energy.RDRAM1600()
					legacy.MeterWindow = window
					reg := sc.cfg
					reg.Tech = "rdram"
					reg.MeterWindow = window
					def := sc.cfg
					def.MeterWindow = window

					lr, err := s.run(ctx, legacy, tr)
					if err != nil {
						t.Fatalf("legacy spec run: %v", err)
					}
					rr, err := s.run(ctx, reg, tr)
					if err != nil {
						t.Fatalf("registry run: %v", err)
					}
					dr, err := s.run(ctx, def, tr)
					if err != nil {
						t.Fatalf("default run: %v", err)
					}
					if !reflect.DeepEqual(lr.Report, rr.Report) {
						t.Errorf("registry rdram drifted from the legacy spec path:\n%s",
							diffFields("", reflect.ValueOf(rr.Report), reflect.ValueOf(lr.Report)))
					}
					if !reflect.DeepEqual(dr.Report, rr.Report) {
						t.Errorf("zero-value default drifted from Tech=rdram:\n%s",
							diffFields("", reflect.ValueOf(rr.Report), reflect.ValueOf(dr.Report)))
					}
				})
			}
		}
	}
}

// TestFig10TechAxis exercises the technology dimension of the figure
// 10 grid: the scheme names carry the @tech suffix, the x ratio uses
// each backend's own memory rate, and unknown names fail the whole
// grid before any point runs.
func TestFig10TechAxis(t *testing.T) {
	s := goldenSuite()
	spec := GridSpec{
		Name:      GridFig10,
		Workloads: []string{"Synthetic-St"},
		BusBW:     []float64{1.064e9},
		Techs:     []string{"ddr4-2400", "lpddr4"},
	}
	pts, err := GridRun[SweepPoint](ctx, s, spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(spec.Techs) * len(sweepSchemes); len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		var tech string
		for _, name := range spec.Techs {
			if p.Scheme == "dma-ta@"+name || p.Scheme == "dma-ta-pl@"+name {
				tech = name
			}
		}
		if tech == "" {
			t.Fatalf("point scheme %q carries no @tech suffix", p.Scheme)
		}
		m, err := energy.Lookup(tech)
		if err != nil {
			t.Fatal(err)
		}
		if want := m.Bandwidth / 1.064e9; p.X != want {
			t.Errorf("%s: x ratio %g, want %g from the %s rate", p.Scheme, p.X, want, tech)
		}
	}
	bad := spec
	bad.Techs = []string{"sram"}
	if _, err := GridRun[SweepPoint](ctx, s, bad); err == nil {
		t.Fatal("unknown technology accepted by the grid")
	}
}
