package experiments

import (
	"reflect"
	"testing"

	"dmamem/internal/core"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// TestSingleChannelTopologyBitIdentical is the cross-backend
// acceptance check for the channel topology: on every Table 2 workload
// and every scheme, a 1-channel memsys.Topology — which engages the
// topology backend (TopologyMapper, per-channel gather targets,
// per-channel energy rollup) rather than the legacy code path — must
// produce a report bit-identical to the legacy single-channel Geometry
// path, in the style of TestSchedulerFeederBitIdentical. The
// comparison is reflect.DeepEqual over the whole metrics.Report
// (including the always-populated per-channel energy slice), so a
// single-ulp drift fails.
func TestSingleChannelTopologyBitIdentical(t *testing.T) {
	s := NewSuite(4*sim.Millisecond, 1)
	s.DbDuration = 2 * sim.Millisecond
	schemes := []struct {
		label string
		cfg   core.Config
	}{
		{"baseline", core.Config{}},
		{"dma-ta", taConfig(0.10, nil)},
		{"dma-ta-pl", taConfig(0.10, plConfig(2))},
	}
	topologies := []struct {
		label string
		topo  memsys.Topology
	}{
		{"1ch", memsys.Topology{Channels: 1}},
		{"1ch-stripe1", memsys.Topology{Channels: 1, StripePages: 1}},
		// A per-channel cap at the chip rate never binds with one
		// channel's worth of 3.2 GB/s chips behind 3 PCI-X buses, so the
		// allocator's three-resource path must reproduce the two-resource
		// rates exactly on this config. (With 32 chips on one channel the
		// cap *would* bind under enough concurrency — covered by the
		// multi-channel sweep — so this variant pins only k derivation
		// and mapper identity, not the capped allocator.)
	}
	for _, name := range workloadNames {
		tr, err := s.workload(name)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		window := tr.Duration() + 2*sim.Millisecond
		for _, sc := range schemes {
			legacy := sc.cfg
			legacy.MeterWindow = window
			ref, err := core.Run(legacy, tr)
			if err != nil {
				t.Fatalf("%s/%s legacy: %v", name, sc.label, err)
			}
			if ref.Report.Events == 0 {
				t.Fatalf("%s/%s: legacy run dispatched no events", name, sc.label)
			}
			if ref.Report.Channels != 1 || len(ref.Report.ChannelEnergy) != 1 {
				t.Fatalf("%s/%s: legacy report has %d channels (%d energy entries), want 1",
					name, sc.label, ref.Report.Channels, len(ref.Report.ChannelEnergy))
			}
			for _, tp := range topologies {
				cfg := sc.cfg
				cfg.MeterWindow = window
				cfg.Topology = tp.topo
				got, err := core.Run(cfg, tr)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", name, sc.label, tp.label, err)
				}
				if !reflect.DeepEqual(got.Report, ref.Report) {
					t.Errorf("%s/%s: %s report differs from legacy path\ngot: %+v\nref: %+v",
						name, sc.label, tp.label, got.Report, ref.Report)
				}
			}
		}
	}
}

// TestChannelEnergySumsToSystemEnergy pins the per-channel rollup
// contract on a genuinely multi-channel run: the channel breakdowns
// must sum to the system breakdown exactly, except for PL migration
// energy, which is system-level by design.
func TestChannelEnergySumsToSystemEnergy(t *testing.T) {
	s := NewSuite(4*sim.Millisecond, 1)
	tr, err := s.workload("Synthetic-St")
	if err != nil {
		t.Fatal(err)
	}
	for _, channels := range []int{2, 4} {
		cfg := taConfig(0.10, plConfig(2))
		cfg.MeterWindow = tr.Duration() + 2*sim.Millisecond
		cfg.Topology = memsys.Topology{Channels: channels, ChannelBandwidth: 3.2e9}
		res, err := core.Run(cfg, tr)
		if err != nil {
			t.Fatalf("%d channels: %v", channels, err)
		}
		r := res.Report
		if r.Channels != channels || len(r.ChannelEnergy) != channels {
			t.Fatalf("%d channels: report says %d (%d energy entries)",
				channels, r.Channels, len(r.ChannelEnergy))
		}
		var sum float64
		anyNonzero := false
		for _, b := range r.ChannelEnergy {
			if b.Total() > 0 {
				anyNonzero = true
			}
			sum += b.Total()
		}
		if !anyNonzero {
			t.Fatalf("%d channels: all channel breakdowns are zero", channels)
		}
		want := r.TotalEnergy() - res.MigrationEnergyJ
		if diff := sum - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%d channels: channel energies sum to %g, system energy minus migration is %g",
				channels, sum, want)
		}
	}
}
