package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"dmamem/internal/sim"
)

// ctx bounds the test experiments; tests are never canceled.
var ctx = context.Background()

// testSuite uses short traces so the full battery stays fast; the
// paper's shapes are already visible at this scale.
func testSuite() *Suite {
	s := NewSuite(30*sim.Millisecond, 1)
	s.DbDuration = 8 * sim.Millisecond
	return s
}

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"300mW", "3mW", "+6000 ns", "active->nap"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	s := testSuite()
	rows, err := s.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// OLTP-St targets the paper's 45 net / 16.7 disk transfers per ms.
	st := byName["OLTP-St"]
	if st.NetPerMs < 30 || st.NetPerMs > 60 {
		t.Errorf("OLTP-St net rate = %.1f/ms", st.NetPerMs)
	}
	if st.DiskPerMs < 8 || st.DiskPerMs > 30 {
		t.Errorf("OLTP-St disk rate = %.1f/ms", st.DiskPerMs)
	}
	// OLTP-Db averages ~233 processor accesses per transfer.
	db := byName["OLTP-Db"]
	if db.ProcPerTransfer < 120 || db.ProcPerTransfer > 400 {
		t.Errorf("OLTP-Db proc/xfer = %.0f", db.ProcPerTransfer)
	}
	if out := FormatTable2(rows); !strings.Contains(out, "OLTP-St") {
		t.Error("format lost workloads")
	}
}

func TestFig2bShape(t *testing.T) {
	s := testSuite()
	rows, err := s.Fig2b(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		idle := r.Fraction["active-idle-dma"]
		serving := r.Fraction["active-serving"]
		// Paper: idle 48-51%, serving 26-27%. Shape: idle dominates
		// serving by roughly 2:1, both are major components.
		if idle < serving {
			t.Errorf("%s: idle %.2f < serving %.2f", r.Label, idle, serving)
		}
		if idle < 0.25 || idle > 0.65 {
			t.Errorf("%s: idle fraction %.2f outside the paper's ballpark", r.Label, idle)
		}
		if serving < 0.10 || serving > 0.40 {
			t.Errorf("%s: serving fraction %.2f off", r.Label, serving)
		}
		// Threshold idle is small, as in the paper (3-4%).
		if thr := r.Fraction["active-idle-threshold"]; thr > 0.08 {
			t.Errorf("%s: threshold idle %.2f too large", r.Label, thr)
		}
	}
	if out := FormatBreakdowns("fig2b", rows); !strings.Contains(out, "idle-dma") {
		t.Error("format broken")
	}
}

func TestFig4Shape(t *testing.T) {
	s := testSuite()
	pts, err := s.Fig4(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no CDF")
	}
	// The 20-80 rule shape: top 20% of pages get far more than 20% of
	// accesses (paper: ~60%).
	var at20 float64
	for _, p := range pts {
		if p.PageFrac >= 0.2 {
			at20 = p.AccessFrac
			break
		}
	}
	if at20 < 0.35 {
		t.Errorf("top-20%% of pages carry only %.0f%% of accesses", 100*at20)
	}
	if out := FormatFig4(pts); out == "" {
		t.Error("empty rendering")
	}
}

func TestFig5Shape(t *testing.T) {
	s := testSuite()
	pts, err := s.Fig5(ctx, []float64{0.05, 0.30}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	find := func(w, scheme string, cp float64) Fig5Point {
		for _, p := range pts {
			if p.Workload == w && p.Scheme == scheme && p.CPLimit == cp {
				return p
			}
		}
		t.Fatalf("missing point %s/%s/%g", w, scheme, cp)
		return Fig5Point{}
	}
	for _, w := range []string{"OLTP-St", "Synthetic-St"} {
		pl30 := find(w, "dma-ta-pl-2", 0.30)
		ta30 := find(w, "dma-ta", 0.30)
		// PL beats TA alone, and saves meaningfully.
		if pl30.Savings <= ta30.Savings {
			t.Errorf("%s: PL (%.1f%%) did not beat TA (%.1f%%)", w, 100*pl30.Savings, 100*ta30.Savings)
		}
		if pl30.Savings < 0.05 {
			t.Errorf("%s: PL savings %.1f%% too small", w, 100*pl30.Savings)
		}
		// Savings are monotone in CP-Limit.
		pl05 := find(w, "dma-ta-pl-2", 0.05)
		if pl30.Savings < pl05.Savings-0.02 {
			t.Errorf("%s: savings fell with CP-Limit: %.1f%% -> %.1f%%",
				w, 100*pl05.Savings, 100*pl30.Savings)
		}
	}
	if out := FormatFig5(pts); !strings.Contains(out, "dma-ta-pl-2") {
		t.Error("format broken")
	}
}

func TestFig6Shape(t *testing.T) {
	s := testSuite()
	rows, err := s.Fig6(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	base, tapl := rows[0], rows[2]
	// The techniques reduce the idle-DMA share; serving energy stays
	// put (same bytes served).
	if tapl.Fraction["active-idle-dma"]*tapl.TotalJ >= base.Fraction["active-idle-dma"]*base.TotalJ {
		t.Error("DMA-TA-PL did not reduce absolute idle-DMA energy")
	}
	servBase := base.Fraction["active-serving"] * base.TotalJ
	servPL := tapl.Fraction["active-serving"] * tapl.TotalJ
	if math.Abs(servBase-servPL)/servBase > 0.02 {
		t.Errorf("serving energy changed: %g -> %g", servBase, servPL)
	}
	if tapl.TotalJ >= base.TotalJ {
		t.Error("DMA-TA-PL total not below baseline")
	}
}

func TestFig7Shape(t *testing.T) {
	s := testSuite()
	pts, err := s.Fig7(ctx, []float64{0.05, 0.30})
	if err != nil {
		t.Fatal(err)
	}
	var base, pl05, pl30 float64
	for _, p := range pts {
		switch {
		case p.Scheme == "baseline":
			base = p.UF
		case p.Scheme == "dma-ta-pl" && p.CPLimit == 0.05:
			pl05 = p.UF
		case p.Scheme == "dma-ta-pl" && p.CPLimit == 0.30:
			pl30 = p.UF
		}
	}
	// Paper: baseline ~0.33; PL raises it, more at higher CP-Limit.
	if base < 0.28 || base > 0.45 {
		t.Errorf("baseline uf = %.3f, want ~1/3", base)
	}
	if pl30 <= base {
		t.Errorf("PL uf %.3f did not beat baseline %.3f", pl30, base)
	}
	if pl30 < pl05-0.02 {
		t.Errorf("uf fell with CP-Limit: %.3f -> %.3f", pl05, pl30)
	}
	if out := FormatFig7(pts); out == "" {
		t.Error("empty rendering")
	}
}

func TestFig8Shape(t *testing.T) {
	s := testSuite()
	pts, err := s.Fig8(ctx, []float64{25, 200})
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64
	for _, p := range pts {
		if p.Scheme != "dma-ta-pl" {
			continue
		}
		if p.X == 25 {
			lo = p.Savings
		}
		if p.X == 200 {
			hi = p.Savings
		}
	}
	// More intensive workloads give more alignment opportunity.
	if hi <= lo {
		t.Errorf("savings did not grow with intensity: %.1f%% -> %.1f%%", 100*lo, 100*hi)
	}
}

func TestFig9Shape(t *testing.T) {
	s := testSuite()
	pts, err := s.Fig9(ctx, []int{1, 400})
	if err != nil {
		t.Fatal(err)
	}
	var light, heavy float64
	for _, p := range pts {
		if p.Scheme != "dma-ta-pl" {
			continue
		}
		if p.X == 1 {
			light = p.Savings
		}
		if p.X == 400 {
			heavy = p.Savings
		}
	}
	if heavy >= light {
		t.Errorf("savings did not drop with processor accesses: %.1f%% -> %.1f%%",
			100*light, 100*heavy)
	}
}

func TestFig10Shape(t *testing.T) {
	s := testSuite()
	pts, err := s.Fig10(ctx, []float64{3.0e9, 1.064e9})
	if err != nil {
		t.Fatal(err)
	}
	// Savings grow with the memory:I/O bandwidth ratio; near ratio 1
	// there is little mismatch to reclaim.
	for _, w := range []string{"Synthetic-St"} {
		var low, high float64
		for _, p := range pts {
			if p.Workload != w || p.Scheme != "dma-ta-pl" {
				continue
			}
			if p.X < 1.5 {
				low = p.Savings
			} else {
				high = p.Savings
			}
		}
		if high <= low {
			t.Errorf("%s: savings at ratio 3 (%.1f%%) not above ratio ~1 (%.1f%%)",
				w, 100*high, 100*low)
		}
		if low > 0.10 {
			t.Errorf("%s: savings near ratio 1 = %.1f%%, should be small", w, 100*low)
		}
	}
	if out := FormatSweep("fig10", "ratio", pts); out == "" {
		t.Error("empty rendering")
	}
}

func TestTimelines(t *testing.T) {
	fig2a := NewTimeline(1, 4)
	if fig2a.UF < 0.33 || fig2a.UF > 0.45 {
		t.Errorf("fig2a uf = %.3f", fig2a.UF)
	}
	if !strings.Contains(fig2a.String(), "Figure 2(a)") {
		t.Error("fig2a caption missing")
	}
	fig3 := NewTimeline(3, 4)
	if math.Abs(fig3.UF-1.0) > 1e-9 {
		t.Errorf("fig3 uf = %.3f, want 1.0", fig3.UF)
	}
	// Lockstep chart: the three busy runs within a beat are adjacent.
	if !strings.Contains(fig3.String(), "####") {
		t.Error("fig3 chart lacks back-to-back service")
	}
}

func TestWorkloadCaching(t *testing.T) {
	s := testSuite()
	a, err := s.workload("Synthetic-St")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.workload("Synthetic-St")
	if a != b {
		t.Error("workload not cached")
	}
	if _, err := s.workload("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
