package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dmamem/internal/core"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// saveDMT writes tr to a temp .dmt container and returns its path.
func saveDMT(t *testing.T, tr *trace.Trace, chunk int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.dmt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteDMT(f, trace.WriterOptions{ChunkRecords: chunk}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGoldenFileBacked replays every Table 2 workload x scheme through
// the file-backed feeder and holds the reports to the same committed
// golden corpus the in-memory runs pin (TestGoldenReports): one
// corpus, two delivery paths, byte-identical. The deliberately odd
// chunk size forces many chunk boundaries mid-simulation, so the
// cursor's chunk turnover is exercised inside every scheme.
func TestGoldenFileBacked(t *testing.T) {
	s := goldenSuite()
	for _, name := range workloadNames {
		tr, err := s.workload(name)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		window := tr.Duration() + 2*sim.Millisecond
		path := saveDMT(t, tr, 61)
		for _, sc := range goldenSchemes() {
			sc := sc
			t.Run(name+"/"+sc.label, func(t *testing.T) {
				cfg := sc.cfg
				cfg.MeterWindow = window
				cfg.TraceFile = path
				res, err := core.Run(cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				file := fmt.Sprintf("%s_%s.json", strings.ToLower(name), sc.label)
				writeOrCompareGolden(t, goldenPath(t, file), res.Report)
			})
		}
	}
}

// peakHeapDuring samples HeapAlloc while fn runs and returns the
// largest value seen. Millisecond sampling against multi-second
// simulations gives thousands of samples, so the peak estimate is
// stable; the assertions below still keep multi-megabyte margins.
func peakHeapDuring(fn func()) uint64 {
	runtime.GC()
	var stop, peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for stop.Load() == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	fn()
	stop.Store(1)
	<-done
	return peak.Load()
}

// TestFileFeederFlatMemory is the tentpole's acceptance run: a
// Synthetic-St trace 100x longer than the 100 ms reference window is
// recorded straight to disk (the generator streams into the writer,
// so recording is flat too), then replayed through the file-backed
// feeder. Two promises are checked: the result is deeply equal to
// decoding the same container and simulating in memory, and the peak
// live heap of the file-backed run stays below the in-memory run's by
// at least the record storage — the trace is never materialized. (Both
// runs still grow with the per-transfer service-time statistics that
// exact P95/Max reporting retains; that term is shared and excluded
// from the comparison by construction.)
//
// The test simulates the 10 s trace twice (~10 s wall-clock), so it
// is gated like the bench smoke: set DMAMEM_FLATMEM=1 (CI runs it as
// a dedicated step, without the race detector).
func TestFileFeederFlatMemory(t *testing.T) {
	if os.Getenv("DMAMEM_FLATMEM") == "" {
		t.Skip("set DMAMEM_FLATMEM=1 to run the flat-memory replay guard (two 10 s simulations)")
	}
	// Keep the GC heap goal close to the live set while measuring, so
	// sampled peaks reflect retention rather than collector laziness.
	defer debug.SetGCPercent(debug.SetGCPercent(30))

	path := filepath.Join(t.TempDir(), "long.dmt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f, "Synthetic-St", trace.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.SetMeta(synth.SyntheticMeta())
	cfg := synth.DefaultSt()
	cfg.Duration = 100 * (100 * sim.Millisecond) // 100x the reference trace
	if err := synth.GenerateStTo(cfg, w.Append); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var fileRes *core.Result
	var fileErr error
	peakFile := peakHeapDuring(func() {
		fileRes, fileErr = core.Run(core.Config{TraceFile: path}, nil)
	})
	if fileErr != nil {
		t.Fatal(fileErr)
	}

	var tr *trace.Trace
	var memRes *core.Result
	var memErr error
	peakMem := peakHeapDuring(func() {
		data, err := os.ReadFile(path)
		if err != nil {
			memErr = err
			return
		}
		tr, memErr = trace.DecodeDMT(data)
		if memErr != nil {
			return
		}
		memRes, memErr = core.Run(core.Config{}, tr)
	})
	if memErr != nil {
		t.Fatal(memErr)
	}

	if !reflect.DeepEqual(memRes, fileRes) {
		t.Errorf("100x file-backed result differs from in-memory\nmem:  %+v\nfile: %+v", memRes, fileRes)
	}
	records := len(tr.Records)
	t.Logf("records: %d; peak heap: file-backed %.1f MB, in-memory %.1f MB",
		records, float64(peakFile)/1e6, float64(peakMem)/1e6)
	// The in-memory run must pay for the record slice (16 B/record);
	// the file-backed run must not. Requiring half that gap leaves the
	// other half as margin for sampling and collector noise.
	if gap := int64(peakMem) - int64(peakFile); gap < int64(records)*8 {
		t.Errorf("file-backed peak heap %.1f MB is not flat: only %.1f MB below the in-memory run (want >= %.1f MB, half the record storage)",
			float64(peakFile)/1e6, float64(gap)/1e6, float64(records)*8/1e6)
	}
}

// TestReplayFile renders the bench -replay comparison off a recorded
// container, with and without the PL layer, and checks the headline
// lines land in the output.
func TestReplayFile(t *testing.T) {
	cfg := synth.DefaultSt()
	cfg.Duration = 4 * sim.Millisecond
	tr, err := synth.GenerateSt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := saveDMT(t, tr, 0)

	out, err := ReplayFile(context.Background(), path, 0.10, 2)
	if err != nil {
		t.Fatalf("ReplayFile: %v", err)
	}
	for _, want := range []string{"Replay of", "baseline", "dma-ta-pl(2)", "energy savings"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	taOnly, err := ReplayFile(context.Background(), path, 0.10, 0)
	if err != nil {
		t.Fatalf("ReplayFile (DMA-TA only): %v", err)
	}
	if !strings.Contains(taOnly, "dma-ta ") {
		t.Errorf("DMA-TA-only output missing scheme label:\n%s", taOnly)
	}

	if _, err := ReplayFile(context.Background(), filepath.Join(t.TempDir(), "missing.dmt"), 0.10, 2); err == nil {
		t.Fatal("ReplayFile on a missing path did not error")
	}
}
