// Job-to-grid resolution and canonical serialization for the
// simulation service (internal/server/service): the pieces that turn
// a validated job submission into suite runs, and every completed
// result into a stable, hashable byte string.
//
// The golden-report corpus (testdata/golden/) is the template for the
// canonical form: json.MarshalIndent with two-space indent plus a
// trailing newline. Go's float64 encoding round-trips exactly and
// struct fields marshal in declaration order, so the same value always
// produces the same bytes — which is what lets the service key its
// result cache on a hash of the normalized job and hand every tenant
// bit-stable answers.
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"dmamem/internal/core"
	"dmamem/internal/energy"
	"dmamem/internal/metrics"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// CanonicalJSON serializes v exactly like the golden-report corpus:
// MarshalIndent with two-space indent and a trailing newline. Two
// equal values always canonicalize to equal bytes.
func CanonicalJSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CanonicalHash returns the hex SHA-256 of v's canonical JSON — the
// cache key the service uses to deduplicate identical job
// submissions.
func CanonicalHash(v any) (string, error) {
	b, err := CanonicalJSON(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// ReportSchemes are the Table 2 schemes a ReportSpec accepts, in
// presentation order — the same three the golden corpus pins per
// workload.
func ReportSchemes() []string { return []string{"baseline", "dma-ta", "dma-ta-pl"} }

// WorkloadNames returns the four Table 2 workloads, in presentation
// order.
func WorkloadNames() []string { return append([]string(nil), workloadNames...) }

// ReportSpec is one canonical single-run job: a Table 2 workload under
// one scheme, returning the full metrics.Report. The zero value of
// every parameter field selects the golden-corpus default, so a spec
// built from an empty job submission reproduces the committed goldens
// byte for byte.
type ReportSpec struct {
	// Suite reconstructs the trace configuration (duration, seed,
	// engine knobs). The golden corpus uses 4 ms traces (2 ms for the
	// database workloads) at seed 1.
	Suite SuiteSpec
	// Workload is the Table 2 trace name ("OLTP-St", ...). Required.
	Workload string
	// Scheme is one of ReportSchemes. Empty means "baseline".
	Scheme string
	// CPLimit is the DMA-TA degradation bound. Zero selects the
	// paper's 0.10 for the alignment schemes; the baseline forces 0.
	CPLimit float64
	// PLGroups is the PL popularity group count. Zero selects the
	// paper's best setting, 2; only meaningful for "dma-ta-pl".
	PLGroups int
	// Tech is the memory-technology registry name; empty keeps the
	// RDRAM default.
	Tech string
	// Workers selects the parallel barrier engine for the run (0 =
	// serial reference). Reports are bit-identical at any count, but
	// the field still participates in the canonical hash so every
	// cached answer is traceable to its exact job spec.
	Workers int
}

// Normalize fills defaults and validates the spec. Enumeration errors
// are loud: an unknown workload, scheme or technology lists every
// legal value (the technology error comes from the energy registry,
// the same one dmamem.Simulation.Validate consults). The returned
// spec is canonical: two submissions meaning the same run normalize
// to equal values and therefore equal canonical hashes.
func (sp ReportSpec) Normalize() (ReportSpec, error) {
	found := false
	for _, w := range workloadNames {
		if sp.Workload == w {
			found = true
			break
		}
	}
	if !found {
		return sp, fmt.Errorf("experiments: unknown workload %q (want one of %s)",
			sp.Workload, strings.Join(workloadNames, ", "))
	}
	if sp.Scheme == "" {
		sp.Scheme = "baseline"
	}
	switch sp.Scheme {
	case "baseline":
		sp.CPLimit = 0
		sp.PLGroups = 0
	case "dma-ta":
		if sp.CPLimit == 0 {
			sp.CPLimit = 0.10
		}
		sp.PLGroups = 0
	case "dma-ta-pl":
		if sp.CPLimit == 0 {
			sp.CPLimit = 0.10
		}
		if sp.PLGroups == 0 {
			sp.PLGroups = 2
		}
	default:
		return sp, fmt.Errorf("experiments: unknown scheme %q (want one of %s)",
			sp.Scheme, strings.Join(ReportSchemes(), ", "))
	}
	if sp.CPLimit < 0 {
		return sp, fmt.Errorf("experiments: negative CPLimit %v", sp.CPLimit)
	}
	if sp.PLGroups < 0 || sp.PLGroups == 1 {
		return sp, fmt.Errorf("experiments: PLGroups %d out of range: a layout needs a hot and a cold group (>= 2); 0 selects the default 2", sp.PLGroups)
	}
	if _, err := energy.Lookup(sp.Tech); err != nil {
		return sp, err
	}
	if sp.Workers < 0 {
		return sp, fmt.Errorf("experiments: negative Workers %d; 0 selects the serial engine", sp.Workers)
	}
	if sp.Suite.Duration < 0 || sp.Suite.DbDuration < 0 {
		return sp, fmt.Errorf("experiments: negative trace duration %v/%v", sp.Suite.Duration, sp.Suite.DbDuration)
	}
	if sp.Suite.Duration == 0 {
		sp.Suite.Duration = 4 * sim.Millisecond
	}
	if sp.Suite.DbDuration == 0 {
		sp.Suite.DbDuration = 2 * sim.Millisecond
	}
	if sp.Suite.Seed == 0 {
		sp.Suite.Seed = 1
	}
	return sp, nil
}

// reportConfig builds the core configuration of a normalized spec —
// the same construction the golden corpus uses (taConfig/plConfig),
// so equal specs reproduce equal reports.
func (sp ReportSpec) reportConfig() core.Config {
	var cfg core.Config
	switch sp.Scheme {
	case "dma-ta":
		cfg = taConfig(sp.CPLimit, nil)
	case "dma-ta-pl":
		cfg = taConfig(sp.CPLimit, plConfig(sp.PLGroups))
	}
	cfg.Tech = sp.Tech
	return cfg
}

// sharedSuites caches one trace-generating Suite per SuiteSpec, so a
// service process asking for the same workload across many jobs
// generates its trace exactly once (Suite.workload is single-flight,
// so concurrent jobs share one generation too). The cache is bounded:
// past maxSharedSuites distinct specs, new specs bypass it and
// generate privately rather than hoard every trace a tenant ever
// asked for. SuiteSpec is a comparable value type, so it keys the map
// directly.
var (
	sharedSuitesMu sync.Mutex
	sharedSuites   = map[SuiteSpec]*Suite{}
)

const maxSharedSuites = 8

// sharedWorkload returns the named trace for a spec through the
// process-level suite cache. Only the trace cache is shared — callers
// keep their own Suite for engine knobs, which is what keeps
// concurrent jobs with different Workers settings race-free.
func sharedWorkload(sp SuiteSpec, name string) (*trace.Trace, error) {
	sharedSuitesMu.Lock()
	s, ok := sharedSuites[sp]
	if !ok {
		s = NewSuiteFromSpec(sp)
		if len(sharedSuites) < maxSharedSuites {
			sharedSuites[sp] = s
		}
	}
	sharedSuitesMu.Unlock()
	return s.workload(name)
}

// RunReport normalizes and executes one report job. The metering
// window is the golden convention (trace duration plus 2 ms), so a
// default spec over a golden-suite SuiteSpec returns the committed
// golden report for its workload and scheme bit for bit — serial or
// at any Workers count.
func RunReport(ctx context.Context, sp ReportSpec) (*metrics.Report, error) {
	sp, err := sp.Normalize()
	if err != nil {
		return nil, err
	}
	s := NewSuiteFromSpec(sp.Suite)
	s.Workers = sp.Workers
	tr, err := sharedWorkload(sp.Suite, sp.Workload)
	if err != nil {
		return nil, err
	}
	cfg := sp.reportConfig()
	cfg.MeterWindow = tr.Duration() + 2*sim.Millisecond
	res, err := s.run(ctx, cfg, tr)
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}

// ValidateGrid resolves a grid spec against a suite spec without
// running anything and returns the point count — the service's
// admission-time validation, reusing the same resolveGrid the sharded
// executor trusts, so a typo'd grid name or technology fails the
// submission loudly instead of a worker mid-sweep.
func ValidateGrid(sp SuiteSpec, gs GridSpec) (int, error) {
	g, err := NewSuiteFromSpec(sp).resolveGrid(gs)
	if err != nil {
		return 0, err
	}
	return g.n, nil
}

// GridRunRaw resolves and executes a grid in-process and returns each
// point's compact JSON — exactly the bytes a shard worker would have
// streamed for the same point, so the service's in-process and
// coordinator-backed grid paths produce byte-identical results.
// onPoint, when non-nil, is called after each finished point (from
// the worker goroutine that ran it) for progress reporting.
func GridRunRaw(ctx context.Context, s *Suite, gs GridSpec, onPoint func(i int, label string)) ([]json.RawMessage, error) {
	g, err := s.resolveGrid(gs)
	if err != nil {
		return nil, err
	}
	out := make([]json.RawMessage, g.n)
	jobs := make([]Job, g.n)
	for i := 0; i < g.n; i++ {
		i := i
		job := &jobs[i]
		*job = Job{Label: g.label(i), Run: func(ctx context.Context) error {
			v, events, err := g.run(ctx, i)
			if err != nil {
				return err
			}
			job.Events = events
			b, err := json.Marshal(v)
			if err != nil {
				return err
			}
			out[i] = b
			if onPoint != nil {
				onPoint(i, g.label(i))
			}
			return nil
		}}
	}
	if err := s.Runner.Do(ctx, jobs); err != nil {
		return nil, err
	}
	return out, nil
}
