package experiments

import (
	"reflect"
	"testing"

	"dmamem/internal/core"
	"dmamem/internal/metrics"
	"dmamem/internal/sim"
)

// TestParallelDeterminism is the regression gate for the parallel
// runner: a full experiment run at parallel=8 must produce results,
// rendered tables and metrics.Report values identical to the
// sequential run. Anything less means parallelism leaked into the
// simulation.
func TestParallelDeterminism(t *testing.T) {
	seq := testSuite()
	par := testSuite()
	par.Runner = &Runner{Parallel: 8, Timings: &metrics.Timings{}}

	cps := []float64{0.05, 0.30}

	seqT2, err := seq.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	parT2, err := par.Table2(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqT2, parT2) {
		t.Error("Table2 rows differ between sequential and parallel runs")
	}
	if FormatTable2(seqT2) != FormatTable2(parT2) {
		t.Error("Table2 rendering differs")
	}

	seqF2b, err := seq.Fig2b(ctx)
	if err != nil {
		t.Fatal(err)
	}
	parF2b, err := par.Fig2b(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqF2b, parF2b) {
		t.Error("Fig2b breakdowns differ")
	}
	if FormatBreakdowns("fig2b", seqF2b) != FormatBreakdowns("fig2b", parF2b) {
		t.Error("Fig2b rendering differs")
	}

	seqF5, err := seq.Fig5(ctx, cps, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	parF5, err := par.Fig5(ctx, cps, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqF5, parF5) {
		t.Error("Fig5 points differ between sequential and parallel runs")
	}
	if FormatFig5(seqF5) != FormatFig5(parF5) {
		t.Error("Fig5 rendering differs")
	}

	if par.Runner.Timings.Count() == 0 {
		t.Error("parallel run recorded no job timings")
	}
}

// TestBaselinePairParallelReports pins the metrics.Report equality at
// the core layer: the two-goroutine baseline/technique pair must
// reproduce the sequential pair's reports field for field.
func TestBaselinePairParallelReports(t *testing.T) {
	w, err := core.SyntheticStWorkload(10*sim.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	tech := Fig5PLConfig()
	b1, t1, s1, err := core.RunBaselinePair(core.Config{}, tech, w.Trace)
	if err != nil {
		t.Fatal(err)
	}
	b2, t2, s2, err := core.RunBaselinePairParallel(ctx, core.Config{}, tech, w.Trace, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1.Report, b2.Report) {
		t.Error("baseline metrics.Report differs under parallel execution")
	}
	if !reflect.DeepEqual(t1.Report, t2.Report) {
		t.Error("technique metrics.Report differs under parallel execution")
	}
	if s1 != s2 {
		t.Errorf("savings differ: %v vs %v", s1, s2)
	}
}
