package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"dmamem/internal/sim"
)

func TestCanonicalJSONAndHash(t *testing.T) {
	type v struct {
		A int
		B string
	}
	b, err := CanonicalJSON(v{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"A\": 1,\n  \"B\": \"x\"\n}\n"
	if string(b) != want {
		t.Errorf("CanonicalJSON = %q, want %q", b, want)
	}
	h1, err := CanonicalHash(v{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := CanonicalHash(v{1, "x"})
	if h1 != h2 {
		t.Errorf("equal values hash differently: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Errorf("hash %q is not hex SHA-256", h1)
	}
	if h3, _ := CanonicalHash(v{2, "x"}); h3 == h1 {
		t.Error("different values share a hash")
	}
	if _, err := CanonicalJSON(make(chan int)); err == nil {
		t.Error("CanonicalJSON serialized a channel")
	}
	if _, err := CanonicalHash(make(chan int)); err == nil {
		t.Error("CanonicalHash serialized a channel")
	}
}

func TestReportEnumerations(t *testing.T) {
	if got := ReportSchemes(); len(got) != 3 || got[0] != "baseline" {
		t.Errorf("ReportSchemes = %v", got)
	}
	names := WorkloadNames()
	if len(names) != 4 || names[0] != "OLTP-St" {
		t.Errorf("WorkloadNames = %v", names)
	}
	names[0] = "mutated"
	if WorkloadNames()[0] != "OLTP-St" {
		t.Error("WorkloadNames aliases the package slice")
	}
}

func TestReportSpecNormalizeDefaults(t *testing.T) {
	sp, err := ReportSpec{Workload: "OLTP-St"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Scheme != "baseline" || sp.CPLimit != 0 || sp.PLGroups != 0 {
		t.Errorf("baseline defaults wrong: %+v", sp)
	}
	if sp.Suite.Duration != 4*sim.Millisecond || sp.Suite.DbDuration != 2*sim.Millisecond || sp.Suite.Seed != 1 {
		t.Errorf("suite defaults are not the golden corpus: %+v", sp.Suite)
	}

	sp, err = ReportSpec{Workload: "Synthetic-St", Scheme: "dma-ta", PLGroups: 5}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sp.CPLimit != 0.10 || sp.PLGroups != 0 {
		t.Errorf("dma-ta defaults wrong: CPLimit %v PLGroups %d", sp.CPLimit, sp.PLGroups)
	}

	sp, err = ReportSpec{Workload: "OLTP-Db", Scheme: "dma-ta-pl"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if sp.CPLimit != 0.10 || sp.PLGroups != 2 {
		t.Errorf("dma-ta-pl defaults wrong: CPLimit %v PLGroups %d", sp.CPLimit, sp.PLGroups)
	}

	// Normalization is canonical: a baseline spec with stray alignment
	// parameters means the same run as a bare one, so the two must hash
	// identically for the service's result cache to deduplicate them.
	bare, _ := ReportSpec{Workload: "OLTP-St"}.Normalize()
	noisy, _ := ReportSpec{Workload: "OLTP-St", Scheme: "baseline", CPLimit: 0.3, PLGroups: 7}.Normalize()
	if bare != noisy {
		t.Errorf("baseline did not canonicalize: %+v vs %+v", bare, noisy)
	}
}

func TestReportSpecNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		sp   ReportSpec
		want string
	}{
		{"unknown workload", ReportSpec{Workload: "nope"}, "OLTP-St, Synthetic-St, OLTP-Db, Synthetic-Db"},
		{"empty workload", ReportSpec{}, "unknown workload"},
		{"unknown scheme", ReportSpec{Workload: "OLTP-St", Scheme: "turbo"}, "baseline, dma-ta, dma-ta-pl"},
		{"negative cplimit", ReportSpec{Workload: "OLTP-St", Scheme: "dma-ta", CPLimit: -0.1}, "negative CPLimit"},
		{"one pl group", ReportSpec{Workload: "OLTP-St", Scheme: "dma-ta-pl", PLGroups: 1}, "hot and a cold group"},
		{"negative pl groups", ReportSpec{Workload: "OLTP-St", Scheme: "dma-ta-pl", PLGroups: -2}, "out of range"},
		{"unknown tech", ReportSpec{Workload: "OLTP-St", Tech: "sram"}, "unknown memory technology"},
		{"negative workers", ReportSpec{Workload: "OLTP-St", Workers: -1}, "negative Workers"},
		{"negative duration", ReportSpec{Workload: "OLTP-St", Suite: SuiteSpec{Duration: -1}}, "negative trace duration"},
	}
	for _, tc := range cases {
		_, err := tc.sp.Normalize()
		if err == nil {
			t.Errorf("%s: Normalize accepted %+v", tc.name, tc.sp)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRunReportGolden pins RunReport to the committed corpus: a
// defaulted spec canonicalizes to the exact golden bytes for its
// workload, scheme, and technology.
func TestRunReportGolden(t *testing.T) {
	cases := []struct {
		sp     ReportSpec
		golden string
	}{
		{ReportSpec{Workload: "OLTP-St"}, "oltp-st_baseline.json"},
		{ReportSpec{Workload: "Synthetic-St", Scheme: "dma-ta-pl"}, "synthetic-st_dma-ta-pl.json"},
		{ReportSpec{Workload: "Synthetic-St", Scheme: "dma-ta", Tech: "lpddr4"}, "synthetic-st_dma-ta_lpddr4.json"},
	}
	for _, tc := range cases {
		rep, err := RunReport(context.Background(), tc.sp)
		if err != nil {
			t.Fatalf("%s: %v", tc.golden, err)
		}
		got, err := CanonicalJSON(rep)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile("testdata/golden/" + tc.golden)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: report diverged from golden (%d vs %d bytes)", tc.golden, len(got), len(want))
		}
	}
	if _, err := RunReport(context.Background(), ReportSpec{Workload: "nope"}); err == nil {
		t.Error("RunReport accepted an unknown workload")
	}
}

func TestSharedWorkloadCache(t *testing.T) {
	// Swap in a fresh process cache so this test neither depends on nor
	// pollutes what other tests in the binary have generated.
	sharedSuitesMu.Lock()
	saved := sharedSuites
	sharedSuites = map[SuiteSpec]*Suite{}
	sharedSuitesMu.Unlock()
	defer func() {
		sharedSuitesMu.Lock()
		sharedSuites = saved
		sharedSuitesMu.Unlock()
	}()

	sp := SuiteSpec{Duration: sim.Millisecond, DbDuration: sim.Millisecond, Seed: 7}
	tr1, err := sharedWorkload(sp, "Synthetic-St")
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := sharedWorkload(sp, "Synthetic-St")
	if err != nil {
		t.Fatal(err)
	}
	if tr1 != tr2 {
		t.Error("same spec generated its trace twice")
	}
	if _, err := sharedWorkload(sp, "no-such-workload"); err == nil {
		t.Error("sharedWorkload accepted an unknown workload")
	}

	// Past the bound, new specs bypass the cache instead of hoarding.
	for i := 0; i < 2*maxSharedSuites; i++ {
		sp := SuiteSpec{Seed: uint64(1000 + i)}
		if _, err := sharedWorkload(sp, "no-such-workload"); err == nil {
			t.Fatal("unknown workload accepted")
		}
	}
	sharedSuitesMu.Lock()
	n := len(sharedSuites)
	sharedSuitesMu.Unlock()
	if n > maxSharedSuites {
		t.Errorf("shared suite cache grew to %d, bound is %d", n, maxSharedSuites)
	}
}

func TestValidateGridCounts(t *testing.T) {
	n, err := ValidateGrid(SuiteSpec{}, GridSpec{Name: GridNoop, Points: 5})
	if err != nil || n != 5 {
		t.Errorf("noop grid: n=%d err=%v, want 5", n, err)
	}
	n, err = ValidateGrid(SuiteSpec{}, GridSpec{Name: GridFig10, Workloads: []string{"OLTP-St"}, BusBW: []float64{100e6, 200e6}, Channels: []int{1, 2}})
	if err != nil || n != 8 {
		t.Errorf("fig10 grid: n=%d err=%v, want 8 (1 workload x 2 bandwidths x 2 channels x 2 schemes)", n, err)
	}
	if _, err := ValidateGrid(SuiteSpec{}, GridSpec{Name: "bogus"}); err == nil {
		t.Error("ValidateGrid accepted an unknown grid")
	}
	if _, err := ValidateGrid(SuiteSpec{}, GridSpec{Name: GridFig10, Techs: []string{"sram"}}); err == nil {
		t.Error("ValidateGrid accepted an unknown technology")
	}
}

func TestGridRunRawNoop(t *testing.T) {
	s := NewSuiteFromSpec(SuiteSpec{})
	var labels []string
	out, err := GridRunRaw(context.Background(), s, GridSpec{Name: GridNoop, Points: 3},
		func(i int, label string) { labels = append(labels, label) })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d points, want 3", len(out))
	}
	for i, raw := range out {
		var p SweepPoint
		if err := json.Unmarshal(raw, &p); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if p.Workload != "noop" || p.X != float64(i) {
			t.Errorf("point %d = %+v", i, p)
		}
	}
	// The nil Runner runs points sequentially, so callbacks arrive in
	// grid order.
	if want := []string{"noop/0", "noop/1", "noop/2"}; strings.Join(labels, ",") != strings.Join(want, ",") {
		t.Errorf("onPoint labels = %v, want %v", labels, want)
	}
	if _, err := GridRunRaw(context.Background(), s, GridSpec{Name: "bogus"}, nil); err == nil {
		t.Error("GridRunRaw accepted an unknown grid")
	}
}
