package experiments

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"

	"dmamem/internal/core"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// TestParallelSerialBitIdentical is the acceptance cross-check for the
// epoch-barrier parallel engine: on every golden-corpus workload x
// scheme, the parallel engine at 1, 2 and 4 workers must reproduce the
// serial reference engine's report bit for bit — in-memory and
// file-backed. The comparison is reflect.DeepEqual over the whole
// core.Result, so one drifted float or one extra engine step fails.
// CI runs this under -race, which also exercises the barrier
// engine's cross-goroutine handoffs for data races.
func TestParallelSerialBitIdentical(t *testing.T) {
	s := goldenSuite()
	for _, name := range workloadNames {
		tr, err := s.workload(name)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		path := saveDMT(t, tr, 512)
		window := tr.Duration() + 2*sim.Millisecond
		for _, sc := range goldenSchemes() {
			cfg := sc.cfg
			cfg.MeterWindow = window
			serial, err := core.Run(cfg, tr)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", name, sc.label, err)
			}
			fcfg := cfg
			fcfg.TraceFile = path
			serialFile, err := core.Run(fcfg, nil)
			if err != nil {
				t.Fatalf("%s/%s serial file: %v", name, sc.label, err)
			}
			if !reflect.DeepEqual(serial, serialFile) {
				t.Fatalf("%s/%s: serial file result differs from in-memory", name, sc.label)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				pcfg := cfg
				pcfg.Workers = workers
				got, err := core.Run(pcfg, tr)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", name, sc.label, workers, err)
				}
				if !reflect.DeepEqual(serial, got) {
					t.Errorf("%s/%s: parallel workers=%d differs from serial", name, sc.label, workers)
				}
				pf := fcfg
				pf.Workers = workers
				gotFile, err := core.Run(pf, nil)
				if err != nil {
					t.Fatalf("%s/%s file workers=%d: %v", name, sc.label, workers, err)
				}
				if !reflect.DeepEqual(serial, gotFile) {
					t.Errorf("%s/%s: parallel file workers=%d differs from serial", name, sc.label, workers)
				}
			}
		}
	}
}

// TestParallelPLBitIdentical is the acceptance gate for epoch-
// synchronized global observation: the page-layout scheme (DMA-TA-PL),
// which earlier engine versions rejected on multi-channel parallel
// topologies, now runs there and its results are a pure function of
// simulated time. On a 4-channel topology every worker count from 1 to
// 8 must produce the same Result, adaptive and fixed barriers must
// agree bit for bit, and the file-backed feeder must match in-memory
// delivery. Single-channel PL already answers to the serial reference
// via TestParallelSerialBitIdentical.
func TestParallelPLBitIdentical(t *testing.T) {
	s := goldenSuite()
	topo := memsys.Topology{Channels: 4, ChannelBandwidth: 3.2e9}
	for _, name := range []string{"OLTP-St", "Synthetic-Db"} {
		tr, err := s.workload(name)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		path := saveDMT(t, tr, 512)
		cfg := taConfig(0.10, plConfig(2))
		cfg.Topology = topo
		cfg.MeterWindow = tr.Duration() + 2*sim.Millisecond
		cfg.Workers = 1
		ref, err := core.Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s workers=1: %v", name, err)
		}
		for _, workers := range []int{2, 4, 8} {
			wcfg := cfg
			wcfg.Workers = workers
			got, err := core.Run(wcfg, tr)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s: multi-channel PL differs at workers=%d", name, workers)
			}
		}
		fixed := cfg
		fixed.Workers = 4
		fixed.FixedEpoch = true
		gotFixed, err := core.Run(fixed, tr)
		if err != nil {
			t.Fatalf("%s fixed: %v", name, err)
		}
		if !reflect.DeepEqual(ref, gotFixed) {
			t.Errorf("%s: multi-channel PL adaptive differs from fixed barriers", name)
		}
		fcfg := cfg
		fcfg.Workers = 4
		fcfg.TraceFile = path
		gotFile, err := core.Run(fcfg, nil)
		if err != nil {
			t.Fatalf("%s file: %v", name, err)
		}
		if !reflect.DeepEqual(ref, gotFile) {
			t.Errorf("%s: multi-channel PL file-backed differs from in-memory", name)
		}
	}
}

// TestAdaptiveEpochSpeedupSmoke is the CI bench smoke gate for barrier
// elision: on the sparse cross-channel workload (long all-idle gaps
// between DMA bursts, the case fixed epochs handle worst) the adaptive
// barrier at 4 channels / 4 workers must run at least 1.3x faster than
// the same configuration with FixedEpoch. Like the other throughput
// gate it only arms under DMAMEM_BENCH_SMOKE=1 and skips on hosts
// where the comparison is physically meaningless.
func TestAdaptiveEpochSpeedupSmoke(t *testing.T) {
	if os.Getenv("DMAMEM_BENCH_SMOKE") == "" {
		t.Skip("set DMAMEM_BENCH_SMOKE=1 to run the adaptive barrier gate")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("adaptive barrier gate needs at least 4 CPUs, have %d", n)
	}
	tr := SparseTrace(2*sim.Second, 2*sim.Millisecond, 4)
	topo := memsys.Topology{Channels: 4, ChannelBandwidth: 3.2e9}
	secs := func(fixed bool) float64 {
		cfg := core.Config{Topology: topo, Workers: 4, FixedEpoch: fixed}
		best := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if _, err := core.Run(cfg, tr); err != nil {
						b.Fatal(err)
					}
				}
			})
			s := r.T.Seconds() / float64(r.N)
			if i == 0 || s < best {
				best = s
			}
		}
		return best
	}
	adaptive := secs(false)
	fixed := secs(true)
	ratio := fixed / adaptive
	t.Logf("adaptive %.3fs, fixed %.3fs per run, ratio %.2fx", adaptive, fixed, ratio)
	fmt.Printf("bench-smoke: adaptive=%.3fs fixed=%.3fs per run (ratio %.2fx)\n", adaptive, fixed, ratio)
	if ratio < 1.3 {
		t.Fatalf("adaptive barrier underperforms on the sparse workload: %.3fs vs fixed %.3fs (ratio %.2fx < 1.3)",
			adaptive, fixed, ratio)
	}
}

// BenchmarkBarrierScaling spans the channels x workers x epoch grid on
// a dense generated workload, one sub-benchmark per cell; workers=0 is
// the serial reference. `go test -bench BarrierScaling` renders the
// raw material behind BENCH_parallel.json (which the dmamem-bench
// -parallel-bench runner regenerates with speedup columns).
func BenchmarkBarrierScaling(b *testing.B) {
	s := NewSuite(10*sim.Millisecond, 1)
	tr, err := s.workload("Synthetic-St")
	if err != nil {
		b.Fatal(err)
	}
	for _, channels := range []int{1, 2, 4} {
		for _, workers := range []int{0, 1, 2, 4} {
			for _, epoch := range []sim.Duration{20 * sim.Microsecond, 50 * sim.Microsecond, 200 * sim.Microsecond} {
				if workers == 0 && epoch != 50*sim.Microsecond {
					continue // the serial engine has no epoch knob
				}
				name := fmt.Sprintf("ch=%d/workers=%d/epoch=%v", channels, workers, epoch)
				b.Run(name, func(b *testing.B) {
					cfg := core.Config{Workers: workers, BarrierEpoch: epoch}
					if channels > 1 {
						cfg.Topology = memsys.Topology{Channels: channels, ChannelBandwidth: 3.2e9}
					}
					var events uint64
					for i := 0; i < b.N; i++ {
						res, err := core.Run(cfg, tr)
						if err != nil {
							b.Fatal(err)
						}
						events = res.Report.Events
					}
					b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
				})
			}
		}
	}
}

// TestParallelThroughputSmoke is the CI bench smoke gate for the
// parallel engine: on a 4-channel topology, 4 workers must deliver at
// least 1.3x the serial engine's events/sec on the SimulatorThroughput
// configuration. Benchmarking inside the normal test run would be
// noise-prone, so the check only arms when CI sets
// DMAMEM_BENCH_SMOKE=1, and it skips on hosts with fewer than 4 CPUs
// where a parallel speedup is physically unavailable.
func TestParallelThroughputSmoke(t *testing.T) {
	if os.Getenv("DMAMEM_BENCH_SMOKE") == "" {
		t.Skip("set DMAMEM_BENCH_SMOKE=1 to run the parallel throughput gate")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("parallel throughput gate needs at least 4 CPUs, have %d", n)
	}
	s := NewSuite(25*sim.Millisecond, 1)
	tr, err := s.workload("Synthetic-St")
	if err != nil {
		t.Fatal(err)
	}
	topo := memsys.Topology{Channels: 4, ChannelBandwidth: 3.2e9}
	eventsPerSec := func(workers int) float64 {
		var events uint64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{Topology: topo, Workers: workers}, tr)
				if err != nil {
					b.Fatal(err)
				}
				events = res.Report.Events
			}
		})
		return float64(events) * float64(r.N) / r.T.Seconds()
	}
	serial := eventsPerSec(0)
	parallel := eventsPerSec(4)
	ratio := parallel / serial
	t.Logf("parallel %.0f events/sec, serial %.0f events/sec, ratio %.3f", parallel, serial, ratio)
	fmt.Printf("bench-smoke: parallel=%.0f serial=%.0f events/sec (ratio %.3f)\n", parallel, serial, ratio)
	if ratio < 1.3 {
		t.Fatalf("parallel engine underperforms at 4 channels / 4 workers: %.0f vs %.0f events/sec (ratio %.3f < 1.3)",
			parallel, serial, ratio)
	}
}
