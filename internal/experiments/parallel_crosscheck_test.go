package experiments

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"

	"dmamem/internal/core"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// TestParallelSerialBitIdentical is the acceptance cross-check for the
// epoch-barrier parallel engine: on every golden-corpus workload x
// scheme, the parallel engine at 1, 2 and 4 workers must reproduce the
// serial reference engine's report bit for bit — in-memory and
// file-backed. The comparison is reflect.DeepEqual over the whole
// core.Result, so one drifted float or one extra engine step fails.
// CI runs this under -race, which also exercises the barrier
// engine's cross-goroutine handoffs for data races.
func TestParallelSerialBitIdentical(t *testing.T) {
	s := goldenSuite()
	for _, name := range workloadNames {
		tr, err := s.workload(name)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		path := saveDMT(t, tr, 512)
		window := tr.Duration() + 2*sim.Millisecond
		for _, sc := range goldenSchemes() {
			cfg := sc.cfg
			cfg.MeterWindow = window
			serial, err := core.Run(cfg, tr)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", name, sc.label, err)
			}
			fcfg := cfg
			fcfg.TraceFile = path
			serialFile, err := core.Run(fcfg, nil)
			if err != nil {
				t.Fatalf("%s/%s serial file: %v", name, sc.label, err)
			}
			if !reflect.DeepEqual(serial, serialFile) {
				t.Fatalf("%s/%s: serial file result differs from in-memory", name, sc.label)
			}
			for _, workers := range []int{1, 2, 4} {
				pcfg := cfg
				pcfg.Workers = workers
				got, err := core.Run(pcfg, tr)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", name, sc.label, workers, err)
				}
				if !reflect.DeepEqual(serial, got) {
					t.Errorf("%s/%s: parallel workers=%d differs from serial", name, sc.label, workers)
				}
				pf := fcfg
				pf.Workers = workers
				gotFile, err := core.Run(pf, nil)
				if err != nil {
					t.Fatalf("%s/%s file workers=%d: %v", name, sc.label, workers, err)
				}
				if !reflect.DeepEqual(serial, gotFile) {
					t.Errorf("%s/%s: parallel file workers=%d differs from serial", name, sc.label, workers)
				}
			}
		}
	}
}

// TestParallelThroughputSmoke is the CI bench smoke gate for the
// parallel engine: on a 4-channel topology, 4 workers must deliver at
// least 1.3x the serial engine's events/sec on the SimulatorThroughput
// configuration. Benchmarking inside the normal test run would be
// noise-prone, so the check only arms when CI sets
// DMAMEM_BENCH_SMOKE=1, and it skips on hosts with fewer than 4 CPUs
// where a parallel speedup is physically unavailable.
func TestParallelThroughputSmoke(t *testing.T) {
	if os.Getenv("DMAMEM_BENCH_SMOKE") == "" {
		t.Skip("set DMAMEM_BENCH_SMOKE=1 to run the parallel throughput gate")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("parallel throughput gate needs at least 4 CPUs, have %d", n)
	}
	s := NewSuite(25*sim.Millisecond, 1)
	tr, err := s.workload("Synthetic-St")
	if err != nil {
		t.Fatal(err)
	}
	topo := memsys.Topology{Channels: 4, ChannelBandwidth: 3.2e9}
	eventsPerSec := func(workers int) float64 {
		var events uint64
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{Topology: topo, Workers: workers}, tr)
				if err != nil {
					b.Fatal(err)
				}
				events = res.Report.Events
			}
		})
		return float64(events) * float64(r.N) / r.T.Seconds()
	}
	serial := eventsPerSec(0)
	parallel := eventsPerSec(4)
	ratio := parallel / serial
	t.Logf("parallel %.0f events/sec, serial %.0f events/sec, ratio %.3f", parallel, serial, ratio)
	fmt.Printf("bench-smoke: parallel=%.0f serial=%.0f events/sec (ratio %.3f)\n", parallel, serial, ratio)
	if ratio < 1.3 {
		t.Fatalf("parallel engine underperforms at 4 channels / 4 workers: %.0f vs %.0f events/sec (ratio %.3f < 1.3)",
			parallel, serial, ratio)
	}
}
