// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5) on the simulator. Each experiment
// returns structured data plus a text rendering, so the benchmark
// harness, the CLI and the tests share one implementation.
//
// Every experiment decomposes into independent jobs — one simulation
// run per scheme/workload/sweep-point — executed through a Runner
// worker pool. Results are reassembled in job order, so the output of
// a parallel run is byte-identical to a sequential one; see Runner.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"dmamem/internal/controller"
	"dmamem/internal/core"
	"dmamem/internal/energy"
	"dmamem/internal/layout"
	"dmamem/internal/server"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// Suite holds the shared configuration of an experiment run. A Suite
// is safe for concurrent use by the jobs of one Runner: the workload
// cache is single-flight, so a trace is generated exactly once even
// when several schemes request it simultaneously.
type Suite struct {
	// Duration of generated traces, in simulated time (sim.Duration,
	// picoseconds). The paper's shapes are stable from ~40 ms; the CLI
	// defaults to 100 ms.
	Duration sim.Duration
	// DbDuration for the (much denser) database traces; zero means
	// Duration.
	DbDuration sim.Duration
	// Seed for all generators.
	Seed uint64
	// Runner executes the suite's independent simulation jobs. A nil
	// Runner runs everything sequentially on the calling goroutine;
	// results are byte-identical either way.
	Runner *Runner
	// HeapScheduler and PerEventFeeder propagate the engine knobs of
	// the same names (core.Config) to every simulation the suite runs.
	// Results are bit-identical regardless — the cross-check test holds
	// all four combinations to that.
	HeapScheduler  bool
	PerEventFeeder bool
	// Workers propagates core.Config.Workers to every simulation the
	// suite runs: 0 keeps the serial reference engine, a positive count
	// selects the epoch-barrier parallel engine. Golden-corpus results
	// are bit-identical either way; the parallel cross-check test holds
	// every worker count to that.
	Workers int
	// BarrierEpoch and FixedEpoch propagate the parallel engine's
	// barrier period and adaptive-elision kill switch (core.Config
	// fields of the same names) to every simulation the suite runs.
	// Both only matter when Workers selects the parallel engine, and
	// neither changes results — the adaptive-vs-fixed cross-check test
	// holds every combination to bit-identity.
	BarrierEpoch sim.Duration
	FixedEpoch   bool

	mu        sync.Mutex
	cache     map[string]*cacheEntry
	baselines map[string]*baseEntry
}

// cacheEntry is the single-flight slot for one workload trace: the
// first requester generates, concurrent requesters wait on the Once.
type cacheEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// workloadNames are the four traces of Table 2, in presentation order.
var workloadNames = []string{"OLTP-St", "Synthetic-St", "OLTP-Db", "Synthetic-Db"}

// NewSuite returns a suite with the given trace duration.
func NewSuite(d sim.Duration, seed uint64) *Suite {
	return &Suite{Duration: d, Seed: seed, cache: map[string]*cacheEntry{}}
}

func (s *Suite) dbDuration() sim.Duration {
	if s.DbDuration != 0 {
		return s.DbDuration
	}
	return s.Duration
}

// Workloads returns the four traces of Table 2, generating (in
// parallel, through the suite's Runner) and caching them on first use.
func (s *Suite) Workloads(ctx context.Context) ([]*trace.Trace, error) {
	return mapJobs(ctx, s.Runner, len(workloadNames),
		func(i int) string { return "workload/" + workloadNames[i] },
		func(ctx context.Context, i int) (*trace.Trace, error) {
			return s.workload(workloadNames[i])
		})
}

// workload returns one cached trace, generating it on first use.
// Concurrent callers of the same name share a single generation.
func (s *Suite) workload(name string) (*trace.Trace, error) {
	s.mu.Lock()
	if s.cache == nil {
		s.cache = map[string]*cacheEntry{}
	}
	e, ok := s.cache[name]
	if !ok {
		e = &cacheEntry{}
		s.cache[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = s.generate(name) })
	return e.tr, e.err
}

// generate builds one workload trace. Each generator gets its own
// seed-derived RNG, so concurrent generation of different workloads is
// isolated (verified by the package's race tests).
func (s *Suite) generate(name string) (*trace.Trace, error) {
	var tr *trace.Trace
	var err error
	switch name {
	case "OLTP-St":
		cfg := server.DefaultStorage()
		cfg.Duration = s.Duration
		cfg.Seed = s.Seed + 7
		var res *server.StorageResult
		if res, err = server.GenerateStorage(cfg); err == nil {
			tr = res.Trace
		}
	case "Synthetic-St":
		cfg := synth.DefaultSt()
		cfg.Duration = s.Duration
		cfg.Seed = s.Seed + 1
		tr, err = synth.GenerateSt(cfg)
	case "OLTP-Db":
		cfg := server.DefaultDatabase()
		cfg.Duration = s.dbDuration()
		cfg.Seed = s.Seed + 11
		var res *server.DatabaseResult
		if res, err = server.GenerateDatabase(cfg); err == nil {
			tr = res.Trace
		}
	case "Synthetic-Db":
		cfg := synth.DefaultDb()
		cfg.St.Duration = s.dbDuration()
		cfg.St.Seed = s.Seed + 2
		tr, err = synth.GenerateDb(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: workload %s: %w", name, err)
	}
	return tr, nil
}

// run executes one simulation with the suite's engine knobs applied
// and the job's context observed mid-run (a cancelled figure aborts
// its in-flight simulations instead of finishing them).
func (s *Suite) run(ctx context.Context, cfg core.Config, tr *trace.Trace) (*core.Result, error) {
	cfg.HeapScheduler = s.HeapScheduler
	cfg.PerEventFeeder = s.PerEventFeeder
	cfg.Workers = s.Workers
	cfg.BarrierEpoch = s.BarrierEpoch
	cfg.FixedEpoch = s.FixedEpoch
	return core.RunContext(ctx, cfg, tr)
}

// runPair is RunBaselinePair with the suite's engine knobs and
// cancellation. It also reports the combined simulation event count of
// the pair, so sweep jobs feed events/sec observability.
func (s *Suite) runPair(ctx context.Context, base, tech core.Config, tr *trace.Trace) (savings float64, events uint64, err error) {
	base.HeapScheduler, tech.HeapScheduler = s.HeapScheduler, s.HeapScheduler
	base.PerEventFeeder, tech.PerEventFeeder = s.PerEventFeeder, s.PerEventFeeder
	base.Workers, tech.Workers = s.Workers, s.Workers
	base.BarrierEpoch, tech.BarrierEpoch = s.BarrierEpoch, s.BarrierEpoch
	base.FixedEpoch, tech.FixedEpoch = s.FixedEpoch, s.FixedEpoch
	b, t, savings, err := core.RunBaselinePairParallel(ctx, base, tech, tr, 1)
	if err != nil {
		return 0, 0, err
	}
	return savings, b.SimEvents() + t.SimEvents(), nil
}

// taConfig returns the technique configuration for a CP-Limit.
func taConfig(cpLimit float64, pl *layout.Config) core.Config {
	return core.Config{TA: controller.DefaultTA(0), CPLimit: cpLimit, PL: pl}
}

func plConfig(groups int) *layout.Config {
	cfg := layout.DefaultConfig()
	cfg.Groups = groups
	return &cfg
}

// Table1 renders the power model constants (a transcription check of
// the paper's Table 1; powers in watts, rendered as milliwatts).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: RDRAM power model\n")
	fmt.Fprintf(&b, "%-22s %8s %14s\n", "state/transition", "power", "time")
	rows := []struct {
		name  string
		power float64
		t     string
	}{
		{"active", energy.ActivePower, "-"},
		{"standby", energy.StandbyPower, "-"},
		{"nap", energy.NapPower, "-"},
		{"powerdown", energy.PowerdownPower, "-"},
		{"active->standby", energy.ActiveToStandby.Power, "1 memory cycle"},
		{"active->nap", energy.ActiveToNap.Power, "8 memory cycles"},
		{"active->powerdown", energy.ActiveToPowerdown.Power, "8 memory cycles"},
		{"standby->active", energy.StandbyToActive.Power, "+6 ns"},
		{"nap->active", energy.NapToActive.Power, "+60 ns"},
		{"powerdown->active", energy.PowerdownToActive.Power, "+6000 ns"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %6.0fmW %14s\n", r.name, 1e3*r.power, r.t)
	}
	return b.String()
}

// Table2Row summarizes one workload: DMA transfer rates per
// millisecond of simulated time, processor access rates, and the
// distinct-page footprint.
type Table2Row struct {
	// Name of the workload ("OLTP-St", ...).
	Name string
	// NetPerMs is network DMA transfers per simulated millisecond.
	NetPerMs float64
	// DiskPerMs is disk DMA transfers per simulated millisecond.
	DiskPerMs float64
	// ProcPerMs is processor accesses per simulated millisecond.
	ProcPerMs float64
	// ProcPerTransfer is processor accesses per DMA transfer.
	ProcPerTransfer float64
	// DistinctPages touched by the trace.
	DistinctPages int
}

// Table2 generates the four traces and summarizes them like the
// paper's trace inventory, one analysis job per workload.
func (s *Suite) Table2(ctx context.Context) ([]Table2Row, error) {
	ws, err := s.Workloads(ctx)
	if err != nil {
		return nil, err
	}
	return mapJobs(ctx, s.Runner, len(ws),
		func(i int) string { return "table2/" + ws[i].Name },
		func(ctx context.Context, i int) (Table2Row, error) {
			tr := ws[i]
			st := trace.Analyze(tr)
			dur := st.Duration.Seconds() * 1e3
			return Table2Row{
				Name:            tr.Name,
				NetPerMs:        float64(st.NetTransfers) / dur,
				DiskPerMs:       float64(st.DiskTransfers) / dur,
				ProcPerMs:       st.ProcAccessesPerMs(),
				ProcPerTransfer: st.ProcAccessesPerTransfer(),
				DistinctPages:   st.DistinctPages,
			}, nil
		})
}

// FormatTable2 renders Table2 rows.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: traces\n%-14s %9s %9s %11s %10s %8s\n",
		"trace", "net/ms", "disk/ms", "proc/ms", "proc/xfer", "pages")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9.1f %9.1f %11.0f %10.0f %8d\n",
			r.Name, r.NetPerMs, r.DiskPerMs, r.ProcPerMs, r.ProcPerTransfer, r.DistinctPages)
	}
	return b.String()
}

// BreakdownRow is one bar of a Figure 2(b)/Figure 6 style breakdown.
type BreakdownRow struct {
	// Label of the bar (workload or scheme name).
	Label string
	// Fraction maps an energy category name to its share of the total
	// (0..1).
	Fraction map[string]float64
	// TotalJ is the total energy of the run in joules.
	TotalJ float64
}

func breakdownRow(label string, e energy.Breakdown) BreakdownRow {
	r := BreakdownRow{Label: label, Fraction: map[string]float64{}, TotalJ: e.Total()}
	for c := energy.Category(0); c < energy.NumCategories; c++ {
		r.Fraction[c.String()] = e.Fraction(c)
	}
	return r
}

// FormatBreakdowns renders breakdown bars.
func FormatBreakdowns(title string, rows []BreakdownRow) string {
	cats := []string{"active-serving", "active-idle-dma", "active-idle-threshold",
		"transition", "low-power", "migration", "proc-serving"}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-22s", title, "scheme")
	for _, c := range cats {
		fmt.Fprintf(&b, " %9s", shortCat(c))
	}
	fmt.Fprintf(&b, " %10s\n", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s", r.Label)
		for _, c := range cats {
			fmt.Fprintf(&b, " %8.1f%%", 100*r.Fraction[c])
		}
		fmt.Fprintf(&b, " %8.2fmJ\n", 1e3*r.TotalJ)
	}
	return b.String()
}

func shortCat(c string) string {
	switch c {
	case "active-serving":
		return "serving"
	case "active-idle-dma":
		return "idle-dma"
	case "active-idle-threshold":
		return "idle-thr"
	case "proc-serving":
		return "proc"
	}
	return c
}

// Fig2b computes the baseline energy breakdown for the two storage
// workloads (the paper reports 48-51% active-idle-DMA, 26-27% serving,
// 3-4% threshold idle), one run per workload.
func (s *Suite) Fig2b(ctx context.Context) ([]BreakdownRow, error) {
	names := []string{"OLTP-St", "Synthetic-St"}
	return mapJobs(ctx, s.Runner, len(names),
		func(i int) string { return "fig2b/" + names[i] },
		func(ctx context.Context, i int) (BreakdownRow, error) {
			tr, err := s.workload(names[i])
			if err != nil {
				return BreakdownRow{}, err
			}
			res, err := s.run(ctx, core.Config{}, tr)
			if err != nil {
				return BreakdownRow{}, err
			}
			return breakdownRow(names[i], res.Report.Energy), nil
		})
}

// Fig4 returns the page-popularity CDF of the OLTP-St trace (the paper
// shows ~20% of pages receiving ~60% of DMA accesses).
func (s *Suite) Fig4(ctx context.Context, points int) ([]trace.CDFPoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr, err := s.workload("OLTP-St")
	if err != nil {
		return nil, err
	}
	return trace.Analyze(tr).PopularityCDF(points), nil
}

// FormatFig4 renders the CDF.
func FormatFig4(pts []trace.CDFPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: page popularity CDF (OLTP-St)\n%10s %10s\n", "pages%", "accesses%")
	for _, p := range pts {
		fmt.Fprintf(&b, "%9.0f%% %9.1f%%\n", 100*p.PageFrac, 100*p.AccessFrac)
	}
	return b.String()
}

// Fig5Point is one curve sample: savings over baseline at a CP-Limit.
type Fig5Point struct {
	// Workload the point belongs to.
	Workload string
	// Scheme is "dma-ta", "dma-ta-pl-2", "dma-ta-pl-3" or "dma-ta-pl-6".
	Scheme string
	// CPLimit is the client-perceived degradation bound (fraction,
	// e.g. 0.10).
	CPLimit float64
	// Savings is the fractional energy reduction over the baseline.
	Savings float64
	// UF is the utilization factor of the run (Section 5.3).
	UF float64
}

// Fig5 sweeps CP-Limit for every workload and scheme, like the paper's
// headline figure. The paper's shape: DMA-TA-PL(2) > DMA-TA; savings
// rise steeply to ~10% CP-Limit and then flatten; 6 groups lose to 2.
// The grid — one run per (workload, scheme, CP-Limit), each scored
// against its workload's cached single-flight baseline — executes on
// the suite's Runner and is reassembled in sweep order; `GridFig5`
// names the same grid for sharded execution (see Coordinator).
func (s *Suite) Fig5(ctx context.Context, cpLimits []float64, groups []int) ([]Fig5Point, error) {
	return GridRun[Fig5Point](ctx, s, GridSpec{Name: GridFig5, CPLimits: cpLimits, Groups: groups})
}

// FormatFig5 renders the savings curves grouped by workload.
func FormatFig5(pts []Fig5Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: energy savings over baseline vs CP-Limit\n")
	byWorkload := map[string][]Fig5Point{}
	var order []string
	for _, p := range pts {
		if _, ok := byWorkload[p.Workload]; !ok {
			order = append(order, p.Workload)
		}
		byWorkload[p.Workload] = append(byWorkload[p.Workload], p)
	}
	for _, w := range order {
		fmt.Fprintf(&b, "%s:\n%-14s %9s %10s %6s\n", w, "scheme", "cp-limit", "savings", "uf")
		for _, p := range byWorkload[w] {
			fmt.Fprintf(&b, "%-14s %8.0f%% %9.1f%% %6.2f\n",
				p.Scheme, 100*p.CPLimit, 100*p.Savings, p.UF)
		}
	}
	return b.String()
}

// Fig6 computes the energy breakdowns of baseline, DMA-TA and
// DMA-TA-PL on OLTP-St at 10% CP-Limit (the paper's Figure 6), one run
// per scheme.
func (s *Suite) Fig6(ctx context.Context) ([]BreakdownRow, error) {
	tr, err := s.workload("OLTP-St")
	if err != nil {
		return nil, err
	}
	window := tr.Duration() + 2*sim.Millisecond
	schemes := []struct {
		label string
		cfg   core.Config
	}{
		{"baseline", core.Config{}},
		{"dma-ta", taConfig(0.10, nil)},
		{"dma-ta-pl", taConfig(0.10, plConfig(2))},
	}
	return mapJobs(ctx, s.Runner, len(schemes),
		func(i int) string { return "fig6/" + schemes[i].label },
		func(ctx context.Context, i int) (BreakdownRow, error) {
			cfg := schemes[i].cfg
			cfg.MeterWindow = window
			res, err := s.run(ctx, cfg, tr)
			if err != nil {
				return BreakdownRow{}, err
			}
			return breakdownRow(schemes[i].label, res.Report.Energy), nil
		})
}

// Fig7Point is a utilization-factor sample.
type Fig7Point struct {
	// Scheme is "baseline", "dma-ta" or "dma-ta-pl".
	Scheme string
	// CPLimit is the degradation bound of the run (fraction; 0 for the
	// baseline).
	CPLimit float64
	// UF is the measured utilization factor.
	UF float64
}

// Fig7 sweeps CP-Limit and reports the utilization factor of DMA-TA
// and DMA-TA-PL on OLTP-St (paper: baseline ~0.33, DMA-TA-PL ~0.63 at
// 10% and ~0.75 at 30%), one run per (scheme, CP-Limit) point.
func (s *Suite) Fig7(ctx context.Context, cpLimits []float64) ([]Fig7Point, error) {
	tr, err := s.workload("OLTP-St")
	if err != nil {
		return nil, err
	}
	type spec struct {
		label   string
		cpLimit float64
		cfg     core.Config
	}
	specs := []spec{{"baseline", 0, core.Config{}}}
	for _, cp := range cpLimits {
		specs = append(specs,
			spec{"dma-ta", cp, taConfig(cp, nil)},
			spec{"dma-ta-pl", cp, taConfig(cp, plConfig(2))})
	}
	return mapJobs(ctx, s.Runner, len(specs),
		func(i int) string { return fmt.Sprintf("fig7/%s/cp=%.2f", specs[i].label, specs[i].cpLimit) },
		func(ctx context.Context, i int) (Fig7Point, error) {
			res, err := s.run(ctx, specs[i].cfg, tr)
			if err != nil {
				return Fig7Point{}, err
			}
			return Fig7Point{Scheme: specs[i].label, CPLimit: specs[i].cpLimit,
				UF: res.Report.UtilizationFactor}, nil
		})
}

// FormatFig7 renders utilization factors.
func FormatFig7(pts []Fig7Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: utilization factor vs CP-Limit (OLTP-St)\n%-12s %9s %6s\n",
		"scheme", "cp-limit", "uf")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12s %8.0f%% %6.3f\n", p.Scheme, 100*p.CPLimit, p.UF)
	}
	return b.String()
}

// SweepPoint is a generic (x, savings) sample for Figures 8-10.
type SweepPoint struct {
	// Workload the point belongs to.
	Workload string
	// Scheme is "dma-ta" or "dma-ta-pl".
	Scheme string
	// X is the sweep variable (units depend on the figure: transfers
	// per millisecond, processor accesses per transfer, or a bandwidth
	// ratio).
	X float64
	// Savings is the fractional energy reduction over the baseline.
	Savings float64
}

// sweepSchemes are the two techniques the sweep figures compare.
// sweepSchemeConfig builds a fresh configuration per job, so no config
// pointers are shared between concurrently running simulations.
var sweepSchemes = []string{"dma-ta", "dma-ta-pl"}

func sweepSchemeConfig(label string) core.Config {
	if label == "dma-ta-pl" {
		return taConfig(0.10, plConfig(2))
	}
	return taConfig(0.10, nil)
}

// Fig8 varies the Synthetic-St arrival rate (the paper's workload
// intensity sweep; savings grow with intensity, then flatten). Each
// (rate, scheme) job regenerates its own trace — the deterministic
// generator makes duplicate generation bit-identical — and runs a
// baseline/technique pair.
func (s *Suite) Fig8(ctx context.Context, ratesPerMs []float64) ([]SweepPoint, error) {
	return GridRun[SweepPoint](ctx, s, GridSpec{Name: GridFig8, RatesPerMs: ratesPerMs})
}

// Fig9 varies the number of processor accesses per DMA transfer in
// Synthetic-Db (paper: savings drop as the CPU consumes the idle
// cycles; OLTP-Db averages 233 accesses per transfer), one job per
// (point, scheme).
func (s *Suite) Fig9(ctx context.Context, perTransfer []int) ([]SweepPoint, error) {
	return GridRun[SweepPoint](ctx, s, GridSpec{Name: GridFig9, PerTransfer: perTransfer})
}

// Fig10 varies the I/O bus bandwidth with the memory rate fixed at
// 3.2 GB/s (the paper sweeps 0.5, 1, 2 and 3 GB/s; savings shrink as
// the ratio approaches 1), one job per (workload, bandwidth, scheme).
func (s *Suite) Fig10(ctx context.Context, busBW []float64) ([]SweepPoint, error) {
	return GridRun[SweepPoint](ctx, s, GridSpec{Name: GridFig10, BusBW: busBW})
}

// FormatSweep renders a sweep with a caption for the x-axis.
func FormatSweep(title, xlabel string, pts []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-14s %-12s %10s %9s\n", title, "workload", "scheme", xlabel, "savings")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-14s %-12s %10.2f %8.1f%%\n", p.Workload, p.Scheme, p.X, 100*p.Savings)
	}
	return b.String()
}
