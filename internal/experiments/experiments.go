// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5) on the simulator. Each experiment
// returns structured data plus a text rendering, so the benchmark
// harness, the CLI and the tests share one implementation.
package experiments

import (
	"fmt"
	"strings"

	"dmamem/internal/bus"
	"dmamem/internal/controller"
	"dmamem/internal/core"
	"dmamem/internal/energy"
	"dmamem/internal/layout"
	"dmamem/internal/server"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// Suite holds the shared configuration of an experiment run.
type Suite struct {
	// Duration of generated traces. The paper's shapes are stable from
	// ~40 ms; the CLI defaults to 100 ms.
	Duration sim.Duration
	// DbDuration for the (much denser) database traces; zero means
	// Duration.
	DbDuration sim.Duration
	// Seed for all generators.
	Seed uint64

	cache map[string]*trace.Trace
}

// NewSuite returns a suite with the given trace duration.
func NewSuite(d sim.Duration, seed uint64) *Suite {
	return &Suite{Duration: d, Seed: seed, cache: map[string]*trace.Trace{}}
}

func (s *Suite) dbDuration() sim.Duration {
	if s.DbDuration != 0 {
		return s.DbDuration
	}
	return s.Duration
}

// Workloads returns the four traces of Table 2, generating and caching
// them on first use.
func (s *Suite) Workloads() ([]*trace.Trace, error) {
	names := []string{"OLTP-St", "Synthetic-St", "OLTP-Db", "Synthetic-Db"}
	out := make([]*trace.Trace, 0, len(names))
	for _, n := range names {
		tr, err := s.workload(n)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

func (s *Suite) workload(name string) (*trace.Trace, error) {
	if tr, ok := s.cache[name]; ok {
		return tr, nil
	}
	var tr *trace.Trace
	var err error
	switch name {
	case "OLTP-St":
		cfg := server.DefaultStorage()
		cfg.Duration = s.Duration
		cfg.Seed = s.Seed + 7
		var res *server.StorageResult
		if res, err = server.GenerateStorage(cfg); err == nil {
			tr = res.Trace
		}
	case "Synthetic-St":
		cfg := synth.DefaultSt()
		cfg.Duration = s.Duration
		cfg.Seed = s.Seed + 1
		tr, err = synth.GenerateSt(cfg)
	case "OLTP-Db":
		cfg := server.DefaultDatabase()
		cfg.Duration = s.dbDuration()
		cfg.Seed = s.Seed + 11
		var res *server.DatabaseResult
		if res, err = server.GenerateDatabase(cfg); err == nil {
			tr = res.Trace
		}
	case "Synthetic-Db":
		cfg := synth.DefaultDb()
		cfg.St.Duration = s.dbDuration()
		cfg.St.Seed = s.Seed + 2
		tr, err = synth.GenerateDb(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", name)
	}
	if err != nil {
		return nil, err
	}
	s.cache[name] = tr
	return tr, nil
}

// taConfig returns the technique configuration for a CP-Limit.
func taConfig(cpLimit float64, pl *layout.Config) core.Config {
	return core.Config{TA: controller.DefaultTA(0), CPLimit: cpLimit, PL: pl}
}

func plConfig(groups int) *layout.Config {
	cfg := layout.DefaultConfig()
	cfg.Groups = groups
	return &cfg
}

// Table1 renders the power model constants (a transcription check of
// the paper's Table 1).
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: RDRAM power model\n")
	fmt.Fprintf(&b, "%-22s %8s %14s\n", "state/transition", "power", "time")
	rows := []struct {
		name  string
		power float64
		t     string
	}{
		{"active", energy.ActivePower, "-"},
		{"standby", energy.StandbyPower, "-"},
		{"nap", energy.NapPower, "-"},
		{"powerdown", energy.PowerdownPower, "-"},
		{"active->standby", energy.ActiveToStandby.Power, "1 memory cycle"},
		{"active->nap", energy.ActiveToNap.Power, "8 memory cycles"},
		{"active->powerdown", energy.ActiveToPowerdown.Power, "8 memory cycles"},
		{"standby->active", energy.StandbyToActive.Power, "+6 ns"},
		{"nap->active", energy.NapToActive.Power, "+60 ns"},
		{"powerdown->active", energy.PowerdownToActive.Power, "+6000 ns"},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %6.0fmW %14s\n", r.name, 1e3*r.power, r.t)
	}
	return b.String()
}

// Table2Row summarizes one workload.
type Table2Row struct {
	Name            string
	NetPerMs        float64
	DiskPerMs       float64
	ProcPerMs       float64
	ProcPerTransfer float64
	DistinctPages   int
}

// Table2 generates the four traces and summarizes them like the
// paper's trace inventory.
func (s *Suite) Table2() ([]Table2Row, error) {
	ws, err := s.Workloads()
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, 0, len(ws))
	for _, tr := range ws {
		st := trace.Analyze(tr)
		dur := st.Duration.Seconds() * 1e3
		rows = append(rows, Table2Row{
			Name:            tr.Name,
			NetPerMs:        float64(st.NetTransfers) / dur,
			DiskPerMs:       float64(st.DiskTransfers) / dur,
			ProcPerMs:       st.ProcAccessesPerMs(),
			ProcPerTransfer: st.ProcAccessesPerTransfer(),
			DistinctPages:   st.DistinctPages,
		})
	}
	return rows, nil
}

// FormatTable2 renders Table2 rows.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: traces\n%-14s %9s %9s %11s %10s %8s\n",
		"trace", "net/ms", "disk/ms", "proc/ms", "proc/xfer", "pages")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9.1f %9.1f %11.0f %10.0f %8d\n",
			r.Name, r.NetPerMs, r.DiskPerMs, r.ProcPerMs, r.ProcPerTransfer, r.DistinctPages)
	}
	return b.String()
}

// BreakdownRow is one bar of a Figure 2(b)/Figure 6 style breakdown.
type BreakdownRow struct {
	Label    string
	Fraction map[string]float64 // category name -> share of total
	TotalJ   float64
}

func breakdownRow(label string, e energy.Breakdown) BreakdownRow {
	r := BreakdownRow{Label: label, Fraction: map[string]float64{}, TotalJ: e.Total()}
	for c := energy.Category(0); c < energy.NumCategories; c++ {
		r.Fraction[c.String()] = e.Fraction(c)
	}
	return r
}

// FormatBreakdowns renders breakdown bars.
func FormatBreakdowns(title string, rows []BreakdownRow) string {
	cats := []string{"active-serving", "active-idle-dma", "active-idle-threshold",
		"transition", "low-power", "migration", "proc-serving"}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-22s", title, "scheme")
	for _, c := range cats {
		fmt.Fprintf(&b, " %9s", shortCat(c))
	}
	fmt.Fprintf(&b, " %10s\n", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s", r.Label)
		for _, c := range cats {
			fmt.Fprintf(&b, " %8.1f%%", 100*r.Fraction[c])
		}
		fmt.Fprintf(&b, " %8.2fmJ\n", 1e3*r.TotalJ)
	}
	return b.String()
}

func shortCat(c string) string {
	switch c {
	case "active-serving":
		return "serving"
	case "active-idle-dma":
		return "idle-dma"
	case "active-idle-threshold":
		return "idle-thr"
	case "proc-serving":
		return "proc"
	}
	return c
}

// Fig2b computes the baseline energy breakdown for the two storage
// workloads (the paper reports 48-51% active-idle-DMA, 26-27% serving,
// 3-4% threshold idle).
func (s *Suite) Fig2b() ([]BreakdownRow, error) {
	rows := []BreakdownRow{}
	for _, name := range []string{"OLTP-St", "Synthetic-St"} {
		tr, err := s.workload(name)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(core.Config{}, tr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, breakdownRow(name, res.Report.Energy))
	}
	return rows, nil
}

// Fig4 returns the page-popularity CDF of the OLTP-St trace (the paper
// shows ~20% of pages receiving ~60% of DMA accesses).
func (s *Suite) Fig4(points int) ([]trace.CDFPoint, error) {
	tr, err := s.workload("OLTP-St")
	if err != nil {
		return nil, err
	}
	return trace.Analyze(tr).PopularityCDF(points), nil
}

// FormatFig4 renders the CDF.
func FormatFig4(pts []trace.CDFPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: page popularity CDF (OLTP-St)\n%10s %10s\n", "pages%", "accesses%")
	for _, p := range pts {
		fmt.Fprintf(&b, "%9.0f%% %9.1f%%\n", 100*p.PageFrac, 100*p.AccessFrac)
	}
	return b.String()
}

// Fig5Point is one curve sample: savings over baseline at a CP-Limit.
type Fig5Point struct {
	Workload string
	Scheme   string // "dma-ta", "dma-ta-pl-2", "dma-ta-pl-3", "dma-ta-pl-6"
	CPLimit  float64
	Savings  float64
	UF       float64
}

// Fig5 sweeps CP-Limit for every workload and scheme, like the paper's
// headline figure. The paper's shape: DMA-TA-PL(2) > DMA-TA; savings
// rise steeply to ~10% CP-Limit and then flatten; 6 groups lose to 2.
func (s *Suite) Fig5(cpLimits []float64, groups []int) ([]Fig5Point, error) {
	ws, err := s.Workloads()
	if err != nil {
		return nil, err
	}
	var out []Fig5Point
	for _, tr := range ws {
		window := tr.Duration() + 2*sim.Millisecond
		base, err := core.Run(core.Config{MeterWindow: window}, tr)
		if err != nil {
			return nil, err
		}
		run := func(scheme string, cfg core.Config, cp float64) error {
			cfg.MeterWindow = window
			res, err := core.Run(cfg, tr)
			if err != nil {
				return err
			}
			out = append(out, Fig5Point{
				Workload: tr.Name, Scheme: scheme, CPLimit: cp,
				Savings: res.Report.Savings(base.Report),
				UF:      res.Report.UtilizationFactor,
			})
			return nil
		}
		for _, cp := range cpLimits {
			if err := run("dma-ta", taConfig(cp, nil), cp); err != nil {
				return nil, err
			}
			for _, g := range groups {
				scheme := fmt.Sprintf("dma-ta-pl-%d", g)
				if err := run(scheme, taConfig(cp, plConfig(g)), cp); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// FormatFig5 renders the savings curves grouped by workload.
func FormatFig5(pts []Fig5Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: energy savings over baseline vs CP-Limit\n")
	byWorkload := map[string][]Fig5Point{}
	var order []string
	for _, p := range pts {
		if _, ok := byWorkload[p.Workload]; !ok {
			order = append(order, p.Workload)
		}
		byWorkload[p.Workload] = append(byWorkload[p.Workload], p)
	}
	for _, w := range order {
		fmt.Fprintf(&b, "%s:\n%-14s %9s %10s %6s\n", w, "scheme", "cp-limit", "savings", "uf")
		for _, p := range byWorkload[w] {
			fmt.Fprintf(&b, "%-14s %8.0f%% %9.1f%% %6.2f\n",
				p.Scheme, 100*p.CPLimit, 100*p.Savings, p.UF)
		}
	}
	return b.String()
}

// Fig6 computes the energy breakdowns of baseline, DMA-TA and
// DMA-TA-PL on OLTP-St at 10% CP-Limit (the paper's Figure 6).
func (s *Suite) Fig6() ([]BreakdownRow, error) {
	tr, err := s.workload("OLTP-St")
	if err != nil {
		return nil, err
	}
	window := tr.Duration() + 2*sim.Millisecond
	rows := []BreakdownRow{}
	for _, c := range []struct {
		label string
		cfg   core.Config
	}{
		{"baseline", core.Config{}},
		{"dma-ta", taConfig(0.10, nil)},
		{"dma-ta-pl", taConfig(0.10, plConfig(2))},
	} {
		c.cfg.MeterWindow = window
		res, err := core.Run(c.cfg, tr)
		if err != nil {
			return nil, err
		}
		rows = append(rows, breakdownRow(c.label, res.Report.Energy))
	}
	return rows, nil
}

// Fig7Point is a utilization-factor sample.
type Fig7Point struct {
	Scheme  string
	CPLimit float64
	UF      float64
}

// Fig7 sweeps CP-Limit and reports the utilization factor of DMA-TA
// and DMA-TA-PL on OLTP-St (paper: baseline ~0.33, DMA-TA-PL ~0.63 at
// 10% and ~0.75 at 30%).
func (s *Suite) Fig7(cpLimits []float64) ([]Fig7Point, error) {
	tr, err := s.workload("OLTP-St")
	if err != nil {
		return nil, err
	}
	base, err := core.Run(core.Config{}, tr)
	if err != nil {
		return nil, err
	}
	out := []Fig7Point{{Scheme: "baseline", CPLimit: 0, UF: base.Report.UtilizationFactor}}
	for _, cp := range cpLimits {
		for _, c := range []struct {
			label string
			cfg   core.Config
		}{
			{"dma-ta", taConfig(cp, nil)},
			{"dma-ta-pl", taConfig(cp, plConfig(2))},
		} {
			res, err := core.Run(c.cfg, tr)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig7Point{Scheme: c.label, CPLimit: cp, UF: res.Report.UtilizationFactor})
		}
	}
	return out, nil
}

// FormatFig7 renders utilization factors.
func FormatFig7(pts []Fig7Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: utilization factor vs CP-Limit (OLTP-St)\n%-12s %9s %6s\n",
		"scheme", "cp-limit", "uf")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12s %8.0f%% %6.3f\n", p.Scheme, 100*p.CPLimit, p.UF)
	}
	return b.String()
}

// SweepPoint is a generic (x, savings) sample for Figures 8-10.
type SweepPoint struct {
	Workload string
	Scheme   string
	X        float64
	Savings  float64
}

// Fig8 varies the Synthetic-St arrival rate (the paper's workload
// intensity sweep; savings grow with intensity, then flatten).
func (s *Suite) Fig8(ratesPerMs []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, rate := range ratesPerMs {
		cfg := synth.DefaultSt()
		cfg.Duration = s.Duration
		cfg.Seed = s.Seed + 1
		cfg.RatePerMs = rate
		tr, err := synth.GenerateSt(cfg)
		if err != nil {
			return nil, err
		}
		for _, c := range []struct {
			label string
			cfg   core.Config
		}{
			{"dma-ta", taConfig(0.10, nil)},
			{"dma-ta-pl", taConfig(0.10, plConfig(2))},
		} {
			_, _, savings, err := core.RunBaselinePair(core.Config{}, c.cfg, tr)
			if err != nil {
				return nil, err
			}
			out = append(out, SweepPoint{Workload: "Synthetic-St", Scheme: c.label, X: rate, Savings: savings})
		}
	}
	return out, nil
}

// Fig9 varies the number of processor accesses per DMA transfer in
// Synthetic-Db (paper: savings drop as the CPU consumes the idle
// cycles; OLTP-Db averages 233 accesses per transfer).
func (s *Suite) Fig9(perTransfer []int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, per := range perTransfer {
		cfg := synth.DefaultDb()
		cfg.St.Duration = s.dbDuration()
		cfg.St.Seed = s.Seed + 2
		cfg.ProcRatePerMs = 0
		cfg.ProcPerTransfer = per
		tr, err := synth.GenerateDb(cfg)
		if err != nil {
			return nil, err
		}
		for _, c := range []struct {
			label string
			cfg   core.Config
		}{
			{"dma-ta", taConfig(0.10, nil)},
			{"dma-ta-pl", taConfig(0.10, plConfig(2))},
		} {
			_, _, savings, err := core.RunBaselinePair(core.Config{}, c.cfg, tr)
			if err != nil {
				return nil, err
			}
			out = append(out, SweepPoint{Workload: "Synthetic-Db", Scheme: c.label, X: float64(per), Savings: savings})
		}
	}
	return out, nil
}

// Fig10 varies the I/O bus bandwidth with the memory rate fixed at
// 3.2 GB/s (the paper sweeps 0.5, 1, 2 and 3 GB/s; savings shrink as
// the ratio approaches 1).
func (s *Suite) Fig10(busBW []float64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, name := range []string{"OLTP-St", "Synthetic-St"} {
		tr, err := s.workload(name)
		if err != nil {
			return nil, err
		}
		for _, bw := range busBW {
			bc := bus.Config{Count: 3, Bandwidth: bw}
			base := core.Config{Buses: bc}
			for _, c := range []struct {
				label string
				cfg   core.Config
			}{
				{"dma-ta", core.Config{Buses: bc, TA: controller.DefaultTA(0), CPLimit: 0.10}},
				{"dma-ta-pl", core.Config{Buses: bc, TA: controller.DefaultTA(0), CPLimit: 0.10, PL: plConfig(2)}},
			} {
				_, _, savings, err := core.RunBaselinePair(base, c.cfg, tr)
				if err != nil {
					return nil, err
				}
				out = append(out, SweepPoint{Workload: name, Scheme: c.label, X: 3.2e9 / bw, Savings: savings})
			}
		}
	}
	return out, nil
}

// FormatSweep renders a sweep with a caption for the x-axis.
func FormatSweep(title, xlabel string, pts []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-14s %-12s %10s %9s\n", title, "workload", "scheme", xlabel, "savings")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-14s %-12s %10.2f %8.1f%%\n", p.Workload, p.Scheme, p.X, 100*p.Savings)
	}
	return b.String()
}
