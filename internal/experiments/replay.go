package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"dmamem/internal/core"
	"dmamem/internal/trace"
)

// ReplayFile streams a recorded .dmt container (docs/TRACE_FORMAT.md)
// through the file-backed feeder — baseline and technique side by
// side — and renders the comparison. The trace is never materialized:
// each run holds at most two decode chunks, so an hour-scale
// recording replays in the same flat memory as a millisecond one. The
// report is bit-identical to loading the trace and running it
// in-memory; the feeder-equivalence tests hold every Table 2
// workload x scheme to that.
func ReplayFile(ctx context.Context, path string, cpLimit float64, groups int) (string, error) {
	fr, err := trace.OpenDMTFile(path)
	if err != nil {
		return "", err
	}
	sum := fr.Summary()
	fr.Close()

	base := core.Config{TraceFile: path}
	tech := taConfig(cpLimit, nil)
	label := "dma-ta"
	if groups > 0 {
		tech = taConfig(cpLimit, plConfig(groups))
		label = fmt.Sprintf("dma-ta-pl(%d)", groups)
	}
	tech.TraceFile = path
	b, t, savings, err := core.RunBaselinePairParallel(ctx, base, tech, nil, runtime.GOMAXPROCS(0))
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Replay of %s: %q, %d records (%d DMA transfers) over %v\n",
		path, sum.Name, sum.Records, sum.DMATransfers, sum.Duration)
	fmt.Fprintf(&sb, "  baseline : %s\n", b.Report)
	fmt.Fprintf(&sb, "  %-9s: %s\n", label, t.Report)
	fmt.Fprintf(&sb, "  energy savings: %.1f%%\n", 100*savings)
	return sb.String(), nil
}
