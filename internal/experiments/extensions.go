package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"dmamem/internal/core"
	"dmamem/internal/energy"
	"dmamem/internal/server"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
)

// The experiments in this file go beyond the paper's figures: its
// stated future work (TPC-H style decision support), its Section 5.4
// aside about other memory technologies, and seed-replicated runs that
// attach dispersion to the headline numbers.

// SeedStats summarizes replicated runs of one configuration. All
// savings values are fractions of baseline energy (0.10 = 10%).
type SeedStats struct {
	// Scheme that was replicated.
	Scheme string
	// N is the number of seeds.
	N int
	// Mean fractional savings over the N seeds.
	Mean float64
	// StdDev is the sample standard deviation of the savings.
	StdDev float64
	// Min and Max are the extreme savings observed.
	Min, Max float64
}

// MultiSeedSavings reruns a technique over n differently seeded
// Synthetic-St traces and returns savings statistics — the dispersion
// behind a Figure 5 point. The per-seed runs are independent jobs on
// r's pool (nil r = sequential).
func MultiSeedSavings(ctx context.Context, r *Runner, d sim.Duration, n int, cfg core.Config) (SeedStats, error) {
	if n <= 0 {
		return SeedStats{}, fmt.Errorf("experiments: %d seeds", n)
	}
	vals, err := mapJobs(ctx, r, n,
		func(i int) string { return fmt.Sprintf("seeds/%s/seed=%d", cfg.Scheme, i+1) },
		func(ctx context.Context, i int) (float64, error) {
			scfg := synth.DefaultSt()
			scfg.Duration = d
			scfg.Seed = uint64(i + 1)
			tr, err := synth.GenerateSt(scfg)
			if err != nil {
				return 0, err
			}
			_, _, s, err := core.RunBaselinePair(core.Config{}, cfg, tr)
			if err != nil {
				return 0, err
			}
			return s, nil
		})
	if err != nil {
		return SeedStats{}, err
	}
	st := SeedStats{Scheme: cfg.Scheme, N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range vals {
		st.Mean += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean /= float64(n)
	for _, v := range vals {
		st.StdDev += (v - st.Mean) * (v - st.Mean)
	}
	if n > 1 {
		st.StdDev = math.Sqrt(st.StdDev / float64(n-1))
	}
	return st, nil
}

// DSSRow is the decision-support extension result.
type DSSRow struct {
	// Scheme is "dma-ta" or "dma-ta-pl".
	Scheme string
	// Savings is the fractional energy reduction over the baseline.
	Savings float64
	// UF is the technique's utilization factor.
	UF float64
	// BaselineUF is the baseline's utilization factor.
	BaselineUF float64
}

// DSSExtension runs the TPC-H style scan workload (the paper's future
// work) under both techniques, one job per scheme on r's pool. The
// result is an honest negative: scan buffers are recycled round-robin,
// so there is no popularity skew for PL to exploit, and scans already
// stream near-continuously.
func DSSExtension(ctx context.Context, r *Runner, d sim.Duration, seed uint64) ([]DSSRow, error) {
	cfg := server.DefaultDSS()
	cfg.Duration = d
	cfg.Seed = seed
	res, err := server.GenerateDSS(cfg)
	if err != nil {
		return nil, err
	}
	tr := res.Trace
	return mapJobs(ctx, r, len(sweepSchemes),
		func(i int) string { return "dss/" + sweepSchemes[i] },
		func(ctx context.Context, i int) (DSSRow, error) {
			base, tech, savings, err := core.RunBaselinePair(core.Config{}, sweepSchemeConfig(sweepSchemes[i]), tr)
			if err != nil {
				return DSSRow{}, err
			}
			return DSSRow{
				Scheme:     sweepSchemes[i],
				Savings:    savings,
				UF:         tech.Report.UtilizationFactor,
				BaselineUF: base.Report.UtilizationFactor,
			}, nil
		})
}

// TechState is one power state's share of a technology row: its name
// in the backend model and the resident energy spent in it.
type TechState struct {
	// Name of the state ("active", "precharge-powerdown", ...).
	Name string
	// Joules resident in the state over the technique run.
	Joules float64
}

// TechRow compares memory technologies (Section 5.4's aside), one row
// per registered power-model backend.
type TechRow struct {
	// Tech is the registry name the row ran under ("rdram",
	// "ddr4-2400"; see energy.Techs).
	Tech string
	// Part is the backend model's part name ("rdram-1600",
	// "lpddr4-3200").
	Part string
	// Ratio is memory bandwidth over I/O bus bandwidth.
	Ratio float64
	// BaselineUF is the baseline utilization factor on this part.
	BaselineUF float64
	// Savings is DMA-TA-PL's fractional energy reduction.
	Savings float64
	// States is the technique run's per-state resident energy in the
	// model's depth order. States plus TransitionJ and MigrationJ sums
	// to TotalJ (up to float summation order).
	States []TechState
	// TransitionJ is energy spent moving between power states.
	TransitionJ float64
	// MigrationJ is energy spent copying pages for PL.
	MigrationJ float64
	// TotalJ is the technique run's total system energy, joules.
	TotalJ float64
}

// TechExtension runs DMA-TA-PL on every named power-model backend over
// the same Synthetic-St arrival process, one job per technology on r's
// pool. Empty techs sweeps every registered backend (energy.Techs).
func TechExtension(ctx context.Context, r *Runner, d sim.Duration, seed uint64, techs []string) ([]TechRow, error) {
	if len(techs) == 0 {
		techs = energy.Techs()
	}
	models := make([]*energy.Model, len(techs))
	for i, name := range techs {
		m, err := energy.Lookup(name)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	scfg := synth.DefaultSt()
	scfg.Duration = d
	scfg.Seed = seed
	tr, err := synth.GenerateSt(scfg)
	if err != nil {
		return nil, err
	}
	return mapJobs(ctx, r, len(techs),
		func(i int) string { return "tech/" + techs[i] },
		func(ctx context.Context, i int) (TechRow, error) {
			base := core.Config{Tech: techs[i]}
			tech := taConfig(0.10, plConfig(2))
			tech.Tech = techs[i]
			b, tc, savings, err := core.RunBaselinePair(base, tech, tr)
			if err != nil {
				return TechRow{}, err
			}
			rep := tc.Report
			row := TechRow{
				Tech:        techs[i],
				Part:        models[i].Name,
				Ratio:       models[i].Bandwidth / 1.064e9,
				BaselineUF:  b.Report.UtilizationFactor,
				Savings:     savings,
				TransitionJ: rep.Energy[energy.CatTransition],
				MigrationJ:  rep.Energy[energy.CatMigration],
				TotalJ:      rep.TotalEnergy(),
			}
			for s, name := range rep.StateNames {
				row.States = append(row.States, TechState{Name: name, Joules: rep.StateEnergy[s]})
			}
			return row, nil
		})
}

// ParseTechList parses a comma-separated technology flag value
// ("ddr4-2400, LPDDR4") into registry names: entries are trimmed and
// lower-cased, validated against the registry, and rejected when two
// entries (aliases included) select the same backend. Empty input
// returns nil, meaning "the default technology".
func ParseTechList(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	seen := map[string]string{} // part name -> first flag entry selecting it
	var out []string
	for _, part := range strings.Split(s, ",") {
		name := strings.ToLower(strings.TrimSpace(part))
		if name == "" {
			return nil, fmt.Errorf("experiments: empty entry in technology list %q", s)
		}
		m, err := energy.Lookup(name)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[m.Name]; dup {
			return nil, fmt.Errorf("experiments: technology %q duplicates %q in list %q (both select %s)",
				name, prev, s, m.Name)
		}
		seen[m.Name] = name
		out = append(out, name)
	}
	return out, nil
}

// FormatDSS renders the decision-support extension.
func FormatDSS(rows []DSSRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: TPC-H style decision support (paper future work)\n")
	fmt.Fprintf(&b, "%-12s %9s %8s %8s\n", "scheme", "savings", "uf", "base-uf")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.1f%% %8.2f %8.2f\n", r.Scheme, 100*r.Savings, r.UF, r.BaselineUF)
	}
	b.WriteString("(scan buffers carry no popularity skew; PL has nothing to cluster)\n")
	return b.String()
}

// FormatTech renders the technology comparison: one summary line per
// backend, then its per-state energy breakdown, whose terms sum back
// to the total.
func FormatTech(rows []TechRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: memory technology backends (Section 5.4)\n")
	fmt.Fprintf(&b, "%-12s %-14s %8s %8s %9s %10s\n", "tech", "part", "ratio", "base-uf", "savings", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-14s %8.2f %8.2f %8.1f%% %8.2fmJ\n",
			r.Tech, r.Part, r.Ratio, r.BaselineUF, 100*r.Savings, 1e3*r.TotalJ)
		parts := make([]string, 0, len(r.States)+2)
		for _, st := range r.States {
			parts = append(parts, fmt.Sprintf("%s %.2fmJ", st.Name, 1e3*st.Joules))
		}
		parts = append(parts,
			fmt.Sprintf("transition %.2fmJ", 1e3*r.TransitionJ),
			fmt.Sprintf("migration %.2fmJ", 1e3*r.MigrationJ))
		fmt.Fprintf(&b, "  states: %s\n", strings.Join(parts, ", "))
	}
	return b.String()
}

// FormatSeedStats renders replicated-run statistics.
func FormatSeedStats(s SeedStats) string {
	return fmt.Sprintf("%s over %d seeds: %.1f%% +- %.1f%% (min %.1f%%, max %.1f%%)",
		s.Scheme, s.N, 100*s.Mean, 100*s.StdDev, 100*s.Min, 100*s.Max)
}

// Fig5PLConfig returns the DMA-TA-PL(2) configuration of Figure 5's
// headline point (10% CP-Limit), for callers replicating it.
func Fig5PLConfig() core.Config {
	cfg := taConfig(0.10, plConfig(2))
	cfg.Scheme = "dma-ta-pl"
	return cfg
}
