package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"dmamem/internal/core"
	"dmamem/internal/energy"
	"dmamem/internal/server"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
)

// The experiments in this file go beyond the paper's figures: its
// stated future work (TPC-H style decision support), its Section 5.4
// aside about other memory technologies, and seed-replicated runs that
// attach dispersion to the headline numbers.

// SeedStats summarizes replicated runs of one configuration. All
// savings values are fractions of baseline energy (0.10 = 10%).
type SeedStats struct {
	// Scheme that was replicated.
	Scheme string
	// N is the number of seeds.
	N int
	// Mean fractional savings over the N seeds.
	Mean float64
	// StdDev is the sample standard deviation of the savings.
	StdDev float64
	// Min and Max are the extreme savings observed.
	Min, Max float64
}

// MultiSeedSavings reruns a technique over n differently seeded
// Synthetic-St traces and returns savings statistics — the dispersion
// behind a Figure 5 point. The per-seed runs are independent jobs on
// r's pool (nil r = sequential).
func MultiSeedSavings(ctx context.Context, r *Runner, d sim.Duration, n int, cfg core.Config) (SeedStats, error) {
	if n <= 0 {
		return SeedStats{}, fmt.Errorf("experiments: %d seeds", n)
	}
	vals, err := mapJobs(ctx, r, n,
		func(i int) string { return fmt.Sprintf("seeds/%s/seed=%d", cfg.Scheme, i+1) },
		func(ctx context.Context, i int) (float64, error) {
			scfg := synth.DefaultSt()
			scfg.Duration = d
			scfg.Seed = uint64(i + 1)
			tr, err := synth.GenerateSt(scfg)
			if err != nil {
				return 0, err
			}
			_, _, s, err := core.RunBaselinePair(core.Config{}, cfg, tr)
			if err != nil {
				return 0, err
			}
			return s, nil
		})
	if err != nil {
		return SeedStats{}, err
	}
	st := SeedStats{Scheme: cfg.Scheme, N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range vals {
		st.Mean += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean /= float64(n)
	for _, v := range vals {
		st.StdDev += (v - st.Mean) * (v - st.Mean)
	}
	if n > 1 {
		st.StdDev = math.Sqrt(st.StdDev / float64(n-1))
	}
	return st, nil
}

// DSSRow is the decision-support extension result.
type DSSRow struct {
	// Scheme is "dma-ta" or "dma-ta-pl".
	Scheme string
	// Savings is the fractional energy reduction over the baseline.
	Savings float64
	// UF is the technique's utilization factor.
	UF float64
	// BaselineUF is the baseline's utilization factor.
	BaselineUF float64
}

// DSSExtension runs the TPC-H style scan workload (the paper's future
// work) under both techniques, one job per scheme on r's pool. The
// result is an honest negative: scan buffers are recycled round-robin,
// so there is no popularity skew for PL to exploit, and scans already
// stream near-continuously.
func DSSExtension(ctx context.Context, r *Runner, d sim.Duration, seed uint64) ([]DSSRow, error) {
	cfg := server.DefaultDSS()
	cfg.Duration = d
	cfg.Seed = seed
	res, err := server.GenerateDSS(cfg)
	if err != nil {
		return nil, err
	}
	tr := res.Trace
	return mapJobs(ctx, r, len(sweepSchemes),
		func(i int) string { return "dss/" + sweepSchemes[i] },
		func(ctx context.Context, i int) (DSSRow, error) {
			base, tech, savings, err := core.RunBaselinePair(core.Config{}, sweepSchemeConfig(sweepSchemes[i]), tr)
			if err != nil {
				return DSSRow{}, err
			}
			return DSSRow{
				Scheme:     sweepSchemes[i],
				Savings:    savings,
				UF:         tech.Report.UtilizationFactor,
				BaselineUF: base.Report.UtilizationFactor,
			}, nil
		})
}

// TechRow compares memory technologies (Section 5.4's aside).
type TechRow struct {
	// Tech is the memory part name ("RDRAM-1600", "DDR-400").
	Tech string
	// Ratio is memory bandwidth over I/O bus bandwidth.
	Ratio float64
	// BaselineUF is the baseline utilization factor on this part.
	BaselineUF float64
	// Savings is DMA-TA-PL's fractional energy reduction.
	Savings float64
}

// TechExtension runs DMA-TA-PL on RDRAM and DDR400 over the same
// Synthetic-St arrival process, one job per technology on r's pool.
func TechExtension(ctx context.Context, r *Runner, d sim.Duration, seed uint64) ([]TechRow, error) {
	scfg := synth.DefaultSt()
	scfg.Duration = d
	scfg.Seed = seed
	tr, err := synth.GenerateSt(scfg)
	if err != nil {
		return nil, err
	}
	specs := []func() *energy.Spec{energy.RDRAM1600, energy.DDR400}
	return mapJobs(ctx, r, len(specs),
		func(i int) string { return "tech/" + []string{"rdram", "ddr"}[i] },
		func(ctx context.Context, i int) (TechRow, error) {
			spec := specs[i]()
			base := core.Config{MemSpec: spec}
			tech := taConfig(0.10, plConfig(2))
			tech.MemSpec = spec
			b, _, savings, err := core.RunBaselinePair(base, tech, tr)
			if err != nil {
				return TechRow{}, err
			}
			return TechRow{
				Tech:       spec.Name,
				Ratio:      spec.Bandwidth / 1.064e9,
				BaselineUF: b.Report.UtilizationFactor,
				Savings:    savings,
			}, nil
		})
}

// FormatDSS renders the decision-support extension.
func FormatDSS(rows []DSSRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: TPC-H style decision support (paper future work)\n")
	fmt.Fprintf(&b, "%-12s %9s %8s %8s\n", "scheme", "savings", "uf", "base-uf")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.1f%% %8.2f %8.2f\n", r.Scheme, 100*r.Savings, r.UF, r.BaselineUF)
	}
	b.WriteString("(scan buffers carry no popularity skew; PL has nothing to cluster)\n")
	return b.String()
}

// FormatTech renders the technology comparison.
func FormatTech(rows []TechRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: memory technology (Section 5.4)\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %9s\n", "tech", "ratio", "base-uf", "savings")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.2f %8.2f %8.1f%%\n", r.Tech, r.Ratio, r.BaselineUF, 100*r.Savings)
	}
	return b.String()
}

// FormatSeedStats renders replicated-run statistics.
func FormatSeedStats(s SeedStats) string {
	return fmt.Sprintf("%s over %d seeds: %.1f%% +- %.1f%% (min %.1f%%, max %.1f%%)",
		s.Scheme, s.N, 100*s.Mean, 100*s.StdDev, 100*s.Min, 100*s.Max)
}

// Fig5PLConfig returns the DMA-TA-PL(2) configuration of Figure 5's
// headline point (10% CP-Limit), for callers replicating it.
func Fig5PLConfig() core.Config {
	cfg := taConfig(0.10, plConfig(2))
	cfg.Scheme = "dma-ta-pl"
	return cfg
}
