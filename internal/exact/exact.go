// Package exact is a request-granularity golden-model simulator: every
// 8-byte DMA-memory request is a discrete event, buses emit one
// request per beat with round-robin arbitration between their active
// transfers, and chips serve requests through a FIFO with the same
// power-state machine and threshold policy as the production
// controller.
//
// It is far too slow for the evaluation traces (an 8 KB transfer is
// 1024 events), but on micro-scenarios it provides ground truth that
// the fluid model in internal/controller is validated against:
// transfer completion times, serving energy, and active envelopes must
// agree within the burst-granularity tolerance the fluid model's
// documentation claims.
package exact

import (
	"fmt"

	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
)

// Transfer is one DMA operation for the golden model.
type Transfer struct {
	ID      int
	Arrival sim.Time
	Bus     int
	Page    memsys.PageID
	Pages   int
}

// Config mirrors the controller's hardware parameters.
type Config struct {
	Geometry memsys.Geometry
	Buses    int
	// BeatGap is the bus inter-request period (12 memory cycles for
	// PCI-X against 1600 MHz RDRAM).
	BeatGap sim.Duration
	// BurstBeats is the arbitration granularity: a transfer holds the
	// bus for this many beats before round-robin moves on (PCI-X
	// masters burst hundreds of bytes per grant). 64 beats = 512 B.
	BurstBeats int
	Policy     policy.Policy
	Mapper     memsys.Mapper
}

// DefaultConfig returns the paper's hardware at request granularity.
func DefaultConfig() Config {
	return Config{
		Geometry:   memsys.Default(),
		Buses:      3,
		BeatGap:    7500 * sim.Picosecond,
		BurstBeats: 64,
		Policy:     policy.NewDynamic(),
	}
}

// Result summarizes a golden-model run.
type Result struct {
	// Completion time per transfer, indexed by Transfer.ID.
	Completion map[int]sim.Time
	// Energy breakdown summed over chips.
	Energy energy.Breakdown
	// ServingTime and EnvelopeTime per chip (envelope = first request
	// arrival to last completion while requests were outstanding).
	ServingTime  []sim.Duration
	EnvelopeTime []sim.Duration
	// Events dispatched (the cost of exactness).
	Events uint64
}

// UF returns the golden utilization factor over all chips.
func (r *Result) UF() float64 {
	var s, e sim.Duration
	for i := range r.ServingTime {
		s += r.ServingTime[i]
		e += r.EnvelopeTime[i]
	}
	if e == 0 {
		return 0
	}
	return float64(s) / float64(e)
}

type xfer struct {
	t           Transfer
	nextPage    int // page index whose requests are being emitted
	pageReqs    int // requests already emitted for the current page
	reqsTotal   int
	done        int // requests fully served
	outstanding int // emitted but not yet served (DMA flow control: <= 1)
	finished    bool
	curChip     int // chip currently receiving this transfer (-1 before start)
}

type chip struct {
	c     *memsys.Chip
	queue []*req
	busy  bool
	// inProgress holds the transfers currently streaming to this chip;
	// the paper's T_tot envelope covers every span where it is
	// non-empty, including the gaps between successive requests.
	inProgress map[*xfer]struct{}
	idleTimer  sim.EventID
	wakeFlag   bool
}

type req struct {
	x    *xfer
	chip int
}

type busLine struct {
	active    []*xfer
	rr        int
	burstLeft int
	idle      bool
}

// Run executes the golden model over the given transfers.
func Run(cfg Config, transfers []Transfer) (*Result, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if cfg.Buses <= 0 || cfg.BeatGap <= 0 {
		return nil, fmt.Errorf("exact: buses %d, beat %v", cfg.Buses, cfg.BeatGap)
	}
	if cfg.BurstBeats <= 0 {
		cfg.BurstBeats = 1
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.NewDynamic()
	}
	mapper := cfg.Mapper
	if mapper == nil {
		mapper = memsys.InterleavedMapper{Chips: cfg.Geometry.NumChips}
	}
	reqsPerPage := cfg.Geometry.PageBytes / memsys.RequestBytes
	serveTime := cfg.Geometry.RequestServiceTime()

	eng := sim.New()
	chips := make([]*chip, cfg.Geometry.NumChips)
	for i := range chips {
		chips[i] = &chip{
			c:          memsys.NewChip(i, energy.Powerdown, 0),
			inProgress: make(map[*xfer]struct{}),
		}
	}
	buses := make([]*busLine, cfg.Buses)
	for i := range buses {
		buses[i] = &busLine{idle: true}
	}
	res := &Result{
		Completion:   make(map[int]sim.Time),
		ServingTime:  make([]sim.Duration, len(chips)),
		EnvelopeTime: make([]sim.Duration, len(chips)),
	}

	var serveNext func(ci int, e *sim.Engine)

	// account closes the chip's active span as threshold idle when no
	// requests are outstanding, or envelope time when they are. The
	// golden model charges active-idle lazily: whenever the chip state
	// is about to change or a request is served.
	catchUp := func(ci int, now sim.Time) {
		ch := chips[ci]
		if ch.busy || !ch.c.Resident() || ch.c.State() != energy.Active {
			// While a request is in service, the completion handler
			// owns the span (it knows the serving share).
			return
		}
		span := now.Sub(ch.c.Cursor())
		if span <= 0 {
			return
		}
		inXfer := len(ch.inProgress) > 0
		ch.c.AccountActive(now, 0, 0, inXfer)
		if inXfer {
			res.EnvelopeTime[ci] += span
		}
	}

	var armIdle func(ci int, e *sim.Engine)
	armIdle = func(ci int, e *sim.Engine) {
		ch := chips[ci]
		if ch.idleTimer.Valid() {
			e.Cancel(ch.idleTimer)
		}
		wait, next, ok := cfg.Policy.NextStep(ch.c.State())
		if !ok {
			return
		}
		ch.idleTimer = e.SchedulePrio(e.Now().Add(wait), 3, func(e *sim.Engine) {
			now := e.Now()
			// The threshold policy only sees idleness; a transfer may
			// still be in progress (its next burst pending) and the
			// chip sleeps through the gap regardless — the nap the
			// fluid model charges for burst gaps.
			if len(ch.queue) > 0 || ch.busy || ch.wakeFlag || !ch.c.Resident() {
				return
			}
			catchUp(ci, now)
			var ready sim.Time
			if ch.c.State() == energy.Active {
				ready = ch.c.BeginSleep(next, now)
			} else {
				ready = ch.c.Deepen(next, now)
			}
			e.SchedulePrio(ready, 2, func(e *sim.Engine) {
				ch.c.CompleteSleep(e.Now())
				if ch.wakeFlag {
					r := ch.c.BeginWake(e.Now())
					e.SchedulePrio(r, 2, func(e *sim.Engine) {
						ch.c.CompleteWake(e.Now())
						ch.wakeFlag = false
						serveNext(ci, e)
					})
					return
				}
				armIdle(ci, e)
			})
		})
	}

	wake := func(ci int, e *sim.Engine) {
		ch := chips[ci]
		if ch.wakeFlag {
			return
		}
		switch {
		case ch.c.Resident() && ch.c.State() == energy.Active:
			return
		case ch.c.Resident():
			ch.wakeFlag = true
			if ch.idleTimer.Valid() {
				e.Cancel(ch.idleTimer)
			}
			r := ch.c.BeginWake(e.Now())
			e.SchedulePrio(r, 2, func(e *sim.Engine) {
				ch.c.CompleteWake(e.Now())
				ch.wakeFlag = false
				serveNext(ci, e)
			})
		default:
			// Transition in flight; its completion handler checks
			// wakeFlag.
			ch.wakeFlag = true
		}
	}

	serveNext = func(ci int, e *sim.Engine) {
		ch := chips[ci]
		if ch.busy || len(ch.queue) == 0 {
			return
		}
		if !ch.c.Resident() || ch.c.State() != energy.Active {
			wake(ci, e)
			return
		}
		now := e.Now()
		catchUp(ci, now)
		if ch.idleTimer.Valid() {
			e.Cancel(ch.idleTimer)
		}
		r := ch.queue[0]
		ch.queue = ch.queue[1:]
		ch.busy = true
		// Completions fire before same-instant bus beats (priority 0 vs
		// 1): the acknowledgement reaches the DMA engine in time for
		// the next beat, keeping aligned streams in lockstep.
		e.SchedulePrio(now.Add(serveTime), 0, func(e *sim.Engine) {
			done := e.Now()
			// Charge the service span.
			span := done.Sub(ch.c.Cursor())
			serving := serveTime
			if serving > span {
				serving = span
			}
			ch.c.AccountActive(done, serving, 0, true)
			res.ServingTime[ci] += serving
			res.EnvelopeTime[ci] += span
			ch.busy = false
			r.x.outstanding--
			r.x.done++
			if r.x.done == r.x.reqsTotal {
				res.Completion[r.x.t.ID] = done
				delete(ch.inProgress, r.x)
			}
			if len(ch.queue) == 0 {
				armIdle(ci, e)
			}
			serveNext(ci, e)
		})
	}

	// Bus pumps: each bus emits at most one request per beat,
	// round-robin over its active transfers. A DMA engine does not
	// issue its next request before the previous one was acknowledged
	// (served) — the flow control DMA-TA's gating relies on — so a
	// transfer with an outstanding request is skipped this beat.
	var pump func(bi int, e *sim.Engine)
	pump = func(bi int, e *sim.Engine) {
		b := buses[bi]
		// Drop transfers whose requests are all emitted.
		kept := b.active[:0]
		for _, x := range b.active {
			if !x.finished {
				kept = append(kept, x)
			}
		}
		b.active = kept
		if len(b.active) == 0 {
			b.idle = true
			return
		}
		b.rr %= len(b.active)
		if b.burstLeft <= 0 {
			b.rr = (b.rr + 1) % len(b.active)
			b.burstLeft = cfg.BurstBeats
		}
		for tried := 0; tried < len(b.active); tried++ {
			idx := (b.rr + tried) % len(b.active)
			x := b.active[idx]
			if x.outstanding > 0 {
				continue // flow control: wait for the ack
			}
			if idx != b.rr {
				// Arbitration moved on: a fresh grant starts.
				b.burstLeft = cfg.BurstBeats
			}
			// Emit the next request of x.
			page := x.t.Page + memsys.PageID(x.nextPage)
			ci := mapper.ChipOf(page)
			ch := chips[ci]
			catchUp(ci, e.Now())
			if x.curChip != ci {
				if x.curChip >= 0 {
					delete(chips[x.curChip].inProgress, x)
				}
				ch.inProgress[x] = struct{}{}
				x.curChip = ci
			}
			x.outstanding++
			ch.queue = append(ch.queue, &req{x: x, chip: ci})
			serveNext(ci, e)

			x.pageReqs++
			if x.pageReqs == reqsPerPage {
				x.pageReqs = 0
				x.nextPage++
			}
			if x.nextPage == x.t.Pages {
				x.finished = true // all requests emitted
				b.burstLeft = 0   // next grant starts fresh
			}
			b.rr = idx
			b.burstLeft--
			break
		}
		e.SchedulePrio(e.Now().Add(cfg.BeatGap), 1, func(e *sim.Engine) { pump(bi, e) })
	}

	// Schedule arrivals.
	for i := range transfers {
		t := transfers[i]
		if t.Pages <= 0 || t.Bus < 0 || t.Bus >= cfg.Buses {
			return nil, fmt.Errorf("exact: bad transfer %+v", t)
		}
		eng.SchedulePrio(t.Arrival, 0, func(e *sim.Engine) {
			b := buses[t.Bus]
			b.active = append(b.active, &xfer{t: t, reqsTotal: t.Pages * reqsPerPage, curChip: -1})
			if b.idle {
				b.idle = false
				pump(t.Bus, e)
			}
		})
	}
	eng.Run()
	end := eng.Now()
	for ci, ch := range chips {
		catchUp(ci, end)
		ch.c.Close(end)
		b := ch.c.Meter.Breakdown()
		res.Energy.Add(&b)
	}
	res.Events = eng.Steps()
	return res, nil
}
