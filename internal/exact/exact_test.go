package exact

import (
	"math"
	"testing"
	"testing/quick"

	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

func seqConfig() Config {
	cfg := DefaultConfig()
	cfg.Mapper = memsys.SequentialMapper{PagesPerChip: cfg.Geometry.PagesPerChip()}
	return cfg
}

func TestGoldenSingleTransfer(t *testing.T) {
	cfg := seqConfig()
	res, err := Run(cfg, []Transfer{{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// 1024 requests at one per 7.5 ns beat: the last request arrives at
	// 1023 x 7.5 ns after the wake completes and is served 2.5 ns
	// later. The wake from powerdown is 6 us.
	wake := sim.Time(6 * sim.Microsecond)
	want := wake.Add(1023*7500*sim.Picosecond + 2500*sim.Picosecond)
	got := res.Completion[1]
	if got != want {
		t.Fatalf("completion %v, want %v", got, want)
	}
	// uf = serve/beat = 1/3 exactly over the envelope... the envelope
	// excludes nothing here, so serving/envelope = 1024*2.5ns / span.
	if uf := res.UF(); uf < 0.33 || uf > 0.35 {
		t.Fatalf("uf = %.4f", uf)
	}
	if res.Events == 0 {
		t.Fatal("no events counted")
	}
}

func TestGoldenThreeAlignedStreams(t *testing.T) {
	cfg := seqConfig()
	res, err := Run(cfg, []Transfer{
		{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 1},
		{ID: 2, Arrival: 0, Bus: 1, Page: 100, Pages: 1},
		{ID: 3, Arrival: 0, Bus: 2, Page: 200, Pages: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Three beats of 2.5 ns each fill the 7.5 ns gap: uf = 1.
	if uf := res.UF(); math.Abs(uf-1.0) > 0.01 {
		t.Fatalf("uf = %.4f, want 1.0", uf)
	}
	// All three finish within one beat of each other.
	span := res.Completion[3] - res.Completion[1]
	if span < 0 {
		span = -span
	}
	if sim.Duration(span) > 7500*sim.Picosecond {
		t.Fatalf("aligned streams finished %v apart", sim.Duration(span))
	}
}

func TestGoldenServingEnergyExact(t *testing.T) {
	cfg := seqConfig()
	res, err := Run(cfg, []Transfer{
		{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 2},
		{ID: 2, Arrival: sim.Time(30 * sim.Microsecond), Bus: 1, Page: 4096, Pages: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJ := float64(3*8192) / 3.2e9 * energy.ActivePower
	if got := res.Energy[energy.CatServing]; math.Abs(got-wantJ)/wantJ > 1e-9 {
		t.Fatalf("serving %g J, want %g J", got, wantJ)
	}
}

func TestGoldenSameBusRoundRobin(t *testing.T) {
	// Two same-bus transfers to one chip: the bus alternates their
	// requests; the chip sees a full-rate stream, uf stays 1/3, and
	// both finish around 2x the lone-transfer time.
	cfg := seqConfig()
	res, err := Run(cfg, []Transfer{
		{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 1},
		{ID: 2, Arrival: 0, Bus: 0, Page: 512, Pages: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if uf := res.UF(); uf < 0.33 || uf > 0.35 {
		t.Fatalf("uf = %.4f, want ~1/3", uf)
	}
	lone := sim.Duration(1024 * 7500 * sim.Picosecond)
	got := sim.Duration(res.Completion[2] - sim.Time(6*sim.Microsecond))
	if got < 2*lone-sim.Microsecond || got > 2*lone+sim.Microsecond {
		t.Fatalf("shared-bus completion %v, want ~%v", got, 2*lone)
	}
}

func TestGoldenRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Run(cfg, []Transfer{{ID: 1, Bus: 9, Pages: 1}}); err == nil {
		t.Fatal("bad bus accepted")
	}
	if _, err := Run(cfg, []Transfer{{ID: 1, Bus: 0, Pages: 0}}); err == nil {
		t.Fatal("zero pages accepted")
	}
	bad := cfg
	bad.BeatGap = 0
	if _, err := Run(bad, nil); err == nil {
		t.Fatal("zero beat accepted")
	}
}

// Property: the golden model's serving energy is exactly
// bytes/Rm x P_active for arbitrary small scenarios, and total energy
// stays within the power envelope.
func TestQuickGoldenConservation(t *testing.T) {
	f := func(n8, stagger8 uint8) bool {
		cfg := seqConfig()
		n := 1 + int(n8)%5
		var xs []Transfer
		totalBytes := 0.0
		for i := 0; i < n; i++ {
			xs = append(xs, Transfer{
				ID: i, Arrival: sim.Time(i*int(stagger8)) * sim.Time(sim.Microsecond),
				Bus: i % 3, Page: memsys.PageID(i * 256), Pages: 1,
			})
			totalBytes += 8192
		}
		res, err := Run(cfg, xs)
		if err != nil {
			return false
		}
		wantServing := totalBytes / 3.2e9 * energy.ActivePower
		if math.Abs(res.Energy[energy.CatServing]-wantServing)/wantServing > 1e-9 {
			return false
		}
		return len(res.Completion) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
