package exact

// Cross-check: the production fluid controller must agree with this
// request-level golden model on completion times, serving energy and
// utilization for arbitrary baseline micro-scenarios.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dmamem/internal/bus"
	"dmamem/internal/controller"
	"dmamem/internal/dma"
	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
)

// runFluid executes the same scenario on the production controller.
func runFluid(t testing.TB, xs []Transfer) (map[int]sim.Time, *memsys.Chip, *controller.Controller) {
	t.Helper()
	eng := sim.New()
	cfg := controller.Config{
		Geometry:     memsys.Default(),
		Buses:        bus.DefaultConfig(),
		Policy:       policy.NewDynamic(),
		Mapper:       memsys.SequentialMapper{PagesPerChip: memsys.Default().PagesPerChip()},
		InitialState: energy.Powerdown,
	}
	c, err := controller.New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	completion := make(map[int]sim.Time)
	for i := range xs {
		x := xs[i]
		eng.SchedulePrio(x.Arrival, 1, func(*sim.Engine) {
			c.StartTransfer(dma.Transfer{
				ID: int64(x.ID), Arrival: x.Arrival, Bus: x.Bus,
				Page: x.Page, Pages: x.Pages,
			})
		})
	}
	eng.Run()
	c.Finish(eng.Now())
	// The controller does not expose per-transfer completions; infer
	// the last one from the engine clock and check aggregates instead.
	_ = completion
	return completion, c.ChipModels()[0], c
}

func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.Mapper = memsys.SequentialMapper{PagesPerChip: cfg.Geometry.PagesPerChip()}
	return cfg
}

// TestCrossCheckAggregates compares serving energy, total energy and
// utilization between the golden model and the fluid controller over
// randomized baseline scenarios.
func TestCrossCheckAggregates(t *testing.T) {
	f := func(seed uint64) bool {
		rng := synth.NewRNG(seed)
		n := 1 + rng.Intn(5)
		var xs []Transfer
		for i := 0; i < n; i++ {
			xs = append(xs, Transfer{
				ID:      i,
				Arrival: sim.Time(rng.Intn(40)) * sim.Time(sim.Microsecond),
				Bus:     rng.Intn(3),
				// Chips 0..2 under the sequential mapper.
				Page:  memsys.PageID(rng.Intn(3)*4096 + rng.Intn(512)),
				Pages: 1 + rng.Intn(2),
			})
		}
		golden, err := Run(goldenConfig(), xs)
		if err != nil {
			t.Log(err)
			return false
		}
		eng := sim.New()
		cfg := controller.Config{
			Geometry:     memsys.Default(),
			Buses:        bus.DefaultConfig(),
			Policy:       policy.NewDynamic(),
			Mapper:       memsys.SequentialMapper{PagesPerChip: memsys.Default().PagesPerChip()},
			InitialState: energy.Powerdown,
		}
		c, err := controller.New(eng, cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		for i := range xs {
			x := xs[i]
			eng.SchedulePrio(x.Arrival, 1, func(*sim.Engine) {
				c.StartTransfer(dma.Transfer{
					ID: int64(x.ID), Arrival: x.Arrival, Bus: x.Bus,
					Page: x.Page, Pages: x.Pages,
				})
			})
		}
		eng.Run()
		end := c.Finish(eng.Now())
		fluid := c.Report("fluid", end)

		// Serving energy: both models must charge exactly bytes/Rm.
		gServe := golden.Energy[energy.CatServing]
		fServe := fluid.Energy[energy.CatServing]
		if math.Abs(gServe-fServe)/gServe > 1e-4 {
			t.Logf("seed %d: serving golden %g vs fluid %g", seed, gServe, fServe)
			return false
		}
		// Utilization factor within burst-model tolerance. Micro
		// scenarios are noisy: a single overlap that one model's wake
		// timing produces and the other's misses swings uf by a large
		// step, so the randomized bound is loose; the structured tests
		// above pin the canonical cases tightly.
		if math.Abs(golden.UF()-fluid.UtilizationFactor) > 0.12 {
			t.Logf("seed %d: uf golden %.4f vs fluid %.4f", seed, golden.UF(), fluid.UtilizationFactor)
			return false
		}
		// Makespans agree within a beat per transfer plus wake skew.
		var gLast sim.Time
		for _, done := range golden.Completion {
			if done > gLast {
				gLast = done
			}
		}
		fLast := eng.Now()
		diff := float64(gLast - fLast)
		tol := float64(len(xs))*7500 + float64(2*6*sim.Microsecond)
		if math.Abs(diff) > tol {
			t.Logf("seed %d: makespan golden %v vs fluid %v", seed, gLast, fLast)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{
		MaxCount: 60,
		// Fixed source: the tolerance above is calibrated, so keep the
		// scenario population reproducible.
		Rand: rand.New(rand.NewSource(7)),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCrossCheckAlignedEnergy compares total energy for the flagship
// alignment scenario across both models.
func TestCrossCheckAlignedEnergy(t *testing.T) {
	xs := []Transfer{
		{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 1},
		{ID: 2, Arrival: 0, Bus: 1, Page: 100, Pages: 1},
		{ID: 3, Arrival: 0, Bus: 2, Page: 200, Pages: 1},
	}
	golden, err := Run(goldenConfig(), xs)
	if err != nil {
		t.Fatal(err)
	}
	_, chip, _ := runFluid(t, xs)

	// Active-mode energy (serving + mismatch idle) agrees.
	gActive := golden.Energy[energy.CatServing] + golden.Energy[energy.CatIdleDMA]
	b := chip.Meter.Breakdown()
	fActive := b[energy.CatServing] + b[energy.CatIdleDMA]
	if math.Abs(gActive-fActive)/gActive > 0.02 {
		t.Fatalf("active energy: golden %g vs fluid %g", gActive, fActive)
	}
	// Both models see a fully utilized chip.
	if golden.UF() < 0.99 || chip.UtilizationFactor() < 0.99 {
		t.Fatalf("uf: golden %.3f fluid %.3f", golden.UF(), chip.UtilizationFactor())
	}
}
