package memsys

import (
	"fmt"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

// Phase distinguishes residence in a state from the transitions between
// states.
type Phase uint8

const (
	// PhaseResident: the chip is settled in State.
	PhaseResident Phase = iota
	// PhaseWaking: the chip is transitioning from a low-power state to
	// Active; it becomes resident at ReadyAt.
	PhaseWaking
	// PhaseSleeping: the chip is transitioning from Active down to
	// State; it becomes resident at ReadyAt.
	PhaseSleeping
)

func (p Phase) String() string {
	switch p {
	case PhaseResident:
		return "resident"
	case PhaseWaking:
		return "waking"
	case PhaseSleeping:
		return "sleeping"
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Chip is the power state machine and energy integrator for one memory
// device. It is a passive model: the memory controller and the
// low-level policy decide *when* to change state; the chip guarantees
// that every picosecond of simulated time is charged to exactly one
// energy category.
//
// The state machine is whatever the technology's energy.Model says it
// is — the paper's 4-state RDRAM chain by default, but equally DDR4's
// five states or LPDDR4's three.
//
// While the chip is resident in Active, the controller owns the
// accounting (it knows the utilization of each piecewise-constant
// interval) and advances the chip's cursor through AccountActive.
// Low-power residence and transitions are charged by the chip itself.
type Chip struct {
	ID    int
	Meter energy.Meter
	model *energy.Model

	state   energy.State // resident state, or target while transitioning
	phase   Phase
	cursor  sim.Time // time up to which energy has been charged
	readyAt sim.Time // transition completion time when not resident

	// Statistics for the utilization factor and transition counts.
	Wakes        int64
	sleepCounts  map[energy.State]int64
	ActiveTime   sim.Duration // total time charged while resident Active
	TransferTime sim.Duration // active time during which >=1 DMA transfer was in progress
	ServingTime  sim.Duration // portion of TransferTime actually serving DMA data
	// Residency is the time spent resident in each state, indexed like
	// the model's States (micro-naps count toward the model's MicroNap
	// state; transition time is excluded).
	Residency []sim.Duration
	// StateEnergy is the resident energy per state in joules, indexed
	// like Residency. It mirrors every resident Meter charge, so
	// sum(StateEnergy) plus the transition and migration categories
	// equals the meter total (up to float summation order).
	StateEnergy []float64

	// Pending active-span components, accumulated as exact integer
	// durations and converted to joules in one Meter add per category
	// at Close. Integer accumulation makes the energy output
	// independent of how an idle stretch is split into accounting
	// spans (float p*d1 + p*d2 need not equal p*(d1+d2) bit-for-bit),
	// which is what lets the controller's dirty-set accounting charge
	// clean chips lazily yet stay bit-identical to a per-event full
	// scan.
	pendServing   sim.Duration
	pendProc      sim.Duration
	pendIdleDMA   sim.Duration
	pendThreshold sim.Duration
	pendMicroNap  sim.Duration
}

// NewChip returns a chip resident in the given state at time now,
// using the default RDRAM power model.
func NewChip(id int, start energy.State, now sim.Time) *Chip {
	return NewChipWithSpec(id, start, now, energy.RDRAM1600())
}

// NewChipWithSpec returns a chip using a legacy 4-state technology
// spec, converted to its Model form.
func NewChipWithSpec(id int, start energy.State, now sim.Time, spec *energy.Spec) *Chip {
	if spec == nil {
		spec = energy.RDRAM1600()
	}
	return NewChipWithModel(id, start, now, spec.Model())
}

// NewChipWithModel returns a chip driven by an explicit technology
// model. The starting state must exist in the model's machine.
func NewChipWithModel(id int, start energy.State, now sim.Time, m *energy.Model) *Chip {
	if m == nil {
		m = energy.RDRAM1600().Model()
	}
	if int(start) >= m.NumStates() {
		panic(fmt.Sprintf("memsys: chip %d starting state %d beyond the %d states of model %s",
			id, int(start), m.NumStates(), m.Name))
	}
	return &Chip{ID: id, model: m, state: start, phase: PhaseResident, cursor: now,
		Residency:   make([]sim.Duration, m.NumStates()),
		StateEnergy: make([]float64, m.NumStates()),
		sleepCounts: make(map[energy.State]int64)}
}

// Model returns the chip's technology model.
func (c *Chip) Model() *energy.Model { return c.model }

// State returns the resident state, or the target state while a
// transition is in flight.
func (c *Chip) State() energy.State { return c.state }

// Phase returns the chip's current phase.
func (c *Chip) Phase() Phase { return c.phase }

// Resident reports whether the chip is settled (not transitioning).
func (c *Chip) Resident() bool { return c.phase == PhaseResident }

// ReadyAt returns when an in-flight transition completes; it is only
// meaningful while not resident.
func (c *Chip) ReadyAt() sim.Time { return c.readyAt }

// SleepCount reports how many times the chip entered state s.
func (c *Chip) SleepCount(s energy.State) int64 { return c.sleepCounts[s] }

// Cursor returns the instant up to which the chip's energy has been
// accounted. While resident in Active, the controller advances it via
// AccountActive.
func (c *Chip) Cursor() sim.Time { return c.cursor }

func (c *Chip) checkCursor(now sim.Time) {
	if now < c.cursor {
		panic(fmt.Sprintf("memsys: chip %d accounting going backwards: cursor %v, now %v",
			c.ID, c.cursor, now))
	}
}

// chargeResident charges resident time in state s to the meter and the
// per-state ledgers.
func (c *Chip) chargeResident(cat energy.Category, s energy.State, d sim.Duration) {
	power := c.model.Power(s)
	c.Meter.Accumulate(cat, power, d)
	c.Residency[s] += d
	c.StateEnergy[s] += power * d.Seconds()
}

// BeginWake starts the transition from a resident low-power state to
// Active. The elapsed low-power residence is charged, the transition
// energy is charged eagerly (transitions are never aborted), and the
// completion instant is returned so the caller can schedule
// CompleteWake.
func (c *Chip) BeginWake(now sim.Time) sim.Time {
	if c.phase != PhaseResident || c.state == energy.Active {
		panic(fmt.Sprintf("memsys: chip %d BeginWake in phase %v state %v", c.ID, c.phase, c.state))
	}
	c.checkCursor(now)
	c.chargeResident(energy.CatLowPower, c.state, now.Sub(c.cursor))
	tr := c.model.UpFrom(c.state)
	c.Meter.Accumulate(energy.CatTransition, tr.Power, tr.Time)
	c.phase = PhaseWaking
	c.readyAt = now.Add(tr.Time)
	c.cursor = c.readyAt
	c.Wakes++
	return c.readyAt
}

// CompleteWake makes the chip resident in Active. now must be the
// instant returned by BeginWake.
func (c *Chip) CompleteWake(now sim.Time) {
	if c.phase != PhaseWaking {
		panic(fmt.Sprintf("memsys: chip %d CompleteWake in phase %v", c.ID, c.phase))
	}
	if now != c.readyAt {
		panic(fmt.Sprintf("memsys: chip %d CompleteWake at %v, expected %v", c.ID, now, c.readyAt))
	}
	c.phase = PhaseResident
	c.state = energy.Active
}

// BeginSleep starts the transition from resident Active into low-power
// state to. Active time must already be fully accounted (the
// controller's cursor must equal now). Returns the completion instant.
func (c *Chip) BeginSleep(to energy.State, now sim.Time) sim.Time {
	if c.phase != PhaseResident || c.state != energy.Active {
		panic(fmt.Sprintf("memsys: chip %d BeginSleep in phase %v state %v", c.ID, c.phase, c.state))
	}
	if to == energy.Active {
		panic("memsys: BeginSleep to Active")
	}
	c.checkCursor(now)
	if now != c.cursor {
		// Unaccounted active time would silently vanish.
		panic(fmt.Sprintf("memsys: chip %d BeginSleep with unaccounted active span [%v,%v)",
			c.ID, c.cursor, now))
	}
	tr := c.model.TransitionFor(energy.Active, to)
	c.Meter.Accumulate(energy.CatTransition, tr.Power, tr.Time)
	c.phase = PhaseSleeping
	c.state = to
	c.readyAt = now.Add(tr.Time)
	c.cursor = c.readyAt
	c.sleepCounts[to]++
	return c.readyAt
}

// CompleteSleep makes the chip resident in its target low-power state.
func (c *Chip) CompleteSleep(now sim.Time) {
	if c.phase != PhaseSleeping {
		panic(fmt.Sprintf("memsys: chip %d CompleteSleep in phase %v", c.ID, c.phase))
	}
	if now != c.readyAt {
		panic(fmt.Sprintf("memsys: chip %d CompleteSleep at %v, expected %v", c.ID, now, c.readyAt))
	}
	c.phase = PhaseResident
}

// Deepen moves a chip resident in one low-power state directly into a
// deeper one (a policy's demotion chain). The residence so far is
// charged; the down transition is charged with the model's entry for
// the hop.
func (c *Chip) Deepen(to energy.State, now sim.Time) sim.Time {
	if c.phase != PhaseResident || c.state == energy.Active {
		panic(fmt.Sprintf("memsys: chip %d Deepen in phase %v state %v", c.ID, c.phase, c.state))
	}
	if to <= c.state {
		panic(fmt.Sprintf("memsys: chip %d Deepen from %v to %v is not deeper", c.ID, c.state, to))
	}
	c.checkCursor(now)
	c.chargeResident(energy.CatLowPower, c.state, now.Sub(c.cursor))
	tr := c.model.TransitionFor(c.state, to)
	c.Meter.Accumulate(energy.CatTransition, tr.Power, tr.Time)
	c.phase = PhaseSleeping
	c.state = to
	c.readyAt = now.Add(tr.Time)
	c.cursor = c.readyAt
	c.sleepCounts[to]++
	return c.readyAt
}

// MicroNapOverheadPower approximates the transition energy of
// burst-granularity naps: a chip that naps between DMA bursts pays the
// nap entry/exit transitions once per gap. At typical microsecond gap
// lengths that averages to a few milliwatts on top of the nap power.
const MicroNapOverheadPower = 0.005

// AccountActive charges the active span [cursor, to) while the chip is
// resident in Active. serving is the portion spent moving DMA data,
// proc the portion spent servicing processor accesses; inTransfer
// states whether at least one DMA transfer was in progress during the
// span (the distinction between "Active Idle DMA" and "Active Idle
// Threshold" in the paper's breakdowns).
func (c *Chip) AccountActive(to sim.Time, serving, proc sim.Duration, inTransfer bool) {
	span := to.Sub(c.cursor)
	if serving < 0 || proc < 0 || serving+proc > span {
		panic(fmt.Sprintf("memsys: chip %d AccountActive serving %v + proc %v exceeds span %v",
			c.ID, serving, proc, span))
	}
	idleDMA := sim.Duration(0)
	if inTransfer {
		idleDMA = span - serving - proc
	}
	c.AccountActiveSpan(to, serving, proc, idleDMA, 0)
}

// AccountActiveSpan is the detailed form used by the burst-level bus
// model: the span decomposes into DMA serving, processor serving,
// bandwidth-mismatch idle (full active power, between requests of
// in-flight bursts), micro-nap time (the chip naps through the gaps
// between bursts of rate-shared streams), and the remainder, which is
// threshold idle. TransferTime — the uf denominator — covers serving
// plus mismatch idle: the time some DMA transfer keeps the chip in
// active mode.
func (c *Chip) AccountActiveSpan(to sim.Time, serving, proc, idleDMA, microNap sim.Duration) {
	if c.phase != PhaseResident || c.state != energy.Active {
		panic(fmt.Sprintf("memsys: chip %d AccountActiveSpan in phase %v state %v", c.ID, c.phase, c.state))
	}
	c.checkCursor(to)
	span := to.Sub(c.cursor)
	if serving < 0 || proc < 0 || idleDMA < 0 || microNap < 0 {
		panic(fmt.Sprintf("memsys: chip %d negative component in span accounting", c.ID))
	}
	threshold := span - serving - proc - idleDMA - microNap
	if threshold < 0 {
		panic(fmt.Sprintf("memsys: chip %d span %v overfull: serving %v proc %v idleDMA %v nap %v",
			c.ID, span, serving, proc, idleDMA, microNap))
	}
	c.pendServing += serving
	c.pendProc += proc
	c.pendIdleDMA += idleDMA
	c.pendThreshold += threshold
	c.pendMicroNap += microNap
	c.ActiveTime += span - microNap
	c.TransferTime += serving + idleDMA
	c.ServingTime += serving
	c.Residency[energy.Active] += span - microNap
	c.Residency[c.model.MicroNap] += microNap
	c.cursor = to
}

// flushActive converts the accumulated active-span durations to joules
// — one Meter add per category, in a fixed order — and zeroes them.
func (c *Chip) flushActive() {
	active := c.model.Power(energy.Active)
	napPower := c.model.Power(c.model.MicroNap)
	c.Meter.Accumulate(energy.CatServing, active, c.pendServing)
	c.Meter.Accumulate(energy.CatProcServing, active, c.pendProc)
	c.Meter.Accumulate(energy.CatIdleDMA, active, c.pendIdleDMA)
	c.Meter.Accumulate(energy.CatIdleThreshold, active, c.pendThreshold)
	c.Meter.Accumulate(energy.CatLowPower, napPower, c.pendMicroNap)
	c.Meter.Accumulate(energy.CatTransition, MicroNapOverheadPower, c.pendMicroNap)
	c.StateEnergy[energy.Active] += active*c.pendServing.Seconds() +
		active*c.pendProc.Seconds() + active*c.pendIdleDMA.Seconds() +
		active*c.pendThreshold.Seconds()
	c.StateEnergy[c.model.MicroNap] += napPower * c.pendMicroNap.Seconds()
	c.pendServing, c.pendProc, c.pendIdleDMA, c.pendThreshold, c.pendMicroNap = 0, 0, 0, 0, 0
}

// Close flushes the open span at the end of a simulation. A chip left
// resident in a low-power state is charged its residence; a chip left
// Active is charged threshold-idle for the tail (the controller flushes
// transfer intervals itself before closing). Close also flushes the
// pending active-span energy, so the Meter is complete only after
// Close — read breakdowns after Close, never before.
func (c *Chip) Close(now sim.Time) {
	defer c.flushActive()
	if c.phase != PhaseResident {
		// Transition energy was charged eagerly and the cursor already
		// sits at the completion instant; nothing left to do even if
		// the simulation ends mid-transition.
		return
	}
	c.checkCursor(now)
	switch {
	case c.state == energy.Active:
		c.AccountActive(now, 0, 0, false)
	default:
		c.chargeResident(energy.CatLowPower, c.state, now.Sub(c.cursor))
		c.cursor = now
	}
}

// UtilizationFactor is the paper's uf metric for this chip:
// ServingTime / TransferTime. It returns 0 for a chip that never saw a
// transfer.
func (c *Chip) UtilizationFactor() float64 {
	if c.TransferTime == 0 {
		return 0
	}
	return float64(c.ServingTime) / float64(c.TransferTime)
}
