package memsys

import (
	"fmt"
	"math"
)

// Topology groups the chips of a Geometry into independently clocked
// DDR-style channels. Pages are striped across channels at a
// configurable granularity, and each channel contributes its own
// bandwidth ceiling and power-state domain.
//
// The zero value selects the legacy single-channel RDRAM behavior and
// is always valid: every chip shares one implicit channel, pages are
// round-robin interleaved across all chips, and no per-channel
// bandwidth cap applies. Setting any field engages the topology
// backend, which must validate against the Geometry it partitions.
type Topology struct {
	// Channels is the number of independently clocked channels the
	// chips are split into. 0 means "topology disabled" (legacy
	// single-channel path); otherwise it must divide Geometry.NumChips.
	Channels int
	// StripePages is the number of consecutive pages placed on one
	// channel before the mapping advances to the next channel.
	// 0 means 1 (page-granular interleaving).
	StripePages int
	// ChannelBandwidth caps the aggregate delivery rate into one
	// channel, bytes/s. 0 means "no per-channel cap": chips remain
	// limited only by their own bandwidth and the I/O buses.
	ChannelBandwidth float64
}

// Enabled reports whether any field departs from the legacy
// single-channel zero value.
func (t Topology) Enabled() bool {
	return t.Channels != 0 || t.StripePages != 0 || t.ChannelBandwidth != 0
}

// Validate reports a descriptive error when the topology cannot
// partition the given geometry. The zero value always validates.
func (t Topology) Validate(g Geometry) error {
	if !t.Enabled() {
		return nil
	}
	switch {
	case t.Channels < 0:
		return fmt.Errorf("memsys: Topology.Channels must be nonnegative, got %d", t.Channels)
	case t.Channels > g.NumChips:
		return fmt.Errorf("memsys: Topology.Channels (%d) exceeds NumChips (%d)", t.Channels, g.NumChips)
	case t.Channels > 0 && g.NumChips%t.Channels != 0:
		return fmt.Errorf("memsys: Topology.Channels (%d) must divide NumChips (%d)", t.Channels, g.NumChips)
	case t.StripePages < 0:
		return fmt.Errorf("memsys: Topology.StripePages must be nonnegative, got %d", t.StripePages)
	case t.ChannelBandwidth < 0 || math.IsNaN(t.ChannelBandwidth) || math.IsInf(t.ChannelBandwidth, 0):
		return fmt.Errorf("memsys: Topology.ChannelBandwidth must be finite and nonnegative, got %g", t.ChannelBandwidth)
	}
	return nil
}

// NumChannels returns the effective channel count (1 when the field is
// unset or the topology is disabled).
func (t Topology) NumChannels() int {
	if t.Channels <= 0 {
		return 1
	}
	return t.Channels
}

// EffectiveStripePages returns the stripe granularity with the zero
// default applied.
func (t Topology) EffectiveStripePages() int {
	if t.StripePages <= 0 {
		return 1
	}
	return t.StripePages
}

// ChipsPerChannel returns how many chips each channel owns under g.
func (t Topology) ChipsPerChannel(g Geometry) int {
	return g.NumChips / t.NumChannels()
}

// ChannelOfChip returns the channel owning the given chip. Chips are
// assigned to channels in contiguous blocks: channel c owns chips
// [c*ChipsPerChannel, (c+1)*ChipsPerChannel).
func (t Topology) ChannelOfChip(g Geometry, chip int) int {
	return chip / t.ChipsPerChannel(g)
}

// Mapper returns the page-to-chip mapping induced by the topology: the
// channel-interleaved TopologyMapper when enabled, or the legacy
// InterleavedMapper otherwise.
func (t Topology) Mapper(g Geometry) Mapper {
	if !t.Enabled() {
		return InterleavedMapper{Chips: g.NumChips}
	}
	return TopologyMapper{
		Channels:        t.NumChannels(),
		ChipsPerChannel: t.ChipsPerChannel(g),
		StripePages:     t.EffectiveStripePages(),
	}
}

// TopologyMapper stripes runs of StripePages consecutive pages across
// channels round-robin, then round-robins the stripes owned by one
// channel across that channel's chips. With Channels=1 and
// StripePages=1 it reduces exactly to InterleavedMapper over all chips.
type TopologyMapper struct {
	Channels        int
	ChipsPerChannel int
	StripePages     int
}

// ChipOf implements Mapper.
func (m TopologyMapper) ChipOf(p PageID) int {
	stripe := int(p) / m.StripePages
	ch := stripe % m.Channels
	// Index of the page within its channel's page sequence.
	idx := (stripe/m.Channels)*m.StripePages + int(p)%m.StripePages
	return ch*m.ChipsPerChannel + idx%m.ChipsPerChannel
}
