package memsys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTopologyZeroValue(t *testing.T) {
	g := Default()
	var topo Topology
	if topo.Enabled() {
		t.Fatal("zero topology reports enabled")
	}
	if err := topo.Validate(g); err != nil {
		t.Fatalf("zero topology must validate: %v", err)
	}
	if topo.NumChannels() != 1 {
		t.Errorf("NumChannels = %d, want 1", topo.NumChannels())
	}
	if topo.ChipsPerChannel(g) != g.NumChips {
		t.Errorf("ChipsPerChannel = %d, want %d", topo.ChipsPerChannel(g), g.NumChips)
	}
	for chip := 0; chip < g.NumChips; chip++ {
		if topo.ChannelOfChip(g, chip) != 0 {
			t.Fatalf("chip %d on channel %d, want 0", chip, topo.ChannelOfChip(g, chip))
		}
	}
	// The disabled topology hands back the legacy interleaved mapper.
	if _, ok := topo.Mapper(g).(InterleavedMapper); !ok {
		t.Errorf("disabled topology mapper is %T, want InterleavedMapper", topo.Mapper(g))
	}
}

func TestTopologyValidate(t *testing.T) {
	g := Default() // 32 chips
	bad := []Topology{
		{Channels: -1},
		{Channels: 33},                      // more channels than chips
		{Channels: 5},                       // does not divide 32
		{Channels: 2, StripePages: -1},      //
		{Channels: 2, ChannelBandwidth: -1}, //
		{Channels: 2, ChannelBandwidth: math.NaN()},
		{Channels: 2, ChannelBandwidth: math.Inf(1)},
		{StripePages: -4}, // enabled by a single bad field
	}
	for i, topo := range bad {
		if topo.Validate(g) == nil {
			t.Errorf("case %d: expected error for %+v", i, topo)
		}
	}
	good := []Topology{
		{},
		{Channels: 1},
		{Channels: 2},
		{Channels: 4, StripePages: 8},
		{Channels: 32},
		{Channels: 8, ChannelBandwidth: 3.2e9},
		{StripePages: 4}, // channel count defaulted to 1
	}
	for i, topo := range good {
		if err := topo.Validate(g); err != nil {
			t.Errorf("good case %d: unexpected error %v for %+v", i, err, topo)
		}
	}
}

// A 1-channel stripe-1 topology must map pages exactly like the legacy
// interleaved layout: this is the foundation of the cross-backend
// bit-identity proof in internal/experiments.
func TestTopologyMapperSingleChannelMatchesInterleaved(t *testing.T) {
	g := Default()
	topo := Topology{Channels: 1}
	m := topo.Mapper(g)
	im := InterleavedMapper{Chips: g.NumChips}
	for p := 0; p < g.TotalPages(); p++ {
		if got, want := m.ChipOf(PageID(p)), im.ChipOf(PageID(p)); got != want {
			t.Fatalf("page %d: topology chip %d, interleaved chip %d", p, got, want)
		}
	}
}

func TestTopologyMapperStriping(t *testing.T) {
	g := Geometry{NumChips: 8, ChipBytes: 64, PageBytes: 8, ChipBandwidth: 1}
	topo := Topology{Channels: 4, StripePages: 2}
	if err := topo.Validate(g); err != nil {
		t.Fatal(err)
	}
	m := topo.Mapper(g)
	// Stripe s of 2 pages lands on channel s%4; chips 2c and 2c+1
	// belong to channel c.
	for p := 0; p < g.TotalPages(); p++ {
		chip := m.ChipOf(PageID(p))
		wantCh := (p / 2) % 4
		if gotCh := topo.ChannelOfChip(g, chip); gotCh != wantCh {
			t.Fatalf("page %d: chip %d on channel %d, want channel %d", p, chip, gotCh, wantCh)
		}
	}
	// Consecutive pages of one stripe stay on the same channel.
	if topo.ChannelOfChip(g, m.ChipOf(0)) != topo.ChannelOfChip(g, m.ChipOf(1)) {
		t.Error("pages 0 and 1 split across channels despite StripePages=2")
	}
}

// Property: every valid topology maps every page to an in-range chip,
// keeps whole stripes on one channel, and balances pages across
// channels exactly.
func TestQuickTopologyMapper(t *testing.T) {
	f := func(chanSel, stripeSel, chipSel uint8) bool {
		divisors := []int{1, 2, 4, 8}
		channels := divisors[int(chanSel)%len(divisors)]
		stripe := 1 + int(stripeSel)%8
		chipsPer := 1 + int(chipSel)%4
		g := Geometry{
			NumChips:      channels * chipsPer,
			ChipBytes:     int64(64 * 8),
			PageBytes:     8,
			ChipBandwidth: 1,
		}
		topo := Topology{Channels: channels, StripePages: stripe}
		if err := topo.Validate(g); err != nil {
			return false
		}
		m := topo.Mapper(g)
		perChannel := make([]int, channels)
		for p := 0; p < g.TotalPages(); p++ {
			chip := m.ChipOf(PageID(p))
			if chip < 0 || chip >= g.NumChips {
				return false
			}
			ch := topo.ChannelOfChip(g, chip)
			if ch != (p/stripe)%channels {
				return false
			}
			perChannel[ch]++
		}
		// Total pages divide evenly across channels whenever whole
		// stripes do.
		if g.TotalPages()%(channels*stripe) == 0 {
			for _, n := range perChannel {
				if n != g.TotalPages()/channels {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
