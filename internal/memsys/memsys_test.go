package memsys

import (
	"math"
	"testing"
	"testing/quick"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

func TestDefaultGeometry(t *testing.T) {
	g := Default()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumChips != 32 {
		t.Errorf("NumChips = %d, want 32", g.NumChips)
	}
	if g.TotalBytes() != 1<<30 {
		t.Errorf("TotalBytes = %d, want 1 GiB", g.TotalBytes())
	}
	if g.PagesPerChip() != 4096 {
		t.Errorf("PagesPerChip = %d, want 4096", g.PagesPerChip())
	}
	if g.TotalPages() != 131072 {
		t.Errorf("TotalPages = %d, want 131072", g.TotalPages())
	}
	// One 8-byte request takes 4 memory cycles = 2.5 ns at 3.2 GB/s.
	if got := g.RequestServiceTime(); got != 2500*sim.Picosecond {
		t.Errorf("RequestServiceTime = %v, want 2500ps", got)
	}
	// A 64-byte cache line takes 20 ns.
	if got := g.CacheLineServiceTime(); got != 20*sim.Nanosecond {
		t.Errorf("CacheLineServiceTime = %v, want 20ns", got)
	}
	// An 8 KB page takes 2.56 us.
	if got := g.ServiceTime(8 << 10); got != 2_560*sim.Nanosecond {
		t.Errorf("page ServiceTime = %v, want 2.56us", got)
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{NumChips: 0, ChipBytes: 1, PageBytes: 1, ChipBandwidth: 1},
		{NumChips: 1, ChipBytes: 0, PageBytes: 1, ChipBandwidth: 1},
		{NumChips: 1, ChipBytes: 1, PageBytes: 0, ChipBandwidth: 1},
		{NumChips: 1, ChipBytes: 4, PageBytes: 8, ChipBandwidth: 1},
		{NumChips: 1, ChipBytes: 8, PageBytes: 8, ChipBandwidth: 0},
		// ChipBytes not a whole number of pages: PagesPerChip would
		// silently truncate and lose the tail of every chip.
		{NumChips: 1, ChipBytes: 12, PageBytes: 8, ChipBandwidth: 1},
		{NumChips: 32, ChipBytes: 32<<20 + 1, PageBytes: 8 << 10, ChipBandwidth: 3.2e9},
		// Non-finite bandwidth: NaN slips through a plain <= 0 check.
		{NumChips: 1, ChipBytes: 8, PageBytes: 8, ChipBandwidth: math.NaN()},
		{NumChips: 1, ChipBytes: 8, PageBytes: 8, ChipBandwidth: math.Inf(1)},
		{NumChips: 1, ChipBytes: 8, PageBytes: 8, ChipBandwidth: -1},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("case %d: expected error for %+v", i, g)
		}
	}
	good := []Geometry{
		Default(),
		{NumChips: 1, ChipBytes: 8, PageBytes: 8, ChipBandwidth: 1},
		{NumChips: 16, ChipBytes: 64 << 10, PageBytes: 8 << 10, ChipBandwidth: 2.1e9},
	}
	for i, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("good case %d: unexpected error %v for %+v", i, err, g)
		}
	}
}

func TestMappers(t *testing.T) {
	im := InterleavedMapper{Chips: 4}
	if im.ChipOf(0) != 0 || im.ChipOf(1) != 1 || im.ChipOf(4) != 0 || im.ChipOf(7) != 3 {
		t.Error("interleaved mapping wrong")
	}
	sm := SequentialMapper{PagesPerChip: 10}
	if sm.ChipOf(0) != 0 || sm.ChipOf(9) != 0 || sm.ChipOf(10) != 1 || sm.ChipOf(25) != 2 {
		t.Error("sequential mapping wrong")
	}
}

// Property: both baseline mappers keep every page on a valid chip and
// are balanced to within one page.
func TestQuickMapperBalance(t *testing.T) {
	f := func(chips8, pages16 uint8) bool {
		chips := 1 + int(chips8)%16
		pagesPer := 1 + int(pages16)%64
		total := chips * pagesPer
		im := InterleavedMapper{Chips: chips}
		sm := SequentialMapper{PagesPerChip: pagesPer}
		countI := make([]int, chips)
		countS := make([]int, chips)
		for p := 0; p < total; p++ {
			ci, cs := im.ChipOf(PageID(p)), sm.ChipOf(PageID(p))
			if ci < 0 || ci >= chips || cs < 0 || cs >= chips {
				return false
			}
			countI[ci]++
			countS[cs]++
		}
		for c := 0; c < chips; c++ {
			if countI[c] != pagesPer || countS[c] != pagesPer {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))+1e-15
}

func TestChipWakeSleepAccounting(t *testing.T) {
	c := NewChip(0, energy.Nap, 0)
	// Stay in nap for 1 us, then wake.
	ready := c.BeginWake(sim.Time(1 * sim.Microsecond))
	if ready != sim.Time(1*sim.Microsecond+60*sim.Nanosecond) {
		t.Fatalf("wake ready at %v", ready)
	}
	c.CompleteWake(ready)
	if c.State() != energy.Active || !c.Resident() {
		t.Fatal("chip should be resident active")
	}
	// Serve for 3 us: 1 us serving, 0.5 us proc, rest idle-in-transfer.
	end := ready.Add(3 * sim.Microsecond)
	c.AccountActive(end, 1*sim.Microsecond, 500*sim.Nanosecond, true)
	// Idle 2 us waiting for threshold.
	end2 := end.Add(2 * sim.Microsecond)
	c.AccountActive(end2, 0, 0, false)
	// Sleep to nap.
	done := c.BeginSleep(energy.Nap, end2)
	c.CompleteSleep(done)
	c.Close(done.Add(10 * sim.Microsecond))

	b := c.Meter.Breakdown()
	if !approx(b[energy.CatLowPower], 0.030*(1e-6+10e-6)) {
		t.Errorf("low-power = %g", b[energy.CatLowPower])
	}
	wantTrans := 0.160*60e-9 + 0.160*8*625e-12
	if !approx(b[energy.CatTransition], wantTrans) {
		t.Errorf("transition = %g, want %g", b[energy.CatTransition], wantTrans)
	}
	if !approx(b[energy.CatServing], 0.300*1e-6) {
		t.Errorf("serving = %g", b[energy.CatServing])
	}
	if !approx(b[energy.CatProcServing], 0.300*0.5e-6) {
		t.Errorf("proc = %g", b[energy.CatProcServing])
	}
	if !approx(b[energy.CatIdleDMA], 0.300*1.5e-6) {
		t.Errorf("idle-dma = %g", b[energy.CatIdleDMA])
	}
	if !approx(b[energy.CatIdleThreshold], 0.300*2e-6) {
		t.Errorf("idle-threshold = %g", b[energy.CatIdleThreshold])
	}
	if c.Wakes != 1 || c.SleepCount(energy.Nap) != 1 {
		t.Errorf("wakes=%d naps=%d", c.Wakes, c.SleepCount(energy.Nap))
	}
	// uf = serving / (serving + DMA idle) = 1us / 2.5us; processor
	// service time is not part of the transfer envelope.
	if !approx(c.UtilizationFactor(), 0.4) {
		t.Errorf("uf = %g", c.UtilizationFactor())
	}
}

func TestChipDeepen(t *testing.T) {
	c := NewChip(1, energy.Standby, 0)
	done := c.Deepen(energy.Nap, sim.Time(100*sim.Nanosecond))
	c.CompleteSleep(done)
	if c.State() != energy.Nap {
		t.Fatalf("state = %v", c.State())
	}
	done2 := c.Deepen(energy.Powerdown, done.Add(1*sim.Microsecond))
	c.CompleteSleep(done2)
	if c.State() != energy.Powerdown {
		t.Fatalf("state = %v", c.State())
	}
	b := c.Meter.Breakdown()
	wantLow := 0.180*100e-9 + 0.030*1e-6
	if !approx(b[energy.CatLowPower], wantLow) {
		t.Errorf("low-power = %g, want %g", b[energy.CatLowPower], wantLow)
	}
	if c.SleepCount(energy.Nap) != 1 || c.SleepCount(energy.Powerdown) != 1 {
		t.Error("sleep counts wrong")
	}
}

func TestChipCloseWhileActive(t *testing.T) {
	c := NewChip(0, energy.Powerdown, 0)
	ready := c.BeginWake(0)
	c.CompleteWake(ready)
	c.Close(ready.Add(5 * sim.Microsecond))
	b := c.Meter.Breakdown()
	if !approx(b[energy.CatIdleThreshold], 0.300*5e-6) {
		t.Errorf("close while active: idle-threshold = %g", b[energy.CatIdleThreshold])
	}
}

func TestChipCloseWhileTransitioning(t *testing.T) {
	c := NewChip(0, energy.Powerdown, 0)
	c.BeginWake(0)
	// Close before the wake completes: transition energy was charged
	// eagerly, so Close must not double-charge or panic.
	c.Close(sim.Time(1 * sim.Nanosecond))
	b := c.Meter.Breakdown()
	if !approx(b[energy.CatTransition], 0.015*6000e-9) {
		t.Errorf("transition = %g", b[energy.CatTransition])
	}
}

func TestChipPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"wake while active", func() {
			c := NewChip(0, energy.Active, 0)
			c.BeginWake(0)
		}},
		{"sleep while napping", func() {
			c := NewChip(0, energy.Nap, 0)
			c.BeginSleep(energy.Powerdown, 0)
		}},
		{"sleep to active", func() {
			c := NewChip(0, energy.Active, 0)
			c.BeginSleep(energy.Active, 0)
		}},
		{"account backwards", func() {
			c := NewChip(0, energy.Active, 100)
			c.AccountActive(50, 0, 0, false)
		}},
		{"overfull span", func() {
			c := NewChip(0, energy.Active, 0)
			c.AccountActive(10, 20, 0, true)
		}},
		{"deepen shallower", func() {
			c := NewChip(0, energy.Powerdown, 0)
			c.Deepen(energy.Nap, 0)
		}},
		{"unaccounted sleep", func() {
			c := NewChip(0, energy.Active, 0)
			c.BeginSleep(energy.Nap, 100) // active span [0,100) never accounted
		}},
		{"complete wake early", func() {
			c := NewChip(0, energy.Nap, 0)
			c.BeginWake(0)
			c.CompleteWake(1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f()
		})
	}
}

// Property: total metered energy equals a hand-computed integral for a
// random walk of the state machine.
func TestQuickChipConservation(t *testing.T) {
	f := func(steps []uint8) bool {
		c := NewChip(0, energy.Powerdown, 0)
		now := sim.Time(0)
		var want float64
		for _, s := range steps {
			dwell := sim.Duration(1+int(s%100)) * sim.Microsecond
			if c.State() == energy.Powerdown {
				want += energy.PowerdownPower * dwell.Seconds()
				now = now.Add(dwell)
				ready := c.BeginWake(now)
				want += energy.PowerdownToActive.Power * energy.PowerdownToActive.Time.Seconds()
				now = ready
				c.CompleteWake(now)
			} else {
				now = now.Add(dwell)
				serving := dwell / 3
				c.AccountActive(now, serving, 0, true)
				want += energy.ActivePower * dwell.Seconds()
				done := c.BeginSleep(energy.Powerdown, now)
				want += energy.ActiveToPowerdown.Power * energy.ActiveToPowerdown.Time.Seconds()
				now = done
				c.CompleteSleep(now)
			}
		}
		c.Close(now)
		return approx(c.Meter.Total(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
