package memsys

import (
	"testing"
)

// FuzzGeometryValidate drives Validate with arbitrary field values and
// checks the contract the rest of the simulator builds on: whatever
// Validate accepts must have a positive whole number of pages per
// chip, exact page coverage of every chip, and an in-range interleaved
// mapping — and Validate itself must never panic, whatever it is fed.
func FuzzGeometryValidate(f *testing.F) {
	d := Default()
	f.Add(d.NumChips, d.ChipBytes, d.PageBytes, d.ChipBandwidth)
	f.Add(1, int64(8), 8, 1.0)
	f.Add(0, int64(0), 0, 0.0)
	f.Add(1, int64(12), 8, 1.0) // non-divisible
	f.Add(16, int64(1<<62), 1, 2.1e9)
	f.Add(-3, int64(-8), -8, -1.0)
	f.Fuzz(func(t *testing.T, numChips int, chipBytes int64, pageBytes int, chipBW float64) {
		g := Geometry{NumChips: numChips, ChipBytes: chipBytes, PageBytes: pageBytes, ChipBandwidth: chipBW}
		if g.Validate() != nil {
			return
		}
		per := g.PagesPerChip()
		if per <= 0 {
			t.Fatalf("valid geometry %+v has %d pages per chip", g, per)
		}
		if int64(per)*int64(g.PageBytes) != g.ChipBytes {
			t.Fatalf("valid geometry %+v: %d pages x %d B != %d chip bytes", g, per, g.PageBytes, g.ChipBytes)
		}
		if g.TotalPages() != per*g.NumChips {
			t.Fatalf("valid geometry %+v: TotalPages %d != %d x %d", g, g.TotalPages(), per, g.NumChips)
		}
		if g.RequestServiceTime() < 0 || g.CacheLineServiceTime() < 0 {
			t.Fatalf("valid geometry %+v yields negative service time", g)
		}
		m := InterleavedMapper{Chips: g.NumChips}
		probe := g.TotalPages()
		if probe > 1<<12 {
			probe = 1 << 12
		}
		for p := 0; p < probe; p++ {
			if c := m.ChipOf(PageID(p)); c < 0 || c >= g.NumChips {
				t.Fatalf("valid geometry %+v maps page %d to chip %d", g, p, c)
			}
		}
	})
}

// FuzzTopologyValidate drives Topology.Validate against small
// geometries and checks that every accepted topology yields a
// consistent partition: a channel count that divides the chips, a
// mapper that keeps every page on an in-range chip, and channel
// assignments that agree between the mapper and ChannelOfChip.
func FuzzTopologyValidate(f *testing.F) {
	f.Add(32, 1, 1, 0.0)
	f.Add(32, 4, 8, 3.2e9)
	f.Add(32, 0, 0, 0.0)
	f.Add(8, 8, 2, 1e9)
	f.Add(32, 5, 1, 0.0) // does not divide
	f.Add(32, -1, -1, -1.0)
	f.Add(4, 2, 1000, 2.1e9)
	f.Fuzz(func(t *testing.T, numChips, channels, stripePages int, channelBW float64) {
		if numChips < 1 || numChips > 256 {
			return // keep the page walk bounded
		}
		g := Geometry{NumChips: numChips, ChipBytes: 16 * 8, PageBytes: 8, ChipBandwidth: 1}
		if g.Validate() != nil {
			return
		}
		topo := Topology{Channels: channels, StripePages: stripePages, ChannelBandwidth: channelBW}
		if topo.Validate(g) != nil {
			return
		}
		nch := topo.NumChannels()
		if nch < 1 || nch > g.NumChips || g.NumChips%nch != 0 {
			t.Fatalf("valid topology %+v on %d chips has %d channels", topo, g.NumChips, nch)
		}
		if topo.ChipsPerChannel(g)*nch != g.NumChips {
			t.Fatalf("valid topology %+v: %d chips/channel x %d channels != %d chips",
				topo, topo.ChipsPerChannel(g), nch, g.NumChips)
		}
		stripe := topo.EffectiveStripePages()
		if stripe < 1 {
			t.Fatalf("valid topology %+v has stripe %d", topo, stripe)
		}
		m := topo.Mapper(g)
		for p := 0; p < g.TotalPages(); p++ {
			chip := m.ChipOf(PageID(p))
			if chip < 0 || chip >= g.NumChips {
				t.Fatalf("valid topology %+v maps page %d to chip %d of %d", topo, p, chip, g.NumChips)
			}
			ch := topo.ChannelOfChip(g, chip)
			if ch < 0 || ch >= nch {
				t.Fatalf("valid topology %+v puts chip %d on channel %d of %d", topo, chip, ch, nch)
			}
			if topo.Enabled() && ch != (p/stripe)%nch {
				t.Fatalf("valid topology %+v: page %d (stripe %d) landed on channel %d, want %d",
					topo, p, p/stripe, ch, (p/stripe)%nch)
			}
		}
	})
}
