// Package memsys models the main-memory subsystem of a data server: a
// set of independently power-managed RDRAM chips, the geometry that
// maps pages onto them, and the per-chip power state machine with
// energy accounting.
package memsys

import (
	"fmt"
	"math"

	"dmamem/internal/sim"
)

// RequestBytes is the size of one DMA-memory request: the width of a
// 64-bit PCI-X bus beat (Section 3 of the paper).
const RequestBytes = 8

// CacheLineBytes is the size of a processor-initiated access.
const CacheLineBytes = 64

// Geometry describes the simulated memory system. The paper's default
// is 32 chips of 32 MB (1 GB total) of 512 Mb 1600 MHz RDRAM with a
// 3.2 GB/s per-chip transfer rate and 8 KB pages.
type Geometry struct {
	NumChips      int     // number of independently managed chips
	ChipBytes     int64   // capacity of one chip in bytes
	PageBytes     int     // OS page size in bytes
	ChipBandwidth float64 // sustained transfer rate of one chip, bytes/s
}

// Default returns the paper's evaluation configuration.
func Default() Geometry {
	return Geometry{
		NumChips:      32,
		ChipBytes:     32 << 20,
		PageBytes:     8 << 10,
		ChipBandwidth: 3.2e9,
	}
}

// Validate reports a descriptive error for nonsensical geometries.
func (g Geometry) Validate() error {
	switch {
	case g.NumChips <= 0:
		return fmt.Errorf("memsys: NumChips must be positive, got %d", g.NumChips)
	case g.ChipBytes <= 0:
		return fmt.Errorf("memsys: ChipBytes must be positive, got %d", g.ChipBytes)
	case g.PageBytes <= 0:
		return fmt.Errorf("memsys: PageBytes must be positive, got %d", g.PageBytes)
	case int64(g.PageBytes) > g.ChipBytes:
		return fmt.Errorf("memsys: page (%d B) larger than chip (%d B)", g.PageBytes, g.ChipBytes)
	case g.ChipBytes%int64(g.PageBytes) != 0:
		return fmt.Errorf("memsys: ChipBytes (%d) must be a multiple of PageBytes (%d)", g.ChipBytes, g.PageBytes)
	case g.ChipBandwidth <= 0 || math.IsNaN(g.ChipBandwidth) || math.IsInf(g.ChipBandwidth, 0):
		return fmt.Errorf("memsys: ChipBandwidth must be positive and finite, got %g", g.ChipBandwidth)
	}
	return nil
}

// PagesPerChip returns how many pages fit on one chip.
func (g Geometry) PagesPerChip() int { return int(g.ChipBytes / int64(g.PageBytes)) }

// TotalPages returns the number of physical pages in the system.
func (g Geometry) TotalPages() int { return g.PagesPerChip() * g.NumChips }

// TotalBytes returns the memory capacity in bytes.
func (g Geometry) TotalBytes() int64 { return g.ChipBytes * int64(g.NumChips) }

// ServiceTime returns the time one chip needs to transfer n bytes at
// its sustained rate.
func (g Geometry) ServiceTime(n int64) sim.Duration {
	return sim.FromSeconds(float64(n) / g.ChipBandwidth)
}

// RequestServiceTime is the chip-side service time of a single 8-byte
// DMA-memory request (4 memory cycles = 2.5 ns at the default rate).
func (g Geometry) RequestServiceTime() sim.Duration {
	return g.ServiceTime(RequestBytes)
}

// CacheLineServiceTime is the service time of one processor access.
func (g Geometry) CacheLineServiceTime() sim.Duration {
	return g.ServiceTime(CacheLineBytes)
}

// PageID names a physical page.
type PageID int32

// Mapper maps physical pages to chips. The baseline layouts live here;
// the popularity-based layout in internal/layout also satisfies it.
type Mapper interface {
	// ChipOf returns the chip currently holding the page.
	ChipOf(p PageID) int
}

// InterleavedMapper stripes consecutive pages round-robin across chips,
// the usual bandwidth-oriented layout and our baseline.
type InterleavedMapper struct{ Chips int }

// ChipOf implements Mapper.
func (m InterleavedMapper) ChipOf(p PageID) int { return int(p) % m.Chips }

// SequentialMapper fills chips one at a time with consecutive pages.
type SequentialMapper struct{ PagesPerChip int }

// ChipOf implements Mapper.
func (m SequentialMapper) ChipOf(p PageID) int { return int(p) / m.PagesPerChip }
