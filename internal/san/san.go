// Package san models the storage-area network between clients and a
// data server: a full-duplex link with bandwidth, propagation delay,
// and FIFO serialization per direction, plus a tiny request/response
// framing used by the workload models.
//
// Like the disk model, only timing matters: the workload models use it
// to place network-DMA trace records and to compute client-perceived
// response times, the quantity the paper's CP-Limit is defined
// against.
package san

import (
	"fmt"

	"dmamem/internal/sim"
)

// Config describes the SAN link. The defaults model a 2 Gb/s Fibre
// Channel fabric of the paper's era with datacenter-scale propagation.
type Config struct {
	Bandwidth float64      // bytes/s per direction
	PropDelay sim.Duration // one-way propagation + switching delay
	FrameOver int          // per-message framing overhead in bytes
}

// DefaultConfig returns a 2 Gb/s FC-class link.
func DefaultConfig() Config {
	return Config{
		Bandwidth: 200e6,
		PropDelay: 20 * sim.Microsecond,
		FrameOver: 64,
	}
}

// Validate reports a descriptive error for nonsensical configs.
func (c Config) Validate() error {
	switch {
	case c.Bandwidth <= 0:
		return fmt.Errorf("san: Bandwidth = %g", c.Bandwidth)
	case c.PropDelay < 0:
		return fmt.Errorf("san: PropDelay = %v", c.PropDelay)
	case c.FrameOver < 0:
		return fmt.Errorf("san: FrameOver = %d", c.FrameOver)
	}
	return nil
}

// Link is one direction of the SAN. Messages serialize FIFO onto the
// wire; delivery is serialization + propagation.
type Link struct {
	cfg    Config
	freeAt sim.Time

	Messages int64
	Bytes    int64
	BusyTime sim.Duration
}

// NewLink builds a link.
func NewLink(cfg Config) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Link{cfg: cfg}, nil
}

// Send puts n payload bytes on the wire at time now and returns the
// delivery time at the far end.
func (l *Link) Send(now sim.Time, n int64) sim.Time {
	if n < 0 {
		panic(fmt.Sprintf("san: Send(%d bytes)", n))
	}
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	wire := n + int64(l.cfg.FrameOver)
	ser := sim.FromSeconds(float64(wire) / l.cfg.Bandwidth)
	l.freeAt = start.Add(ser)
	l.Messages++
	l.Bytes += n
	l.BusyTime += ser
	return l.freeAt.Add(l.cfg.PropDelay)
}

// FreeAt returns when the link drains its queued messages.
func (l *Link) FreeAt() sim.Time { return l.freeAt }

// Deliver returns the delivery time of n payload bytes put on the wire
// at now, modelling serialization and propagation but not cross-message
// queueing. Open-loop trace generators use it for messages whose issue
// times are computed out of order (Send's FIFO would otherwise queue a
// past message behind a future one). Utilization statistics still
// accumulate.
func (l *Link) Deliver(now sim.Time, n int64) sim.Time {
	if n < 0 {
		panic(fmt.Sprintf("san: Deliver(%d bytes)", n))
	}
	wire := n + int64(l.cfg.FrameOver)
	ser := sim.FromSeconds(float64(wire) / l.cfg.Bandwidth)
	l.Messages++
	l.Bytes += n
	l.BusyTime += ser
	return now.Add(ser + l.cfg.PropDelay)
}

// Fabric bundles the two directions between clients and the server.
type Fabric struct {
	// ToServer carries client requests and write payloads.
	ToServer *Link
	// ToClient carries read payloads and acknowledgements.
	ToClient *Link
}

// NewFabric builds a full-duplex fabric.
func NewFabric(cfg Config) (*Fabric, error) {
	in, err := NewLink(cfg)
	if err != nil {
		return nil, err
	}
	out, err := NewLink(cfg)
	if err != nil {
		return nil, err
	}
	return &Fabric{ToServer: in, ToClient: out}, nil
}

// RequestArrival returns when a client request issued at now reaches
// the server (requests are small control messages).
func (f *Fabric) RequestArrival(now sim.Time) sim.Time {
	return f.ToServer.Send(now, 0)
}

// Reply returns when n payload bytes sent from the server at now reach
// the client. Replies use Deliver because the workload models compute
// their send times out of order.
func (f *Fabric) Reply(now sim.Time, n int64) sim.Time {
	return f.ToClient.Deliver(now, n)
}

// WritePayloadArrival returns when n payload bytes pushed by a client
// at now finish arriving at the server.
func (f *Fabric) WritePayloadArrival(now sim.Time, n int64) sim.Time {
	return f.ToServer.Send(now, n)
}
