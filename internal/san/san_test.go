package san

import (
	"testing"
	"testing/quick"

	"dmamem/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Bandwidth = 0
	if bad.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = DefaultConfig()
	bad.PropDelay = -1
	if bad.Validate() == nil {
		t.Error("negative delay accepted")
	}
	bad = DefaultConfig()
	bad.FrameOver = -1
	if bad.Validate() == nil {
		t.Error("negative framing accepted")
	}
}

func TestSendTiming(t *testing.T) {
	cfg := Config{Bandwidth: 1e6, PropDelay: 10 * sim.Microsecond, FrameOver: 0}
	l, err := NewLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 bytes at 1 MB/s = 1 ms serialization + 10 us propagation.
	got := l.Send(0, 1000)
	want := sim.Time(1*sim.Millisecond + 10*sim.Microsecond)
	if got != want {
		t.Fatalf("delivery at %v, want %v", got, want)
	}
	if l.Messages != 1 || l.Bytes != 1000 {
		t.Fatalf("stats: %d msgs, %d bytes", l.Messages, l.Bytes)
	}
}

func TestSendFIFO(t *testing.T) {
	l, _ := NewLink(DefaultConfig())
	d1 := l.Send(0, 8192)
	d2 := l.Send(0, 8192)
	if d2 <= d1 {
		t.Fatalf("FIFO violated: %v then %v", d1, d2)
	}
	// Gap between deliveries is exactly one serialization time.
	ser := sim.FromSeconds(float64(8192+64) / DefaultConfig().Bandwidth)
	if d2.Sub(d1) != ser {
		t.Fatalf("delivery gap %v, want %v", d2.Sub(d1), ser)
	}
}

func TestFramingOverheadCounts(t *testing.T) {
	with := Config{Bandwidth: 1e6, PropDelay: 0, FrameOver: 1000}
	l, _ := NewLink(with)
	// Zero-payload message still takes 1 ms of wire time.
	if got := l.Send(0, 0); got != sim.Time(1*sim.Millisecond) {
		t.Fatalf("framing-only send delivered at %v", got)
	}
}

func TestSendPanics(t *testing.T) {
	l, _ := NewLink(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("negative size accepted")
		}
	}()
	l.Send(0, -1)
}

func TestFabricDirectionsIndependent(t *testing.T) {
	f, err := NewFabric(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the to-server direction; replies must be unaffected.
	for i := 0; i < 100; i++ {
		f.WritePayloadArrival(0, 1<<20)
	}
	reply := f.Reply(0, 64)
	ser := sim.FromSeconds(float64(64+64) / DefaultConfig().Bandwidth)
	want := sim.Time(ser + DefaultConfig().PropDelay)
	if reply != want {
		t.Fatalf("reply at %v, want %v (directions coupled?)", reply, want)
	}
}

func TestFabricRequestResponse(t *testing.T) {
	f, _ := NewFabric(DefaultConfig())
	arr := f.RequestArrival(0)
	if arr <= 0 {
		t.Fatal("request arrival not delayed")
	}
	done := f.Reply(arr, 8192)
	if done <= arr {
		t.Fatal("reply before request arrival")
	}
}

func TestNewFabricError(t *testing.T) {
	bad := DefaultConfig()
	bad.Bandwidth = 0
	if _, err := NewFabric(bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

// Property: deliveries on one link are monotone in issue order and
// busy time equals total serialization.
func TestQuickLinkMonotone(t *testing.T) {
	f := func(sizes []uint16) bool {
		l, err := NewLink(DefaultConfig())
		if err != nil {
			return false
		}
		var prev sim.Time
		now := sim.Time(0)
		for _, s := range sizes {
			d := l.Send(now, int64(s))
			if d < prev {
				return false
			}
			prev = d
			now = now.Add(sim.Microsecond)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
