package trace

import (
	"fmt"
	"math"
	"sort"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// Stats summarizes a trace the way Table 2 and Figure 4 of the paper
// do: per-source DMA rates, processor-access intensity, and the page
// popularity distribution of DMA accesses.
type Stats struct {
	Duration sim.Duration

	DMATransfers   int64
	NetTransfers   int64
	DiskTransfers  int64
	DMAPages       int64
	ProcAccesses   int64
	DistinctPages  int
	pagePopularity map[memsys.PageID]int64
	dmaArrivals    []sim.Time
}

// Analyze computes statistics over a trace. Page popularity counts one
// hit per page per DMA transfer (multi-page transfers touch each of
// their pages), matching the "DMA reference counts" PL maintains.
func Analyze(t *Trace) *Stats {
	s := &Stats{
		Duration:       t.Duration(),
		pagePopularity: make(map[memsys.PageID]int64),
	}
	for _, r := range t.Records {
		if r.Kind.IsDMA() {
			s.DMATransfers++
			s.DMAPages += int64(r.Pages)
			s.dmaArrivals = append(s.dmaArrivals, r.Time)
			switch r.Source {
			case SrcNetwork:
				s.NetTransfers++
			case SrcDisk:
				s.DiskTransfers++
			}
			for p := 0; p < int(r.Pages); p++ {
				s.pagePopularity[r.Page+memsys.PageID(p)]++
			}
		} else {
			s.ProcAccesses++
		}
	}
	s.DistinctPages = len(s.pagePopularity)
	return s
}

// TransfersPerMs returns the average DMA transfer arrival rate.
func (s *Stats) TransfersPerMs() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.DMATransfers) / (s.Duration.Seconds() * 1e3)
}

// ProcAccessesPerMs returns the average processor access rate.
func (s *Stats) ProcAccessesPerMs() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.ProcAccesses) / (s.Duration.Seconds() * 1e3)
}

// ProcAccessesPerTransfer returns the paper's Figure 9 x-axis metric.
func (s *Stats) ProcAccessesPerTransfer() float64 {
	if s.DMATransfers == 0 {
		return 0
	}
	return float64(s.ProcAccesses) / float64(s.DMATransfers)
}

// MeanTransferPages returns the average DMA transfer size in pages.
func (s *Stats) MeanTransferPages() float64 {
	if s.DMATransfers == 0 {
		return 0
	}
	return float64(s.DMAPages) / float64(s.DMATransfers)
}

// PopularityCount returns the DMA access count of a page.
func (s *Stats) PopularityCount(p memsys.PageID) int64 { return s.pagePopularity[p] }

// CDFPoint is one point of the Figure 4 curve: the most popular X
// fraction of pages receives Y fraction of the DMA accesses.
type CDFPoint struct{ PageFrac, AccessFrac float64 }

// PopularityCDF computes the Figure 4 curve with pages sorted from
// most to least popular, sampled at n evenly spaced page fractions
// (plus the endpoint).
func (s *Stats) PopularityCDF(n int) []CDFPoint {
	counts := make([]int64, 0, len(s.pagePopularity))
	var total int64
	for _, c := range s.pagePopularity {
		counts = append(counts, c)
		total += c
	}
	if len(counts) == 0 || total == 0 {
		return nil
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	if n < 1 {
		n = 1
	}
	pts := make([]CDFPoint, 0, n+1)
	var cum int64
	next := 1
	for i, c := range counts {
		cum += c
		for next <= n && i+1 >= (next*len(counts)+n-1)/n {
			pts = append(pts, CDFPoint{
				PageFrac:   float64(i+1) / float64(len(counts)),
				AccessFrac: float64(cum) / float64(total),
			})
			next++
		}
	}
	return pts
}

// AccessShareOfTopPages returns the fraction of DMA accesses captured
// by the most popular frac of pages (e.g. frac=0.2 for the 20-80 rule).
func (s *Stats) AccessShareOfTopPages(frac float64) float64 {
	counts := make([]int64, 0, len(s.pagePopularity))
	var total int64
	for _, c := range s.pagePopularity {
		counts = append(counts, c)
		total += c
	}
	if total == 0 {
		return 0
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	top := int(frac * float64(len(counts)))
	if top < 1 {
		top = 1
	}
	var cum int64
	for _, c := range counts[:top] {
		cum += c
	}
	return float64(cum) / float64(total)
}

// String renders a Table 2 style one-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf(
		"dur=%.1fms dma=%d (net %.1f/ms, disk %.1f/ms, %.2f pages/xfer) proc=%d (%.0f/ms, %.0f/xfer) pages=%d",
		s.Duration.Seconds()*1e3, s.DMATransfers, transfersPerMs(s.NetTransfers, s.Duration),
		transfersPerMs(s.DiskTransfers, s.Duration), s.MeanTransferPages(),
		s.ProcAccesses, s.ProcAccessesPerMs(), s.ProcAccessesPerTransfer(), s.DistinctPages)
}

func transfersPerMs(n int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / (d.Seconds() * 1e3)
}

// InterArrivalCV returns the coefficient of variation of the DMA
// transfer inter-arrival times: 1 for a Poisson process, above 1 for
// bursty arrivals, below for smooth pacing.
func (s *Stats) InterArrivalCV() float64 {
	if len(s.dmaArrivals) < 3 {
		return 0
	}
	var gaps []float64
	for i := 1; i < len(s.dmaArrivals); i++ {
		gaps = append(gaps, float64(s.dmaArrivals[i]-s.dmaArrivals[i-1]))
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	if mean == 0 {
		return 0
	}
	var varsum float64
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	return math.Sqrt(varsum/float64(len(gaps))) / mean
}

// ChipLoadCV returns the coefficient of variation of per-chip DMA page
// counts under page-interleaved placement over the given chip count —
// a measure of the natural chip-level skew a layout-oblivious system
// would see.
func (s *Stats) ChipLoadCV(chips int) float64 {
	if chips <= 0 {
		panic(fmt.Sprintf("trace: ChipLoadCV over %d chips", chips))
	}
	load := make([]float64, chips)
	var total float64
	for p, c := range s.pagePopularity {
		load[int(p)%chips] += float64(c)
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	mean := total / float64(chips)
	var varsum float64
	for _, l := range load {
		varsum += (l - mean) * (l - mean)
	}
	return math.Sqrt(varsum/float64(chips)) / mean
}
