package trace_test

import (
	"bytes"
	"fmt"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// ExampleWriter streams records into a .dmt container one at a time —
// the shape a generator uses to emit an hour-scale trace without ever
// holding it in memory.
func ExampleWriter() {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, "example", trace.WriterOptions{ChunkRecords: 2})
	if err != nil {
		panic(err)
	}
	w.SetMeta(trace.Meta{MeanClientResponse: sim.Millisecond, TransfersPerClientRequest: 1})
	for i := 0; i < 5; i++ {
		err := w.Append(trace.Record{
			Time:   sim.Time(i) * sim.Time(sim.Microsecond),
			Kind:   trace.DMAWrite,
			Source: trace.SrcDisk,
			Pages:  1,
			Page:   memsys.PageID(100 * i),
		})
		if err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	fmt.Println("is .dmt:", trace.IsDMT(buf.Bytes()))
	// Output:
	// is .dmt: true
}

// ExampleReader opens a container, reads its summary from the header
// and footer without scanning, then streams the records through a
// bounded-memory Cursor.
func ExampleReader() {
	// Build a small container to read back.
	tr := &trace.Trace{Name: "example"}
	for i := 0; i < 4; i++ {
		tr.Records = append(tr.Records, trace.Record{
			Time: sim.Time(i) * sim.Time(sim.Microsecond),
			Kind: trace.DMARead, Source: trace.SrcNetwork, Pages: 2, Page: memsys.PageID(i),
		})
	}
	var buf bytes.Buffer
	if err := tr.WriteDMT(&buf, trace.WriterOptions{ChunkRecords: 3}); err != nil {
		panic(err)
	}

	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		panic(err)
	}
	sum := r.Summary()
	fmt.Printf("%s: %d records in %d chunks, %d pages by DMA\n",
		sum.Name, sum.Records, sum.Chunks, sum.DMAPages)

	cur := r.Cursor()
	for {
		rec, ok := cur.Next()
		if !ok {
			break
		}
		fmt.Printf("%d ps: %v page %d\n", int64(rec.Time), rec.Kind, rec.Page)
	}
	if err := cur.Err(); err != nil {
		panic(err)
	}
	// Output:
	// example: 4 records in 2 chunks, 8 pages by DMA
	// 0 ps: dma-read page 0
	// 1000000 ps: dma-read page 1
	// 2000000 ps: dma-read page 2
	// 3000000 ps: dma-read page 3
}
