package trace

import (
	"bytes"
	"testing"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// dmtSeed builds a small valid container for the fuzz seed corpus.
func dmtSeed(records, chunk int) []byte {
	tr := testTrace(records)
	var buf bytes.Buffer
	if err := tr.WriteDMT(&buf, WriterOptions{ChunkRecords: chunk}); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDMTDecode feeds arbitrary bytes to the .dmt container decoder.
// The decoder fronts every file the tools open, so whatever is on disk
// it must fail with an error wrapping ErrDMTFormat (or an I/O error) —
// never panic, never return a trace that violates the Record
// invariants, and never allocate proportionally to a lying length
// field. Inputs that do decode must re-encode and decode back to the
// same trace (the codec identity), and the streaming Cursor must agree
// record-for-record with the one-shot DecodeDMT.
func FuzzDMTDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DMTc"))
	f.Add(dmtSeed(0, 1))
	f.Add(dmtSeed(1, 1))
	f.Add(dmtSeed(25, 4))
	f.Add(dmtSeed(100, 0))
	// Truncations and field corruptions of a valid container.
	valid := dmtSeed(25, 4)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:13])
	skew := bytes.Clone(valid)
	skew[4] = 99 // version
	f.Add(skew)
	lie := bytes.Clone(valid)
	lie[8] = 0xff // chunkRecords
	f.Add(lie)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeDMT(data)
		if err != nil {
			if tr != nil {
				t.Fatalf("decoder returned both a trace and error %v", err)
			}
			return // rejection is the expected outcome for random bytes
		}
		// Whatever decoded must satisfy the Record invariants the writer
		// enforces (Validate additionally rejects zero-page DMAs, which
		// the codec intentionally represents).
		var last int64
		for i, r := range tr.Records {
			if int64(r.Time) < last {
				t.Fatalf("record %d at %d before predecessor at %d", i, int64(r.Time), last)
			}
			last = int64(r.Time)
			if r.Kind >= numKinds || r.Source >= numSources || r.Page < 0 {
				t.Fatalf("record %d out of range: %+v", i, r)
			}
		}
		// Codec identity: re-encode, re-decode, compare.
		var buf bytes.Buffer
		if err := tr.WriteDMT(&buf, WriterOptions{ChunkRecords: 4}); err != nil {
			t.Fatalf("re-encoding a decoded trace: %v", err)
		}
		tr2, err := DecodeDMT(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if tr2.Name != tr.Name || tr2.Meta != tr.Meta || len(tr2.Records) != len(tr.Records) {
			t.Fatalf("round trip changed identity: %q/%d -> %q/%d", tr.Name, len(tr.Records), tr2.Name, len(tr2.Records))
		}
		for i := range tr.Records {
			if tr.Records[i] != tr2.Records[i] {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, tr.Records[i], tr2.Records[i])
			}
		}
		// The streaming path must agree with the one-shot path.
		r, err := NewReader(newByteReaderAt(data), int64(len(data)))
		if err != nil {
			t.Fatalf("NewReader rejected what DecodeDMT accepted: %v", err)
		}
		cur := r.Cursor()
		for i := range tr.Records {
			rec, ok := cur.Next()
			if !ok || rec != tr.Records[i] {
				t.Fatalf("cursor diverged at record %d (ok=%v, err=%v)", i, ok, cur.Err())
			}
		}
		if _, ok := cur.Next(); ok || cur.Err() != nil {
			t.Fatalf("cursor did not end cleanly: err=%v", cur.Err())
		}
	})
}

// FuzzDMTWriterRoundTrip drives the streaming writer with arbitrary
// (but ordered) record parameters and requires a lossless round trip
// at an arbitrary chunk size.
func FuzzDMTWriterRoundTrip(f *testing.F) {
	f.Add(uint(3), int64(5), uint8(1), uint8(0), uint8(2), uint16(4), int32(77), "t")
	f.Add(uint(1), int64(0), uint8(0), uint8(2), uint8(0), uint16(0), int32(0), "")
	f.Fuzz(func(t *testing.T, chunk uint, dt int64, kind, src, bus uint8, pages uint16, page int32, name string) {
		if len(name) > MaxTraceName {
			return
		}
		k, s := Kind(kind%uint8(numKinds)), Source(src%uint8(numSources))
		if dt < 0 {
			dt = -dt
		}
		if page < 0 {
			page = -page
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, name, WriterOptions{ChunkRecords: int(chunk%64) + 1})
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		// A few records with the fuzzed shape at increasing times.
		want := make([]Record, 0, 5)
		at := int64(0)
		for i := 0; i < 5; i++ {
			r := Record{Time: sim.Time(at), Kind: k, Source: s, Bus: bus, Pages: pages, Page: memsys.PageID(page)}
			if err := w.Append(r); err != nil {
				t.Fatalf("Append %d: %v", i, err)
			}
			want = append(want, r)
			if at > (1<<62)-dt {
				dt = 0
			}
			at += dt
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		got, err := DecodeDMT(buf.Bytes())
		if err != nil {
			t.Fatalf("DecodeDMT of writer output: %v", err)
		}
		if got.Name != name || len(got.Records) != len(want) {
			t.Fatalf("identity: %q/%d -> %q/%d", name, len(want), got.Name, len(got.Records))
		}
		for i := range want {
			if got.Records[i] != want[i] {
				t.Fatalf("record %d: %+v -> %+v", i, want[i], got.Records[i])
			}
		}
	})
}
