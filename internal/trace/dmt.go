// The .dmt container: a compact binary columnar trace format for
// hour-scale traces that never fit in memory. docs/TRACE_FORMAT.md is
// the normative byte-level specification; this file is its reference
// implementation. The format is designed around two constraints:
//
//   - Writers stream. A generator appends records one at a time to a
//     plain io.Writer and only ever holds one chunk of records; totals
//     live in a footer, so nothing is patched retroactively and the
//     sink never needs to seek.
//   - Readers stream. A Cursor decodes one chunk at a time into a
//     reused buffer (one raw chunk block plus one decoded chunk are
//     resident, never more), so replaying a 100x-longer trace costs
//     the same memory as a short one.
//
// Records are stored column-wise per chunk: arrival times as uvarint
// deltas (the dominant column compresses from 8 bytes to typically 2-3
// per record), the remaining fields as fixed-width little-endian
// columns. A CRC-32C over everything before the footer and per-field
// range checks make truncated, corrupted and version-skewed files loud
// errors rather than quiet misreads.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// Container-level constants. See docs/TRACE_FORMAT.md for the
// normative layout; the decoder and the document must agree byte for
// byte (TestDMTSpecExample pins the worked example from the doc).
const (
	// DefaultChunkRecords is the writer's default chunk capacity:
	// 65536 records per chunk is ~0.8 MB encoded, small enough that
	// two resident chunk buffers are negligible and large enough that
	// chunk framing overhead vanishes.
	DefaultChunkRecords = 1 << 16
	// MaxChunkRecords bounds the per-chunk record count a reader will
	// accept, which in turn bounds the decode buffer a hostile header
	// can demand.
	MaxChunkRecords = 1 << 22
	// MaxTraceName bounds the trace name carried in the header.
	MaxTraceName = 1 << 12

	dmtVersion     = 1
	dmtHeaderFixed = 14 // magic + version + headerLen + chunkRecords + nameLen
	dmtChunkHeader = 16 // count + payloadLen + baseTime
	dmtFooterSize  = 64

	// Encoded bytes per record: the five fixed-width columns cost
	// 1+1+1+2+4 = 9 bytes, the time delta 1..10 varint bytes.
	dmtMinRecordBytes = 9 + 1
	dmtMaxRecordBytes = 9 + binary.MaxVarintLen64
)

var (
	dmtMagic   = [4]byte{'D', 'M', 'T', 'c'} // "DMA Memory Trace, columnar"
	dmtTrailer = [4]byte{'c', 'T', 'M', 'D'} // footer end marker (magic reversed)

	// crcTable is the CRC-32C (Castagnoli) table the container's
	// integrity checksum uses.
	crcTable = crc32.MakeTable(crc32.Castagnoli)
)

// ErrDMTFormat is wrapped by every malformed-container error the .dmt
// decoder returns, so callers can distinguish "this is not a valid
// .dmt file" from I/O failures with errors.Is.
var ErrDMTFormat = errors.New("malformed .dmt container")

func dmtErrf(format string, args ...any) error {
	return fmt.Errorf("trace: %w: "+format, append([]any{ErrDMTFormat}, args...)...)
}

// IsDMT reports whether b begins with the .dmt container magic. Four
// bytes suffice; shorter prefixes report false.
func IsDMT(b []byte) bool {
	return len(b) >= 4 && b[0] == dmtMagic[0] && b[1] == dmtMagic[1] &&
		b[2] == dmtMagic[2] && b[3] == dmtMagic[3]
}

// FileSummary is the .dmt container's self-description: the header's
// identity fields plus the footer's totals. Reading it costs two small
// reads at the ends of the file, never a scan, so tooling can describe
// an hour-scale trace instantly and the simulator can size its run
// (meter window, warm-up split, CP-Limit calibration) before streaming
// a single record.
type FileSummary struct {
	// Name is the trace label carried in the header.
	Name string
	// ChunkRecords is the writer's chunk capacity: every chunk but the
	// last holds exactly this many records.
	ChunkRecords int
	// Records is the total record count.
	Records int64
	// Chunks is the number of chunk blocks.
	Chunks int64
	// Duration is the timestamp of the last record (the span the trace
	// covers, matching Trace.Duration).
	Duration sim.Duration
	// DMATransfers and DMAPages total the DMA records and the pages
	// they move; their ratio is the mean transfer size the CP-Limit
	// calibration needs, so calibrating against a file never scans it.
	DMATransfers int64
	DMAPages     int64
	// Meta is the workload-level context (client response time,
	// transfers per request), as on an in-memory Trace.
	Meta Meta
}

// MeanTransferPages returns the average DMA transfer size in pages,
// computed exactly as Stats.MeanTransferPages does so file-backed
// CP-Limit calibration is bit-identical to the in-memory path.
func (s FileSummary) MeanTransferPages() float64 {
	if s.DMATransfers == 0 {
		return 0
	}
	return float64(s.DMAPages) / float64(s.DMATransfers)
}

// WriterOptions parameterizes a .dmt Writer.
type WriterOptions struct {
	// ChunkRecords is the number of records per chunk; 0 selects
	// DefaultChunkRecords. It bounds both the writer's and every
	// future reader's resident memory.
	ChunkRecords int
}

// Writer streams records into a .dmt container. It buffers at most one
// chunk of records; Append never touches earlier chunks, so a
// generator can emit an arbitrarily long trace through a Writer in
// constant memory. The sink only needs io.Writer — totals go in the
// footer, nothing is rewritten.
//
// Records must be appended in nondecreasing time order (the format
// stores time deltas as unsigned varints, so disorder is
// unrepresentable); a violation is a loud error and the writer stays
// usable for the records already accepted. Close flushes the last
// chunk and writes the end marker and footer; a Writer that is never
// Closed leaves a truncated container that readers reject.
type Writer struct {
	bw  *bufio.Writer
	crc uint32

	chunkRecords int
	pend         []Record
	scratch      []byte

	prevTime sim.Time
	// chunkBase is the timestamp of the last record of the last flushed
	// chunk: the delta base the next chunk encodes against (0 before the
	// first chunk).
	chunkBase    sim.Time
	records      int64
	chunks       int64
	dmaTransfers int64
	dmaPages     int64
	meta         Meta

	closed bool
	err    error
}

// NewWriter writes the container header for a trace called name and
// returns a streaming writer. The name is limited to MaxTraceName
// bytes; opt.ChunkRecords to (0, MaxChunkRecords].
func NewWriter(w io.Writer, name string, opt WriterOptions) (*Writer, error) {
	cr := opt.ChunkRecords
	if cr == 0 {
		cr = DefaultChunkRecords
	}
	if cr < 0 || cr > MaxChunkRecords {
		return nil, fmt.Errorf("trace: chunk size %d outside (0, %d]", cr, MaxChunkRecords)
	}
	if len(name) > MaxTraceName {
		return nil, fmt.Errorf("trace: name of %d bytes exceeds %d", len(name), MaxTraceName)
	}
	wr := &Writer{
		bw:           bufio.NewWriter(w),
		chunkRecords: cr,
		pend:         make([]Record, 0, cr),
	}
	hdr := make([]byte, dmtHeaderFixed+len(name))
	copy(hdr[0:4], dmtMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], dmtVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(dmtHeaderFixed+len(name)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(cr))
	binary.LittleEndian.PutUint16(hdr[12:14], uint16(len(name)))
	copy(hdr[dmtHeaderFixed:], name)
	if err := wr.write(hdr); err != nil {
		return nil, err
	}
	return wr, nil
}

// write sends bytes that are covered by the footer checksum.
func (w *Writer) write(b []byte) error {
	w.crc = crc32.Update(w.crc, crcTable, b)
	if _, err := w.bw.Write(b); err != nil {
		w.err = err
		return err
	}
	return nil
}

// SetMeta records the workload-level context stored in the footer. It
// may be called at any time before Close; the last call wins.
func (w *Writer) SetMeta(m Meta) { w.meta = m }

// Append adds one record to the container, flushing a full chunk to
// the sink. Records must arrive in nondecreasing time order with a
// valid kind, source and nonnegative page; violations are errors and
// leave the container exactly as it was.
func (w *Writer) Append(r Record) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("trace: append to closed .dmt writer")
	}
	if r.Time < w.prevTime {
		return fmt.Errorf("trace: record at %v before predecessor at %v; .dmt traces are appended in time order",
			r.Time, w.prevTime)
	}
	if r.Kind >= numKinds {
		return fmt.Errorf("trace: record has invalid kind %d", r.Kind)
	}
	if r.Source >= numSources {
		return fmt.Errorf("trace: record has invalid source %d", r.Source)
	}
	if r.Page < 0 {
		return fmt.Errorf("trace: record has negative page %d", r.Page)
	}
	w.pend = append(w.pend, r)
	w.prevTime = r.Time
	w.records++
	if r.Kind.IsDMA() {
		w.dmaTransfers++
		w.dmaPages += int64(r.Pages)
	}
	if len(w.pend) == w.chunkRecords {
		return w.flushChunk()
	}
	return nil
}

// flushChunk encodes the pending records as one columnar chunk block
// and writes it. The scratch buffer is reused across chunks.
func (w *Writer) flushChunk() error {
	n := len(w.pend)
	if n == 0 {
		return nil
	}
	if cap(w.scratch) < dmtChunkHeader+n*dmtMaxRecordBytes {
		w.scratch = make([]byte, dmtChunkHeader+n*dmtMaxRecordBytes)
	}
	buf := w.scratch[:dmtChunkHeader]
	// Column 1: time deltas, uvarint, against the previous chunk's last
	// timestamp (0 for the first chunk).
	base := w.chunkBase
	prev := base
	for _, r := range w.pend {
		var tmp [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(tmp[:], uint64(r.Time-prev))
		buf = append(buf, tmp[:k]...)
		prev = r.Time
	}
	// Columns 2-4: kind, source, bus — one byte each.
	for _, r := range w.pend {
		buf = append(buf, byte(r.Kind))
	}
	for _, r := range w.pend {
		buf = append(buf, byte(r.Source))
	}
	for _, r := range w.pend {
		buf = append(buf, r.Bus)
	}
	// Column 5: pages, uint16 LE.
	for _, r := range w.pend {
		buf = append(buf, byte(r.Pages), byte(r.Pages>>8))
	}
	// Column 6: page, uint32 LE.
	for _, r := range w.pend {
		p := uint32(r.Page)
		buf = append(buf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(buf)-dmtChunkHeader))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(base))
	w.scratch = buf[:0]
	w.chunks++
	w.chunkBase = prev
	w.pend = w.pend[:0]
	return w.write(buf)
}

// Close flushes the final partial chunk, writes the end-of-chunks
// marker and the footer, and flushes the sink's buffer. The underlying
// writer is not closed. Close is idempotent.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if err := w.flushChunk(); err != nil {
		return err
	}
	var end [4]byte // chunk count 0: end of chunks
	if err := w.write(end[:]); err != nil {
		return err
	}
	var ftr [dmtFooterSize]byte
	binary.LittleEndian.PutUint64(ftr[0:8], uint64(w.records))
	binary.LittleEndian.PutUint64(ftr[8:16], uint64(w.chunks))
	binary.LittleEndian.PutUint64(ftr[16:24], uint64(w.prevTime))
	binary.LittleEndian.PutUint64(ftr[24:32], uint64(w.dmaTransfers))
	binary.LittleEndian.PutUint64(ftr[32:40], uint64(w.dmaPages))
	binary.LittleEndian.PutUint64(ftr[40:48], uint64(w.meta.MeanClientResponse))
	binary.LittleEndian.PutUint64(ftr[48:56], math.Float64bits(w.meta.TransfersPerClientRequest))
	binary.LittleEndian.PutUint32(ftr[56:60], w.crc)
	copy(ftr[60:64], dmtTrailer[:])
	if _, err := w.bw.Write(ftr[:]); err != nil { // footer is outside the checksum
		w.err = err
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// WriteDMT encodes the whole in-memory trace as a .dmt container —
// the one-shot convenience over NewWriter/Append/Close.
func (t *Trace) WriteDMT(w io.Writer, opt WriterOptions) error {
	wr, err := NewWriter(w, t.Name, opt)
	if err != nil {
		return err
	}
	wr.SetMeta(t.Meta)
	for _, r := range t.Records {
		if err := wr.Append(r); err != nil {
			return err
		}
	}
	return wr.Close()
}

// Reader opens a .dmt container over a random-access byte source. It
// parses the header and footer eagerly (two small reads) and hands
// out sequential Cursors for the chunk stream; the records themselves
// are never materialized by the Reader.
type Reader struct {
	ra      io.ReaderAt
	size    int64
	hdrLen  int
	sum     FileSummary
	crcWant uint32
}

// NewReader parses the header and footer of a .dmt container stored
// in ra (size bytes). Malformed containers — bad magic, unsupported
// version, truncation past either end — fail here with an error
// wrapping ErrDMTFormat.
func NewReader(ra io.ReaderAt, size int64) (*Reader, error) {
	if size < dmtHeaderFixed+4+dmtFooterSize {
		return nil, dmtErrf("%d bytes is too small for a header, end marker and footer", size)
	}
	var fixed [dmtHeaderFixed]byte
	if _, err := ra.ReadAt(fixed[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading .dmt header: %w", err)
	}
	if !IsDMT(fixed[:]) {
		return nil, dmtErrf("bad magic %q", fixed[0:4])
	}
	if v := binary.LittleEndian.Uint16(fixed[4:6]); v != dmtVersion {
		return nil, dmtErrf("unsupported version %d (this reader speaks version %d)", v, dmtVersion)
	}
	hdrLen := int(binary.LittleEndian.Uint16(fixed[6:8]))
	chunkRecords := int(binary.LittleEndian.Uint32(fixed[8:12]))
	nameLen := int(binary.LittleEndian.Uint16(fixed[12:14]))
	if chunkRecords <= 0 || chunkRecords > MaxChunkRecords {
		return nil, dmtErrf("chunk size %d outside (0, %d]", chunkRecords, MaxChunkRecords)
	}
	if nameLen > MaxTraceName {
		return nil, dmtErrf("name of %d bytes exceeds %d", nameLen, MaxTraceName)
	}
	// Forward compatibility: within version 1 the header may grow
	// additional fields after the name; headerLen locates the first
	// chunk regardless.
	if hdrLen < dmtHeaderFixed+nameLen || int64(hdrLen) > size-4-dmtFooterSize {
		return nil, dmtErrf("header length %d inconsistent with name length %d and file size %d", hdrLen, nameLen, size)
	}
	name := make([]byte, nameLen)
	if _, err := ra.ReadAt(name, dmtHeaderFixed); err != nil {
		return nil, fmt.Errorf("trace: reading .dmt name: %w", err)
	}

	var ftr [dmtFooterSize]byte
	if _, err := ra.ReadAt(ftr[:], size-dmtFooterSize); err != nil {
		return nil, fmt.Errorf("trace: reading .dmt footer: %w", err)
	}
	if [4]byte(ftr[60:64]) != dmtTrailer {
		return nil, dmtErrf("bad footer trailer %q (file truncated or not closed?)", ftr[60:64])
	}
	records := int64(binary.LittleEndian.Uint64(ftr[0:8]))
	chunks := int64(binary.LittleEndian.Uint64(ftr[8:16]))
	lastTime := int64(binary.LittleEndian.Uint64(ftr[16:24]))
	dmaTransfers := int64(binary.LittleEndian.Uint64(ftr[24:32]))
	dmaPages := int64(binary.LittleEndian.Uint64(ftr[32:40]))
	if records < 0 || chunks < 0 || lastTime < 0 || dmaTransfers < 0 || dmaPages < 0 {
		return nil, dmtErrf("footer totals out of range")
	}
	if dmaTransfers > records || chunks > records && records > 0 {
		return nil, dmtErrf("footer totals inconsistent: %d chunks, %d dma of %d records", chunks, dmaTransfers, records)
	}
	r := &Reader{
		ra:     ra,
		size:   size,
		hdrLen: hdrLen,
		sum: FileSummary{
			Name:         string(name),
			ChunkRecords: chunkRecords,
			Records:      records,
			Chunks:       chunks,
			Duration:     sim.Duration(lastTime),
			DMATransfers: dmaTransfers,
			DMAPages:     dmaPages,
			Meta: Meta{
				MeanClientResponse:        sim.Duration(binary.LittleEndian.Uint64(ftr[40:48])),
				TransfersPerClientRequest: math.Float64frombits(binary.LittleEndian.Uint64(ftr[48:56])),
			},
		},
		crcWant: binary.LittleEndian.Uint32(ftr[56:60]),
	}
	if m := r.sum.Meta; m.MeanClientResponse < 0 ||
		math.IsNaN(m.TransfersPerClientRequest) || math.IsInf(m.TransfersPerClientRequest, 0) || m.TransfersPerClientRequest < 0 {
		return nil, dmtErrf("footer metadata out of range")
	}
	return r, nil
}

// Summary returns the container's self-description.
func (r *Reader) Summary() FileSummary { return r.sum }

// Cursor returns a fresh sequential cursor positioned before the
// first record. Cursors are independent: several may stream the same
// Reader (each owns its buffers), but an individual Cursor is
// single-goroutine like everything else in the simulator.
func (r *Reader) Cursor() *Cursor {
	return &Cursor{
		r:  r,
		br: bufio.NewReaderSize(io.NewSectionReader(r.ra, 0, r.size-dmtFooterSize), 1<<16),
	}
}

// Cursor streams the records of a .dmt container in order, one chunk
// resident at a time: a raw chunk block and its decoded records are
// the only per-cursor buffers, both reused across chunks, so memory
// stays flat no matter how long the trace is. The checksum is
// accumulated as chunks stream by and verified against the footer when
// the end marker is reached; any malformed byte turns into Err.
type Cursor struct {
	r   *Reader
	br  *bufio.Reader
	crc uint32

	buf []Record // decoded current chunk
	idx int
	raw []byte               // reused raw chunk payload
	hdr [dmtChunkHeader]byte // reused chunk-header scratch (kept on the
	// cursor so reading through the io.ReadFull interface cannot make
	// it escape per chunk)

	prevTime   sim.Time
	records    int64
	chunks     int64
	skippedHdr bool
	done       bool
	err        error
}

// Err returns the first error the cursor hit: nil while healthy and
// after a clean end of trace, non-nil after an I/O failure or a
// malformed container (wrapping ErrDMTFormat). Once Err is non-nil,
// Peek reports no more records.
func (c *Cursor) Err() error { return c.err }

// Peek returns the next record without consuming it. ok=false means
// the trace ended cleanly or the cursor failed — check Err to
// distinguish.
func (c *Cursor) Peek() (Record, bool) {
	if c.idx < len(c.buf) {
		return c.buf[c.idx], true
	}
	if c.done || c.err != nil {
		return Record{}, false
	}
	c.loadChunk()
	if c.idx < len(c.buf) {
		return c.buf[c.idx], true
	}
	return Record{}, false
}

// Advance consumes the record Peek returned. Advancing past the end is
// a programming error and panics.
func (c *Cursor) Advance() {
	if c.idx >= len(c.buf) {
		panic("trace: Cursor.Advance past end")
	}
	c.idx++
}

// Next consumes and returns the next record: the Peek/Advance pair for
// plain loops. ok follows Peek's contract.
func (c *Cursor) Next() (Record, bool) {
	r, ok := c.Peek()
	if ok {
		c.idx++
	}
	return r, ok
}

// read fills b fully from the chunk stream, folding the bytes into
// the running checksum.
func (c *Cursor) read(b []byte) error {
	if _, err := io.ReadFull(c.br, b); err != nil {
		return err
	}
	c.crc = crc32.Update(c.crc, crcTable, b)
	return nil
}

// loadChunk decodes the next chunk block into c.buf, or finishes the
// stream at the end marker (verifying totals and checksum against the
// footer). On any failure it records c.err and leaves the cursor
// empty.
func (c *Cursor) loadChunk() {
	if err := c.load(); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			err = dmtErrf("chunk stream truncated after %d records: %v", c.records, err)
		}
		c.err = err
		c.buf, c.idx = nil, 0
	}
}

func (c *Cursor) load() error {
	if !c.skippedHdr {
		// Hash the header region so the checksum covers the whole
		// container body, then position at the first chunk.
		hdr := make([]byte, c.r.hdrLen)
		if err := c.read(hdr); err != nil {
			return err
		}
		c.skippedHdr = true
	}
	if err := c.read(c.hdr[:4]); err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(c.hdr[0:4]))
	if count == 0 {
		return c.finish()
	}
	if err := c.read(c.hdr[4:]); err != nil {
		return err
	}
	payloadLen := int64(binary.LittleEndian.Uint32(c.hdr[4:8]))
	base := sim.Time(binary.LittleEndian.Uint64(c.hdr[8:16]))
	if count > c.r.sum.ChunkRecords {
		return dmtErrf("chunk %d holds %d records, above the header's chunk size %d", c.chunks, count, c.r.sum.ChunkRecords)
	}
	if base != c.prevTime {
		return dmtErrf("chunk %d base time %d does not continue from %d", c.chunks, int64(base), int64(c.prevTime))
	}
	if payloadLen < int64(count)*dmtMinRecordBytes || payloadLen > int64(count)*dmtMaxRecordBytes {
		return dmtErrf("chunk %d payload of %d bytes outside [%d, %d] for %d records",
			c.chunks, payloadLen, int64(count)*dmtMinRecordBytes, int64(count)*dmtMaxRecordBytes, count)
	}
	if cap(c.raw) < int(payloadLen) {
		c.raw = make([]byte, payloadLen)
	}
	c.raw = c.raw[:payloadLen]
	if err := c.read(c.raw); err != nil {
		return err
	}
	if cap(c.buf) < count {
		c.buf = make([]Record, count)
	}
	c.buf = c.buf[:count]
	c.idx = 0

	// Column 1: time deltas.
	o := 0
	prev := base
	for i := 0; i < count; i++ {
		v, n := binary.Uvarint(c.raw[o:])
		if n <= 0 {
			return dmtErrf("chunk %d: record %d: bad time varint", c.chunks, i)
		}
		o += n
		if v > uint64(math.MaxInt64) || int64(prev) > math.MaxInt64-int64(v) {
			return dmtErrf("chunk %d: record %d: time overflow", c.chunks, i)
		}
		prev += sim.Time(v)
		c.buf[i].Time = prev
	}
	// Columns 2-6: fixed width.
	need := count * (dmtMinRecordBytes - 1)
	if len(c.raw)-o != need {
		return dmtErrf("chunk %d: %d column bytes after the time column, want %d", c.chunks, len(c.raw)-o, need)
	}
	for i := 0; i < count; i++ {
		k := Kind(c.raw[o+i])
		if k >= numKinds {
			return dmtErrf("chunk %d: record %d: invalid kind %d", c.chunks, i, k)
		}
		c.buf[i].Kind = k
	}
	o += count
	for i := 0; i < count; i++ {
		s := Source(c.raw[o+i])
		if s >= numSources {
			return dmtErrf("chunk %d: record %d: invalid source %d", c.chunks, i, s)
		}
		c.buf[i].Source = s
	}
	o += count
	for i := 0; i < count; i++ {
		c.buf[i].Bus = c.raw[o+i]
	}
	o += count
	for i := 0; i < count; i++ {
		c.buf[i].Pages = binary.LittleEndian.Uint16(c.raw[o+2*i:])
	}
	o += 2 * count
	for i := 0; i < count; i++ {
		p := binary.LittleEndian.Uint32(c.raw[o+4*i:])
		if p > math.MaxInt32 {
			return dmtErrf("chunk %d: record %d: page %d out of range", c.chunks, i, p)
		}
		c.buf[i].Page = memsys.PageID(p)
	}

	c.prevTime = prev
	c.records += int64(count)
	c.chunks++
	return nil
}

// finish validates the end of the stream against the footer.
func (c *Cursor) finish() error {
	if _, err := c.br.ReadByte(); err != io.EOF {
		if err != nil {
			return err
		}
		return dmtErrf("trailing data after the end-of-chunks marker")
	}
	sum := c.r.sum
	if c.records != sum.Records || c.chunks != sum.Chunks {
		return dmtErrf("stream holds %d records in %d chunks, footer says %d in %d",
			c.records, c.chunks, sum.Records, sum.Chunks)
	}
	if c.records > 0 && c.prevTime != sim.Time(sum.Duration) {
		return dmtErrf("last record at %d, footer says %d", int64(c.prevTime), int64(sum.Duration))
	}
	if c.crc != c.r.crcWant {
		return dmtErrf("checksum mismatch: body %08x, footer %08x", c.crc, c.r.crcWant)
	}
	c.done = true
	c.buf, c.idx = nil, 0
	return nil
}

// FileReader is a Reader over an opened file. Close releases the file;
// Cursors must not be used after Close.
type FileReader struct {
	*Reader
	f *os.File
}

// OpenDMTFile opens a .dmt container on disk and parses its header and
// footer. The caller owns the returned reader and must Close it.
func OpenDMTFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	r, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &FileReader{Reader: r, f: f}, nil
}

// Close releases the underlying file.
func (r *FileReader) Close() error { return r.f.Close() }

// DecodeDMT parses a complete .dmt image into an in-memory Trace —
// the inverse of WriteDMT, for small traces and tests. Hour-scale
// traces should stream through a Cursor instead.
func DecodeDMT(data []byte) (*Trace, error) {
	r, err := NewReader(newByteReaderAt(data), int64(len(data)))
	if err != nil {
		return nil, err
	}
	sum := r.Summary()
	tr := &Trace{Name: sum.Name, Meta: sum.Meta}
	if sum.Records > 0 && sum.Records <= int64(len(data)) { // each record costs >= dmtMinRecordBytes on disk
		tr.Records = make([]Record, 0, sum.Records)
	}
	cur := r.Cursor()
	for {
		rec, ok := cur.Next()
		if !ok {
			break
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// newByteReaderAt adapts a byte slice to io.ReaderAt without the
// bytes package's Reader state.
type byteReaderAt []byte

func newByteReaderAt(b []byte) byteReaderAt { return byteReaderAt(b) }

func (b byteReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}
