// Package trace defines the memory-access trace model that drives the
// simulator, with binary and text codecs and summary statistics.
//
// A trace is a time-ordered sequence of records of two families:
// DMA transfers (network or disk, one or more whole pages) and
// processor accesses (single 64-byte cache lines). This mirrors the
// paper's Table 2: storage-server traces contain network and disk DMAs
// only; database-server traces add processor accesses.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// Kind distinguishes record families and directions.
type Kind uint8

const (
	// DMARead moves data from memory to a device (e.g. network send).
	DMARead Kind = iota
	// DMAWrite moves data from a device into memory (e.g. disk fill).
	DMAWrite
	// ProcRead is a processor load of one cache line.
	ProcRead
	// ProcWrite is a processor store of one cache line.
	ProcWrite
	numKinds
)

var kindNames = [numKinds]string{"dma-read", "dma-write", "proc-read", "proc-write"}

func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsDMA reports whether the record is a DMA transfer.
func (k Kind) IsDMA() bool { return k == DMARead || k == DMAWrite }

// Source identifies which device class initiated a DMA.
type Source uint8

const (
	SrcNetwork Source = iota
	SrcDisk
	SrcProcessor
	numSources
)

var sourceNames = [numSources]string{"net", "disk", "proc"}

func (s Source) String() string {
	if s < numSources {
		return sourceNames[s]
	}
	return fmt.Sprintf("Source(%d)", uint8(s))
}

// Record is one trace entry. For DMA kinds, Pages consecutive pages
// starting at Page are transferred over I/O bus Bus. For processor
// kinds, a single cache line within Page is accessed and Pages/Bus are
// ignored.
type Record struct {
	Time   sim.Time
	Kind   Kind
	Source Source
	Bus    uint8
	Pages  uint16
	Page   memsys.PageID
}

// Bytes returns the number of bytes the record moves, given the page
// size.
func (r Record) Bytes(pageBytes int) int64 {
	if r.Kind.IsDMA() {
		return int64(r.Pages) * int64(pageBytes)
	}
	return memsys.CacheLineBytes
}

// Meta carries workload-level context alongside a trace. The binary
// and text codecs do not serialize it; it exists so generators can hand
// the CP-Limit calibration (Section 5.1's off-line CP-Limit -> mu
// transform) the client-level quantities it needs.
type Meta struct {
	// MeanClientResponse is the average client-perceived response time
	// of the workload that produced this trace (0 when unknown).
	MeanClientResponse sim.Duration
	// TransfersPerClientRequest is the average number of DMA transfers
	// on the critical path of one client request (0 when unknown).
	TransfersPerClientRequest float64
}

// Trace is an in-memory, time-ordered sequence of records.
type Trace struct {
	Name    string
	Meta    Meta
	Records []Record
}

// Validate checks time ordering and structural sanity.
func (t *Trace) Validate() error {
	var last sim.Time
	for i, r := range t.Records {
		if r.Time < last {
			return fmt.Errorf("trace %q: record %d at %v before predecessor at %v",
				t.Name, i, r.Time, last)
		}
		last = r.Time
		if r.Kind >= numKinds {
			return fmt.Errorf("trace %q: record %d has invalid kind %d", t.Name, i, r.Kind)
		}
		if r.Kind.IsDMA() && r.Pages == 0 {
			return fmt.Errorf("trace %q: record %d is a zero-page DMA", t.Name, i)
		}
		if r.Page < 0 {
			return fmt.Errorf("trace %q: record %d has negative page", t.Name, i)
		}
	}
	return nil
}

// Duration returns the span covered by the trace.
func (t *Trace) Duration() sim.Duration {
	if len(t.Records) == 0 {
		return 0
	}
	return sim.Duration(t.Records[len(t.Records)-1].Time)
}

// SortByTime stably sorts records by timestamp, preserving the relative
// order of simultaneous records (generators emit logically ordered
// streams).
func (t *Trace) SortByTime() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].Time < t.Records[j].Time
	})
}

// Merge combines several traces into one time-ordered trace.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	n := 0
	for _, tr := range traces {
		n += len(tr.Records)
	}
	out.Records = make([]Record, 0, n)
	for _, tr := range traces {
		out.Records = append(out.Records, tr.Records...)
	}
	out.SortByTime()
	return out
}

// Clip returns a shallow copy containing only records with Time < end.
func (t *Trace) Clip(end sim.Time) *Trace {
	i := sort.Search(len(t.Records), func(i int) bool { return t.Records[i].Time >= end })
	return &Trace{Name: t.Name, Records: t.Records[:i]}
}

const (
	binaryMagic   = uint32(0x444d4154) // "DMAT"
	binaryVersion = uint16(1)
	recordSize    = 8 + 1 + 1 + 1 + 2 + 4 // Time,Kind,Source,Bus,Pages,Page
)

// WriteBinary encodes the trace in the compact binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [14]byte
	binary.LittleEndian.PutUint32(hdr[0:], binaryMagic)
	binary.LittleEndian.PutUint16(hdr[4:], binaryVersion)
	binary.LittleEndian.PutUint64(hdr[6:], uint64(len(t.Records)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [recordSize]byte
	for _, r := range t.Records {
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.Time))
		buf[8] = byte(r.Kind)
		buf[9] = byte(r.Source)
		buf[10] = r.Bus
		binary.LittleEndian.PutUint16(buf[11:], r.Pages)
		binary.LittleEndian.PutUint32(buf[13:], uint32(r.Page))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [14]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binaryMagic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[6:])
	const maxRecords = 1 << 31
	if n > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	tr := &Trace{Records: make([]Record, n)}
	var buf [recordSize]byte
	for i := range tr.Records {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		tr.Records[i] = Record{
			Time:   sim.Time(binary.LittleEndian.Uint64(buf[0:])),
			Kind:   Kind(buf[8]),
			Source: Source(buf[9]),
			Bus:    buf[10],
			Pages:  binary.LittleEndian.Uint16(buf[11:]),
			Page:   memsys.PageID(binary.LittleEndian.Uint32(buf[13:])),
		}
	}
	return tr, nil
}

// WriteText encodes the trace as one whitespace-separated line per
// record: time_ps kind source bus pages page.
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range t.Records {
		if _, err := fmt.Fprintf(bw, "%d %s %s %d %d %d\n",
			int64(r.Time), r.Kind, r.Source, r.Bus, r.Pages, int32(r.Page)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes the format written by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		var (
			ts                int64
			kindS, srcS       string
			busV, pagesV, pgV int64
		)
		if _, err := fmt.Sscanf(line, "%d %s %s %d %d %d",
			&ts, &kindS, &srcS, &busV, &pagesV, &pgV); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		k, err := parseKind(kindS)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		s, err := parseSource(srcS)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		tr.Records = append(tr.Records, Record{
			Time: sim.Time(ts), Kind: k, Source: s,
			Bus: uint8(busV), Pages: uint16(pagesV), Page: memsys.PageID(pgV),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

func parseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

func parseSource(s string) (Source, error) {
	for src := Source(0); src < numSources; src++ {
		if sourceNames[src] == s {
			return src, nil
		}
	}
	return 0, fmt.Errorf("unknown source %q", s)
}
