package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// testTrace builds a deterministic trace of n records exercising every
// kind/source combination, repeated timestamps and multi-page DMAs.
func testTrace(n int) *Trace {
	tr := &Trace{Name: "dmt-test"}
	tr.Meta = Meta{MeanClientResponse: sim.Millisecond, TransfersPerClientRequest: 1.5}
	t := sim.Time(0)
	for i := 0; i < n; i++ {
		if i%3 != 0 { // repeated timestamps every third record
			t = t.Add(sim.Duration(1 + i%977*13))
		}
		r := Record{Time: t}
		switch i % 4 {
		case 0:
			r.Kind, r.Source, r.Bus, r.Pages = DMARead, SrcNetwork, uint8(i%3), uint16(1+i%7)
		case 1:
			r.Kind, r.Source, r.Bus, r.Pages = DMAWrite, SrcDisk, uint8(i%5), 1
		case 2:
			r.Kind, r.Source = ProcRead, SrcProcessor
		case 3:
			r.Kind, r.Source = ProcWrite, SrcProcessor
		}
		r.Page = memsys.PageID(i * 37 % 4096)
		tr.Records = append(tr.Records, r)
	}
	return tr
}

func encodeDMT(t *testing.T, tr *Trace, opt WriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteDMT(&buf, opt); err != nil {
		t.Fatalf("WriteDMT: %v", err)
	}
	return buf.Bytes()
}

func TestDMTRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name    string
		records int
		chunk   int
	}{
		{"empty", 0, 0},
		{"single", 1, 0},
		{"chunk-of-one", 10, 1},
		{"chunk-of-three", 100, 3},
		{"exact-chunk-boundary", 12, 3},
		{"default-chunk", 5000, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := testTrace(tc.records)
			data := encodeDMT(t, tr, WriterOptions{ChunkRecords: tc.chunk})
			if !IsDMT(data) {
				t.Fatal("encoded container does not carry the magic")
			}
			got, err := DecodeDMT(data)
			if err != nil {
				t.Fatalf("DecodeDMT: %v", err)
			}
			if got.Name != tr.Name || got.Meta != tr.Meta {
				t.Fatalf("identity changed: %q %+v -> %q %+v", tr.Name, tr.Meta, got.Name, got.Meta)
			}
			if len(got.Records) != len(tr.Records) {
				t.Fatalf("record count %d -> %d", len(tr.Records), len(got.Records))
			}
			for i := range tr.Records {
				if got.Records[i] != tr.Records[i] {
					t.Fatalf("record %d: %+v -> %+v", i, tr.Records[i], got.Records[i])
				}
			}
		})
	}
}

func TestDMTSummary(t *testing.T) {
	tr := testTrace(100)
	data := encodeDMT(t, tr, WriterOptions{ChunkRecords: 7})
	r, err := NewReader(newByteReaderAt(data), int64(len(data)))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	sum := r.Summary()
	if sum.Name != "dmt-test" || sum.Records != 100 || sum.ChunkRecords != 7 {
		t.Fatalf("summary identity wrong: %+v", sum)
	}
	if want := int64(100/7) + 1; sum.Chunks != want {
		t.Fatalf("chunks = %d, want %d", sum.Chunks, want)
	}
	if sum.Duration != tr.Duration() {
		t.Fatalf("duration %v, want %v", sum.Duration, tr.Duration())
	}
	st := Analyze(tr)
	if sum.DMATransfers != st.DMATransfers || sum.DMAPages != st.DMAPages {
		t.Fatalf("footer DMA totals (%d, %d) disagree with Analyze (%d, %d)",
			sum.DMATransfers, sum.DMAPages, st.DMATransfers, st.DMAPages)
	}
	if sum.MeanTransferPages() != st.MeanTransferPages() {
		t.Fatalf("mean transfer pages %v != %v", sum.MeanTransferPages(), st.MeanTransferPages())
	}
	if sum.Meta != tr.Meta {
		t.Fatalf("meta %+v != %+v", sum.Meta, tr.Meta)
	}
}

func TestDMTWriterRejects(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, strings.Repeat("x", MaxTraceName+1), WriterOptions{}); err == nil {
		t.Fatal("oversized name accepted")
	}
	if _, err := NewWriter(&buf, "t", WriterOptions{ChunkRecords: MaxChunkRecords + 1}); err == nil {
		t.Fatal("oversized chunk accepted")
	}
	w, err := NewWriter(&buf, "t", WriterOptions{})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.Append(Record{Time: 100, Kind: DMARead, Pages: 1}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append(Record{Time: 50, Kind: DMARead, Pages: 1}); err == nil {
		t.Fatal("time disorder accepted")
	}
	if err := w.Append(Record{Time: 200, Kind: numKinds, Pages: 1}); err == nil {
		t.Fatal("invalid kind accepted")
	}
	if err := w.Append(Record{Time: 200, Kind: DMARead, Source: numSources, Pages: 1}); err == nil {
		t.Fatal("invalid source accepted")
	}
	if err := w.Append(Record{Time: 200, Kind: DMARead, Pages: 1, Page: -1}); err == nil {
		t.Fatal("negative page accepted")
	}
	// The writer must remain usable after rejections.
	if err := w.Append(Record{Time: 200, Kind: ProcRead, Source: SrcProcessor}); err != nil {
		t.Fatalf("Append after rejection: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := DecodeDMT(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeDMT: %v", err)
	}
	if len(got.Records) != 2 {
		t.Fatalf("container holds %d records, want the 2 accepted ones", len(got.Records))
	}
	if err := w.Append(Record{Time: 300}); err == nil {
		t.Fatal("append after Close accepted")
	}
}

// TestDMTRejectsMalformed flips, truncates and lies about bytes of a
// valid container and requires each mutation to be rejected loudly
// (wrapping ErrDMTFormat), never decoded quietly.
func TestDMTRejectsMalformed(t *testing.T) {
	tr := testTrace(50)
	data := encodeDMT(t, tr, WriterOptions{ChunkRecords: 8})

	mustFail := func(t *testing.T, b []byte, what string) {
		t.Helper()
		if _, err := DecodeDMT(b); err == nil {
			t.Fatalf("%s accepted", what)
		} else if !errors.Is(err, ErrDMTFormat) {
			t.Fatalf("%s: error %v does not wrap ErrDMTFormat", what, err)
		}
	}

	t.Run("truncation", func(t *testing.T) {
		// Every strict prefix must fail: truncation can never decode.
		for _, cut := range []int{0, 1, 4, 13, 14, 20, len(data) / 2, len(data) - 65, len(data) - 64, len(data) - 1} {
			if cut < 0 || cut >= len(data) {
				continue
			}
			mustFail(t, data[:cut], "truncated container")
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		b := bytes.Clone(data)
		b[0] = 'X'
		mustFail(t, b, "bad magic")
	})
	t.Run("version-skew", func(t *testing.T) {
		b := bytes.Clone(data)
		b[4] = 2
		_, err := DecodeDMT(b)
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("future version accepted or wrong error: %v", err)
		}
	})
	t.Run("corrupt-body", func(t *testing.T) {
		// Flip one payload byte: either a range check or the CRC fires.
		b := bytes.Clone(data)
		b[len(b)/2] ^= 0x40
		mustFail(t, b, "flipped body byte")
	})
	t.Run("corrupt-crc", func(t *testing.T) {
		b := bytes.Clone(data)
		b[len(b)-8] ^= 1 // crc field
		mustFail(t, b, "flipped checksum")
	})
	t.Run("footer-record-count-lie", func(t *testing.T) {
		b := bytes.Clone(data)
		b[len(b)-64]++ // records u64 low byte
		mustFail(t, b, "footer count lie")
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		// Extra bytes between the end marker and footer break the
		// stream/footer agreement.
		b := bytes.Clone(data[:len(data)-64])
		b = append(b, 0xEE)
		b = append(b, data[len(data)-64:]...)
		mustFail(t, b, "trailing garbage")
	})
	t.Run("header-length-lie", func(t *testing.T) {
		b := bytes.Clone(data)
		b[6] = 0 // headerLen < fixed+nameLen
		b[7] = 0
		mustFail(t, b, "undersized header length")
	})
}

// TestDMTHeaderForwardCompat pins the forward-compat rule: a version-1
// header longer than this reader knows about must be skipped via
// headerLen, not rejected.
func TestDMTHeaderForwardCompat(t *testing.T) {
	tr := testTrace(10)
	data := encodeDMT(t, tr, WriterOptions{ChunkRecords: 4})
	hdrLen := int(uint16(data[6]) | uint16(data[7])<<8)
	// Splice 4 unknown bytes after the name and bump headerLen.
	ext := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	b := append(bytes.Clone(data[:hdrLen]), ext...)
	b = append(b, data[hdrLen:]...)
	newLen := uint16(hdrLen + len(ext))
	b[6], b[7] = byte(newLen), byte(newLen>>8)
	// The checksum covers the header, so re-decoding must still verify:
	// recompute it the way a future writer would have.
	fixCRC(b)
	got, err := DecodeDMT(b)
	if err != nil {
		t.Fatalf("extended header rejected: %v", err)
	}
	if len(got.Records) != 10 || got.Name != tr.Name {
		t.Fatalf("extended-header decode lost data: %d records, name %q", len(got.Records), got.Name)
	}
}

// fixCRC recomputes the footer checksum over the body of a (possibly
// mutated) container image — the test's stand-in for a future writer.
func fixCRC(b []byte) {
	crc := crc32.Checksum(b[:len(b)-dmtFooterSize], crcTable)
	binary.LittleEndian.PutUint32(b[len(b)-8:len(b)-4], crc)
}

func TestDMTCursorIndependence(t *testing.T) {
	tr := testTrace(64)
	data := encodeDMT(t, tr, WriterOptions{ChunkRecords: 5})
	r, err := NewReader(newByteReaderAt(data), int64(len(data)))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	// Two interleaved cursors must each see the full stream.
	a, b := r.Cursor(), r.Cursor()
	for i := 0; ; i++ {
		ra, oka := a.Next()
		rb, okb := b.Next()
		if oka != okb {
			t.Fatalf("cursors diverged at %d", i)
		}
		if !oka {
			break
		}
		if ra != rb || ra != tr.Records[i] {
			t.Fatalf("record %d: cursor a %+v, b %+v, want %+v", i, ra, rb, tr.Records[i])
		}
	}
	if a.Err() != nil || b.Err() != nil {
		t.Fatalf("cursor errors: %v / %v", a.Err(), b.Err())
	}
}

// TestDMTCursorFlatMemory pins the bounded-memory contract: streaming a
// 16x longer trace through a cursor must not grow the cursor's
// allocations — chunk buffers are reused, records are never
// materialized.
func TestDMTCursorFlatMemory(t *testing.T) {
	scan := func(data []byte) (allocs float64) {
		r, err := NewReader(newByteReaderAt(data), int64(len(data)))
		if err != nil {
			t.Fatalf("NewReader: %v", err)
		}
		return testing.AllocsPerRun(1, func() {
			cur := r.Cursor()
			n := 0
			for {
				if _, ok := cur.Next(); !ok {
					break
				}
				n++
			}
			if cur.Err() != nil {
				t.Fatalf("cursor: %v", cur.Err())
			}
		})
	}
	const chunk = 512
	short := encodeDMT(t, testTrace(4*chunk), WriterOptions{ChunkRecords: chunk})
	long := encodeDMT(t, testTrace(64*chunk), WriterOptions{ChunkRecords: chunk})
	a, b := scan(short), scan(long)
	// A full scan allocates the bufio reader plus the two reusable chunk
	// buffers, independent of trace length. Allow slack for varint-width
	// growth of the raw buffer, but a 16x trace must not cost 2x allocs.
	if b > a*2+8 {
		t.Fatalf("allocations grew with trace length: %v for 4 chunks, %v for 64", a, b)
	}
}

// TestDMTSpecExample pins the worked example of docs/TRACE_FORMAT.md:
// the spec's three-record container must encode to exactly the bytes
// the document lists, and decode back to the same records. If this
// test fails, either the format changed (bump the version and rewrite
// the spec) or the document drifted.
func TestDMTSpecExample(t *testing.T) {
	tr := &Trace{
		Name: "ex",
		Meta: Meta{MeanClientResponse: sim.Millisecond, TransfersPerClientRequest: 1},
		Records: []Record{
			{Time: 0, Kind: DMAWrite, Source: SrcNetwork, Bus: 0, Pages: 2, Page: 7},
			{Time: 1500, Kind: DMARead, Source: SrcDisk, Bus: 1, Pages: 1, Page: 300},
			{Time: 1500, Kind: ProcRead, Source: SrcProcessor, Bus: 0, Pages: 0, Page: 7},
		},
	}
	want := []byte{
		// header
		0x44, 0x4d, 0x54, 0x63, 0x01, 0x00, 0x10, 0x00,
		0x02, 0x00, 0x00, 0x00, 0x02, 0x00, 0x65, 0x78,
		// chunk 1
		0x02, 0x00, 0x00, 0x00, 0x15, 0x00, 0x00, 0x00,
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x00, 0xdc, 0x0b, 0x01, 0x00, 0x00, 0x01, 0x00,
		0x01, 0x02, 0x00, 0x01, 0x00, 0x07, 0x00, 0x00,
		0x00, 0x2c, 0x01, 0x00, 0x00,
		// chunk 2
		0x01, 0x00, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x00,
		0xdc, 0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x00, 0x02, 0x02, 0x00, 0x00, 0x00, 0x07, 0x00,
		0x00, 0x00,
		// end marker
		0x00, 0x00, 0x00, 0x00,
		// footer
		0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0xdc, 0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x00, 0xca, 0x9a, 0x3b, 0x00, 0x00, 0x00, 0x00,
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x3f,
		0x24, 0x45, 0x25, 0x69,
		0x63, 0x54, 0x4d, 0x44,
	}
	got := encodeDMT(t, tr, WriterOptions{ChunkRecords: 2})
	if !bytes.Equal(got, want) {
		t.Fatalf("spec example encoding drifted from docs/TRACE_FORMAT.md\ngot  %x\nwant %x", got, want)
	}
	dec, err := DecodeDMT(want)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Name != tr.Name || dec.Meta != tr.Meta || len(dec.Records) != 3 {
		t.Fatalf("decoded %+v", dec)
	}
	for i, r := range dec.Records {
		if r != tr.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, r, tr.Records[i])
		}
	}
}

// TestDMTFileReader exercises the on-disk entry point end to end:
// write a container to a real file, open it with OpenDMTFile, check
// the footer summary, drain it with the Peek/Advance pair, and close.
func TestDMTFileReader(t *testing.T) {
	tr := testTrace(500)
	path := filepath.Join(t.TempDir(), "reader.dmt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteDMT(f, WriterOptions{ChunkRecords: 64}); err != nil {
		t.Fatalf("WriteDMT: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDMTFile(path)
	if err != nil {
		t.Fatalf("OpenDMTFile: %v", err)
	}
	sum := r.Summary()
	if sum.Records != int64(len(tr.Records)) || sum.Name != tr.Name || sum.Meta != tr.Meta {
		t.Fatalf("summary mismatch: %+v", sum)
	}
	cur := r.Cursor()
	for i, want := range tr.Records {
		got, ok := cur.Peek()
		if !ok {
			t.Fatalf("Peek: stream ended at record %d of %d", i, len(tr.Records))
		}
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
		cur.Advance()
	}
	if _, ok := cur.Peek(); ok {
		t.Fatal("Peek returned a record past the end")
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if _, err := OpenDMTFile(filepath.Join(t.TempDir(), "missing.dmt")); err == nil {
		t.Fatal("OpenDMTFile on a missing path did not error")
	}
}

// Advancing a drained cursor is a programming error and must panic
// rather than silently repeat or skip records.
func TestDMTAdvancePastEndPanics(t *testing.T) {
	data := encodeDMT(t, testTrace(3), WriterOptions{})
	r, err := NewReader(newByteReaderAt(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	cur := r.Cursor()
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Advance past end did not panic")
		}
	}()
	cur.Advance()
}
