package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Records: []Record{
			{Time: 0, Kind: DMAWrite, Source: SrcDisk, Bus: 1, Pages: 2, Page: 10},
			{Time: 1000, Kind: ProcRead, Source: SrcProcessor, Page: 10},
			{Time: 2000, Kind: DMARead, Source: SrcNetwork, Bus: 0, Pages: 1, Page: 11},
			{Time: 2000, Kind: ProcWrite, Source: SrcProcessor, Page: 12},
			{Time: 5000, Kind: DMARead, Source: SrcNetwork, Bus: 2, Pages: 4, Page: 10},
		},
	}
}

func TestKindAndSourceStrings(t *testing.T) {
	if DMARead.String() != "dma-read" || ProcWrite.String() != "proc-write" {
		t.Error("kind names wrong")
	}
	if SrcNetwork.String() != "net" || SrcDisk.String() != "disk" {
		t.Error("source names wrong")
	}
	if !DMARead.IsDMA() || !DMAWrite.IsDMA() || ProcRead.IsDMA() {
		t.Error("IsDMA wrong")
	}
	if Kind(9).String() == "" || Source(9).String() == "" {
		t.Error("unknown enums should still render")
	}
}

func TestRecordBytes(t *testing.T) {
	r := Record{Kind: DMAWrite, Pages: 3}
	if r.Bytes(8192) != 3*8192 {
		t.Errorf("DMA bytes = %d", r.Bytes(8192))
	}
	p := Record{Kind: ProcRead}
	if p.Bytes(8192) != 64 {
		t.Errorf("proc bytes = %d", p.Bytes(8192))
	}
}

func TestValidate(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Trace{Records: []Record{{Time: 10}, {Time: 5}}}
	if bad.Validate() == nil {
		t.Error("out-of-order trace accepted")
	}
	zero := &Trace{Records: []Record{{Time: 0, Kind: DMARead, Pages: 0}}}
	if zero.Validate() == nil {
		t.Error("zero-page DMA accepted")
	}
	badKind := &Trace{Records: []Record{{Time: 0, Kind: Kind(200), Pages: 1}}}
	if badKind.Validate() == nil {
		t.Error("invalid kind accepted")
	}
}

func TestDurationAndClip(t *testing.T) {
	tr := sampleTrace()
	if tr.Duration() != 5000 {
		t.Errorf("Duration = %v", tr.Duration())
	}
	clipped := tr.Clip(2000)
	if len(clipped.Records) != 2 {
		t.Errorf("Clip kept %d records, want 2", len(clipped.Records))
	}
	if (&Trace{}).Duration() != 0 {
		t.Error("empty trace duration")
	}
}

func TestMerge(t *testing.T) {
	a := &Trace{Records: []Record{
		{Time: 0, Kind: DMARead, Pages: 1, Page: 1},
		{Time: 100, Kind: DMARead, Pages: 1, Page: 2},
	}}
	b := &Trace{Records: []Record{
		{Time: 50, Kind: DMAWrite, Pages: 1, Page: 3},
		{Time: 100, Kind: ProcRead, Page: 4},
	}}
	m := Merge("m", a, b)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Records) != 4 {
		t.Fatalf("merged %d records", len(m.Records))
	}
	if m.Records[1].Page != 3 {
		t.Errorf("merge order wrong: %+v", m.Records)
	}
	// Stability: equal-time records keep source order (a before b).
	if m.Records[2].Page != 2 || m.Records[3].Page != 4 {
		t.Errorf("merge not stable: %+v", m.Records[2:])
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Records, tr.Records)
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 14))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	_ = sampleTrace().WriteBinary(&buf)
	truncated := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBinary(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated input accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Records, tr.Records) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Records, tr.Records)
	}
}

func TestTextErrors(t *testing.T) {
	if _, err := ReadText(strings.NewReader("not a record\n")); err == nil {
		t.Error("garbage line accepted")
	}
	if _, err := ReadText(strings.NewReader("1 dma-bogus net 0 1 2\n")); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := ReadText(strings.NewReader("1 dma-read mars 0 1 2\n")); err == nil {
		t.Error("bad source accepted")
	}
	got, err := ReadText(strings.NewReader("\n\n"))
	if err != nil || len(got.Records) != 0 {
		t.Error("blank lines should be skipped")
	}
}

// Property: binary round trip is lossless for arbitrary record
// contents.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		now := sim.Time(0)
		for i := 0; i < int(n); i++ {
			now = now.Add(sim.Duration(rng.Intn(10000)))
			tr.Records = append(tr.Records, Record{
				Time:   now,
				Kind:   Kind(rng.Intn(int(numKinds))),
				Source: Source(rng.Intn(int(numSources))),
				Bus:    uint8(rng.Intn(4)),
				Pages:  uint16(1 + rng.Intn(16)),
				Page:   memsys.PageID(rng.Intn(1 << 20)),
			})
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range got.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	tr := sampleTrace()
	s := Analyze(tr)
	if s.DMATransfers != 3 || s.NetTransfers != 2 || s.DiskTransfers != 1 {
		t.Errorf("transfer counts: %+v", s)
	}
	if s.ProcAccesses != 2 {
		t.Errorf("proc accesses = %d", s.ProcAccesses)
	}
	if s.DMAPages != 7 {
		t.Errorf("dma pages = %d", s.DMAPages)
	}
	// Pages touched: 10,11 (disk write), 11 (net), 10,11,12,13 (net 4p).
	if s.DistinctPages != 4 {
		t.Errorf("distinct pages = %d", s.DistinctPages)
	}
	if s.PopularityCount(10) != 2 || s.PopularityCount(11) != 3 {
		t.Errorf("popularity: p10=%d p11=%d", s.PopularityCount(10), s.PopularityCount(11))
	}
	if got := s.MeanTransferPages(); got != 7.0/3.0 {
		t.Errorf("mean transfer pages = %g", got)
	}
	if s.ProcAccessesPerTransfer() != 2.0/3.0 {
		t.Errorf("proc per transfer = %g", s.ProcAccessesPerTransfer())
	}
	if s.String() == "" {
		t.Error("empty summary")
	}
}

func TestStatsRates(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Time: 0, Kind: DMARead, Source: SrcNetwork, Pages: 1},
		{Time: sim.Time(1 * sim.Millisecond), Kind: DMARead, Source: SrcNetwork, Pages: 1},
	}}
	s := Analyze(tr)
	if got := s.TransfersPerMs(); got != 2.0 {
		t.Errorf("TransfersPerMs = %g, want 2", got)
	}
}

func TestPopularityCDF(t *testing.T) {
	// 4 pages with counts 70, 20, 9, 1.
	tr := &Trace{}
	counts := map[memsys.PageID]int{0: 70, 1: 20, 2: 9, 3: 1}
	now := sim.Time(0)
	for p, c := range counts {
		for i := 0; i < c; i++ {
			tr.Records = append(tr.Records, Record{Time: now, Kind: DMARead, Pages: 1, Page: p})
			now++
		}
	}
	s := Analyze(tr)
	pts := s.PopularityCDF(4)
	if len(pts) != 4 {
		t.Fatalf("got %d points: %+v", len(pts), pts)
	}
	// Top 25% of pages (1 page) should have 70% of accesses.
	if pts[0].PageFrac != 0.25 || pts[0].AccessFrac != 0.70 {
		t.Errorf("first point = %+v", pts[0])
	}
	last := pts[len(pts)-1]
	if last.PageFrac != 1.0 || last.AccessFrac != 1.0 {
		t.Errorf("last point = %+v", last)
	}
	if got := s.AccessShareOfTopPages(0.25); got != 0.70 {
		t.Errorf("top-25%% share = %g", got)
	}
	if got := s.AccessShareOfTopPages(0.5); got != 0.90 {
		t.Errorf("top-50%% share = %g", got)
	}
}

// Property: the popularity CDF is monotone, ends at (1,1), and is
// concave-ish (access fraction >= page fraction everywhere since pages
// are sorted by decreasing popularity).
func TestQuickCDFInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{}
		now := sim.Time(0)
		nPages := 1 + rng.Intn(50)
		for i := 0; i < 500; i++ {
			now++
			tr.Records = append(tr.Records, Record{
				Time: now, Kind: DMARead, Pages: 1,
				Page: memsys.PageID(rng.Intn(nPages)),
			})
		}
		s := Analyze(tr)
		pts := s.PopularityCDF(10)
		if len(pts) == 0 {
			return false
		}
		prev := CDFPoint{}
		for _, p := range pts {
			if p.PageFrac < prev.PageFrac || p.AccessFrac < prev.AccessFrac {
				return false
			}
			if p.AccessFrac < p.PageFrac-1e-9 {
				return false
			}
			prev = p
		}
		last := pts[len(pts)-1]
		return last.PageFrac == 1 && last.AccessFrac == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInterArrivalCV(t *testing.T) {
	// Perfectly periodic arrivals: CV ~ 0.
	periodic := &Trace{}
	for i := 0; i < 100; i++ {
		periodic.Records = append(periodic.Records, Record{
			Time: sim.Time(i) * sim.Time(sim.Microsecond), Kind: DMARead, Pages: 1,
		})
	}
	if cv := Analyze(periodic).InterArrivalCV(); cv > 0.01 {
		t.Fatalf("periodic CV = %g", cv)
	}
	// Bursty arrivals (pairs): CV near 1.
	bursty := &Trace{}
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		gap := sim.Duration(10 * sim.Nanosecond)
		if i%2 == 0 {
			gap = 2 * sim.Microsecond
		}
		now = now.Add(gap)
		bursty.Records = append(bursty.Records, Record{Time: now, Kind: DMARead, Pages: 1})
	}
	if cv := Analyze(bursty).InterArrivalCV(); cv < 0.5 {
		t.Fatalf("bursty CV = %g", cv)
	}
	if (&Stats{}).InterArrivalCV() != 0 {
		t.Fatal("empty stats CV")
	}
}

func TestChipLoadCV(t *testing.T) {
	// All traffic on pages mapping to one chip: very skewed.
	skewed := &Trace{}
	for i := 0; i < 64; i++ {
		skewed.Records = append(skewed.Records, Record{
			Time: sim.Time(i), Kind: DMARead, Pages: 1, Page: memsys.PageID(i * 32),
		})
	}
	s := Analyze(skewed)
	if cv := s.ChipLoadCV(32); cv < 3 {
		t.Fatalf("one-chip load CV = %g, want >> 1", cv)
	}
	// Uniform spread: CV ~ 0.
	uniform := &Trace{}
	for i := 0; i < 320; i++ {
		uniform.Records = append(uniform.Records, Record{
			Time: sim.Time(i), Kind: DMARead, Pages: 1, Page: memsys.PageID(i),
		})
	}
	if cv := Analyze(uniform).ChipLoadCV(32); cv > 0.01 {
		t.Fatalf("uniform load CV = %g", cv)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero chips accepted")
		}
	}()
	s.ChipLoadCV(0)
}
