package energy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultTech is the technology the empty string resolves to: the
// paper's RDRAM Table 1 model, preserving the zero-value-means-paper-
// defaults contract of the public API.
const DefaultTech = "rdram"

var (
	regMu    sync.RWMutex
	builders = map[string]func() *Model{} // canonical name -> builder
	aliases  = map[string]string{}        // alias -> canonical name
)

// Register adds a technology backend under a canonical name. The
// builder must return a fresh, valid Model on every call (Lookup hands
// each caller its own instance, so simulations never share mutable
// model state). Registering a duplicate name or an invalid model
// panics: both are programmer errors at init time.
func Register(name string, build func() *Model) {
	name = normalizeTech(name)
	if name == "" {
		panic("energy: Register with empty technology name")
	}
	m := build()
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("energy: Register(%q): %v", name, err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := builders[name]; dup {
		panic(fmt.Sprintf("energy: Register(%q): already registered", name))
	}
	if _, dup := aliases[name]; dup {
		panic(fmt.Sprintf("energy: Register(%q): name already registered as an alias", name))
	}
	builders[name] = build
}

// RegisterAlias makes alias resolve to an already-registered canonical
// technology. Aliases do not appear in Techs.
func RegisterAlias(alias, canonical string) {
	alias, canonical = normalizeTech(alias), normalizeTech(canonical)
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := builders[canonical]; !ok {
		panic(fmt.Sprintf("energy: RegisterAlias(%q, %q): unknown canonical name", alias, canonical))
	}
	if _, dup := builders[alias]; dup {
		panic(fmt.Sprintf("energy: RegisterAlias(%q): already registered as a technology", alias))
	}
	if _, dup := aliases[alias]; dup {
		panic(fmt.Sprintf("energy: RegisterAlias(%q): already registered as an alias", alias))
	}
	aliases[alias] = canonical
}

// Lookup resolves a technology name to a fresh Model instance. The
// empty string means DefaultTech (the paper's RDRAM model). Names are
// trimmed and case-normalized. Unknown names error loudly, listing
// every registered technology.
func Lookup(name string) (*Model, error) {
	key := normalizeTech(name)
	if key == "" {
		key = DefaultTech
	}
	regMu.RLock()
	if canon, ok := aliases[key]; ok {
		key = canon
	}
	build, ok := builders[key]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("energy: unknown memory technology %q (registered: %s)",
			name, strings.Join(Techs(), ", "))
	}
	return build(), nil
}

// Techs returns the sorted canonical names of every registered
// technology backend.
func Techs() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func normalizeTech(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}
