package energy

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"dmamem/internal/sim"
)

// TestSpecModelMatchesLegacyArithmetic holds the Spec→Model conversion
// to bit-identity: every float the simulator reads from the model —
// resident powers, transition rows, wake latencies, break-even
// horizons — must equal the legacy Spec accessor for both calibrated
// specs, with no tolerance.
func TestSpecModelMatchesLegacyArithmetic(t *testing.T) {
	for _, spec := range []*Spec{RDRAM1600(), DDR400()} {
		m := spec.Model()
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: converted model invalid: %v", spec.Name, err)
		}
		if m.Name != spec.Name || m.CycleTime != spec.CycleTime || m.Bandwidth != spec.Bandwidth {
			t.Fatalf("%s: identity fields drifted: %+v", spec.Name, m)
		}
		if m.NumStates() != 4 || m.Deepest() != Powerdown || m.MicroNap != Nap {
			t.Fatalf("%s: state machine shape drifted", spec.Name)
		}
		for s := Active; s <= Powerdown; s++ {
			if m.Power(s) != spec.Power(s) {
				t.Errorf("%s: Power(%v) %g != %g", spec.Name, s, m.Power(s), spec.Power(s))
			}
			if m.WakeLatencyOf(s) != spec.WakeLatencyOf(s) {
				t.Errorf("%s: WakeLatencyOf(%v) drifted", spec.Name, s)
			}
			if m.BreakEvenOf(s) != spec.BreakEvenOf(s) {
				t.Errorf("%s: BreakEvenOf(%v) %v != %v", spec.Name, s, m.BreakEvenOf(s), spec.BreakEvenOf(s))
			}
			if s == Active {
				continue
			}
			if m.DownTo(s) != spec.DownTo(s) {
				t.Errorf("%s: DownTo(%v) drifted", spec.Name, s)
			}
			if m.UpFrom(s) != spec.UpFrom(s) {
				t.Errorf("%s: UpFrom(%v) drifted", spec.Name, s)
			}
			// The chain semantics: demoting from any shallower state
			// into s charges the same entry as demoting from active.
			for from := Active; from < s; from++ {
				if m.TransitionFor(from, s) != spec.DownTo(s) {
					t.Errorf("%s: TransitionFor(%v,%v) != DownTo(%v)", spec.Name, from, s, s)
				}
			}
		}
	}
}

// TestRegistryRDRAMIsSpecModel pins the registry default to the exact
// converted legacy spec, which is what makes the zero-value public API
// bit-identical to the pre-registry simulator.
func TestRegistryRDRAMIsSpecModel(t *testing.T) {
	m, err := Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, RDRAM1600().Model()) {
		t.Fatalf("default lookup differs from the converted RDRAM spec:\n%+v", m)
	}
	for _, name := range []string{"rdram", " RDRAM ", "rdram-1600"} {
		got, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("Lookup(%q) differs from the default", name)
		}
	}
	// Fresh instances per call: mutating one caller's model must not
	// leak into the next.
	a, _ := Lookup("rdram")
	a.States[0].Power = 99
	b, _ := Lookup("rdram")
	if b.States[0].Power == 99 {
		t.Fatal("Lookup hands out shared model instances")
	}
}

// TestLookupUnknownEnumerates pins the unknown-technology error: it
// names the bad input and lists every registered backend.
func TestLookupUnknownEnumerates(t *testing.T) {
	_, err := Lookup("sram")
	if err == nil {
		t.Fatal("unknown technology accepted")
	}
	if !strings.Contains(err.Error(), `"sram"`) || !strings.Contains(err.Error(), "memory technology") {
		t.Errorf("error %q does not name the bad technology", err)
	}
	for _, name := range Techs() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

// TestTechsRegistry pins the shipped backend set and its ordering.
func TestTechsRegistry(t *testing.T) {
	want := []string{"ddr3-1600", "ddr4-2400", "ddr400", "lpddr4", "rdram"}
	if got := Techs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Techs() = %v, want %v", got, want)
	}
	// Aliases resolve but stay out of the enumeration.
	for alias, canonical := range map[string]string{
		"rdram-1600": "rdram", "ddr": "ddr400", "lpddr4-3200": "lpddr4",
	} {
		am, err := Lookup(alias)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", alias, err)
		}
		cm, err := Lookup(canonical)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(am, cm) {
			t.Errorf("alias %q does not resolve to %q", alias, canonical)
		}
	}
}

// TestShippedModelsInvariants validates every registered backend and
// holds it to the physics every policy depends on: strictly decreasing
// resident powers, positive wake latencies that grow with depth, and
// break-even horizons at least the transition round trip.
func TestShippedModelsInvariants(t *testing.T) {
	for _, name := range Techs() {
		m, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			if m.NumStates() < 2 {
				t.Fatalf("%d states", m.NumStates())
			}
			for s := State(1); int(s) < m.NumStates(); s++ {
				if m.Power(s) >= m.Power(s-1) {
					t.Errorf("power of %s not below %s", m.StateName(s), m.StateName(s-1))
				}
				if m.WakeLatencyOf(s) <= 0 {
					t.Errorf("wake latency of %s is %v", m.StateName(s), m.WakeLatencyOf(s))
				}
				if s > 1 && m.WakeLatencyOf(s) < m.WakeLatencyOf(s-1) {
					t.Errorf("wake from %s faster than from %s", m.StateName(s), m.StateName(s-1))
				}
				be := m.BreakEvenOf(s)
				if round := m.DownTo(s).Time + m.UpFrom(s).Time; be < round {
					t.Errorf("break-even of %s (%v) below the round trip (%v)", m.StateName(s), be, round)
				}
			}
			if mn := m.MicroNap; int(mn) < 1 || int(mn) >= m.NumStates() {
				t.Errorf("micro-nap state %d out of range", mn)
			}
		})
	}
	if n, _ := Lookup("ddr4-2400"); n.NumStates() != 5 {
		t.Errorf("ddr4-2400 has %d states, want 5", n.NumStates())
	}
	if n, _ := Lookup("lpddr4"); n.NumStates() != 3 {
		t.Errorf("lpddr4 has %d states, want 3", n.NumStates())
	}
}

// TestStateIndexAndNames covers the name↔index mapping consumers use
// to resolve StaticMode strings and report keys.
func TestStateIndexAndNames(t *testing.T) {
	m, err := Lookup("ddr4-2400")
	if err != nil {
		t.Fatal(err)
	}
	names := m.StateNames()
	if len(names) != m.NumStates() || names[0] != "active" {
		t.Fatalf("StateNames() = %v", names)
	}
	for i, name := range names {
		s, err := m.StateIndex("  " + strings.ToUpper(name) + " ")
		if err != nil || s != State(i) {
			t.Errorf("StateIndex(%q) = %v, %v; want %d", name, s, err, i)
		}
		if m.StateName(State(i)) != name {
			t.Errorf("StateName(%d) = %q", i, m.StateName(State(i)))
		}
	}
	if _, err := m.StateIndex("nap"); err == nil ||
		!strings.Contains(err.Error(), "self-refresh") {
		t.Errorf("unknown-state error does not enumerate states: %v", err)
	}
	if got := m.StateName(State(42)); got != "State(42)" {
		t.Errorf("out-of-range StateName = %q", got)
	}
}

// TestModelValidateRejections covers the rejection paths one by one,
// so a loosened check fails here and not in a downstream simulation.
func TestModelValidateRejections(t *testing.T) {
	valid := func() *Model { return RDRAM1600().Model() }
	cases := []struct {
		name string
		mut  func(*Model)
		want string
	}{
		{"no name", func(m *Model) { m.Name = "" }, "without a name"},
		{"bad cycle", func(m *Model) { m.CycleTime = 0 }, "cycle"},
		{"bad bandwidth", func(m *Model) { m.Bandwidth = math.Inf(1) }, "bandwidth"},
		{"one state", func(m *Model) { m.States = m.States[:1] }, "states"},
		{"unnamed state", func(m *Model) { m.States[2].Name = "" }, "no name"},
		{"upper-case state", func(m *Model) { m.States[1].Name = "Standby" }, "lower-case"},
		{"duplicate state", func(m *Model) { m.States[2].Name = "standby" }, "duplicate"},
		{"nan power", func(m *Model) { m.States[1].Power = math.NaN() }, "power"},
		{"non-monotone power", func(m *Model) { m.States[3].Power = 1 }, "not below"},
		{"ragged matrix", func(m *Model) { m.Trans = m.Trans[:2] }, "matrix"},
		{"ragged row", func(m *Model) { m.Trans[1] = m.Trans[1][:2] }, "entries"},
		{"negative transition power", func(m *Model) { m.Trans[0][1].Power = -1 }, "power"},
		{"zero demotion latency", func(m *Model) { m.Trans[0][3].Time = 0 }, "non-positive latency"},
		{"zero wake latency", func(m *Model) { m.Trans[3][0].Time = 0 }, "non-positive latency"},
		{"negative stray latency", func(m *Model) { m.Trans[2][1].Time = -1 }, "negative latency"},
		{"micro-nap active", func(m *Model) { m.MicroNap = Active }, "micro-nap"},
		{"micro-nap deep", func(m *Model) { m.MicroNap = State(9) }, "micro-nap"},
		{"threshold count", func(m *Model) { m.Thresholds = m.Thresholds[:1] }, "thresholds"},
		{"zero threshold", func(m *Model) { m.Thresholds[1] = 0 }, "threshold"},
	}
	for _, tc := range cases {
		m := valid()
		tc.mut(m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("control: %v", err)
	}
}

// TestRegisterGuards pins the init-time panics: duplicate names,
// aliases shadowing technologies, and invalid models are refused.
func TestRegisterGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate Register", func() { Register("rdram", newRDRAMModel) })
	mustPanic("empty Register", func() { Register("  ", newRDRAMModel) })
	mustPanic("invalid model", func() { Register("broken", func() *Model { return &Model{} }) })
	mustPanic("alias shadowing tech", func() { RegisterAlias("rdram", "ddr400") })
	mustPanic("duplicate alias", func() { RegisterAlias("ddr", "ddr400") })
	mustPanic("alias to unknown", func() { RegisterAlias("x", "sram") })
	mustPanic("Register over alias", func() { Register("ddr", newDDR400Model) })
}

// TestModelAccessorPanics pins the out-of-range panics consumers rely
// on to catch controller bugs immediately rather than silently reading
// a zero transition.
func TestModelAccessorPanics(t *testing.T) {
	m := RDRAM1600().Model()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Power out of range", func() { m.Power(State(9)) })
	mustPanic("TransitionFor out of range", func() { m.TransitionFor(0, State(9)) })
	mustPanic("DownTo active", func() { m.DownTo(Active) })
	mustPanic("UpFrom active", func() { m.UpFrom(Active) })
	if m.WakeLatencyOf(Active) != 0 || m.BreakEvenOf(Active) != 0 {
		t.Fatal("active state has nonzero wake/break-even")
	}
}

// TestChainModelShape pins ChainModel's matrix construction: down[j]
// fills every demotion into j (the legacy chain semantics), up[i]
// fills the wake column, everything else stays zero.
func TestChainModelShape(t *testing.T) {
	states := []StateSpec{{"active", 0.4}, {"doze", 0.2}, {"sleep", 0.1}}
	down := []Transition{{}, {Power: 0.2, Time: 10}, {Power: 0.1, Time: 20}}
	up := []Transition{{}, {Power: 0.4, Time: 100}, {Power: 0.4, Time: 200}}
	m := ChainModel("toy", sim.Nanosecond, 1e9, states, down, up, 1, []sim.Duration{50, 500})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := Transition{}
			switch {
			case j > i:
				want = down[j]
			case j == 0 && i > 0:
				want = up[i]
			}
			if got := m.Trans[i][j]; got != want {
				t.Errorf("Trans[%d][%d] = %+v, want %+v", i, j, got, want)
			}
		}
	}
}
