package energy

import (
	"testing"
	"testing/quick"

	"dmamem/internal/sim"
)

func TestRDRAMSpecMatchesTable1(t *testing.T) {
	s := RDRAM1600()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Power(Active) != ActivePower || s.Power(Powerdown) != PowerdownPower {
		t.Fatal("spec powers diverge from Table 1 constants")
	}
	if s.UpFrom(Powerdown) != PowerdownToActive || s.DownTo(Nap) != ActiveToNap {
		t.Fatal("spec transitions diverge from Table 1 constants")
	}
	if s.Bandwidth != 3.2e9 || s.CycleTime != MemoryCycle {
		t.Fatalf("bandwidth %g cycle %v", s.Bandwidth, s.CycleTime)
	}
	// Spec-based break-even agrees with the package function.
	for _, st := range []State{Standby, Nap, Powerdown} {
		if s.BreakEvenOf(st) != BreakEven(st) {
			t.Fatalf("break-even of %v diverges", st)
		}
	}
}

func TestDDRSpecSane(t *testing.T) {
	s := DDR400()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// DDR is slower and its active power is higher relative to its
	// bandwidth; its deepest state exits in ~1 us (200 x 5 ns), far
	// cheaper than RDRAM's 6 us powerdown exit.
	if s.Bandwidth >= RDRAM1600().Bandwidth {
		t.Fatal("DDR400 should be slower than RDRAM1600")
	}
	if got := s.WakeLatencyOf(Powerdown); got != 1000*sim.Nanosecond {
		t.Fatalf("self-refresh exit = %v, want 1us", got)
	}
	if s.WakeLatencyOf(Active) != 0 {
		t.Fatal("active wake latency should be 0")
	}
	// Break-evens ordered by depth.
	if !(s.BreakEvenOf(Standby) < s.BreakEvenOf(Nap) &&
		s.BreakEvenOf(Nap) < s.BreakEvenOf(Powerdown)) {
		t.Fatal("DDR break-even ordering violated")
	}
}

func TestSpecValidateRejectsBadTables(t *testing.T) {
	bad := RDRAM1600()
	bad.Name = ""
	if bad.Validate() == nil {
		t.Error("nameless spec accepted")
	}
	bad = RDRAM1600()
	bad.Powers[Nap] = bad.Powers[Standby] + 1
	if bad.Validate() == nil {
		t.Error("non-monotone powers accepted")
	}
	bad = RDRAM1600()
	bad.Up[Nap].Time = 0
	if bad.Validate() == nil {
		t.Error("missing transition accepted")
	}
	bad = RDRAM1600()
	bad.Bandwidth = 0
	if bad.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestSpecPanics(t *testing.T) {
	s := RDRAM1600()
	for _, f := range []func(){
		func() { s.Power(State(9)) },
		func() { s.DownTo(Active) },
		func() { s.UpFrom(Active) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: for both specs, sleeping at the break-even gap never costs
// more than idling in Active.
func TestQuickSpecBreakEven(t *testing.T) {
	specs := []*Spec{RDRAM1600(), DDR400()}
	f := func(pickSpec, pickState uint8) bool {
		s := specs[int(pickSpec)%len(specs)]
		st := State(1 + pickState%3)
		be := s.BreakEvenOf(st)
		idleJ := s.Power(Active) * be.Seconds()
		down, up := s.DownTo(st), s.UpFrom(st)
		resid := be - down.Time - up.Time
		if resid < 0 {
			return false
		}
		sleepJ := down.Power*down.Time.Seconds() +
			s.Power(st)*resid.Seconds() + up.Power*up.Time.Seconds()
		return sleepJ <= idleJ+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
