package energy

import (
	"fmt"
	"math"
	"strings"

	"dmamem/internal/sim"
)

// StateSpec names one power state of a memory technology and gives its
// resident power draw. States[0] is always the operating state in which
// the device serves requests; deeper indices are progressively
// lower-power states with progressively more expensive exits.
type StateSpec struct {
	// Name identifies the state ("active", "self-refresh", ...). Names
	// are unique within a model and are the keys of the per-state
	// report breakdown.
	Name string
	// Power is the resident draw in watts.
	Power float64
}

// Model is a pluggable DRAM power-state machine: the backend interface
// behind `Simulation.MemoryTech`. Unlike the fixed 4-state Spec it
// supports technologies with any number of states — DDR4's five-deep
// active-power-down / precharge-power-down / self-refresh /
// maximum-power-saving chain as well as LPDDR4's three-state machine —
// each with its own transition costs and default demotion thresholds.
//
// Calibrated instances ship through the registry (Register / Lookup /
// Techs); the zero-configuration path resolves to the paper's RDRAM
// Table 1 model and is bit-identical to the legacy Spec arithmetic.
type Model struct {
	// Name of the part this model was calibrated against
	// ("rdram-1600", "ddr4-2400", ...).
	Name string
	// CycleTime of the device clock.
	CycleTime sim.Duration
	// Bandwidth is the sustained transfer rate in bytes/s of one chip
	// (rank); it sets the default chip bandwidth of the geometry.
	Bandwidth float64
	// States, ordered from the operating state (index 0) to the
	// deepest low-power state. Powers must decrease strictly with
	// depth.
	States []StateSpec
	// Trans[from][to] is the transition taken when moving from state
	// `from` to state `to`. Only downward hops (to > from) and wakes
	// (to == 0) are ever taken by the controller; other entries may be
	// zero. Trans[i][i] is unused.
	Trans [][]Transition
	// MicroNap is the state the controller models burst-gap micro-naps
	// in (the paper's "nap between DMA bursts" refinement). It must be
	// a low-power state (index >= 1).
	MicroNap State
	// Thresholds is the model's default demotion chain: Thresholds[i]
	// is the idle time after which a chip in state i is demoted to
	// state i+1, so len(Thresholds) == len(States)-1. Policies may
	// override it; the default Dynamic policy uses it as-is.
	Thresholds []sim.Duration
}

// NumStates returns the number of states in the machine.
func (m *Model) NumStates() int { return len(m.States) }

// Deepest returns the lowest-power state.
func (m *Model) Deepest() State { return State(len(m.States) - 1) }

// StateName returns the name of state s, or "State(n)" when out of
// range (mirrors State.String for the legacy enum).
func (m *Model) StateName(s State) string {
	if int(s) < len(m.States) {
		return m.States[s].Name
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// StateNames returns the state names in depth order.
func (m *Model) StateNames() []string {
	names := make([]string, len(m.States))
	for i, st := range m.States {
		names[i] = st.Name
	}
	return names
}

// StateIndex resolves a state name (case-insensitive, trimmed) to its
// index. Unknown names error loudly, listing the model's states.
func (m *Model) StateIndex(name string) (State, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for i, st := range m.States {
		if st.Name == want {
			return State(i), nil
		}
	}
	return 0, fmt.Errorf("energy: model %s has no state %q (states: %s)",
		m.Name, name, strings.Join(m.StateNames(), ", "))
}

// Power returns the resident power of state s in watts.
func (m *Model) Power(s State) float64 {
	if int(s) >= len(m.States) {
		panic("energy: model " + m.Name + " has no state " + s.String())
	}
	return m.States[s].Power
}

// TransitionFor returns the transition from state `from` to state `to`.
func (m *Model) TransitionFor(from, to State) Transition {
	if int(from) >= len(m.States) || int(to) >= len(m.States) {
		panic(fmt.Sprintf("energy: model %s has no transition %v->%v", m.Name, from, to))
	}
	return m.Trans[from][to]
}

// DownTo returns the transition entering low-power state s from the
// operating state (the legacy Spec.DownTo row).
func (m *Model) DownTo(s State) Transition {
	if s == Active || int(s) >= len(m.States) {
		panic("energy: model " + m.Name + " has no down transition to " + s.String())
	}
	return m.Trans[Active][s]
}

// UpFrom returns the transition from low-power state s back to the
// operating state.
func (m *Model) UpFrom(s State) Transition {
	if s == Active || int(s) >= len(m.States) {
		panic("energy: model " + m.Name + " has no up transition from " + s.String())
	}
	return m.Trans[s][Active]
}

// WakeLatencyOf returns the delay before a chip in state s can serve.
func (m *Model) WakeLatencyOf(s State) sim.Duration {
	if s == Active {
		return 0
	}
	return m.UpFrom(s).Time
}

// BreakEvenOf returns the minimum idle period for which entering state
// s from the operating state saves energy under this model. The
// arithmetic is identical to the legacy Spec.BreakEvenOf.
func (m *Model) BreakEvenOf(s State) sim.Duration {
	if s == Active {
		return 0
	}
	down, up := m.DownTo(s), m.UpFrom(s)
	overheadJ := down.Power*down.Time.Seconds() + up.Power*up.Time.Seconds()
	resid := m.Power(s)
	num := overheadJ - resid*(down.Time.Seconds()+up.Time.Seconds())
	den := m.Power(Active) - resid
	be := sim.FromSeconds(num / den)
	if transit := down.Time + up.Time; be < transit {
		be = transit
	}
	return be
}

// finite rejects NaN and ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate reports a descriptive error for inconsistent models: NaN or
// infinite powers, non-monotone power ordering, zero or negative exit
// latencies, a malformed transition matrix, duplicate state names, a
// MicroNap state out of range, or a demotion chain that does not match
// the state count.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("energy: model without a name")
	}
	if !finite(m.Bandwidth) || m.CycleTime <= 0 || m.Bandwidth <= 0 {
		return fmt.Errorf("energy: model %s: cycle %v, bandwidth %g", m.Name, m.CycleTime, m.Bandwidth)
	}
	if len(m.States) < 2 {
		return fmt.Errorf("energy: model %s: %d states; need the operating state plus at least one low-power state", m.Name, len(m.States))
	}
	seen := make(map[string]bool, len(m.States))
	for i, st := range m.States {
		if st.Name == "" {
			return fmt.Errorf("energy: model %s: state %d has no name", m.Name, i)
		}
		if st.Name != strings.ToLower(st.Name) {
			return fmt.Errorf("energy: model %s: state name %q must be lower-case", m.Name, st.Name)
		}
		if seen[st.Name] {
			return fmt.Errorf("energy: model %s: duplicate state name %q", m.Name, st.Name)
		}
		seen[st.Name] = true
		if !finite(st.Power) || st.Power <= 0 {
			return fmt.Errorf("energy: model %s: power of %s is %g", m.Name, st.Name, st.Power)
		}
		if i > 0 && st.Power >= m.States[i-1].Power {
			return fmt.Errorf("energy: model %s: %s power (%g W) not below %s (%g W)",
				m.Name, st.Name, st.Power, m.States[i-1].Name, m.States[i-1].Power)
		}
	}
	if len(m.Trans) != len(m.States) {
		return fmt.Errorf("energy: model %s: transition matrix has %d rows for %d states", m.Name, len(m.Trans), len(m.States))
	}
	for i, row := range m.Trans {
		if len(row) != len(m.States) {
			return fmt.Errorf("energy: model %s: transition row %s has %d entries for %d states",
				m.Name, m.States[i].Name, len(row), len(m.States))
		}
		for j, tr := range row {
			if !finite(tr.Power) || tr.Power < 0 {
				return fmt.Errorf("energy: model %s: transition %s->%s power is %g",
					m.Name, m.States[i].Name, m.States[j].Name, tr.Power)
			}
			// Entries the controller actually takes: demotions and
			// wakes need a real (positive) latency.
			if (j > i || (j == 0 && i > 0)) && tr.Time <= 0 {
				return fmt.Errorf("energy: model %s: transition %s->%s has non-positive latency %v",
					m.Name, m.States[i].Name, m.States[j].Name, tr.Time)
			}
			if tr.Time < 0 {
				return fmt.Errorf("energy: model %s: transition %s->%s has negative latency %v",
					m.Name, m.States[i].Name, m.States[j].Name, tr.Time)
			}
		}
	}
	if m.MicroNap < 1 || int(m.MicroNap) >= len(m.States) {
		return fmt.Errorf("energy: model %s: micro-nap state %d out of range [1, %d)", m.Name, m.MicroNap, len(m.States))
	}
	if len(m.Thresholds) != len(m.States)-1 {
		return fmt.Errorf("energy: model %s: %d demotion thresholds for %d states (need %d)",
			m.Name, len(m.Thresholds), len(m.States), len(m.States)-1)
	}
	for i, th := range m.Thresholds {
		if th <= 0 {
			return fmt.Errorf("energy: model %s: threshold %s->%s is %v",
				m.Name, m.States[i].Name, m.States[i+1].Name, th)
		}
	}
	return nil
}

// ChainModel assembles a Model with the legacy chain semantics the
// 4-state Spec used: demoting from any state into a deeper state j
// costs the operating-state entry down[j] (the dominant term is the
// resynchronization on the way back up), and waking from state i costs
// up[i]. down and up are indexed like States, with entry 0 unused.
func ChainModel(name string, cycle sim.Duration, bandwidth float64, states []StateSpec, down, up []Transition, microNap State, thresholds []sim.Duration) *Model {
	n := len(states)
	trans := make([][]Transition, n)
	for i := range trans {
		trans[i] = make([]Transition, n)
		for j := range trans[i] {
			switch {
			case j > i && j < len(down):
				trans[i][j] = down[j]
			case j == 0 && i > 0 && i < len(up):
				trans[i][j] = up[i]
			}
		}
	}
	return &Model{
		Name:       name,
		CycleTime:  cycle,
		Bandwidth:  bandwidth,
		States:     append([]StateSpec(nil), states...),
		Trans:      trans,
		MicroNap:   microNap,
		Thresholds: append([]sim.Duration(nil), thresholds...),
	}
}
