package energy

import "dmamem/internal/sim"

// This file ships the calibrated technology backends. Each builder
// cites the tables its constants come from; registration happens in
// init so `Techs()` always lists them.
//
// Calibration sources:
//   - rdram: Table 1 of the source paper (identical to Lebeck et al.,
//     from the 512 Mb 1600 MHz RDRAM datasheet).
//   - ddr400: typical 512 Mb DDR400 datasheet IDD figures at 2.6 V
//     (the DDR extension already analyzed in EXPERIMENTS.md).
//   - ddr3-1600 / ddr4-2400 / lpddr4: per-rank figures derived from
//     Micron IDD tables the gem5 power-down integration study
//     (arXiv:1803.07613) calibrates against, with JEDEC exit
//     latencies (tXP, tXPDLL, tXS, tXSR, tDLLK).
func init() {
	Register("rdram", newRDRAMModel)
	RegisterAlias("rdram-1600", "rdram")
	Register("ddr400", newDDR400Model)
	// The public API's historical name for the DDR extension.
	RegisterAlias("ddr", "ddr400")
	Register("ddr3-1600", newDDR3Model)
	Register("ddr4-2400", newDDR4Model)
	Register("lpddr4", newLPDDR4Model)
	RegisterAlias("lpddr4-3200", "lpddr4")
}

// newRDRAMModel is the paper's Table 1 machine, bit-identical to the
// legacy Spec path: it is literally RDRAM1600() converted, so every
// power, latency, and derived break-even is the same float64.
func newRDRAMModel() *Model { return RDRAM1600().Model() }

// newDDR400Model converts the existing DDR400 Spec, keeping the legacy
// state names (standby/nap/powerdown) so `MemoryTech: "ddr"` configs
// and `StaticMode` selections keep working unchanged.
func newDDR400Model() *Model { return DDR400().Model() }

// newDDR3Model is a DDR3-1600 rank (eight x8 2 Gb devices, VDD 1.5 V).
// Resident powers follow the Micron 2 Gb DDR3 datasheet IDD table
// scaled to the rank: IDD3N-class active standby ~720 mW, fast-exit
// active power-down (IDD3P) ~360 mW, precharge power-down (IDD2P)
// ~150 mW, self-refresh (IDD6) ~48 mW. Exit latencies are JEDEC
// DDR3-1600: tXP = 6 ns, tXPDLL = 24 ns, tXS ≈ 270 ns (tRFC + 10 ns
// for a 2 Gb part). Demotion thresholds sit a small multiple above
// each state's break-even time (~8.5 ns / ~16 ns / ~125 ns).
func newDDR3Model() *Model {
	const cyc = 1250 * sim.Picosecond // 800 MHz clock, 1600 MT/s
	return ChainModel("ddr3-1600", cyc, 12.8e9,
		[]StateSpec{
			{Name: "active", Power: 0.720},
			{Name: "active-powerdown", Power: 0.360},
			{Name: "precharge-powerdown", Power: 0.150},
			{Name: "self-refresh", Power: 0.048},
		},
		[]Transition{
			1: {Power: 0.360, Time: 2 * cyc},
			2: {Power: 0.150, Time: 2 * cyc},
			3: {Power: 0.048, Time: 4 * cyc},
		},
		[]Transition{
			1: {Power: 0.540, Time: 6 * sim.Nanosecond},   // tXP
			2: {Power: 0.540, Time: 24 * sim.Nanosecond},  // tXPDLL
			3: {Power: 0.360, Time: 270 * sim.Nanosecond}, // tXS
		},
		2, // micro-nap in precharge power-down
		[]sim.Duration{20 * sim.Nanosecond, 200 * sim.Nanosecond, 1 * sim.Microsecond},
	)
}

// newDDR4Model is a DDR4-2400 rank (x8 8 Gb devices, VDD 1.2 V) with
// five states — the case the fixed 4-state Spec could not express.
// Powers follow the Micron 8 Gb DDR4 IDD table scaled to the rank:
// active standby (IDD3N) ~576 mW, active power-down (IDD3P) ~264 mW,
// precharge power-down (IDD2P) ~108 mW, self-refresh (IDD6N) ~48 mW,
// and maximum power-saving mode ~18 mW. Exits are JEDEC DDR4-2400:
// tXP = 6 ns for both power-down flavors (precharge power-down gets a
// few extra cycles to reopen rows), tXS ≈ 360 ns (tRFC for 8 Gb), and
// MPSM exit needs the DLL relock, tDLLK = 1024 cycles ≈ 854 ns.
func newDDR4Model() *Model {
	const cyc = 833 * sim.Picosecond // 1200 MHz clock, 2400 MT/s
	return ChainModel("ddr4-2400", cyc, 19.2e9,
		[]StateSpec{
			{Name: "active", Power: 0.576},
			{Name: "active-powerdown", Power: 0.264},
			{Name: "precharge-powerdown", Power: 0.108},
			{Name: "self-refresh", Power: 0.048},
			{Name: "max-power-saving", Power: 0.018},
		},
		[]Transition{
			1: {Power: 0.264, Time: 2 * cyc},
			2: {Power: 0.108, Time: 2 * cyc},
			3: {Power: 0.048, Time: 4 * cyc},
			4: {Power: 0.018, Time: 8 * cyc},
		},
		[]Transition{
			1: {Power: 0.432, Time: 6 * sim.Nanosecond},   // tXP
			2: {Power: 0.432, Time: 10 * sim.Nanosecond},  // tXP + row reopen
			3: {Power: 0.288, Time: 360 * sim.Nanosecond}, // tXS
			4: {Power: 0.192, Time: 854 * sim.Nanosecond}, // tDLLK
		},
		2, // micro-nap in precharge power-down
		[]sim.Duration{
			15 * sim.Nanosecond, 100 * sim.Nanosecond,
			1 * sim.Microsecond, 10 * sim.Microsecond,
		},
	)
}

// newLPDDR4Model is an LPDDR4-3200 rank (two x16 channels of a 4 Gb
// die, VDD2 1.1 V) with only three states — mobile parts collapse the
// power-down flavors into one clock-stopped state. Powers follow the
// Micron 4 Gb LPDDR4 IDD table: active standby ~360 mW, clock-stop
// power-down (IDD2P) ~90 mW, self-refresh (IDD6) ~15 mW. Exits are
// JEDEC LPDDR4: tXP = 7.5 ns, tXSR ≈ 140 ns (tRFCab + 7.5 ns).
func newLPDDR4Model() *Model {
	const cyc = 625 * sim.Picosecond // 1600 MHz clock, 3200 MT/s
	return ChainModel("lpddr4-3200", cyc, 12.8e9,
		[]StateSpec{
			{Name: "active", Power: 0.360},
			{Name: "powerdown", Power: 0.090},
			{Name: "self-refresh", Power: 0.015},
		},
		[]Transition{
			1: {Power: 0.090, Time: 2 * cyc},
			2: {Power: 0.015, Time: 4 * cyc},
		},
		[]Transition{
			1: {Power: 0.180, Time: 7500 * sim.Picosecond}, // tXP
			2: {Power: 0.120, Time: 140 * sim.Nanosecond},  // tXSR
		},
		1, // micro-nap in clock-stop power-down
		[]sim.Duration{15 * sim.Nanosecond, 500 * sim.Nanosecond},
	)
}
