package energy

import (
	"math"
	"testing"

	"dmamem/internal/sim"
)

// FuzzModelValidate drives Model.Validate with arbitrary chain-model
// parameters and checks the contract every consumer builds on:
// Validate never panics, and whatever it accepts yields finite,
// non-negative powers, transitions, wake latencies and break-even
// horizons for every state. The seed corpus pins the interesting
// rejections — non-monotone powers, zero exit latencies, NaN and Inf
// powers — so regressions in those checks fail the plain `go test
// -run Fuzz` pass CI runs, no fuzzing engine needed.
func FuzzModelValidate(f *testing.F) {
	// Plausible RDRAM-shaped chain.
	f.Add(4, 0.300, 0.5, int64(625), int64(6_000), 1, int64(100_000))
	// Two-state minimal model.
	f.Add(2, 0.360, 0.25, int64(1_250), int64(7_500), 1, int64(15_000))
	// Non-monotone powers: decay >= 1 keeps deeper states as hungry as
	// active, which Validate must reject.
	f.Add(4, 0.300, 1.0, int64(625), int64(6_000), 1, int64(100_000))
	f.Add(3, 0.300, 1.5, int64(625), int64(6_000), 1, int64(100_000))
	// Zero exit latency: a free wake breaks the break-even arithmetic.
	f.Add(4, 0.300, 0.5, int64(625), int64(0), 1, int64(100_000))
	// Zero demotion latency.
	f.Add(4, 0.300, 0.5, int64(0), int64(6_000), 1, int64(100_000))
	// NaN and Inf powers.
	f.Add(4, math.NaN(), 0.5, int64(625), int64(6_000), 1, int64(100_000))
	f.Add(4, math.Inf(1), 0.5, int64(625), int64(6_000), 2, int64(100_000))
	// Negative power and out-of-range micro-nap.
	f.Add(4, -0.300, 0.5, int64(625), int64(6_000), 9, int64(100_000))
	// Zero threshold.
	f.Add(4, 0.300, 0.5, int64(625), int64(6_000), 1, int64(0))
	f.Fuzz(func(t *testing.T, n int, activeP, decay float64, downPs, upPs int64, microNap int, threshPs int64) {
		if n < 2 {
			n = 2
		}
		if n > 8 {
			n = 8
		}
		names := []string{"active", "s1", "s2", "s3", "s4", "s5", "s6", "s7"}
		states := make([]StateSpec, n)
		p := activeP
		for i := range states {
			states[i] = StateSpec{Name: names[i], Power: p}
			p *= decay
		}
		// down/up are indexed like States, entry 0 unused (ChainModel's
		// contract, mirroring the legacy Spec arrays).
		down := make([]Transition, n)
		up := make([]Transition, n)
		thresholds := make([]sim.Duration, n-1)
		for i := 1; i < n; i++ {
			down[i] = Transition{Power: activeP * decay, Time: sim.Duration(downPs) * sim.Duration(i)}
			up[i] = Transition{Power: activeP, Time: sim.Duration(upPs) * sim.Duration(i)}
			thresholds[i-1] = sim.Duration(threshPs) * sim.Duration(i)
		}
		m := ChainModel("fuzz", MemoryCycle, 3.2e9, states, down, up, State(microNap), thresholds)
		if m.Validate() != nil {
			return
		}
		// An accepted model must be safe to consume blindly.
		for s := State(0); int(s) < m.NumStates(); s++ {
			if pw := m.Power(s); !finite(pw) || pw <= 0 {
				t.Fatalf("valid model: Power(%d) = %g", s, pw)
			}
			if wl := m.WakeLatencyOf(s); wl < 0 {
				t.Fatalf("valid model: WakeLatencyOf(%d) = %d", s, wl)
			}
			if s > 0 {
				be := m.BreakEvenOf(s)
				if be < 0 {
					t.Fatalf("valid model: BreakEvenOf(%d) = %d", s, be)
				}
				dn, upT := m.DownTo(s), m.UpFrom(s)
				if !finite(dn.Power) || dn.Power < 0 || dn.Time <= 0 {
					t.Fatalf("valid model: DownTo(%d) = %+v", s, dn)
				}
				if !finite(upT.Power) || upT.Power < 0 || upT.Time <= 0 {
					t.Fatalf("valid model: UpFrom(%d) = %+v", s, upT)
				}
				if be < dn.Time+upT.Time {
					t.Fatalf("valid model: break-even %d below the round trip %d", be, dn.Time+upT.Time)
				}
			}
			for to := State(0); int(to) < m.NumStates(); to++ {
				tr := m.TransitionFor(s, to)
				if !finite(tr.Power) || tr.Power < 0 || tr.Time < 0 {
					t.Fatalf("valid model: TransitionFor(%d,%d) = %+v", s, to, tr)
				}
			}
		}
		if mn := m.MicroNap; int(mn) < 1 || int(mn) >= m.NumStates() {
			t.Fatalf("valid model: MicroNap %d out of range", mn)
		}
		if len(m.Thresholds) != m.NumStates()-1 {
			t.Fatalf("valid model: %d thresholds for %d states", len(m.Thresholds), m.NumStates())
		}
	})
}
