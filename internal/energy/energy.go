// Package energy models the power states of an RDRAM memory device and
// accounts energy per consumption category.
//
// The power model follows Table 1 of the paper (identical to the
// numbers used by Lebeck et al., obtained from the RDRAM
// specification): four operating states — active, standby, nap,
// powerdown — plus the power drawn and the time taken while
// transitioning between them.
package energy

import (
	"fmt"

	"dmamem/internal/sim"
)

// State is an RDRAM power state.
type State uint8

const (
	Active State = iota
	Standby
	Nap
	Powerdown
	numStates
)

var stateNames = [numStates]string{"active", "standby", "nap", "powerdown"}

func (s State) String() string {
	if s < numStates {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Watts of power drawn while resident in each state (Table 1).
const (
	ActivePower    = 0.300 // 300 mW
	StandbyPower   = 0.180 // 180 mW
	NapPower       = 0.030 // 30 mW
	PowerdownPower = 0.003 // 3 mW
)

// StatePower returns the resident power of a state in watts.
func StatePower(s State) float64 {
	switch s {
	case Active:
		return ActivePower
	case Standby:
		return StandbyPower
	case Nap:
		return NapPower
	case Powerdown:
		return PowerdownPower
	}
	panic("energy: unknown state " + s.String())
}

// Transition describes one row of Table 1's transition section: the
// power drawn while transitioning and the time the transition takes.
type Transition struct {
	Power float64      // watts while transitioning
	Time  sim.Duration // transition latency
}

// MemoryCycle is one cycle of the 1600 MHz RDRAM part: 625 ps.
const MemoryCycle = 625 * sim.Picosecond

// Downward transitions from Active (Table 1). Times are in memory
// cycles.
var (
	ActiveToStandby   = Transition{Power: 0.240, Time: 1 * MemoryCycle}
	ActiveToNap       = Transition{Power: 0.160, Time: 8 * MemoryCycle}
	ActiveToPowerdown = Transition{Power: 0.015, Time: 8 * MemoryCycle}
)

// Upward transitions back to Active (Table 1). Times are the "+ns"
// resynchronization delays.
var (
	StandbyToActive   = Transition{Power: 0.240, Time: 6 * sim.Nanosecond}
	NapToActive       = Transition{Power: 0.160, Time: 60 * sim.Nanosecond}
	PowerdownToActive = Transition{Power: 0.015, Time: 6000 * sim.Nanosecond}
)

// DownTransition returns the transition used to enter low-power state s
// from Active. Direct hops between low-power states are modelled, as in
// the original policy work, as entering the lower state from the
// current one with the Active->s cost (the dominant term is the
// resynchronization on the way back up, which Table 1 captures).
func DownTransition(s State) Transition {
	switch s {
	case Standby:
		return ActiveToStandby
	case Nap:
		return ActiveToNap
	case Powerdown:
		return ActiveToPowerdown
	}
	panic("energy: no down transition to " + s.String())
}

// UpTransition returns the transition from low-power state s back to
// Active.
func UpTransition(s State) Transition {
	switch s {
	case Standby:
		return StandbyToActive
	case Nap:
		return NapToActive
	case Powerdown:
		return PowerdownToActive
	}
	panic("energy: no up transition from " + s.String())
}

// WakeLatency is the delay before a chip in state s can service a
// request.
func WakeLatency(s State) sim.Duration {
	if s == Active {
		return 0
	}
	return UpTransition(s).Time
}

// Category classifies where a joule went. The categories are exactly
// those of the paper's Figure 2(b)/Figure 6 breakdowns, plus the
// migration energy introduced by popularity-based layout and an
// explicit bucket for processor-access service.
type Category uint8

const (
	// CatServing: active mode, actually transferring DMA data.
	CatServing Category = iota
	// CatIdleDMA: active mode, idle between two DMA-memory requests of
	// in-progress transfers (the bandwidth-mismatch waste).
	CatIdleDMA
	// CatIdleThreshold: active mode, idle waiting for the policy's
	// idleness threshold to expire before powering down.
	CatIdleThreshold
	// CatTransition: transitioning between power modes.
	CatTransition
	// CatLowPower: resident in standby/nap/powerdown.
	CatLowPower
	// CatMigration: moving pages for popularity-based layout.
	CatMigration
	// CatProcServing: active mode, servicing processor cache-line
	// accesses.
	CatProcServing
	NumCategories
)

var categoryNames = [NumCategories]string{
	"active-serving", "active-idle-dma", "active-idle-threshold",
	"transition", "low-power", "migration", "proc-serving",
}

func (c Category) String() string {
	if c < NumCategories {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Breakdown is energy per category, in joules.
type Breakdown [NumCategories]float64

// Total returns the sum over all categories.
func (b *Breakdown) Total() float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o *Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// Fraction returns category c as a fraction of the total, or 0 when the
// total is zero.
func (b *Breakdown) Fraction(c Category) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b[c] / t
}

func (b *Breakdown) String() string {
	s := ""
	for c := Category(0); c < NumCategories; c++ {
		if c > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%.2f%%", c, 100*b.Fraction(c))
	}
	return s
}

// Meter integrates energy for one device. Callers report spans of time
// spent at a given power with a category; the meter only adds, so it
// can be shared by the chip state machine and the migration engine.
type Meter struct {
	b Breakdown
}

// Accumulate adds power*duration joules to category c. Negative
// durations panic: they are always an accounting bug.
func (m *Meter) Accumulate(c Category, power float64, d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("energy: negative duration %v for %v", d, c))
	}
	m.b[c] += power * d.Seconds()
}

// AddJoules adds a precomputed energy amount to category c.
func (m *Meter) AddJoules(c Category, joules float64) {
	if joules < 0 {
		panic(fmt.Sprintf("energy: negative energy %g for %v", joules, c))
	}
	m.b[c] += joules
}

// Breakdown returns a copy of the accumulated energy.
func (m *Meter) Breakdown() Breakdown { return m.b }

// Total returns total joules so far.
func (m *Meter) Total() float64 { return m.b.Total() }

// Reset clears the meter.
func (m *Meter) Reset() { m.b = Breakdown{} }

// BreakEven returns the minimum idle period for which sending a device
// from Active into low-power state s saves energy, accounting for the
// down transition, residence, and the wake transition. Idle periods
// shorter than this are cheaper spent idling in Active. This is the
// quantity classic dynamic policies use to pick thresholds.
func BreakEven(s State) sim.Duration {
	if s == Active {
		return 0
	}
	down, up := DownTransition(s), UpTransition(s)
	// Solve ActivePower*t = down.E + Pow(s)*(t - down.T - up.T) + up.E
	// for the idle gap t (the device must be back in Active by the end
	// of the gap).
	overheadJ := down.Power*down.Time.Seconds() + up.Power*up.Time.Seconds()
	residPower := StatePower(s)
	num := overheadJ - residPower*(down.Time.Seconds()+up.Time.Seconds())
	den := ActivePower - residPower
	t := num / den
	transit := down.Time + up.Time
	be := sim.FromSeconds(t)
	if be < transit {
		be = transit
	}
	return be
}
