package energy

import (
	"math"
	"testing"
	"testing/quick"

	"dmamem/internal/sim"
)

// TestTable1Constants pins the model to the exact numbers of the
// paper's Table 1.
func TestTable1Constants(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"active power", StatePower(Active), 0.300},
		{"standby power", StatePower(Standby), 0.180},
		{"nap power", StatePower(Nap), 0.030},
		{"powerdown power", StatePower(Powerdown), 0.003},
		{"active->standby power", ActiveToStandby.Power, 0.240},
		{"active->nap power", ActiveToNap.Power, 0.160},
		{"active->powerdown power", ActiveToPowerdown.Power, 0.015},
		{"standby->active power", StandbyToActive.Power, 0.240},
		{"nap->active power", NapToActive.Power, 0.160},
		{"powerdown->active power", PowerdownToActive.Power, 0.015},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	timeCases := []struct {
		name string
		got  sim.Duration
		want sim.Duration
	}{
		{"active->standby time", ActiveToStandby.Time, 1 * MemoryCycle},
		{"active->nap time", ActiveToNap.Time, 8 * MemoryCycle},
		{"active->powerdown time", ActiveToPowerdown.Time, 8 * MemoryCycle},
		{"standby->active time", StandbyToActive.Time, 6 * sim.Nanosecond},
		{"nap->active time", NapToActive.Time, 60 * sim.Nanosecond},
		{"powerdown->active time", PowerdownToActive.Time, 6000 * sim.Nanosecond},
	}
	for _, c := range timeCases {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if MemoryCycle != 625*sim.Picosecond {
		t.Errorf("MemoryCycle = %v, want 625ps (1600 MHz)", MemoryCycle)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{Active: "active", Standby: "standby", Nap: "nap", Powerdown: "powerdown"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
	if State(99).String() != "State(99)" {
		t.Errorf("unknown state string: %q", State(99).String())
	}
}

func TestPowerOrdering(t *testing.T) {
	// Deeper states must draw strictly less power.
	if !(StatePower(Active) > StatePower(Standby) &&
		StatePower(Standby) > StatePower(Nap) &&
		StatePower(Nap) > StatePower(Powerdown)) {
		t.Fatal("power ordering violated")
	}
	// Deeper states must take strictly longer to wake.
	if !(WakeLatency(Standby) < WakeLatency(Nap) &&
		WakeLatency(Nap) < WakeLatency(Powerdown)) {
		t.Fatal("wake latency ordering violated")
	}
	if WakeLatency(Active) != 0 {
		t.Fatal("active should have zero wake latency")
	}
}

func TestTransitionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { DownTransition(Active) },
		func() { UpTransition(Active) },
		func() { StatePower(State(42)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMeterAccumulate(t *testing.T) {
	var m Meter
	m.Accumulate(CatServing, 0.3, sim.Second) // 0.3 J
	m.Accumulate(CatIdleDMA, 0.3, 2*sim.Second)
	m.Accumulate(CatLowPower, 0.003, sim.Second)
	b := m.Breakdown()
	if math.Abs(b[CatServing]-0.3) > 1e-12 {
		t.Errorf("serving = %g", b[CatServing])
	}
	if math.Abs(b[CatIdleDMA]-0.6) > 1e-12 {
		t.Errorf("idle = %g", b[CatIdleDMA])
	}
	if math.Abs(m.Total()-0.903) > 1e-12 {
		t.Errorf("total = %g", m.Total())
	}
	if f := b.Fraction(CatServing); math.Abs(f-0.3/0.903) > 1e-12 {
		t.Errorf("fraction = %g", f)
	}
	m.Reset()
	if m.Total() != 0 {
		t.Error("reset did not clear meter")
	}
}

func TestMeterAddJoules(t *testing.T) {
	var m Meter
	m.AddJoules(CatMigration, 1.5)
	if m.Breakdown()[CatMigration] != 1.5 {
		t.Fatal("AddJoules lost energy")
	}
}

func TestMeterNegativePanics(t *testing.T) {
	var m Meter
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	m.Accumulate(CatServing, 0.3, -1)
}

func TestBreakdownAddAndFraction(t *testing.T) {
	var a, b Breakdown
	a[CatServing] = 1
	b[CatServing] = 2
	b[CatLowPower] = 1
	a.Add(&b)
	if a[CatServing] != 3 || a[CatLowPower] != 1 {
		t.Fatalf("Add: %+v", a)
	}
	var empty Breakdown
	if empty.Fraction(CatServing) != 0 {
		t.Fatal("empty breakdown fraction should be 0")
	}
	if a.String() == "" {
		t.Fatal("String should be nonempty")
	}
}

func TestBreakEvenSanity(t *testing.T) {
	// Break-even times must grow with state depth and always cover the
	// round-trip transition latency.
	beS, beN, beP := BreakEven(Standby), BreakEven(Nap), BreakEven(Powerdown)
	if !(beS < beN && beN < beP) {
		t.Fatalf("break-even ordering: standby=%v nap=%v powerdown=%v", beS, beN, beP)
	}
	if beS < ActiveToStandby.Time+StandbyToActive.Time {
		t.Fatalf("standby break-even %v below transit time", beS)
	}
	if BreakEven(Active) != 0 {
		t.Fatal("active break-even should be 0")
	}
	// The paper notes the best active->low-power thresholds are around
	// 20-30 memory cycles; our standby/nap break-evens should be within
	// the same order of magnitude.
	if beN > 200*sim.Nanosecond {
		t.Fatalf("nap break-even implausibly large: %v", beN)
	}
}

// Property: sleeping for exactly the break-even gap never costs more
// than idling in Active, and when the break-even exceeds the transit
// round trip the two costs are equal (the true crossover); otherwise
// the break-even is clamped to the transit time.
func TestQuickBreakEvenIndifference(t *testing.T) {
	f := func(pick uint8) bool {
		s := State(1 + pick%3) // standby, nap, powerdown
		be := BreakEven(s)
		idleJ := ActivePower * be.Seconds()
		down, up := DownTransition(s), UpTransition(s)
		transit := down.Time + up.Time
		resid := be - transit
		sleepJ := down.Power*down.Time.Seconds() +
			StatePower(s)*resid.Seconds() +
			up.Power*up.Time.Seconds()
		if sleepJ > idleJ+1e-12 {
			return false // sleeping at break-even must not lose energy
		}
		if be > transit {
			// Unclamped: exact indifference at the crossover.
			return math.Abs(idleJ-sleepJ) <= 1e-9*math.Max(idleJ, 1e-12)+1e-12
		}
		return be == transit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: meter total equals the sum of everything accumulated.
func TestQuickMeterConservation(t *testing.T) {
	f := func(amounts []uint16) bool {
		var m Meter
		var want float64
		for i, a := range amounts {
			c := Category(i % int(NumCategories))
			j := float64(a) / 1000
			m.AddJoules(c, j)
			want += j
		}
		return math.Abs(m.Total()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
