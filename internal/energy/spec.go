package energy

import (
	"fmt"

	"dmamem/internal/sim"
)

// Spec is the power/timing table of one memory technology. The
// package-level constants and functions describe the paper's default,
// 512 Mb 1600 MHz RDRAM (Table 1); Section 5.4 notes the analysis
// carries over to other technologies "with different absolute
// numbers", which a Spec captures.
type Spec struct {
	Name string
	// CycleTime of the device clock.
	CycleTime sim.Duration
	// Bandwidth is the sustained transfer rate in bytes/s.
	Bandwidth float64
	// Powers indexed by State.
	Powers [numStates]float64
	// Down[s] is the transition from Active into low-power state s;
	// Up[s] the transition from s back to Active.
	Down [numStates]Transition
	Up   [numStates]Transition
}

// RDRAM1600 returns the paper's Table 1 device: 3.2 GB/s, 625 ps
// cycle.
func RDRAM1600() *Spec {
	return &Spec{
		Name:      "rdram-1600",
		CycleTime: MemoryCycle,
		Bandwidth: 3.2e9,
		Powers:    [numStates]float64{ActivePower, StandbyPower, NapPower, PowerdownPower},
		Down: [numStates]Transition{
			Standby:   ActiveToStandby,
			Nap:       ActiveToNap,
			Powerdown: ActiveToPowerdown,
		},
		Up: [numStates]Transition{
			Standby:   StandbyToActive,
			Nap:       NapToActive,
			Powerdown: PowerdownToActive,
		},
	}
}

// DDR400 returns a DDR SDRAM part of the paper's era (2.1 GB/s class,
// 5 ns clock): higher operating power, shallower low-power states, and
// a much cheaper exit from its deepest state than RDRAM's powerdown.
// Numbers follow typical 512 Mb DDR400 datasheet figures (IDD
// currents at 2.6 V): active ~460 mW, active standby ~180 mW,
// precharge powerdown ~45 mW, self refresh ~13 mW with a ~200-cycle
// exit.
func DDR400() *Spec {
	const cyc = 5 * sim.Nanosecond
	return &Spec{
		Name:      "ddr-400",
		CycleTime: cyc,
		Bandwidth: 2.1e9,
		Powers:    [numStates]float64{0.460, 0.180, 0.045, 0.013},
		Down: [numStates]Transition{
			Standby:   {Power: 0.300, Time: 1 * cyc},
			Nap:       {Power: 0.110, Time: 2 * cyc},
			Powerdown: {Power: 0.025, Time: 2 * cyc},
		},
		Up: [numStates]Transition{
			Standby:   {Power: 0.300, Time: 2 * cyc},
			Nap:       {Power: 0.110, Time: 6 * cyc},
			Powerdown: {Power: 0.025, Time: 200 * cyc},
		},
	}
}

// Model converts the fixed 4-state Spec into the generic backend
// Model, keeping the legacy enum state names (active, standby, nap,
// powerdown), the legacy chain semantics (Deepen charges the
// Active->target row), micro-naps in Nap, and the classic Dynamic
// policy thresholds. Every power and latency is copied verbatim, so a
// converted Spec produces bit-identical reports to the Spec itself.
func (s *Spec) Model() *Model {
	states := make([]StateSpec, numStates)
	for st := Active; st < numStates; st++ {
		states[st] = StateSpec{Name: st.String(), Power: s.Powers[st]}
	}
	return ChainModel(s.Name, s.CycleTime, s.Bandwidth,
		states, s.Down[:], s.Up[:], Nap,
		[]sim.Duration{16 * MemoryCycle, 100 * sim.Nanosecond, 2 * sim.Microsecond})
}

// Validate reports a descriptive error for inconsistent specs.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("energy: spec without a name")
	}
	if s.CycleTime <= 0 || s.Bandwidth <= 0 {
		return fmt.Errorf("energy: spec %s: cycle %v, bandwidth %g", s.Name, s.CycleTime, s.Bandwidth)
	}
	for st := Active; st < numStates; st++ {
		if s.Powers[st] <= 0 {
			return fmt.Errorf("energy: spec %s: power of %v is %g", s.Name, st, s.Powers[st])
		}
		if st > Active && s.Powers[st] >= s.Powers[st-1] {
			return fmt.Errorf("energy: spec %s: %v power not below %v", s.Name, st, st-1)
		}
	}
	for st := Standby; st < numStates; st++ {
		if s.Down[st].Time <= 0 || s.Up[st].Time <= 0 {
			return fmt.Errorf("energy: spec %s: missing transition for %v", s.Name, st)
		}
	}
	return nil
}

// Power returns the resident power of a state.
func (s *Spec) Power(st State) float64 {
	if st >= numStates {
		panic("energy: unknown state " + st.String())
	}
	return s.Powers[st]
}

// DownTo returns the transition entering low-power state st.
func (s *Spec) DownTo(st State) Transition {
	if st == Active || st >= numStates {
		panic("energy: no down transition to " + st.String())
	}
	return s.Down[st]
}

// UpFrom returns the transition from low-power state st to Active.
func (s *Spec) UpFrom(st State) Transition {
	if st == Active || st >= numStates {
		panic("energy: no up transition from " + st.String())
	}
	return s.Up[st]
}

// WakeLatencyOf returns the delay before a chip in state st can serve.
func (s *Spec) WakeLatencyOf(st State) sim.Duration {
	if st == Active {
		return 0
	}
	return s.Up[st].Time
}

// BreakEvenOf returns the minimum idle period for which entering state
// st from Active saves energy under this spec.
func (s *Spec) BreakEvenOf(st State) sim.Duration {
	if st == Active {
		return 0
	}
	down, up := s.DownTo(st), s.UpFrom(st)
	overheadJ := down.Power*down.Time.Seconds() + up.Power*up.Time.Seconds()
	resid := s.Power(st)
	num := overheadJ - resid*(down.Time.Seconds()+up.Time.Seconds())
	den := s.Power(Active) - resid
	be := sim.FromSeconds(num / den)
	if transit := down.Time + up.Time; be < transit {
		be = transit
	}
	return be
}
