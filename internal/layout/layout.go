// Package layout implements the paper's Popularity-based Layout (PL):
// pages are placed on chips by DMA popularity so that hot chips
// receive enough concurrent transfers for temporal alignment to work
// and cold chips sleep longer.
//
// The manager keeps an aged DMA reference count per page. At interval
// boundaries it recomputes the grouping: the hottest pages, covering a
// HotShare fraction p of recent DMA requests, claim ceil(hotPages /
// pagesPerChip) "hot" chips; with Groups > 2 the hot chips are
// subdivided into exponentially sized groups (G1 = 1 chip, G2 = 2,
// G3 = 4, ...) per Section 4.2.1. Pages found in the wrong group are
// migrated into slots freed by pages leaving that group, so the number
// of moves is bounded by the number of misplaced pages, and each move
// is charged its copy energy (read from the source chip plus write to
// the destination at full rate).
package layout

import (
	"fmt"
	"sort"

	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// Config parameterizes PL.
type Config struct {
	// Groups is the total number of groups K including the cold group.
	// The paper's default, and best, setting is 2 (one hot + cold).
	Groups int
	// HotShare is p: hot chips are sized to absorb this fraction of
	// the DMA requests observed in the last interval.
	HotShare float64
	// Interval between layout recomputations.
	Interval sim.Duration
	// AgeShift right-shifts the reference counters at each interval
	// (the paper's aging), adapting to workload change.
	AgeShift uint
	// MigrateRatio is the hysteresis threshold: a page is only swapped
	// into a hotter group if its count is at least MigrateRatio times
	// the count of the page it displaces. This implements the paper's
	// observation that "pages accessed 8 times are not necessarily
	// 'hotter' than pages that have been accessed 10 times" — without
	// it, boundary pages ping-pong between groups and migration energy
	// swamps the layout benefit. Values <= 1 disable hysteresis.
	MigrateRatio float64
	// MinHotCount is the popularity floor: pages with fewer aged
	// references never qualify for a hot group. Zero means 1.
	MinHotCount uint32
	// FullScan forces the original full-page reference scan at every
	// rebalance instead of the adaptive dirty-set scan that sorts only
	// pages with live counts and skips clean chips. The two paths make
	// identical move decisions (the cross-check test holds them to it);
	// FullScan is the O(pages log pages) reference implementation.
	FullScan bool
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{Groups: 2, HotShare: 0.6, Interval: 20 * sim.Millisecond,
		AgeShift: 1, MigrateRatio: 1, MinHotCount: 2}
}

// Validate reports a descriptive error for unusable configs.
func (c Config) Validate() error {
	switch {
	case c.Groups < 2:
		return fmt.Errorf("layout: Groups = %d, need >= 2", c.Groups)
	case c.HotShare <= 0 || c.HotShare >= 1:
		return fmt.Errorf("layout: HotShare = %g outside (0,1)", c.HotShare)
	case c.Interval <= 0:
		return fmt.Errorf("layout: Interval = %v", c.Interval)
	case c.AgeShift > 31:
		return fmt.Errorf("layout: AgeShift = %d", c.AgeShift)
	}
	return nil
}

// Manager tracks popularity and owns the page -> chip mapping. It
// satisfies memsys.Mapper.
type Manager struct {
	geo memsys.Geometry
	cfg Config

	loc    []uint16 // page -> chip
	counts []uint32 // aged DMA reference count per page

	// groupOfChip is the group index each chip belonged to after the
	// last rebalance (0 = hottest, Groups-1 = cold).
	groupOfChip []int

	// Adaptive dirty-set accounting. tracked[p] says page p sits in
	// exactly one of the live lists; counts[p] > 0 implies tracked[p].
	// live[c] holds the tracked pages resident on chip c as of the last
	// rebalance (plus pages first observed on c since), so a chip with
	// an empty list held no popular page all epoch and the rebalance
	// scan skips it outright. Lists are rebuilt from current locations
	// each rebalance, which keeps every list within its PagesPerChip
	// capacity — Observe never reallocates.
	tracked     []bool
	live        [][]int32
	liveScratch []int32

	// Costs and statistics.
	Rebalances       int64
	MigratedPages    int64
	MigrationEnergyJ float64
	SkippedBusy      int64
	// ScannedChips counts chips whose live lists were visited across
	// all rebalances; Rebalances*NumChips minus it is how many chip
	// scans the dirty-set accounting skipped.
	ScannedChips int64
}

// New returns a manager with the interleaved baseline layout.
func New(geo memsys.Geometry, cfg Config) (*Manager, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if geo.NumChips < 2 {
		return nil, fmt.Errorf("layout: PL needs >= 2 chips, got %d", geo.NumChips)
	}
	if geo.NumChips > 1<<16 {
		return nil, fmt.Errorf("layout: %d chips exceed mapping width", geo.NumChips)
	}
	m := &Manager{
		geo:         geo,
		cfg:         cfg,
		loc:         make([]uint16, geo.TotalPages()),
		counts:      make([]uint32, geo.TotalPages()),
		groupOfChip: make([]int, geo.NumChips),
		tracked:     make([]bool, geo.TotalPages()),
		live:        make([][]int32, geo.NumChips),
		liveScratch: make([]int32, 0, geo.TotalPages()),
	}
	for c := range m.live {
		m.live[c] = make([]int32, 0, geo.PagesPerChip())
	}
	for p := range m.loc {
		m.loc[p] = uint16(p % geo.NumChips)
	}
	for c := range m.groupOfChip {
		m.groupOfChip[c] = cfg.Groups - 1 // everything cold until first rebalance
	}
	return m, nil
}

// ChipOf implements memsys.Mapper.
func (m *Manager) ChipOf(p memsys.PageID) int { return int(m.loc[p]) }

// GroupOfChip returns the group a chip was assigned at the last
// rebalance (Groups-1 before any rebalance).
func (m *Manager) GroupOfChip(chip int) int { return m.groupOfChip[chip] }

// Observe counts one DMA-memory reference burst to a page. The
// controller calls it once per page per transfer, matching the paper's
// "DMA reference counts". A page entering the live set is added to its
// chip's list, which is what lets Rebalance skip chips no popular page
// touched; the append stays within the list's preallocated capacity,
// so Observe never allocates.
func (m *Manager) Observe(p memsys.PageID) {
	if m.counts[p] < 1<<31 {
		m.counts[p]++
	}
	if !m.tracked[p] {
		m.tracked[p] = true
		m.live[m.loc[p]] = append(m.live[m.loc[p]], int32(p))
	}
}

// Interval returns the configured rebalance period.
func (m *Manager) Interval() sim.Duration { return m.cfg.Interval }

// ResetCosts zeroes the accumulated migration statistics; the core
// uses it after an uncharged warm-up rebalance that models a server
// already in popularity steady state.
func (m *Manager) ResetCosts() {
	m.MigratedPages = 0
	m.MigrationEnergyJ = 0
	m.Rebalances = 0
	m.SkippedBusy = 0
	m.ScannedChips = 0
}

// groupSizes splits hotChips into the exponential hot-group sizes plus
// the cold group: [1, 2, 4, ..., remainder, cold].
func (m *Manager) groupSizes(hotChips int) []int {
	cold := m.geo.NumChips - hotChips
	hotGroups := m.cfg.Groups - 1
	sizes := make([]int, 0, m.cfg.Groups)
	remaining := hotChips
	for g := 0; g < hotGroups; g++ {
		var s int
		if g == hotGroups-1 {
			s = remaining
		} else {
			s = 1 << g
			if s > remaining-(hotGroups-1-g) { // leave at least 1 chip per later group
				s = remaining - (hotGroups - 1 - g)
			}
			if s < 0 {
				s = 0
			}
		}
		sizes = append(sizes, s)
		remaining -= s
	}
	return append(sizes, cold)
}

// gatherLive drains the per-chip live lists into one slice of pages
// with nonzero counts, dropping pages whose counts aged to zero.
// Chips with empty lists — no popular page all epoch — are skipped
// without being read, which is the adaptive scan's whole point: work
// scales with the live set, not the page population. The lists are
// left empty for rebuildLive to repopulate from post-move locations.
func (m *Manager) gatherLive() []int32 {
	out := m.liveScratch[:0]
	for c := range m.live {
		if len(m.live[c]) == 0 {
			continue
		}
		m.ScannedChips++
		for _, p := range m.live[c] {
			if m.counts[p] == 0 {
				m.tracked[p] = false
				continue
			}
			out = append(out, p)
		}
		m.live[c] = m.live[c][:0]
	}
	m.liveScratch = out
	return out
}

// rebuildLive reindexes the live pages by their current (post-move)
// chip. Each chip's list then holds only actual residents, so the
// per-chip capacity bounds future Observe appends.
func (m *Manager) rebuildLive(liveOrder []int32) {
	for _, p := range liveOrder {
		m.live[m.loc[p]] = append(m.live[m.loc[p]], p)
	}
}

// fullOrder sorts every page by popularity (ties by page ID) and
// returns the prefix with nonzero counts — the reference scan the
// adaptive path is checked against. The zero-count tail it discards is
// reconstructed on demand by coldScan, which is how both paths share
// one executeMoves.
func (m *Manager) fullOrder() []int32 {
	order := make([]int32, len(m.counts))
	for i := range order {
		order[i] = int32(i)
	}
	sortByPopularity(order, m.counts)
	n := len(order)
	for n > 0 && m.counts[order[n-1]] == 0 {
		n--
	}
	return order[:n]
}

// sortByPopularity orders pages by count descending, page ID
// ascending — the total order every layout decision derives from.
func sortByPopularity(pages []int32, counts []uint32) {
	sort.Slice(pages, func(i, j int) bool {
		a, b := pages[i], pages[j]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
}

// Rebalance recomputes the layout from the current counters and
// migrates misplaced pages, skipping pages for which busy returns true
// (in-flight DMA targets). It returns the number of pages moved and
// then ages the counters.
//
// By default only the live set — pages referenced recently enough to
// hold a nonzero aged count — is gathered and sorted, and chips with
// no live page are skipped entirely. Pages outside the live set can
// neither enter the hot region (the popularity floor is at least 1)
// nor sort anywhere but the tail of the reference order, so the
// decisions are identical to Config.FullScan's full sort; the
// cross-check test compares the two move for move.
func (m *Manager) Rebalance(busy func(memsys.PageID) bool) int {
	m.Rebalances++
	liveOrder := m.gatherLive()
	total := uint64(0)
	for _, p := range liveOrder {
		total += uint64(m.counts[p])
	}
	if total == 0 {
		return 0
	}
	if m.cfg.FullScan {
		liveOrder = m.fullOrder()
	} else {
		sortByPopularity(liveOrder, m.counts)
	}

	// Size the hot region: smallest prefix of pages covering HotShare
	// of the requests. Pages below the popularity floor never qualify:
	// one-hit wonders are not worth a migration.
	perChip := m.geo.PagesPerChip()
	threshold := uint64(m.cfg.HotShare * float64(total))
	minHot := m.cfg.MinHotCount
	if minHot < 1 {
		minHot = 1
	}
	cum := uint64(0)
	hotPages := 0
	for _, p := range liveOrder {
		if cum >= threshold || m.counts[p] < minHot {
			break
		}
		cum += uint64(m.counts[p])
		hotPages++
	}
	if hotPages == 0 {
		hotPages = 1
	}
	hotChips := (hotPages + perChip - 1) / perChip
	if m.cfg.Groups > 2 && hotChips < m.cfg.Groups-1 {
		// Every hot group needs at least one chip; deeper group
		// structures therefore spread the hot set over more chips.
		hotChips = m.cfg.Groups - 1
	}
	if hotChips > m.geo.NumChips-1 {
		hotChips = m.geo.NumChips - 1
	}
	sizes := m.groupSizes(hotChips)

	// Assign chips to groups: chip ranges in order, so the assignment
	// is stable while the hot set is stable.
	newGroupOfChip := make([]int, m.geo.NumChips)
	chip := 0
	for g, s := range sizes {
		for i := 0; i < s; i++ {
			newGroupOfChip[chip] = g
			chip++
		}
	}

	// Target group per hot page: the hottest pages fill the hottest
	// groups. Pages outside the hot set have no target — they stay
	// wherever they are unless evicted to make room, which is what
	// keeps steady-state migration traffic proportional to actual
	// popularity change rather than to group capacity.
	const noTarget = int8(-1)
	target := make([]int8, len(m.counts))
	for i := range target {
		target[i] = noTarget
	}
	rank := 0
	hotGroups := len(sizes) - 1
	for g := 0; g < hotGroups && rank < hotPages; g++ {
		capacity := sizes[g] * perChip
		// Below the capacity bound, spread the hot set over the group
		// structure in proportion to group size (the paper's popularity
		// ordering across G1 > G2 > ...); the last hot group absorbs
		// the remainder.
		if g < hotGroups-1 && hotChips > 0 {
			share := (hotPages*sizes[g] + hotChips - 1) / hotChips
			if share < capacity {
				capacity = share
			}
		}
		for i := 0; i < capacity && rank < hotPages; i++ {
			target[liveOrder[rank]] = int8(g)
			rank++
		}
	}

	moves := m.executeMoves(newGroupOfChip, target, liveOrder, busy)
	m.groupOfChip = newGroupOfChip
	m.rebuildLive(liveOrder)
	m.age(liveOrder)
	return moves
}

// coldScan walks pages from coldest to hottest: first the zero-count
// pages by descending ID, then the live pages in reverse popularity
// order. That is exactly the reference full sort read back to front —
// zero-count pages all tie and so sort to the tail in ascending ID —
// without ever materializing the zero-count tail.
type coldScan struct {
	counts []uint32
	live   []int32 // popularity-sorted live pages
	zi     int32   // next zero-count candidate ID, descending
	li     int     // next live index, from the back
}

func (m *Manager) coldestFirst(liveOrder []int32) coldScan {
	return coldScan{
		counts: m.counts,
		live:   liveOrder,
		zi:     int32(len(m.counts)) - 1,
		li:     len(liveOrder) - 1,
	}
}

func (s *coldScan) next() (int32, bool) {
	for s.zi >= 0 {
		p := s.zi
		s.zi--
		if s.counts[p] == 0 {
			return p, true
		}
	}
	if s.li >= 0 {
		p := s.live[s.li]
		s.li--
		return p, true
	}
	return 0, false
}

// executeMoves migrates hot-set pages into their target groups and
// evicts just enough cold pages to make room. Pages outside the hot
// set (target < 0) stay put unless evicted, so steady-state migration
// traffic tracks popularity change, not group capacity. Because every
// executed mover both frees its old slot and consumes a freed one,
// per-chip occupancy is preserved. Busy pages stay put; their
// counterparts are trimmed so that |entering| == |leaving| for every
// group.
func (m *Manager) executeMoves(groupOfChip []int, target []int8, liveOrder []int32, busy func(memsys.PageID) bool) int {
	k := m.cfg.Groups
	cold := k - 1
	entering := make([][]int32, k) // pages wanting in, hottest first
	leaving := make([][]int32, k)  // pages wanting out (their chips free slots)
	moving := make(map[int32]bool)

	// Hot-set movers, hottest first (liveOrder is popularity-sorted
	// and targets were assigned along its prefix).
	for _, p := range liveOrder {
		tgt := target[p]
		if tgt < 0 {
			break // end of the hot prefix
		}
		cur := groupOfChip[m.loc[p]]
		if int(tgt) == cur {
			continue
		}
		if busy != nil && busy(memsys.PageID(p)) {
			m.SkippedBusy++
			continue
		}
		entering[tgt] = append(entering[tgt], p)
		leaving[cur] = append(leaving[cur], p)
		moving[p] = true
	}

	// Room-making evictions: a hot group receiving more pages than it
	// loses evicts its coldest uninvolved residents to the cold group.
	// The scan restarts from the very coldest page for each group,
	// matching the reference full-order walk.
	for g := 0; g < cold; g++ {
		deficit := len(entering[g]) - len(leaving[g])
		for it := m.coldestFirst(liveOrder); deficit > 0; {
			p, ok := it.next()
			if !ok {
				break
			}
			if target[p] >= 0 || moving[p] {
				continue
			}
			if groupOfChip[m.loc[p]] != g {
				continue
			}
			if busy != nil && busy(memsys.PageID(p)) {
				continue
			}
			entering[cold] = append(entering[cold], p)
			leaving[g] = append(leaving[g], p)
			moving[p] = true
			deficit--
		}
	}
	dropped := make(map[int32]bool)

	// Hysteresis: for each hot group, cancel marginal swaps. The
	// least-popular would-be enterer and the most-popular would-be
	// leaver are a swap pair; if the enterer is not clearly hotter
	// (count < MigrateRatio * leaver count), keep both where they are.
	if m.cfg.MigrateRatio > 1 {
		for g := 0; g < k-1; g++ {
			in := append([]int32(nil), entering[g]...)
			out := append([]int32(nil), leaving[g]...)
			sort.Slice(in, func(i, j int) bool { // coldest enterer first
				if m.counts[in[i]] != m.counts[in[j]] {
					return m.counts[in[i]] < m.counts[in[j]]
				}
				return in[i] < in[j]
			})
			sort.Slice(out, func(i, j int) bool { // hottest leaver first
				if m.counts[out[i]] != m.counts[out[j]] {
					return m.counts[out[i]] > m.counts[out[j]]
				}
				return out[i] < out[j]
			})
			i := 0
			for i < len(in) && i < len(out) {
				if float64(m.counts[in[i]]) < m.cfg.MigrateRatio*float64(m.counts[out[i]]) {
					dropped[in[i]] = true
					dropped[out[i]] = true
					i++
					continue
				}
				break
			}
		}
	}

	// Trim to a consistent exchange: drop excess enterers (coldest
	// first) until every group has |entering| <= |leaving|; dropping an
	// enterer also removes it from its home group's leavers, so
	// iterate to a fixpoint.
	for changed := true; changed; {
		changed = false
		for g := 0; g < k; g++ {
			live := 0
			for _, p := range leaving[g] {
				if !dropped[p] {
					live++
				}
			}
			in := entering[g]
			liveIn := 0
			for _, p := range in {
				if !dropped[p] {
					liveIn++
				}
			}
			for liveIn > live {
				// Drop the least popular live enterer (they are in
				// popularity order only incidentally; scan from the
				// back).
				for i := len(in) - 1; i >= 0; i-- {
					if !dropped[in[i]] {
						dropped[in[i]] = true
						liveIn--
						changed = true
						break
					}
				}
			}
		}
	}

	// Snapshot the freed slots of every group before any page moves,
	// so a leaver that has already been reassigned still frees its old
	// chip.
	freed := make([][]uint16, k)
	for g := 0; g < k; g++ {
		for _, p := range leaving[g] {
			if !dropped[p] {
				freed[g] = append(freed[g], m.loc[p])
			}
		}
	}

	// Execute: pair each live enterer of g with a slot freed by a live
	// leaver of g.
	copyTime := m.geo.ServiceTime(int64(m.geo.PageBytes))
	perMoveJ := 2 * energy.ActivePower * copyTime.Seconds()
	moves := 0
	for g := 0; g < k; g++ {
		slots := freed[g]
		si := 0
		for _, p := range entering[g] {
			if dropped[p] {
				continue
			}
			if si >= len(slots) {
				panic("layout: exchange imbalance after trimming")
			}
			m.loc[p] = slots[si]
			si++
			moves++
			m.MigrationEnergyJ += perMoveJ
		}
	}
	m.MigratedPages += int64(moves)
	return moves
}

// age shifts the counters of the live pages; every other page already
// counts zero, so touching only the live set matches the reference
// behavior of shifting the whole array.
func (m *Manager) age(liveOrder []int32) {
	if m.cfg.AgeShift == 0 {
		return
	}
	for _, p := range liveOrder {
		m.counts[p] >>= m.cfg.AgeShift
	}
}

// checkInvariants verifies that every chip holds exactly PagesPerChip
// pages and that the live-set index is consistent: tracked marks
// exactly the listed pages, every nonzero count is tracked, no list
// outgrows its chip, and no page is listed twice; tests call it.
func (m *Manager) checkInvariants() error {
	occ := make([]int, m.geo.NumChips)
	for _, c := range m.loc {
		occ[c]++
	}
	per := m.geo.PagesPerChip()
	for c, n := range occ {
		if n != per {
			return fmt.Errorf("chip %d holds %d pages, want %d", c, n, per)
		}
	}
	listed := make([]bool, len(m.counts))
	for c := range m.live {
		if len(m.live[c]) > per {
			return fmt.Errorf("chip %d live list holds %d entries, cap %d", c, len(m.live[c]), per)
		}
		if cap(m.live[c]) != per {
			return fmt.Errorf("chip %d live list capacity %d, want %d (Observe must not reallocate)", c, cap(m.live[c]), per)
		}
		for _, p := range m.live[c] {
			if listed[p] {
				return fmt.Errorf("page %d listed twice", p)
			}
			listed[p] = true
			if !m.tracked[p] {
				return fmt.Errorf("page %d listed but not tracked", p)
			}
		}
	}
	for p := range m.counts {
		if m.tracked[p] && !listed[p] {
			return fmt.Errorf("page %d tracked but unlisted", p)
		}
		if m.counts[p] > 0 && !m.tracked[p] {
			return fmt.Errorf("page %d has count %d but is untracked", p, m.counts[p])
		}
	}
	return nil
}
