package layout

import (
	"testing"
	"testing/quick"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
)

// smallGeo: 8 chips x 16 pages = 128 pages, fast to exercise.
func smallGeo() memsys.Geometry {
	return memsys.Geometry{NumChips: 8, ChipBytes: 16 * 8192, PageBytes: 8192, ChipBandwidth: 3.2e9}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{Groups: 1, HotShare: 0.6, Interval: 1, AgeShift: 1},
		{Groups: 2, HotShare: 0, Interval: 1, AgeShift: 1},
		{Groups: 2, HotShare: 1, Interval: 1, AgeShift: 1},
		{Groups: 2, HotShare: 0.6, Interval: 0, AgeShift: 1},
		{Groups: 2, HotShare: 0.6, Interval: 1, AgeShift: 40},
	}
	for i, c := range cases {
		if c.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestNewStartsInterleaved(t *testing.T) {
	m, err := New(smallGeo(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 128; p++ {
		if m.ChipOf(memsys.PageID(p)) != p%8 {
			t.Fatalf("page %d on chip %d, want interleaved", p, m.ChipOf(memsys.PageID(p)))
		}
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 8; c++ {
		if m.GroupOfChip(c) != 1 {
			t.Fatal("chips should start cold")
		}
	}
}

func TestNewErrors(t *testing.T) {
	bad := smallGeo()
	bad.NumChips = 1
	if _, err := New(bad, DefaultConfig()); err == nil {
		t.Error("single-chip geometry accepted")
	}
	cfg := DefaultConfig()
	cfg.Groups = 0
	if _, err := New(smallGeo(), cfg); err == nil {
		t.Error("bad config accepted")
	}
}

func TestRebalanceConcentratesHotPages(t *testing.T) {
	m, _ := New(smallGeo(), DefaultConfig())
	// Pages 0..15 are hot (spread over all chips by interleaving);
	// they receive 90% of accesses.
	for p := 0; p < 16; p++ {
		for i := 0; i < 90; i++ {
			m.Observe(memsys.PageID(p))
		}
	}
	for p := 16; p < 128; p++ {
		m.Observe(memsys.PageID(p))
	}
	moves := m.Rebalance(nil)
	if moves == 0 {
		t.Fatal("no migration despite skew")
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// The 16 hot pages cover 90% > 60% of accesses; they need exactly
	// one 16-page chip, so chip 0 is the hot group.
	if m.GroupOfChip(0) != 0 {
		t.Fatal("chip 0 should be hot")
	}
	// The hot set is the smallest prefix covering HotShare (60%) of
	// accesses — 11 of the 16 popular pages here; all of it must land
	// on the hot chip.
	hot := 0
	for p := 0; p < 16; p++ {
		if m.ChipOf(memsys.PageID(p)) == 0 {
			hot++
		}
	}
	if hot < 11 {
		t.Fatalf("only %d of 16 hot pages on the hot chip", hot)
	}
	if m.MigratedPages == 0 || m.MigrationEnergyJ <= 0 {
		t.Fatal("migration costs not recorded")
	}
}

func TestRebalanceStableSecondPass(t *testing.T) {
	m, _ := New(smallGeo(), DefaultConfig())
	observe := func() {
		for p := 0; p < 16; p++ {
			for i := 0; i < 90; i++ {
				m.Observe(memsys.PageID(p))
			}
		}
		for p := 16; p < 128; p++ {
			m.Observe(memsys.PageID(p))
		}
	}
	observe()
	m.Rebalance(nil)
	observe()
	moves := m.Rebalance(nil)
	if moves != 0 {
		t.Fatalf("steady workload caused %d moves on second rebalance", moves)
	}
}

func TestRebalanceNoTraffic(t *testing.T) {
	m, _ := New(smallGeo(), DefaultConfig())
	if moves := m.Rebalance(nil); moves != 0 {
		t.Fatalf("rebalance with no traffic moved %d pages", moves)
	}
}

func TestRebalanceBusyPagesSkipped(t *testing.T) {
	m, _ := New(smallGeo(), DefaultConfig())
	for p := 0; p < 16; p++ {
		for i := 0; i < 90; i++ {
			m.Observe(memsys.PageID(p))
		}
	}
	for p := 16; p < 128; p++ {
		m.Observe(memsys.PageID(p))
	}
	busy := func(p memsys.PageID) bool { return p == 3 }
	before := m.ChipOf(3)
	m.Rebalance(busy)
	if m.ChipOf(3) != before {
		t.Fatal("busy page moved")
	}
	if m.SkippedBusy == 0 {
		t.Fatal("busy skip not recorded")
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAging(t *testing.T) {
	m, _ := New(smallGeo(), DefaultConfig())
	for i := 0; i < 8; i++ {
		m.Observe(0)
	}
	m.Rebalance(nil) // ages by 1 shift: count 8 -> 4
	if m.counts[0] != 4 {
		t.Fatalf("count after aging = %d, want 4", m.counts[0])
	}
}

func TestAdaptationToWorkloadShift(t *testing.T) {
	// Hot set moves from pages 0..15 to pages 112..127; after a few
	// intervals the new hot set must own the hot chip.
	m, _ := New(smallGeo(), DefaultConfig())
	for p := 0; p < 16; p++ {
		for i := 0; i < 90; i++ {
			m.Observe(memsys.PageID(p))
		}
	}
	m.Rebalance(nil)
	for round := 0; round < 6; round++ {
		for p := 112; p < 128; p++ {
			for i := 0; i < 90; i++ {
				m.Observe(memsys.PageID(p))
			}
		}
		m.Rebalance(nil)
	}
	moved := 0
	for p := 112; p < 128; p++ {
		if m.GroupOfChip(m.ChipOf(memsys.PageID(p))) == 0 {
			moved++
		}
	}
	if moved < 11 {
		t.Fatalf("only %d of 16 new hot pages reached the hot group", moved)
	}
}

func TestGroupSizesExponential(t *testing.T) {
	geo := memsys.Geometry{NumChips: 32, ChipBytes: 16 * 8192, PageBytes: 8192, ChipBandwidth: 3.2e9}
	cfg := DefaultConfig()
	cfg.Groups = 4
	m, err := New(geo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sizes := m.groupSizes(8)
	// 3 hot groups over 8 chips: 1, 2, 5, then 24 cold.
	want := []int{1, 2, 5, 24}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
	// Tight case: 3 hot chips for 3 hot groups -> 1 each.
	sizes = m.groupSizes(3)
	want = []int{1, 1, 1, 29}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("tight sizes = %v, want %v", sizes, want)
		}
	}
}

func TestMoreGroupsDiluteHotSet(t *testing.T) {
	// The effect behind Figure 5's 6-group penalty: a deeper group
	// structure spreads the hot set over more chips (each hot group
	// needs at least one), which dilutes per-chip arrival rates and
	// weakens temporal alignment — while migration traffic does not
	// shrink.
	run := func(groups int) (hotChipsUsed int, migrated int64) {
		geo := memsys.Geometry{NumChips: 32, ChipBytes: 64 * 8192, PageBytes: 8192, ChipBandwidth: 3.2e9}
		cfg := DefaultConfig()
		cfg.Groups = groups
		m, err := New(geo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := synth.NewRNG(1)
		zipf := synth.NewZipf(geo.TotalPages(), 1.0)
		perm := rng.Perm(geo.TotalPages())
		hotPages := map[memsys.PageID]bool{}
		for round := 0; round < 8; round++ {
			for i := 0; i < 20000; i++ {
				p := memsys.PageID(perm[zipf.Sample(rng)])
				m.Observe(p)
				hotPages[p] = true
			}
			m.Rebalance(nil)
			if err := m.checkInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		chips := map[int]bool{}
		for p := range hotPages {
			if m.GroupOfChip(m.ChipOf(p)) < groups-1 { // on a hot chip
				chips[m.ChipOf(p)] = true
			}
		}
		return len(chips), m.MigratedPages
	}
	chips2, mig2 := run(2)
	chips6, mig6 := run(6)
	if chips6 <= chips2 {
		t.Fatalf("6 groups used %d hot chips, 2 groups %d; want dilution", chips6, chips2)
	}
	if mig6 < mig2/2 {
		t.Fatalf("6 groups migrated %d pages vs %d; churn should not collapse", mig6, mig2)
	}
}

func TestResetCosts(t *testing.T) {
	m, _ := New(smallGeo(), DefaultConfig())
	for p := 0; p < 16; p++ {
		for i := 0; i < 90; i++ {
			m.Observe(memsys.PageID(p))
		}
	}
	m.Rebalance(nil)
	if m.MigratedPages == 0 {
		t.Fatal("expected migrations")
	}
	m.ResetCosts()
	if m.MigratedPages != 0 || m.MigrationEnergyJ != 0 || m.Rebalances != 0 {
		t.Fatal("costs not reset")
	}
}

// Property: rebalancing under arbitrary popularity and busy sets
// preserves the chip-occupancy bijection.
func TestQuickRebalanceInvariants(t *testing.T) {
	f := func(seed uint64, groups8, rounds8 uint8) bool {
		geo := smallGeo()
		cfg := DefaultConfig()
		cfg.Groups = 2 + int(groups8)%4
		m, err := New(geo, cfg)
		if err != nil {
			return false
		}
		rng := synth.NewRNG(seed)
		zipf := synth.NewZipf(geo.TotalPages(), 1.0)
		rounds := 1 + int(rounds8)%5
		for r := 0; r < rounds; r++ {
			for i := 0; i < 500; i++ {
				m.Observe(memsys.PageID(zipf.Sample(rng)))
			}
			busyPage := memsys.PageID(rng.Intn(geo.TotalPages()))
			m.Rebalance(func(p memsys.PageID) bool { return p == busyPage })
			if m.checkInvariants() != nil {
				return false
			}
			// Every page on a valid chip.
			for p := 0; p < geo.TotalPages(); p++ {
				c := m.ChipOf(memsys.PageID(p))
				if c < 0 || c >= geo.NumChips {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalAccessor(t *testing.T) {
	m, _ := New(smallGeo(), DefaultConfig())
	if m.Interval() != 20*sim.Millisecond {
		t.Fatalf("interval = %v", m.Interval())
	}
}
