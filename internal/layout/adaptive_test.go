package layout

import (
	"math/rand"
	"testing"

	"dmamem/internal/memsys"
)

// driveBoth runs the same Observe/Rebalance schedule through an
// adaptive manager and a FullScan reference manager and fails on the
// first divergence in moves, placement, counters, or group maps.
func driveBoth(t *testing.T, cfg Config, geo memsys.Geometry, seed int64, epochs int, withBusy bool) {
	t.Helper()
	adaptive, err := New(geo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := cfg
	ref.FullScan = true
	full, err := New(geo, ref)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pages := geo.TotalPages()
	for epoch := 0; epoch < epochs; epoch++ {
		// A drifting skewed workload: most references go to a window of
		// pages that shifts every epoch, so the hot set keeps churning
		// and every rebalance has real decisions to make.
		base := (epoch * 37) % pages
		n := 50 + rng.Intn(300)
		for i := 0; i < n; i++ {
			var p int
			if rng.Intn(10) < 8 {
				p = (base + rng.Intn(20)) % pages
			} else {
				p = rng.Intn(pages)
			}
			adaptive.Observe(memsys.PageID(p))
			full.Observe(memsys.PageID(p))
		}
		var busy func(memsys.PageID) bool
		if withBusy {
			// Both managers must see the same busy set; derive it from
			// the page ID and epoch, not from the rng stream.
			e := epoch
			busy = func(p memsys.PageID) bool { return (int(p)+e)%7 == 0 }
		}
		ma := adaptive.Rebalance(busy)
		mf := full.Rebalance(busy)
		if ma != mf {
			t.Fatalf("epoch %d: adaptive moved %d pages, full scan %d", epoch, ma, mf)
		}
		for p := 0; p < pages; p++ {
			if adaptive.loc[p] != full.loc[p] {
				t.Fatalf("epoch %d: page %d on chip %d (adaptive) vs %d (full)",
					epoch, p, adaptive.loc[p], full.loc[p])
			}
			if adaptive.counts[p] != full.counts[p] {
				t.Fatalf("epoch %d: page %d count %d (adaptive) vs %d (full)",
					epoch, p, adaptive.counts[p], full.counts[p])
			}
		}
		for c := 0; c < geo.NumChips; c++ {
			if adaptive.GroupOfChip(c) != full.GroupOfChip(c) {
				t.Fatalf("epoch %d: chip %d group %d (adaptive) vs %d (full)",
					epoch, c, adaptive.GroupOfChip(c), full.GroupOfChip(c))
			}
		}
		if err := adaptive.checkInvariants(); err != nil {
			t.Fatalf("epoch %d: adaptive invariants: %v", epoch, err)
		}
		if err := full.checkInvariants(); err != nil {
			t.Fatalf("epoch %d: full-scan invariants: %v", epoch, err)
		}
	}
	if adaptive.MigratedPages != full.MigratedPages || adaptive.SkippedBusy != full.SkippedBusy {
		t.Fatalf("stats diverged: adaptive moved %d skipped %d, full moved %d skipped %d",
			adaptive.MigratedPages, adaptive.SkippedBusy, full.MigratedPages, full.SkippedBusy)
	}
}

// TestAdaptiveMatchesFullScan is the dirty-set contract: across many
// epochs of a drifting workload, the adaptive scan makes exactly the
// moves the full reference scan makes.
func TestAdaptiveMatchesFullScan(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		busy bool
	}{
		{"default", func(*Config) {}, false},
		{"busy pages", func(*Config) {}, true},
		{"hysteresis", func(c *Config) { c.MigrateRatio = 2 }, true},
		{"three groups", func(c *Config) { c.Groups = 3 }, false},
		{"six groups busy", func(c *Config) { c.Groups = 6 }, true},
		{"no aging", func(c *Config) { c.AgeShift = 0 }, false},
		{"deep aging", func(c *Config) { c.AgeShift = 3; c.MinHotCount = 1 }, true},
		{"tiny hot share", func(c *Config) { c.HotShare = 0.05 }, false},
		{"huge hot share", func(c *Config) { c.HotShare = 0.95 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			for seed := int64(1); seed <= 4; seed++ {
				driveBoth(t, cfg, smallGeo(), seed, 30, tc.busy)
			}
		})
	}
}

// TestAdaptiveSkipsCleanChips checks the point of the exercise: with
// traffic confined to pages of a few chips, rebalances stop reading
// the untouched chips at all.
func TestAdaptiveSkipsCleanChips(t *testing.T) {
	m, err := New(smallGeo(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved start: pages 0 and 1 sit on chips 0 and 1, so the
	// whole workload touches two of the eight chips.
	const epochs = 10
	for e := 0; e < epochs; e++ {
		for i := 0; i < 12; i++ {
			m.Observe(memsys.PageID(0))
			m.Observe(memsys.PageID(1))
		}
		m.Rebalance(nil)
	}
	if m.ScannedChips >= int64(epochs*m.geo.NumChips) {
		t.Fatalf("ScannedChips = %d, expected well under %d (no skipping happened)",
			m.ScannedChips, epochs*m.geo.NumChips)
	}
	// Two resident chips at most, possibly one after the hot pages
	// migrate together.
	if m.ScannedChips > int64(epochs*3) {
		t.Errorf("ScannedChips = %d for a 2-chip workload over %d epochs", m.ScannedChips, epochs)
	}
}

// TestObserveDoesNotAllocate guards the hot-path contract: tracking a
// page in the live set must stay within the preallocated lists.
func TestObserveDoesNotAllocate(t *testing.T) {
	m, err := New(smallGeo(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	pages := m.geo.TotalPages()
	for epoch := 0; epoch < 5; epoch++ {
		allocs := testing.AllocsPerRun(200, func() {
			m.Observe(memsys.PageID(rng.Intn(pages)))
		})
		if allocs != 0 {
			t.Fatalf("epoch %d: Observe allocated %.1f times per call", epoch, allocs)
		}
		m.Rebalance(nil)
		if err := m.checkInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
