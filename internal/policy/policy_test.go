package policy

import (
	"testing"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

func TestDynamicChain(t *testing.T) {
	d := NewDynamic()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	wait, next, ok := d.NextStep(energy.Active)
	if !ok || next != energy.Standby || wait != 10*sim.Nanosecond {
		t.Fatalf("active step: wait=%v next=%v ok=%v", wait, next, ok)
	}
	wait, next, ok = d.NextStep(energy.Standby)
	if !ok || next != energy.Nap || wait != d.NapAfter {
		t.Fatalf("standby step: wait=%v next=%v ok=%v", wait, next, ok)
	}
	wait, next, ok = d.NextStep(energy.Nap)
	if !ok || next != energy.Powerdown || wait != d.PowerdownAfter {
		t.Fatalf("nap step: wait=%v next=%v ok=%v", wait, next, ok)
	}
	if _, _, ok := d.NextStep(energy.Powerdown); ok {
		t.Fatal("powerdown should be terminal")
	}
	if d.Name() != "dynamic" {
		t.Fatalf("name = %q", d.Name())
	}
}

func TestDynamicChainWalk(t *testing.T) {
	// Walking the chain from Active must terminate in Powerdown in
	// exactly three steps, strictly deepening.
	d := NewDynamic()
	s := energy.Active
	steps := 0
	for {
		_, next, ok := d.NextStep(s)
		if !ok {
			break
		}
		if next <= s {
			t.Fatalf("chain does not deepen: %v -> %v", s, next)
		}
		s = next
		steps++
		if steps > 10 {
			t.Fatal("chain does not terminate")
		}
	}
	if s != energy.Powerdown || steps != 3 {
		t.Fatalf("walk ended at %v after %d steps", s, steps)
	}
}

func TestDynamicValidate(t *testing.T) {
	bad := &Dynamic{StandbyAfter: -1}
	if bad.Validate() == nil {
		t.Fatal("expected error for negative threshold")
	}
}

func TestStatic(t *testing.T) {
	p := &Static{Mode: energy.Nap}
	wait, next, ok := p.NextStep(energy.Active)
	if !ok || wait != 0 || next != energy.Nap {
		t.Fatalf("static active step: %v %v %v", wait, next, ok)
	}
	if _, _, ok := p.NextStep(energy.Nap); ok {
		t.Fatal("static mode should be terminal")
	}
	if _, _, ok := p.NextStep(energy.Powerdown); ok {
		t.Fatal("other states should be terminal")
	}
	if p.Name() != "static-nap" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestStaticActiveMode(t *testing.T) {
	p := &Static{Mode: energy.Active}
	if _, _, ok := p.NextStep(energy.Active); ok {
		t.Fatal("static-active should never transition")
	}
}

func TestStaticValidate(t *testing.T) {
	for m := energy.Active; m <= energy.Powerdown; m++ {
		if err := (&Static{Mode: m}).Validate(); err != nil {
			t.Errorf("mode %v rejected: %v", m, err)
		}
	}
	if (&Static{Mode: energy.Powerdown + 1}).Validate() == nil {
		t.Error("out-of-range park mode accepted")
	}
}

func TestAlwaysActive(t *testing.T) {
	var p AlwaysActive
	if _, _, ok := p.NextStep(energy.Active); ok {
		t.Fatal("always-active should never transition")
	}
	if p.Name() != "always-active" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestBreakEvenDynamic(t *testing.T) {
	d := BreakEvenDynamic(1.0)
	if d.StandbyAfter != energy.BreakEven(energy.Standby) {
		t.Errorf("standby threshold %v != break-even", d.StandbyAfter)
	}
	if d.PowerdownAfter != energy.BreakEven(energy.Powerdown) {
		t.Errorf("powerdown threshold %v != break-even", d.PowerdownAfter)
	}
	d2 := BreakEvenDynamic(2.0)
	if d2.NapAfter != 2*d.NapAfter {
		t.Errorf("scaling broken: %v vs %v", d2.NapAfter, d.NapAfter)
	}
}

func TestBreakEvenDynamicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for scale <= 0")
		}
	}()
	BreakEvenDynamic(0)
}

func TestPolicyInterfaceCompliance(t *testing.T) {
	for _, p := range []Policy{NewDynamic(), &Static{Mode: energy.Nap}, AlwaysActive{}, BreakEvenDynamic(1)} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}
