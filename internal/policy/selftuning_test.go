package policy

import (
	"testing"
	"testing/quick"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

func TestSelfTuningDefaults(t *testing.T) {
	p := NewSelfTuning()
	if p.Name() != "self-tuning" {
		t.Fatalf("name = %q", p.Name())
	}
	// Before any adaptation it behaves like the default dynamic chain.
	wait, next, ok := p.NextStep(energy.Active)
	d := NewDynamic()
	if !ok || next != energy.Standby || wait != d.StandbyAfter {
		t.Fatalf("initial step: %v %v %v", wait, next, ok)
	}
}

func TestSelfTuningShrinksOnLongGaps(t *testing.T) {
	p := NewSelfTuning()
	p.Window = 16
	before := p.Thresholds().StandbyAfter
	// Long idle gaps (1 ms): sleeping earlier is free, threshold should
	// shrink toward break-even.
	for round := 0; round < 8; round++ {
		for i := 0; i < p.Window; i++ {
			p.ObserveGap(sim.Duration(1 * sim.Millisecond))
		}
	}
	after := p.Thresholds().StandbyAfter
	if p.Adaptations == 0 {
		t.Fatal("never adapted")
	}
	// Long gaps dwarf any threshold: converge on the break-even floor
	// so chips sleep as soon as sleeping pays.
	if after >= before {
		t.Fatalf("threshold did not shrink: %v -> %v", before, after)
	}
	if after < p.Floor {
		t.Fatalf("threshold %v under floor %v", after, p.Floor)
	}
}

func TestSelfTuningFloorsOnShortGaps(t *testing.T) {
	p := NewSelfTuning()
	p.Window = 16
	// Gaps near break-even: the threshold rises past the typical gap so
	// the chip stops paying transitions for nothing.
	for round := 0; round < 12; round++ {
		for i := 0; i < p.Window; i++ {
			p.ObserveGap(20 * sim.Nanosecond)
		}
	}
	got := p.Thresholds().StandbyAfter
	if got < p.Floor {
		t.Fatalf("threshold %v fell below floor %v", got, p.Floor)
	}
	if got < 30*sim.Nanosecond {
		t.Fatalf("threshold %v did not rise past the 20ns gaps", got)
	}
	if got > p.Ceiling {
		t.Fatalf("threshold %v above ceiling", got)
	}
}

func TestSelfTuningChainStaysOrdered(t *testing.T) {
	p := NewSelfTuning()
	p.Window = 8
	for i := 0; i < 100; i++ {
		p.ObserveGap(sim.Duration(1+i%50) * sim.Microsecond)
	}
	th := p.Thresholds()
	if th.StandbyAfter <= 0 || th.NapAfter < th.StandbyAfter || th.PowerdownAfter < th.StandbyAfter {
		t.Fatalf("chain disordered: %+v", th)
	}
	// Powerdown threshold never undercuts its break-even.
	if th.PowerdownAfter < energy.BreakEven(energy.Powerdown) {
		t.Fatalf("powerdown threshold %v below break-even", th.PowerdownAfter)
	}
}

func TestSelfTuningNegativeGapPanics(t *testing.T) {
	p := NewSelfTuning()
	defer func() {
		if recover() == nil {
			t.Fatal("negative gap accepted")
		}
	}()
	p.ObserveGap(-1)
}

// Property: whatever gaps are observed, thresholds stay within
// [floor, ceiling] for the first step and the chain remains walkable to
// powerdown.
func TestQuickSelfTuningBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		p := NewSelfTuning()
		p.Window = 8
		for _, r := range raw {
			p.ObserveGap(sim.Duration(r % 100_000_000)) // up to 100 us
		}
		th := p.Thresholds()
		if th.StandbyAfter < p.Floor/2 || th.StandbyAfter > p.Ceiling {
			return false
		}
		s := energy.Active
		for i := 0; i < 4; i++ {
			_, next, ok := p.NextStep(s)
			if !ok {
				break
			}
			if next <= s {
				return false
			}
			s = next
		}
		return s == energy.Powerdown
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianOf(t *testing.T) {
	if got := medianOf([]sim.Duration{5, 1, 9, 3, 7}); got != 5 {
		t.Fatalf("median = %v", got)
	}
	if got := medianOf([]sim.Duration{2, 1}); got != 2 {
		t.Fatalf("median of 2 = %v", got)
	}
}
