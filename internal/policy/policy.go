// Package policy implements the low-level memory power-management
// policies that the paper's DMA-aware techniques sit on top of.
//
// The baseline throughout the evaluation is the dynamic threshold
// policy of Lebeck et al. (ASPLOS 2000): a chip that has been idle for
// a threshold amount of time transitions to the next lower power mode,
// with a separate threshold per mode. Static policies, which park an
// idle chip in one fixed mode, are provided for comparison; the paper
// notes both are compatible with DMA-TA/PL.
package policy

import (
	"fmt"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

// Policy tells the memory controller how to manage an idle chip. After
// a chip has been idle in state s for the returned wait, it should be
// sent to state next. ok=false means s is terminal: stay there until
// the next request.
type Policy interface {
	NextStep(s energy.State) (wait sim.Duration, next energy.State, ok bool)
	Name() string
}

// Dynamic is the multi-threshold chain used as the paper's baseline.
// The zero value is not useful; use NewDynamic or fill all thresholds.
type Dynamic struct {
	// StandbyAfter is the Active idleness threshold before entering
	// standby ("Active Idle Threshold" energy in the breakdowns).
	StandbyAfter sim.Duration
	// NapAfter is the standby residence before dropping to nap.
	NapAfter sim.Duration
	// PowerdownAfter is the nap residence before dropping to powerdown.
	PowerdownAfter sim.Duration
}

// NewDynamic returns the threshold chain used in our evaluation. The
// first threshold is on the order of the 20-30 memory cycles the paper
// quotes as the best active->low-power setting; deeper thresholds are
// anchored to the break-even times of the deeper states so the chain
// stays competitive.
func NewDynamic() *Dynamic {
	return &Dynamic{
		StandbyAfter:   16 * energy.MemoryCycle, // 10 ns
		NapAfter:       100 * sim.Nanosecond,
		PowerdownAfter: 2 * sim.Microsecond,
	}
}

// NextStep implements Policy.
func (d *Dynamic) NextStep(s energy.State) (sim.Duration, energy.State, bool) {
	switch s {
	case energy.Active:
		return d.StandbyAfter, energy.Standby, true
	case energy.Standby:
		return d.NapAfter, energy.Nap, true
	case energy.Nap:
		return d.PowerdownAfter, energy.Powerdown, true
	default:
		return 0, s, false
	}
}

// Name implements Policy.
func (d *Dynamic) Name() string { return "dynamic" }

// Validate rejects nonsensical threshold chains.
func (d *Dynamic) Validate() error {
	if d.StandbyAfter < 0 || d.NapAfter < 0 || d.PowerdownAfter < 0 {
		return fmt.Errorf("policy: negative threshold in %+v", *d)
	}
	return nil
}

// Static parks an idle chip directly in Mode and leaves it there, the
// static scheme described in Section 2.2.
type Static struct {
	Mode energy.State
}

// NextStep implements Policy.
func (p *Static) NextStep(s energy.State) (sim.Duration, energy.State, bool) {
	if s == energy.Active && p.Mode != energy.Active {
		return 0, p.Mode, true
	}
	return 0, s, false
}

// Name implements Policy.
func (p *Static) Name() string { return "static-" + p.Mode.String() }

// Validate rejects park modes outside the chip's state machine.
// (Mode == Active is allowed: it degenerates to no power management,
// like AlwaysActive.)
func (p *Static) Validate() error {
	if p.Mode > energy.Powerdown {
		return fmt.Errorf("policy: static park mode %d beyond %v",
			int(p.Mode), energy.Powerdown)
	}
	return nil
}

// AlwaysActive never powers down; it gives the no-energy-management
// performance reference (the T in the paper's performance guarantee).
type AlwaysActive struct{}

// NextStep implements Policy.
func (AlwaysActive) NextStep(energy.State) (sim.Duration, energy.State, bool) {
	return 0, energy.Active, false
}

// Name implements Policy.
func (AlwaysActive) Name() string { return "always-active" }

// BreakEvenDynamic builds a dynamic chain whose thresholds equal the
// break-even times of the target states, the classic 2-competitive
// setting, scaled by a factor (1.0 = exactly break-even).
func BreakEvenDynamic(scale float64) *Dynamic {
	if scale <= 0 {
		panic(fmt.Sprintf("policy: nonpositive break-even scale %g", scale))
	}
	return &Dynamic{
		StandbyAfter:   sim.Duration(float64(energy.BreakEven(energy.Standby)) * scale),
		NapAfter:       sim.Duration(float64(energy.BreakEven(energy.Nap)) * scale),
		PowerdownAfter: sim.Duration(float64(energy.BreakEven(energy.Powerdown)) * scale),
	}
}
