package policy

import (
	"fmt"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

// SelfTuning is a threshold chain that adapts to the observed idle-gap
// distribution, in the spirit of the performance-directed self-tuning
// schemes of Li et al. (ASPLOS 2004) that the paper reports trying as
// an alternative low-level policy ("the results were similar since the
// large size of DMA transfers makes memory energy consumption almost
// insensitive to the threshold setting" — a claim the ablation
// benchmarks reproduce).
//
// The controller feeds every completed idle gap to ObserveGap. Each
// Window gaps, the policy re-centers its first threshold between the
// break-even time and the observed median gap: if most gaps are far
// longer than break-even, waiting longer before sleeping buys nothing,
// so the threshold shrinks toward break-even; if gaps cluster near the
// threshold, it grows to avoid transition thrash.
type SelfTuning struct {
	// Window is the number of observed gaps per adaptation step.
	Window int
	// Floor and Ceiling bound the adapted first threshold.
	Floor, Ceiling sim.Duration

	current Dynamic
	gaps    []sim.Duration
	// Adaptations counts re-tuning steps (for tests and reports).
	Adaptations int64
}

// NewSelfTuning returns a self-tuning chain starting from the default
// dynamic thresholds.
func NewSelfTuning() *SelfTuning {
	return &SelfTuning{
		Window:  256,
		Floor:   energy.BreakEven(energy.Standby),
		Ceiling: 10 * sim.Microsecond,
		current: *NewDynamic(),
	}
}

// NextStep implements Policy.
func (p *SelfTuning) NextStep(s energy.State) (sim.Duration, energy.State, bool) {
	return p.current.NextStep(s)
}

// Name implements Policy.
func (p *SelfTuning) Name() string { return "self-tuning" }

// Thresholds returns the current chain (for tests).
func (p *SelfTuning) Thresholds() Dynamic { return p.current }

// ObserveGap records one completed idle gap. Controllers that support
// adaptive policies call it when a chip leaves the idle state.
func (p *SelfTuning) ObserveGap(gap sim.Duration) {
	if gap < 0 {
		panic(fmt.Sprintf("policy: negative idle gap %v", gap))
	}
	p.gaps = append(p.gaps, gap)
	if len(p.gaps) < p.Window {
		return
	}
	p.adapt()
	p.gaps = p.gaps[:0]
}

func (p *SelfTuning) adapt() {
	p.Adaptations++
	median := medianOf(p.gaps)
	// Gaps far beyond the break-even floor: waiting longer before
	// sleeping is pure waste, so converge on the floor. Gaps near or
	// below break-even: sleeping mid-gap pays transitions for nothing,
	// so raise the threshold past the typical gap (bounded by the
	// ceiling).
	var target sim.Duration
	if median >= 8*p.Floor {
		target = p.Floor
	} else {
		target = 2 * median
		if target < p.Floor {
			target = p.Floor
		}
		if target > p.Ceiling {
			target = p.Ceiling
		}
	}
	// Move halfway to the target for stability.
	p.current.StandbyAfter = (p.current.StandbyAfter + target) / 2
	p.current.NapAfter = 10 * p.current.StandbyAfter
	if be := energy.BreakEven(energy.Nap); p.current.NapAfter < be {
		p.current.NapAfter = be
	}
	p.current.PowerdownAfter = 20 * p.current.StandbyAfter
	if be := energy.BreakEven(energy.Powerdown); p.current.PowerdownAfter < be {
		p.current.PowerdownAfter = be
	}
}

func medianOf(gaps []sim.Duration) sim.Duration {
	// Selection by copy-and-sort is fine at Window scale.
	tmp := append([]sim.Duration(nil), gaps...)
	for i := 1; i < len(tmp); i++ { // insertion sort: short, allocation-free
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	return tmp[len(tmp)/2]
}

// GapObserver is implemented by adaptive policies that want to see
// completed idle gaps.
type GapObserver interface {
	ObserveGap(gap sim.Duration)
}

// TimedGapObserver is a GapObserver variant that also receives the
// instant the gap closed. The parallel core's per-partition gap
// recorders implement it so observations from different channels can
// be replayed to the master policy in global time order at epoch
// barriers; a controller prefers it over GapObserver when both are
// implemented.
type TimedGapObserver interface {
	ObserveGapAt(at sim.Time, gap sim.Duration)
}

// Replicable is implemented by gap-observing policies that can run on
// multi-channel parallel topologies. Each channel partition serves
// threshold queries from its own replica while the barrier merges the
// partitions' gap observations into the master in global time order
// and then re-syncs every replica from the master's adapted state.
// Replicas may therefore serve thresholds that lag the master by up to
// one barrier span — the multi-channel parallel scheme's documented
// semantics — but the lag is a pure function of simulated time, so
// results stay worker-count invariant.
type Replicable interface {
	Policy
	// Replicate returns a fresh policy sharing the receiver's tuning
	// parameters and current thresholds but none of its observation
	// state.
	Replicate() Policy
	// SyncReplica copies the receiver's current adapted state into a
	// policy previously returned by Replicate.
	SyncReplica(replica Policy)
}

// Replicate implements Replicable: the replica starts from the
// master's current thresholds with an empty observation window.
func (p *SelfTuning) Replicate() Policy {
	return &SelfTuning{
		Window:  p.Window,
		Floor:   p.Floor,
		Ceiling: p.Ceiling,
		current: p.current,
	}
}

// SyncReplica implements Replicable.
func (p *SelfTuning) SyncReplica(replica Policy) {
	r, ok := replica.(*SelfTuning)
	if !ok {
		panic(fmt.Sprintf("policy: SyncReplica of %T into %T", p, replica))
	}
	r.current = p.current
}
