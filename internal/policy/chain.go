package policy

import (
	"fmt"

	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

// ModelValidator is implemented by policies that constrain which
// power-state machines they can drive. The controller checks it (in
// preference to the plain Validate) against the resolved energy.Model
// before a run, so a 4-state chain cannot silently mis-drive a 5-state
// DDR4 machine.
type ModelValidator interface {
	ValidateForModel(m *energy.Model) error
}

// Chain is the model-generic successor of Dynamic: a demotion chain
// with one idleness threshold per state, sized by the technology's
// state machine rather than hard-wired to the 4-state RDRAM enum.
// Thresholds[i] is the idle time in state i before demotion to state
// i+1; a shorter chain simply stops early (deeper states unused).
type Chain struct {
	// Label is the reported policy name; empty means "dynamic" so the
	// default chain reports like the classic Dynamic policy.
	Label string
	// Thresholds, one per demotion step.
	Thresholds []sim.Duration
}

// ChainFor returns the technology's default demotion chain: the
// model's calibrated thresholds, one per demotion step. For the
// default RDRAM model the waits equal NewDynamic exactly.
func ChainFor(m *energy.Model) *Chain {
	return &Chain{Thresholds: append([]sim.Duration(nil), m.Thresholds...)}
}

// NextStep implements Policy.
func (c *Chain) NextStep(s energy.State) (sim.Duration, energy.State, bool) {
	if int(s) < len(c.Thresholds) {
		return c.Thresholds[s], s + 1, true
	}
	return 0, s, false
}

// Name implements Policy.
func (c *Chain) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return "dynamic"
}

// Validate rejects nonsensical threshold chains.
func (c *Chain) Validate() error {
	for i, th := range c.Thresholds {
		if th < 0 {
			return fmt.Errorf("policy: negative threshold %v at chain step %d", th, i)
		}
	}
	return nil
}

// ValidateForModel implements ModelValidator: the chain must not
// demote past the model's deepest state.
func (c *Chain) ValidateForModel(m *energy.Model) error {
	if len(c.Thresholds) > m.NumStates()-1 {
		return fmt.Errorf("policy: chain with %d thresholds demotes past the %d states of model %s",
			len(c.Thresholds), m.NumStates(), m.Name)
	}
	return c.Validate()
}

// ValidateForModel implements ModelValidator: the park mode must be a
// state of the machine.
func (p *Static) ValidateForModel(m *energy.Model) error {
	if int(p.Mode) >= m.NumStates() {
		return fmt.Errorf("policy: static park mode %d beyond %s (deepest state of model %s)",
			int(p.Mode), m.StateName(m.Deepest()), m.Name)
	}
	return nil
}

// ValidateForModel implements ModelValidator: Dynamic walks the fixed
// 4-state RDRAM enum, so it needs a machine with exactly those depths.
// Use Chain (or ChainFor) for other technologies.
func (d *Dynamic) ValidateForModel(m *energy.Model) error {
	if m.NumStates() != 4 {
		return fmt.Errorf("policy: dynamic drives a 4-state chain; model %s has %d states (use a Chain policy)",
			m.Name, m.NumStates())
	}
	return d.Validate()
}

// ValidateForModel implements ModelValidator: SelfTuning adapts the
// 4-state Dynamic chain against RDRAM break-even times.
func (p *SelfTuning) ValidateForModel(m *energy.Model) error {
	if m.NumStates() != 4 {
		return fmt.Errorf("policy: self-tuning drives the 4-state dynamic chain; model %s has %d states",
			m.Name, m.NumStates())
	}
	return nil
}
