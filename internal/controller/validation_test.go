package controller

// Cross-validation of the fluid service model against exact
// request-level schedules (DESIGN.md's fidelity check): for scenarios
// where every 8-byte DMA-memory request can be enumerated, the fluid
// controller must reproduce the same service times, utilization
// factors and serving energy.

import (
	"math"
	"testing"
	"testing/quick"

	"dmamem/internal/bus"
	"dmamem/internal/dma"
	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// runAligned drives n same-size transfers from n distinct buses to one
// chip, all arriving at once, and returns the report plus the chip.
func runAligned(t *testing.T, n, pages int) (*Controller, *memsys.Chip) {
	t.Helper()
	cfg := baseConfig()
	cfg.Buses.Count = n
	// Keep each transfer on one chip: sequential layout puts pages
	// 0..4095 on chip 0.
	cfg.Mapper = memsys.SequentialMapper{PagesPerChip: cfg.Geometry.PagesPerChip()}
	eng := sim.New()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x := dma.Transfer{
			ID: int64(i), Bus: i,
			Page: memsys.PageID(i * 32), Pages: pages, // all on chip 0
		}
		eng.SchedulePrio(0, prioArrival, func(*sim.Engine) { c.StartTransfer(x) })
	}
	eng.Run()
	c.Finish(eng.Now())
	return c, c.ChipModels()[0]
}

func TestFluidMatchesExactUtilization(t *testing.T) {
	// k simultaneous streams from distinct buses: the exact schedule's
	// utilization (k/3 for k <= 3) must match the fluid model's.
	for k := 1; k <= 3; k++ {
		exact := dma.ExactSchedule(0, k, 512,
			12*625*sim.Picosecond, 4*625*sim.Picosecond)
		wantUF := dma.UtilizationOf(exact)

		_, chip := runAligned(t, k, 4)
		gotUF := chip.UtilizationFactor()
		if math.Abs(gotUF-wantUF) > 0.02 {
			t.Errorf("k=%d: fluid uf %.4f vs exact %.4f", k, gotUF, wantUF)
		}
	}
}

func TestFluidMatchesExactServiceTime(t *testing.T) {
	// A lone 4-page transfer: exact duration = 4096 requests x 7.5 ns
	// (bus-limited), plus the powerdown wake.
	c, _ := runAligned(t, 1, 4)
	wake := energy.PowerdownToActive.Time
	exact := sim.Duration(4*1024) * 7500 * sim.Picosecond
	got := c.xferTimes.Mean()
	want := sim.Duration(wake) + exact
	if diff := got - want; diff < -sim.Nanosecond || diff > 50*sim.Nanosecond {
		t.Errorf("service = %v, want %v", got, want)
	}
}

func TestFluidMatchesExactServingEnergy(t *testing.T) {
	// Serving energy is bytes/Rm x active power, independent of
	// alignment. Check for 1..3 streams.
	for k := 1; k <= 3; k++ {
		_, chip := runAligned(t, k, 2)
		bytes := float64(k) * 2 * 8192
		wantJ := bytes / 3.2e9 * energy.ActivePower
		gotJ := chip.Meter.Breakdown()[energy.CatServing]
		if math.Abs(gotJ-wantJ)/wantJ > 1e-6 {
			t.Errorf("k=%d: serving %.4g J vs exact %.4g J", k, gotJ, wantJ)
		}
	}
}

func TestFluidSameBusSerialization(t *testing.T) {
	// Two same-bus transfers to one chip: the bus splits beats between
	// them, so the chip still sees one full-rate request stream — the
	// envelope doubles and uf stays 1/3, exactly as beat-interleaving
	// gives.
	cfg := baseConfig()
	cfg.Mapper = memsys.SequentialMapper{PagesPerChip: cfg.Geometry.PagesPerChip()}
	eng := sim.New()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		x := dma.Transfer{ID: int64(i), Bus: 0, Page: memsys.PageID(i * 32), Pages: 2}
		eng.SchedulePrio(0, prioArrival, func(*sim.Engine) { c.StartTransfer(x) })
	}
	eng.Run()
	c.Finish(eng.Now())
	chip := c.ChipModels()[0]
	if uf := chip.UtilizationFactor(); math.Abs(uf-1.0/3.0) > 0.01 {
		t.Errorf("same-bus uf = %.4f, want 1/3", uf)
	}
	// Envelope = 2 transfers x 2 pages at bus rate.
	want := sim.Duration(2*2*1024) * 7500 * sim.Picosecond
	if got := chip.TransferTime; math.Abs(float64(got-want))/float64(want) > 0.01 {
		t.Errorf("envelope %v, want %v", got, want)
	}
}

func TestFluidCrossChipBusSharing(t *testing.T) {
	// Two same-bus transfers to two different chips: each chip sees a
	// half-rate stream (alternating bursts). Per chip: envelope equals
	// the full span, but half of it is micro-nap, so the transfer
	// envelope (serving + mismatch idle) equals one transfer at full
	// rate and uf stays 1/3.
	cfg := baseConfig()
	eng := sim.New()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		x := dma.Transfer{ID: int64(i), Bus: 0, Page: memsys.PageID(i), Pages: 1} // interleaved: chips 0 and 1
		eng.SchedulePrio(0, prioArrival, func(*sim.Engine) { c.StartTransfer(x) })
	}
	eng.Run()
	c.Finish(eng.Now())
	for i := 0; i < 2; i++ {
		chip := c.ChipModels()[i]
		if uf := chip.UtilizationFactor(); math.Abs(uf-1.0/3.0) > 0.02 {
			t.Errorf("chip %d uf = %.4f, want 1/3", i, uf)
		}
		// Micro-nap must be present: the half-rate stream leaves
		// burst gaps charged at nap power.
		low := chip.Meter.Breakdown()[energy.CatLowPower]
		if low <= 0 {
			t.Errorf("chip %d has no micro-nap energy", i)
		}
	}
}

// Property: for any number of pages and any k in 1..3, the fluid
// model's chip-0 utilization equals min(1, k/3) within tolerance, and
// total energy is finite and positive.
func TestQuickFluidUtilization(t *testing.T) {
	f := func(k8, pages8 uint8) bool {
		k := 1 + int(k8)%3
		pages := 1 + int(pages8)%6
		cfg := baseConfig()
		cfg.Buses.Count = 3
		cfg.Mapper = memsys.SequentialMapper{PagesPerChip: cfg.Geometry.PagesPerChip()}
		eng := sim.New()
		c, err := New(eng, cfg)
		if err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			x := dma.Transfer{ID: int64(i), Bus: i, Page: memsys.PageID(i * 32), Pages: pages}
			eng.SchedulePrio(0, prioArrival, func(*sim.Engine) { c.StartTransfer(x) })
		}
		eng.Run()
		end := c.Finish(eng.Now())
		r := c.Report("x", end)
		want := math.Min(1, float64(k)*bus.PCIXBandwidth/3.2e9)
		if math.Abs(r.UtilizationFactor-want) > 0.02 {
			return false
		}
		return r.TotalEnergy() > 0 && !math.IsNaN(r.TotalEnergy())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy is conserved against the power envelope — total
// energy over any run lies between the all-powerdown floor and the
// all-active ceiling for the metered window.
func TestQuickEnergyEnvelope(t *testing.T) {
	f := func(seed uint8, n8 uint8) bool {
		cfg := baseConfig()
		eng := sim.New()
		c, err := New(eng, cfg)
		if err != nil {
			return false
		}
		n := 1 + int(n8)%20
		for i := 0; i < n; i++ {
			at := sim.Time(int(seed)+i*7) * sim.Time(sim.Microsecond)
			x := dma.Transfer{
				ID: int64(i), Bus: i % 3,
				Page: memsys.PageID((i * 13) % 256), Pages: 1 + i%3,
			}
			eng.SchedulePrio(at, prioArrival, func(*sim.Engine) { c.StartTransfer(x) })
		}
		eng.Run()
		end := c.Finish(eng.Now())
		r := c.Report("x", end)
		window := sim.Duration(end).Seconds()
		floor := 32 * energy.PowerdownPower * window
		ceiling := 32 * (energy.ActivePower + 0.01) * window
		total := r.TotalEnergy()
		return total >= floor*0.999 && total <= ceiling
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
