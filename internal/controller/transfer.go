package controller

import (
	"fmt"

	"dmamem/internal/dma"
	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/sim"
)

// Bus service model. DMA engines share their I/O bus at burst
// granularity (PCI-X arbitration grants bursts of a few hundred bytes
// to a few KB): concurrent transfers all make progress at max-min fair
// rates subject to bus and chip capacity. A chip receiving a
// rate-shared stream sees full-rate bursts separated by microsecond
// gaps, long enough to nap through — the energy accounting in
// account.go charges those gaps at nap power, while the
// bandwidth-mismatch idle *within* bursts (Figure 2a's 8-of-12-cycles
// waste) is charged at active power. Cross-bus streams to the same
// chip interleave their bursts, which is exactly the alignment DMA-TA
// engineers. A transfer gated by DMA-TA consumes no bus bandwidth:
// only its first request was issued, and the controller buffered it
// (Section 4.1.1).

// StartTransfer injects a DMA transfer at the current engine time.
// Callers schedule it from trace records with prioArrival.
func (c *Controller) StartTransfer(t dma.Transfer) {
	now := c.eng.Now()
	if t.Arrival != now {
		t.Arrival = now
	}
	if t.Bus < 0 || t.Bus >= c.cfg.Buses.Count {
		panic(fmt.Sprintf("controller: transfer %d on bus %d of %d", t.ID, t.Bus, c.cfg.Buses.Count))
	}
	c.accountAll(now)
	c.transfers++
	if c.cfg.Layout != nil {
		for p := 0; p < t.Pages; p++ {
			c.cfg.Layout.Observe(t.Page + memsys.PageID(p))
		}
	}
	x := &xferState{t: t}

	// The DMA-TA gating decision looks at the chip holding the
	// transfer's first page. Only the transfer's first request is ever
	// delayed; requests of transfers already in progress are not
	// (Section 4.1.1).
	cs := c.chips[c.chipOfSegmentStart(x)]
	if cs == nil {
		panic(fmt.Sprintf("controller: transfer %d starts on chip %d owned by another partition",
			t.ID, c.chipOfSegmentStart(x)))
	}
	c.noteArrival(cs, now)
	if c.taOn && !c.chipAvailable(cs) && c.gatherWorthwhile(cs) {
		c.gate(cs, x, now)
	} else {
		c.issueSegment(x, now)
	}
	c.recompute(now)
}

// noteArrival maintains the chip's EWMA DMA inter-arrival gap.
func (c *Controller) noteArrival(cs *chipState, now sim.Time) {
	if cs.lastArrival > 0 || cs.ewmaGapPs > 0 {
		gap := float64(now.Sub(cs.lastArrival))
		if cs.ewmaGapPs == 0 {
			cs.ewmaGapPs = gap
		} else {
			cs.ewmaGapPs = 0.8*cs.ewmaGapPs + 0.2*gap
		}
	}
	cs.lastArrival = now
}

// gatherWorthwhile is the run-time cost-benefit check: hold only when
// k-1 more transfers can plausibly arrive within the delay bound.
func (c *Controller) gatherWorthwhile(cs *chipState) bool {
	if c.cfg.TA.NoCostBenefit {
		return true
	}
	if cs.ewmaGapPs == 0 {
		return true // no history yet: gate optimistically
	}
	need := float64(c.kByChannel[cs.channel]-1) * cs.ewmaGapPs * 1.5
	return need <= float64(c.maxDelay)
}

// chipAvailable reports whether the chip would serve a request without
// delay: resident active, or already waking.
func (c *Controller) chipAvailable(cs *chipState) bool {
	if cs.wakePending {
		return true
	}
	return cs.chip.Resident() && cs.chip.State() == energy.Active
}

func (c *Controller) chipOfSegmentStart(x *xferState) int {
	return c.mapper.ChipOf(x.t.Page + memsys.PageID(x.pageIdx))
}

// issueSegment resolves the next chip-homogeneous run of pages under
// the current mapping and either starts its stream (chip active) or
// parks the transfer behind a wake.
func (c *Controller) issueSegment(x *xferState, now sim.Time) {
	first := x.t.Page + memsys.PageID(x.pageIdx)
	chip := c.mapper.ChipOf(first)
	pages := 1
	for x.pageIdx+pages < x.t.Pages {
		if c.mapper.ChipOf(first+memsys.PageID(pages)) != chip {
			break
		}
		pages++
	}
	x.seg = dma.Segment{Chip: chip, Page: first, Pages: pages}
	x.segSet = true
	cs := c.chips[chip]
	if cs == nil {
		panic(fmt.Sprintf("controller: transfer %d reaches chip %d owned by another partition; "+
			"the parallel core must split DMA records into channel-homogeneous sub-records", x.t.ID, chip))
	}
	if cs.chip.Resident() && cs.chip.State() == energy.Active {
		c.startFlow(cs, x, now)
		return
	}
	cs.waiting = append(cs.waiting, x)
	c.scheduleWake(cs, now)
}

// startFlow begins fluid service of the current segment.
func (c *Controller) startFlow(cs *chipState, x *xferState, now sim.Time) {
	if !x.segSet {
		panic("controller: startFlow without a segment")
	}
	c.cancelPolicyTimer(cs)
	c.markDirty(cs)
	f := &flow{
		x:         x,
		chip:      x.seg.Chip,
		bus:       x.t.Bus,
		remaining: float64(int64(x.seg.Pages) * int64(c.cfg.Geometry.PageBytes)),
	}
	cs.flows = append(cs.flows, f)
	c.allFlows = append(c.allFlows, f)
}

// advanceTransfer moves past the just-completed segment: next segment,
// or completion bookkeeping.
func (c *Controller) advanceTransfer(x *xferState, now sim.Time) {
	x.pageIdx += x.seg.Pages
	x.segSet = false
	if x.remainingPages() > 0 {
		c.issueSegment(x, now)
		return
	}
	c.xferTimes.Add(now.Sub(x.t.Arrival))
	c.gatherDelays.Add(x.gatherDelay)
}

// gate holds a transfer whose first pending request found the chip in
// a low-power mode (Section 4.1.1). The first request deposits its
// slack credit; release happens on gather, on slack exhaustion, on the
// hard delay bound, or when something else activates the chip.
func (c *Controller) gate(cs *chipState, x *xferState, now sim.Time) {
	x.gatedAt = now
	cs.gated = append(cs.gated, x)
	c.nGated++
	if c.nGated > c.PeakGated {
		c.PeakGated = c.nGated
	}
	c.slack += c.muT // the first request arrived
	c.ensureEpoch(now)
	c.checkRelease(cs, now)
}

// distinctGatedBuses counts buses with at least one gated transfer on
// the chip.
func (c *Controller) distinctGatedBuses(cs *chipState) int {
	seen := c.busSeenScratch
	for i := range seen {
		seen[i] = false
	}
	n := 0
	for _, x := range cs.gated {
		if !seen[x.t.Bus] {
			seen[x.t.Bus] = true
			n++
		}
	}
	return n
}

// maxPerBus returns m = max_i n_i over the chip's gated transfers.
func (c *Controller) maxPerBus(cs *chipState) int {
	counts := c.busCountScratch
	for i := range counts {
		counts[i] = 0
	}
	m := 0
	for _, x := range cs.gated {
		counts[x.t.Bus]++
		if counts[x.t.Bus] > m {
			m = counts[x.t.Bus]
		}
	}
	return m
}

// checkRelease applies Section 4.1.2: release the chip's gated
// transfers when k distinct buses are represented (full utilization is
// attainable), when the pessimistic queueing cost n*U/2 reaches the
// available slack, or when the oldest transfer hits the hard delay
// bound ("the access delay exceeds a threshold value").
func (c *Controller) checkRelease(cs *chipState, now sim.Time) {
	n := len(cs.gated)
	if n == 0 {
		return
	}
	k := c.kByChannel[cs.channel]
	if c.distinctGatedBuses(cs) >= k {
		c.RelGathered += int64(n)
		c.release(cs, now)
		return
	}
	for _, x := range cs.gated {
		if now.Sub(x.gatedAt) >= c.maxDelay {
			c.RelMaxDelay += int64(n)
			c.release(cs, now)
			return
		}
	}
	m := c.maxPerBus(cs)
	r := c.cfg.Buses.Count
	groups := (r + k - 1) / k
	u := float64(m) * float64(c.T()) * float64(groups)
	if float64(n)*u/2 >= c.slack {
		c.RelSlack += int64(n)
		c.release(cs, now)
	}
}

// release starts the gathered transfers: their buffered first requests
// are acknowledged and the streams proceed in lockstep behind one
// shared wake. The wake's transition delay is charged against the
// slack when the wake begins.
func (c *Controller) release(cs *chipState, now sim.Time) {
	n := len(cs.gated)
	if n == 0 {
		return
	}
	gated := cs.gated
	cs.gated = cs.gated[:0]
	c.nGated -= n
	for _, x := range gated {
		x.gatherDelay += now.Sub(x.gatedAt)
		c.issueSegment(x, now)
	}
}

// ensureEpoch arms the epoch timer when gated transfers exist.
func (c *Controller) ensureEpoch(now sim.Time) {
	if c.epochEvt.Valid() || c.nGated == 0 {
		return
	}
	c.epochAt = now.Add(c.cfg.TA.EpochLength)
	c.epochEvt = c.eng.SchedulePrio(c.epochAt, prioEpoch, c.onEpochFn)
}

// onEpoch charges the pessimistic epoch cost (epochLength * pending)
// and re-evaluates every gating chip.
func (c *Controller) onEpoch(e *sim.Engine) {
	now := e.Now()
	c.accountAll(now)
	if c.nGated > 0 {
		c.slack -= float64(c.cfg.TA.EpochLength) * float64(c.nGated)
		for _, cs := range c.chips {
			if cs != nil && len(cs.gated) > 0 {
				c.checkRelease(cs, now)
			}
		}
	}
	if c.nGated > 0 {
		c.epochAt = now.Add(c.cfg.TA.EpochLength)
		c.epochEvt = c.eng.SchedulePrio(c.epochAt, prioEpoch, c.onEpochFn)
	}
	c.recompute(now)
}

// ActivePages returns the pages of all unfinished transfers (flowing,
// waiting, or gated); the layout manager must not migrate them.
func (c *Controller) ActivePages() map[memsys.PageID]bool {
	busy := make(map[memsys.PageID]bool)
	add := func(x *xferState) {
		for p := x.pageIdx; p < x.t.Pages; p++ {
			busy[x.t.Page+memsys.PageID(p)] = true
		}
	}
	for _, f := range c.allFlows {
		add(f.x)
	}
	for _, cs := range c.chips {
		if cs == nil {
			continue
		}
		for _, x := range cs.gated {
			add(x)
		}
		for _, x := range cs.waiting {
			add(x)
		}
	}
	return busy
}
