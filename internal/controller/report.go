package controller

import (
	"fmt"

	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/metrics"
	"dmamem/internal/sim"
)

// Finish closes accounting at the later of the engine clock and the
// given floor (so runs over the same trace are metered over the same
// window regardless of how their tails drained). It must be called
// after the engine has drained.
func (c *Controller) Finish(endFloor sim.Time) sim.Time {
	if c.eng.Pending() > 0 {
		panic("controller: Finish before the engine drained")
	}
	end := c.eng.Now()
	if endFloor > end {
		end = endFloor
	}
	for _, cs := range c.chips {
		if cs == nil {
			continue
		}
		if len(cs.flows) > 0 || len(cs.gated) > 0 || len(cs.waiting) > 0 {
			panic(fmt.Sprintf("controller: chip %d still has work after drain", cs.chip.ID))
		}
		if cs.chip.Resident() && cs.chip.State() == energy.Active {
			c.settle(cs, end)
		}
		cs.chip.Close(end)
	}
	return end
}

// Report aggregates the run into a metrics.Report. scheme names the
// configuration; end is the instant returned by Finish.
func (c *Controller) Report(scheme string, end sim.Time) *metrics.Report {
	return MergeReports(scheme, end, c)
}

// MergeReports aggregates one run across controllers — the single
// serial controller, or one channel-partitioned controller per shard
// of the parallel barrier engine. Pass partitions in channel order:
// the topology assigns each channel a contiguous block of chip IDs, so
// ctl order then equals global chip order and the order-sensitive
// float accumulation (energy sums) matches the serial single-
// controller report exactly. Every controller must already be
// Finished; end is the maximum of their Finish results.
func MergeReports(scheme string, end sim.Time, ctls ...*Controller) *metrics.Report {
	if len(ctls) == 0 {
		panic("controller: MergeReports needs at least one controller")
	}
	r := &metrics.Report{
		Scheme:        scheme,
		SimulatedTime: sim.Duration(end),
	}
	r.Channels = ctls[0].channels
	r.ChannelEnergy = make([]energy.Breakdown, r.Channels)
	r.StateNames = ctls[0].model.StateNames()
	r.Residency = make([]sim.Duration, ctls[0].model.NumStates())
	r.StateEnergy = make([]float64, ctls[0].model.NumStates())
	var transferTime, servingTime sim.Duration
	var xferTimes, gatherDelays metrics.DurationStats
	var seenLayouts []*Controller
	for _, c := range ctls {
		r.Transfers += c.transfers
		r.Events += c.eng.Steps()
		r.ClampedProcSpans += c.clampedProc
		for _, cs := range c.chips {
			if cs == nil {
				continue
			}
			b := cs.chip.Meter.Breakdown()
			r.Energy.Add(&b)
			r.ChannelEnergy[cs.channel].Add(&b)
			r.Wakes += cs.chip.Wakes
			transferTime += cs.chip.TransferTime
			servingTime += cs.chip.ServingTime
			for s, d := range cs.chip.Residency {
				r.Residency[s] += d
			}
			for s, j := range cs.chip.StateEnergy {
				r.StateEnergy[s] += j
			}
		}
		if c.cfg.Layout != nil {
			dup := false
			for _, p := range seenLayouts {
				if p.cfg.Layout == c.cfg.Layout {
					dup = true
					break
				}
			}
			if !dup {
				seenLayouts = append(seenLayouts, c)
				r.Energy[energy.CatMigration] += c.cfg.Layout.MigrationEnergyJ
				r.Migrations += c.cfg.Layout.MigratedPages
			}
		}
		xferTimes.Merge(&c.xferTimes)
		gatherDelays.Merge(&c.gatherDelays)
	}
	if transferTime > 0 {
		r.UtilizationFactor = float64(servingTime) / float64(transferTime)
	}
	r.MeanServiceTime = xferTimes.Mean()
	if xferTimes.Count() > 0 {
		r.P95ServiceTime = xferTimes.Percentile(0.95)
		r.MaxServiceTime = xferTimes.Max()
	}
	r.MeanGatherDelay = gatherDelays.Mean()
	return r
}

// ChipModels exposes the per-chip state machines for statistics
// (per-chip breakdowns, utilization, sleep counts). Chips owned by
// another partition are nil entries.
func (c *Controller) ChipModels() []*memsys.Chip {
	chips := make([]*memsys.Chip, len(c.chips))
	for i, cs := range c.chips {
		if cs != nil {
			chips[i] = cs.chip
		}
	}
	return chips
}
