package controller

import (
	"fmt"

	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/metrics"
	"dmamem/internal/sim"
)

// Finish closes accounting at the later of the engine clock and the
// given floor (so runs over the same trace are metered over the same
// window regardless of how their tails drained). It must be called
// after the engine has drained.
func (c *Controller) Finish(endFloor sim.Time) sim.Time {
	if c.eng.Pending() > 0 {
		panic("controller: Finish before the engine drained")
	}
	end := c.eng.Now()
	if endFloor > end {
		end = endFloor
	}
	for _, cs := range c.chips {
		if len(cs.flows) > 0 || len(cs.gated) > 0 || len(cs.waiting) > 0 {
			panic(fmt.Sprintf("controller: chip %d still has work after drain", cs.chip.ID))
		}
		if cs.chip.Resident() && cs.chip.State() == energy.Active {
			c.settle(cs, end)
		}
		cs.chip.Close(end)
	}
	return end
}

// Report aggregates the run into a metrics.Report. scheme names the
// configuration; end is the instant returned by Finish.
func (c *Controller) Report(scheme string, end sim.Time) *metrics.Report {
	r := &metrics.Report{
		Scheme:           scheme,
		SimulatedTime:    sim.Duration(end),
		Transfers:        c.transfers,
		Events:           c.eng.Steps(),
		ClampedProcSpans: c.clampedProc,
	}
	r.Channels = c.channels
	r.ChannelEnergy = make([]energy.Breakdown, c.channels)
	var transferTime, servingTime sim.Duration
	for _, cs := range c.chips {
		b := cs.chip.Meter.Breakdown()
		r.Energy.Add(&b)
		r.ChannelEnergy[cs.channel].Add(&b)
		r.Wakes += cs.chip.Wakes
		transferTime += cs.chip.TransferTime
		servingTime += cs.chip.ServingTime
		for s, d := range cs.chip.Residency {
			r.Residency[s] += d
		}
	}
	if c.cfg.Layout != nil {
		r.Energy[energy.CatMigration] += c.cfg.Layout.MigrationEnergyJ
		r.Migrations = c.cfg.Layout.MigratedPages
	}
	if transferTime > 0 {
		r.UtilizationFactor = float64(servingTime) / float64(transferTime)
	}
	r.MeanServiceTime = c.xferTimes.Mean()
	if c.xferTimes.Count() > 0 {
		r.P95ServiceTime = c.xferTimes.Percentile(0.95)
		r.MaxServiceTime = c.xferTimes.Max()
	}
	r.MeanGatherDelay = c.gatherDelays.Mean()
	return r
}

// ChipModels exposes the per-chip state machines for statistics
// (per-chip breakdowns, utilization, sleep counts).
func (c *Controller) ChipModels() []*memsys.Chip {
	chips := make([]*memsys.Chip, len(c.chips))
	for i, cs := range c.chips {
		chips[i] = cs.chip
	}
	return chips
}
