package controller

import (
	"math"
	"testing"

	"dmamem/internal/bus"
	"dmamem/internal/dma"
	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

func baseConfig() Config {
	return Config{
		Geometry:     memsys.Default(),
		Buses:        bus.DefaultConfig(),
		Policy:       policy.NewDynamic(),
		InitialState: energy.Powerdown,
	}
}

// run schedules the given transfers and processor accesses, runs to
// drain, and returns the report.
func run(t *testing.T, cfg Config, xfers []dma.Transfer, procs []trace.Record) (*Controller, *sim.Engine) {
	t.Helper()
	eng := sim.New()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xfers {
		x := x
		eng.SchedulePrio(x.Arrival, prioArrival, func(*sim.Engine) { c.StartTransfer(x) })
	}
	for _, p := range procs {
		p := p
		eng.SchedulePrio(p.Time, prioArrival, func(*sim.Engine) { c.ProcAccess(p.Page) })
	}
	eng.Run()
	return c, eng
}

func TestConfigValidate(t *testing.T) {
	cfg := baseConfig()
	cfg.Policy = nil
	if cfg.Validate() == nil {
		t.Error("nil policy accepted")
	}
	cfg = baseConfig()
	cfg.TA = &TAConfig{Mu: -1, EpochLength: 1}
	if cfg.Validate() == nil {
		t.Error("negative mu accepted")
	}
	cfg = baseConfig()
	cfg.TA = &TAConfig{Mu: 1, EpochLength: 0}
	if cfg.Validate() == nil {
		t.Error("zero epoch accepted")
	}
}

func TestSingleTransferBaseline(t *testing.T) {
	cfg := baseConfig()
	x := dma.Transfer{ID: 1, Arrival: sim.Time(10 * sim.Microsecond), Bus: 0, Page: 0, Pages: 1}
	c, eng := run(t, cfg, []dma.Transfer{x}, nil)
	end := c.Finish(eng.Now())
	r := c.Report("baseline", end)

	if r.Transfers != 1 {
		t.Fatalf("transfers = %d", r.Transfers)
	}
	// Service = powerdown wake (6 us) + one 8 KB page at bus rate
	// (7.68 us).
	want := 6*sim.Microsecond + sim.FromSeconds(8192.0/bus.PCIXBandwidth)
	if d := r.MeanServiceTime - want; d < -sim.Nanosecond || d > 10*sim.Nanosecond {
		t.Fatalf("service time = %v, want ~%v", r.MeanServiceTime, want)
	}
	// A lone stream utilizes one third of the chip (Figure 2a).
	if math.Abs(r.UtilizationFactor-1.0/3.0) > 0.001 {
		t.Fatalf("uf = %g, want 1/3", r.UtilizationFactor)
	}
	if r.Wakes != 1 {
		t.Fatalf("wakes = %d", r.Wakes)
	}
	b := r.Energy
	if b[energy.CatServing] <= 0 || b[energy.CatIdleDMA] <= 0 ||
		b[energy.CatTransition] <= 0 || b[energy.CatLowPower] <= 0 {
		t.Fatalf("missing energy categories: %v", b)
	}
	// Idle-DMA is twice the serving energy for a lone stream.
	if ratio := b[energy.CatIdleDMA] / b[energy.CatServing]; math.Abs(ratio-2.0) > 0.01 {
		t.Fatalf("idle/serving = %g, want 2", ratio)
	}
}

func TestThreeBusesSaturateChip(t *testing.T) {
	cfg := baseConfig()
	// Pages 0, 32, 64 all map to chip 0 under interleaving.
	xs := []dma.Transfer{
		{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 1},
		{ID: 2, Arrival: 0, Bus: 1, Page: 32, Pages: 1},
		{ID: 3, Arrival: 0, Bus: 2, Page: 64, Pages: 1},
	}
	c, eng := run(t, cfg, xs, nil)
	end := c.Finish(eng.Now())
	r := c.Report("baseline", end)
	// Concurrent streams from three buses exactly saturate the chip.
	if math.Abs(r.UtilizationFactor-1.0) > 0.001 {
		t.Fatalf("uf = %g, want 1.0", r.UtilizationFactor)
	}
	if r.Wakes != 1 {
		t.Fatalf("wakes = %d, want one shared wake", r.Wakes)
	}
}

func TestTAGathersAndAligns(t *testing.T) {
	cfg := baseConfig()
	cfg.TA = DefaultTA(100) // generous slack
	xs := []dma.Transfer{
		{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 1},
		{ID: 2, Arrival: sim.Time(1 * sim.Microsecond), Bus: 1, Page: 32, Pages: 1},
		{ID: 3, Arrival: sim.Time(2 * sim.Microsecond), Bus: 2, Page: 64, Pages: 1},
	}
	c, eng := run(t, cfg, xs, nil)
	end := c.Finish(eng.Now())
	r := c.Report("dma-ta", end)

	if math.Abs(r.UtilizationFactor-1.0) > 0.001 {
		t.Fatalf("uf = %g, want 1.0 after alignment", r.UtilizationFactor)
	}
	// The first transfer waited ~2 us for the gather.
	if r.MeanGatherDelay < 500*sim.Nanosecond || r.MeanGatherDelay > 2*sim.Microsecond {
		t.Fatalf("mean gather delay = %v", r.MeanGatherDelay)
	}
	if r.Wakes != 1 {
		t.Fatalf("wakes = %d", r.Wakes)
	}
	if c.GatedCount() != 0 {
		t.Fatal("gated transfers left behind")
	}
}

func TestTASavesEnergyOnStaggeredArrivals(t *testing.T) {
	// Arrivals staggered beyond the baseline's active window: the
	// baseline serves each alone at uf~1/3; TA gathers the later two
	// and aligns them. TA must use less energy.
	mk := func() []dma.Transfer {
		return []dma.Transfer{
			{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 2},
			{ID: 2, Arrival: sim.Time(30 * sim.Microsecond), Bus: 1, Page: 64, Pages: 2},
			{ID: 3, Arrival: sim.Time(60 * sim.Microsecond), Bus: 2, Page: 128, Pages: 2},
		}
	}
	// Meter both over the same fixed window so tail floor energy is
	// identical.
	window := sim.Time(1 * sim.Millisecond)
	cfgB := baseConfig()
	cb, _ := run(t, cfgB, mk(), nil)
	rb := cb.Report("baseline", cb.Finish(window))

	cfgT := baseConfig()
	cfgT.TA = &TAConfig{Mu: 100, EpochLength: 10 * sim.Microsecond, MaxDelay: 100 * sim.Microsecond}
	ct, _ := run(t, cfgT, mk(), nil)
	rt := ct.Report("dma-ta", ct.Finish(window))
	if rt.TotalEnergy() >= rb.TotalEnergy() {
		t.Fatalf("TA used %.3g J >= baseline %.3g J", rt.TotalEnergy(), rb.TotalEnergy())
	}
	if rt.UtilizationFactor <= rb.UtilizationFactor {
		t.Fatalf("TA uf %.3f <= baseline %.3f", rt.UtilizationFactor, rb.UtilizationFactor)
	}
}

func TestTAZeroMuReleasesImmediately(t *testing.T) {
	cfg := baseConfig()
	cfg.TA = DefaultTA(0)
	x := dma.Transfer{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 1}
	c, eng := run(t, cfg, []dma.Transfer{x}, nil)
	end := c.Finish(eng.Now())
	r := c.Report("ta0", end)
	// Zero slack: no gather delay beyond the wake itself.
	if r.MeanGatherDelay != 0 {
		t.Fatalf("gather delay = %v with mu=0", r.MeanGatherDelay)
	}
	want := 6*sim.Microsecond + sim.FromSeconds(8192.0/bus.PCIXBandwidth)
	if d := r.MeanServiceTime - want; d < -sim.Nanosecond || d > 10*sim.Nanosecond {
		t.Fatalf("service = %v, want ~%v", r.MeanServiceTime, want)
	}
}

func TestTAEpochReleasesLoneTransfer(t *testing.T) {
	// A lone gated transfer must be released once epochs have drained
	// the slack — within a few epochs, not at the max-delay bound.
	cfg := baseConfig()
	cfg.TA = &TAConfig{Mu: 100, EpochLength: 10 * sim.Microsecond, MaxDelay: 10 * sim.Millisecond}
	x := dma.Transfer{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 1}
	c, eng := run(t, cfg, []dma.Transfer{x}, nil)
	end := c.Finish(eng.Now())
	r := c.Report("ta", end)
	if r.MeanGatherDelay < 5*sim.Microsecond || r.MeanGatherDelay > 50*sim.Microsecond {
		t.Fatalf("gather delay = %v, want ~1-2 epochs", r.MeanGatherDelay)
	}
}

func TestTAMaxDelayBound(t *testing.T) {
	// With a huge epoch (no drain), the hard delay bound must fire.
	cfg := baseConfig()
	cfg.TA = &TAConfig{Mu: 1000, EpochLength: 5 * sim.Microsecond, MaxDelay: 30 * sim.Microsecond}
	xs := []dma.Transfer{
		// Seed slack with a served transfer on an active chip first.
		{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 8},
		{ID: 2, Arrival: sim.Time(100 * sim.Microsecond), Bus: 1, Page: 1, Pages: 1},
	}
	c, eng := run(t, cfg, xs, nil)
	end := c.Finish(eng.Now())
	_ = c.Report("ta", end)
	// The second transfer (lone on its chip, slack-rich) must not wait
	// longer than MaxDelay + one epoch.
	if d := c.gatherDelays.Max(); d > 36*sim.Microsecond {
		t.Fatalf("max gather delay = %v exceeds bound", d)
	}
}

func TestProcAccessWakesChip(t *testing.T) {
	cfg := baseConfig()
	procs := []trace.Record{
		{Time: 0, Kind: trace.ProcRead, Page: 5},
		{Time: sim.Time(1 * sim.Microsecond), Kind: trace.ProcRead, Page: 5},
	}
	c, eng := run(t, cfg, nil, procs)
	end := c.Finish(eng.Now())
	r := c.Report("proc", end)
	if c.procAccesses != 2 {
		t.Fatalf("proc accesses = %d", c.procAccesses)
	}
	if r.Energy[energy.CatProcServing] <= 0 {
		t.Fatal("no proc serving energy")
	}
	if r.Wakes < 1 {
		t.Fatal("proc access did not wake the chip")
	}
	// Both accesses land on chip 5 only; other chips stay in powerdown
	// the whole run.
	chips := c.ChipModels()
	for i, ch := range chips {
		if i == 5 {
			continue
		}
		if ch.Wakes != 0 {
			t.Fatalf("chip %d woke without traffic", i)
		}
	}
}

func TestPolicyDescentWithoutTraffic(t *testing.T) {
	cfg := baseConfig()
	cfg.InitialState = energy.Active
	eng := sim.New()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run() // policy chain drains: every chip descends to powerdown
	end := c.Finish(sim.Time(100 * sim.Microsecond))
	r := c.Report("idle", end)
	for i, ch := range c.ChipModels() {
		if ch.State() != energy.Powerdown {
			t.Fatalf("chip %d ended in %v", i, ch.State())
		}
		if ch.SleepCount(energy.Standby) != 1 || ch.SleepCount(energy.Nap) != 1 ||
			ch.SleepCount(energy.Powerdown) != 1 {
			t.Fatalf("chip %d sleep chain wrong", i)
		}
	}
	// Low-power residence dominates the window.
	if r.Energy.Fraction(energy.CatLowPower) < 0.5 {
		t.Fatalf("low-power fraction = %g", r.Energy.Fraction(energy.CatLowPower))
	}
	if r.Energy[energy.CatIdleThreshold] <= 0 {
		t.Fatal("no threshold idle recorded")
	}
}

func TestMultiPageTransferCrossesChips(t *testing.T) {
	cfg := baseConfig()
	// 4 pages interleaved over 32 chips: chips 0..3 in sequence.
	x := dma.Transfer{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 4}
	c, eng := run(t, cfg, []dma.Transfer{x}, nil)
	end := c.Finish(eng.Now())
	r := c.Report("multi", end)
	if r.Wakes != 4 {
		t.Fatalf("wakes = %d, want 4 chips touched in sequence", r.Wakes)
	}
	// Service: 4 wakes + 4 pages at bus rate.
	want := 4*(6*sim.Microsecond) + 4*sim.FromSeconds(8192.0/bus.PCIXBandwidth)
	if d := r.MeanServiceTime - want; d < -sim.Nanosecond || d > 40*sim.Nanosecond {
		t.Fatalf("service = %v, want ~%v", r.MeanServiceTime, want)
	}
}

func TestSequentialMapperSingleWake(t *testing.T) {
	cfg := baseConfig()
	cfg.Mapper = memsys.SequentialMapper{PagesPerChip: cfg.Geometry.PagesPerChip()}
	x := dma.Transfer{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 4}
	c, eng := run(t, cfg, []dma.Transfer{x}, nil)
	end := c.Finish(eng.Now())
	r := c.Report("seq", end)
	if r.Wakes != 1 {
		t.Fatalf("wakes = %d, want 1 under sequential layout", r.Wakes)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() (*Controller, *sim.Engine) {
		cfg := baseConfig()
		cfg.TA = DefaultTA(10)
		var xs []dma.Transfer
		for i := 0; i < 50; i++ {
			xs = append(xs, dma.Transfer{
				ID: int64(i), Arrival: sim.Time(i * 3 * int(sim.Microsecond)),
				Bus: i % 3, Page: memsys.PageID((i * 7) % 256), Pages: 1 + i%4,
			})
		}
		eng := sim.New()
		c, err := New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs {
			x := x
			eng.SchedulePrio(x.Arrival, prioArrival, func(*sim.Engine) { c.StartTransfer(x) })
		}
		eng.Run()
		return c, eng
	}
	c1, e1 := mk()
	r1 := c1.Report("a", c1.Finish(e1.Now()))
	c2, e2 := mk()
	r2 := c2.Report("a", c2.Finish(e2.Now()))
	if r1.TotalEnergy() != r2.TotalEnergy() {
		t.Fatalf("energy differs: %v vs %v", r1.TotalEnergy(), r2.TotalEnergy())
	}
	if r1.MeanServiceTime != r2.MeanServiceTime {
		t.Fatalf("service differs: %v vs %v", r1.MeanServiceTime, r2.MeanServiceTime)
	}
}

func TestFinishExtendsWindow(t *testing.T) {
	cfg := baseConfig()
	x := dma.Transfer{ID: 1, Arrival: 0, Bus: 0, Page: 0, Pages: 1}
	c, _ := run(t, cfg, []dma.Transfer{x}, nil)
	floor := sim.Time(1 * sim.Millisecond)
	end := c.Finish(floor)
	if end != floor {
		t.Fatalf("end = %v, want floor %v", end, floor)
	}
	r := c.Report("x", end)
	// ~1 ms of 32 chips in powerdown floors the energy at ~96 uJ.
	if r.Energy[energy.CatLowPower] < 80e-6 {
		t.Fatalf("low-power energy = %g, window not extended", r.Energy[energy.CatLowPower])
	}
}

func TestEnergyAccountingClosed(t *testing.T) {
	// Total energy must match an independent power integral: with all
	// 32 chips in powerdown for exactly 1 ms and no traffic at all.
	cfg := baseConfig()
	eng := sim.New()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	end := c.Finish(sim.Time(1 * sim.Millisecond))
	r := c.Report("floor", end)
	want := 32 * energy.PowerdownPower * 1e-3
	if math.Abs(r.TotalEnergy()-want)/want > 1e-9 {
		t.Fatalf("energy = %g, want %g", r.TotalEnergy(), want)
	}
}

func TestBadBusPanics(t *testing.T) {
	cfg := baseConfig()
	c, err := New(sim.New(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad bus accepted")
		}
	}()
	c.StartTransfer(dma.Transfer{ID: 1, Bus: 7, Page: 0, Pages: 1})
}
