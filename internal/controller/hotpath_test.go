package controller

import (
	"math"
	"testing"

	"dmamem/internal/bus"
	"dmamem/internal/dma"
	"dmamem/internal/energy"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// manyBusConfig returns a configuration with more buses than the 64
// the old fixed-size accounting arrays silently assumed.
func manyBusConfig() Config {
	cfg := baseConfig()
	cfg.Buses = bus.Config{Count: 80, Bandwidth: bus.PCIXBandwidth}
	return cfg
}

// TestManyBusesBaseline is the regression test for the fixed-size
// [64]float64 per-bus rate array in accountChip: a transfer on bus 70
// of an 80-bus system panicked with index-out-of-range before the
// array became a slice sized from the config.
func TestManyBusesBaseline(t *testing.T) {
	cfg := manyBusConfig()
	cfg.InitialState = energy.Active
	x := dma.Transfer{ID: 1, Arrival: sim.Time(sim.Microsecond), Bus: 70, Page: 0, Pages: 1}
	c, eng := run(t, cfg, []dma.Transfer{x}, nil)
	end := c.Finish(eng.Now())
	r := c.Report("baseline", end)
	if r.Transfers != 1 {
		t.Fatalf("transfers = %d, want 1", r.Transfers)
	}
	if r.Energy.Total() <= 0 {
		t.Fatal("no energy accounted")
	}
}

// TestManyBusesGated drives the DMA-TA gating bookkeeping
// (distinctGatedBuses / maxPerBus) with a bus index above 64, which
// overran their fixed-size scratch arrays before they were sized from
// the config.
func TestManyBusesGated(t *testing.T) {
	cfg := manyBusConfig()
	cfg.TA = DefaultTA(2.0)
	xs := []dma.Transfer{
		{ID: 1, Arrival: sim.Time(sim.Microsecond), Bus: 70, Page: 0, Pages: 1},
		{ID: 2, Arrival: sim.Time(2 * sim.Microsecond), Bus: 79, Page: 8, Pages: 1},
	}
	c, eng := run(t, cfg, xs, nil)
	end := c.Finish(eng.Now())
	r := c.Report("dma-ta", end)
	if r.Transfers != 2 {
		t.Fatalf("transfers = %d, want 2", r.Transfers)
	}
}

// TestCompletionDelay covers the guard on the remaining/rate division:
// the allocator can only produce positive rates, so a non-positive or
// NaN rate must panic with a diagnostic instead of converting +Inf to
// an implementation-defined int64.
func TestCompletionDelay(t *testing.T) {
	if got := completionDelay(8.0, 2.0); got != 4*sim.Second {
		t.Fatalf("completionDelay = %v, want 4s", got)
	}
	if got := completionDelay(0, 1); got != 1 {
		t.Fatalf("zero remaining: %v, want the 1ps floor", got)
	}
	for _, rate := range []float64{0, -1, math.NaN()} {
		rate := rate
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("completionDelay(1, %g) did not panic", rate)
				}
			}()
			completionDelay(1, rate)
		}()
	}
}

// TestClampedProcSpansReported drives the processor-work clamp — more
// pending processor service than the accounting span can absorb — and
// checks the previously write-only counter now reaches the report.
func TestClampedProcSpansReported(t *testing.T) {
	cfg := baseConfig()
	cfg.InitialState = energy.Active
	// 500 same-instant accesses to chip 0 pile up ~10 us of pending
	// service; the transfer arriving 1 ns later bounds the accounting
	// span at 1 ns, forcing the clamp to spill the rest.
	var procs []trace.Record
	for i := 0; i < 500; i++ {
		procs = append(procs, trace.Record{Time: sim.Time(sim.Microsecond), Page: 0})
	}
	x := dma.Transfer{ID: 1, Arrival: sim.Time(sim.Microsecond + sim.Nanosecond), Bus: 0, Page: 1, Pages: 1}
	c, eng := run(t, cfg, []dma.Transfer{x}, procs)
	end := c.Finish(eng.Now())
	r := c.Report("baseline", end)
	if r.ClampedProcSpans <= 0 {
		t.Fatalf("ClampedProcSpans = %d, want > 0", r.ClampedProcSpans)
	}
}

// TestControllerSteadyStateZeroAlloc is the allocation guard for the
// controller hot path: with a standing flow, the per-event work —
// dirty-set accounting, rate reallocation, completion rescheduling,
// processor-access bookkeeping — must not allocate once the scratch
// buffers are warm.
func TestControllerSteadyStateZeroAlloc(t *testing.T) {
	cfg := baseConfig()
	cfg.InitialState = energy.Active
	eng := sim.New()
	c, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := dma.Transfer{ID: 1, Arrival: sim.Time(sim.Microsecond), Bus: 0, Page: 0, Pages: 64}
	eng.SchedulePrio(x.Arrival, prioArrival, func(*sim.Engine) { c.StartTransfer(x) })
	eng.RunUntil(sim.Time(2 * sim.Microsecond))
	if len(c.allFlows) == 0 {
		t.Fatal("no standing flow to measure against")
	}

	now := eng.Now()
	allocs := testing.AllocsPerRun(200, func() {
		now = now.Add(100 * sim.Nanosecond)
		c.ProcAccess(0)
		c.accountAll(now)
		c.recompute(now)
	})
	if allocs != 0 {
		t.Fatalf("controller steady state allocated %.1f allocs/op, want 0", allocs)
	}
}
