package controller

import (
	"fmt"

	"dmamem/internal/energy"
	"dmamem/internal/memsys"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
)

// scheduleWake begins (or joins) a wake sequence for a chip. If a
// downward transition is in flight, the wake starts when it settles
// (hardware completes transitions; it does not abort them).
func (c *Controller) scheduleWake(cs *chipState, now sim.Time) {
	if cs.wakePending {
		return
	}
	cs.wakePending = true
	c.cancelPolicyTimer(cs)
	if cs.idleSince > 0 {
		// Timed observers (the parallel core's per-partition recorders)
		// also receive the instant the gap closed, so observations from
		// different partitions can be merged in global time order at the
		// next barrier; plain observers get the serial-path call exactly
		// as before.
		switch obs := c.cfg.Policy.(type) {
		case policy.TimedGapObserver:
			obs.ObserveGapAt(now, now.Sub(cs.idleSince))
			cs.idleSince = 0
		case policy.GapObserver:
			obs.ObserveGap(now.Sub(cs.idleSince))
			cs.idleSince = 0
		}
	}
	switch cs.chip.Phase() {
	case memsys.PhaseResident:
		if cs.chip.State() == energy.Active {
			panic(fmt.Sprintf("controller: wake of active chip %d", cs.chip.ID))
		}
		c.chargeWake(cs)
		ready := cs.chip.BeginWake(now)
		c.eng.SchedulePrio(ready, prioWake, cs.wakeFn)
	case memsys.PhaseSleeping:
		// onSleepComplete observes wakePending and chains into the
		// wake; nothing to schedule here.
	case memsys.PhaseWaking:
		panic(fmt.Sprintf("controller: chip %d waking without wakePending", cs.chip.ID))
	}
}

// onWakeComplete makes the chip active and drains everything that
// piled up behind the wake: queued processor accesses, gated
// transfers (an active chip never delays requests), and waiting
// segments.
func (c *Controller) onWakeComplete(cs *chipState, e *sim.Engine) {
	now := e.Now()
	c.accountAll(now)
	cs.chip.CompleteWake(now)
	cs.wakePending = false
	// The chip just became resident-Active with its cursor at now; it
	// joins the dirty set so the drained processor queue and any
	// starting flows are charged from here on.
	c.markDirty(cs)

	if cs.procQueue > 0 {
		// Processor-access slack charge (Section 4.1.3): service time
		// times the requests pending for this chip.
		if c.taOn && len(cs.gated) > 0 {
			c.slack -= float64(c.lineTime) * float64(cs.procQueue) * float64(len(cs.gated))
		}
		cs.procBusy += sim.Duration(cs.procQueue) * c.lineTime
		cs.procQueue = 0
	}
	procTail := cs.procBusy
	// Waiting transfers own their buses; their streams start now.
	for _, x := range cs.waiting {
		c.startFlow(cs, x, now)
	}
	cs.waiting = cs.waiting[:0]
	// An active chip has no reason to keep delaying gated transfers;
	// their streams start now.
	if n := len(cs.gated); n > 0 {
		c.RelDrain += int64(n)
		gated := cs.gated
		cs.gated = cs.gated[:0]
		c.nGated -= n
		for _, x := range gated {
			x.gatherDelay += now.Sub(x.gatedAt)
			c.issueSegment(x, now)
		}
	}
	if len(cs.flows) == 0 {
		// The idleness clock starts once queued processor work drains.
		c.armPolicyTimer(cs, now.Add(procTail))
	}
	c.recompute(now)
}

// maybeIdle arms the policy chain when a chip has gone quiet.
func (c *Controller) maybeIdle(cs *chipState, now sim.Time) {
	if len(cs.flows) > 0 || len(cs.waiting) > 0 || cs.wakePending {
		return
	}
	if !cs.chip.Resident() || cs.chip.State() != energy.Active {
		return
	}
	c.armPolicyTimer(cs, now)
}

// armPolicyTimer schedules the next policy step for an idle chip.
func (c *Controller) armPolicyTimer(cs *chipState, now sim.Time) {
	c.cancelPolicyTimer(cs)
	if cs.chip.State() == energy.Active {
		// The idle gap (for adaptive policies) starts here.
		cs.idleSince = now
	}
	wait, _, ok := c.cfg.Policy.NextStep(cs.chip.State())
	if !ok {
		return
	}
	cs.idleTimer = c.eng.SchedulePrio(now.Add(wait), prioPolicy, cs.policyFn)
}

func (c *Controller) cancelPolicyTimer(cs *chipState) {
	if cs.idleTimer.Valid() {
		c.eng.Cancel(cs.idleTimer)
	}
}

// onPolicyTimer fires after the threshold of idleness: the chip drops
// to the next lower power mode.
func (c *Controller) onPolicyTimer(cs *chipState, e *sim.Engine) {
	now := e.Now()
	c.accountAll(now)
	if cs.wakePending || len(cs.flows) > 0 || !cs.chip.Resident() {
		return // raced with activity; the cancel path missed, stay up
	}
	_, next, ok := c.cfg.Policy.NextStep(cs.chip.State())
	if !ok {
		return
	}
	if cs.chip.State() == energy.Active && cs.procBusy > 0 {
		// Outstanding processor service: the idleness clock restarts
		// when it completes.
		c.armPolicyTimer(cs, now.Add(cs.procBusy))
		return
	}
	var ready sim.Time
	if cs.chip.State() == energy.Active {
		// A clean chip's idle backlog has not been charged yet
		// (accountAll only touches the dirty set); BeginSleep requires
		// the cursor at now.
		c.settle(cs, now)
		ready = cs.chip.BeginSleep(next, now)
	} else {
		ready = cs.chip.Deepen(next, now)
	}
	c.eng.SchedulePrio(ready, prioWake, cs.sleepFn)
}

// onSleepComplete settles a downward transition, then either chains
// into a pending wake or arms the next deeper policy step.
func (c *Controller) onSleepComplete(cs *chipState, e *sim.Engine) {
	now := e.Now()
	cs.chip.CompleteSleep(now)
	if cs.wakePending {
		c.chargeWake(cs)
		ready := cs.chip.BeginWake(now)
		c.eng.SchedulePrio(ready, prioWake, cs.wakeFn)
		return
	}
	c.armPolicyTimer(cs, now)
}

// chargeWake debits the slack for the transition delay the pending
// requests are about to experience: wake latency times the number of
// requests pending for the chip (Section 4.1.2). Called immediately
// before BeginWake.
func (c *Controller) chargeWake(cs *chipState) {
	if !c.taOn {
		return
	}
	pending := len(cs.waiting) + len(cs.gated)
	if pending == 0 {
		return
	}
	wake := c.model.WakeLatencyOf(cs.chip.State())
	c.slack -= float64(wake) * float64(pending)
}

// ProcAccess injects one processor cache-line access at the current
// engine time. Processor accesses take priority over DMA (the paper's
// first solution in Section 4.1.3): they are never gated, and they
// wake sleeping chips immediately.
func (c *Controller) ProcAccess(page memsys.PageID) {
	now := c.eng.Now()
	cs := c.chips[c.mapper.ChipOf(page)]
	if cs == nil {
		panic(fmt.Sprintf("controller: processor access to page %d on chip %d owned by another partition",
			page, c.mapper.ChipOf(page)))
	}
	c.procAccesses++
	if cs.chip.Resident() && cs.chip.State() == energy.Active {
		// Joining the dirty set settles the chip's idle backlog up to
		// the last accountAll instant, so the pending processor work
		// is clamped against the same span a full scan would use.
		c.markDirty(cs)
		cs.procBusy += c.lineTime
		if c.taOn && len(cs.gated) > 0 {
			c.slack -= float64(c.lineTime) * float64(len(cs.gated))
		}
		if len(cs.flows) == 0 && !cs.wakePending {
			// The access restarts the idleness clock, which begins
			// when the outstanding service completes.
			c.armPolicyTimer(cs, now.Add(cs.procBusy))
		}
		return
	}
	cs.procQueue++
	c.procWakes++
	c.scheduleWake(cs, now)
}
