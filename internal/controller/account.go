package controller

import (
	"fmt"
	"math"

	"dmamem/internal/bus"
	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

// Same-instant event priorities: completions observe the interval
// first, then new arrivals, then policy timers and epochs.
const (
	prioCompletion int8 = 0
	prioArrival    int8 = 1
	prioWake       int8 = 2
	prioPolicy     int8 = 3
	prioEpoch      int8 = 4
)

// accountAll charges every resident-Active chip for the span since its
// accounting cursor: serving time from the fluid rates, accumulated
// processor service, and the residual idle (transfer idle when a
// stream is in progress, threshold idle otherwise). It also drains
// flow remainders and deposits TA slack credits for the DMA-memory
// requests that arrived during the span. Every event handler calls it
// first, before mutating flow or power state.
func (c *Controller) accountAll(now sim.Time) {
	for _, cs := range c.chips {
		if !cs.chip.Resident() || cs.chip.State() != energy.Active {
			continue
		}
		c.accountChip(cs, now)
	}
}

func (c *Controller) accountChip(cs *chipState, now sim.Time) {
	span := now.Sub(cs.chip.Cursor())
	if span < 0 {
		panic(fmt.Sprintf("controller: chip %d span %v negative", cs.chip.ID, span))
	}
	if span == 0 {
		return
	}
	// Drain flow remainders and compute the burst-coverage fraction of
	// each bus at this chip: f_b = (rates of bus-b streams into the
	// chip) / Rb. Bursts from different buses overlap independently,
	// so the chip must be active for 1 - prod(1 - f_b) of the span;
	// the rest of the span it naps between bursts.
	var delivered float64 // bytes in this span
	var notCovered = 1.0  // prod over buses of (1 - f_b)
	if len(cs.flows) > 0 {
		var busRate [64]float64
		for _, f := range cs.flows {
			d := f.rate * span.Seconds()
			if d > f.remaining {
				d = f.remaining
			}
			f.remaining -= d
			delivered += d
			busRate[f.bus] += f.rate
		}
		for b := 0; b < c.cfg.Buses.Count; b++ {
			fb := busRate[b] / c.cfg.Buses.Bandwidth
			if fb > 1 {
				fb = 1
			}
			notCovered *= 1 - fb
		}
	}
	envelope := sim.Duration(float64(span) * (1 - notCovered))
	serving := sim.FromSeconds(delivered / c.cfg.Geometry.ChipBandwidth)
	if serving > envelope {
		envelope = serving // rounding guard
	}
	if envelope > span {
		envelope = span
	}
	// Processor accesses have priority (Section 4.1.3) and are served
	// inside the bandwidth-mismatch gaps of the DMA envelope: in the
	// unaligned baseline they consume active-idle cycles for free
	// (category shift only), while on an aligned chip the gaps are
	// gone and the accesses extend the active time — the Figure 9
	// effect.
	idle := envelope - serving
	proc := cs.procBusy
	cs.procBusy = 0
	absorbed := proc
	if absorbed > idle {
		absorbed = idle
	}
	idleDMA := idle - absorbed
	procExtra := proc - absorbed
	if envelope+procExtra > span {
		// The span cannot absorb all the processor work; the residue
		// carries over and is served in the next span.
		spill := envelope + procExtra - span
		procExtra = span - envelope
		cs.procBusy += spill
		c.clampedProc++
	}
	microNap := sim.Duration(0)
	if len(cs.flows) > 0 {
		// Gaps between bursts while transfers are in flight: nappable.
		microNap = span - envelope - procExtra
	}
	cs.chip.AccountActiveSpan(now, serving, absorbed+procExtra, idleDMA, microNap)

	if c.taOn && delivered > 0 {
		// One mu*T slack credit per DMA-memory request that arrived.
		c.slack += c.muT * (delivered / c.reqBytes)
	}
}

// recompute reallocates rates after any change to the flow set and
// schedules the next completion event. Callers must have called
// accountAll(now) immediately before.
func (c *Controller) recompute(now sim.Time) {
	c.eng.Cancel(c.complEvt)
	for _, cs := range c.chips {
		cs.sumRate = 0
	}
	if len(c.allFlows) == 0 {
		return
	}
	fl := make([]bus.Flow, len(c.allFlows))
	for i, f := range c.allFlows {
		fl[i] = bus.Flow{Bus: f.bus, Chip: f.chip}
	}
	rates := c.alloc.Allocate(fl)
	next := sim.Time(math.MaxInt64)
	for i, f := range c.allFlows {
		f.rate = rates[i]
		c.chips[f.chip].sumRate += f.rate
		dt := sim.Duration(math.Ceil(f.remaining / f.rate * 1e12))
		if dt < 1 {
			dt = 1
		}
		if t := now.Add(dt); t < next {
			next = t
		}
	}
	c.complEvt = c.eng.SchedulePrio(next, prioCompletion, c.onCompletion)
}

// onCompletion fires when the earliest flow drains.
func (c *Controller) onCompletion(e *sim.Engine) {
	now := e.Now()
	c.accountAll(now)
	// Collect finished flows (sub-byte residue counts as done).
	const eps = 1e-3
	var finished []*flow
	kept := c.allFlows[:0]
	for _, f := range c.allFlows {
		if f.remaining <= eps {
			finished = append(finished, f)
		} else {
			kept = append(kept, f)
		}
	}
	c.allFlows = kept
	if len(finished) == 0 {
		// Numerical near-miss: reschedule from fresh remainders.
		c.recompute(now)
		return
	}
	for _, f := range finished {
		cs := c.chips[f.chip]
		removeFlow(&cs.flows, f)
		c.advanceTransfer(f.x, now)
	}
	for _, f := range finished {
		c.maybeIdle(c.chips[f.chip], now)
	}
	c.recompute(now)
}

func removeFlow(flows *[]*flow, f *flow) {
	for i, g := range *flows {
		if g == f {
			*flows = append((*flows)[:i], (*flows)[i+1:]...)
			return
		}
	}
	panic("controller: flow not found on its chip")
}
