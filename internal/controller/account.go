package controller

import (
	"fmt"
	"math"

	"dmamem/internal/bus"
	"dmamem/internal/energy"
	"dmamem/internal/sim"
)

// Same-instant event priorities: completions observe the interval
// first, then new arrivals, then policy timers and epochs.
//
// prioArrival is reserved for trace arrivals exclusively — it is also
// the priority the batched trace feeder (core.traceFeeder, a
// sim.Feeder) reports from Peek, and the run loop's merge gives
// same-(instant, priority) ties to the queue, so no queued controller
// event may use it or the dispatch order against a feeder would be
// undefined. (The experiments cross-check holds both feeders to
// bit-identical reports.)
const (
	prioCompletion int8 = 0
	prioArrival    int8 = 1
	prioWake       int8 = 2
	prioPolicy     int8 = 3
	prioEpoch      int8 = 4
)

// Dirty-set accounting. Every event handler calls accountAll first,
// before mutating flow or power state, so each chip's active span is
// charged with the rates that actually held over it. Charging *every*
// active chip on every event is wasteful, though: a chip with no flows
// and no pending processor work only accrues threshold idle, which is
// a pure function of elapsed time. Such chips are left out of the
// dirty set and their idle backlog is settled lazily — when they next
// become interesting (markDirty), when their policy timer fires, or at
// Finish.
//
// The lazy charge is exact, not approximate: chips accumulate active
// span components as integer picosecond durations and convert to
// joules once at Close (see memsys.Chip), so charging an idle stretch
// in one span or in fifty yields bit-identical energy. Chips with
// flows or pending processor work stay in the dirty set and are
// charged at every accountAll instant — their spans need the same
// boundaries as a full scan because rates, remainders, slack credits
// and the processor-work clamp all depend on per-span values. The
// dirty set is kept sorted by chip ID so that order-sensitive global
// float accumulation (the TA slack credit) happens in full-scan order.
//
// Config.FullScanAccounting retains the original every-chip scan; the
// cross-check test in internal/experiments proves both modes produce
// bit-identical reports.

// accountAll charges the span since the last accounting instant:
// serving time from the fluid rates, accumulated processor service,
// and the residual idle (transfer idle when a stream is in progress,
// threshold idle otherwise). It also drains flow remainders and
// deposits TA slack credits for the DMA-memory requests that arrived
// during the span.
func (c *Controller) accountAll(now sim.Time) {
	if c.fullScan {
		for _, cs := range c.chips {
			if cs == nil || !cs.chip.Resident() || cs.chip.State() != energy.Active {
				continue
			}
			c.accountChip(cs, now)
		}
		c.lastAccount = now
		return
	}
	keep := c.dirtyChips[:0]
	for _, cs := range c.dirtyChips {
		if cs.chip.Resident() && cs.chip.State() == energy.Active {
			c.accountChip(cs, now)
		}
		if len(cs.flows) > 0 || cs.procBusy > 0 {
			keep = append(keep, cs)
		} else {
			cs.dirty = false
		}
	}
	for i := len(keep); i < len(c.dirtyChips); i++ {
		c.dirtyChips[i] = nil
	}
	c.dirtyChips = keep
	c.lastAccount = now
}

// markDirty adds a resident-Active chip to the dirty set. A clean chip
// has been idle since it was dropped from the set, so its backlog up
// to the last global accounting instant is settled first — that way
// its next accounted span starts at the same boundary a full scan
// would use. (Settling only to lastAccount matters: ProcAccess marks
// dirty without running accountAll, so now > lastAccount there.)
func (c *Controller) markDirty(cs *chipState) {
	if c.fullScan || cs.dirty {
		return
	}
	if cs.chip.Resident() && cs.chip.State() == energy.Active && c.lastAccount > cs.chip.Cursor() {
		c.accountChip(cs, c.lastAccount)
	}
	cs.dirty = true
	c.dirtyChips = append(c.dirtyChips, cs)
	// Insertion sort by chip ID; the set is small and insertions rare.
	for i := len(c.dirtyChips) - 1; i > 0 && c.dirtyChips[i-1].chip.ID > cs.chip.ID; i-- {
		c.dirtyChips[i-1], c.dirtyChips[i] = c.dirtyChips[i], c.dirtyChips[i-1]
	}
}

// settle charges a resident-Active chip up to now. Dirty chips are
// already settled by accountAll; for clean chips this charges the pure
// idle backlog in one exact span. Used where the chip model requires a
// current cursor (BeginSleep) and at Finish.
func (c *Controller) settle(cs *chipState, now sim.Time) {
	if now > cs.chip.Cursor() {
		c.accountChip(cs, now)
	}
}

func (c *Controller) accountChip(cs *chipState, now sim.Time) {
	span := now.Sub(cs.chip.Cursor())
	if span < 0 {
		panic(fmt.Sprintf("controller: chip %d span %v negative", cs.chip.ID, span))
	}
	if span == 0 {
		return
	}
	// Drain flow remainders and compute the burst-coverage fraction of
	// each bus at this chip: f_b = (rates of bus-b streams into the
	// chip) / Rb. Bursts from different buses overlap independently,
	// so the chip must be active for 1 - prod(1 - f_b) of the span;
	// the rest of the span it naps between bursts.
	var delivered float64 // bytes in this span
	var notCovered = 1.0  // prod over buses of (1 - f_b)
	if len(cs.flows) > 0 {
		busRate := c.busRateScratch
		for i := range busRate {
			busRate[i] = 0
		}
		for _, f := range cs.flows {
			d := f.rate * span.Seconds()
			if d > f.remaining {
				d = f.remaining
			}
			f.remaining -= d
			delivered += d
			busRate[f.bus] += f.rate
		}
		for b := 0; b < c.cfg.Buses.Count; b++ {
			fb := busRate[b] / c.cfg.Buses.Bandwidth
			if fb > 1 {
				fb = 1
			}
			notCovered *= 1 - fb
		}
	}
	envelope := sim.Duration(float64(span) * (1 - notCovered))
	serving := sim.FromSeconds(delivered / c.cfg.Geometry.ChipBandwidth)
	if serving > envelope {
		envelope = serving // rounding guard
	}
	if envelope > span {
		envelope = span
	}
	// Processor accesses have priority (Section 4.1.3) and are served
	// inside the bandwidth-mismatch gaps of the DMA envelope: in the
	// unaligned baseline they consume active-idle cycles for free
	// (category shift only), while on an aligned chip the gaps are
	// gone and the accesses extend the active time — the Figure 9
	// effect.
	idle := envelope - serving
	proc := cs.procBusy
	cs.procBusy = 0
	absorbed := proc
	if absorbed > idle {
		absorbed = idle
	}
	idleDMA := idle - absorbed
	procExtra := proc - absorbed
	if envelope+procExtra > span {
		// The span cannot absorb all the processor work; the residue
		// carries over and is served in the next span.
		spill := envelope + procExtra - span
		procExtra = span - envelope
		cs.procBusy += spill
		c.clampedProc++
	}
	microNap := sim.Duration(0)
	if len(cs.flows) > 0 {
		// Gaps between bursts while transfers are in flight: nappable.
		microNap = span - envelope - procExtra
	}
	cs.chip.AccountActiveSpan(now, serving, absorbed+procExtra, idleDMA, microNap)

	if c.taOn && delivered > 0 {
		// One mu*T slack credit per DMA-memory request that arrived.
		c.slack += c.muT * (delivered / c.reqBytes)
	}
}

// completionDelay converts a flow's remaining bytes at its allocated
// rate into the time until the flow drains. The allocator guarantees
// strictly positive rates (progressive filling hands every flow its
// first-round share before any freeze), so a non-positive or NaN rate
// is a controller bug; without the guard it would flow through
// math.Ceil as +Inf and hit an implementation-defined float-to-int64
// conversion instead of failing loudly.
func completionDelay(remaining, rate float64) sim.Duration {
	if !(rate > 0) {
		panic(fmt.Sprintf("controller: flow rate %g (remaining %g bytes) is not positive", rate, remaining))
	}
	dt := sim.Duration(math.Ceil(remaining / rate * 1e12))
	if dt < 1 {
		dt = 1
	}
	return dt
}

// recompute reallocates rates after any change to the flow set and
// schedules the next completion event. Callers must have called
// accountAll(now) immediately before. Scratch buffers are reused
// across calls, so the controller steady state allocates nothing.
func (c *Controller) recompute(now sim.Time) {
	c.eng.Cancel(c.complEvt)
	if len(c.allFlows) == 0 {
		return
	}
	c.flowScratch = c.flowScratch[:0]
	for _, f := range c.allFlows {
		c.flowScratch = append(c.flowScratch, bus.Flow{Bus: f.bus, Chip: f.chip})
		c.chips[f.chip].sumRate = 0
	}
	rates := c.alloc.Allocate(c.flowScratch)
	next := sim.Time(math.MaxInt64)
	for i, f := range c.allFlows {
		f.rate = rates[i]
		c.chips[f.chip].sumRate += f.rate
		if t := now.Add(completionDelay(f.remaining, f.rate)); t < next {
			next = t
		}
	}
	c.complEvt = c.eng.SchedulePrio(next, prioCompletion, c.onCompletionFn)
	c.complAt = next
}

// onCompletion fires when the earliest flow drains.
func (c *Controller) onCompletion(e *sim.Engine) {
	now := e.Now()
	c.accountAll(now)
	// Collect finished flows (sub-byte residue counts as done).
	const eps = 1e-3
	finished := c.finishedScratch[:0]
	kept := c.allFlows[:0]
	for _, f := range c.allFlows {
		if f.remaining <= eps {
			finished = append(finished, f)
		} else {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(c.allFlows); i++ {
		c.allFlows[i] = nil
	}
	c.allFlows = kept
	if len(finished) == 0 {
		c.finishedScratch = finished
		// Numerical near-miss: reschedule from fresh remainders.
		c.recompute(now)
		return
	}
	for _, f := range finished {
		cs := c.chips[f.chip]
		removeFlow(&cs.flows, f)
		if len(cs.flows) == 0 {
			cs.sumRate = 0
		}
		c.advanceTransfer(f.x, now)
	}
	for _, f := range finished {
		c.maybeIdle(c.chips[f.chip], now)
	}
	for i := range finished {
		finished[i] = nil
	}
	c.finishedScratch = finished[:0]
	c.recompute(now)
}

func removeFlow(flows *[]*flow, f *flow) {
	for i, g := range *flows {
		if g == f {
			last := len(*flows) - 1
			copy((*flows)[i:], (*flows)[i+1:])
			(*flows)[last] = nil
			*flows = (*flows)[:last]
			return
		}
	}
	panic("controller: flow not found on its chip")
}
