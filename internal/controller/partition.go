package controller

import "fmt"

// Barrier-side API of a channel-partitioned controller. The parallel
// core runs one controller per channel, each on its own engine; within
// an epoch a partition touches only its own state, and the core calls
// the methods below single-threaded at epoch barriers to exchange the
// one genuinely shared resource: I/O-bus bandwidth. Slack pools and
// dirty-chip accounting are partition-local by construction — every
// chip, flow and gated transfer belongs to exactly one channel.

// BusFlowCounts writes the number of currently flowing streams per
// shared I/O bus into out (len = Buses.Count). The barrier feeds these
// demand counts to bus.EpochShares to split each bus across
// partitions for the next epoch.
func (c *Controller) BusFlowCounts(out []int) {
	if len(out) != c.cfg.Buses.Count {
		panic(fmt.Sprintf("controller: BusFlowCounts got %d slots for %d buses", len(out), c.cfg.Buses.Count))
	}
	for i := range out {
		out[i] = 0
	}
	for _, f := range c.allFlows {
		out[f.bus]++
	}
}

// Resync installs this partition's new bus-capacity shares and
// reallocates its flow rates under them. It charges the span up to the
// partition's current clock first, so the old rates are accounted over
// exactly the interval they held. Call only at an epoch barrier, and
// only when the shares actually changed — a no-change Resync still
// inserts an accounting boundary, which is harmless for correctness
// but costs time.
func (c *Controller) Resync(caps []float64) {
	now := c.eng.Now()
	c.accountAll(now)
	c.alloc.SetBusCaps(caps)
	c.recompute(now)
}
