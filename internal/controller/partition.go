package controller

import (
	"fmt"

	"dmamem/internal/sim"
)

// Barrier-side API of a channel-partitioned controller. The parallel
// core runs one controller per channel, each on its own engine; within
// an epoch a partition touches only its own state, and the core calls
// the methods below single-threaded at epoch barriers to exchange the
// one genuinely shared resource: I/O-bus bandwidth. Slack pools and
// dirty-chip accounting are partition-local by construction — every
// chip, flow and gated transfer belongs to exactly one channel.

// BusFlowCounts writes the number of currently flowing streams per
// shared I/O bus into out (len = Buses.Count). The barrier feeds these
// demand counts to bus.EpochShares to split each bus across
// partitions for the next epoch.
func (c *Controller) BusFlowCounts(out []int) {
	if len(out) != c.cfg.Buses.Count {
		panic(fmt.Sprintf("controller: BusFlowCounts got %d slots for %d buses", len(out), c.cfg.Buses.Count))
	}
	for i := range out {
		out[i] = 0
	}
	for _, f := range c.allFlows {
		out[f.bus]++
	}
}

// Resync installs this partition's new bus-capacity shares and
// reallocates its flow rates under them. It charges the span up to the
// partition's current clock first, so the old rates are accounted over
// exactly the interval they held. Call only at an epoch barrier, and
// only when the shares actually changed — a no-change Resync still
// inserts an accounting boundary, which is harmless for correctness
// but costs time.
func (c *Controller) Resync(caps []float64) {
	now := c.eng.Now()
	c.accountAll(now)
	c.alloc.SetBusCaps(caps)
	c.recompute(now)
}

// CrossLookahead reports a conservative lower bound on the next
// instant at which this partition's bus flow counts can change from
// internal causes — the signal the adaptive barrier uses to elide
// provably idle epoch boundaries. Internal count-change sources are
// exactly: a flow completion (at, bounded by the next scheduled
// completion), the TA epoch timer releasing gated transfers (only
// meaningful while transfers are gated), and a pending wake on a chip
// holding waiting or gated transfers (whose completion instant the
// controller does not track; ok=false asks the barrier not to elide).
// External causes — trace arrivals — are the caller's to bound:
// arrivalSensitive=true means processor arrivals can change counts too
// (an access can wake a chip holding gated transfers, draining them),
// so the caller must bound by every arrival, not just DMA ones.
// Policy timers, sleep transitions, processor service on active chips
// and proc-only wakes never alter flow membership on a bus and are
// deliberately excluded. Call only at a barrier (single-threaded).
func (c *Controller) CrossLookahead() (at sim.Time, arrivalSensitive, ok bool) {
	for _, cs := range c.chips {
		if cs == nil {
			continue
		}
		if cs.wakePending && (len(cs.waiting) > 0 || len(cs.gated) > 0) {
			return 0, false, false
		}
	}
	at = sim.MaxTime
	if len(c.allFlows) > 0 {
		at = c.complAt
	}
	if c.nGated > 0 {
		if c.epochAt < at {
			at = c.epochAt
		}
		arrivalSensitive = true
	}
	return at, arrivalSensitive, true
}
