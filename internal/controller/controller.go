// Package controller implements the smart memory controller at the
// heart of the paper: per-chip power management driven by a low-level
// policy, fluid-model service of concurrent DMA streams over multiple
// I/O buses, processor-access priority, and the DMA-TA temporal
// alignment mechanism with its slack-based performance guarantee
// (Section 4.1).
//
// Timing model. Flowing transfers are piecewise-constant fluid streams:
// whenever the set of active (bus, chip) streams changes, rates are
// recomputed with a max-min fair allocation subject to bus and chip
// capacities, and the elapsed interval is charged to each chip
// (serving time = delivered bytes / chip rate; the rest of the active
// span is the Figure 2(a) bandwidth-mismatch idle). Gated transfers
// are held at request granularity exactly as in the paper: only the
// first DMA-memory request of a gated transfer is pending, and slack
// bookkeeping follows Section 4.1.2 (mu*T credit per arriving request,
// epoch charges for pending requests, transition and processor-access
// charges).
package controller

import (
	"fmt"

	"dmamem/internal/bus"
	"dmamem/internal/dma"
	"dmamem/internal/energy"
	"dmamem/internal/layout"
	"dmamem/internal/memsys"
	"dmamem/internal/metrics"
	"dmamem/internal/policy"
	"dmamem/internal/sim"
)

// TAConfig enables DMA-TA.
type TAConfig struct {
	// Mu is the per-DMA-memory-request slack multiplier: average
	// request service time may degrade to (1+Mu)*T. Derived from
	// CP-Limit via metrics.Calibration.
	Mu float64
	// EpochLength for the pessimistic slack charging of pending
	// requests. The paper finds results insensitive to it as long as
	// it is not too large.
	EpochLength sim.Duration
	// GatherTarget overrides k = ceil(Rm/Rb) when positive.
	GatherTarget int
	// MaxDelay is the hard bound on how long any single transfer may
	// be gated — the paper's "or the access delay exceeds a threshold
	// value". Zero means auto: the slack budget of a four-page
	// transfer (Mu * T * 4 * pageBytes/8).
	MaxDelay sim.Duration
	// NoCostBenefit disables the run-time cost-benefit check before
	// gating. With the check (the default), a transfer is only held
	// when the chip's recent DMA inter-arrival gap suggests that k-1
	// further transfers can plausibly arrive within MaxDelay; holding
	// on a chip too cold to gather wastes slack that hot chips could
	// spend on successful alignments. The paper gates unconditionally
	// and lists run-time cost-benefit analysis as future work; the
	// ablation benches quantify the difference.
	NoCostBenefit bool
}

// DefaultTA returns a TA configuration for a given mu.
func DefaultTA(mu float64) *TAConfig {
	return &TAConfig{Mu: mu, EpochLength: 10 * sim.Microsecond}
}

// Validate reports a descriptive error for unusable configs.
func (c *TAConfig) Validate() error {
	switch {
	case c.Mu < 0:
		return fmt.Errorf("controller: Mu = %g", c.Mu)
	case c.EpochLength <= 0:
		return fmt.Errorf("controller: EpochLength = %v", c.EpochLength)
	case c.GatherTarget < 0:
		return fmt.Errorf("controller: GatherTarget = %d", c.GatherTarget)
	}
	return nil
}

// Config assembles a memory system.
type Config struct {
	Geometry memsys.Geometry
	// Topology optionally groups the chips into independently clocked
	// channels (DDR-style). The zero value is the legacy single-channel
	// RDRAM behavior, bit-identical to builds that predate the field.
	Topology memsys.Topology
	Buses    bus.Config
	Policy   policy.Policy
	// TA enables temporal alignment when non-nil.
	TA *TAConfig
	// Layout, when non-nil, supplies the dynamic page mapping (PL) and
	// receives popularity observations. When nil, Mapper is used.
	Layout *layout.Manager
	// Mapper is the static baseline layout; nil means interleaved.
	Mapper memsys.Mapper
	// InitialState chips start in; the default (zero value) is Active,
	// letting the policy idle them down immediately.
	InitialState energy.State
	// Model selects the memory technology power-state machine; nil
	// means the paper's RDRAM part (the registry default).
	// Geometry.ChipBandwidth should match the model's bandwidth.
	Model *energy.Model
	// Partition, when non-nil, restricts this controller to the chips
	// of one topology channel: foreign chips are never instantiated and
	// addressing one is a programming error that panics loudly. The
	// parallel barrier engine builds one partitioned controller per
	// channel, each on its own sim.Engine.
	Partition *Partition
	// FullScanAccounting disables the dirty-set optimization and
	// charges every resident-Active chip on every event, as the
	// original implementation did. Reports are bit-identical either
	// way (the cross-check test in internal/experiments proves it);
	// the full scan is kept as the reference mode for that proof and
	// for debugging.
	FullScanAccounting bool
}

// Partition configures a channel-partitioned controller for the
// parallel barrier engine.
type Partition struct {
	// Channel is the topology channel this controller owns.
	Channel int
	// BusCaps, when non-nil, is the partition's initial share of every
	// shared I/O bus in bytes/s (it is revised at each epoch barrier
	// via Resync). Nil grants the full bus bandwidth, which is only
	// correct when this partition is the buses' sole user.
	BusCaps []float64
}

// Validate reports a descriptive error for unusable configs.
func (c *Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Topology.Validate(c.Geometry); err != nil {
		return err
	}
	if p := c.Partition; p != nil {
		if n := c.Topology.NumChannels(); p.Channel < 0 || p.Channel >= n {
			return fmt.Errorf("controller: partition channel %d of %d", p.Channel, n)
		}
		if p.BusCaps != nil && len(p.BusCaps) != c.Buses.Count {
			return fmt.Errorf("controller: partition has %d bus caps for %d buses", len(p.BusCaps), c.Buses.Count)
		}
	}
	if err := c.Buses.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		return fmt.Errorf("controller: nil policy")
	}
	// Policies that can check themselves (Dynamic's threshold chain,
	// Static's park mode) are validated with the rest of the config.
	// Model-aware policies are deferred to New, which checks them
	// against the resolved technology model instead (a park mode legal
	// for a 5-state DDR4 machine is illegal for a 3-state LPDDR4 one).
	if _, modelAware := c.Policy.(policy.ModelValidator); !modelAware {
		if v, ok := c.Policy.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return err
			}
		}
	}
	if c.TA != nil {
		if err := c.TA.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// xferState tracks one in-flight transfer.
type xferState struct {
	t       dma.Transfer
	pageIdx int // pages already fully handed to segments
	seg     dma.Segment
	segSet  bool

	gatedAt     sim.Time     // when the transfer was gated
	gatherDelay sim.Duration // total gating delay accumulated
}

func (x *xferState) remainingPages() int { return x.t.Pages - x.pageIdx }

// flow is one flowing segment.
type flow struct {
	x         *xferState
	chip, bus int
	remaining float64 // bytes
	rate      float64 // bytes/s, set by the allocator
}

// chipState wraps a chip with the controller-side queues.
type chipState struct {
	chip *memsys.Chip
	// channel owning the chip under the configured topology (0 in the
	// legacy single-channel configuration).
	channel int
	flows   []*flow
	// gated transfers held by DMA-TA (chip in a low-power mode).
	gated []*xferState
	// waiting transfers: the chip is waking; they start on completion.
	waiting []*xferState
	// procQueue: processor accesses waiting for an in-flight wake.
	procQueue int
	// Arrival-rate estimate for the gating cost-benefit check.
	lastArrival sim.Time
	ewmaGapPs   float64
	// idleSince marks when the chip last went idle in Active (for
	// adaptive policies' gap observations).
	idleSince sim.Time
	// procBusy accumulated against the current active span.
	procBusy sim.Duration
	// sumRate of the current flows, bytes/s.
	sumRate float64
	// idleTimer is the pending policy step, if any.
	idleTimer sim.EventID
	// wakePending marks a wake sequence in flight (possibly waiting for
	// a down transition to finish first).
	wakePending bool
	// dirty marks membership in the controller's dirty set (see
	// account.go).
	dirty bool
	// Cached event handlers, created once in New so scheduling a
	// policy step, wake completion or sleep completion allocates no
	// closure on the hot path.
	policyFn sim.Handler
	wakeFn   sim.Handler
	sleepFn  sim.Handler
}

// Controller is the simulator core for one run. Use New, feed events
// via StartTransfer/ProcAccess scheduled on the same engine, then call
// Finish and Report.
type Controller struct {
	cfg    Config
	eng    *sim.Engine
	model  *energy.Model
	chips  []*chipState
	alloc  *bus.Allocator
	mapper memsys.Mapper

	allFlows []*flow
	complEvt sim.EventID
	// complAt is the instant complEvt is scheduled for; meaningful only
	// while len(allFlows) > 0 (recompute leaves it stale otherwise).
	// CrossLookahead reads it instead of the event, whose ID carries no
	// time.
	complAt sim.Time

	// Dirty-set accounting state (see account.go). dirtyChips is kept
	// sorted by chip ID; lastAccount is the instant of the last global
	// accountAll.
	fullScan    bool
	dirtyChips  []*chipState
	lastAccount sim.Time

	// Reusable hot-path scratch, sized once in New.
	busRateScratch  []float64  // accountChip per-bus rate sums
	busSeenScratch  []bool     // distinctGatedBuses
	busCountScratch []int      // maxPerBus
	flowScratch     []bus.Flow // recompute allocator input
	finishedScratch []*flow    // onCompletion drained flows
	onCompletionFn  sim.Handler
	onEpochFn       sim.Handler

	// Channel topology state. channels is the effective channel count
	// (1 in the legacy configuration); channelOf maps chip -> channel.
	channels  int
	channelOf []int

	// DMA-TA state.
	taOn bool
	// kByChannel is the gather target per channel: k = ceil(Rm/Rb)
	// where Rm is the chip's deliverable rate under that channel's
	// bandwidth cap. The legacy path is the single entry kByChannel[0].
	kByChannel []int
	muT        float64 // slack credit per request, ps
	maxDelay   sim.Duration
	slack      float64 // ps
	nGated     int
	epochEvt   sim.EventID
	// epochAt is the instant epochEvt is scheduled for; meaningful only
	// while nGated > 0 (the epoch timer is never cancelled, so validity
	// comes from the gated count, not the event ID).
	epochAt sim.Time

	// Derived constants.
	lineTime sim.Duration // processor cache-line service time
	reqBytes float64

	// Statistics.
	nextXferID   int64
	xferTimes    metrics.DurationStats
	gatherDelays metrics.DurationStats
	procAccesses int64
	procWakes    int64
	transfers    int64
	clampedProc  int64

	// Gating outcome counters (transfers released by each path).
	RelGathered int64 // k distinct buses reached
	RelSlack    int64 // slack exhausted (n*U/2 condition)
	RelMaxDelay int64 // hard delay bound
	RelDrain    int64 // chip became active for another reason

	// PeakGated is the maximum number of simultaneously gated
	// transfers; times 8 bytes it is the controller buffer footprint
	// the paper bounds in Section 4.1.4.
	PeakGated int
}

// PeakBufferBytes returns the controller-side buffer space the gated
// first requests needed at their peak (Section 4.1.4 sizes this at
// buses x 8 B x chips = 768 B for the default configuration).
func (c *Controller) PeakBufferBytes() int { return c.PeakGated * memsys.RequestBytes }

// New builds a controller on an engine.
func New(eng *sim.Engine, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mapper := cfg.Mapper
	if cfg.Layout != nil {
		mapper = cfg.Layout
	}
	if mapper == nil {
		mapper = cfg.Topology.Mapper(cfg.Geometry)
	}
	busCaps := make([]float64, cfg.Buses.Count)
	for i := range busCaps {
		busCaps[i] = cfg.Buses.Bandwidth
	}
	if cfg.Partition != nil && cfg.Partition.BusCaps != nil {
		copy(busCaps, cfg.Partition.BusCaps)
	}
	model := cfg.Model
	if model == nil {
		var err error
		if model, err = energy.Lookup(energy.DefaultTech); err != nil {
			return nil, err
		}
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	// Policies that know their state-machine requirements are checked
	// against the resolved model (in preference to the model-blind
	// Validate already run by cfg.Validate).
	if v, ok := cfg.Policy.(policy.ModelValidator); ok {
		if err := v.ValidateForModel(model); err != nil {
			return nil, err
		}
	}
	if int(cfg.InitialState) >= model.NumStates() {
		return nil, fmt.Errorf("controller: initial state %d beyond the %d states of model %s",
			int(cfg.InitialState), model.NumStates(), model.Name)
	}
	c := &Controller{
		cfg:      cfg,
		eng:      eng,
		model:    model,
		alloc:    bus.NewAllocator(busCaps, cfg.Geometry.ChipBandwidth),
		mapper:   mapper,
		lineTime: cfg.Geometry.CacheLineServiceTime(),
		reqBytes: memsys.RequestBytes,

		fullScan:        cfg.FullScanAccounting,
		lastAccount:     eng.Now(),
		busRateScratch:  make([]float64, cfg.Buses.Count),
		busSeenScratch:  make([]bool, cfg.Buses.Count),
		busCountScratch: make([]int, cfg.Buses.Count),
	}
	c.onCompletionFn = c.onCompletion
	c.onEpochFn = c.onEpoch
	c.channels = cfg.Topology.NumChannels()
	c.channelOf = make([]int, cfg.Geometry.NumChips)
	for i := range c.channelOf {
		c.channelOf[i] = cfg.Topology.ChannelOfChip(cfg.Geometry, i)
	}
	if cfg.Topology.Enabled() && cfg.Topology.ChannelBandwidth > 0 {
		chanCaps := make([]float64, c.channels)
		for i := range chanCaps {
			chanCaps[i] = cfg.Topology.ChannelBandwidth
		}
		c.alloc.SetChannels(c.channelOf, chanCaps)
	}
	partition := -1
	if cfg.Partition != nil {
		partition = cfg.Partition.Channel
	}
	for i := 0; i < cfg.Geometry.NumChips; i++ {
		if partition >= 0 && c.channelOf[i] != partition {
			// Foreign chip: owned by another partition's controller. The
			// nil entry keeps chip indices global; every loop over
			// c.chips skips it, and addressing it is a loud panic.
			c.chips = append(c.chips, nil)
			continue
		}
		cs := &chipState{
			chip:    memsys.NewChipWithModel(i, cfg.InitialState, eng.Now(), model),
			channel: c.channelOf[i],
		}
		cs.policyFn = func(e *sim.Engine) { c.onPolicyTimer(cs, e) }
		cs.wakeFn = func(e *sim.Engine) { c.onWakeComplete(cs, e) }
		cs.sleepFn = func(e *sim.Engine) { c.onSleepComplete(cs, e) }
		c.chips = append(c.chips, cs)
		if cfg.InitialState == energy.Active {
			c.armPolicyTimer(cs, eng.Now())
		}
	}
	if cfg.TA != nil {
		c.taOn = true
		c.kByChannel = make([]int, c.channels)
		for ch := range c.kByChannel {
			k := cfg.TA.GatherTarget
			if k == 0 {
				// Rm is what one chip of this channel can actually
				// receive: its own rate, clamped by the channel cap.
				rm := cfg.Geometry.ChipBandwidth
				if bw := cfg.Topology.ChannelBandwidth; bw > 0 && bw < rm {
					rm = bw
				}
				k = bus.GatherTarget(rm, cfg.Buses.Bandwidth)
			}
			if k > cfg.Buses.Count {
				// Fewer buses than ceil(Rm/Rb): full chip utilization is
				// unreachable, so gather the best alignment possible — one
				// stream per bus.
				k = cfg.Buses.Count
			}
			c.kByChannel[ch] = k
		}
		beat := cfg.Buses.BeatGap()
		c.muT = cfg.TA.Mu * float64(beat)
		c.maxDelay = cfg.TA.MaxDelay
		if c.maxDelay == 0 {
			reqsPerPage := float64(cfg.Geometry.PageBytes) / memsys.RequestBytes
			c.maxDelay = sim.Duration(cfg.TA.Mu * float64(beat) * 4 * reqsPerPage)
			if c.maxDelay < sim.Microsecond {
				c.maxDelay = sim.Microsecond
			}
		}
	}
	return c, nil
}

// Mapper returns the resolved page-to-chip mapping (Layout > Mapper >
// topology default). The parallel core uses it to split DMA records at
// channel boundaries with exactly the mapping the controller serves.
func (c *Controller) Mapper() memsys.Mapper { return c.mapper }

// T returns the baseline DMA-memory request service time (one bus
// beat), the paper's T.
func (c *Controller) T() sim.Duration { return c.cfg.Buses.BeatGap() }

// Slack returns the current slack pool (TA only), for tests.
func (c *Controller) Slack() sim.Duration { return sim.Duration(c.slack) }

// GatedCount returns the number of currently gated transfers.
func (c *Controller) GatedCount() int { return c.nGated }
