package synth

import (
	"math"
	"testing"
	"testing/quick"

	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %g, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("only saw %d of 7 values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(2.5)
	}
	if mean := sum / n; math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("exp mean = %g, want ~2.5", mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	r.Exp(0)
}

func TestPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfBasics(t *testing.T) {
	z := NewZipf(100, 1.0)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	// Probabilities must decrease with rank and sum to 1.
	sum := 0.0
	prev := math.Inf(1)
	for i := 0; i < 100; i++ {
		p := z.Prob(i)
		if p > prev {
			t.Fatalf("probability increased at rank %d", i)
		}
		prev = p
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
	// Rank 0 of Zipf(1) over 100 elements has p = 1/H(100) ~ 0.1928.
	if math.Abs(z.Prob(0)-0.1928) > 0.001 {
		t.Fatalf("p(0) = %g", z.Prob(0))
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	z := NewZipf(50, 1.0)
	r := NewRNG(11)
	counts := make([]int, 50)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Empirical frequency of rank 0 should match its probability.
	want := z.Prob(0)
	got := float64(counts[0]) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("rank-0 freq = %g, want ~%g", got, want)
	}
	// Heavier ranks must (statistically) dominate much lighter ones.
	if counts[0] < counts[40] {
		t.Fatal("rank 0 less frequent than rank 40")
	}
}

func TestZipfUniform(t *testing.T) {
	z := NewZipf(10, 0) // alpha 0 = uniform
	for i := 1; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-9 {
			t.Fatalf("uniform prob(%d) = %g", i, z.Prob(i))
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: Zipf samples are always valid ranks.
func TestQuickZipfRange(t *testing.T) {
	f := func(seed uint64, n16 uint16) bool {
		n := 1 + int(n16)%1000
		z := NewZipf(n, 1.0)
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			s := z.Sample(r)
			if s < 0 || s >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateStProperties(t *testing.T) {
	cfg := DefaultSt()
	cfg.Duration = 20 * sim.Millisecond
	tr, err := GenerateSt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := trace.Analyze(tr)
	// Poisson(100/ms) over 20 ms: expect ~2000 transfers; allow 4 sigma.
	if s.DMATransfers < 1800 || s.DMATransfers > 2200 {
		t.Fatalf("transfers = %d, want ~2000", s.DMATransfers)
	}
	if s.ProcAccesses != 0 {
		t.Fatal("storage trace should have no processor accesses")
	}
	// Disk fraction ~27%.
	diskFrac := float64(s.DiskTransfers) / float64(s.DMATransfers)
	if math.Abs(diskFrac-0.27) > 0.05 {
		t.Fatalf("disk fraction = %g", diskFrac)
	}
	// Zipf(1) popularity skew: top 20%% of touched pages should carry
	// well over 20%% of accesses.
	if share := s.AccessShareOfTopPages(0.2); share < 0.4 {
		t.Fatalf("top-20%% share = %g, want skewed", share)
	}
	// Bus spread: all three buses used.
	buses := map[uint8]bool{}
	for _, r := range tr.Records {
		buses[r.Bus] = true
		if int(r.Page)+int(r.Pages) > cfg.Pages {
			t.Fatalf("record overruns page population: %+v", r)
		}
	}
	if len(buses) != 3 {
		t.Fatalf("used %d buses", len(buses))
	}
}

func TestGenerateStDeterminism(t *testing.T) {
	cfg := DefaultSt()
	cfg.Duration = 5 * sim.Millisecond
	a, err := GenerateSt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatal("nondeterministic record count")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateStValidation(t *testing.T) {
	bad := DefaultSt()
	bad.RatePerMs = 0
	if _, err := GenerateSt(bad); err == nil {
		t.Error("zero rate accepted")
	}
	bad = DefaultSt()
	bad.Duration = 0
	if _, err := GenerateSt(bad); err == nil {
		t.Error("zero duration accepted")
	}
	bad = DefaultSt()
	bad.DiskFraction = 1.5
	if _, err := GenerateSt(bad); err == nil {
		t.Error("bad disk fraction accepted")
	}
	bad = DefaultSt()
	bad.Pages = 0
	if _, err := GenerateSt(bad); err == nil {
		t.Error("zero pages accepted")
	}
}

func TestGenerateDb(t *testing.T) {
	cfg := DefaultDb()
	cfg.St.Duration = 10 * sim.Millisecond
	tr, err := GenerateDb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := trace.Analyze(tr)
	// 10000 proc accesses/ms over 10 ms: ~100k.
	if s.ProcAccesses < 90000 || s.ProcAccesses > 110000 {
		t.Fatalf("proc accesses = %d, want ~100000", s.ProcAccesses)
	}
	if s.DiskTransfers != 0 {
		t.Fatal("database trace should have no disk DMAs")
	}
	if s.DMATransfers == 0 {
		t.Fatal("no DMA transfers")
	}
}

func TestGenerateDbProcPerTransfer(t *testing.T) {
	cfg := DefaultDb()
	cfg.St.Duration = 5 * sim.Millisecond
	cfg.ProcPerTransfer = 50
	tr, err := GenerateDb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Analyze(tr)
	if got := s.ProcAccessesPerTransfer(); math.Abs(got-50) > 0.5 {
		t.Fatalf("proc per transfer = %g, want 50", got)
	}
}

func TestGenerateDbNoProc(t *testing.T) {
	cfg := DefaultDb()
	cfg.St.Duration = 2 * sim.Millisecond
	cfg.ProcRatePerMs = 0
	tr, err := GenerateDb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Analyze(tr).ProcAccesses != 0 {
		t.Fatal("expected no proc accesses")
	}
}

func TestSizeSampler(t *testing.T) {
	s := newSizeSampler([]SizeClass{{1, 1}, {4, 1}})
	r := NewRNG(9)
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		counts[s.sample(r)]++
	}
	if counts[1] == 0 || counts[4] == 0 {
		t.Fatalf("sampler ignored a class: %v", counts)
	}
	ratio := float64(counts[1]) / float64(counts[4])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("equal weights gave ratio %g", ratio)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad size class accepted")
		}
	}()
	newSizeSampler([]SizeClass{{0, 1}})
}

func TestDefaultSizesMean(t *testing.T) {
	// The default matches the paper's 8 KB transfers exactly; the
	// mixed distribution for the sensitivity study averages a few
	// pages.
	mean := func(classes []SizeClass) float64 {
		m, total := 0.0, 0.0
		for _, c := range classes {
			m += float64(c.Pages) * c.Weight
			total += c.Weight
		}
		return m / total
	}
	if got := mean(DefaultSizes()); got != 1 {
		t.Fatalf("default mean transfer size = %g pages, want 1", got)
	}
	if got := mean(MixedSizes()); got < 1.3 || got > 6 {
		t.Fatalf("mixed mean transfer size = %g pages", got)
	}
}
