package synth

import (
	"fmt"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// SizeClass is one entry of a transfer-size mixture: a transfer of
// Pages pages drawn with relative Weight.
type SizeClass struct {
	Pages  int
	Weight float64
}

// DefaultSizes is the transfer-size distribution used by default:
// single 8 KB blocks, the transfer size of the paper's data-server
// path (Section 2.1: "one or two large DMA data transfers of 8
// Kbytes"). Uniform sizes also keep aligned streams in lockstep until
// the end of the transfers, as in Figure 3.
func DefaultSizes() []SizeClass {
	return []SizeClass{{1, 1.0}}
}

// MixedSizes is a multi-block mixture (mean 1.5 pages) for the
// sensitivity study on transfer-size variance: unequal members of a
// gathered group fall out of lockstep when the short ones finish,
// which measurably weakens temporal alignment.
func MixedSizes() []SizeClass {
	return []SizeClass{{1, 0.70}, {2, 0.20}, {4, 0.10}}
}

type sizeSampler struct {
	classes []SizeClass
	cum     []float64
}

func newSizeSampler(classes []SizeClass) *sizeSampler {
	if len(classes) == 0 {
		panic("synth: empty size mixture")
	}
	s := &sizeSampler{classes: classes, cum: make([]float64, len(classes))}
	total := 0.0
	for i, c := range classes {
		if c.Pages <= 0 || c.Pages > 1<<15 || c.Weight <= 0 {
			panic(fmt.Sprintf("synth: bad size class %+v", c))
		}
		total += c.Weight
		s.cum[i] = total
	}
	for i := range s.cum {
		s.cum[i] /= total
	}
	s.cum[len(s.cum)-1] = 1
	return s
}

func (s *sizeSampler) sample(r *RNG) int {
	u := r.Float64()
	for i, c := range s.cum {
		if u <= c {
			return s.classes[i].Pages
		}
	}
	return s.classes[len(s.classes)-1].Pages
}

// StConfig parameterizes the Synthetic-St storage-server trace: DMA
// transfers only, Poisson arrivals, Zipf page popularity.
type StConfig struct {
	Seed     uint64
	Duration sim.Duration
	// RatePerMs is the total Poisson DMA transfer arrival rate
	// (default 100/ms as in the paper).
	RatePerMs float64
	// DiskFraction of transfers are disk DMAs; the rest are network.
	DiskFraction float64
	// Pages is the page population (working set) size.
	Pages int
	// Alpha is the Zipf skew (paper: 1.0).
	Alpha float64
	// Sizes is the transfer-size mixture; nil means DefaultSizes.
	Sizes []SizeClass
	// Buses is the number of I/O buses DMA engines are spread over.
	Buses int
}

// DefaultSt returns the paper's Synthetic-St parameters over a 100 ms
// window.
func DefaultSt() StConfig {
	return StConfig{
		Seed:         1,
		Duration:     100 * sim.Millisecond,
		RatePerMs:    100,
		DiskFraction: 0.27, // matches OLTP-St's 16.7 of 61.7 transfers/ms
		Pages:        memsys.Default().TotalPages(),
		Alpha:        1.0,
		Buses:        3,
	}
}

func (c StConfig) validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("synth: nonpositive duration %v", c.Duration)
	case c.RatePerMs <= 0:
		return fmt.Errorf("synth: nonpositive rate %g", c.RatePerMs)
	case c.DiskFraction < 0 || c.DiskFraction > 1:
		return fmt.Errorf("synth: disk fraction %g outside [0,1]", c.DiskFraction)
	case c.Pages <= 0:
		return fmt.Errorf("synth: nonpositive page population %d", c.Pages)
	case c.Buses <= 0 || c.Buses > 255:
		return fmt.Errorf("synth: bus count %d", c.Buses)
	}
	return nil
}

// GenerateSt produces a Synthetic-St trace. Page popularity is Zipf
// over a randomly permuted page population, so hot pages are scattered
// through the physical address space (the layout technique, not the
// generator, is responsible for clustering them). GenerateSt is the
// in-memory collector over GenerateStTo; use the latter to stream an
// hour-scale trace straight to a trace.Writer.
func GenerateSt(c StConfig) (*trace.Trace, error) {
	// Synthetic workloads have no server model behind them; declare the
	// assumed client-perceived response time the CP-Limit transform
	// should calibrate against (a typical 1 ms data-server budget).
	tr := &trace.Trace{Name: "Synthetic-St", Meta: SyntheticMeta()}
	err := GenerateStTo(c, func(r trace.Record) error {
		tr.Records = append(tr.Records, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// DbConfig parameterizes the Synthetic-Db database-server trace:
// network DMAs plus processor cache-line accesses.
type DbConfig struct {
	St StConfig
	// ProcRatePerMs is the Poisson processor-access rate (paper:
	// 10000/ms). Ignored when ProcPerTransfer > 0.
	ProcRatePerMs float64
	// ProcPerTransfer, when positive, injects exactly this many
	// processor accesses per DMA transfer (the Figure 9 sweep).
	ProcPerTransfer int
}

// DefaultDb returns the paper's Synthetic-Db parameters.
func DefaultDb() DbConfig {
	st := DefaultSt()
	st.Seed = 2
	st.DiskFraction = 0 // database trace: network DMAs only
	return DbConfig{St: st, ProcRatePerMs: 10000}
}

// GenerateDb produces a Synthetic-Db trace: the St DMA stream plus
// processor accesses. Processor accesses follow the same Zipf
// popularity (the bufferpool's hot pages are hot for the CPU too).
func GenerateDb(c DbConfig) (*trace.Trace, error) {
	dmaTr, err := GenerateSt(c.St)
	if err != nil {
		return nil, err
	}
	dmaTr.Name = "Synthetic-Db"
	rng := NewRNG(c.St.Seed ^ 0xdb)
	zipf := NewZipf(c.St.Pages, c.St.Alpha)
	perm := NewRNG(c.St.Seed).Perm(c.St.Pages) // same permutation as the DMA side

	proc := &trace.Trace{}
	if c.ProcPerTransfer > 0 {
		// Figure 9 mode: a burst of accesses around each transfer,
		// targeting the transferred pages (the CPU processes what the
		// DMA moved) spread across the transfer's duration scale.
		for _, r := range dmaTr.Records {
			for i := 0; i < c.ProcPerTransfer; i++ {
				off := sim.Duration(rng.Exp(2e-6)) // ~2 us spread
				page := int(r.Page) + rng.Intn(int(r.Pages))
				proc.Records = append(proc.Records, trace.Record{
					Time:   r.Time.Add(off),
					Kind:   procKind(rng),
					Source: trace.SrcProcessor,
					Page:   memsys.PageID(page),
				})
			}
		}
	} else if c.ProcRatePerMs > 0 {
		meanGap := 1e-3 / c.ProcRatePerMs
		now := sim.Time(0)
		for {
			now = now.Add(sim.FromSeconds(rng.Exp(meanGap)))
			if now > sim.Time(c.St.Duration) {
				break
			}
			proc.Records = append(proc.Records, trace.Record{
				Time:   now,
				Kind:   procKind(rng),
				Source: trace.SrcProcessor,
				Page:   memsys.PageID(perm[zipf.Sample(rng)]),
			})
		}
	}
	out := trace.Merge("Synthetic-Db", dmaTr, proc)
	out.Meta = dmaTr.Meta
	return out, nil
}

func procKind(r *RNG) trace.Kind {
	if r.Float64() < 0.5 {
		return trace.ProcRead
	}
	return trace.ProcWrite
}
