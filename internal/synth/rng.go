// Package synth provides the deterministic random-number machinery and
// the synthetic trace generators (Synthetic-St, Synthetic-Db) used in
// the paper's evaluation: Zipf(alpha=1) page popularity, Poisson DMA
// transfer arrivals, and Poisson processor accesses.
package synth

import (
	"fmt"
	"math"
)

// RNG is a small, fast, deterministic generator (xoshiro256++ seeded by
// splitmix64). The simulator never uses math/rand's global state, so
// identical configurations reproduce bit-identical traces and results.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from a single 64-bit seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into four words.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("synth: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for n << 2^64
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("synth: Exp mean %g", mean))
	}
	u := r.Float64()
	return -math.Log(1-u) * mean
}

// Perm returns a uniformly random permutation of [0,n) using
// Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples ranks 0..N-1 with probability proportional to
// 1/(rank+1)^alpha. It precomputes the cumulative distribution and
// samples by binary search, which is exact and fast for the page
// populations used here (~10^5).
type Zipf struct {
	cum []float64
}

// NewZipf builds a sampler over n ranks with skew alpha (the paper's
// synthetic traces use alpha = 1).
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("synth: Zipf over %d ranks", n))
	}
	if alpha < 0 {
		panic(fmt.Sprintf("synth: Zipf alpha %g", alpha))
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), alpha)
		cum[i] = total
	}
	inv := 1 / total
	for i := range cum {
		cum[i] *= inv
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws a rank. Rank 0 is the most popular.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of a rank.
func (z *Zipf) Prob(rank int) float64 {
	if rank == 0 {
		return z.cum[0]
	}
	return z.cum[rank] - z.cum[rank-1]
}
