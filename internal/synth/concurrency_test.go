package synth

import (
	"reflect"
	"sync"
	"testing"

	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// TestConcurrentGeneratorSeedIsolation verifies the property the
// parallel experiment runner relies on: every generator call builds
// its own RNG from its config seed and shares no mutable state, so
// traces generated concurrently are bit-identical to the same traces
// generated sequentially. Run with -race this also proves the absence
// of hidden shared state (the package never touches math/rand's
// global generator).
func TestConcurrentGeneratorSeedIsolation(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}
	gen := func(seed uint64) *trace.Trace {
		cfg := DefaultSt()
		cfg.Duration = 4 * sim.Millisecond
		cfg.Seed = seed
		tr, err := GenerateSt(cfg)
		if err != nil {
			t.Error(err)
			return nil
		}
		return tr
	}

	want := make([]*trace.Trace, len(seeds))
	for i, s := range seeds {
		want[i] = gen(s)
	}

	// Each seed regenerated on its own goroutine, twice over, all at
	// once — interleaving must not leak between generators.
	const replicas = 2
	got := make([]*trace.Trace, replicas*len(seeds))
	var wg sync.WaitGroup
	for r := 0; r < replicas; r++ {
		for i, s := range seeds {
			wg.Add(1)
			go func(slot int, seed uint64) {
				defer wg.Done()
				got[slot] = gen(seed)
			}(r*len(seeds)+i, s)
		}
	}
	wg.Wait()

	for r := 0; r < replicas; r++ {
		for i := range seeds {
			g := got[r*len(seeds)+i]
			if g == nil || want[i] == nil {
				t.Fatal("generation failed")
			}
			if !reflect.DeepEqual(g, want[i]) {
				t.Errorf("seed %d replica %d: concurrent trace differs from sequential", seeds[i], r)
			}
		}
	}
}

// TestConcurrentDbGeneratorSeedIsolation repeats the isolation check
// for the denser Synthetic-Db generator (DMA arrivals plus processor
// accesses).
func TestConcurrentDbGeneratorSeedIsolation(t *testing.T) {
	gen := func(seed uint64) *trace.Trace {
		cfg := DefaultDb()
		cfg.St.Duration = 2 * sim.Millisecond
		cfg.St.Seed = seed
		tr, err := GenerateDb(cfg)
		if err != nil {
			t.Error(err)
			return nil
		}
		return tr
	}
	want := gen(7)
	const goroutines = 4
	got := make([]*trace.Trace, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = gen(7)
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if !reflect.DeepEqual(g, want) {
			t.Errorf("goroutine %d: concurrent Db trace differs from sequential", i)
		}
	}
}
