package synth

import (
	"errors"
	"testing"

	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

// collect drains a streaming generator into a slice.
func collect(t *testing.T, gen func(func(trace.Record) error) error) []trace.Record {
	t.Helper()
	var out []trace.Record
	if err := gen(func(r trace.Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("streaming generator: %v", err)
	}
	return out
}

func requireSameRecords(t *testing.T, want, got []trace.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count: streamed %d, reference %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: streamed %+v, reference %+v", i, got[i], want[i])
		}
	}
}

// TestGenerateStToMatchesGenerateSt pins the streamed St record
// sequence to the in-memory reference, including the mixed-size
// configuration.
func TestGenerateStToMatchesGenerateSt(t *testing.T) {
	for _, cfg := range []StConfig{
		DefaultSt(),
		func() StConfig { c := DefaultSt(); c.Seed = 7; c.Sizes = MixedSizes(); return c }(),
		func() StConfig { c := DefaultSt(); c.DiskFraction = 1; c.Duration = 10 * sim.Millisecond; return c }(),
	} {
		ref, err := GenerateSt(cfg)
		if err != nil {
			t.Fatalf("GenerateSt: %v", err)
		}
		got := collect(t, func(emit func(trace.Record) error) error { return GenerateStTo(cfg, emit) })
		requireSameRecords(t, ref.Records, got)
	}
}

// TestGenerateDbToMatchesGenerateDb pins the streamed Db merge order to
// the reference implementation (trace.Merge's stable sort) in both the
// Poisson and per-transfer-burst processor modes.
func TestGenerateDbToMatchesGenerateDb(t *testing.T) {
	burst := DefaultDb()
	burst.ProcPerTransfer = 10
	burst.ProcRatePerMs = 0
	shortPoisson := DefaultDb()
	shortPoisson.St.Duration = 10 * sim.Millisecond
	for name, cfg := range map[string]DbConfig{
		"poisson":       DefaultDb(),
		"poisson-short": shortPoisson,
		"per-transfer":  burst,
	} {
		t.Run(name, func(t *testing.T) {
			ref, err := GenerateDb(cfg)
			if err != nil {
				t.Fatalf("GenerateDb: %v", err)
			}
			got := collect(t, func(emit func(trace.Record) error) error { return GenerateDbTo(cfg, emit) })
			requireSameRecords(t, ref.Records, got)
		})
	}
}

// TestStreamEmitErrors pins error propagation: an emit failure aborts
// generation and surfaces as-is, and invalid configs fail before any
// record is emitted.
func TestStreamEmitErrors(t *testing.T) {
	boom := errors.New("sink full")
	n := 0
	err := GenerateStTo(DefaultSt(), func(trace.Record) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("emit error not propagated: %v", err)
	}
	if n != 3 {
		t.Fatalf("generation continued after emit error: %d emits", n)
	}
	if err := GenerateDbTo(DefaultDb(), func(trace.Record) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Db emit error not propagated: %v", err)
	}

	bad := DefaultSt()
	bad.RatePerMs = -1
	if err := GenerateStTo(bad, func(trace.Record) error { t.Fatal("emit on invalid config"); return nil }); err == nil {
		t.Fatal("invalid config accepted")
	}
	if err := GenerateDbTo(DbConfig{St: bad}, func(trace.Record) error { t.Fatal("emit on invalid config"); return nil }); err == nil {
		t.Fatal("invalid Db config accepted")
	}
}
