// Package bus models the I/O buses of a data server and the way
// concurrent DMA streams share bus and memory-chip bandwidth.
//
// The paper's default configuration is three 133 MHz, 64-bit PCI-X
// buses (1.064 GB/s each) attached to a memory bus whose chips each
// sustain 3.2 GB/s. A DMA engine on a bus emits one 8-byte DMA-memory
// request per bus beat; several engines on one bus time-share it, and
// several buses can deliver requests to the same chip concurrently —
// the concurrency DMA-TA exploits.
//
// Rates of concurrent streams are computed with a max-min fair
// (progressive-filling) allocation subject to two capacity constraints
// per stream: its bus and its destination chip. This mirrors
// round-robin arbitration on both resources.
package bus

import (
	"fmt"

	"dmamem/internal/sim"
)

// PCIXBandwidth is the peak transfer rate of one 133 MHz 64-bit PCI-X
// bus in bytes/s. 133 MHz x 8 B = 1.064 GB/s; the paper rounds the
// memory:I/O ratio to 3 with 3.2 GB/s RDRAM, because one 8-byte request
// is served in 4 memory cycles and the next arrives 12 cycles after the
// previous one (Figure 2a).
const PCIXBandwidth = 8.0 / (7500e-12) // exactly one 8 B beat per 12 memory cycles

// Config describes the I/O subsystem.
type Config struct {
	Count     int     // number of I/O buses
	Bandwidth float64 // per-bus bandwidth, bytes/s
}

// DefaultConfig returns the paper's three-PCI-X-bus setup.
func DefaultConfig() Config { return Config{Count: 3, Bandwidth: PCIXBandwidth} }

// Validate reports a descriptive error for nonsensical configs.
func (c Config) Validate() error {
	if c.Count <= 0 {
		return fmt.Errorf("bus: Count must be positive, got %d", c.Count)
	}
	if c.Bandwidth <= 0 {
		return fmt.Errorf("bus: Bandwidth must be positive, got %g", c.Bandwidth)
	}
	return nil
}

// BeatGap is the inter-arrival time of successive 8-byte DMA-memory
// requests of a single stream using the full bus.
func (c Config) BeatGap() sim.Duration {
	return sim.FromSeconds(8.0 / c.Bandwidth)
}

// GatherTarget is the paper's k = ceil(Rm/Rb): the number of distinct
// buses whose combined delivery rate saturates one chip.
func GatherTarget(chipBW, busBW float64) int {
	if chipBW <= 0 || busBW <= 0 {
		panic(fmt.Sprintf("bus: nonpositive bandwidth chip=%g bus=%g", chipBW, busBW))
	}
	k := int(chipBW / busBW)
	if float64(k)*busBW < chipBW {
		k++
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Flow identifies one DMA stream for rate allocation: it runs over Bus
// and targets Chip.
type Flow struct {
	Bus  int
	Chip int
}

// Allocator computes max-min fair rates for a set of flows. It reuses
// scratch buffers across calls, so a single Allocator must not be used
// concurrently.
type Allocator struct {
	busCap  []float64
	chipCap float64

	// Optional third resource: per-channel capacity. When channelOf is
	// nil the allocator behaves exactly as the two-resource original.
	channelOf  []int // chip -> channel
	channelCap []float64

	// scratch
	remBus    []float64
	remChip   map[int]float64
	busCount  []int
	chipCount map[int]int
	remChan   []float64
	chanCount []int
	rates     []float64
	frozen    []bool
}

// NewAllocator builds an allocator for buses with the given capacities
// (bytes/s) and a uniform per-chip capacity.
func NewAllocator(busCap []float64, chipCap float64) *Allocator {
	if len(busCap) == 0 {
		panic("bus: allocator needs at least one bus")
	}
	for i, c := range busCap {
		if c <= 0 {
			panic(fmt.Sprintf("bus: bus %d capacity %g", i, c))
		}
	}
	if chipCap <= 0 {
		panic(fmt.Sprintf("bus: chip capacity %g", chipCap))
	}
	return &Allocator{
		busCap:    busCap,
		chipCap:   chipCap,
		remBus:    make([]float64, len(busCap)),
		remChip:   make(map[int]float64),
		busCount:  make([]int, len(busCap)),
		chipCount: make(map[int]int),
	}
}

// SetBusCaps replaces the per-bus capacities in place. The slice length
// must match the allocator's bus count; values must be positive. The
// barrier engine uses this at epoch boundaries to hand each channel
// partition its share of the shared I/O buses.
func (a *Allocator) SetBusCaps(caps []float64) {
	if len(caps) != len(a.busCap) {
		panic(fmt.Sprintf("bus: SetBusCaps got %d capacities for %d buses", len(caps), len(a.busCap)))
	}
	for i, c := range caps {
		if c <= 0 {
			panic(fmt.Sprintf("bus: bus %d capacity %g", i, c))
		}
	}
	copy(a.busCap, caps)
}

// SetChannels adds a per-channel capacity constraint: flow rates into
// the chips of channel c additionally satisfy sum <= channelCap[c],
// with channelOf mapping each chip index to its channel. Passing a nil
// channelOf removes the constraint. The slices are retained, not
// copied.
func (a *Allocator) SetChannels(channelOf []int, channelCap []float64) {
	if channelOf == nil {
		a.channelOf, a.channelCap = nil, nil
		return
	}
	for i, c := range channelCap {
		if c <= 0 {
			panic(fmt.Sprintf("bus: channel %d capacity %g", i, c))
		}
	}
	for chip, ch := range channelOf {
		if ch < 0 || ch >= len(channelCap) {
			panic(fmt.Sprintf("bus: chip %d maps to channel %d of %d", chip, ch, len(channelCap)))
		}
	}
	a.channelOf = channelOf
	a.channelCap = channelCap
	if cap(a.remChan) < len(channelCap) {
		a.remChan = make([]float64, len(channelCap))
		a.chanCount = make([]int, len(channelCap))
	}
}

// Allocate returns the max-min fair rate of each flow, in bytes/s,
// subject to sum(rates on bus b) <= busCap[b] and sum(rates into chip
// c) <= chipCap. The result slice is valid until the next call.
func (a *Allocator) Allocate(flows []Flow) []float64 {
	if cap(a.rates) < len(flows) {
		a.rates = make([]float64, len(flows))
		a.frozen = make([]bool, len(flows))
	}
	rates := a.rates[:len(flows)]
	for i := range rates {
		rates[i] = 0
	}
	if len(flows) == 0 {
		return rates
	}
	copy(a.remBus, a.busCap)
	for i := range a.busCount {
		a.busCount[i] = 0
	}
	clear(a.remChip)
	clear(a.chipCount)
	channels := a.channelOf != nil
	if channels {
		remChan := a.remChan[:len(a.channelCap)]
		chanCount := a.chanCount[:len(a.channelCap)]
		copy(remChan, a.channelCap)
		for i := range chanCount {
			chanCount[i] = 0
		}
	}
	for _, f := range flows {
		if f.Bus < 0 || f.Bus >= len(a.busCap) {
			panic(fmt.Sprintf("bus: flow references bus %d of %d", f.Bus, len(a.busCap)))
		}
		a.busCount[f.Bus]++
		a.chipCount[f.Chip]++
		a.remChip[f.Chip] = a.chipCap
		if channels {
			a.chanCount[a.channelOf[f.Chip]]++
		}
	}
	frozen := a.frozen[:len(flows)]
	for i := range frozen {
		frozen[i] = false
	}
	remaining := len(flows)

	for remaining > 0 {
		// Find the bottleneck resource: the one whose equal share among
		// its unfrozen flows is smallest.
		share := -1.0
		for b, n := range a.busCount {
			if n == 0 {
				continue
			}
			s := a.remBus[b] / float64(n)
			if share < 0 || s < share {
				share = s
			}
		}
		for c, n := range a.chipCount {
			if n == 0 {
				continue
			}
			s := a.remChip[c] / float64(n)
			if share < 0 || s < share {
				share = s
			}
		}
		if channels {
			for c, n := range a.chanCount[:len(a.channelCap)] {
				if n == 0 {
					continue
				}
				s := a.remChan[c] / float64(n)
				if share < 0 || s < share {
					share = s
				}
			}
		}
		if share < 0 {
			panic("bus: unfrozen flows but no active resource")
		}
		// Freeze every unfrozen flow on a saturated resource at the
		// bottleneck share; give the share to all others provisionally
		// by reducing remaining capacity.
		progressed := false
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			rates[i] += share
			a.remBus[f.Bus] -= share
			a.remChip[f.Chip] -= share
			if channels {
				a.remChan[a.channelOf[f.Chip]] -= share
			}
		}
		// Capacities are ~1e9 bytes/s, so every subtraction above rounds
		// at ~5e-7, and the bottleneck's remainder can land several ulps
		// away from zero after one share per flow. The threshold must sit
		// far above that accumulated error — otherwise the saturated
		// resource is missed and the stall fallback flat-freezes every
		// flow below its fair rate — while staying physically negligible
		// (1e-3 B/s against GB/s capacities).
		const eps = 1e-3
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			if a.remBus[f.Bus] <= eps || a.remChip[f.Chip] <= eps ||
				(channels && a.remChan[a.channelOf[f.Chip]] <= eps) {
				frozen[i] = true
				remaining--
				a.busCount[f.Bus]--
				a.chipCount[f.Chip]--
				if channels {
					a.chanCount[a.channelOf[f.Chip]]--
				}
				progressed = true
			}
		}
		if !progressed {
			// Numerical stall: freeze everything at current rates.
			for i := range flows {
				if !frozen[i] {
					frozen[i] = true
					remaining--
				}
			}
		}
	}
	return rates
}
