package bus

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dmamem/internal/sim"
)

func TestPCIXBandwidth(t *testing.T) {
	// 8 bytes per 12 memory cycles (7.5 ns) = 1.0667 GB/s; three such
	// buses exactly saturate one 3.2 GB/s chip.
	if math.Abs(3*PCIXBandwidth-3.2e9) > 1 {
		t.Fatalf("3x PCI-X = %g, want 3.2e9", 3*PCIXBandwidth)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Count != 3 {
		t.Fatalf("Count = %d, want 3", c.Count)
	}
	if got := c.BeatGap(); got != 7500*sim.Picosecond {
		t.Fatalf("BeatGap = %v, want 7.5ns", got)
	}
}

func TestConfigValidate(t *testing.T) {
	if (Config{Count: 0, Bandwidth: 1}).Validate() == nil {
		t.Error("zero count accepted")
	}
	if (Config{Count: 1, Bandwidth: 0}).Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestGatherTarget(t *testing.T) {
	cases := []struct {
		chip, bus float64
		want      int
	}{
		{3.2e9, PCIXBandwidth, 3},
		{3.2e9, 0.5e9, 7}, // ceil(6.4)
		{3.2e9, 2e9, 2},
		{3.2e9, 3.2e9, 1},
		{3.2e9, 4e9, 1}, // bus faster than chip
	}
	for _, c := range cases {
		if got := GatherTarget(c.chip, c.bus); got != c.want {
			t.Errorf("GatherTarget(%g, %g) = %d, want %d", c.chip, c.bus, got, c.want)
		}
	}
}

func TestGatherTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GatherTarget(0, 1)
}

func pcixAlloc(nBuses int) *Allocator {
	caps := make([]float64, nBuses)
	for i := range caps {
		caps[i] = PCIXBandwidth
	}
	return NewAllocator(caps, 3.2e9)
}

func TestAllocateEmpty(t *testing.T) {
	a := pcixAlloc(3)
	if got := a.Allocate(nil); len(got) != 0 {
		t.Fatalf("empty allocation returned %v", got)
	}
}

func TestAllocateSingleFlow(t *testing.T) {
	a := pcixAlloc(3)
	rates := a.Allocate([]Flow{{Bus: 0, Chip: 5}})
	if math.Abs(rates[0]-PCIXBandwidth) > 1 {
		t.Fatalf("single flow rate = %g, want bus bandwidth", rates[0])
	}
}

func TestAllocateThreeBusesOneChip(t *testing.T) {
	// Three buses into one chip: exactly saturates the chip; each flow
	// gets its full bus.
	a := pcixAlloc(3)
	rates := a.Allocate([]Flow{{0, 7}, {1, 7}, {2, 7}})
	sum := 0.0
	for _, r := range rates {
		if math.Abs(r-PCIXBandwidth) > 1 {
			t.Fatalf("rates = %v", rates)
		}
		sum += r
	}
	if math.Abs(sum-3.2e9) > 1 {
		t.Fatalf("chip total = %g", sum)
	}
}

func TestAllocateChipBottleneck(t *testing.T) {
	// Four 2 GB/s buses into one 3.2 GB/s chip: chip is the bottleneck,
	// each flow gets 0.8 GB/s.
	caps := []float64{2e9, 2e9, 2e9, 2e9}
	a := NewAllocator(caps, 3.2e9)
	rates := a.Allocate([]Flow{{0, 0}, {1, 0}, {2, 0}, {3, 0}})
	for _, r := range rates {
		if math.Abs(r-0.8e9) > 1 {
			t.Fatalf("rates = %v, want 0.8e9 each", rates)
		}
	}
}

func TestAllocateBusSharing(t *testing.T) {
	// Two streams on one bus to different chips split the bus.
	a := pcixAlloc(1)
	rates := a.Allocate([]Flow{{0, 1}, {0, 2}})
	for _, r := range rates {
		if math.Abs(r-PCIXBandwidth/2) > 1 {
			t.Fatalf("rates = %v, want half bus each", rates)
		}
	}
}

func TestAllocateAsymmetric(t *testing.T) {
	// Bus 0 carries two flows, bus 1 one flow, all to different chips:
	// flows on bus 0 get half a bus, flow on bus 1 a full bus.
	a := pcixAlloc(2)
	rates := a.Allocate([]Flow{{0, 1}, {0, 2}, {1, 3}})
	if math.Abs(rates[0]-PCIXBandwidth/2) > 1 || math.Abs(rates[1]-PCIXBandwidth/2) > 1 {
		t.Fatalf("bus-0 flows: %v", rates)
	}
	if math.Abs(rates[2]-PCIXBandwidth) > 1 {
		t.Fatalf("bus-1 flow: %v", rates)
	}
}

func TestAllocateMaxMinRedistribution(t *testing.T) {
	// One fast bus (3 GB/s) and one slow bus (1 GB/s) into a 3.2 GB/s
	// chip. Max-min: slow flow frozen at 1 GB/s, fast flow takes the
	// remaining 2.2 GB/s.
	a := NewAllocator([]float64{3e9, 1e9}, 3.2e9)
	rates := a.Allocate([]Flow{{0, 0}, {1, 0}})
	if math.Abs(rates[1]-1e9) > 1e3 {
		t.Fatalf("slow flow = %g, want 1e9", rates[1])
	}
	if math.Abs(rates[0]-2.2e9) > 1e3 {
		t.Fatalf("fast flow = %g, want 2.2e9", rates[0])
	}
}

func TestAllocateChannelCap(t *testing.T) {
	// Two 2 GB/s buses into two different 3.2 GB/s chips of the same
	// channel, channel capped at 3 GB/s: the channel is the bottleneck
	// and the flows split it evenly.
	a := NewAllocator([]float64{2e9, 2e9}, 3.2e9)
	a.SetChannels([]int{0, 0}, []float64{3e9})
	rates := a.Allocate([]Flow{{Bus: 0, Chip: 0}, {Bus: 1, Chip: 1}})
	for _, r := range rates {
		if math.Abs(r-1.5e9) > 1e3 {
			t.Fatalf("rates = %v, want 1.5e9 each", rates)
		}
	}
}

func TestAllocateChannelIndependence(t *testing.T) {
	// Chips 0 and 1 on different channels: each flow is limited only by
	// its own bus, exactly as without the channel constraint.
	a := NewAllocator([]float64{2e9, 2e9}, 3.2e9)
	a.SetChannels([]int{0, 1}, []float64{3e9, 3e9})
	rates := a.Allocate([]Flow{{Bus: 0, Chip: 0}, {Bus: 1, Chip: 1}})
	for _, r := range rates {
		if math.Abs(r-2e9) > 1e3 {
			t.Fatalf("rates = %v, want full bus each", rates)
		}
	}
}

func TestAllocateChannelUnsetMatchesLegacy(t *testing.T) {
	// Setting and clearing the channel constraint restores the exact
	// legacy rates (same arithmetic, bit for bit).
	flows := []Flow{{0, 0}, {1, 0}, {0, 1}, {2, 5}}
	legacy := NewAllocator([]float64{3e9, 1e9, 2e9}, 3.2e9)
	want := append([]float64(nil), legacy.Allocate(flows)...)

	a := NewAllocator([]float64{3e9, 1e9, 2e9}, 3.2e9)
	a.SetChannels([]int{0, 0, 1, 1, 2, 2}, []float64{9e9, 9e9, 9e9})
	a.Allocate(flows)
	a.SetChannels(nil, nil)
	got := a.Allocate(flows)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flow %d: rate %g after channel round-trip, want %g", i, got[i], want[i])
		}
	}
}

func TestSetChannelsPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(a *Allocator)
	}{
		{"nonpositive channel cap", func(a *Allocator) {
			a.SetChannels([]int{0}, []float64{0})
		}},
		{"chip mapped out of range", func(a *Allocator) {
			a.SetChannels([]int{2}, []float64{1e9, 1e9})
		}},
		{"negative channel", func(a *Allocator) {
			a.SetChannels([]int{-1}, []float64{1e9})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.f(pcixAlloc(1))
		})
	}
}

func TestAllocatePanicsOnBadBus(t *testing.T) {
	a := pcixAlloc(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range bus")
		}
	}()
	a.Allocate([]Flow{{Bus: 3, Chip: 0}})
}

func TestNewAllocatorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewAllocator(nil, 1) },
		func() { NewAllocator([]float64{0}, 1) },
		func() { NewAllocator([]float64{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: allocations respect every capacity constraint, give every
// flow a positive rate, and are max-min fair (no flow can be increased
// without decreasing a flow with an equal or smaller rate — checked via
// the bottleneck condition: every flow has at least one saturated
// resource OR shares a resource only with larger flows... the standard
// certificate: each flow's rate equals the fair share of some saturated
// resource it crosses).
func TestQuickAllocateInvariants(t *testing.T) {
	f := func(seed int64, nf uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nBuses := 1 + rng.Intn(4)
		nChips := 1 + rng.Intn(6)
		caps := make([]float64, nBuses)
		for i := range caps {
			caps[i] = 0.5e9 + rng.Float64()*3e9
		}
		chipCap := 0.5e9 + rng.Float64()*4e9
		a := NewAllocator(caps, chipCap)
		flows := make([]Flow, 1+int(nf)%24)
		for i := range flows {
			flows[i] = Flow{Bus: rng.Intn(nBuses), Chip: rng.Intn(nChips)}
		}
		rates := a.Allocate(flows)

		const tol = 1.0 // bytes/s
		busLoad := make([]float64, nBuses)
		chipLoad := map[int]float64{}
		for i, f := range flows {
			if rates[i] <= 0 {
				return false
			}
			busLoad[f.Bus] += rates[i]
			chipLoad[f.Chip] += rates[i]
		}
		for b, l := range busLoad {
			if l > caps[b]+tol {
				return false
			}
		}
		for _, l := range chipLoad {
			if l > chipCap+tol {
				return false
			}
		}
		// Bottleneck certificate: every flow crosses at least one
		// resource that is saturated (within tolerance) and on which it
		// has a maximal rate.
		for i, fl := range flows {
			busSat := busLoad[fl.Bus] >= caps[fl.Bus]-tol
			chipSat := chipLoad[fl.Chip] >= chipCap-tol
			if !busSat && !chipSat {
				return false
			}
			ok := false
			if busSat {
				maxOnBus := 0.0
				for j, o := range flows {
					if o.Bus == fl.Bus && rates[j] > maxOnBus {
						maxOnBus = rates[j]
					}
				}
				if rates[i] >= maxOnBus-tol {
					ok = true
				}
			}
			if !ok && chipSat {
				maxOnChip := 0.0
				for j, o := range flows {
					if o.Chip == fl.Chip && rates[j] > maxOnChip {
						maxOnChip = rates[j]
					}
				}
				if rates[i] >= maxOnChip-tol {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: allocation is deterministic.
func TestQuickAllocateDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := pcixAlloc(3)
		flows := make([]Flow, 1+rng.Intn(12))
		for i := range flows {
			flows[i] = Flow{Bus: rng.Intn(3), Chip: rng.Intn(8)}
		}
		r1 := append([]float64(nil), a.Allocate(flows)...)
		r2 := a.Allocate(flows)
		for i := range r1 {
			if r1[i] != r2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocate(b *testing.B) {
	a := pcixAlloc(3)
	flows := make([]Flow, 16)
	rng := rand.New(rand.NewSource(1))
	for i := range flows {
		flows[i] = Flow{Bus: rng.Intn(3), Chip: rng.Intn(32)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allocate(flows)
	}
}
