package bus

import "fmt"

// EpochShares computes, for each shared I/O bus, a demand-weighted
// split of its bandwidth across channel partitions. counts[ch][b] is
// the number of flows channel partition ch currently runs on bus b
// (as reported by its controller at the epoch barrier); caps[b] is the
// bus's full capacity in bytes/s. On return out[ch][b] holds the slice
// of bus b granted to partition ch for the next epoch.
//
// Each partition's weight on a bus is its flow count plus one: the +1
// keeps a reserve share for idle partitions, so a transfer arriving
// mid-epoch on a previously idle channel is never starved to a zero
// cap (the Allocator rejects non-positive capacities on principle).
// The arithmetic is a fixed sequence of float operations over
// deterministic integer counts, so the shares — and therefore the
// whole parallel simulation — are independent of the worker count.
func EpochShares(caps []float64, counts [][]int, out [][]float64) {
	if len(out) != len(counts) {
		panic(fmt.Sprintf("bus: EpochShares got %d output rows for %d partitions", len(out), len(counts)))
	}
	for ch := range counts {
		if len(counts[ch]) != len(caps) || len(out[ch]) != len(caps) {
			panic(fmt.Sprintf("bus: EpochShares partition %d has %d counts and %d outputs for %d buses",
				ch, len(counts[ch]), len(out[ch]), len(caps)))
		}
	}
	for b, cap := range caps {
		total := 0
		for ch := range counts {
			total += counts[ch][b] + 1
		}
		for ch := range counts {
			out[ch][b] = cap * float64(counts[ch][b]+1) / float64(total)
		}
	}
}
