package bus

import (
	"math/rand"
	"testing"
)

// Regression for a saturation-threshold bug: with 17 flows sharing one
// chip, the bottleneck's remaining capacity landed a few microbytes
// above the old 1e-6 freeze threshold after the per-flow share
// subtractions, so no flow froze and the stall fallback flat-froze all
// 21 flows at the first-round share — leaving four flows with no
// saturated resource, below their max-min rate. The inputs reproduce
// the quick.Check counterexample that exposed it
// (seed -375422443678318450, nf 0xa4).
func TestAllocateAccumulatedRoundingRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(-375422443678318450))
	nBuses := 1 + rng.Intn(4)
	nChips := 1 + rng.Intn(6)
	caps := make([]float64, nBuses)
	for i := range caps {
		caps[i] = 0.5e9 + rng.Float64()*3e9
	}
	chipCap := 0.5e9 + rng.Float64()*4e9
	a := NewAllocator(caps, chipCap)
	flows := make([]Flow, 1+int(uint8(0xa4))%24)
	for i := range flows {
		flows[i] = Flow{Bus: rng.Intn(nBuses), Chip: rng.Intn(nChips)}
	}
	rates := a.Allocate(flows)

	const tol = 1.0 // bytes/s
	busLoad := make([]float64, nBuses)
	chipLoad := map[int]float64{}
	for i, f := range flows {
		if rates[i] <= 0 {
			t.Fatalf("flow %d rate %v", i, rates[i])
		}
		busLoad[f.Bus] += rates[i]
		chipLoad[f.Chip] += rates[i]
	}
	for b, l := range busLoad {
		if l > caps[b]+tol {
			t.Errorf("bus %d overloaded: %v > %v", b, l, caps[b])
		}
	}
	for c, l := range chipLoad {
		if l > chipCap+tol {
			t.Errorf("chip %d overloaded: %v > %v", c, l, chipCap)
		}
	}
	// Max-min certificate: every flow crosses a saturated resource on
	// which its rate is maximal.
	for i, fl := range flows {
		busSat := busLoad[fl.Bus] >= caps[fl.Bus]-tol
		chipSat := chipLoad[fl.Chip] >= chipCap-tol
		ok := false
		if busSat {
			maxOnBus := 0.0
			for j, o := range flows {
				if o.Bus == fl.Bus && rates[j] > maxOnBus {
					maxOnBus = rates[j]
				}
			}
			ok = rates[i] >= maxOnBus-tol
		}
		if !ok && chipSat {
			maxOnChip := 0.0
			for j, o := range flows {
				if o.Chip == fl.Chip && rates[j] > maxOnChip {
					maxOnChip = rates[j]
				}
			}
			ok = rates[i] >= maxOnChip-tol
		}
		if !ok {
			t.Errorf("flow %d (bus %d chip %d rate %v) has no saturated resource it is maximal on (busSat=%v chipSat=%v)",
				i, fl.Bus, fl.Chip, rates[i], busSat, chipSat)
		}
	}
}
