package bus

import (
	"math"
	"testing"
)

func TestEpochSharesWeighting(t *testing.T) {
	caps := []float64{1.064e9, 1.064e9, 1.064e9}
	counts := [][]int{
		{3, 0, 1}, // partition 0
		{1, 0, 0}, // partition 1
	}
	out := [][]float64{make([]float64, 3), make([]float64, 3)}
	EpochShares(caps, counts, out)
	// Bus 0: weights 4 and 2 of 6.
	if got, want := out[0][0], caps[0]*4/6; math.Abs(got-want) > 1 {
		t.Errorf("out[0][0] = %g, want %g", got, want)
	}
	if got, want := out[1][0], caps[0]*2/6; math.Abs(got-want) > 1 {
		t.Errorf("out[1][0] = %g, want %g", got, want)
	}
	// Idle bus 1: even split, never zero.
	if got, want := out[0][1], caps[1]/2; math.Abs(got-want) > 1 {
		t.Errorf("out[0][1] = %g, want %g", got, want)
	}
	for ch := range out {
		for b, s := range out[ch] {
			if s <= 0 {
				t.Errorf("partition %d bus %d share %g not positive", ch, b, s)
			}
		}
	}
	// Shares of every bus sum back to its capacity.
	for b := range caps {
		sum := 0.0
		for ch := range out {
			sum += out[ch][b]
		}
		if math.Abs(sum-caps[b]) > 1 {
			t.Errorf("bus %d shares sum to %g, capacity %g", b, sum, caps[b])
		}
	}
}

func TestEpochSharesShapePanics(t *testing.T) {
	caps := []float64{1e9}
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("row mismatch", func() {
		EpochShares(caps, [][]int{{0}}, [][]float64{})
	})
	expectPanic("count width", func() {
		EpochShares(caps, [][]int{{0, 0}}, [][]float64{{0}})
	})
	expectPanic("out width", func() {
		EpochShares(caps, [][]int{{0}}, [][]float64{{0, 0}})
	})
}

func TestSetBusCaps(t *testing.T) {
	a := NewAllocator([]float64{1e9, 1e9}, 3.2e9)
	a.SetBusCaps([]float64{5e8, 2e8})
	rates := a.Allocate([]Flow{{Bus: 0, Chip: 0}, {Bus: 1, Chip: 1}})
	if math.Abs(rates[0]-5e8) > 1 || math.Abs(rates[1]-2e8) > 1 {
		t.Errorf("rates after SetBusCaps = %v, want [5e8 2e8]", rates)
	}
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("length mismatch", func() { a.SetBusCaps([]float64{1e9}) })
	expectPanic("nonpositive cap", func() { a.SetBusCaps([]float64{1e9, 0}) })
}
